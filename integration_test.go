package cbb

// Integration tests: exercise the whole stack (dataset generation → index
// construction → clipping → queries → updates → joins → persistence-level
// statistics) through the public API plus the internal experiment datasets,
// asserting the cross-cutting invariants that individual package tests
// cannot see.

import (
	"math/rand"
	"testing"

	"cbb/internal/datasets"
)

// loadDataset converts a synthetic dataset into public API items.
func loadDataset(t testing.TB, name string, n int, seed int64) ([]Item, Rect) {
	t.Helper()
	objs, err := datasets.Generate(name, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := datasets.Universe(name)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, len(objs))
	for i, o := range objs {
		items[i] = Item{Object: ObjectID(i), Rect: o}
	}
	return items, uni
}

func TestIntegrationFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	items, uni := loadDataset(t, "axo03", 6000, 99)
	build, insertLater := items[:5000], items[5000:]

	for _, variant := range []Variant{QRTree, HRTree, RStarTree, RRStarTree} {
		t.Run(variant.String(), func(t *testing.T) {
			clipped, err := New(Options{Dims: 3, Variant: variant, Universe: uni})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := New(Options{Dims: 3, Variant: variant, Universe: uni, Clipping: ClipNone})
			if err != nil {
				t.Fatal(err)
			}
			if err := clipped.BulkLoad(build); err != nil {
				t.Fatal(err)
			}
			if err := plain.BulkLoad(build); err != nil {
				t.Fatal(err)
			}

			// Phase 1: queries agree and clipping never costs extra leaf I/O.
			rng := rand.New(rand.NewSource(1))
			queries := make([]Rect, 150)
			for i := range queries {
				c := build[rng.Intn(len(build))].Rect.Center()
				queries[i] = R(c[0]-10, c[1]-10, c[2]-10, c[0]+10, c[1]+10, c[2]+10)
			}
			clipped.ResetIOStats()
			plain.ResetIOStats()
			for _, q := range queries {
				if clipped.Count(q) != plain.Count(q) {
					t.Fatalf("clipped and plain result counts differ for %v", q)
				}
			}
			if clipped.IOStats().LeafReads > plain.IOStats().LeafReads {
				t.Fatalf("clipping increased leaf I/O: %d > %d",
					clipped.IOStats().LeafReads, plain.IOStats().LeafReads)
			}

			// Phase 2: live updates keep both trees consistent.
			for _, it := range insertLater {
				if err := clipped.Insert(it.Rect, it.Object); err != nil {
					t.Fatal(err)
				}
				if err := plain.Insert(it.Rect, it.Object); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 1000; i++ { // delete a prefix of the original load
				if ok, err := clipped.Delete(build[i].Rect, build[i].Object); err != nil || !ok {
					t.Fatalf("clipped delete %d failed: %v %v", i, ok, err)
				}
				if ok, err := plain.Delete(build[i].Rect, build[i].Object); err != nil || !ok {
					t.Fatalf("plain delete %d failed: %v %v", i, ok, err)
				}
			}
			if clipped.Len() != plain.Len() || clipped.Len() != len(items)-1000 {
				t.Fatalf("sizes diverged: clipped %d plain %d", clipped.Len(), plain.Len())
			}
			for _, q := range queries {
				if clipped.Count(q) != plain.Count(q) {
					t.Fatalf("post-update results differ for %v", q)
				}
			}
			if err := clipped.Validate(); err != nil {
				t.Fatalf("clipped tree invalid after updates: %v", err)
			}
			if err := plain.Validate(); err != nil {
				t.Fatalf("plain tree invalid after updates: %v", err)
			}

			// Phase 3: kNN agrees between the two trees (clipping does not
			// affect nearest-neighbour results).
			for i := 0; i < 20; i++ {
				p := Pt(rng.Float64()*10000, rng.Float64()*10000, rng.Float64()*10000)
				a := clipped.NearestNeighbors(5, p)
				b := plain.NearestNeighbors(5, p)
				if len(a) != len(b) {
					t.Fatalf("kNN result sizes differ: %d vs %d", len(a), len(b))
				}
				for j := range a {
					if a[j].DistSq != b[j].DistSq {
						t.Fatalf("kNN distances differ at rank %d", j)
					}
				}
			}

			// Phase 4: structural statistics are self-consistent.
			s := clipped.Stats()
			if s.Objects != clipped.Len() || s.LeafNodes == 0 {
				t.Fatalf("stats inconsistent: %+v", s)
			}
		})
	}
}

func TestIntegrationJoinAcrossDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	axons, uni := loadDataset(t, "axo03", 4000, 5)
	dendrites, _ := loadDataset(t, "den03", 2000, 6)

	build := func(items []Item, clip ClipMethod) *Tree {
		tr, err := New(Options{Dims: 3, Variant: RRStarTree, Universe: uni, Clipping: clip})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Reference result from brute force.
	var want int64
	for _, a := range axons {
		for _, d := range dendrites {
			if a.Rect.Intersects(d.Rect) {
				want++
			}
		}
	}

	type combo struct{ left, right ClipMethod }
	for _, c := range []combo{{ClipNone, ClipNone}, {ClipStairline, ClipNone}, {ClipStairline, ClipStairline}} {
		left := build(axons, c.left)
		right := build(dendrites, c.right)
		stt, err := SynchronizedTreeTraversalJoin(left, right, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stt.Pairs != want {
			t.Fatalf("STT with clipping %v/%v found %d pairs, want %d", c.left, c.right, stt.Pairs, want)
		}
		inlj, err := IndexNestedLoopJoin(left, dendrites, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inlj.Pairs != want {
			t.Fatalf("INLJ with clipping %v found %d pairs, want %d", c.left, inlj.Pairs, want)
		}
	}
}

func TestIntegrationAllDatasetsBuildAndQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	for _, name := range datasets.Names() {
		t.Run(name, func(t *testing.T) {
			spec, _ := datasets.Lookup(name)
			items, uni := loadDataset(t, name, 3000, 17)
			tree, err := New(Options{Dims: spec.Dims, Variant: RStarTree, Universe: uni})
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.BulkLoad(items); err != nil {
				t.Fatal(err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatal(err)
			}
			// A full-universe query returns everything exactly once.
			seen := make(map[ObjectID]int)
			tree.Search(uni, func(id ObjectID, _ Rect) bool {
				seen[id]++
				return true
			})
			if len(seen) != len(items) {
				t.Fatalf("full query found %d of %d objects", len(seen), len(items))
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("object %d returned %d times", id, c)
				}
			}
		})
	}
}
