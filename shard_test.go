package cbb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// --- helpers ----------------------------------------------------------------

func shardUniverse(dims int) Rect {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for d := 0; d < dims; d++ {
		hi[d] = 1000
	}
	return Rect{Lo: lo, Hi: hi}
}

func randShardItems(rng *rand.Rand, n, dims int) []Item {
	items := make([]Item, n)
	for i := range items {
		lo := make(Point, dims)
		hi := make(Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = rng.Float64() * 990
			hi[d] = lo[d] + rng.Float64()*10
		}
		items[i] = Item{Object: ObjectID(i + 1), Rect: Rect{Lo: lo, Hi: hi}}
	}
	return items
}

func randShardQueries(rng *rand.Rand, n, dims int) []Rect {
	qs := make([]Rect, n)
	for i := range qs {
		lo := make(Point, dims)
		hi := make(Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = rng.Float64() * 960
			hi[d] = lo[d] + 40
		}
		qs[i] = Rect{Lo: lo, Hi: hi}
	}
	return qs
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Object < items[j].Object })
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].DistSq != ns[j].DistSq {
			return ns[i].DistSq < ns[j].DistSq
		}
		return ns[i].Object < ns[j].Object
	})
}

func sortPairs(ps []JoinPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Left != ps[j].Left {
			return ps[i].Left < ps[j].Left
		}
		return ps[i].Right < ps[j].Right
	})
}

// assertShardedMatches checks that the sharded tree answers every query
// type identically to the reference single tree.
func assertShardedMatches(t *testing.T, ref *Tree, st *ShardedTree, queries []Rect, dims int) {
	t.Helper()
	if ref.Len() != st.Len() {
		t.Fatalf("Len: sharded %d, single %d", st.Len(), ref.Len())
	}
	if !ref.Bounds().Equal(st.Bounds()) {
		t.Fatalf("Bounds: sharded %v, single %v", st.Bounds(), ref.Bounds())
	}
	for i, q := range queries {
		want := ref.SearchAll(q)
		got := st.SearchAll(q)
		sortItems(want)
		sortItems(got)
		if len(want) != len(got) {
			t.Fatalf("query %d: sharded found %d, single %d", i, len(got), len(want))
		}
		for k := range want {
			if want[k].Object != got[k].Object || !want[k].Rect.Equal(got[k].Rect) {
				t.Fatalf("query %d item %d: sharded %v, single %v", i, k, got[k], want[k])
			}
		}
		if ref.Count(q) != st.Count(q) {
			t.Fatalf("query %d: Count mismatch", i)
		}
	}
	// KNN at a few pivots (ties sorted on both sides).
	for trial := 0; trial < 5; trial++ {
		p := make(Point, dims)
		for d := range p {
			p[d] = float64(trial) * 200
		}
		want := ref.NearestNeighbors(10, p)
		got := st.NearestNeighbors(10, p)
		sortNeighbors(want)
		sortNeighbors(got)
		if len(want) != len(got) {
			t.Fatalf("KNN at %v: sharded %d results, single %d", p, len(got), len(want))
		}
		for k := range want {
			if want[k].Object != got[k].Object || want[k].DistSq != got[k].DistSq {
				t.Fatalf("KNN at %v rank %d: sharded %+v, single %+v", p, k, got[k], want[k])
			}
		}
	}
}

// --- options ----------------------------------------------------------------

func TestShardedOptionsValidation(t *testing.T) {
	if _, err := NewSharded(ShardedOptions{Options: Options{Dims: 2}}); err == nil {
		t.Error("missing Universe must be rejected")
	}
	if _, err := NewSharded(ShardedOptions{Options: Options{Dims: 2, Universe: shardUniverse(3)}}); err == nil {
		t.Error("Universe dims mismatch must be rejected")
	}
	if _, err := NewSharded(ShardedOptions{Options: Options{Dims: 2, Universe: shardUniverse(2)}, Shards: -1}); err == nil {
		t.Error("negative Shards must be rejected")
	}
	if _, err := NewSharded(ShardedOptions{Options: Options{Dims: 2, Universe: shardUniverse(2)}, SplitAbove: 100, MergeBelow: 100}); err == nil {
		t.Error("MergeBelow >= SplitAbove must be rejected")
	}
	st, err := NewSharded(ShardedOptions{Options: Options{Dims: 2, Universe: shardUniverse(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() != 4 {
		t.Errorf("default shard count = %d, want 4", st.NumShards())
	}
	if st.Options().HilbertBits != 16 {
		t.Errorf("default HilbertBits = %d, want 16", st.Options().HilbertBits)
	}
	// Clamping: 30 dims forces 63/30 = 2 bits.
	st30, err := NewSharded(ShardedOptions{Options: Options{Dims: 30, Universe: shardUniverse(30)}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st30.Options().HilbertBits != 2 {
		t.Errorf("30-dim HilbertBits = %d, want 2", st30.Options().HilbertBits)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- correctness equivalence matrix ----------------------------------------

func TestShardedEquivalenceMatrix(t *testing.T) {
	for dims := 1; dims <= 3; dims++ {
		for _, clip := range []ClipMethod{ClipNone, ClipSkyline, ClipStairline} {
			t.Run(fmt.Sprintf("dims%d-%v", dims, clip), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(dims*100) + int64(clip)))
				items := randShardItems(rng, 800, dims)
				queries := randShardQueries(rng, 30, dims)
				base := Options{Dims: dims, Clipping: clip, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(dims)}

				ref, err := New(base)
				if err != nil {
					t.Fatal(err)
				}
				st, err := NewSharded(ShardedOptions{Options: base, Shards: 5})
				if err != nil {
					t.Fatal(err)
				}
				for _, it := range items {
					if err := ref.Insert(it.Rect, it.Object); err != nil {
						t.Fatal(err)
					}
					if err := st.Insert(it.Rect, it.Object); err != nil {
						t.Fatal(err)
					}
				}
				assertShardedMatches(t, ref, st, queries, dims)

				// Delete a third from both; equivalence must survive.
				for i := 0; i < len(items); i += 3 {
					fr, err := ref.Delete(items[i].Rect, items[i].Object)
					if err != nil {
						t.Fatal(err)
					}
					fs, err := st.Delete(items[i].Rect, items[i].Object)
					if err != nil {
						t.Fatal(err)
					}
					if fr != fs {
						t.Fatalf("Delete(%d): sharded found=%v, single found=%v", items[i].Object, fs, fr)
					}
				}
				assertShardedMatches(t, ref, st, queries, dims)

				// Forced splits on every shard, then equivalence again.
				for i := st.NumShards() - 1; i >= 0; i-- {
					if err := st.SplitShard(i); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Validate(); err != nil {
					t.Fatal(err)
				}
				assertShardedMatches(t, ref, st, queries, dims)

				// Forced merges back down, then equivalence again.
				for st.NumShards() > 2 {
					if err := st.MergeShards(0); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Validate(); err != nil {
					t.Fatal(err)
				}
				assertShardedMatches(t, ref, st, queries, dims)

				splits, merges := st.RebalanceStats()
				if splits == 0 || merges == 0 {
					t.Fatalf("rebalance stats: splits=%d merges=%d, want both > 0", splits, merges)
				}
			})
		}
	}
}

func TestShardedIngestPathsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randShardItems(rng, 1200, 2)
	queries := randShardQueries(rng, 20, 2)
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}

	ref, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BulkLoad(items); err != nil {
		t.Fatal(err)
	}

	viaItems, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := viaItems.InsertItems(items); err != nil {
		t.Fatal(err)
	}
	assertShardedMatches(t, ref, viaItems, queries, 2)

	viaBulk, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := viaBulk.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	assertShardedMatches(t, ref, viaBulk, queries, 2)

	viaBatch, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaBatch.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := b.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	assertShardedMatches(t, ref, viaBatch, queries, 2)
}

// --- batches and views -------------------------------------------------------

func TestShardedBatchAtomicity(t *testing.T) {
	base := Options{Dims: 2, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	items := randShardItems(rng, 200, 2)

	// Rollback: nothing becomes visible.
	b, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := b.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	b.Rollback()
	if st.Len() != 0 {
		t.Fatalf("rolled-back batch leaked %d objects", st.Len())
	}

	// Commit: a view pinned before sees nothing, one pinned after sees all.
	before := st.Snapshot()
	defer before.Close()
	b, err = st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := b.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	if before.Len() != 0 {
		t.Fatal("open batch visible to a pinned view")
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	after := st.Snapshot()
	defer after.Close()
	if before.Len() != 0 {
		t.Fatalf("pre-commit view sees %d objects after commit", before.Len())
	}
	if after.Len() != len(items) {
		t.Fatalf("post-commit view sees %d objects, want %d", after.Len(), len(items))
	}

	// Double finish errors.
	if err := b.Commit(); err == nil {
		t.Error("second Commit must fail")
	}

	// Batch delete round-trip.
	b, err = st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	found, err := b.Delete(items[0].Rect, items[0].Object)
	if err != nil || !found {
		t.Fatalf("batch Delete: %v %v", found, err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(items)-1 {
		t.Fatalf("Len after batch delete = %d", st.Len())
	}
}

func TestShardedViewPinnedAcrossSplit(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	items := randShardItems(rng, 500, 2)
	if err := st.InsertItems(items); err != nil {
		t.Fatal(err)
	}

	v := st.Snapshot()
	defer v.Close()
	epochs := v.Epochs()
	wantLen := v.Len()
	q := R(0, 0, 1000, 1000)
	want := v.SearchAll(q)
	sortItems(want)

	// Split every shard, then mutate heavily.
	for i := st.NumShards() - 1; i >= 0; i-- {
		if err := st.SplitShard(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		lo := Pt(rng.Float64()*990, rng.Float64()*990)
		if err := st.Insert(Rect{Lo: lo, Hi: Pt(lo[0]+5, lo[1]+5)}, ObjectID(10000+i)); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned view is frozen: same epochs, same content.
	for i, e := range v.Epochs() {
		if e != epochs[i] {
			t.Fatalf("epoch of shard %d moved from %d to %d under a pin", i, epochs[i], e)
		}
	}
	if v.Len() != wantLen {
		t.Fatalf("pinned view Len moved from %d to %d", wantLen, v.Len())
	}
	got := v.SearchAll(q)
	sortItems(got)
	if len(got) != len(want) {
		t.Fatalf("pinned view result changed: %d vs %d items", len(got), len(want))
	}
	for k := range want {
		if got[k].Object != want[k].Object {
			t.Fatalf("pinned view item %d changed", k)
		}
	}
	// The live tree meanwhile serves the new state.
	if st.Len() != len(items)+200 {
		t.Fatalf("live Len = %d, want %d", st.Len(), len(items)+200)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedBatchSearchMatchesSequential(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	if err := st.InsertItems(randShardItems(rng, 1000, 2)); err != nil {
		t.Fatal(err)
	}
	queries := randShardQueries(rng, 50, 2)
	res, err := st.BatchSearch(queries, BatchOptions{Workers: 4, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := st.SearchAll(q)
		if res.Counts[i] != len(want) {
			t.Fatalf("query %d: batch count %d, sequential %d", i, res.Counts[i], len(want))
		}
		got := append([]Item(nil), res.Items[i]...)
		sortItems(got)
		sortItems(want)
		for k := range want {
			if got[k].Object != want[k].Object {
				t.Fatalf("query %d item %d mismatch", i, k)
			}
		}
	}
	if res.IO.LeafReads+res.IO.DirReads == 0 {
		t.Error("batch reported no I/O")
	}
}

// --- skew-driven rebalancing -------------------------------------------------

func TestShardedAutoSplitAndMerge(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 2, SplitAbove: 200, MergeBelow: 20})
	if err != nil {
		t.Fatal(err)
	}
	// A hot cluster in one corner swamps one shard until it splits.
	rng := rand.New(rand.NewSource(19))
	var items []Item
	for i := 0; i < 1200; i++ {
		lo := Pt(rng.Float64()*50, rng.Float64()*50)
		items = append(items, Item{Object: ObjectID(i + 1), Rect: Rect{Lo: lo, Hi: Pt(lo[0]+2, lo[1]+2)}})
	}
	for _, it := range items {
		if err := st.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	splits, _ := st.RebalanceStats()
	if splits == 0 {
		t.Fatalf("no automatic split after %d clustered inserts (shards=%d, lens=%v)", len(items), st.NumShards(), st.ShardLens())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(items))
	}

	// Deleting almost everything triggers merges.
	for _, it := range items[:1150] {
		if _, err := st.Delete(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	_, merges := st.RebalanceStats()
	if merges == 0 {
		t.Fatalf("no automatic merge after mass deletion (shards=%d, lens=%v)", st.NumShards(), st.ShardLens())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 50 {
		t.Fatalf("Len = %d, want 50", st.Len())
	}
}

// --- joins -------------------------------------------------------------------

func TestShardedJoinsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	leftItems := randShardItems(rng, 700, 2)
	rightItems := make([]Item, 500)
	for i := range rightItems {
		lo := Pt(rng.Float64()*990, rng.Float64()*990)
		rightItems[i] = Item{Object: ObjectID(i + 1), Rect: Rect{Lo: lo, Hi: Pt(lo[0]+8, lo[1]+8)}}
	}
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}

	refL, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := refL.BulkLoad(leftItems); err != nil {
		t.Fatal(err)
	}
	refR, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := refR.BulkLoad(rightItems); err != nil {
		t.Fatal(err)
	}
	shL, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := shL.InsertItems(leftItems); err != nil {
		t.Fatal(err)
	}
	shR, err := NewSharded(ShardedOptions{Options: base, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := shR.InsertItems(rightItems); err != nil {
		t.Fatal(err)
	}

	// INLJ: sharded index probed with the right items.
	var wantPairs []JoinPair
	wantRes, err := IndexNestedLoopJoin(refL, rightItems, func(p JoinPair) { wantPairs = append(wantPairs, p) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var gotPairs []JoinPair
		gotRes, err := IndexNestedLoopJoinSharded(shL, rightItems, JoinOptions{Workers: workers}, func(p JoinPair) { gotPairs = append(gotPairs, p) })
		if err != nil {
			t.Fatal(err)
		}
		if gotRes.Pairs != wantRes.Pairs {
			t.Fatalf("INLJ workers=%d: sharded %d pairs, single %d", workers, gotRes.Pairs, wantRes.Pairs)
		}
		sortPairs(gotPairs)
		sortPairs(wantPairs)
		for k := range wantPairs {
			if gotPairs[k] != wantPairs[k] {
				t.Fatalf("INLJ workers=%d: pair %d is %v, want %v", workers, k, gotPairs[k], wantPairs[k])
			}
		}
	}

	// STT: sharded × sharded vs single × single.
	wantPairs = nil
	wantRes, err = SynchronizedTreeTraversalJoin(refL, refR, func(p JoinPair) { wantPairs = append(wantPairs, p) })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		var gotPairs []JoinPair
		gotRes, err := SynchronizedTreeTraversalJoinSharded(shL, shR, JoinOptions{Workers: workers}, func(p JoinPair) { gotPairs = append(gotPairs, p) })
		if err != nil {
			t.Fatal(err)
		}
		if gotRes.Pairs != wantRes.Pairs {
			t.Fatalf("STT workers=%d: sharded %d pairs, single %d", workers, gotRes.Pairs, wantRes.Pairs)
		}
		sortPairs(gotPairs)
		sortPairs(wantPairs)
		for k := range wantPairs {
			if gotPairs[k] != wantPairs[k] {
				t.Fatalf("STT workers=%d: pair %d is %v, want %v", workers, k, gotPairs[k], wantPairs[k])
			}
		}
	}

	// After forced splits, the joins still agree.
	for i := shL.NumShards() - 1; i >= 0; i-- {
		if err := shL.SplitShard(i); err != nil {
			t.Fatal(err)
		}
	}
	var gotPairs []JoinPair
	gotRes, err := SynchronizedTreeTraversalJoinSharded(shL, shR, JoinOptions{Workers: 2}, func(p JoinPair) { gotPairs = append(gotPairs, p) })
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Pairs != wantRes.Pairs {
		t.Fatalf("STT after splits: sharded %d pairs, single %d", gotRes.Pairs, wantRes.Pairs)
	}
}

// --- IO and stats ------------------------------------------------------------

func TestShardedStatsAggregation(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	items := randShardItems(rng, 800, 2)
	if err := st.InsertItems(items); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Objects != len(items) || stats.Height == 0 || stats.LeafNodes == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.ClipPoints == 0 {
		t.Error("clipped sharded tree reports no clip points")
	}

	st.ResetIOStats()
	if io := st.IOStats(); io.LeafReads != 0 || io.DirReads != 0 {
		t.Fatalf("IOStats after reset: %+v", io)
	}
	st.Search(R(0, 0, 500, 500), func(ObjectID, Rect) bool { return true })
	if io := st.IOStats(); io.LeafReads == 0 {
		t.Fatalf("search charged no leaf reads: %+v", io)
	}

	st.AttachBufferPool(256)
	st.Search(R(0, 0, 500, 500), func(ObjectID, Rect) bool { return true })
	st.Search(R(0, 0, 500, 500), func(ObjectID, Rect) bool { return true })
	bs, ok := st.BufferStats()
	if !ok || bs.Hits == 0 {
		t.Fatalf("buffer stats: %+v ok=%v", bs, ok)
	}
	st.DetachBufferPool()
	if _, ok := st.BufferStats(); ok {
		t.Error("BufferStats ok after detach")
	}
}

// --- persistence -------------------------------------------------------------

func TestShardedPersistenceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "engine")
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := CreateSharded(dir, ShardedOptions{Options: base, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	items := randShardItems(rng, 600, 2)
	if err := st.InsertItems(items); err != nil {
		t.Fatal(err)
	}
	queries := randShardQueries(rng, 20, 2)
	wantCounts := make([]int, len(queries))
	for i, q := range queries {
		wantCounts[i] = st.Count(q)
	}

	// A forced split while file-backed: new shard files + directory rewrite.
	if err := st.SplitShard(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	shardsAtClose := st.NumShards()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumShards() != shardsAtClose {
		t.Fatalf("reopened with %d shards, closed with %d", re.NumShards(), shardsAtClose)
	}
	if re.Len() != len(items) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(items))
	}
	for i, q := range queries {
		if got := re.Count(q); got != wantCounts[i] {
			t.Fatalf("query %d after reopen: %d, want %d", i, got, wantCounts[i])
		}
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}

	// Mutations + Flush survive another reopen.
	extra := Item{Object: 999999, Rect: R(1, 1, 2, 2)}
	if err := re.Insert(extra.Rect, extra.Object); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Len() != len(items)+1 {
		t.Fatalf("after flush round-trip Len = %d, want %d", re2.Len(), len(items)+1)
	}
	if got := re2.Count(extra.Rect); got == 0 {
		t.Fatal("flushed insert lost on reopen")
	}

	// The retired pre-split shard file was removed at Close.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := re2.NumShards() + 1; len(entries) != want { // shards + shards.json
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %d entries %v, want %d", len(entries), names, want)
	}

	if _, err := CreateSharded(dir, ShardedOptions{Options: base}); err == nil {
		t.Error("CreateSharded over an existing engine must fail")
	}
}

func TestShardedFlushInMemoryErrors(t *testing.T) {
	st, err := NewSharded(ShardedOptions{Options: Options{Dims: 2, Universe: shardUniverse(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err == nil {
		t.Error("Flush on an in-memory sharded tree must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
