package cbb

import (
	"errors"
	"fmt"
	"sync"

	"cbb/internal/clipindex"
	"cbb/internal/join"
	"cbb/internal/parallel"
	"cbb/internal/rtree"
)

// This file is the public surface of the concurrency subsystem: pinned read
// views (Snapshot / View) and batched writer transactions (Begin / Batch).
//
// The engine is copy-on-write versioned: every committed mutation publishes
// a new immutable version of the tree (and, when clipping is enabled, of the
// clip table of the same epoch) behind one atomic pointer. Ordinary queries
// on a Tree load the current version once and traverse it lock-free; a View
// pins one version so that an arbitrarily long sequence of queries — range
// searches, batch searches, nearest-neighbour queries, joins — observes one
// frozen state of the index while writers keep committing. Writers never
// wait for readers and readers never wait for writers.

// View is a pinned, immutable snapshot of a Tree taken with Tree.Snapshot.
// All read operations on the view observe exactly the state of the commit
// that produced it: no later Insert, Delete, Batch.Commit, or BulkLoad is
// visible, and no partially applied batch can ever be observed. A View is
// safe for any number of concurrent goroutines, and its queries charge the
// owning tree's I/O counters and buffer pool exactly like queries on the
// Tree itself.
//
// Close releases the view's pin; keeping many views open is cheap in
// memory (versions share all unchanged nodes), but pins defer the reuse of
// file pages freed by later batches, so long-lived views on file-backed
// trees should be closed when done.
type View struct {
	t    *Tree
	v    *rtree.Version
	snap *clipindex.Snap // nil when clipping is disabled
	once sync.Once
}

// Snapshot returns a pinned read view of the tree's last committed state.
// It never blocks: concurrent writers continue committing new versions while
// the view keeps serving its epoch. Every view must be released with Close.
func (t *Tree) Snapshot() *View {
	if t.idx != nil {
		s := t.idx.PinSnap()
		return &View{t: t, v: s.Version(), snap: s}
	}
	return &View{t: t, v: t.tree.PinSnapshot()}
}

// Close releases the view's pin. It is idempotent; the view must not be
// queried after Close.
func (v *View) Close() { v.once.Do(v.v.Unpin) }

// Epoch returns the commit epoch the view is pinned to. Epochs increase by
// one per committed batch, so two views with equal epochs (of one tree) see
// identical states.
func (v *View) Epoch() uint64 { return v.v.Epoch() }

// Len returns the number of indexed objects at the view's epoch.
func (v *View) Len() int { return v.v.Len() }

// Height returns the number of tree levels at the view's epoch.
func (v *View) Height() int { return v.v.Height() }

// Bounds returns the MBB of all indexed objects at the view's epoch.
func (v *View) Bounds() Rect { return v.v.Bounds() }

// Search calls visit for every object whose rectangle intersects q at the
// view's epoch; traversal stops early when visit returns false. Semantics
// match Tree.Search (clipping included) against the pinned state.
func (v *View) Search(q Rect, visit func(ObjectID, Rect) bool) {
	if v.snap != nil {
		v.snap.SearchCounted(q, nil, visit)
		return
	}
	v.v.SearchCounted(q, nil, visit)
}

// SearchAll returns every object intersecting q at the view's epoch.
func (v *View) SearchAll(q Rect) []Item {
	var out []Item
	v.Search(q, func(id ObjectID, r Rect) bool {
		out = append(out, Item{Object: id, Rect: r})
		return true
	})
	return out
}

// Count returns the number of objects intersecting q at the view's epoch.
func (v *View) Count(q Rect) int {
	n := 0
	v.Search(q, func(ObjectID, Rect) bool { n++; return true })
	return n
}

// NearestNeighbors returns the k objects closest to p at the view's epoch,
// ordered by ascending distance, with the same traversal and I/O accounting
// as Tree.NearestNeighbors.
func (v *View) NearestNeighbors(k int, p Point) []Neighbor {
	raw := v.v.NearestNeighbors(k, p)
	out := make([]Neighbor, len(raw))
	for i, n := range raw {
		out[i] = Neighbor{Object: n.Object, Rect: n.Rect, DistSq: n.DistSq}
	}
	return out
}

// BatchSearch runs a batch of range queries against the view on a pool of
// worker goroutines, exactly like the package-level BatchSearch but with
// every query answered at the view's epoch.
func (v *View) BatchSearch(queries []Rect, opts BatchOptions) (BatchResult, error) {
	if v == nil {
		return BatchResult{}, errors.New("cbb: BatchSearch requires a view")
	}
	popts := parallel.Options{
		Workers: opts.Workers,
		Collect: opts.Collect,
		Main:    v.t.tree.Counter(),
	}
	var searcher parallel.Searcher = v.v
	if v.snap != nil {
		searcher = v.snap
	}
	res := parallel.RunBatch(searcher, queries, popts)
	out := BatchResult{
		Counts:  res.Counts,
		Workers: res.Workers,
		IO:      toIOStats(res.IO),
	}
	if opts.Collect {
		out.Items = res.Items
	}
	return out, nil
}

// side binds the view to the join engine's snapshot input.
func (v *View) side() join.Side {
	return join.Side{Tree: v.t.tree, V: v.v, Snap: v.snap}
}

// Batch is an open writer transaction created with Tree.Begin: mutations
// applied through it accumulate in a writer-private overlay (copy-on-write
// clones of the touched nodes and clip entries) and become visible to
// readers only at Commit, as one atomic version switch. Readers concurrent
// with an open batch — including views taken while it is open — keep seeing
// the previous commit; no reader can ever observe half a batch.
//
// A Batch holds the tree's writer lock from Begin until Commit or
// Rollback, serialising it against every other mutation (single-writer
// discipline); it must be used from one goroutine and must be finished
// with exactly one Commit or Rollback (abandoning a batch leaves the
// writer lock held and blocks every future mutation).
//
// Durability of file-backed trees is unchanged: Commit publishes to readers
// in memory, and the next Flush or Close persists all committed batches
// through the existing write-ahead-log commit, atomically.
type Batch struct {
	t    *Tree
	done bool
}

// Begin opens a writer batch. It blocks while another mutation or batch is
// in flight (writers are serialised; readers are never blocked) and fails
// on read-only trees.
func (t *Tree) Begin() (*Batch, error) {
	t.wmu.Lock()
	var err error
	if t.idx != nil {
		err = t.idx.Begin()
	} else {
		err = t.tree.BeginBatch()
	}
	if err != nil {
		t.wmu.Unlock()
		return nil, fmt.Errorf("cbb: begin: %w", err)
	}
	t.batchOpen.Store(true)
	return &Batch{t: t}, nil
}

// Insert adds an object to the batch; it becomes visible to readers at
// Commit.
func (b *Batch) Insert(r Rect, id ObjectID) error {
	if b.done {
		return errBatchDone
	}
	return b.t.insertLocked(r, id)
}

// InsertItems adds a batch of objects through the fast batch-insert
// pipeline (see Tree.InsertItems); they become visible to readers at
// Commit, together with the rest of the batch.
func (b *Batch) InsertItems(items []Item) error {
	if b.done {
		return errBatchDone
	}
	return b.t.insertItemsLocked(items)
}

// Delete removes an object within the batch; the removal becomes visible to
// readers at Commit. It reports whether the object was found (in the
// batch's own uncommitted state).
func (b *Batch) Delete(r Rect, id ObjectID) (bool, error) {
	if b.done {
		return false, errBatchDone
	}
	return b.t.deleteLocked(r, id)
}

// Commit publishes the batch to readers as one new epoch and releases the
// writer lock. Call Tree.Flush afterwards to make the committed state
// durable on a file-backed tree.
func (b *Batch) Commit() error {
	if b.done {
		return errBatchDone
	}
	b.done = true
	if b.t.idx != nil {
		b.t.idx.Commit()
	} else {
		b.t.tree.CommitBatch()
	}
	b.t.batchOpen.Store(false)
	b.t.wmu.Unlock()
	return nil
}

// Rollback discards every mutation applied through the batch and releases
// the writer lock; readers never saw any of it. It is the error-path
// counterpart of Commit (use it in a defer guarded by a committed flag, or
// after a failed Insert/Delete); on an already finished batch it is a
// no-op, so `defer b.Rollback()` after a successful Commit is safe.
func (b *Batch) Rollback() {
	if b.done {
		return
	}
	b.done = true
	if b.t.idx != nil {
		b.t.idx.Rollback()
	} else {
		b.t.tree.RollbackBatch()
	}
	b.t.batchOpen.Store(false)
	b.t.wmu.Unlock()
}

var errBatchDone = errors.New("cbb: batch already committed or rolled back")
