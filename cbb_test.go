package cbb

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	opts, err := Options{Dims: 2}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxEntries <= 0 || opts.MinEntries <= 0 || opts.MaxClipPoints != 8 || opts.ClipThreshold != 0.025 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
	if _, err := (Options{}).withDefaults(); err == nil {
		t.Error("missing Dims must be rejected")
	}
	if _, err := (Options{Dims: 2, Clipping: ClipMethod(9)}).withDefaults(); err == nil {
		t.Error("unknown clipping method must be rejected")
	}
	if _, err := New(Options{Dims: 0}); err == nil {
		t.Error("New should propagate option errors")
	}
}

func TestClipMethodString(t *testing.T) {
	if ClipStairline.String() != "CSTA" || ClipSkyline.String() != "CSKY" || ClipNone.String() != "none" {
		t.Error("clip method names wrong")
	}
	if ClipMethod(9).String() == "" {
		t.Error("unknown method should render")
	}
}

func TestQuickstartFlow(t *testing.T) {
	tree, err := New(Options{Dims: 2, Variant: RStarTree})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R(0, 0, 10, 5), 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R(20, 20, 24, 28), 2); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 2 || tree.Height() == 0 {
		t.Fatalf("unexpected shape: len=%d height=%d", tree.Len(), tree.Height())
	}
	if got := tree.Count(R(1, 1, 3, 3)); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	all := tree.SearchAll(R(-100, -100, 100, 100))
	if len(all) != 2 {
		t.Fatalf("SearchAll found %d", len(all))
	}
	found, err := tree.Delete(R(0, 0, 10, 5), 1)
	if err != nil || !found {
		t.Fatalf("Delete: %v %v", found, err)
	}
	if tree.Len() != 1 {
		t.Fatal("Len after delete wrong")
	}
	if found, _ := tree.Delete(R(0, 0, 1, 1), 99); found {
		t.Error("deleting a missing object should report false")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tree.Bounds().Equal(R(20, 20, 24, 28)) {
		t.Errorf("Bounds = %v", tree.Bounds())
	}
}

func TestAllVariantsAndClipModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 2000)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		items[i] = Item{Object: ObjectID(i), Rect: R(x, y, x+rng.Float64()*30, y+rng.Float64()*2)}
	}
	queries := make([]Rect, 100)
	for i := range queries {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		queries[i] = R(x, y, x+8, y+8)
	}
	// Reference counts from a plain unclipped quadratic tree.
	ref, err := New(Options{Dims: 2, Variant: QRTree, Clipping: ClipNone, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = ref.Count(q)
	}
	for _, variant := range []Variant{QRTree, HRTree, RStarTree, RRStarTree} {
		for _, clip := range []ClipMethod{ClipNone, ClipSkyline, ClipStairline} {
			name := fmt.Sprintf("%v-%v", variant, clip)
			t.Run(name, func(t *testing.T) {
				tree, err := New(Options{Dims: 2, Variant: variant, Clipping: clip, MaxEntries: 16, MinEntries: 6})
				if err != nil {
					t.Fatal(err)
				}
				if err := tree.BulkLoad(items); err != nil {
					t.Fatal(err)
				}
				if tree.Len() != len(items) {
					t.Fatalf("Len = %d", tree.Len())
				}
				for i, q := range queries {
					if got := tree.Count(q); got != want[i] {
						t.Fatalf("query %d: got %d, want %d", i, got, want[i])
					}
				}
				if err := tree.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestClippingReducesLeafIO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := make([]Item, 4000)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if i%2 == 0 {
			items[i] = Item{Object: ObjectID(i), Rect: R(x, y, x+rng.Float64()*50, y+1)}
		} else {
			items[i] = Item{Object: ObjectID(i), Rect: R(x, y, x+1, y+rng.Float64()*50)}
		}
	}
	queries := make([]Rect, 300)
	for i := range queries {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		queries[i] = R(x, y, x+4, y+4)
	}
	measure := func(clip ClipMethod) int64 {
		tree, err := New(Options{Dims: 2, Variant: RStarTree, Clipping: clip, MaxEntries: 16, MinEntries: 6})
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		tree.ResetIOStats()
		for _, q := range queries {
			tree.Search(q, func(ObjectID, Rect) bool { return true })
		}
		return tree.IOStats().LeafReads
	}
	plain := measure(ClipNone)
	sky := measure(ClipSkyline)
	sta := measure(ClipStairline)
	if sta > plain || sky > plain {
		t.Fatalf("clipping must not increase leaf I/O: plain=%d sky=%d sta=%d", plain, sky, sta)
	}
	if sta > sky {
		t.Errorf("stairline clipping (%d) should be at least as effective as skyline (%d)", sta, sky)
	}
	t.Logf("leaf reads: unclipped=%d CSKY=%d CSTA=%d", plain, sky, sta)
}

func TestStatsAndIOStats(t *testing.T) {
	tree, err := New(Options{Dims: 2, MaxEntries: 8, MinEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		if err := tree.Insert(R(x, y, x+5, y+0.3), ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := tree.Stats()
	if s.Objects != 500 || s.LeafNodes == 0 || s.Height < 2 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.ClipPoints == 0 || s.AvgClipPoints <= 0 || s.ClipTableBytes <= 0 {
		t.Fatalf("clip statistics missing: %+v", s)
	}
	tree.ResetIOStats()
	tree.Count(R(0, 0, 100, 100))
	io := tree.IOStats()
	if io.LeafReads == 0 {
		t.Error("full query should read leaves")
	}
	// An unclipped tree reports zero clip statistics.
	plain, _ := New(Options{Dims: 2, Clipping: ClipNone})
	_ = plain.Insert(R(0, 0, 1, 1), 1)
	if ps := plain.Stats(); ps.ClipPoints != 0 || ps.ClipTableBytes != 0 {
		t.Error("unclipped tree should have no clip statistics")
	}
}

func TestJoinsPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mk := func(n int, seed int64) []Item {
		r := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			x, y, z := r.Float64()*200, r.Float64()*200, r.Float64()*200
			items[i] = Item{Object: ObjectID(i), Rect: R(x, y, z, x+5, y+5, z+5)}
		}
		return items
	}
	leftItems, rightItems := mk(1200, 10), mk(700, 11)
	left, err := New(Options{Dims: 3, Variant: RRStarTree, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := left.BulkLoad(leftItems); err != nil {
		t.Fatal(err)
	}
	right, err := New(Options{Dims: 3, Variant: RRStarTree, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := right.BulkLoad(rightItems); err != nil {
		t.Fatal(err)
	}
	// Brute-force reference.
	var want int64
	for _, a := range leftItems {
		for _, b := range rightItems {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	var seen int64
	inlj, err := IndexNestedLoopJoin(left, rightItems, func(JoinPair) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if inlj.Pairs != want || seen != want {
		t.Fatalf("INLJ pairs = %d (callback %d), want %d", inlj.Pairs, seen, want)
	}
	stt, err := SynchronizedTreeTraversalJoin(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stt.Pairs != want {
		t.Fatalf("STT pairs = %d, want %d", stt.Pairs, want)
	}
	if stt.IO.LeafReads <= 0 || inlj.IO.LeafReads <= 0 {
		t.Error("joins should report I/O")
	}
	if _, err := IndexNestedLoopJoin(nil, nil, nil); err == nil {
		t.Error("nil tree must be rejected")
	}
	if _, err := SynchronizedTreeTraversalJoin(left, nil, nil); err == nil {
		t.Error("nil tree must be rejected")
	}
	_ = rng
}

func TestPointAndRectHelpers(t *testing.T) {
	p := Pt(1, 2)
	if p.Dims() != 2 {
		t.Error("Pt wrong")
	}
	r, err := NewRect(Pt(0, 0), Pt(1, 1))
	if err != nil || r.Volume() != 1 {
		t.Error("NewRect wrong")
	}
	if _, err := NewRect(Pt(2, 2), Pt(1, 1)); err == nil {
		t.Error("invalid rect should be rejected")
	}
}
