package cbb

import (
	"errors"

	"cbb/internal/join"
)

// JoinPair is one result of a spatial join: the ids of two intersecting
// objects, one from each input.
type JoinPair struct {
	Left  ObjectID
	Right ObjectID
}

// JoinResult summarises a spatial join: the number of intersecting pairs and
// the simulated I/O the join incurred.
type JoinResult struct {
	Pairs int64
	IO    IOStats
}

// JoinOptions tunes how a spatial join executes.
type JoinOptions struct {
	// Workers is the number of goroutines the join is fanned out over:
	// 0 (or negative) uses GOMAXPROCS — the same convention as
	// BatchOptions.Workers — and 1 runs sequentially. Higher counts
	// partition the probe set (INLJ) or the admissible pairs of root
	// children (tree-to-tree join). Pair counts and reported I/O are
	// identical for every worker count; only the order in which the visit
	// callback observes pairs changes.
	Workers int
}

// IndexNestedLoopJoin joins the indexed tree with a set of probe items by
// running one range query per probe (the paper's INLJ strategy, used when
// only one input is indexed). The optional visit callback receives every
// matching pair; pass nil to only count.
func IndexNestedLoopJoin(indexed *Tree, probes []Item, visit func(JoinPair)) (JoinResult, error) {
	return IndexNestedLoopJoinWith(indexed, probes, JoinOptions{Workers: 1}, visit)
}

// IndexNestedLoopJoinWith is IndexNestedLoopJoin with execution options;
// JoinOptions.Workers > 1 probes partitions of the probe set concurrently.
func IndexNestedLoopJoinWith(indexed *Tree, probes []Item, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if indexed == nil {
		return JoinResult{}, errors.New("cbb: IndexNestedLoopJoin requires an indexed tree")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	res, err := join.PINLJ(indexed.internalTree(), indexed.internalIndex(), probes, opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}

// SynchronizedTreeTraversalJoin joins two indexed trees by descending both
// hierarchies in lockstep (the paper's STT strategy, used when both inputs
// are indexed). Clipping is applied on whichever inputs have it enabled: a
// subtree pair is skipped when either side's overlap with the other's MBB is
// certified dead space.
func SynchronizedTreeTraversalJoin(left, right *Tree, visit func(JoinPair)) (JoinResult, error) {
	return SynchronizedTreeTraversalJoinWith(left, right, JoinOptions{Workers: 1}, visit)
}

// SynchronizedTreeTraversalJoinWith is SynchronizedTreeTraversalJoin with
// execution options; JoinOptions.Workers > 1 traverses the admissible pairs
// of root children concurrently.
func SynchronizedTreeTraversalJoinWith(left, right *Tree, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if left == nil || right == nil {
		return JoinResult{}, errors.New("cbb: SynchronizedTreeTraversalJoin requires two indexed trees")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	res, err := join.PSTT(left.internalTree(), right.internalTree(), left.internalIndex(), right.internalIndex(), opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}

// IndexNestedLoopJoinView is IndexNestedLoopJoinWith against a pinned read
// view: every probe query runs at the view's epoch, so the join result is
// exactly what a quiesced tree at that epoch would produce even while a
// writer commits concurrently.
func IndexNestedLoopJoinView(indexed *View, probes []Item, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if indexed == nil {
		return JoinResult{}, errors.New("cbb: IndexNestedLoopJoinView requires a view")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	res, err := join.PINLJSide(indexed.side(), probes, opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}

// SynchronizedTreeTraversalJoinView is SynchronizedTreeTraversalJoinWith
// against two pinned read views, one per input; the whole traversal runs at
// the views' epochs regardless of concurrent writers on either tree.
func SynchronizedTreeTraversalJoinView(left, right *View, opts JoinOptions, visit func(JoinPair)) (JoinResult, error) {
	if left == nil || right == nil {
		return JoinResult{}, errors.New("cbb: SynchronizedTreeTraversalJoinView requires two views")
	}
	var cb func(join.Pair)
	if visit != nil {
		cb = func(p join.Pair) { visit(JoinPair{Left: p.Left, Right: p.Right}) }
	}
	res, err := join.PSTTSides(left.side(), right.side(), opts.Workers, cb)
	if err != nil {
		return JoinResult{}, err
	}
	return JoinResult{Pairs: res.Pairs, IO: toIOStats(res.IO)}, nil
}
