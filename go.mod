module cbb

go 1.24
