package cbb

// Concurrency benchmarks: reader latency while a writer continuously
// commits copy-on-write batches, and the writer-side cost of batched
// commits. Tracked in BENCH_baseline.json and run by CI with -benchtime=1x
// as a smoke test. On a single-core machine the "during-commits" numbers
// include genuine CPU contention with the writer goroutine; the point of
// the benchmark is that readers keep completing (no blocking, no locks),
// not that they are contention-free.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// startBackgroundWriter launches a goroutine applying count-preserving
// batches (8 inserts + 8 deletes per commit) until stop is set.
func startBackgroundWriter(b *testing.B, tree *Tree, seed int64) (stop func()) {
	b.Helper()
	var quit atomic.Bool
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(seed))
	var queue []Item
	nextID := ObjectID(1 << 40)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !quit.Load() {
			batch, err := tree.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			for k := 0; k < 8; k++ {
				lo := Pt(rng.Float64(), rng.Float64())
				it := Item{Object: nextID, Rect: Rect{Lo: lo, Hi: Pt(lo[0]+0.001, lo[1]+0.001)}}
				nextID++
				if err := batch.Insert(it.Rect, it.Object); err != nil {
					b.Error(err)
					return
				}
				queue = append(queue, it)
			}
			for k := 0; k < 8 && len(queue) > 16; k++ {
				it := queue[0]
				queue = queue[1:]
				if _, err := batch.Delete(it.Rect, it.Object); err != nil {
					b.Error(err)
					return
				}
			}
			if err := batch.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	return func() {
		quit.Store(true)
		wg.Wait()
	}
}

// BenchmarkReadWhileWrite measures one range query per iteration on a tree
// of 50k uniform rectangles, (a) quiesced, (b) while a writer goroutine
// commits batches continuously, and (c) on a pinned snapshot view during
// the same write storm. Readers never block: the only difference between
// the variants on a multi-core machine is cache traffic; on a single core
// it is timeslice sharing with the writer.
func BenchmarkReadWhileWrite(b *testing.B) {
	for _, cm := range []ClipMethod{ClipNone, ClipStairline} {
		for _, mode := range []string{"quiesced", "during-commits", "view-during-commits"} {
			b.Run(fmt.Sprintf("clip=%s/%s", cm, mode), func(b *testing.B) {
				tree, queries := hotPathTree(b, 50000, 2, cm)
				hits := 0
				visit := func(ObjectID, Rect) bool { hits++; return true }
				if mode != "quiesced" {
					stop := startBackgroundWriter(b, tree, 11)
					defer stop()
				}
				var view *View
				if mode == "view-during-commits" {
					view = tree.Snapshot()
					defer view.Close()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q := queries[i%len(queries)]
					if view != nil {
						view.Search(q, visit)
					} else {
						tree.Search(q, visit)
					}
				}
				b.StopTimer()
				if hits == 0 {
					b.Fatal("queries matched nothing; benchmark is vacuous")
				}
			})
		}
	}
}

// BenchmarkWriterCommit measures the writer side of the copy-on-write
// machinery: one count-preserving 8+8 batch (clone, mutate, publish) per
// iteration on a 50k-object tree, with no readers in the way.
func BenchmarkWriterCommit(b *testing.B) {
	for _, cm := range []ClipMethod{ClipNone, ClipStairline} {
		b.Run(fmt.Sprintf("clip=%s", cm), func(b *testing.B) {
			tree, _ := hotPathTree(b, 50000, 2, cm)
			rng := rand.New(rand.NewSource(13))
			var queue []Item
			nextID := ObjectID(1 << 40)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch, err := tree.Begin()
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 8; k++ {
					lo := Pt(rng.Float64(), rng.Float64())
					it := Item{Object: nextID, Rect: Rect{Lo: lo, Hi: Pt(lo[0]+0.001, lo[1]+0.001)}}
					nextID++
					if err := batch.Insert(it.Rect, it.Object); err != nil {
						b.Fatal(err)
					}
					queue = append(queue, it)
				}
				for k := 0; k < 8 && len(queue) > 16; k++ {
					it := queue[0]
					queue = queue[1:]
					if _, err := batch.Delete(it.Rect, it.Object); err != nil {
						b.Fatal(err)
					}
				}
				if err := batch.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotAcquire measures the cost of pinning and releasing a
// read view (the per-view, not per-query, overhead of snapshot isolation).
func BenchmarkSnapshotAcquire(b *testing.B) {
	tree, _ := hotPathTree(b, 50000, 2, ClipStairline)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := tree.Snapshot()
		v.Close()
	}
}
