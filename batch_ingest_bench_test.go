package cbb

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkBatchIngest measures the fast batch-ingest pipeline against the
// per-item insert loop it replaces: batch sizes from trivial (8, where the
// fast path degenerates to per-item) through graft-heavy (4096, 65536),
// with and without clip maintenance, in memory and file-backed. For the
// file-backed rows both modes provide the same durability contract — the
// data is on disk when the timed region ends — so the per-item loop flushes
// after every insert (per-op commit, what an incremental durable writer
// pays) while the batch path rides one group-committed flush. Each
// iteration ingests the whole batch into a freshly seeded 2000-object tree;
// items/s is the headline metric, allocs/op shows the batch-amortised COW.
func BenchmarkBatchIngest(b *testing.B) {
	const seedN = 2000
	seed := corpusItems(2, seedN, 101)
	for _, cm := range []ClipMethod{ClipNone, ClipStairline} {
		for _, size := range []int{8, 256, 4096, 65536} {
			batch := corpusItems(2, size, 103)
			for i := range batch {
				batch[i].Object = ObjectID(1000000 + i)
			}
			for _, mode := range []string{"per-item", "batch"} {
				for _, store := range []string{"mem", "file"} {
					if store == "file" && size != 4096 {
						continue // one file-backed size keeps the matrix honest without dwarfing it
					}
					name := fmt.Sprintf("clip=%s/n=%d/%s/%s", cm, size, mode, store)
					b.Run(name, func(b *testing.B) {
						opts := Options{Dims: 2, Clipping: cm, MaxEntries: 16, MinEntries: 6}
						dir := b.TempDir()
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							b.StopTimer()
							var tree *Tree
							var err error
							if store == "file" {
								tree, err = Create(filepath.Join(dir, fmt.Sprintf("b%d.cbb", i)), opts)
							} else {
								tree, err = New(opts)
							}
							if err != nil {
								b.Fatal(err)
							}
							if err := tree.BulkLoad(seed); err != nil {
								b.Fatal(err)
							}
							if store == "file" {
								if err := tree.Flush(); err != nil {
									b.Fatal(err)
								}
							}
							b.StartTimer()
							if mode == "batch" {
								if err := tree.InsertItems(batch); err != nil {
									b.Fatal(err)
								}
							} else {
								for _, it := range batch {
									if err := tree.Insert(it.Rect, it.Object); err != nil {
										b.Fatal(err)
									}
									if store == "file" {
										if err := tree.Flush(); err != nil {
											b.Fatal(err)
										}
									}
								}
							}
							if store == "file" {
								if err := tree.Flush(); err != nil {
									b.Fatal(err)
								}
							}
							b.StopTimer()
							if tree.Len() != seedN+size {
								b.Fatalf("Len %d, want %d", tree.Len(), seedN+size)
							}
							if store == "file" {
								if err := tree.Close(); err != nil {
									b.Fatal(err)
								}
							}
							b.StartTimer()
						}
						b.StopTimer()
						b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "items/s")
					})
				}
			}
		}
	}
}
