// Package cbb is a spatial indexing library built around clipped bounding
// boxes (CBBs), reproducing Šidlauskas, Chester, Tzirita Zacharatou and
// Ailamaki, "Improving Spatial Data Processing by Clipping Minimum Bounding
// Boxes" (ICDE 2018).
//
// The library provides four classic R-tree variants (Guttman's quadratic
// R-tree, the Hilbert R-tree, the R*-tree, and the revised R*-tree) over a
// simulated paged store with exact I/O accounting, and augments any of them
// with clipped bounding boxes: per-node clip points that certify rectangular
// corner regions as dead space so range queries, updates, and spatial joins
// can skip nodes whose overlap with the probe is entirely empty.
//
// # Quick start
//
//	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RStarTree})
//	if err != nil { ... }
//	tree.Insert(cbb.R(0, 0, 10, 5), 1)
//	tree.Insert(cbb.R(20, 20, 24, 28), 2)
//	tree.Search(cbb.R(1, 1, 3, 3), func(id cbb.ObjectID, r cbb.Rect) bool {
//	    fmt.Println(id, r)
//	    return true
//	})
//
// Clipping is on by default (stairline clip points, the paper's CSTA); use
// Options.Clipping to select skyline clipping or to disable clipping
// entirely, e.g. to measure the I/O difference via Tree.IOStats.
//
// # Persistence
//
// A built tree can be serialised to a versioned, checksummed snapshot and
// reconstructed without rebuilding: SaveTo/Load round-trip through any
// io.Writer/io.Reader, while Create/Open bind a tree to a snapshot file.
// Open returns a tree that serves queries directly off the on-disk page
// file, faulting node pages in on demand through the same buffer pool and
// I/O counters as the in-memory simulation — and, when the file is
// writable, accepts Insert/Delete and commits the dirty pages back
// atomically (via a write-ahead log) on every Flush or Close. OpenReadOnly
// forces the previous read-only behaviour. See persist.go and the README's
// "Updates & durability" section.
//
// # Concurrency
//
// The engine is single-writer / multi-reader with snapshot isolation,
// implemented by copy-on-write epoch versioning: every committed mutation
// clones the nodes (and clip entries) it touches into a writer-private
// overlay and publishes a new immutable version behind one atomic pointer.
// Readers never block writers and writers never block readers.
//
//   - Queries (Search, SearchAll, Count, NearestNeighbors, BatchSearch,
//     joins) may run from any number of goroutines at any time — including
//     concurrently with Insert, Delete, and open batches. Each query loads
//     the current version once and traverses it lock-free; it sees either
//     the state before a concurrent commit or after it, never a mix.
//   - Tree.Snapshot returns a pinned View: a frozen state of the index that
//     an arbitrarily long sequence of queries (and view-based joins) can
//     run against while writers keep committing. Close releases it.
//   - Writers are serialised by an internal writer lock. Tree.Begin opens a
//     Batch whose mutations are published to readers as one atomic commit.
//   - AttachBufferPool, DetachBufferPool, ResetIOStats, SaveTo, Stats, and
//     Validate remain maintenance operations: run them while no writer is
//     active (they may race with a concurrent mutation's bookkeeping, not
//     with readers).
//
// File-backed trees opened with Open keep the same guarantees; writer
// durability (Flush, Close) reuses the write-ahead-log commit and never
// blocks readers. These guarantees are enforced by race-detector regression
// and stress tests. See the README's "Concurrency model" section.
package cbb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/parallel"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Point is a d-dimensional point (a slice of coordinates).
type Point = geom.Point

// Rect is an axis-aligned d-dimensional rectangle with inclusive bounds.
type Rect = geom.Rect

// Pt builds a Point from coordinates.
func Pt(coords ...float64) Point { return geom.Pt(coords...) }

// R builds a Rect from 2·d coordinates: R(x1, y1, x2, y2) in 2d,
// R(x1, y1, z1, x2, y2, z2) in 3d. It panics on invalid input; use NewRect
// for checked construction.
func R(coords ...float64) Rect { return geom.R(coords...) }

// NewRect builds a Rect from its minimum and maximum corner, validating the
// input.
func NewRect(lo, hi Point) (Rect, error) { return geom.NewRect(lo, hi) }

// ObjectID identifies an object stored in the index.
type ObjectID = rtree.ObjectID

// Item pairs an object id with its rectangle, used for bulk loading and as
// the probe input of joins.
type Item = rtree.Item

// Variant selects the R-tree construction strategy.
type Variant = rtree.Variant

// The four R-tree variants evaluated in the paper.
const (
	// QRTree is Guttman's original R-tree with the quadratic split.
	QRTree = rtree.Quadratic
	// HRTree is the Hilbert R-tree (bulk loaded along the Hilbert curve).
	HRTree = rtree.Hilbert
	// RStarTree is the R*-tree of Beckmann et al.
	RStarTree = rtree.RStar
	// RRStarTree is the revised R*-tree (the paper's strongest baseline).
	RRStarTree = rtree.RRStar
)

// ClipMethod selects how clip points are generated.
type ClipMethod int

// Clipping configurations.
const (
	// ClipStairline uses point-spliced (stairline) clip points — the paper's
	// CSTA, its most effective configuration and the library default.
	ClipStairline ClipMethod = iota
	// ClipSkyline uses object-situated (skyline) clip points — the paper's
	// CSKY, cheaper to build with a smaller footprint but less pruning.
	ClipSkyline
	// ClipNone disables clipping; the tree behaves as a plain R-tree.
	ClipNone
)

// String names the clipping configuration.
func (m ClipMethod) String() string {
	switch m {
	case ClipStairline:
		return "CSTA"
	case ClipSkyline:
		return "CSKY"
	case ClipNone:
		return "none"
	default:
		return fmt.Sprintf("ClipMethod(%d)", int(m))
	}
}

// Options configures a Tree.
type Options struct {
	// Dims is the dimensionality of indexed rectangles (required; 2 or 3 are
	// the extensively tested paths).
	Dims int
	// Variant selects the R-tree variant (default RRStarTree).
	Variant Variant
	// Clipping selects the clip-point method (default ClipStairline).
	Clipping ClipMethod
	// MaxEntries is the node capacity M; 0 derives it from a 4 KiB page.
	MaxEntries int
	// MinEntries is the minimum fill m; 0 uses 40 % of MaxEntries.
	MinEntries int
	// MaxClipPoints is the paper's k, the maximum clip points kept per node;
	// 0 uses 2^(Dims+1).
	MaxClipPoints int
	// ClipThreshold is the paper's τ: a clip point is kept only if it prunes
	// at least this fraction of the node volume; 0 uses 2.5 %.
	ClipThreshold float64
	// Universe optionally bounds the data space (used by the Hilbert
	// variant); the zero Rect means "unknown".
	Universe Rect
}

func (o Options) withDefaults() (Options, error) {
	if o.Dims < 1 {
		return o, errors.New("cbb: Options.Dims must be at least 1")
	}
	if o.MaxEntries == 0 {
		o.MaxEntries = rtree.MaxEntriesForPage(storage.DefaultPageSize, o.Dims)
	}
	if o.MinEntries == 0 {
		o.MinEntries = o.MaxEntries * 2 / 5
		if o.MinEntries < 1 {
			o.MinEntries = 1
		}
	}
	if o.MaxClipPoints == 0 {
		o.MaxClipPoints = 1 << uint(o.Dims+1)
	}
	if o.ClipThreshold == 0 {
		o.ClipThreshold = 0.025
	}
	switch o.Clipping {
	case ClipStairline, ClipSkyline, ClipNone:
	default:
		return o, fmt.Errorf("cbb: unknown clipping method %d", int(o.Clipping))
	}
	return o, nil
}

func (o Options) clipParams() core.Params {
	method := core.MethodStairline
	if o.Clipping == ClipSkyline {
		method = core.MethodSkyline
	}
	return core.Params{K: o.MaxClipPoints, Tau: o.ClipThreshold, Method: method}
}

// Tree is a spatial index: an R-tree of the configured variant, optionally
// augmented with clipped bounding boxes. It is single-writer/multi-reader
// with snapshot isolation: read-only queries (Search, SearchAll, Count,
// NearestNeighbors, BatchSearch, joins) may run from any number of
// goroutines at any time, concurrently with mutations, and mutations are
// serialised internally — see the package documentation's Concurrency
// section, Snapshot, and Begin.
type Tree struct {
	opts Options
	tree *rtree.Tree
	idx  *clipindex.Index // nil when clipping is disabled

	// wmu serialises writers (Insert, Delete, BulkLoad, Batch, Flush,
	// Close): the engine is single-writer/multi-reader, so concurrent
	// mutators queue here while readers proceed lock-free on published
	// versions. batchOpen marks that a Batch currently holds wmu, so
	// Flush/Close can fail fast instead of self-deadlocking when called
	// from the goroutine that owns the open batch.
	wmu       sync.Mutex
	batchOpen atomic.Bool

	// Persistence binding (see persist.go): pager is the on-disk page store
	// of a tree opened with Open/OpenReadOnly or created with Create; mstore
	// is the memory-mapped store of a tree opened with OpenMmap (always
	// read-only). At most one of the two is set.
	pager  *storage.FilePager
	mstore *storage.MmapStore
}

// New creates an empty tree.
func New(opts Options) (*Tree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg := rtree.Config{
		Dims:       opts.Dims,
		MaxEntries: opts.MaxEntries,
		MinEntries: opts.MinEntries,
		Variant:    opts.Variant,
		Universe:   opts.Universe,
	}
	base, err := rtree.New(cfg)
	if err != nil {
		return nil, err
	}
	t := &Tree{opts: opts, tree: base}
	if opts.Clipping != ClipNone {
		idx, err := clipindex.New(base, opts.clipParams())
		if err != nil {
			return nil, err
		}
		t.idx = idx
	}
	return t, nil
}

// Options returns the effective configuration of the tree.
func (t *Tree) Options() Options { return t.opts }

// readVersion returns the version of the last fully published commit: for
// a clipped tree that is the combined snapshot's version, so structural
// accessors (Len, Height, Bounds, NearestNeighbors) can never run ahead of
// what Search observes during the instant a commit is being published.
func (t *Tree) readVersion() *rtree.Version {
	if t.idx != nil {
		return t.idx.Snap().Version()
	}
	return t.tree.CurrentVersion()
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.readVersion().Len() }

// Height returns the number of tree levels (0 when empty).
func (t *Tree) Height() int { return t.readVersion().Height() }

// Bounds returns the MBB of all indexed objects (the zero Rect when empty).
func (t *Tree) Bounds() Rect { return t.readVersion().Bounds() }

// Insert adds an object with the given rectangle and id. Duplicate ids are
// permitted but make Delete ambiguous; most applications use unique ids.
// The insertion is published to readers atomically when Insert returns;
// concurrent queries and open views are never blocked and never observe a
// half-applied mutation. Use Begin to batch many mutations into one
// published epoch.
func (t *Tree) Insert(r Rect, id ObjectID) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.insertLocked(r, id)
}

func (t *Tree) insertLocked(r Rect, id ObjectID) error {
	if t.idx != nil {
		_, err := t.idx.Insert(r, id)
		return err
	}
	_, err := t.tree.Insert(r, id)
	return err
}

// InsertItems adds a batch of objects through the fast batch-insert
// pipeline and publishes them to readers as one atomic epoch: the batch is
// Hilbert-sorted, contiguous runs that share a target leaf are placed (or
// bulk-packed into grafted subtrees) together, every touched node is
// copy-on-write cloned at most once, and with clipping enabled the clip
// table is maintained once from the aggregated trace. A batch on an empty
// tree is bulk packed like BulkLoad. Equivalent to inserting each item
// individually — the same objects become searchable with identical result
// sets — but 10-100× cheaper for large batches. Inside an explicit Batch
// use Batch.InsertItems instead.
func (t *Tree) InsertItems(items []Item) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.insertItemsLocked(items)
}

func (t *Tree) insertItemsLocked(items []Item) error {
	if t.idx != nil {
		return t.idx.InsertItems(items)
	}
	_, err := t.tree.InsertItems(items)
	return err
}

// Delete removes the object with the exact rectangle and id. It reports
// whether the object was found. Like Insert, the removal is published to
// readers atomically on return.
func (t *Tree) Delete(r Rect, id ObjectID) (bool, error) {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.deleteLocked(r, id)
}

func (t *Tree) deleteLocked(r Rect, id ObjectID) (bool, error) {
	if t.idx != nil {
		return t.idx.Delete(r, id)
	}
	trace, err := t.tree.Delete(r, id)
	if err != nil {
		return false, err
	}
	return trace.Found, nil
}

// BulkLoad builds the tree from scratch out of the given items using the
// variant's bulk-loading strategy (Hilbert packing for HRTree,
// Sort-Tile-Recursive for the others) and then computes clip points for
// every node. The tree must be empty.
func (t *Tree) BulkLoad(items []Item) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if err := t.tree.BulkLoad(items); err != nil {
		return err
	}
	if t.idx != nil {
		t.idx.RebuildAll()
	}
	return nil
}

// Search calls visit for every object whose rectangle intersects q;
// traversal stops early when visit returns false. With clipping enabled,
// child nodes whose overlap with q is entirely certified dead space are
// skipped; the result set is always identical to an unclipped search. An
// invalid query, or one whose dimensionality differs from the tree's,
// matches nothing.
func (t *Tree) Search(q Rect, visit func(ObjectID, Rect) bool) {
	if t.idx != nil {
		t.idx.Search(q, visit)
		return
	}
	t.tree.Search(q, visit)
}

// SearchAll returns every object intersecting q as a slice of items.
func (t *Tree) SearchAll(q Rect) []Item {
	var out []Item
	t.Search(q, func(id ObjectID, r Rect) bool {
		out = append(out, Item{Object: id, Rect: r})
		return true
	})
	return out
}

// Count returns the number of objects intersecting q.
func (t *Tree) Count(q Rect) int {
	n := 0
	t.Search(q, func(ObjectID, Rect) bool { n++; return true })
	return n
}

// BatchOptions configures BatchSearch.
type BatchOptions struct {
	// Workers is the number of goroutines the batch is fanned out over;
	// 0 (or negative) uses GOMAXPROCS, 1 runs sequentially. The effective
	// count is clamped to the number of queries.
	Workers int
	// Collect gathers the matching items of every query in
	// BatchResult.Items instead of only counting matches.
	Collect bool
}

// BatchResult is the outcome of a BatchSearch, index-aligned with the query
// batch. Counts, Items, and IO are deterministic: they equal what a
// sequential loop over the same queries would produce, for any worker count.
type BatchResult struct {
	// Counts holds the number of matches of each query.
	Counts []int
	// Items holds the matches of each query (nil unless Options.Collect).
	Items [][]Item
	// IO is the exact I/O incurred by this batch, merged from the workers'
	// private counters (it is also added to the tree's cumulative IOStats).
	IO IOStats
	// Workers is the number of goroutines actually used.
	Workers int
}

// BatchSearch runs a batch of range queries against the tree on a pool of
// worker goroutines (the clipped search path when clipping is enabled).
// Every worker charges a private I/O counter and the per-worker totals are
// merged afterwards, so BatchResult.IO is exact and the tree's cumulative
// IOStats advance exactly as in a sequential run. BatchSearch is itself safe
// to call concurrently with other read-only queries.
func BatchSearch(t *Tree, queries []Rect, opts BatchOptions) (BatchResult, error) {
	if t == nil {
		return BatchResult{}, errors.New("cbb: BatchSearch requires a tree")
	}
	popts := parallel.Options{
		Workers: opts.Workers,
		Collect: opts.Collect,
		Main:    t.tree.Counter(),
	}
	var searcher parallel.Searcher = t.tree
	if t.idx != nil {
		searcher = t.idx
	}
	res := parallel.RunBatch(searcher, queries, popts)
	out := BatchResult{
		Counts:  res.Counts,
		Workers: res.Workers,
		IO:      toIOStats(res.IO),
	}
	if opts.Collect {
		out.Items = res.Items
	}
	return out, nil
}

// Neighbor is one result of a nearest-neighbour query.
type Neighbor struct {
	Object ObjectID
	Rect   Rect
	DistSq float64
}

// NearestNeighbors returns the k objects closest to the point p (by minimum
// Euclidean distance to their rectangles), ordered by ascending distance.
// Nearest-neighbour search is an extension beyond the paper's evaluation; it
// traverses the plain R-tree best-first and works identically whether or not
// clipping is enabled.
func (t *Tree) NearestNeighbors(k int, p Point) []Neighbor {
	raw := t.readVersion().NearestNeighbors(k, p)
	out := make([]Neighbor, len(raw))
	for i, n := range raw {
		out[i] = Neighbor{Object: n.Object, Rect: n.Rect, DistSq: n.DistSq}
	}
	return out
}

// IOStats is a snapshot of the simulated I/O counters: the number of leaf
// and directory node accesses performed by searches and joins, the number of
// node writes performed by updates, and the number of clip-table
// recomputations.
type IOStats struct {
	LeafReads int64
	DirReads  int64
	Writes    int64
	Reclips   int64
}

// toIOStats converts an internal counter snapshot into the public IOStats.
func toIOStats(s storage.Snapshot) IOStats {
	return IOStats{LeafReads: s.LeafReads, DirReads: s.DirReads, Writes: s.Writes, Reclips: s.Reclips}
}

// IOStats returns the accumulated I/O counters.
func (t *Tree) IOStats() IOStats {
	return toIOStats(t.tree.Counter().Snapshot())
}

// ResetIOStats zeroes the I/O counters and, when a buffer pool is attached,
// also empties the pool and zeroes its hit/miss statistics (a cold start).
// It is typically called before a measured query batch; resetting both
// together guarantees that no buffer state leaks from one measured run into
// the next.
func (t *Tree) ResetIOStats() { t.tree.ResetIO() }

// AttachBufferPool places an LRU buffer pool of the given node capacity in
// front of the simulated disk: every node access additionally touches the
// pool, and BufferStats reports how many accesses hit it. A capacity <= 0
// means unbounded (everything hits after first touch). The pool is
// lock-striped so parallel batch searches do not serialise on one mutex;
// see storage.BufferPool for the sharding semantics. Attaching replaces
// any previous pool and must not race with concurrent queries; attach before
// the read phase starts.
func (t *Tree) AttachBufferPool(capacity int) {
	t.tree.SetBufferPool(storage.NewBufferPool(capacity))
}

// AttachBufferPoolBytes is AttachBufferPool with the budget expressed in
// resident bytes instead of a page count: every node access charges the
// node's encoded size, so a compressed (v2) snapshot genuinely fits more of
// its tree into the same budget than an uncompressed one — the honest way to
// compare storage formats under one memory limit. A byteCapacity <= 0 means
// unbounded.
func (t *Tree) AttachBufferPoolBytes(byteCapacity int64) {
	t.tree.SetBufferPool(storage.NewBufferPoolBytes(byteCapacity))
}

// DetachBufferPool removes the attached buffer pool, if any.
func (t *Tree) DetachBufferPool() { t.tree.SetBufferPool(nil) }

// BufferStats reports the hit/miss counts of the attached buffer pool.
type BufferStats struct {
	Hits   int64
	Misses int64
}

// HitRate returns the fraction of accesses served from the buffer (0 when
// the pool has not been touched).
func (s BufferStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BufferStats returns the attached pool's statistics; ok is false when no
// pool is attached.
func (t *Tree) BufferStats() (stats BufferStats, ok bool) {
	p := t.tree.BufferPool()
	if p == nil {
		return BufferStats{}, false
	}
	hits, misses := p.Stats()
	return BufferStats{Hits: hits, Misses: misses}, true
}

// Stats summarises the structure of the index.
type Stats struct {
	Objects        int
	Height         int
	LeafNodes      int
	DirNodes       int
	ClipPoints     int
	AvgClipPoints  float64
	ClipTableBytes int
	// PlaneBytes is the total resident size of the in-memory quantised SoA
	// filter planes the scan kernels prune with (charged to buffer pools on
	// top of each node's encoded page size).
	PlaneBytes int
}

// Stats returns structural statistics of the tree and its clip table.
func (t *Tree) Stats() Stats {
	ts := t.tree.Stats()
	out := Stats{
		Objects:    ts.Objects,
		Height:     ts.Height,
		LeafNodes:  ts.LeafNodes,
		DirNodes:   ts.DirNodes,
		PlaneBytes: ts.PlaneBytes,
	}
	if t.idx != nil {
		out.ClipPoints = t.idx.Table().ClipPointCount()
		out.AvgClipPoints = t.idx.Table().AvgClipPointsPerNode()
		out.ClipTableBytes = t.idx.AuxBytes()
	}
	return out
}

// Validate checks the structural invariants of the tree and, when clipping
// is enabled, the soundness of every stored clip point. It is intended for
// tests and debugging; it is not cheap.
func (t *Tree) Validate() error {
	if err := t.tree.Validate(); err != nil {
		return err
	}
	if t.idx != nil {
		return t.idx.Validate()
	}
	return nil
}

// internalTree exposes the underlying R-tree to sibling files in this
// package (joins); it is not part of the public API.
func (t *Tree) internalTree() *rtree.Tree { return t.tree }

func (t *Tree) internalIndex() *clipindex.Index { return t.idx }
