package cbb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cbb/internal/storage"
)

// This file tests the fast batch-ingest pipeline end to end at the public
// surface: Tree.InsertItems / Batch.InsertItems / ShardedBatch.InsertItems.
//
// The equivalence contract (see internal/rtree/ingest.go): a batch insert
// indexes exactly the objects a per-item insert loop would — identical
// result sets for every query — but may build a different (equally valid)
// tree shape, because the fast path routes Hilbert-sorted runs and grafts
// bulk-packed subtrees. What IS bit-identical is the batch path against
// itself: an in-memory tree and a file-backed tree fed the same seed and the
// same batch produce identical structure, stats, traversal order, and
// leaf/dir read I/O.

// sortedItems renders SearchAll results order-independently.
func sortedItemSet(results []Item) map[string]int {
	set := make(map[string]int, len(results))
	for _, it := range results {
		set[fmt.Sprintf("%d:%v", it.Object, it.Rect)]++
	}
	return set
}

func assertSameResults(t *testing.T, label string, want, got []Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	ws, gs := sortedItemSet(want), sortedItemSet(got)
	for k, n := range ws {
		if gs[k] != n {
			t.Fatalf("%s: result multiset differs at %s (%d vs %d)", label, k, gs[k], n)
		}
	}
}

// TestBatchInsertEquivalenceMatrix is the batch-vs-per-item matrix: dims
// 1-3, every clip method, batch sizes from trivial to graft-heavy. Each cell
// checks that InsertItems and a per-item Insert loop index exactly the same
// objects (universe query and spot queries), and that the batched tree
// validates.
func TestBatchInsertEquivalenceMatrix(t *testing.T) {
	methods := []ClipMethod{ClipNone, ClipStairline, ClipSkyline}
	sizes := []int{8, 256, 4096}
	for d := 1; d <= 3; d++ {
		for _, m := range methods {
			for _, size := range sizes {
				if size == 4096 && d != 2 {
					continue // bound runtime; the graft-heavy case runs in 2-D
				}
				name := fmt.Sprintf("%dd/%v/batch=%d", d, m, size)
				t.Run(name, func(t *testing.T) {
					seed := corpusItems(d, 200, 17)
					batch := corpusItems(d, size, 19)
					for i := range batch {
						batch[i].Object = ObjectID(100000 + i)
					}
					opts := Options{Dims: d, Clipping: m, MaxEntries: 16, MinEntries: 6}
					batched, err := New(opts)
					if err != nil {
						t.Fatal(err)
					}
					perItem, err := New(opts)
					if err != nil {
						t.Fatal(err)
					}
					for _, tr := range []*Tree{batched, perItem} {
						for _, it := range seed {
							if err := tr.Insert(it.Rect, it.Object); err != nil {
								t.Fatal(err)
							}
						}
					}
					if err := batched.InsertItems(batch); err != nil {
						t.Fatal(err)
					}
					for _, it := range batch {
						if err := perItem.Insert(it.Rect, it.Object); err != nil {
							t.Fatal(err)
						}
					}
					if batched.Len() != perItem.Len() {
						t.Fatalf("Len %d, per-item %d", batched.Len(), perItem.Len())
					}
					if err := batched.Validate(); err != nil {
						t.Fatalf("Validate: %v", err)
					}
					uni := Rect{Lo: make(Point, d), Hi: make(Point, d)}
					for j := 0; j < d; j++ {
						uni.Lo[j], uni.Hi[j] = -1e6, 1e6
					}
					assertSameResults(t, "universe", perItem.SearchAll(uni), batched.SearchAll(uni))
					for i, q := range corpusQueries(d, 25, 23) {
						assertSameResults(t, fmt.Sprintf("query %d", i), perItem.SearchAll(q), batched.SearchAll(q))
					}
				})
			}
		}
	}
}

// TestBatchInsertFileBackedTwin pins the determinism half of the contract:
// the batch path against itself is bit-identical between an in-memory tree
// and a file-backed tree — same stats (node counts, clip points), same
// SearchAll order, same leaf/dir read I/O — and survives a flush/reopen
// cycle unchanged.
func TestBatchInsertFileBackedTwin(t *testing.T) {
	for _, m := range []ClipMethod{ClipNone, ClipStairline, ClipSkyline} {
		t.Run(fmt.Sprintf("%v", m), func(t *testing.T) {
			opts := Options{Dims: 2, Clipping: m, MaxEntries: 16, MinEntries: 6}
			seed := corpusItems(2, 300, 31)
			batch := corpusItems(2, 4096, 37)
			for i := range batch {
				batch[i].Object = ObjectID(100000 + i)
			}
			queries := corpusQueries(2, 40, 41)

			mem, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "twin.cbb")
			file, err := Create(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range []*Tree{mem, file} {
				for _, it := range seed {
					if err := tr.Insert(it.Rect, it.Object); err != nil {
						t.Fatal(err)
					}
				}
				if err := tr.InsertItems(batch); err != nil {
					t.Fatal(err)
				}
			}
			assertTreesEqual(t, mem, file, queries)

			mem.ResetIOStats()
			file.ResetIOStats()
			for _, q := range queries {
				mem.Search(q, func(ObjectID, Rect) bool { return true })
				file.Search(q, func(ObjectID, Rect) bool { return true })
			}
			ms, fs := mem.IOStats(), file.IOStats()
			if ms.LeafReads != fs.LeafReads || ms.DirReads != fs.DirReads {
				t.Fatalf("read I/O diverges: mem leaf=%d dir=%d, file leaf=%d dir=%d",
					ms.LeafReads, ms.DirReads, fs.LeafReads, fs.DirReads)
			}
			if ms.LeafReads == 0 {
				t.Fatal("query batch charged no leaf reads")
			}
			if err := file.Close(); err != nil {
				t.Fatal(err)
			}
			reopened, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			assertTreesEqual(t, mem, reopened, queries)
			if err := reopened.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchFlushGroupCommit proves the group-commit property at the public
// surface: flushing a multi-thousand-item batch writes all its dirty pages
// through exactly one WAL commit — one WAL write, one fsync — however many
// pages the batch dirtied.
func TestBatchFlushGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.cbb")
	tr, err := Create(path, Options{Dims: 2, Clipping: ClipStairline, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	base := tr.pager.CommitStats() // Create writes the initial empty snapshot
	if err := tr.InsertItems(corpusItems(2, 8192, 43)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	cs := tr.pager.CommitStats()
	if c, f := cs.Commits-base.Commits, cs.WALFsyncs-base.WALFsyncs; c != 1 || f != 1 {
		t.Fatalf("flush of one batch cost %d commits / %d WAL fsyncs, want 1 / 1", c, f)
	}
	if pages := cs.Pages - base.Pages; pages < 100 {
		t.Fatalf("batch commit carried only %d pages; expected a large group", pages)
	}
}

// batchCrashState classifies a reopened tree as the pre-batch state, the
// post-batch state, or neither (which fails the test).
func batchCrashState(t *testing.T, label, path string, pre, post *Tree, queries []Rect) string {
	t.Helper()
	reopened, err := Open(path)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer reopened.Close()
	if err := reopened.Validate(); err != nil {
		t.Fatalf("%s: recovered tree invalid: %v", label, err)
	}
	matches := func(want *Tree) bool {
		if reopened.Len() != want.Len() {
			return false
		}
		for _, q := range queries {
			if reopened.Count(q) != want.Count(q) {
				return false
			}
		}
		return true
	}
	switch {
	case matches(post):
		return "post"
	case matches(pre):
		return "pre"
	default:
		t.Fatalf("%s: recovered state matches neither pre-batch (%d objects) nor post-batch (%d objects): got %d",
			label, pre.Len(), post.Len(), reopened.Len())
		return ""
	}
}

// TestBatchCommitCrashMatrix is the crash-injection matrix for a
// group-committed batch: a file-backed tree ingests one multi-thousand-item
// batch, and the flush is interrupted at every stage — after the WAL is
// durable, before applying the i-th page, and with the WAL truncated or
// corrupted at swept offsets. Reopening must always yield exactly the
// pre-batch or the post-batch state, never a partial batch.
func TestBatchCommitCrashMatrix(t *testing.T) {
	const seedN, batchN = 300, 3000
	opts := Options{Dims: 2, Clipping: ClipStairline, MaxEntries: 16, MinEntries: 6}
	seed := corpusItems(2, seedN, 53)
	batch := corpusItems(2, batchN, 59)
	for i := range batch {
		batch[i].Object = ObjectID(100000 + i)
	}
	queries := corpusQueries(2, 25, 61)

	// Twins of the two legal recovery states.
	pre, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	post, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tw := range []*Tree{pre, post} {
		for _, it := range seed {
			if err := tw.Insert(it.Rect, it.Object); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := post.InsertItems(batch); err != nil {
		t.Fatal(err)
	}

	// mkCrashed builds the seeded file, ingests the batch, and crashes the
	// flush at the given failpoints; it returns the file path with the
	// abandoned (dead-process) state on disk.
	boom := errors.New("injected crash")
	mkCrashed := func(t *testing.T, afterWAL func() error, apply func(int) error) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "crash.cbb")
		created, err := Create(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range seed {
			if err := created.Insert(it.Rect, it.Object); err != nil {
				t.Fatal(err)
			}
		}
		if err := created.Close(); err != nil {
			t.Fatal(err)
		}
		fb, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fb.InsertItems(batch); err != nil {
			t.Fatal(err)
		}
		fb.pager.SetCommitFailpoints(afterWAL, apply)
		if err := fb.Flush(); !errors.Is(err, boom) {
			t.Fatalf("flush error = %v, want injected crash", err)
		}
		// Abandon fb like a dead process; the reopen below is the recovery.
		return path
	}

	t.Run("after-WAL", func(t *testing.T) {
		path := mkCrashed(t, func() error { return boom }, nil)
		if s := batchCrashState(t, "after-WAL", path, pre, post, queries); s != "post" {
			t.Fatalf("committed WAL recovered to %q, want post-batch state", s)
		}
	})

	t.Run("mid-apply", func(t *testing.T) {
		for _, at := range []int{0, 1, 7, 100} {
			at := at
			t.Run(fmt.Sprintf("record=%d", at), func(t *testing.T) {
				path := mkCrashed(t, nil, func(i int) error {
					if i == at {
						return boom
					}
					return nil
				})
				if s := batchCrashState(t, "mid-apply", path, pre, post, queries); s != "post" {
					t.Fatalf("crash before record %d recovered to %q, want post-batch state", at, s)
				}
			})
		}
	})

	t.Run("wal-cut-and-corrupt", func(t *testing.T) {
		// One crashed flush gives us the pristine pre-state page file and
		// the full WAL; every cut/corrupt case restores both and reopens.
		path := mkCrashed(t, func() error { return boom }, nil)
		walPath := path + storage.WALSuffix
		wal, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		restore := func(walBytes []byte) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Truncation sweep: boundaries plus evenly spaced interior cuts.
		cuts := []int{0, 1, 15, 16, 17, len(wal) - 1, len(wal)}
		for i := 1; i <= 16; i++ {
			cuts = append(cuts, len(wal)*i/17)
		}
		sawPre := false
		for _, cut := range cuts {
			if cut < 0 || cut > len(wal) {
				continue
			}
			restore(wal[:cut])
			state := batchCrashState(t, fmt.Sprintf("cut=%d", cut), path, pre, post, queries)
			if cut < len(wal) && state == "post" {
				t.Fatalf("truncated WAL (%d of %d bytes) replayed as committed", cut, len(wal))
			}
			if cut == len(wal) && state != "post" {
				t.Fatalf("complete WAL not replayed")
			}
			if state == "pre" {
				sawPre = true
			}
		}
		if !sawPre {
			t.Fatal("truncation sweep never recovered the pre-batch state")
		}
		// Corruption sweep: flip one byte at sampled offsets. Recovery must
		// yield a clean pre state (log discarded as torn) — or post only if
		// the flip landed in bytes the decoder never checks.
		for i := 0; i <= 20; i++ {
			off := len(wal) * i / 21
			if off >= len(wal) {
				off = len(wal) - 1
			}
			bad := append([]byte(nil), wal...)
			bad[off] ^= 0x5a
			restore(bad)
			batchCrashState(t, fmt.Sprintf("flip=%d", off), path, pre, post, queries)
		}
	})
}

// TestShardedBatchInsertItems checks the cross-shard batch ingest: items
// spanning every shard go through ShardedBatch.InsertItems, stay invisible
// until Commit, land atomically across shards, and match a per-item sharded
// twin on every query.
func TestShardedBatchInsertItems(t *testing.T) {
	uni := Rect{Lo: Point{0, 0}, Hi: Point{1000, 1000}}
	opts := ShardedOptions{
		Options: Options{Dims: 2, Clipping: ClipStairline, MaxEntries: 16, MinEntries: 6, Universe: uni},
		Shards:  4,
	}
	st, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	items := corpusItems(2, 5000, 67)

	sb, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.InsertItems(items); err != nil {
		t.Fatal(err)
	}
	v := st.Snapshot()
	if n := v.Count(uni); n != 0 {
		t.Fatalf("open cross-shard batch leaked %d objects to a view", n)
	}
	v.Close()
	if err := sb.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := twin.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != twin.Len() {
		t.Fatalf("Len %d, per-item twin %d", st.Len(), twin.Len())
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	lens := st.ShardLens()
	populated := 0
	for _, n := range lens {
		if n > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("batch landed in %d shards (%v); expected a cross-shard spread", populated, lens)
	}
	assertSameResults(t, "universe", twin.SearchAll(uni), st.SearchAll(uni))
	for i, q := range corpusQueries(2, 30, 71) {
		assertSameResults(t, fmt.Sprintf("query %d", i), twin.SearchAll(q), st.SearchAll(q))
	}

	// ShardedTree.InsertItems (per-shard atomicity) indexes the same set too.
	st2, err := NewSharded(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.InsertItems(items); err != nil {
		t.Fatal(err)
	}
	if err := st2.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, "sharded InsertItems", twin.SearchAll(uni), st2.SearchAll(uni))
}

// TestBatchIngestRacingReaders races large batch commits against pinned
// readers: every view must observe a whole number of committed batches —
// never a partial batch — and counts must be monotone per reader goroutine.
// Run with -race, this also exercises the batch fast path (grafts, shared
// traces, clip-table rebuilds) under the race detector.
func TestBatchIngestRacingReaders(t *testing.T) {
	const rounds, batchSize, readers = 8, 1500, 4
	tr, err := New(Options{Dims: 2, Clipping: ClipStairline, MaxEntries: 16, MinEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	uni := Rect{Lo: Point{-1e6, -1e6}, Hi: Point{1e6, 1e6}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := tr.Snapshot()
				n := v.Count(uni)
				v.Close()
				if n%batchSize != 0 {
					errs <- fmt.Errorf("view observed %d objects: a torn batch (batch size %d)", n, batchSize)
					return
				}
				if n < last {
					errs <- fmt.Errorf("count went backwards: %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}
	for round := 0; round < rounds; round++ {
		batch := corpusItems(2, batchSize, int64(100+round))
		for i := range batch {
			batch[i].Object = ObjectID(round*batchSize + i)
		}
		if err := tr.InsertItems(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if tr.Len() != rounds*batchSize {
		t.Fatalf("Len %d, want %d", tr.Len(), rounds*batchSize)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
