// Spatial join: find all overlapping pairs between two datasets — parcels
// (larger boxes) and buildings (smaller boxes) — with both join strategies
// the paper evaluates, and show what clipping contributes to each.
//
// Run with:
//
//	go run ./examples/spatialjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cbb"
)

func makeParcels(rng *rand.Rand, n int) []cbb.Item {
	items := make([]cbb.Item, n)
	for i := range items {
		x, y := rng.Float64()*20000, rng.Float64()*20000
		w, h := 30+rng.Float64()*120, 30+rng.Float64()*120
		items[i] = cbb.Item{Object: cbb.ObjectID(i), Rect: cbb.R(x, y, x+w, y+h)}
	}
	return items
}

func makeBuildings(rng *rand.Rand, parcels []cbb.Item, n int) []cbb.Item {
	items := make([]cbb.Item, 0, n)
	for len(items) < n {
		// Most buildings sit inside some parcel; a few are out in the open.
		var cx, cy float64
		if rng.Float64() < 0.8 {
			p := parcels[rng.Intn(len(parcels))].Rect
			cx = p.Lo[0] + rng.Float64()*(p.Hi[0]-p.Lo[0])
			cy = p.Lo[1] + rng.Float64()*(p.Hi[1]-p.Lo[1])
		} else {
			cx, cy = rng.Float64()*20000, rng.Float64()*20000
		}
		w, h := 5+rng.Float64()*20, 5+rng.Float64()*20
		items = append(items, cbb.Item{
			Object: cbb.ObjectID(len(items)),
			Rect:   cbb.R(cx, cy, cx+w, cy+h),
		})
	}
	return items
}

func buildTree(items []cbb.Item, clip cbb.ClipMethod) *cbb.Tree {
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RStarTree, Clipping: clip})
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.BulkLoad(items); err != nil {
		log.Fatal(err)
	}
	return tree
}

func main() {
	rng := rand.New(rand.NewSource(11))
	parcels := makeParcels(rng, 25000)
	buildings := makeBuildings(rng, parcels, 40000)
	fmt.Printf("joining %d parcels with %d buildings\n", len(parcels), len(buildings))

	for _, clip := range []cbb.ClipMethod{cbb.ClipNone, cbb.ClipStairline} {
		parcelTree := buildTree(parcels, clip)
		buildingTree := buildTree(buildings, clip)

		// Strategy 1: INLJ — only the parcels are indexed; every building
		// probes the parcel index.
		inlj, err := cbb.IndexNestedLoopJoin(parcelTree, buildings, nil)
		if err != nil {
			log.Fatal(err)
		}

		// Strategy 2: STT — both sides are indexed and traversed in
		// lockstep.
		stt, err := cbb.SynchronizedTreeTraversalJoin(parcelTree, buildingTree, nil)
		if err != nil {
			log.Fatal(err)
		}
		if inlj.Pairs != stt.Pairs {
			log.Fatalf("join strategies disagree: %d vs %d", inlj.Pairs, stt.Pairs)
		}
		fmt.Printf("clipping=%-4s  pairs=%d  INLJ leaf IO=%d  STT leaf IO=%d\n",
			clip, stt.Pairs, inlj.IO.LeafReads, stt.IO.LeafReads)
	}

	fmt.Println("building-to-parcel assignment example:")
	parcelTree := buildTree(parcels, cbb.ClipStairline)
	count := 0
	_, err := cbb.IndexNestedLoopJoin(parcelTree, buildings[:5], func(p cbb.JoinPair) {
		fmt.Printf("  building %d overlaps parcel %d\n", p.Right, p.Left)
		count++
	})
	if err != nil {
		log.Fatal(err)
	}
	if count == 0 {
		fmt.Println("  (the first five buildings overlap no parcel)")
	}
}
