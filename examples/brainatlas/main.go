// Brain atlas: index axon-like 3d fibre segments (the paper's motivating
// Human Brain Project use case) and answer the two query patterns a
// neuroscience workload needs — small spatial probes ("which fibres pass
// through this voxel neighbourhood?") and a spatial self-join between two
// fibre populations ("which axons touch which dendrites?").
//
// Run with:
//
//	go run ./examples/brainatlas
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cbb"
)

// growFibre appends the MBBs of one random-walking fibre (a chain of thin
// segments with a persistent direction) to items.
func growFibre(rng *rand.Rand, items []cbb.Item, id *int64, segments int, step, radius float64) []cbb.Item {
	pos := [3]float64{rng.Float64() * 2000, rng.Float64() * 2000, rng.Float64() * 2000}
	dir := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	norm := math.Sqrt(dir[0]*dir[0] + dir[1]*dir[1] + dir[2]*dir[2])
	for i := range dir {
		dir[i] /= norm
	}
	for s := 0; s < segments; s++ {
		next := [3]float64{}
		for d := 0; d < 3; d++ {
			next[d] = clamp(pos[d]+dir[d]*step*(0.5+rng.Float64()), 0, 2000)
		}
		lo := cbb.Pt(
			math.Min(pos[0], next[0])-radius,
			math.Min(pos[1], next[1])-radius,
			math.Min(pos[2], next[2])-radius,
		)
		hi := cbb.Pt(
			math.Max(pos[0], next[0])+radius,
			math.Max(pos[1], next[1])+radius,
			math.Max(pos[2], next[2])+radius,
		)
		r, err := cbb.NewRect(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		items = append(items, cbb.Item{Object: cbb.ObjectID(*id), Rect: r})
		*id++
		pos = next
		for d := 0; d < 3; d++ {
			dir[d] += rng.NormFloat64() * 0.2
		}
		norm = math.Sqrt(dir[0]*dir[0] + dir[1]*dir[1] + dir[2]*dir[2])
		for d := 0; d < 3; d++ {
			dir[d] /= norm
		}
	}
	return items
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Two fibre populations: long axons and shorter, branchier dendrites.
	var axons, dendrites []cbb.Item
	var id int64
	for f := 0; f < 120; f++ {
		axons = growFibre(rng, axons, &id, 150, 16, 0.6)
	}
	for f := 0; f < 200; f++ {
		dendrites = growFibre(rng, dendrites, &id, 40, 7, 0.9)
	}
	fmt.Printf("generated %d axon segments and %d dendrite segments\n", len(axons), len(dendrites))

	universe := cbb.R(0, 0, 0, 2000, 2000, 2000)
	newTree := func() *cbb.Tree {
		t, err := cbb.New(cbb.Options{Dims: 3, Variant: cbb.RRStarTree, Universe: universe})
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	axonTree := newTree()
	if err := axonTree.BulkLoad(axons); err != nil {
		log.Fatal(err)
	}
	dendriteTree := newTree()
	if err := dendriteTree.BulkLoad(dendrites); err != nil {
		log.Fatal(err)
	}

	// 1. Voxel-neighbourhood probes: count fibres passing near sampled
	// points, which is the high-selectivity query profile of the paper.
	axonTree.ResetIOStats()
	probes := 0
	hits := 0
	for i := 0; i < 1000; i++ {
		c := cbb.Pt(rng.Float64()*2000, rng.Float64()*2000, rng.Float64()*2000)
		q, err := cbb.NewRect(
			cbb.Pt(c[0]-5, c[1]-5, c[2]-5),
			cbb.Pt(c[0]+5, c[1]+5, c[2]+5),
		)
		if err != nil {
			log.Fatal(err)
		}
		probes++
		hits += axonTree.Count(q)
	}
	io := axonTree.IOStats()
	fmt.Printf("voxel probes: %d probes, %d fibre hits, %d leaf reads (%.2f per probe)\n",
		probes, hits, io.LeafReads, float64(io.LeafReads)/float64(probes))

	// 2. Axon–dendrite contact detection: a spatial join between the two
	// indexed populations using synchronised tree traversal.
	axonTree.ResetIOStats()
	dendriteTree.ResetIOStats()
	res, err := cbb.SynchronizedTreeTraversalJoin(axonTree, dendriteTree, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contact detection: %d intersecting segment pairs, %d leaf reads\n",
		res.Pairs, res.IO.LeafReads)

	// 3. The same join probed one-segment-at-a-time (index nested loops),
	// to show why the synchronised traversal is the better strategy.
	inlj, err := cbb.IndexNestedLoopJoin(axonTree, dendrites, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same join via INLJ: %d pairs, %d leaf reads (STT saved %.1f%%)\n",
		inlj.Pairs, inlj.IO.LeafReads,
		100*(1-float64(res.IO.LeafReads)/float64(inlj.IO.LeafReads)))
}
