// Street map: index a city-like street network (thin, mostly axis-aligned
// segments clustered into districts) and compare the query I/O of the four
// R-tree variants with and without clipped bounding boxes — a miniature of
// the paper's Figure 11 that runs in a couple of seconds.
//
// Run with:
//
//	go run ./examples/streetmap
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cbb"
)

// buildCity generates a clustered street network of n segments.
func buildCity(rng *rand.Rand, n int) []cbb.Item {
	type district struct{ cx, cy, radius, angle float64 }
	districts := make([]district, 10)
	for i := range districts {
		districts[i] = district{
			cx:     rng.Float64() * 8000,
			cy:     rng.Float64() * 8000,
			radius: 300 + rng.Float64()*700,
			angle:  rng.Float64() * math.Pi / 2,
		}
	}
	items := make([]cbb.Item, 0, n)
	for len(items) < n {
		d := districts[rng.Intn(len(districts))]
		x := d.cx + rng.NormFloat64()*d.radius/2
		y := d.cy + rng.NormFloat64()*d.radius/2
		theta := d.angle
		if rng.Intn(2) == 0 {
			theta += math.Pi / 2
		}
		length := 20 + rng.Float64()*60
		dx, dy := math.Cos(theta)*length/2, math.Sin(theta)*length/2
		lo := cbb.Pt(math.Min(x-dx, x+dx), math.Min(y-dy, y+dy))
		hi := cbb.Pt(math.Max(x-dx, x+dx), math.Max(y-dy, y+dy))
		r, err := cbb.NewRect(lo, hi)
		if err != nil {
			continue
		}
		items = append(items, cbb.Item{Object: cbb.ObjectID(len(items)), Rect: r})
	}
	return items
}

func main() {
	rng := rand.New(rand.NewSource(3))
	streets := buildCity(rng, 12000)
	fmt.Printf("street network: %d segments\n", len(streets))

	// A shared workload of small range queries ("what is near this
	// address?") centred on random street midpoints.
	queries := make([]cbb.Rect, 300)
	for i := range queries {
		seg := streets[rng.Intn(len(streets))].Rect
		c := seg.Center()
		queries[i] = cbb.R(c[0]-15, c[1]-15, c[0]+15, c[1]+15)
	}

	variants := []struct {
		name string
		v    cbb.Variant
	}{
		{"QR-tree", cbb.QRTree},
		{"HR-tree", cbb.HRTree},
		{"R*-tree", cbb.RStarTree},
		{"RR*-tree", cbb.RRStarTree},
	}
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "variant", "unclipped IO", "CSKY IO", "CSTA IO", "CSTA gain")
	for _, v := range variants {
		unclipped := measure(streets, queries, v.v, cbb.ClipNone)
		sky := measure(streets, queries, v.v, cbb.ClipSkyline)
		sta := measure(streets, queries, v.v, cbb.ClipStairline)
		fmt.Printf("%-10s %12d %12d %12d %9.1f%%\n",
			v.name, unclipped, sky, sta, 100*(1-float64(sta)/float64(unclipped)))
	}
}

// measure bulk-loads a tree of the given variant and clipping mode and
// returns the leaf accesses needed to answer the query workload.
func measure(items []cbb.Item, queries []cbb.Rect, v cbb.Variant, clip cbb.ClipMethod) int64 {
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: v, Clipping: clip})
	if err != nil {
		log.Fatal(err)
	}
	if v == cbb.HRTree {
		if err := tree.BulkLoad(items); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, it := range items {
			if err := tree.Insert(it.Rect, it.Object); err != nil {
				log.Fatal(err)
			}
		}
	}
	tree.ResetIOStats()
	results := 0
	for _, q := range queries {
		results += tree.Count(q)
	}
	_ = results
	return tree.IOStats().LeafReads
}
