// Quickstart: build a clipped R-tree, run a few range queries, and compare
// the leaf I/O of clipped and unclipped searches on the same data.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cbb"
)

func main() {
	// A clipped revised R*-tree over 2d rectangles. Clipping (stairline clip
	// points, the paper's CSTA) is the default; everything else about the
	// tree behaves exactly like a classic R-tree.
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RRStarTree})
	if err != nil {
		log.Fatal(err)
	}

	// Index a synthetic "road network": thin horizontal and vertical
	// segments, which leave a lot of empty space in every node — exactly the
	// situation clipped bounding boxes exploit.
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		var r cbb.Rect
		if i%2 == 0 {
			r = cbb.R(x, y, x+rng.Float64()*80, y+1.5) // horizontal street
		} else {
			r = cbb.R(x, y, x+1.5, y+rng.Float64()*80) // vertical street
		}
		if err := tree.Insert(r, cbb.ObjectID(i)); err != nil {
			log.Fatal(err)
		}
	}

	stats := tree.Stats()
	fmt.Printf("indexed %d segments: height %d, %d leaves, %d clip points (%.1f per node)\n",
		tree.Len(), stats.Height, stats.LeafNodes, stats.ClipPoints, stats.AvgClipPoints)

	// A point-ish range query: which segments pass near (5000, 5000)?
	query := cbb.R(4950, 4950, 5050, 5050)
	for _, hit := range tree.SearchAll(query) {
		fmt.Printf("  segment %d at %v\n", hit.Object, hit.Rect)
	}
	fmt.Printf("%d segments intersect %v\n", tree.Count(query), query)

	// Compare the I/O of the clipped index against an unclipped twin on the
	// same query workload.
	plain, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RRStarTree, Clipping: cbb.ClipNone})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range tree.SearchAll(cbb.R(0, 0, 10000, 10000)) {
		if err := plain.Insert(it.Rect, it.Object); err != nil {
			log.Fatal(err)
		}
	}
	queries := make([]cbb.Rect, 500)
	for i := range queries {
		x, y := rng.Float64()*10000, rng.Float64()*10000
		queries[i] = cbb.R(x, y, x+20, y+20)
	}
	tree.ResetIOStats()
	plain.ResetIOStats()
	for _, q := range queries {
		tree.Count(q)
		plain.Count(q)
	}
	clipped := tree.IOStats().LeafReads
	unclipped := plain.IOStats().LeafReads
	fmt.Printf("leaf accesses over %d queries: unclipped %d, clipped %d (%.1f%% saved)\n",
		len(queries), unclipped, clipped, 100*(1-float64(clipped)/float64(unclipped)))
}
