package cbb

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"cbb/internal/storage"
)

// openMmapOrSkip opens a snapshot via OpenMmap, skipping on platforms whose
// build falls back to the mmap stub.
func openMmapOrSkip(t *testing.T, path string) *Tree {
	t.Helper()
	tree, err := OpenMmap(path)
	if errors.Is(err, storage.ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// assertSameAnswers checks that two trees agree bit-for-bit on every query
// answer: SearchAll results including order, and nearest-neighbour results
// including distances. Unlike assertTreesEqual it deliberately does not
// compare structural stats — a v2-decoded tree holds conservatively expanded
// directory rects, so only the ANSWERS are required to be identical.
func assertSameAnswers(t *testing.T, label string, want, got *Tree, queries []Rect, probes []Point) {
	t.Helper()
	if want.Len() != got.Len() || want.Height() != got.Height() {
		t.Fatalf("%s: shape differs: %d/%d vs %d/%d", label, want.Len(), want.Height(), got.Len(), got.Height())
	}
	for i, q := range queries {
		wr, gr := want.SearchAll(q), got.SearchAll(q)
		if !reflect.DeepEqual(wr, gr) {
			t.Fatalf("%s: query %d: results differ (%d vs %d, or order/rects)", label, i, len(wr), len(gr))
		}
	}
	for i, p := range probes {
		wn, gn := want.NearestNeighbors(5, p), got.NearestNeighbors(5, p)
		if !reflect.DeepEqual(wn, gn) {
			t.Fatalf("%s: kNN probe %d differs", label, i)
		}
	}
	if err := got.Err(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

// nnProbes builds a deterministic point batch in d dimensions.
func nnProbes(d, n int, seed int64) []Point {
	qs := corpusQueries(d, n, seed)
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = qs[i].Lo
	}
	return ps
}

// TestFormatEquivalenceMatrix is the acceptance test of the compressed v2
// format: across dims 1–3 and all three clip methods, a tree served from a
// v2 snapshot — whether written directly, transcoded from v1, read through
// the pager, or read through mmap — must answer every query bit-identically
// to the v1 original. Conservative directory quantisation may add node
// visits, never results.
func TestFormatEquivalenceMatrix(t *testing.T) {
	dir := t.TempDir()
	for d := 1; d <= 3; d++ {
		for _, m := range []ClipMethod{ClipStairline, ClipSkyline, ClipNone} {
			t.Run(fmt.Sprintf("%dd/%v", d, m), func(t *testing.T) {
				orig, err := New(Options{Dims: d, Variant: RRStarTree, Clipping: m})
				if err != nil {
					t.Fatal(err)
				}
				if err := orig.BulkLoad(corpusItems(d, 600, 17)); err != nil {
					t.Fatal(err)
				}
				queries := corpusQueries(d, 20, 19)
				probes := nnProbes(d, 8, 23)

				base := filepath.Join(dir, fmt.Sprintf("eq-%d-%v", d, m))
				v1, v2, v2t := base+"-v1.cbb", base+"-v2.cbb", base+"-v2t.cbb"
				if err := orig.WriteSnapshot(v1, SnapshotV1); err != nil {
					t.Fatal(err)
				}
				if err := orig.WriteSnapshot(v2, SnapshotV2); err != nil {
					t.Fatal(err)
				}
				if err := TranscodeSnapshot(v1, v2t, SnapshotV2); err != nil {
					t.Fatal(err)
				}

				for _, tc := range []struct {
					label string
					open  func() (*Tree, error)
				}{
					{"v1+pager", func() (*Tree, error) { return OpenReadOnly(v1) }},
					{"v2+pager", func() (*Tree, error) { return OpenReadOnly(v2) }},
					{"v2transcoded+pager", func() (*Tree, error) { return OpenReadOnly(v2t) }},
					{"v2+mmap", func() (*Tree, error) { return OpenMmap(v2) }},
					{"v2+load", func() (*Tree, error) {
						var buf bytes.Buffer
						if err := orig.SaveToFormat(&buf, SnapshotV2); err != nil {
							return nil, err
						}
						return Load(bytes.NewReader(buf.Bytes()))
					}},
				} {
					got, err := tc.open()
					if errors.Is(err, storage.ErrMmapUnsupported) {
						continue
					}
					if err != nil {
						t.Fatalf("%s: %v", tc.label, err)
					}
					assertSameAnswers(t, tc.label, orig, got, queries, probes)
					got.Close()
				}

				// A v2 file opened via Open degrades to read-only instead of
				// failing: compressed pages cannot be rewritten in place.
				rw, err := Open(v2)
				if err != nil {
					t.Fatal(err)
				}
				defer rw.Close()
				if !rw.ReadOnly() {
					t.Error("Open on a v2 snapshot must degrade to read-only")
				}
				if err := rw.Insert(queries[0], 999999); !errors.Is(err, ErrReadOnly) {
					t.Errorf("Insert on v2-opened tree = %v, want ErrReadOnly", err)
				}
			})
		}
	}
}

// TestMmapPagerEquivalenceWALPending crashes a writer after its WAL is
// durable but before the pages are applied, then serves the file through
// mmap and through the pager: both must fold the committed WAL in and agree
// on every answer. The mmap open is taken first — it never writes, so the
// WAL must still be on disk afterwards for the pager open to recover.
func TestMmapPagerEquivalenceWALPending(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pending.cbb")
	orig, err := New(Options{Dims: 2, Variant: RRStarTree, Clipping: ClipStairline})
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BulkLoad(corpusItems(2, 800, 29)); err != nil {
		t.Fatal(err)
	}
	if err := orig.WriteSnapshot(path, SnapshotV1); err != nil {
		t.Fatal(err)
	}

	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	extra := corpusItems(2, 120, 31)
	for i, it := range extra {
		if err := w.Insert(it.Rect, ObjectID(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("crash after WAL sync")
	w.pager.SetCommitFailpoints(func() error { return boom }, nil)
	if err := w.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush error = %v, want injected crash", err)
	}
	// Abandon the writer: the base file is pre-commit, the WAL holds the
	// whole flush.

	mm := openMmapOrSkip(t, path)
	defer mm.Close()
	if mm.Len() != 920 {
		t.Fatalf("mmap open sees %d objects, want 920 (WAL not folded in)", mm.Len())
	}
	queries := corpusQueries(2, 25, 37)
	mmResults := make([][]Item, len(queries))
	for i, q := range queries {
		mmResults[i] = mm.SearchAll(q)
	}

	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Len() != 920 {
		t.Fatalf("pager open sees %d objects, want 920", ro.Len())
	}
	for i, q := range queries {
		if !reflect.DeepEqual(mmResults[i], ro.SearchAll(q)) {
			t.Fatalf("query %d: mmap and pager disagree on a WAL-pending file", i)
		}
	}
}
