package cbb_test

import (
	"fmt"
	"sort"

	"cbb"
)

// ExampleNew shows the minimal insert-and-query flow with a clipped
// RR*-tree.
func ExampleNew() {
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.RRStarTree})
	if err != nil {
		panic(err)
	}
	_ = tree.Insert(cbb.R(0, 0, 10, 5), 1)
	_ = tree.Insert(cbb.R(20, 20, 24, 28), 2)
	_ = tree.Insert(cbb.R(8, 3, 12, 9), 3)

	var hits []int
	tree.Search(cbb.R(9, 4, 11, 6), func(id cbb.ObjectID, _ cbb.Rect) bool {
		hits = append(hits, int(id))
		return true
	})
	sort.Ints(hits)
	fmt.Println(hits)
	// Output: [1 3]
}

// ExampleTree_BulkLoad shows bulk loading and counting.
func ExampleTree_BulkLoad() {
	tree, err := cbb.New(cbb.Options{Dims: 2, Variant: cbb.HRTree})
	if err != nil {
		panic(err)
	}
	items := []cbb.Item{
		{Object: 1, Rect: cbb.R(0, 0, 1, 1)},
		{Object: 2, Rect: cbb.R(5, 5, 6, 6)},
		{Object: 3, Rect: cbb.R(0.5, 0.5, 2, 2)},
	}
	if err := tree.BulkLoad(items); err != nil {
		panic(err)
	}
	fmt.Println(tree.Len(), tree.Count(cbb.R(0, 0, 3, 3)))
	// Output: 3 2
}

// ExampleTree_NearestNeighbors shows the nearest-neighbour extension.
func ExampleTree_NearestNeighbors() {
	tree, err := cbb.New(cbb.Options{Dims: 2})
	if err != nil {
		panic(err)
	}
	_ = tree.Insert(cbb.R(0, 0, 1, 1), 1)
	_ = tree.Insert(cbb.R(10, 10, 11, 11), 2)
	_ = tree.Insert(cbb.R(3, 3, 4, 4), 3)

	for _, n := range tree.NearestNeighbors(2, cbb.Pt(2, 2)) {
		fmt.Println(n.Object)
	}
	// Output:
	// 1
	// 3
}

// ExampleSynchronizedTreeTraversalJoin shows a spatial join between two
// indexed datasets.
func ExampleSynchronizedTreeTraversalJoin() {
	build := func(items []cbb.Item) *cbb.Tree {
		t, err := cbb.New(cbb.Options{Dims: 2})
		if err != nil {
			panic(err)
		}
		if err := t.BulkLoad(items); err != nil {
			panic(err)
		}
		return t
	}
	parcels := build([]cbb.Item{
		{Object: 1, Rect: cbb.R(0, 0, 10, 10)},
		{Object: 2, Rect: cbb.R(20, 20, 30, 30)},
	})
	buildings := build([]cbb.Item{
		{Object: 7, Rect: cbb.R(4, 4, 6, 6)},
		{Object: 8, Rect: cbb.R(50, 50, 51, 51)},
	})
	res, err := cbb.SynchronizedTreeTraversalJoin(parcels, buildings, func(p cbb.JoinPair) {
		fmt.Printf("parcel %d overlaps building %d\n", p.Left, p.Right)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pairs:", res.Pairs)
	// Output:
	// parcel 1 overlaps building 7
	// pairs: 1
}
