package cbb

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// Benchmarks for the sharded engine, tracked in BENCH_baseline.json and run
// by CI with -benchtime=1x as a smoke test.
//
// BenchmarkShardedIngest measures batch-ingest throughput (items/s) for
// one full load of a fixed item set, with the items pre-partitioned into
// one Hilbert-contiguous slice per writer — the layout a partitioned
// loader produces. shards=1/writers=N is the single-tree writer baseline:
// every batch serialises on the one writer mutex. On a multi-core machine
// the sharded configurations additionally overlap the writers' CPU work;
// on a single core the win comes from smaller per-shard trees (shorter
// insertion paths, cheaper subtree choice, smaller copy-on-write
// overlays) and Hilbert-grouped commit batches.

const shardedIngestItems = 12000

func shardedIngestWorkload(tb testing.TB, writers int) [][]Item {
	tb.Helper()
	rng := rand.New(rand.NewSource(4242))
	items := randShardItems(rng, shardedIngestItems, 2)
	// Partition into Hilbert-contiguous slices so concurrent writers land
	// on disjoint shards (the favourable, and realistic, loader layout).
	curve, err := newShardCurve(ShardedOptions{
		Options: Options{Dims: 2, Universe: shardUniverse(2), MaxEntries: 16, MinEntries: 6},
		Shards:  writers, HilbertBits: 16,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sort.Slice(items, func(i, j int) bool {
		return curve.IndexRect(items[i].Rect) < curve.IndexRect(items[j].Rect)
	})
	chunks := make([][]Item, writers)
	per := (len(items) + writers - 1) / writers
	for w := 0; w < writers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(items) {
			hi = len(items)
		}
		chunks[w] = items[lo:hi]
	}
	return chunks
}

func BenchmarkShardedIngest(b *testing.B) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	for _, cfg := range []struct{ shards, writers int }{
		{1, 1}, // single-tree baseline
		{1, 4}, // 4 writers serialising on one tree's writer mutex
		{4, 1},
		{4, 4},
		{8, 8},
	} {
		b.Run(fmt.Sprintf("shards=%d/writers=%d", cfg.shards, cfg.writers), func(b *testing.B) {
			chunks := shardedIngestWorkload(b, cfg.writers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, err := NewSharded(ShardedOptions{Options: base, Shards: cfg.shards})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make([]error, cfg.writers)
				for w := 0; w < cfg.writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						errs[w] = st.InsertItems(chunks[w])
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				if st.Len() != shardedIngestItems {
					b.Fatalf("ingested %d items, want %d", st.Len(), shardedIngestItems)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(shardedIngestItems)*float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// BenchmarkShardedReadWhileWrite measures one full-breadth range query per
// iteration against a 4-shard tree of 20k rectangles: (a) quiesced, (b)
// while four writers (one per shard region) commit batches continuously,
// and (c) on a pinned ShardedView during the same write storm. Readers
// never block in any configuration.
func BenchmarkShardedReadWhileWrite(b *testing.B) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	build := func(b *testing.B) *ShardedTree {
		st, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		if err := st.InsertItems(randShardItems(rng, 20000, 2)); err != nil {
			b.Fatal(err)
		}
		return st
	}
	query := R(200, 200, 420, 420)

	// startShardWriters launches one count-preserving batch writer per
	// quadrant band, so all four shard writer mutexes stay busy.
	startShardWriters := func(b *testing.B, st *ShardedTree) (stop func()) {
		var quit, wg = make(chan struct{}), sync.WaitGroup{}
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w + 7)))
				var queue []Item
				next := ObjectID(uint64(w+1) << 40)
				for {
					select {
					case <-quit:
						return
					default:
					}
					items := make([]Item, 8)
					for i := range items {
						x := rng.Float64() * 990
						y := float64(w)*250 + rng.Float64()*240
						items[i] = Item{Object: next, Rect: R(x, y, x+2, y+2)}
						next++
					}
					if err := st.InsertItems(items); err != nil {
						b.Error(err)
						return
					}
					queue = append(queue, items...)
					for len(queue) > 64 {
						old := queue[0]
						queue = queue[1:]
						if _, err := st.Delete(old.Rect, old.Object); err != nil {
							b.Error(err)
							return
						}
					}
				}
			}(w)
		}
		return func() { close(quit); wg.Wait() }
	}

	b.Run("quiesced", func(b *testing.B) {
		st := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Count(query)
		}
	})
	b.Run("during-commits", func(b *testing.B) {
		st := build(b)
		stop := startShardWriters(b, st)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Count(query)
		}
	})
	b.Run("view-during-commits", func(b *testing.B) {
		st := build(b)
		stop := startShardWriters(b, st)
		defer stop()
		v := st.Snapshot()
		defer v.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Count(query)
		}
	})
}
