package cbb

import (
	"math/rand"
	"sync"
	"testing"
)

// Race stress for the sharded engine: N plain writers (one region each), one
// cross-shard batch writer committing paired marker objects, one rebalancer
// forcing splits and merges, and M readers on pinned ShardedViews. The
// readers verify the two consistency promises under load:
//
//  1. a pinned view never observes a partially committed cross-shard batch —
//     the batch writer keeps "count of A-markers == count of B-markers"
//     true in every committed state, so any view where the counts differ
//     has observed half a batch;
//  2. per-shard epochs stay fixed for the view's lifetime, across
//     concurrent commits, splits, and merges.
//
// Run under -race by CI (tier-1 and the sharded stress step).
func TestShardedRaceStress(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 4, SplitAbove: 400})
	if err != nil {
		t.Fatal(err)
	}

	// Marker regions for the atomicity invariant, in opposite corners so
	// they live in different shards (verified below, so the invariant
	// really crosses shards).
	regionA := R(10, 10, 30, 30)
	regionB := R(970, 970, 990, 990)
	if shA, shB := st.dir.Load().find(st.key(regionA)), st.dir.Load().find(st.key(regionB)); shA == shB {
		t.Fatalf("marker regions map to the same shard; pick corners further apart")
	}
	queryA := R(0, 0, 50, 50)
	queryB := R(950, 950, 1000, 1000)

	const (
		plainWriters = 3
		readers      = 3
		plainOps     = 150
		batchCommits = 80
		viewsPerRead = 60
	)

	var wg sync.WaitGroup

	// Plain writers: count-preserving insert/delete streams of small
	// rectangles in a private band well away from the marker regions.
	for w := 0; w < plainWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			var queue []Item
			next := ObjectID(uint64(w+1) << 32)
			for i := 0; i < plainOps; i++ {
				x := 100 + rng.Float64()*800
				y := 100 + rng.Float64()*800
				it := Item{Object: next, Rect: R(x, y, x+3, y+3)}
				next++
				if err := st.Insert(it.Rect, it.Object); err != nil {
					t.Error(err)
					return
				}
				queue = append(queue, it)
				if len(queue) > 20 {
					old := queue[0]
					queue = queue[1:]
					if _, err := st.Delete(old.Rect, old.Object); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Batch writer: every commit inserts one marker into each region (and
	// eventually deletes old pairs, also pairwise), so countA == countB in
	// every committed state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		var pairs [][2]Item
		next := ObjectID(1) << 48
		for i := 0; i < batchCommits; i++ {
			b, err := st.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			ax := 10 + rng.Float64()*18
			bx := 970 + rng.Float64()*18
			pa := Item{Object: next, Rect: R(ax, ax, ax+1, ax+1)}
			pb := Item{Object: next + 1, Rect: R(bx, bx, bx+1, bx+1)}
			next += 2
			if err := b.Insert(pa.Rect, pa.Object); err != nil {
				t.Error(err)
				b.Rollback()
				return
			}
			if err := b.Insert(pb.Rect, pb.Object); err != nil {
				t.Error(err)
				b.Rollback()
				return
			}
			pairs = append(pairs, [2]Item{pa, pb})
			if len(pairs) > 10 {
				old := pairs[0]
				pairs = pairs[1:]
				if _, err := b.Delete(old[0].Rect, old[0].Object); err != nil {
					t.Error(err)
					b.Rollback()
					return
				}
				if _, err := b.Delete(old[1].Rect, old[1].Object); err != nil {
					t.Error(err)
					b.Rollback()
					return
				}
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Rebalancer: forced splits and merges while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(88))
		for i := 0; i < 40; i++ {
			n := st.NumShards()
			if rng.Intn(2) == 0 && n > 2 {
				if err := st.MergeShards(rng.Intn(n - 1)); err != nil {
					t.Error(err)
					return
				}
			} else {
				if err := st.SplitShard(rng.Intn(n)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Readers: pin a view, check the batch-atomicity invariant and epoch
	// stability, run some queries, close.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(9000 + r)))
			for i := 0; i < viewsPerRead; i++ {
				v := st.Snapshot()
				epochs := v.Epochs()
				ca := v.Count(queryA)
				cb := v.Count(queryB)
				if ca != cb {
					t.Errorf("view observed a torn cross-shard batch: %d A-markers vs %d B-markers", ca, cb)
					v.Close()
					return
				}
				// A few overlapping reads; results must stay self-consistent.
				q := randShardQueries(rng, 1, 2)[0]
				n1 := v.Count(q)
				n2 := len(v.SearchAll(q))
				if n1 != n2 {
					t.Errorf("view Count=%d but SearchAll=%d at one epoch", n1, n2)
					v.Close()
					return
				}
				v.NearestNeighbors(5, Pt(rng.Float64()*1000, rng.Float64()*1000))
				for k, e := range v.Epochs() {
					if e != epochs[k] {
						t.Errorf("epoch of pinned shard %d moved %d -> %d", k, epochs[k], e)
						v.Close()
						return
					}
				}
				v.Close()
			}
		}(r)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	// Final state: markers still balanced.
	if ca, cb := st.Count(queryA), st.Count(queryB); ca != cb {
		t.Fatalf("final marker counts differ: %d vs %d", ca, cb)
	}
}

// TestShardedConcurrentWritersDisjointRegions exercises the headline
// scaling path: one writer per shard region, all committing batches
// concurrently with no shared writer mutex, readers scanning throughout.
func TestShardedConcurrentWritersDisjointRegions(t *testing.T) {
	base := Options{Dims: 2, MaxEntries: 16, MinEntries: 6, Universe: shardUniverse(2)}
	st, err := NewSharded(ShardedOptions{Options: base, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const perWriter = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Two readers run full scans while the writers ingest.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Count(R(0, 0, 1000, 1000))
			}
		}()
	}
	var werr error
	var wmu sync.Mutex
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			items := make([]Item, perWriter)
			for i := range items {
				// Each writer works one horizontal band; bands spread over
				// the curve so writers mostly hit distinct shards.
				x := rng.Float64() * 990
				y := float64(w)*250 + rng.Float64()*240
				items[i] = Item{Object: ObjectID(w*perWriter + i + 1), Rect: R(x, y, x+4, y+4)}
			}
			if err := st.InsertItems(items); err != nil {
				wmu.Lock()
				werr = err
				wmu.Unlock()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if st.Len() != 4*perWriter {
		t.Fatalf("Len = %d, want %d", st.Len(), 4*perWriter)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}
