package cbb

// Race-detector regression tests for the package's concurrency guarantee:
// once construction and updates have finished, any number of goroutines may
// query a Tree concurrently. Run with `go test -race` (as CI does) to verify
// that the read path shares no unsynchronised mutable state, and that the
// parallel batch/join engines produce bit-identical results and I/O
// accounting at every worker count.

import (
	"math/rand"
	"sync"
	"testing"
)

// buildConcurrencyFixture returns a loaded tree and a set of queries over a
// deterministic uniform workload.
func buildConcurrencyFixture(t testing.TB, clipping ClipMethod, n int) (*Tree, []Rect) {
	t.Helper()
	tree, err := New(Options{Dims: 2, Variant: RStarTree, Clipping: clipping})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tree.Insert(R(x, y, x+rng.Float64()*8, y+rng.Float64()*8), ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]Rect, 120)
	for i := range queries {
		x, y := rng.Float64()*950, rng.Float64()*950
		s := 10 + rng.Float64()*40
		queries[i] = R(x, y, x+s, y+s)
	}
	return tree, queries
}

// TestConcurrentReaders hammers one tree from many goroutines mixing every
// read-only entry point. It passes vacuously without -race; under the race
// detector it fails if the read path shares unsynchronised mutable state.
func TestConcurrentReaders(t *testing.T) {
	for _, clipping := range []ClipMethod{ClipStairline, ClipNone} {
		tree, queries := buildConcurrencyFixture(t, clipping, 4000)
		// Attach a buffer pool so its locking is exercised under race too.
		tree.AttachBufferPool(64)

		want := make([]int, len(queries))
		for i, q := range queries {
			want[i] = tree.Count(q)
		}

		const goroutines = 8
		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 20; iter++ {
					q := queries[(g*31+iter)%len(queries)]
					switch iter % 4 {
					case 0:
						if got := tree.Count(q); got != want[(g*31+iter)%len(queries)] {
							errs <- "Count mismatch under concurrency"
							return
						}
					case 1:
						if got := len(tree.SearchAll(q)); got != want[(g*31+iter)%len(queries)] {
							errs <- "SearchAll mismatch under concurrency"
							return
						}
					case 2:
						p := Pt(q.Lo[0], q.Lo[1])
						if got := tree.NearestNeighbors(5, p); len(got) != 5 {
							errs <- "NearestNeighbors returned wrong k under concurrency"
							return
						}
					case 3:
						res, err := BatchSearch(tree, queries[:10], BatchOptions{Workers: 2})
						if err != nil {
							errs <- err.Error()
							return
						}
						for i := range res.Counts {
							if res.Counts[i] != want[i] {
								errs <- "BatchSearch mismatch under concurrency"
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatalf("clipping=%v: %s", clipping, msg)
		}
	}
}

// TestBatchSearchMatchesSequential checks the exactness guarantee: counts,
// collected items, and I/O of a parallel batch equal a sequential loop.
func TestBatchSearchMatchesSequential(t *testing.T) {
	tree, queries := buildConcurrencyFixture(t, ClipStairline, 5000)

	tree.ResetIOStats()
	wantCounts := make([]int, len(queries))
	for i, q := range queries {
		wantCounts[i] = tree.Count(q)
	}
	wantIO := tree.IOStats()

	for _, workers := range []int{1, 3, 8} {
		tree.ResetIOStats()
		res, err := BatchSearch(tree, queries, BatchOptions{Workers: workers, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantCounts {
			if res.Counts[i] != wantCounts[i] {
				t.Fatalf("workers=%d query %d: count %d, sequential %d", workers, i, res.Counts[i], wantCounts[i])
			}
			if len(res.Items[i]) != wantCounts[i] {
				t.Fatalf("workers=%d query %d: %d items, count %d", workers, i, len(res.Items[i]), wantCounts[i])
			}
		}
		if res.IO != wantIO {
			t.Fatalf("workers=%d: batch IO %+v, sequential %+v", workers, res.IO, wantIO)
		}
		// The batch I/O must also have advanced the tree's cumulative stats.
		if got := tree.IOStats(); got != wantIO {
			t.Fatalf("workers=%d: cumulative IOStats %+v, want %+v", workers, got, wantIO)
		}
	}
}

// TestParallelJoinDeterminism checks that parallel joins report pair counts
// and I/O identical to their sequential runs.
func TestParallelJoinDeterminism(t *testing.T) {
	left, _ := buildConcurrencyFixture(t, ClipStairline, 3000)
	right, _ := buildConcurrencyFixture(t, ClipStairline, 2000)
	probes := left.SearchAll(left.Bounds()) // every left item probes the right tree

	seqINLJ, err := IndexNestedLoopJoin(right, probes, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqSTT, err := SynchronizedTreeTraversalJoin(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seqINLJ.Pairs == 0 || seqSTT.Pairs == 0 {
		t.Fatal("fixtures should overlap")
	}
	if seqINLJ.Pairs != seqSTT.Pairs {
		t.Fatalf("join strategies disagree: INLJ %d, STT %d", seqINLJ.Pairs, seqSTT.Pairs)
	}

	for _, workers := range []int{2, 4, 8} {
		opts := JoinOptions{Workers: workers}
		inlj, err := IndexNestedLoopJoinWith(right, probes, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inlj.Pairs != seqINLJ.Pairs || inlj.IO != seqINLJ.IO {
			t.Fatalf("INLJ workers=%d: %+v, sequential %+v", workers, inlj, seqINLJ)
		}
		stt, err := SynchronizedTreeTraversalJoinWith(left, right, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stt.Pairs != seqSTT.Pairs || stt.IO != seqSTT.IO {
			t.Fatalf("STT workers=%d: %+v, sequential %+v", workers, stt, seqSTT)
		}
	}
}

// TestResetIOStatsResetsBufferPool is the regression test for the stats
// leak: a cold start must zero the pool's hit/miss statistics together with
// the access counters.
func TestResetIOStatsResetsBufferPool(t *testing.T) {
	tree, queries := buildConcurrencyFixture(t, ClipNone, 2000)
	if _, ok := tree.BufferStats(); ok {
		t.Fatal("no pool attached yet, BufferStats should report ok=false")
	}
	tree.AttachBufferPool(32)
	for _, q := range queries[:20] {
		tree.Count(q)
	}
	stats, ok := tree.BufferStats()
	if !ok || stats.Hits+stats.Misses == 0 {
		t.Fatalf("pool should have been touched: %+v ok=%v", stats, ok)
	}
	if rate := stats.HitRate(); rate < 0 || rate > 1 {
		t.Fatalf("hit rate out of range: %v", rate)
	}

	tree.ResetIOStats()
	stats, ok = tree.BufferStats()
	if !ok {
		t.Fatal("pool should remain attached across resets")
	}
	if stats.Hits != 0 || stats.Misses != 0 {
		t.Fatalf("ResetIOStats leaked buffer-pool stats: %+v", stats)
	}
	if io := tree.IOStats(); io != (IOStats{}) {
		t.Fatalf("ResetIOStats leaked counters: %+v", io)
	}

	tree.DetachBufferPool()
	if _, ok := tree.BufferStats(); ok {
		t.Fatal("pool should be detached")
	}
}
