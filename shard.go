package cbb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cbb/internal/hilbert"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// This file is the core of the sharded engine: a ShardedTree partitions the
// universe into N contiguous Hilbert key ranges, each backed by an
// independent Tree with its own writer mutex and copy-on-write epoch chain.
// A mutation routes to exactly one shard (by the Hilbert key of its
// rectangle's centre), so writers on different shards commit truly in
// parallel — the engine scales writes past the single Tree's writer mutex
// while every read keeps the lock-free snapshot semantics of the single
// tree.
//
// The layer stack, top to bottom:
//
//	directory  — one atomic pointer to an immutable list of shards
//	             (Hilbert key range + per-shard MBB for routing)
//	shard      — an independent Tree: writer mutex, clip index, buffer
//	             pool, optional snapshot file + WAL
//	version    — the shard tree's copy-on-write epoch chain
//	pages      — the shard's simulated or file-backed page store
//
// Consistency: per-shard mutations are atomic exactly as on a single Tree.
// Cross-shard batches (Begin/ShardedBatch) commit all touched shards while
// holding a commit lock that Snapshot acquires in read mode, so a
// ShardedView (which pins every shard's epoch in one acquisition) can never
// observe a partially committed cross-shard batch. Rebalancing (split and
// merge, see below) replaces shards only with content-equivalent rebuilds
// while their writers are blocked, so readers — pinned or not — never see
// objects appear or disappear.

// ShardedOptions configures a ShardedTree. The embedded Options apply to
// every shard tree; Universe is required (routing quantises it onto the
// Hilbert curve).
type ShardedOptions struct {
	Options

	// Shards is the initial number of shards (default 4). The universe's
	// Hilbert key space is divided into this many equal contiguous ranges.
	Shards int

	// HilbertBits is the curve order used for routing (bits per dimension);
	// 0 defaults to 16, clamped so the full index fits a uint64 and each
	// axis fits 32 bits.
	HilbertBits int

	// SplitAbove, when > 0, makes the engine split a shard whose object
	// count exceeds it: the shard's key range is bisected at the median
	// occupied key and both halves are bulk-rebuilt, so a hot region cannot
	// swamp one writer. 0 disables automatic splits.
	SplitAbove int

	// MergeBelow, when > 0, makes the engine merge a shard whose object
	// count falls below it with an adjacent shard, provided the combined
	// count stays under 3/4 of SplitAbove (hysteresis; without SplitAbove
	// the merge is unconditional). 0 disables automatic merges.
	MergeBelow int
}

func (o ShardedOptions) withDefaults() (ShardedOptions, error) {
	base, err := o.Options.withDefaults()
	if err != nil {
		return o, err
	}
	o.Options = base
	if o.Universe.IsZero() || !o.Universe.Valid() || o.Universe.Dims() != o.Dims {
		return o, errors.New("cbb: ShardedOptions requires a valid Universe of Options.Dims dimensions (routing quantises it onto the Hilbert curve)")
	}
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Shards < 1 {
		return o, errors.New("cbb: ShardedOptions.Shards must be at least 1")
	}
	if o.HilbertBits == 0 {
		o.HilbertBits = 16
	}
	if o.HilbertBits < 1 {
		return o, errors.New("cbb: ShardedOptions.HilbertBits must be positive")
	}
	if o.Dims*o.HilbertBits > hilbert.MaxTotalBits {
		o.HilbertBits = hilbert.MaxTotalBits / o.Dims
	}
	if o.HilbertBits > hilbert.MaxBitsPerDim {
		o.HilbertBits = hilbert.MaxBitsPerDim
	}
	if o.SplitAbove < 0 || o.MergeBelow < 0 {
		return o, errors.New("cbb: ShardedOptions split/merge thresholds must not be negative")
	}
	if o.SplitAbove > 0 && o.MergeBelow > 0 && o.MergeBelow >= o.SplitAbove {
		return o, errors.New("cbb: ShardedOptions.MergeBelow must be below SplitAbove")
	}
	return o, nil
}

// shard is one partition: the Hilbert key range [lo, hi) it owns and the
// independent Tree holding its objects. A shard retired by a split or merge
// stays fully queryable for views that pinned it, but every writer that
// reaches it re-routes through the current directory (see the retired
// re-check in route and ShardedBatch).
type shard struct {
	lo, hi  uint64
	t       *Tree
	path    string // snapshot file of a file-backed shard ("" in memory)
	retired atomic.Bool
}

// search runs one uncoordinated range query against the shard's last
// committed snapshot, charging the shared counter; the root bounds check is
// the directory-level skip and is not charged.
func (sh *shard) search(q Rect, visit func(ObjectID, Rect) bool) {
	if sh.t.idx != nil {
		s := sh.t.idx.Snap()
		v := s.Version()
		if v.Len() == 0 || !v.RootMBBIntersects(q) {
			return
		}
		s.SearchCounted(q, nil, visit)
		return
	}
	v := sh.t.tree.CurrentVersion()
	if v.Len() == 0 || !v.RootMBBIntersects(q) {
		return
	}
	v.SearchCounted(q, nil, visit)
}

// shardDir is the immutable shard directory: shards sorted by lo, their
// ranges contiguous and covering the whole key space. Rebalancing publishes
// a new directory behind the tree's atomic pointer; readers that loaded the
// old one keep using it safely.
type shardDir struct {
	shards []*shard
}

// find returns the shard owning a Hilbert key, by binary search.
func (d *shardDir) find(key uint64) *shard {
	i := sort.Search(len(d.shards), func(i int) bool { return key < d.shards[i].hi })
	if i == len(d.shards) {
		i = len(d.shards) - 1 // keys are clamped; defensive
	}
	return d.shards[i]
}

// indexOf returns the position of a shard in the directory, or -1.
func (d *shardDir) indexOf(sh *shard) int {
	for i, s := range d.shards {
		if s == sh {
			return i
		}
	}
	return -1
}

// ShardedTree is a spatial index partitioned into independently writable
// shards by Hilbert order. It serves the same queries as a Tree — Search,
// SearchAll, Count, NearestNeighbors, BatchSearch, joins — with identical
// result sets, and the same snapshot-isolation guarantees per shard, but
// mutations on different shards proceed concurrently instead of queueing on
// one writer mutex. Create one with NewSharded (in memory) or CreateSharded
// / OpenSharded (file-backed, one snapshot file per shard).
type ShardedTree struct {
	opts  ShardedOptions
	curve *hilbert.Curve
	dir   atomic.Pointer[shardDir]

	// counter is shared by every shard tree (rtree.SetCounter), so IOStats
	// aggregates exactly once per node access across the whole engine.
	counter *storage.Counter

	// commitMu orders cross-shard commits against multi-shard snapshot
	// acquisition: ShardedBatch.Commit holds it exclusively while publishing
	// every touched shard, Snapshot holds it shared while pinning every
	// shard — so a ShardedView sees either none or all of a batch. Plain
	// single-shard mutations bypass it entirely (per-shard atomicity needs
	// no cross-shard ordering), keeping independent writers fully parallel.
	commitMu sync.RWMutex

	// batchMu serialises ShardedBatches against each other: a batch
	// acquires shard writer locks lazily as mutations route, and two
	// interleaved batches could otherwise deadlock on opposite acquisition
	// orders. Single-shard writers never take it.
	batchMu sync.Mutex

	// rebalancing admits one split/merge at a time (CAS guard).
	rebalancing atomic.Bool

	splits atomic.Int64
	merges atomic.Int64

	// poolCap remembers AttachBufferPool's capacity so shards created by
	// later splits get their share (0 = no pool, -1 = unbounded).
	poolCap atomic.Int64

	// Persistence binding (file-backed engines only; see shard_persist.go).
	dirPath string     // directory holding shards.json + per-shard files
	fileMu  sync.Mutex // serialises shards.json rewrites
	seq     atomic.Uint64

	// retiredMu guards the file-backed trees kept open after a split/merge:
	// views pinned on them stay valid, so their files are closed and
	// removed only at ShardedTree.Close.
	retiredMu sync.Mutex
	retired   []*shard
}

// newSharedCounter builds the engine-wide I/O counter every shard tree is
// rewired to.
func newSharedCounter() *storage.Counter { return &storage.Counter{} }

// newShardCurve builds the routing curve for effective (defaulted) options.
func newShardCurve(opts ShardedOptions) (*hilbert.Curve, error) {
	return hilbert.New(opts.Universe, opts.HilbertBits)
}

// NewSharded creates an empty in-memory ShardedTree.
func NewSharded(opts ShardedOptions) (*ShardedTree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	st := &ShardedTree{opts: opts, counter: newSharedCounter()}
	st.curve, err = newShardCurve(opts)
	if err != nil {
		return nil, err
	}
	ranges := st.initialRanges()
	shards := make([]*shard, len(ranges))
	for i, rg := range ranges {
		t, err := st.newShardTree()
		if err != nil {
			return nil, err
		}
		shards[i] = &shard{lo: rg[0], hi: rg[1], t: t}
	}
	st.dir.Store(&shardDir{shards: shards})
	return st, nil
}

// initialRanges divides the curve's key space [0, MaxIndex] into
// opts.Shards contiguous ranges of near-equal width.
func (st *ShardedTree) initialRanges() [][2]uint64 {
	total := st.curve.MaxIndex() + 1 // <= 2^63, no overflow
	n := uint64(st.opts.Shards)
	if n > total {
		n = total
	}
	step, rem := total/n, total%n
	ranges := make([][2]uint64, 0, n)
	lo := uint64(0)
	for i := uint64(0); i < n; i++ {
		hi := lo + step
		if i < rem {
			hi++
		}
		ranges = append(ranges, [2]uint64{lo, hi})
		lo = hi
	}
	return ranges
}

// newShardTree builds one in-memory shard tree wired into the shared
// counter and, when a pool is attached, its slice of the buffer budget.
func (st *ShardedTree) newShardTree() (*Tree, error) {
	t, err := New(st.opts.Options)
	if err != nil {
		return nil, err
	}
	st.adoptShardTree(t)
	return t, nil
}

// adoptShardTree wires an existing Tree (fresh, Created, or Opened) into
// the engine's shared accounting.
func (st *ShardedTree) adoptShardTree(t *Tree) {
	t.tree.SetCounter(st.counter)
	if cap := st.poolCap.Load(); cap != 0 {
		t.AttachBufferPool(st.shardPoolQuota(int(cap)))
	}
}

// shardPoolQuota splits a total pool capacity across the current shards.
func (st *ShardedTree) shardPoolQuota(total int) int {
	if total <= 0 {
		return 0 // unbounded
	}
	n := 1
	if d := st.dir.Load(); d != nil {
		n = len(d.shards)
	}
	q := total / n
	if q < 1 {
		q = 1
	}
	return q
}

// Options returns the effective configuration.
func (st *ShardedTree) Options() ShardedOptions { return st.opts }

// NumShards returns the current number of shards.
func (st *ShardedTree) NumShards() int { return len(st.dir.Load().shards) }

// ShardLens returns the object count of every shard, in directory order.
func (st *ShardedTree) ShardLens() []int {
	d := st.dir.Load()
	out := make([]int, len(d.shards))
	for i, sh := range d.shards {
		out[i] = sh.t.Len()
	}
	return out
}

// RebalanceStats reports how many shard splits and merges have run.
func (st *ShardedTree) RebalanceStats() (splits, merges int64) {
	return st.splits.Load(), st.merges.Load()
}

// key routes a rectangle: the Hilbert key of its centre, clamped to the
// universe. Splits partition items by this same key, so an object's shard
// is always the one owning its key.
func (st *ShardedTree) key(r Rect) uint64 { return st.curve.Index(r.Center()) }

func (st *ShardedTree) checkRect(r Rect) error {
	if !r.Valid() || r.Dims() != st.opts.Dims {
		return fmt.Errorf("cbb: invalid %d-dimensional rectangle for a %d-dimensional sharded tree", r.Dims(), st.opts.Dims)
	}
	return nil
}

// Insert adds an object, routed to the shard owning its centre's Hilbert
// key. Writers on different shards run concurrently; two writers on the
// same shard serialise on that shard's writer mutex only.
func (st *ShardedTree) Insert(r Rect, id ObjectID) error {
	if err := st.checkRect(r); err != nil {
		return err
	}
	key := st.key(r)
	for {
		sh := st.dir.Load().find(key)
		sh.t.wmu.Lock()
		if sh.retired.Load() {
			// A split or merge replaced this shard while we queued on its
			// writer lock; re-route through the fresh directory.
			sh.t.wmu.Unlock()
			continue
		}
		err := sh.t.insertLocked(r, id)
		sh.t.wmu.Unlock()
		if err != nil {
			return err
		}
		st.maybeSplit(sh)
		return nil
	}
}

// Delete removes the object with the exact rectangle and id, routed like
// Insert (same rectangle, same centre, same shard — across splits and
// merges, because rebalancing partitions by the same key).
func (st *ShardedTree) Delete(r Rect, id ObjectID) (bool, error) {
	if err := st.checkRect(r); err != nil {
		return false, err
	}
	key := st.key(r)
	for {
		sh := st.dir.Load().find(key)
		sh.t.wmu.Lock()
		if sh.retired.Load() {
			sh.t.wmu.Unlock()
			continue
		}
		found, err := sh.t.deleteLocked(r, id)
		sh.t.wmu.Unlock()
		if err != nil || !found {
			return found, err
		}
		st.maybeMerge(sh)
		return found, nil
	}
}

// InsertItems ingests a batch of items grouped by shard: items are sorted
// into Hilbert order once, then each run belonging to one shard is applied
// as a single per-shard batch (one commit per shard). This is the
// high-throughput ingest path — per-shard commit cost is amortised over the
// run and concurrent InsertItems calls on disjoint regions do not contend.
// Unlike Begin, the ingest is atomic per shard, not across shards.
func (st *ShardedTree) InsertItems(items []Item) error {
	type keyed struct {
		item Item
		key  uint64
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		if err := st.checkRect(it.Rect); err != nil {
			return err
		}
		ks[i] = keyed{item: it, key: st.key(it.Rect)}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	var run []Item // reused per shard
	i := 0
	for i < len(ks) {
		sh := st.dir.Load().find(ks[i].key)
		b, err := sh.t.Begin()
		if err != nil {
			return err
		}
		if sh.retired.Load() {
			b.Rollback()
			continue
		}
		j := i
		run = run[:0]
		for j < len(ks) && ks[j].key < sh.hi {
			run = append(run, ks[j].item)
			j++
		}
		// The whole per-shard run rides the tree's batch fast path (one
		// Hilbert-sorted routing pass, bulk subtree grafts, one COW epoch).
		if err := b.InsertItems(run); err != nil {
			b.Rollback()
			return err
		}
		if err := b.Commit(); err != nil {
			return err
		}
		i = j
		st.maybeSplit(sh)
	}
	return nil
}

// BulkLoad builds the empty sharded tree from items: each shard bulk-loads
// its key-range's partition with the variant's packing strategy. It is a
// maintenance operation like Tree.BulkLoad: do not run it concurrently with
// other writers.
func (st *ShardedTree) BulkLoad(items []Item) error {
	st.batchMu.Lock()
	defer st.batchMu.Unlock()
	d := st.dir.Load()
	groups := make([][]Item, len(d.shards))
	for _, it := range items {
		if err := st.checkRect(it.Rect); err != nil {
			return err
		}
		i := d.indexOf(d.find(st.key(it.Rect)))
		groups[i] = append(groups[i], it)
	}
	for i, sh := range d.shards {
		if len(groups[i]) == 0 {
			continue
		}
		if err := sh.t.BulkLoad(groups[i]); err != nil {
			return err
		}
	}
	for _, sh := range d.shards {
		st.maybeSplit(sh)
	}
	return nil
}

// Begin opens a cross-shard writer batch: mutations route to their shards
// as usual but accumulate in per-shard batches that Commit publishes
// together — a ShardedView acquired at any moment observes either none or
// all of them. ShardedBatches are serialised against each other; plain
// Insert/Delete calls on other shards keep running concurrently.
func (st *ShardedTree) Begin() (*ShardedBatch, error) {
	st.batchMu.Lock()
	return &ShardedBatch{st: st, open: make(map[*shard]*Batch)}, nil
}

// ShardedBatch is an open cross-shard transaction created with
// ShardedTree.Begin. It must be used from one goroutine and finished with
// exactly one Commit or Rollback.
type ShardedBatch struct {
	st   *ShardedTree
	open map[*shard]*Batch
	done bool
}

// batchFor lazily opens (and caches) the per-shard batch owning a key,
// returning the shard alongside so callers can group further keys in
// [sh.lo, sh.hi) onto the same batch.
func (sb *ShardedBatch) batchFor(key uint64) (*shard, *Batch, error) {
	for {
		sh := sb.st.dir.Load().find(key)
		if b, ok := sb.open[sh]; ok {
			return sh, b, nil
		}
		b, err := sh.t.Begin()
		if err != nil {
			return nil, nil, err
		}
		if sh.retired.Load() {
			b.Rollback()
			continue
		}
		sb.open[sh] = b
		return sh, b, nil
	}
}

// Insert adds an object to the batch; it becomes visible at Commit.
func (sb *ShardedBatch) Insert(r Rect, id ObjectID) error {
	if sb.done {
		return errBatchDone
	}
	if err := sb.st.checkRect(r); err != nil {
		return err
	}
	_, b, err := sb.batchFor(sb.st.key(r))
	if err != nil {
		return err
	}
	return b.Insert(r, id)
}

// InsertItems adds a batch of objects to the cross-shard transaction: items
// are sorted into Hilbert order once, each per-shard run is applied through
// that shard's fast batch-insert pipeline (see Tree.InsertItems), and
// everything becomes visible together at Commit.
func (sb *ShardedBatch) InsertItems(items []Item) error {
	if sb.done {
		return errBatchDone
	}
	type keyed struct {
		item Item
		key  uint64
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		if err := sb.st.checkRect(it.Rect); err != nil {
			return err
		}
		ks[i] = keyed{item: it, key: sb.st.key(it.Rect)}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	var run []Item // reused per shard
	i := 0
	for i < len(ks) {
		sh, b, err := sb.batchFor(ks[i].key)
		if err != nil {
			return err
		}
		j := i
		run = run[:0]
		for j < len(ks) && ks[j].key < sh.hi {
			run = append(run, ks[j].item)
			j++
		}
		if err := b.InsertItems(run); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// Delete removes an object within the batch; the removal becomes visible at
// Commit. Found reflects the batch's own uncommitted state.
func (sb *ShardedBatch) Delete(r Rect, id ObjectID) (bool, error) {
	if sb.done {
		return false, errBatchDone
	}
	if err := sb.st.checkRect(r); err != nil {
		return false, err
	}
	_, b, err := sb.batchFor(sb.st.key(r))
	if err != nil {
		return false, err
	}
	return b.Delete(r, id)
}

// Commit publishes every touched shard's batch as one atomic step with
// respect to ShardedViews: a view acquisition is excluded for the duration
// of the multi-shard publish, so it sees all of the batch or none of it.
func (sb *ShardedBatch) Commit() error {
	if sb.done {
		return errBatchDone
	}
	sb.done = true
	sb.st.commitMu.Lock()
	for _, b := range sb.open {
		b.Commit()
	}
	sb.st.commitMu.Unlock()
	sb.st.batchMu.Unlock()
	for sh := range sb.open {
		sb.st.maybeSplit(sh)
		sb.st.maybeMerge(sh)
	}
	return nil
}

// Rollback discards the batch on every touched shard; readers never saw any
// of it. No-op on a finished batch.
func (sb *ShardedBatch) Rollback() {
	if sb.done {
		return
	}
	sb.done = true
	for _, b := range sb.open {
		b.Rollback()
	}
	sb.st.batchMu.Unlock()
}

// Search calls visit for every object whose rectangle intersects q, fanning
// out only to shards whose root MBB intersects q (the directory-level skip
// costs no I/O); traversal stops early when visit returns false. The result
// set is identical to a single Tree holding the same objects. Like
// Tree.Search, it runs lock-free against each shard's last committed state;
// use Snapshot for a frozen cross-shard view.
func (st *ShardedTree) Search(q Rect, visit func(ObjectID, Rect) bool) {
	if q.Dims() != st.opts.Dims {
		return
	}
	cont := true
	for _, sh := range st.dir.Load().shards {
		if !cont {
			return
		}
		sh.search(q, func(id ObjectID, r Rect) bool {
			if !visit(id, r) {
				cont = false
				return false
			}
			return true
		})
	}
}

// SearchAll returns every object intersecting q. Order follows the shard
// directory (Hilbert order), not a single tree's traversal order.
func (st *ShardedTree) SearchAll(q Rect) []Item {
	var out []Item
	st.Search(q, func(id ObjectID, r Rect) bool {
		out = append(out, Item{Object: id, Rect: r})
		return true
	})
	return out
}

// Count returns the number of objects intersecting q.
func (st *ShardedTree) Count(q Rect) int {
	n := 0
	st.Search(q, func(ObjectID, Rect) bool { n++; return true })
	return n
}

// NearestNeighbors returns the k objects closest to p across all shards,
// ordered by ascending distance (ties broken by object id). Shards are
// visited in order of their bounds' distance to p and pruned once k results
// closer than the next shard's bounds are known.
func (st *ShardedTree) NearestNeighbors(k int, p Point) []Neighbor {
	if len(p) != st.opts.Dims {
		return nil
	}
	d := st.dir.Load()
	versions := make([]*rtree.Version, 0, len(d.shards))
	for _, sh := range d.shards {
		versions = append(versions, sh.t.readVersion())
	}
	return knnAcrossVersions(versions, k, p)
}

// knnAcrossVersions merges per-shard nearest-neighbour queries with
// distance-ordered shard pruning.
func knnAcrossVersions(versions []*rtree.Version, k int, p Point) []Neighbor {
	if k <= 0 {
		return nil
	}
	type src struct {
		v *rtree.Version
		d float64
	}
	srcs := make([]src, 0, len(versions))
	for _, v := range versions {
		if v.Len() == 0 {
			continue
		}
		srcs = append(srcs, src{v: v, d: v.Bounds().MinDistSq(p)})
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].d < srcs[j].d })
	var best []Neighbor
	for _, s := range srcs {
		if len(best) >= k && s.d > best[len(best)-1].DistSq {
			break
		}
		for _, n := range s.v.NearestNeighbors(k, p) {
			best = append(best, Neighbor{Object: n.Object, Rect: n.Rect, DistSq: n.DistSq})
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].DistSq != best[j].DistSq {
				return best[i].DistSq < best[j].DistSq
			}
			return best[i].Object < best[j].Object
		})
		if len(best) > k {
			best = best[:k]
		}
	}
	return best
}

// BatchSearch runs a batch of range queries over one internally acquired
// ShardedView (so every query observes one consistent cross-shard state),
// fanned out over worker goroutines with exact merged I/O accounting.
func (st *ShardedTree) BatchSearch(queries []Rect, opts BatchOptions) (BatchResult, error) {
	v := st.Snapshot()
	defer v.Close()
	return v.BatchSearch(queries, opts)
}

// Len returns the total number of indexed objects across shards.
func (st *ShardedTree) Len() int {
	n := 0
	for _, sh := range st.dir.Load().shards {
		n += sh.t.Len()
	}
	return n
}

// Height returns the height of the tallest shard tree.
func (st *ShardedTree) Height() int {
	h := 0
	for _, sh := range st.dir.Load().shards {
		if hh := sh.t.Height(); hh > h {
			h = hh
		}
	}
	return h
}

// Bounds returns the MBB of all indexed objects across shards.
func (st *ShardedTree) Bounds() Rect {
	var out Rect
	for _, sh := range st.dir.Load().shards {
		b := sh.t.Bounds()
		if b.IsZero() {
			continue
		}
		if out.IsZero() {
			out = b
			continue
		}
		out = out.Union(b)
	}
	return out
}

// IOStats returns the I/O counters accumulated across every shard: all
// shard trees charge one shared counter, so each node access is counted
// exactly once engine-wide.
func (st *ShardedTree) IOStats() IOStats { return toIOStats(st.counter.Snapshot()) }

// ResetIOStats zeroes the shared counters and every shard's buffer pool.
func (st *ShardedTree) ResetIOStats() {
	for _, sh := range st.dir.Load().shards {
		sh.t.ResetIOStats() // counter reset is shared (idempotent); pools are per shard
	}
}

// AttachBufferPool divides an LRU buffer budget of the given total node
// capacity evenly across the shards (per-shard pools: node ids are
// per-tree, so one pool cannot be shared). Shards created by later splits
// receive the same per-shard quota. capacity <= 0 means unbounded, like
// Tree.AttachBufferPool. Maintenance operation: attach before reads start.
func (st *ShardedTree) AttachBufferPool(capacity int) {
	stored := int64(capacity)
	if capacity <= 0 {
		stored = -1 // distinguish "unbounded" from "no pool"
	}
	st.poolCap.Store(stored)
	quota := st.shardPoolQuota(capacity)
	for _, sh := range st.dir.Load().shards {
		sh.t.AttachBufferPool(quota)
	}
}

// DetachBufferPool removes every shard's buffer pool.
func (st *ShardedTree) DetachBufferPool() {
	st.poolCap.Store(0)
	for _, sh := range st.dir.Load().shards {
		sh.t.DetachBufferPool()
	}
}

// BufferStats sums the buffer statistics across shards; ok is false when no
// pool is attached.
func (st *ShardedTree) BufferStats() (BufferStats, bool) {
	var out BufferStats
	any := false
	for _, sh := range st.dir.Load().shards {
		s, ok := sh.t.BufferStats()
		if ok {
			any = true
			out.Hits += s.Hits
			out.Misses += s.Misses
		}
	}
	return out, any
}

// Stats aggregates structural statistics across shards (Height is the
// maximum, the counts are sums).
func (st *ShardedTree) Stats() Stats {
	var out Stats
	d := st.dir.Load()
	weighted := 0.0
	for _, sh := range d.shards {
		s := sh.t.Stats()
		out.Objects += s.Objects
		out.LeafNodes += s.LeafNodes
		out.DirNodes += s.DirNodes
		out.ClipPoints += s.ClipPoints
		out.ClipTableBytes += s.ClipTableBytes
		if s.Height > out.Height {
			out.Height = s.Height
		}
		weighted += s.AvgClipPoints * float64(s.LeafNodes+s.DirNodes)
	}
	if nodes := out.LeafNodes + out.DirNodes; nodes > 0 {
		out.AvgClipPoints = weighted / float64(nodes)
	}
	return out
}

// Validate checks every shard's structural invariants, the directory's
// (contiguous ranges covering the key space), and that every object lives
// in the shard owning its Hilbert key. Intended for tests; not cheap.
func (st *ShardedTree) Validate() error {
	d := st.dir.Load()
	if len(d.shards) == 0 {
		return errors.New("cbb: sharded tree has no shards")
	}
	if d.shards[0].lo != 0 {
		return fmt.Errorf("cbb: first shard starts at key %d, want 0", d.shards[0].lo)
	}
	if want := st.curve.MaxIndex() + 1; d.shards[len(d.shards)-1].hi != want {
		return fmt.Errorf("cbb: last shard ends at key %d, want %d", d.shards[len(d.shards)-1].hi, want)
	}
	for i, sh := range d.shards {
		if sh.lo >= sh.hi {
			return fmt.Errorf("cbb: shard %d has empty key range [%d, %d)", i, sh.lo, sh.hi)
		}
		if i > 0 && sh.lo != d.shards[i-1].hi {
			return fmt.Errorf("cbb: shard %d starts at key %d, want %d (ranges must be contiguous)", i, sh.lo, d.shards[i-1].hi)
		}
		if err := sh.t.Validate(); err != nil {
			return fmt.Errorf("cbb: shard %d: %w", i, err)
		}
		for _, it := range sh.t.tree.AllItems() {
			if key := st.key(it.Rect); key < sh.lo || key >= sh.hi {
				return fmt.Errorf("cbb: shard %d [%d, %d) holds object %d with key %d", i, sh.lo, sh.hi, it.Object, key)
			}
		}
	}
	return nil
}

// --- skew-driven rebalancing ------------------------------------------------

func (st *ShardedTree) maybeSplit(sh *shard) {
	if st.opts.SplitAbove <= 0 || sh.retired.Load() || sh.t.Len() <= st.opts.SplitAbove {
		return
	}
	st.splitShard(sh)
}

func (st *ShardedTree) maybeMerge(sh *shard) {
	if st.opts.MergeBelow <= 0 || sh.retired.Load() || sh.t.Len() >= st.opts.MergeBelow {
		return
	}
	d := st.dir.Load()
	i := d.indexOf(sh)
	if i < 0 {
		return
	}
	// Prefer the smaller neighbour, to keep the merged shard well under the
	// split threshold.
	left, right := i-1, i+1
	pick := -1
	switch {
	case left >= 0 && right < len(d.shards):
		if d.shards[left].t.Len() <= d.shards[right].t.Len() {
			pick = left
		} else {
			pick = i
		}
	case left >= 0:
		pick = left
	case right < len(d.shards):
		pick = i
	}
	if pick < 0 {
		return
	}
	st.mergeShards(pick)
}

// SplitShard bisects shard i's Hilbert key range at the median occupied key
// and rebuilds both halves, publishing a new directory; readers (including
// pinned views) are never blocked and writers to the shard only while the
// halves are built. It is the manual trigger of the same path automatic
// splits take; it is a no-op (nil error) when the shard cannot be split
// (fewer than 2 distinct keys) or another rebalance is in flight.
func (st *ShardedTree) SplitShard(i int) error {
	d := st.dir.Load()
	if i < 0 || i >= len(d.shards) {
		return fmt.Errorf("cbb: SplitShard(%d): shard index out of range", i)
	}
	return st.splitShard(d.shards[i])
}

func (st *ShardedTree) splitShard(sh *shard) error {
	if !st.rebalancing.CompareAndSwap(false, true) {
		return nil // one rebalance at a time; the trigger re-fires later
	}
	defer st.rebalancing.Store(false)
	sh.t.wmu.Lock()
	defer sh.t.wmu.Unlock()
	if sh.retired.Load() || sh.hi-sh.lo < 2 {
		return nil
	}
	items := sh.t.tree.AllItems()
	if len(items) < 2 {
		return nil
	}
	keys := make([]uint64, len(items))
	order := make([]int, len(items))
	for i, it := range items {
		keys[i] = st.key(it.Rect)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	// Bisect at the median occupied key, advancing past an equal prefix so
	// both halves are non-empty; all keys equal means the shard cannot be
	// subdivided by Hilbert range.
	mid := len(order) / 2
	for mid < len(order) && keys[order[mid]] == keys[order[0]] {
		mid++
	}
	if mid == len(order) {
		return nil
	}
	splitKey := keys[order[mid]]
	var leftItems, rightItems []Item
	for _, idx := range order {
		if keys[idx] < splitKey {
			leftItems = append(leftItems, items[idx])
		} else {
			rightItems = append(rightItems, items[idx])
		}
	}
	left, err := st.buildShard(sh.lo, splitKey, leftItems)
	if err != nil {
		return err
	}
	right, err := st.buildShard(splitKey, sh.hi, rightItems)
	if err != nil {
		st.discardShard(left)
		return err
	}
	if err := st.publishReplacement(sh, []*shard{left, right}); err != nil {
		st.discardShard(left)
		st.discardShard(right)
		return err
	}
	st.splits.Add(1)
	return nil
}

// MergeShards merges shards i and i+1 into one shard owning the union of
// their key ranges. Like SplitShard it is the manual trigger of the
// automatic path; it returns a nil error without merging when either shard
// is being rebalanced concurrently.
func (st *ShardedTree) MergeShards(i int) error {
	d := st.dir.Load()
	if i < 0 || i+1 >= len(d.shards) {
		return fmt.Errorf("cbb: MergeShards(%d): needs two adjacent shards", i)
	}
	return st.mergeShards(i)
}

func (st *ShardedTree) mergeShards(i int) error {
	if !st.rebalancing.CompareAndSwap(false, true) {
		return nil
	}
	defer st.rebalancing.Store(false)
	d := st.dir.Load()
	if i < 0 || i+1 >= len(d.shards) {
		return nil
	}
	left, right := d.shards[i], d.shards[i+1]
	left.t.wmu.Lock()
	defer left.t.wmu.Unlock()
	if left.retired.Load() {
		return nil
	}
	// TryLock avoids a deadlock against an open ShardedBatch that holds the
	// right shard's writer lock and may be waiting to lock further shards:
	// a contended merge simply yields and retries on a later trigger.
	if !right.t.wmu.TryLock() {
		return nil
	}
	defer right.t.wmu.Unlock()
	if right.retired.Load() {
		return nil
	}
	// Both shards are unretired, so the directory still lists them
	// adjacently (any rebalance would have retired one of them).
	if st.opts.SplitAbove > 0 && left.t.Len()+right.t.Len() > st.opts.SplitAbove*3/4 {
		return nil // hysteresis: never merge into an immediate split
	}
	items := append(left.t.tree.AllItems(), right.t.tree.AllItems()...)
	merged, err := st.buildShard(left.lo, right.hi, items)
	if err != nil {
		return err
	}
	if err := st.publishReplacement2(left, right, merged); err != nil {
		st.discardShard(merged)
		return err
	}
	st.merges.Add(1)
	return nil
}

// buildShard constructs a new shard for [lo, hi) bulk-loaded with items —
// file-backed (with its own snapshot file, flushed before publication) when
// the engine is, in-memory otherwise.
func (st *ShardedTree) buildShard(lo, hi uint64, items []Item) (*shard, error) {
	var t *Tree
	var path string
	var err error
	if st.dirPath != "" {
		path = st.nextShardPath()
		t, err = Create(path, st.opts.Options)
		if err != nil {
			return nil, err
		}
		st.adoptShardTree(t)
	} else {
		t, err = st.newShardTree()
		if err != nil {
			return nil, err
		}
	}
	if len(items) > 0 {
		if err := t.BulkLoad(items); err != nil {
			if path != "" {
				t.Close()
			}
			return nil, err
		}
	}
	if path != "" {
		if err := t.Flush(); err != nil {
			t.Close()
			return nil, err
		}
	}
	return &shard{lo: lo, hi: hi, t: t, path: path}, nil
}

// discardShard drops a freshly built shard that never got published.
func (st *ShardedTree) discardShard(sh *shard) {
	if sh.path != "" {
		sh.t.Close()
		removeShardFile(sh.path)
	}
}

// publishReplacement swaps one shard for its replacements in a new
// directory, persists the directory file (file-backed engines), and retires
// the old shard — in that order, and while the old shard's writer lock is
// held, so the old and new shards hold identical content at the swap and a
// reader on either side observes the same objects.
func (st *ShardedTree) publishReplacement(old *shard, repl []*shard) error {
	d := st.dir.Load()
	i := d.indexOf(old)
	if i < 0 {
		return fmt.Errorf("cbb: shard vanished from the directory during rebalance")
	}
	shards := make([]*shard, 0, len(d.shards)+len(repl)-1)
	shards = append(shards, d.shards[:i]...)
	shards = append(shards, repl...)
	shards = append(shards, d.shards[i+1:]...)
	if err := st.persistDirectory(shards); err != nil {
		return err
	}
	st.dir.Store(&shardDir{shards: shards})
	old.retired.Store(true)
	st.noteRetired(old)
	return nil
}

// publishReplacement2 swaps two adjacent shards for one merged shard.
func (st *ShardedTree) publishReplacement2(l, r *shard, merged *shard) error {
	d := st.dir.Load()
	i := d.indexOf(l)
	if i < 0 || i+1 >= len(d.shards) || d.shards[i+1] != r {
		return fmt.Errorf("cbb: shards vanished from the directory during rebalance")
	}
	shards := make([]*shard, 0, len(d.shards)-1)
	shards = append(shards, d.shards[:i]...)
	shards = append(shards, merged)
	shards = append(shards, d.shards[i+2:]...)
	if err := st.persistDirectory(shards); err != nil {
		return err
	}
	st.dir.Store(&shardDir{shards: shards})
	l.retired.Store(true)
	r.retired.Store(true)
	st.noteRetired(l)
	st.noteRetired(r)
	return nil
}

// noteRetired keeps a retired file-backed shard open (pinned views may
// still fault its pages) until ShardedTree.Close, which closes and removes
// it. Retired in-memory shards need nothing: the garbage collector reclaims
// them once the last view closes.
func (st *ShardedTree) noteRetired(sh *shard) {
	if sh.path == "" {
		return
	}
	st.retiredMu.Lock()
	st.retired = append(st.retired, sh)
	st.retiredMu.Unlock()
}
