package cbb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"cbb/internal/storage"
)

// Persistence of the sharded engine: a ShardedTree binds to a directory
// holding one snapshot file per shard (each with its own WAL, exactly as
// Create/Open produce) plus a shards.json directory file mapping Hilbert
// key ranges to shard files. The directory file is rewritten atomically
// (temp file + rename) whenever the shard layout changes — at creation and
// on every split or merge — so a crash leaves it at either the pre- or the
// post-rebalance layout, and the shard files it references are always
// flushed before the rename. Shard files orphaned by a crash mid-rebalance
// are ignored by OpenSharded and removed on the next Close.

// shardDirFileName is the directory file inside a sharded engine's
// directory.
const shardDirFileName = "shards.json"

// shardDirFileVersion is the format version of shards.json.
const shardDirFileVersion = 1

type shardDirFile struct {
	Version int            `json:"version"`
	Seq     uint64         `json:"seq"`
	Options ShardedOptions `json:"options"`
	Shards  []shardEntry   `json:"shards"`
}

type shardEntry struct {
	File string `json:"file"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

// CreateSharded creates a new, empty, file-backed ShardedTree in dir (which
// is created if missing): one snapshot file per shard plus shards.json. It
// fails if dir already holds a sharded engine.
func CreateSharded(dir string, opts ShardedOptions) (*ShardedTree, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	dirFile := filepath.Join(dir, shardDirFileName)
	if _, err := os.Stat(dirFile); err == nil {
		return nil, fmt.Errorf("cbb: %s already holds a sharded engine", dir)
	}
	st := &ShardedTree{opts: opts, counter: newSharedCounter(), dirPath: dir}
	st.curve, err = newShardCurve(opts)
	if err != nil {
		return nil, err
	}
	ranges := st.initialRanges()
	shards := make([]*shard, len(ranges))
	fail := func(err error) (*ShardedTree, error) {
		for _, sh := range shards {
			if sh != nil {
				st.discardShard(sh)
			}
		}
		return nil, err
	}
	for i, rg := range ranges {
		path := st.nextShardPath()
		t, err := Create(path, opts.Options)
		if err != nil {
			return fail(err)
		}
		st.adoptShardTree(t)
		shards[i] = &shard{lo: rg[0], hi: rg[1], t: t, path: path}
	}
	if err := st.persistDirectory(shards); err != nil {
		return fail(err)
	}
	st.dir.Store(&shardDir{shards: shards})
	return st, nil
}

// OpenSharded opens a sharded engine previously created with CreateSharded:
// shards.json is read, every shard file is opened file-backed (queries
// fault pages in on demand; mutations commit through each shard's WAL), and
// the engine resumes with the persisted layout and options. Interrupted
// per-shard commits are recovered by each shard's own WAL replay; an
// interrupted rebalance resumes at whichever layout shards.json references.
func OpenSharded(dir string) (*ShardedTree, error) {
	return openSharded(dir, Open)
}

// OpenShardedMmap opens a sharded engine with every shard served through a
// read-only memory mapping (see OpenMmap): queries decode node pages in
// place from the mapped shard files and mutations return ErrReadOnly. It
// fails with ErrMmapUnsupported on platforms without mmap support; fall back
// to OpenSharded.
func OpenShardedMmap(dir string) (*ShardedTree, error) {
	return openSharded(dir, OpenMmap)
}

func openSharded(dir string, open func(path string) (*Tree, error)) (*ShardedTree, error) {
	raw, err := os.ReadFile(filepath.Join(dir, shardDirFileName))
	if err != nil {
		return nil, err
	}
	var df shardDirFile
	if err := json.Unmarshal(raw, &df); err != nil {
		return nil, fmt.Errorf("cbb: corrupt %s: %w", shardDirFileName, err)
	}
	if df.Version != shardDirFileVersion {
		return nil, fmt.Errorf("cbb: unsupported %s version %d", shardDirFileName, df.Version)
	}
	if len(df.Shards) == 0 {
		return nil, fmt.Errorf("cbb: %s lists no shards", shardDirFileName)
	}
	opts, err := df.Options.withDefaults()
	if err != nil {
		return nil, err
	}
	st := &ShardedTree{opts: opts, counter: newSharedCounter(), dirPath: dir}
	st.curve, err = newShardCurve(opts)
	if err != nil {
		return nil, err
	}
	st.seq.Store(df.Seq)
	shards := make([]*shard, len(df.Shards))
	fail := func(err error) (*ShardedTree, error) {
		for _, sh := range shards {
			if sh != nil {
				sh.t.Close()
			}
		}
		return nil, err
	}
	for i, e := range df.Shards {
		path := filepath.Join(dir, e.File)
		t, err := open(path)
		if err != nil {
			return fail(fmt.Errorf("cbb: opening shard %s: %w", e.File, err))
		}
		if t.Options().Dims != opts.Dims {
			return fail(fmt.Errorf("cbb: shard %s has %d dimensions, directory says %d", e.File, t.Options().Dims, opts.Dims))
		}
		st.adoptShardTree(t)
		shards[i] = &shard{lo: e.Lo, hi: e.Hi, t: t, path: path}
	}
	st.dir.Store(&shardDir{shards: shards})
	if err := st.checkDirectoryRanges(shards); err != nil {
		return fail(err)
	}
	return st, nil
}

// checkDirectoryRanges validates the persisted layout: contiguous ranges
// covering exactly the curve's key space.
func (st *ShardedTree) checkDirectoryRanges(shards []*shard) error {
	want := uint64(0)
	for i, sh := range shards {
		if sh.lo != want || sh.lo >= sh.hi {
			return fmt.Errorf("cbb: %s: shard %d has key range [%d, %d), want start %d", shardDirFileName, i, sh.lo, sh.hi, want)
		}
		want = sh.hi
	}
	if max := st.curve.MaxIndex() + 1; want != max {
		return fmt.Errorf("cbb: %s: shards cover keys up to %d, want %d", shardDirFileName, want, max)
	}
	return nil
}

// nextShardPath reserves the next shard file name.
func (st *ShardedTree) nextShardPath() string {
	n := st.seq.Add(1)
	return filepath.Join(st.dirPath, fmt.Sprintf("shard-%06d.cbb", n))
}

// persistDirectory atomically rewrites shards.json for a prospective shard
// list; a no-op for in-memory engines.
func (st *ShardedTree) persistDirectory(shards []*shard) error {
	if st.dirPath == "" {
		return nil
	}
	st.fileMu.Lock()
	defer st.fileMu.Unlock()
	df := shardDirFile{Version: shardDirFileVersion, Seq: st.seq.Load(), Options: st.opts}
	for _, sh := range shards {
		df.Shards = append(df.Shards, shardEntry{File: filepath.Base(sh.path), Lo: sh.lo, Hi: sh.hi})
	}
	raw, err := json.MarshalIndent(df, "", "\t")
	if err != nil {
		return err
	}
	tmp := filepath.Join(st.dirPath, shardDirFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(st.dirPath, shardDirFileName))
}

// Flush commits every live shard's changes into its snapshot file, each
// through its own atomic WAL-protected commit. Like Tree.Flush it is a
// writer-side operation: it fails on a shard with an open batch. In-memory
// engines return an error, matching Tree.Flush without a file binding.
func (st *ShardedTree) Flush() error {
	if st.dirPath == "" {
		return errors.New("cbb: sharded tree has no directory binding; use CreateSharded")
	}
	var errs []error
	for i, sh := range st.dir.Load().shards {
		if err := sh.t.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close releases the engine: every live file-backed shard is flushed and
// closed, and the files of shards retired by splits and merges — kept open
// until now so pinned views stayed valid — are closed and removed. The
// engine must not be used afterwards. In-memory engines only release the
// retired bookkeeping.
func (st *ShardedTree) Close() error {
	var errs []error
	for i, sh := range st.dir.Load().shards {
		if err := sh.t.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	st.retiredMu.Lock()
	retired := st.retired
	st.retired = nil
	st.retiredMu.Unlock()
	for _, sh := range retired {
		if err := sh.t.Close(); err != nil {
			errs = append(errs, err)
		}
		removeShardFile(sh.path)
	}
	return errors.Join(errs...)
}

// removeShardFile deletes a shard's snapshot file and any WAL left next to
// it; best-effort (the files are dead weight, not state).
func removeShardFile(path string) {
	if path == "" {
		return
	}
	os.Remove(path)
	os.Remove(storage.WALPathFor(path))
}
