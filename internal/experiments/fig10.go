package experiments

import (
	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/metrics"
)

// Fig10Row is one bar of Figure 10: for a (dataset, variant, method, k)
// combination, the node dead space and the share of it clipped away.
type Fig10Row struct {
	Dataset            string
	Variant            string
	Method             string
	K                  int
	AvgDeadSpace       float64 // total bar height
	AvgClipped         float64 // filled (clear) part
	AvgRemaining       float64 // solid lower part
	ClippedShareOfDead float64
	AvgClipPoints      float64
}

// Fig10Result reproduces Figure 10 (dead space clipped away per k for both
// clipping methods).
type Fig10Result struct {
	Rows []Fig10Row
}

// KValues returns the k sweep the paper uses for a given dimensionality:
// 1..2^(d+1) in steps matching the figure's x-axis labels.
func KValues(dims int) []int {
	if dims == 2 {
		return []int{1, 2, 4, 6, 8}
	}
	return []int{1, 4, 8, 12, 16}
}

// RunFig10 sweeps k for both clipping methods over the configured datasets
// and variants, measuring the clipped and remaining dead space per node.
func RunFig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig10Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		for _, v := range cfg.Variants {
			tree, _, err := cfg.BuildTree(ds, v)
			if err != nil {
				return nil, err
			}
			for _, method := range []core.Method{core.MethodSkyline, core.MethodStairline} {
				for _, k := range KValues(ds.Spec.Dims) {
					params := core.Params{K: k, Tau: cfg.Tau, Method: method}
					idx, err := clipindex.New(tree, params)
					if err != nil {
						return nil, err
					}
					cs := metrics.ClippedDeadSpace(idx, cfg.SamplesPerNode, cfg.Seed+4)
					out.Rows = append(out.Rows, Fig10Row{
						Dataset:            name,
						Variant:            v.String(),
						Method:             method.String(),
						K:                  k,
						AvgDeadSpace:       cs.AvgDeadSpace,
						AvgClipped:         cs.AvgClipped,
						AvgRemaining:       cs.AvgRemaining,
						ClippedShareOfDead: cs.ClippedShareOfDead,
						AvgClipPoints:      cs.AvgClipPoints,
					})
				}
			}
		}
	}
	return out, nil
}

// Table renders Figure 10 with one row per bar.
func (r *Fig10Result) Table() *Table {
	t := NewTable("Figure 10: dead space clipped away per node (CSKY / CSTA, k sweep)",
		"dataset", "variant", "method", "k", "dead space", "clipped", "remaining", "clipped share", "avg clips")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Variant, row.Method, row.K,
			Pct(row.AvgDeadSpace), Pct(row.AvgClipped), Pct(row.AvgRemaining),
			Pct(row.ClippedShareOfDead), row.AvgClipPoints)
	}
	return t
}
