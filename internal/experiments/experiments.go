// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) on the synthetic stand-in datasets, at a
// configurable scale. Each experiment returns a structured result that the
// cbbench tool and the root-level benchmarks render as text tables; the
// mapping from experiment to paper figure is listed in DESIGN.md §3 and the
// measured outcomes are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/datasets"
	"cbb/internal/geom"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
)

// Config controls the scale and determinism of all experiments.
type Config struct {
	// Scale is the number of objects per dataset (0 uses a harness default
	// of 20000; the paper uses 1–12 M).
	Scale int
	// Queries is the number of queries per selectivity profile (0 = 200).
	Queries int
	// Seed drives dataset generation, query generation and sampling.
	Seed int64
	// SamplesPerNode is the Monte-Carlo budget for dead-space estimation
	// (0 = metrics.DefaultSamplesPerNode).
	SamplesPerNode int
	// Datasets restricts which datasets are run (nil = all seven).
	Datasets []string
	// Variants restricts which R-tree variants are run (nil = all four).
	Variants []rtree.Variant
	// Tau is the clip-point volume threshold (0 = the paper's 2.5 %).
	Tau float64
	// LoadDir, when set, makes Config.BuildTree reopen a previously saved
	// tree snapshot from this directory instead of rebuilding (cbbench
	// -load). Snapshots that are missing or do not match the requested
	// dataset/variant/configuration are rebuilt.
	LoadDir string
	// SaveDir, when set, makes Config.BuildTree save every freshly built
	// tree as a snapshot into this directory (cbbench -save), so later runs
	// with LoadDir pay the build cost only once.
	SaveDir string
}

// WithDefaults fills unset fields with harness defaults and returns a copy.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 20000
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.SamplesPerNode <= 0 {
		c.SamplesPerNode = 256
	}
	if len(c.Datasets) == 0 {
		c.Datasets = datasets.PaperNames()
	}
	if len(c.Variants) == 0 {
		c.Variants = rtree.AllVariants()
	}
	if c.Tau <= 0 {
		c.Tau = 0.025
	}
	return c
}

// params returns the clipping parameters for a dataset of the given
// dimensionality and the requested method, using the paper's k = 2^(d+1).
func (c Config) params(dims int, method core.Method) core.Params {
	return core.Params{K: 1 << uint(dims+1), Tau: c.Tau, Method: method}
}

// treeConfig derives the R-tree configuration the paper's benchmark uses:
// node capacity from the 4 KiB page size and minimum fill at 40 %.
func treeConfig(dims int, v rtree.Variant, universe geom.Rect) rtree.Config {
	max := rtree.MaxEntriesForPage(4096, dims)
	if max < 8 {
		max = 8
	}
	min := max * 2 / 5
	if min < 2 {
		min = 2
	}
	return rtree.Config{
		Dims:       dims,
		MaxEntries: max,
		MinEntries: min,
		Variant:    v,
		Universe:   universe,
	}
}

// Dataset bundles generated objects with their metadata, shared across the
// experiments of one run.
type Dataset struct {
	Spec     datasets.Spec
	Universe geom.Rect
	Items    []rtree.Item
}

// LoadDataset generates (or re-generates) a dataset at the configured scale.
func (c Config) LoadDataset(name string) (*Dataset, error) {
	spec, err := datasets.Lookup(name)
	if err != nil {
		return nil, err
	}
	uni, err := datasets.Universe(name)
	if err != nil {
		return nil, err
	}
	objs, err := datasets.Generate(name, c.Scale, c.Seed)
	if err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{Object: rtree.ObjectID(i), Rect: o}
	}
	return &Dataset{Spec: spec, Universe: uni, Items: items}, nil
}

// BuildTree constructs an R-tree of the given variant over the dataset using
// the construction method the paper uses for it: Hilbert-curve bulk loading
// for the HR-tree, one-by-one insertion for the others. It returns the tree
// and the wall-clock build time.
func BuildTree(ds *Dataset, v rtree.Variant) (*rtree.Tree, time.Duration, error) {
	cfg := treeConfig(ds.Spec.Dims, v, ds.Universe)
	tree, err := rtree.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if v == rtree.Hilbert {
		if err := tree.BulkLoad(ds.Items); err != nil {
			return nil, 0, err
		}
	} else {
		for _, it := range ds.Items {
			if _, err := tree.Insert(it.Rect, it.Object); err != nil {
				return nil, 0, err
			}
		}
	}
	return tree, time.Since(start), nil
}

// BuildTree is the snapshot-caching variant of the package-level BuildTree,
// used by every experiment: with LoadDir set it reopens a previously saved
// snapshot instead of rebuilding (reporting the load time as the build
// time), and with SaveDir set it saves freshly built trees, so the index
// construction cost is paid once across experiment runs.
func (c Config) BuildTree(ds *Dataset, v rtree.Variant) (*rtree.Tree, time.Duration, error) {
	if c.LoadDir != "" {
		if tree, dur, ok := loadCachedTree(c.snapshotPath(c.LoadDir, ds, v), ds, v); ok {
			return tree, dur, nil
		}
	}
	tree, dur, err := BuildTree(ds, v)
	if err != nil {
		return nil, 0, err
	}
	if c.SaveDir != "" {
		if err := saveCachedTree(c.snapshotPath(c.SaveDir, ds, v), tree); err != nil {
			return nil, 0, fmt.Errorf("experiments: saving tree snapshot: %w", err)
		}
	}
	return tree, dur, nil
}

// snapshotPath names a cached tree snapshot so that any configuration
// difference that changes the built tree changes the file name.
func (c Config) snapshotPath(dir string, ds *Dataset, v rtree.Variant) string {
	return filepath.Join(dir, fmt.Sprintf("%s-n%d-seed%d-%s.cbb",
		ds.Spec.Name, len(ds.Items), c.Seed, variantSlug(v)))
}

func variantSlug(v rtree.Variant) string {
	switch v {
	case rtree.Quadratic:
		return "qr"
	case rtree.Hilbert:
		return "hr"
	case rtree.RStar:
		return "rstar"
	case rtree.RRStar:
		return "rrstar"
	default:
		return fmt.Sprintf("v%d", int(v))
	}
}

// loadCachedTree reopens a snapshot and fully materialises the tree,
// verifying that it matches the requested dataset and configuration; ok is
// false (and the caller rebuilds) when the file is missing, corrupt, or a
// configuration mismatch.
func loadCachedTree(path string, ds *Dataset, v rtree.Variant) (*rtree.Tree, time.Duration, bool) {
	start := time.Now()
	snap, fp, err := snapshot.OpenFile(path)
	if err != nil {
		return nil, 0, false
	}
	defer fp.Close()
	want := treeConfig(ds.Spec.Dims, v, ds.Universe)
	m := snap.Meta
	if m.Dims != want.Dims || m.Variant != v || m.MaxEntries != want.MaxEntries ||
		m.MinEntries != want.MinEntries || m.Objects != len(ds.Items) {
		return nil, 0, false
	}
	tree, err := snap.LoadTree(fp)
	if err != nil {
		return nil, 0, false
	}
	return tree, time.Since(start), true
}

// saveCachedTree writes a plain (unclipped) tree snapshot; experiments clip
// the reloaded tree themselves, per method.
func saveCachedTree(path string, tree *rtree.Tree) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	cfg := tree.Config()
	meta := snapshot.Meta{
		Dims:        cfg.Dims,
		Variant:     cfg.Variant,
		MaxEntries:  cfg.MaxEntries,
		MinEntries:  cfg.MinEntries,
		HilbertBits: cfg.HilbertBits,
		Universe:    cfg.Universe,
		ClipMethod:  snapshot.ClipNone,
	}
	return snapshot.WriteFile(path, tree, nil, meta)
}

// BuildTreePartial builds a tree over the first fraction of the dataset
// (used by the update experiment, which batch-loads 90 % and inserts the
// remaining 10 % afterwards).
func BuildTreePartial(ds *Dataset, v rtree.Variant, fraction float64) (*rtree.Tree, []rtree.Item, error) {
	if fraction <= 0 || fraction >= 1 {
		return nil, nil, fmt.Errorf("experiments: fraction must be in (0,1), got %g", fraction)
	}
	cut := int(float64(len(ds.Items)) * fraction)
	if cut < 1 {
		cut = 1
	}
	base := &Dataset{Spec: ds.Spec, Universe: ds.Universe, Items: ds.Items[:cut]}
	tree, _, err := BuildTree(base, v)
	if err != nil {
		return nil, nil, err
	}
	return tree, ds.Items[cut:], nil
}

// ClipTree wraps a tree with a clip index of the given method, timing the
// clip construction.
func (c Config) ClipTree(tree *rtree.Tree, method core.Method) (*clipindex.Index, time.Duration, error) {
	start := time.Now()
	idx, err := clipindex.New(tree, c.params(tree.Dims(), method))
	if err != nil {
		return nil, 0, err
	}
	return idx, time.Since(start), nil
}

// QuerySet generates the three benchmark query profiles for a dataset.
func (c Config) QuerySet(ds *Dataset) (map[querygen.Profile][]geom.Rect, error) {
	rects := make([]geom.Rect, len(ds.Items))
	for i := range ds.Items {
		rects[i] = ds.Items[i].Rect
	}
	gen, err := querygen.New(rects, ds.Universe, c.Seed+1)
	if err != nil {
		return nil, err
	}
	out := make(map[querygen.Profile][]geom.Rect, 3)
	for _, p := range querygen.AllProfiles() {
		out[p] = gen.Queries(p, c.Queries)
	}
	return out, nil
}

// variantNames renders a list of variants for table headers.
func variantNames(vs []rtree.Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}
