package experiments

import (
	"runtime"
	"testing"
)

func TestRunColdFormats(t *testing.T) {
	cfg := Config{Scale: 1500, Queries: 25, Seed: 42, Datasets: []string{"rea02"}}
	res, err := RunColdFormats(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 3
	if runtime.GOOS == "windows" { // no mmap store there
		want = 2
	}
	if len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	v1 := res.Rows[0]
	if v1.Mode != "v1+pager" {
		t.Fatalf("first row is %s, want v1+pager", v1.Mode)
	}
	for _, row := range res.Rows[1:] {
		// RunColdFormats itself errors on a result mismatch; re-check anyway.
		if row.Results != v1.Results {
			t.Fatalf("%s returned %d results, v1 %d", row.Mode, row.Results, v1.Results)
		}
		// The compressed format must be at most half the v1 size — the
		// tentpole's acceptance bar.
		if row.FileBytes*2 > v1.FileBytes {
			t.Errorf("%s file is %d B, more than half of v1's %d B", row.Mode, row.FileBytes, v1.FileBytes)
		}
		// Conservative decode can only ADD node visits, and only marginally
		// (16-bit grid): equal or a hair above v1, never below.
		if row.LeafReads < v1.LeafReads || row.LeafReads > v1.LeafReads+v1.LeafReads/20+1 {
			t.Errorf("%s logical leaf reads %d out of range for v1's %d", row.Mode, row.LeafReads, v1.LeafReads)
		}
	}
	if v1.Results == 0 || v1.Misses == 0 {
		t.Error("cold pass charged no work")
	}
	if res.Table().String() == "" {
		t.Error("empty table rendering")
	}
}

// BenchmarkColdFormats is the CI smoke for the format sweep: -benchtime=1x
// runs one tiny end-to-end pass (build, snapshot, transcode, three cold
// opens) so the v2 and mmap paths cannot silently rot.
func BenchmarkColdFormats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := Config{Scale: 1500, Queries: 10, Seed: 42, Datasets: []string{"rea02"}}
		if _, err := RunColdFormats(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
