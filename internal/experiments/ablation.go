package experiments

import (
	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/metrics"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
)

// This file contains ablation studies that go beyond the paper's figures but
// directly probe the design choices Section IV calls out:
//
//   - the τ threshold sweep the paper mentions but omits for space
//     ("we lack space to also vary τ");
//   - the additive score approximation of Figure 5, quantified by comparing
//     approximate and exact clipped volumes per node;
//   - the contribution of ordering clip points by score (the paper sorts
//     them so the most effective test runs first).

// TauRow is one point of the τ sweep: storage cost and query I/O of a
// stairline-clipped RR*-tree at a given threshold.
type TauRow struct {
	Dataset        string
	Tau            float64
	AvgClipPoints  float64
	ClipTableBytes int
	ClippedShare   float64 // share of dead space removed
	RelativeLeafIO float64 // clipped / unclipped leaf accesses on QR1
}

// TauSweepResult is the τ ablation.
type TauSweepResult struct {
	Rows []TauRow
}

// RunTauSweep varies the clip-point threshold τ and reports the trade-off
// between clip-table size and query I/O on the configured datasets
// (RR*-tree, stairline clipping, QR1 queries).
func RunTauSweep(cfg Config, taus []float64) (*TauSweepResult, error) {
	cfg = cfg.WithDefaults()
	if len(taus) == 0 {
		taus = []float64{0, 0.01, 0.025, 0.05, 0.1, 0.2}
	}
	out := &TauSweepResult{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		qs := queries[querygen.QR1]
		tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		unclipped := metrics.QueryIO(tree.Counter(), qs, func(q geom.Rect) {
			tree.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
		}).LeafReads
		for _, tau := range taus {
			params := core.Params{K: 1 << uint(ds.Spec.Dims+1), Tau: tau, Method: core.MethodStairline}
			idx, err := clipindex.New(tree, params)
			if err != nil {
				return nil, err
			}
			cs := metrics.ClippedDeadSpace(idx, cfg.SamplesPerNode, cfg.Seed+6)
			clipped := metrics.QueryIO(tree.Counter(), qs, func(q geom.Rect) {
				idx.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
			}).LeafReads
			out.Rows = append(out.Rows, TauRow{
				Dataset:        name,
				Tau:            tau,
				AvgClipPoints:  idx.Table().AvgClipPointsPerNode(),
				ClipTableBytes: idx.AuxBytes(),
				ClippedShare:   cs.ClippedShareOfDead,
				RelativeLeafIO: relative(clipped, unclipped),
			})
		}
	}
	return out, nil
}

// Table renders the τ sweep.
func (r *TauSweepResult) Table() *Table {
	t := NewTable("Ablation: clip-point threshold τ (CSTA, RR*-tree, QR1 queries)",
		"dataset", "tau", "avg clips/node", "clip bytes", "dead space clipped", "relative leaf IO")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Tau, row.AvgClipPoints, row.ClipTableBytes,
			Pct(row.ClippedShare), Pct(row.RelativeLeafIO))
	}
	return t
}

// ScoreApproxRow quantifies the Figure 5 approximation for one dataset: how
// far the additive score is from the exact union of clipped regions, and
// whether the approximation changes which clip points get selected.
type ScoreApproxRow struct {
	Dataset string
	Variant string
	// MeanRelativeError is mean(|approx − exact| / exact) over clipped nodes.
	MeanRelativeError float64
	// Nodes is the number of clipped nodes measured.
	Nodes int
}

// ScoreApproxResult is the score-approximation ablation.
type ScoreApproxResult struct {
	Rows []ScoreApproxRow
}

// RunScoreApprox measures the error of the additive score approximation on
// the configured datasets and variants (stairline clipping).
func RunScoreApprox(cfg Config) (*ScoreApproxResult, error) {
	cfg = cfg.WithDefaults()
	out := &ScoreApproxResult{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		for _, v := range cfg.Variants {
			tree, _, err := cfg.BuildTree(ds, v)
			if err != nil {
				return nil, err
			}
			idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
			if err != nil {
				return nil, err
			}
			var relErr float64
			nodes := 0
			for id, clips := range idx.Table() {
				info, err := tree.Node(id)
				if err != nil || len(clips) == 0 {
					continue
				}
				exact := core.ClippedVolume(info.MBB, clips)
				if exact <= 0 {
					continue
				}
				approx := core.ApproxClippedVolume(clips)
				diff := approx - exact
				if diff < 0 {
					diff = -diff
				}
				relErr += diff / exact
				nodes++
			}
			row := ScoreApproxRow{Dataset: name, Variant: v.String(), Nodes: nodes}
			if nodes > 0 {
				row.MeanRelativeError = relErr / float64(nodes)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Table renders the score-approximation ablation.
func (r *ScoreApproxResult) Table() *Table {
	t := NewTable("Ablation: additive score approximation error (Figure 5 assumptions)",
		"dataset", "variant", "clipped nodes", "mean relative error")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Variant, row.Nodes, Pct(row.MeanRelativeError))
	}
	return t
}

// OrderingRow compares score-ordered clip points against a deliberately
// reversed ordering: the result sets are identical, but the number of
// dominance tests executed per pruned node differs.
type OrderingRow struct {
	Dataset string
	// OrderedChecks and ReversedChecks count clip-point dominance tests per
	// query batch under the two orderings.
	OrderedChecks  int64
	ReversedChecks int64
}

// OrderingResult is the clip-point-ordering ablation.
type OrderingResult struct {
	Rows []OrderingRow
}

// RunOrderingAblation measures how many clip-point comparisons Algorithm 2
// performs when clip points are tested best-first (as the paper prescribes)
// versus worst-first, on QR1 queries over a stairline-clipped RR*-tree.
func RunOrderingAblation(cfg Config) (*OrderingResult, error) {
	cfg = cfg.WithDefaults()
	out := &OrderingResult{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		qs := queries[querygen.QR1]
		tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
		if err != nil {
			return nil, err
		}
		ordered := countClipChecks(tree, idx.Table(), qs, false)
		reversed := countClipChecks(tree, idx.Table(), qs, true)
		out.Rows = append(out.Rows, OrderingRow{Dataset: name, OrderedChecks: ordered, ReversedChecks: reversed})
	}
	return out, nil
}

// countClipChecks replays the clipped descent counting how many clip-point
// dominance tests run until a verdict per candidate child, with the clip
// list optionally reversed.
func countClipChecks(tree *rtree.Tree, table clipindex.Table, queries []geom.Rect, reversed bool) int64 {
	var checks int64
	clipsFor := func(id rtree.NodeID) []core.ClipPoint {
		clips := table[id]
		if !reversed || len(clips) < 2 {
			return clips
		}
		rev := make([]core.ClipPoint, len(clips))
		for i := range clips {
			rev[i] = clips[len(clips)-1-i]
		}
		return rev
	}
	for _, q := range queries {
		tree.SearchFiltered(q, func(child rtree.NodeID, childMBB geom.Rect) bool {
			clips := clipsFor(child)
			if len(clips) == 0 {
				return true
			}
			// Count how many clip points are examined until one prunes (or
			// all pass), mirroring Algorithm 2's early exit.
			pruned := false
			for i := range clips {
				checks++
				if !core.Intersects(childMBB, clips[i:i+1], q, core.SelectorQuery) {
					pruned = true
					break
				}
			}
			return !pruned
		}, func(rtree.ObjectID, geom.Rect) bool { return true })
	}
	return checks
}

// Table renders the ordering ablation.
func (r *OrderingResult) Table() *Table {
	t := NewTable("Ablation: clip-point ordering (dominance tests per QR1 batch)",
		"dataset", "score-ordered", "reversed", "saved")
	for _, row := range r.Rows {
		saved := 0.0
		if row.ReversedChecks > 0 {
			saved = 1 - float64(row.OrderedChecks)/float64(row.ReversedChecks)
		}
		t.AddRow(row.Dataset, row.OrderedChecks, row.ReversedChecks, Pct(saved))
	}
	return t
}
