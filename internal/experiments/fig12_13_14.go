package experiments

import (
	"time"

	"cbb/internal/core"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Fig12Row is one bar of Figure 12: the expected number of clip-table
// recomputations per insertion, decomposed by cause, for one
// (dataset, variant) pair.
type Fig12Row struct {
	Dataset          string
	Variant          string
	Inserts          int
	ReclipsPerInsert float64
	// Per-insert contributions of the three causes (they sum to
	// ReclipsPerInsert).
	SplitsPerInsert  float64
	MBBPerInsert     float64
	CBBOnlyPerInsert float64
	AvoidedPerInsert float64
}

// Fig12Result reproduces Figure 12 (update cost).
type Fig12Result struct {
	Rows []Fig12Row
}

// RunFig12 bulk-builds each clipped tree on 90 % of the data and then
// inserts the remaining 10 % through the clipped index, recording how many
// re-clips each insertion caused and why.
func RunFig12(cfg Config) (*Fig12Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig12Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		for _, v := range cfg.Variants {
			tree, rest, err := BuildTreePartial(ds, v, 0.9)
			if err != nil {
				return nil, err
			}
			idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
			if err != nil {
				return nil, err
			}
			idx.ResetStats()
			for _, it := range rest {
				if _, err := idx.Insert(it.Rect, it.Object); err != nil {
					return nil, err
				}
			}
			s := idx.Stats()
			n := float64(s.Inserts)
			if n == 0 {
				n = 1
			}
			out.Rows = append(out.Rows, Fig12Row{
				Dataset:          name,
				Variant:          v.String(),
				Inserts:          s.Inserts,
				ReclipsPerInsert: s.ReclipsPerInsert(),
				SplitsPerInsert:  float64(s.ReclipsBySplit) / n,
				MBBPerInsert:     float64(s.ReclipsByMBB) / n,
				CBBOnlyPerInsert: float64(s.ReclipsByCBB) / n,
				AvoidedPerInsert: float64(s.AvoidedReclips) / n,
			})
		}
	}
	return out, nil
}

// Table renders Figure 12.
func (r *Fig12Result) Table() *Table {
	t := NewTable("Figure 12: expected number of re-clipped CBBs per insertion (CSTA)",
		"dataset", "variant", "reclips/insert", "splits", "MBB changes", "CBB-only", "avoided checks")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Variant, row.ReclipsPerInsert,
			row.SplitsPerInsert, row.MBBPerInsert, row.CBBOnlyPerInsert, row.AvoidedPerInsert)
	}
	return t
}

// Fig13Row is one bar of Figure 13: the storage breakdown of a clipped
// RR*-tree for one dataset and clipping method.
type Fig13Row struct {
	Dataset       string
	Method        string
	DirBytes      int
	LeafBytes     int
	ClipBytes     int
	ClipShare     float64 // clip bytes / total bytes
	AvgClipPoints float64
}

// Fig13Result reproduces Figure 13 (storage overhead).
type Fig13Result struct {
	Rows []Fig13Row
}

// RunFig13 serialises the clipped RR*-tree of every dataset onto a pager and
// decomposes the bytes into directory nodes, leaf nodes, and clip points.
func RunFig13(cfg Config) (*Fig13Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig13Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		for _, method := range []core.Method{core.MethodSkyline, core.MethodStairline} {
			idx, _, err := cfg.ClipTree(tree, method)
			if err != nil {
				return nil, err
			}
			pager := storage.NewPager(storage.DefaultPageSize)
			if _, _, err := tree.Save(pager); err != nil {
				return nil, err
			}
			if _, err := idx.SaveAux(pager); err != nil {
				return nil, err
			}
			usage := pager.Usage()
			total := usage.TotalBytes
			clipShare := 0.0
			if total > 0 {
				clipShare = float64(usage.Bytes[storage.KindAux]) / float64(total)
			}
			out.Rows = append(out.Rows, Fig13Row{
				Dataset:       name,
				Method:        method.String(),
				DirBytes:      usage.Bytes[storage.KindDirectory],
				LeafBytes:     usage.Bytes[storage.KindLeaf],
				ClipBytes:     usage.Bytes[storage.KindAux],
				ClipShare:     clipShare,
				AvgClipPoints: idx.Table().AvgClipPointsPerNode(),
			})
		}
	}
	return out, nil
}

// Table renders Figure 13.
func (r *Fig13Result) Table() *Table {
	t := NewTable("Figure 13: storage breakdown of clipped RR*-trees",
		"dataset", "method", "dir bytes", "leaf bytes", "clip bytes", "clip share", "avg clips/node")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Method, row.DirBytes, row.LeafBytes, row.ClipBytes,
			Pct(row.ClipShare), row.AvgClipPoints)
	}
	return t
}

// Fig14Row is one bar of Figure 14: build time of a variant relative to the
// unclipped RR*-tree, with the CBB-computation share for the clipped bars.
type Fig14Row struct {
	Dataset       string
	Label         string
	BuildTime     time.Duration
	ClipTime      time.Duration
	RelativeToRR  float64 // (build+clip) / unclipped RR*-tree build
	ClipShareOfIt float64 // clip / (build+clip)
}

// Fig14Result reproduces Figure 14 (construction overhead).
type Fig14Result struct {
	Rows []Fig14Row
}

// RunFig14 measures wall-clock build time of the HR-tree, R*-tree, and
// CSKY-/CSTA-clipped RR*-trees relative to the plain RR*-tree.
func RunFig14(cfg Config) (*Fig14Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig14Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		// This experiment measures construction cost, so it must always
		// build from scratch: the snapshot cache (cbbench -load) would
		// silently replace build times with near-constant load times and
		// collapse the relative columns.
		rrTree, rrTime, err := BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		base := rrTime.Seconds()
		if base <= 0 {
			base = 1e-9
		}
		_, hrTime, err := BuildTree(ds, rtree.Hilbert)
		if err != nil {
			return nil, err
		}
		_, rstarTime, err := BuildTree(ds, rtree.RStar)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows,
			Fig14Row{Dataset: name, Label: "HR-tree", BuildTime: hrTime, RelativeToRR: hrTime.Seconds() / base},
			Fig14Row{Dataset: name, Label: "R*-tree", BuildTime: rstarTime, RelativeToRR: rstarTime.Seconds() / base},
		)
		for _, method := range []core.Method{core.MethodSkyline, core.MethodStairline} {
			_, clipTime, err := cfg.ClipTree(rrTree, method)
			if err != nil {
				return nil, err
			}
			total := rrTime + clipTime
			label := "CSKY-RR*-tree"
			if method == core.MethodStairline {
				label = "CSTA-RR*-tree"
			}
			out.Rows = append(out.Rows, Fig14Row{
				Dataset:       name,
				Label:         label,
				BuildTime:     rrTime,
				ClipTime:      clipTime,
				RelativeToRR:  total.Seconds() / base,
				ClipShareOfIt: clipTime.Seconds() / total.Seconds(),
			})
		}
	}
	return out, nil
}

// Table renders Figure 14.
func (r *Fig14Result) Table() *Table {
	t := NewTable("Figure 14: index building and CBB computation overhead (relative to unclipped RR*-tree)",
		"dataset", "index", "build", "clip", "relative", "clip share")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Label,
			row.BuildTime.Round(time.Millisecond).String(),
			row.ClipTime.Round(time.Millisecond).String(),
			Pct(row.RelativeToRR), Pct(row.ClipShareOfIt))
	}
	return t
}
