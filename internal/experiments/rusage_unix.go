//go:build unix

package experiments

import "syscall"

// minorFaults reports the process's cumulative minor page-fault count — the
// metric that distinguishes mmap reads (which fault mapped pages in) from
// pager reads (which copy into pool buffers). Returns -1 when rusage fails.
func minorFaults() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return -1
	}
	return int64(ru.Minflt)
}
