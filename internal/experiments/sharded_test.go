package experiments

import (
	"strings"
	"testing"
)

func TestRunSharded(t *testing.T) {
	res, err := RunSharded(tinyConfig(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IngestRows) != 4 {
		t.Fatalf("expected 4 ingest rows, got %d", len(res.IngestRows))
	}
	for _, row := range res.IngestRows {
		if row.Items != 2500 || row.ItemsSec <= 0 || row.Speedup <= 0 {
			t.Fatalf("degenerate ingest row: %+v", row)
		}
	}
	if res.IngestRows[0].Shards != 1 || res.IngestRows[0].Writers != 1 {
		t.Fatalf("first row must be the single-tree baseline, got %+v", res.IngestRows[0])
	}
	if len(res.SkewRows) != 2 {
		t.Fatalf("expected 2 skew rows, got %d", len(res.SkewRows))
	}
	off, on := res.SkewRows[0], res.SkewRows[1]
	if off.SplitAbove != 0 || off.Splits != 0 || off.FinalShards != off.StartShards {
		t.Fatalf("splits-off run should not rebalance: %+v", off)
	}
	if on.SplitAbove <= 0 || on.Splits == 0 {
		t.Fatalf("splits-on run over the zipf workload should split at least once: %+v", on)
	}
	if on.FinalShards <= off.FinalShards {
		t.Fatalf("auto-splitting should increase the shard count: %d vs %d", on.FinalShards, off.FinalShards)
	}
	// The rebalanced layout must be less imbalanced than the static one.
	if on.MaxLen >= off.MaxLen {
		t.Errorf("rebalancing should cap the hottest shard: max %d (on) vs %d (off)", on.MaxLen, off.MaxLen)
	}
	if on.MaxLen > on.SplitAbove {
		t.Errorf("a shard still exceeds the split threshold after ingest: %d > %d", on.MaxLen, on.SplitAbove)
	}
	for _, tbl := range res.Tables() {
		s := tbl.String()
		if !strings.Contains(s, "hot02") {
			t.Errorf("table should mention the dataset:\n%s", s)
		}
	}
}
