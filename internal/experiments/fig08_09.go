package experiments

import (
	"fmt"
	"math/rand"

	"cbb/internal/bounding"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

// boundingMethods builds the eight bounding shapes of Figures 8 and 9 for a
// set of 2d objects.
func boundingMethods(objects []geom.Rect, tau float64) []bounding.Shape {
	return []bounding.Shape{
		bounding.NewMBC(objects),
		bounding.NewMBB(objects),
		bounding.NewRotatedMBB(objects),
		bounding.NewKCornerPolygon(objects, 4),
		bounding.NewKCornerPolygon(objects, 5),
		bounding.NewConvexHull(objects),
		bounding.NewCBBShape(objects, core.Params{K: 8, Tau: tau, Method: core.MethodSkyline}),
		bounding.NewCBBShape(objects, core.Params{K: 8, Tau: tau, Method: core.MethodStairline}),
	}
}

// Fig08Result reproduces Figure 8: dead space of each bounding method on the
// two leaf nodes of the running example.
type Fig08Result struct {
	// DeadSpace[leaf][method] is the dead-space fraction.
	Leaves []map[string]float64
}

// RunFig08 evaluates the eight bounding shapes on the running example's two
// leaf nodes (Figure 3a): the bottom node {o1..o5} and the top node
// {o6, o7}.
func RunFig08(cfg Config) (*Fig08Result, error) {
	cfg = cfg.WithDefaults()
	bottom := []geom.Rect{
		geom.R(0, 4, 3, 10), geom.R(1, 0, 2, 4), geom.R(4, 0, 5, 3),
		geom.R(6, 0, 9, 4), geom.R(8, 2, 10, 3),
	}
	top := []geom.Rect{
		geom.R(11, 6, 14, 12), geom.R(13, 2, 17, 8),
	}
	out := &Fig08Result{}
	for _, objs := range [][]geom.Rect{bottom, top} {
		row := make(map[string]float64)
		for _, s := range boundingMethods(objs, 0) {
			row[s.Name()] = bounding.DeadSpaceFraction(s, objs, 20000, cfg.Seed)
		}
		out.Leaves = append(out.Leaves, row)
	}
	return out, nil
}

// Table renders Figure 8 as one row per leaf node.
func (r *Fig08Result) Table() *Table {
	order := []string{"MBC", "MBB", "RMBB", "4-C", "5-C", "CH", "CBBSKY", "CBBSTA"}
	cols := append([]string{"leaf"}, order...)
	t := NewTable("Figure 8: dead space of bounding methods on the running example", cols...)
	for i, leaf := range r.Leaves {
		row := make([]interface{}, 0, len(cols))
		row = append(row, fmt.Sprintf("node %d", i+1))
		for _, m := range order {
			row = append(row, Pct(leaf[m]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig09Row is one (dataset, method) pair of Figure 9: average dead space and
// average representation cost over RR*-tree leaf nodes.
type Fig09Row struct {
	Dataset   string
	Method    string
	DeadSpace float64
	Points    float64
}

// Fig09Result reproduces Figure 9 (bounding-method comparison on real
// trees). Restricted to 2d datasets, as in the paper.
type Fig09Result struct {
	Rows []Fig09Row
}

// RunFig09 builds an RR*-tree per 2d dataset, replaces each sampled leaf
// node's MBB by each alternative bounding shape, and reports the average
// dead space and point count per shape.
func RunFig09(cfg Config) (*Fig09Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig09Result{}
	maxNodes := 200 // sample cap per dataset keeps the experiment fast
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		if ds.Spec.Dims != 2 {
			continue
		}
		tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		// Collect leaf nodes and sample a subset deterministically.
		var leaves [][]geom.Rect
		tree.Walk(func(info rtree.NodeInfo) {
			if !info.Leaf || len(info.Children) < 2 {
				return
			}
			rects := make([]geom.Rect, len(info.Children))
			for i := range info.Children {
				rects[i] = info.Children[i].Rect
			}
			leaves = append(leaves, rects)
		})
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })
		if len(leaves) > maxNodes {
			leaves = leaves[:maxNodes]
		}
		sums := make(map[string]*Fig09Row)
		for _, objs := range leaves {
			for _, s := range boundingMethods(objs, cfg.Tau) {
				row, ok := sums[s.Name()]
				if !ok {
					row = &Fig09Row{Dataset: name, Method: s.Name()}
					sums[s.Name()] = row
				}
				row.DeadSpace += bounding.DeadSpaceFraction(s, objs, 2048, cfg.Seed)
				row.Points += float64(s.PointCount())
			}
		}
		order := []string{"MBC", "MBB", "RMBB", "4-C", "5-C", "CH", "CBBSKY", "CBBSTA"}
		for _, m := range order {
			row, ok := sums[m]
			if !ok {
				continue
			}
			n := float64(len(leaves))
			out.Rows = append(out.Rows, Fig09Row{
				Dataset: name, Method: m,
				DeadSpace: row.DeadSpace / n,
				Points:    row.Points / n,
			})
		}
	}
	return out, nil
}

// Table renders Figure 9 with one row per (dataset, method).
func (r *Fig09Result) Table() *Table {
	t := NewTable("Figure 9: bounding methods on RR*-tree leaf nodes (2d datasets)",
		"dataset", "method", "avg dead space", "avg #points")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Method, Pct(row.DeadSpace), row.Points)
	}
	return t
}
