package experiments

import (
	"cbb/internal/metrics"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
)

// Fig01Row is one (dataset, variant) cell of Figures 1a and 1b: node overlap
// and dead space of an unclipped R-tree.
type Fig01Row struct {
	Dataset      string
	Variant      string
	AvgOverlap   float64 // Figure 1a
	AvgDeadSpace float64 // Figure 1b
}

// Fig01Optimality is one (dataset, profile) cell of Figure 1c: the share of
// accessed leaves that contained at least one result, for the RR*-tree.
type Fig01Optimality struct {
	Dataset string
	Profile string
	Ratio   float64
}

// Fig01Result reproduces Figure 1 (the motivation experiment).
type Fig01Result struct {
	Rows       []Fig01Row
	Optimality []Fig01Optimality
}

// RunFig01 measures overlap, dead space, and I/O optimality on the
// configured datasets and variants. The paper uses rea02 and axo03; pass
// cfg.Datasets to restrict.
func RunFig01(cfg Config) (*Fig01Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig01Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		for _, v := range cfg.Variants {
			tree, _, err := cfg.BuildTree(ds, v)
			if err != nil {
				return nil, err
			}
			stats := metrics.TreeNodeStats(tree, cfg.SamplesPerNode, cfg.Seed+2)
			out.Rows = append(out.Rows, Fig01Row{
				Dataset:      name,
				Variant:      v.String(),
				AvgOverlap:   stats.AvgOverlap,
				AvgDeadSpace: stats.AvgDeadSpace,
			})
			// Figure 1c is reported for the state-of-the-art RR*-tree only.
			if v == rtree.RRStar {
				for _, p := range querygen.AllProfiles() {
					opt := metrics.MeasureIOOptimality(tree, queries[p])
					out.Optimality = append(out.Optimality, Fig01Optimality{
						Dataset: name, Profile: p.String(), Ratio: opt.Ratio(),
					})
				}
			}
		}
	}
	return out, nil
}

// Tables renders the result in the layout of Figure 1.
func (r *Fig01Result) Tables() []*Table {
	t1 := NewTable("Figure 1a/1b: average overlap and dead space per node (unclipped)",
		"dataset", "variant", "overlap", "dead space")
	for _, row := range r.Rows {
		t1.AddRow(row.Dataset, row.Variant, Pct(row.AvgOverlap), Pct(row.AvgDeadSpace))
	}
	t2 := NewTable("Figure 1c: optimal/actual leaf accesses on the RR*-tree",
		"dataset", "profile", "useful leaf accesses")
	for _, o := range r.Optimality {
		t2.AddRow(o.Dataset, o.Profile, Pct(o.Ratio))
	}
	return []*Table{t1, t2}
}
