package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/datasets"
	"cbb/internal/geom"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

// This experiment extends the cold-start study to the storage formats: the
// same clipped RR*-tree is served from a v1 snapshot through the pread-based
// pager, from a compressed v2 snapshot through the same pager, and from the
// v2 snapshot through a read-only memory mapping. Every configuration gets
// the same buffer-pool BYTE budget (a fraction of the v1 file size), so a
// smaller format holds more nodes resident in the same memory — exactly the
// beyond-RAM trade the compressed pages exist for. Reported per row: the
// file size, the cold query I/O (pool misses, physical page reads, minor
// page faults), and the warm re-run latency once the working set is cached.

// ColdFormatRow is one (dataset, format/store) measurement.
type ColdFormatRow struct {
	Dataset     string
	Mode        string  // "v1+pager", "v2+pager", "v2+mmap"
	FileBytes   int64   // snapshot file size
	BytesPerObj float64 // FileBytes / objects
	Results     int     // total query results (identical across modes)
	LeafReads   int64   // logical leaf accesses
	DirReads    int64   // logical directory accesses
	Hits        int64   // buffer-pool hits (cold pass)
	Misses      int64   // buffer-pool misses (cold pass)
	DiskReads   int64   // pages physically read from the store (cold pass)
	MinorFaults int64   // minor page faults during the cold pass (-1 if unavailable)
	WarmNsPerQ  float64 // ns per query once the working set is resident
}

// ColdFormatResult is the outcome of RunColdFormats.
type ColdFormatResult struct {
	Scale     int
	Queries   int
	PoolBytes int64 // the shared buffer-pool byte budget of the last dataset
	Rows      []ColdFormatRow
}

// coldFormatPoolFraction is the buffer-pool byte budget as a fraction of the
// v1 snapshot file size — small enough that the cold pass cannot keep the
// whole v1 tree resident, so a denser format shows up as a higher hit rate.
const coldFormatPoolFraction = 0.25

// coldFormatChunk is the generator chunk size: datasets are streamed into
// the build in chunks so generation never holds the full object slice, and
// the first chunk doubles as the sample the query generator works from.
const coldFormatChunk = 1 << 16

// RunColdFormats builds one clipped RR*-tree per dataset (streaming the
// generator), writes it as a v1 snapshot, transcodes that to v2, and then
// reopens the files cold under each store: v1 and v2 through the buffer-pool
// pager, v2 through mmap. All three serve bit-identical results; the rows
// quantify what the compressed format buys in file size and cold I/O.
func RunColdFormats(cfg Config) (*ColdFormatResult, error) {
	cfg = cfg.WithDefaults()
	dir, err := os.MkdirTemp("", "cbb-coldformats-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &ColdFormatResult{Scale: cfg.Scale, Queries: cfg.Queries}
	for _, name := range cfg.Datasets {
		spec, err := datasets.Lookup(name)
		if err != nil {
			return nil, err
		}
		uni, err := datasets.Universe(name)
		if err != nil {
			return nil, err
		}

		// Stream the generator into the build: only one chunk of objects is
		// ever materialised. The first chunk is kept as the sample the query
		// generator draws selectivity targets from.
		tree, err := rtree.New(treeConfig(spec.Dims, rtree.RRStar, uni))
		if err != nil {
			return nil, err
		}
		var sample []geom.Rect
		next := rtree.ObjectID(0)
		err = datasets.GenerateStream(name, cfg.Scale, cfg.Seed, coldFormatChunk, func(chunk []geom.Rect) error {
			if sample == nil {
				sample = append([]geom.Rect(nil), chunk...)
			}
			for _, r := range chunk {
				if _, err := tree.Insert(r, next); err != nil {
					return err
				}
				next++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
		if err != nil {
			return nil, err
		}
		params := cfg.params(spec.Dims, core.MethodStairline)
		treeCfg := tree.Config()
		meta := snapshot.Meta{
			Dims:          treeCfg.Dims,
			Variant:       treeCfg.Variant,
			MaxEntries:    treeCfg.MaxEntries,
			MinEntries:    treeCfg.MinEntries,
			HilbertBits:   treeCfg.HilbertBits,
			Universe:      treeCfg.Universe,
			ClipMethod:    snapshot.ClipStairline,
			MaxClipPoints: params.K,
			ClipTau:       params.Tau,
		}
		v1Path := filepath.Join(dir, name+"-v1.cbb")
		if err := snapshot.WriteFile(v1Path, tree, idx.Table(), meta); err != nil {
			return nil, err
		}
		v2Path := filepath.Join(dir, name+"-v2.cbb")
		if err := snapshot.Transcode(v1Path, v2Path, snapshot.FormatV2); err != nil {
			return nil, err
		}

		gen, err := querygen.New(sample, uni, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		batch := gen.Queries(querygen.QR1, cfg.Queries)
		objects := tree.Len()
		tree, idx = nil, nil // free the in-memory build before measuring

		v1Info, err := os.Stat(v1Path)
		if err != nil {
			return nil, err
		}
		budget := int64(coldFormatPoolFraction * float64(v1Info.Size()))
		if budget < 1 {
			budget = 1
		}
		res.PoolBytes = budget

		want := -1
		for _, mode := range []string{"v1+pager", "v2+pager", "v2+mmap"} {
			path := v2Path
			if mode == "v1+pager" {
				path = v1Path
			}
			row, err := coldFormatRun(path, mode, batch, budget)
			if errors.Is(err, storage.ErrMmapUnsupported) {
				continue // non-unix build: the pager rows stand alone
			}
			if err != nil {
				return nil, fmt.Errorf("cold format %s on %s: %w", mode, name, err)
			}
			if want < 0 {
				want = row.Results
			} else if row.Results != want {
				return nil, fmt.Errorf("%s on %s returned %d results, v1 returned %d", mode, name, row.Results, want)
			}
			row.Dataset = name
			row.BytesPerObj = float64(row.FileBytes) / float64(objects)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// coldFormatRun opens one snapshot cold under the requested store, runs the
// clipped query batch against the on-disk pages, and then re-runs it warm.
func coldFormatRun(path, mode string, batch []geom.Rect, poolBytes int64) (ColdFormatRow, error) {
	var (
		store storage.PageStore
		snap  *snapshot.Snapshot
		err   error
	)
	if mode == "v2+mmap" {
		ms, merr := storage.OpenMmapStore(path)
		if merr != nil {
			return ColdFormatRow{}, merr
		}
		store = ms
		snap, err = snapshot.Read(ms)
	} else {
		var fp *storage.FilePager
		snap, fp, err = snapshot.OpenFileReadOnly(path)
		if fp != nil {
			store = fp
		}
	}
	if err != nil {
		if store != nil {
			store.(interface{ Close() error }).Close()
		}
		return ColdFormatRow{}, err
	}
	defer store.(interface{ Close() error }).Close()

	tree, err := snap.OpenTree(store, true)
	if err != nil {
		return ColdFormatRow{}, err
	}
	// Byte-budget pool: every mode gets the same resident-byte allowance, so
	// denser pages directly become a higher hit rate. Unsharded for an exact
	// LRU — the run is strictly sequential.
	tree.SetBufferPool(storage.NewUnshardedBufferPoolBytes(poolBytes))
	params, ok := snap.Meta.ClipParams()
	if !ok {
		return ColdFormatRow{}, fmt.Errorf("snapshot %s has no clip table", path)
	}
	idx, err := clipindex.Restore(tree, params, snap.Table)
	if err != nil {
		return ColdFormatRow{}, err
	}

	results := 0
	visit := func(rtree.ObjectID, geom.Rect) bool { results++; return true }
	faultsBefore := minorFaults()
	for _, q := range batch {
		idx.Search(q, visit)
	}
	faults := minorFaults()
	if faultsBefore >= 0 && faults >= 0 {
		faults -= faultsBefore
	}
	if err := tree.Err(); err != nil {
		return ColdFormatRow{}, err
	}
	io := tree.Counter().Snapshot()
	hits, misses := tree.BufferPool().Stats()
	reads, _ := store.(interface{ DiskStats() (int64, int64) }).DiskStats()

	// Warm pass: the working set (bounded by the pool budget) is resident;
	// time the same batch again.
	start := time.Now()
	for _, q := range batch {
		idx.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
	}
	warm := time.Since(start)
	if err := tree.Err(); err != nil {
		return ColdFormatRow{}, err
	}

	fi, err := os.Stat(path)
	if err != nil {
		return ColdFormatRow{}, err
	}
	return ColdFormatRow{
		Mode:        mode,
		FileBytes:   fi.Size(),
		Results:     results,
		LeafReads:   io.LeafReads,
		DirReads:    io.DirReads,
		Hits:        hits,
		Misses:      misses,
		DiskReads:   reads,
		MinorFaults: faults,
		WarmNsPerQ:  float64(warm.Nanoseconds()) / float64(len(batch)),
	}, nil
}

// Table renders the format sweep with the three stores side by side.
func (r *ColdFormatResult) Table() *Table {
	t := NewTable(
		fmt.Sprintf("Cold-start storage formats (RR*-tree + CSTA, %d objects, %d QR1 queries, %d B pool budget)", r.Scale, r.Queries, r.PoolBytes),
		"dataset", "store", "file B", "B/obj", "results", "leaf", "pool miss", "hit rate", "disk reads", "minflt", "warm ns/q",
	)
	for _, row := range r.Rows {
		total := row.Hits + row.Misses
		hitRate := 0.0
		if total > 0 {
			hitRate = float64(row.Hits) / float64(total)
		}
		t.AddRow(row.Dataset, row.Mode, row.FileBytes, fmt.Sprintf("%.1f", row.BytesPerObj),
			row.Results, row.LeafReads, row.Misses, Pct(hitRate), row.DiskReads,
			row.MinorFaults, fmt.Sprintf("%.0f", row.WarmNsPerQ))
	}
	t.AddNote("every store gets the same buffer-pool byte budget (25%% of the v1 file); results are bit-identical across rows of a dataset")
	t.AddNote("minflt counts process-wide minor page faults during the cold pass (-1 where rusage is unavailable); mmap faults pages instead of copying them through the pool")
	return t
}
