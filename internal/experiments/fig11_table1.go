package experiments

import (
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/metrics"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
)

// Fig11Row is one bar of Figure 11: relative leaf accesses of a clipped
// R-tree versus its unclipped counterpart, for one (dataset, variant,
// profile, method) combination.
type Fig11Row struct {
	Dataset         string
	Variant         string
	Profile         string
	Method          string
	UnclippedLeafIO int64
	ClippedLeafIO   int64
	// Relative is clipped / unclipped (the y-axis of Figure 11; 1.0 = no
	// gain, lower is better).
	Relative float64
}

// Fig11Result reproduces Figure 11 (range-query I/O) for both clipping
// methods; the figure shows CSTA, and Table I aggregates both.
type Fig11Result struct {
	Rows []Fig11Row
}

// RunFig11 builds every (dataset, variant) pair once, generates the three
// query profiles, and measures leaf accesses of the unclipped tree and both
// clipped variants on identical query batches.
func RunFig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig11Result{}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		for _, v := range cfg.Variants {
			tree, _, err := cfg.BuildTree(ds, v)
			if err != nil {
				return nil, err
			}
			idxSky, _, err := cfg.ClipTree(tree, core.MethodSkyline)
			if err != nil {
				return nil, err
			}
			idxSta, _, err := cfg.ClipTree(tree, core.MethodStairline)
			if err != nil {
				return nil, err
			}
			for _, p := range querygen.AllProfiles() {
				qs := queries[p]
				unclipped := metrics.QueryIO(tree.Counter(), qs, func(q geom.Rect) {
					tree.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
				}).LeafReads
				sky := metrics.QueryIO(tree.Counter(), qs, func(q geom.Rect) {
					idxSky.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
				}).LeafReads
				sta := metrics.QueryIO(tree.Counter(), qs, func(q geom.Rect) {
					idxSta.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
				}).LeafReads
				out.Rows = append(out.Rows,
					Fig11Row{Dataset: name, Variant: v.String(), Profile: p.String(),
						Method: core.MethodSkyline.String(), UnclippedLeafIO: unclipped,
						ClippedLeafIO: sky, Relative: relative(sky, unclipped)},
					Fig11Row{Dataset: name, Variant: v.String(), Profile: p.String(),
						Method: core.MethodStairline.String(), UnclippedLeafIO: unclipped,
						ClippedLeafIO: sta, Relative: relative(sta, unclipped)},
				)
			}
		}
	}
	return out, nil
}

func relative(clipped, unclipped int64) float64 {
	if unclipped == 0 {
		return 1
	}
	return float64(clipped) / float64(unclipped)
}

// Table renders Figure 11 (CSTA rows, as in the paper's figure).
func (r *Fig11Result) Table() *Table {
	t := NewTable("Figure 11: leaf accesses of clipped R-trees relative to unclipped (CSTA)",
		"dataset", "variant", "profile", "unclipped", "clipped", "relative")
	for _, row := range r.Rows {
		if row.Method != core.MethodStairline.String() {
			continue
		}
		t.AddRow(row.Dataset, row.Variant, row.Profile, row.UnclippedLeafIO, row.ClippedLeafIO, Pct(row.Relative))
	}
	return t
}

// Table1Cell is one cell of Table I: the average I/O reduction (percent) of
// skyline and stairline clipping for one variant and query profile, averaged
// over datasets.
type Table1Cell struct {
	Variant      string
	Profile      string // "QR0", "QR1", "QR2" or "Total"
	SkyReduction float64
	StaReduction float64
}

// Table1Result reproduces Table I by aggregating Figure 11's measurements.
type Table1Result struct {
	Cells []Table1Cell
}

// AggregateTable1 averages the per-dataset reductions of a Fig11Result into
// the layout of Table I (variant × profile, plus Total rows/columns).
func AggregateTable1(fig11 *Fig11Result) *Table1Result {
	type key struct{ variant, profile, method string }
	sums := make(map[key]float64)
	counts := make(map[key]int)
	add := func(variant, profile, method string, reduction float64) {
		k := key{variant, profile, method}
		sums[k] += reduction
		counts[k]++
	}
	for _, row := range fig11.Rows {
		reduction := 1 - row.Relative
		add(row.Variant, row.Profile, row.Method, reduction)
		add(row.Variant, "Total", row.Method, reduction)
		add("Total", row.Profile, row.Method, reduction)
		add("Total", "Total", row.Method, reduction)
	}
	avg := func(variant, profile, method string) float64 {
		k := key{variant, profile, method}
		if counts[k] == 0 {
			return 0
		}
		return sums[k] / float64(counts[k])
	}
	out := &Table1Result{}
	variants := []string{"QR-tree", "HR-tree", "R*-tree", "RR*-tree", "Total"}
	profiles := []string{"QR0", "QR1", "QR2", "Total"}
	for _, v := range variants {
		for _, p := range profiles {
			if counts[key{v, p, "CSTA"}] == 0 && counts[key{v, p, "CSKY"}] == 0 {
				continue
			}
			out.Cells = append(out.Cells, Table1Cell{
				Variant: v, Profile: p,
				SkyReduction: avg(v, p, "CSKY"),
				StaReduction: avg(v, p, "CSTA"),
			})
		}
	}
	return out
}

// Table renders Table I in the paper's "skyline/stairline" cell format.
func (r *Table1Result) Table() *Table {
	t := NewTable("Table I: average % I/O reduction (skyline/stairline clipping)",
		"variant", "QR0", "QR1", "QR2", "Total")
	variants := []string{"QR-tree", "HR-tree", "R*-tree", "RR*-tree", "Total"}
	cells := make(map[string]map[string]Table1Cell)
	for _, c := range r.Cells {
		if cells[c.Variant] == nil {
			cells[c.Variant] = make(map[string]Table1Cell)
		}
		cells[c.Variant][c.Profile] = c
	}
	for _, v := range variants {
		byProfile, ok := cells[v]
		if !ok {
			continue
		}
		row := []interface{}{v}
		for _, p := range []string{"QR0", "QR1", "QR2", "Total"} {
			c := byProfile[p]
			row = append(row, formatSkySta(c.SkyReduction, c.StaReduction))
		}
		t.AddRow(row...)
	}
	return t
}

func formatSkySta(sky, sta float64) string {
	return Pct(sky) + "/" + Pct(sta)
}
