package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"cbb"
	"cbb/internal/querygen"
	"cbb/internal/server"
	"cbb/internal/telemetry"
)

// RunServe benchmarks the serving path end to end but in-process: range
// queries are marshaled to JSON and driven through the internal/server HTTP
// handler with httptest recorders — no sockets — so the numbers isolate the
// serving layer (decode, admission, snapshot pin, query, encode) from
// kernel TCP behaviour. Each dataset × profile is measured twice: "direct"
// (sequential requests, coalescing disabled) and "coalesced" (workers
// concurrent clients sharing micro-batches), the two paths a live cbbserve
// serves under light and heavy concurrency respectively.
func RunServe(cfg Config, workers int) (*ServeResult, error) {
	cfg = cfg.WithDefaults()
	if workers < 2 {
		workers = 2
	}
	res := &ServeResult{Workers: workers}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		tree, err := cbb.New(cbb.Options{
			Dims:     ds.Spec.Dims,
			Variant:  cbb.RRStarTree,
			Universe: ds.Universe,
		})
		if err != nil {
			return nil, err
		}
		items := make([]cbb.Item, len(ds.Items))
		for i, it := range ds.Items {
			items[i] = cbb.Item{Object: it.Object, Rect: it.Rect}
		}
		if err := tree.BulkLoad(items); err != nil {
			return nil, err
		}
		objects := make([]cbb.Rect, len(ds.Items))
		for i, it := range ds.Items {
			objects[i] = it.Rect
		}
		gen, err := querygen.New(objects, ds.Universe, cfg.Seed)
		if err != nil {
			return nil, err
		}

		direct, err := server.New(server.Config{
			Engine:         server.NewTreeEngine(tree, false),
			CoalesceWindow: -1, // sequential clients never share a batch
			SearchWorkers:  1,
		})
		if err != nil {
			return nil, err
		}
		coalesced, err := server.New(server.Config{
			Engine:           server.NewTreeEngine(tree, false),
			CoalesceWindow:   200 * time.Microsecond,
			CoalesceMaxBatch: workers,
			SearchWorkers:    1,
		})
		if err != nil {
			return nil, err
		}

		for _, p := range querygen.AllProfiles() {
			bodies, err := marshalSearches(gen.Queries(p, cfg.Queries))
			if err != nil {
				return nil, err
			}
			row := ServeRow{Dataset: name, Profile: p.String()}
			row.Direct = serveSequential(direct, bodies)
			row.Coalesced = serveConcurrent(coalesced, bodies, workers)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func marshalSearches(queries []cbb.Rect) ([][]byte, error) {
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		b, err := json.Marshal(server.SearchRequest{
			Query:     server.RectJSON{Lo: q.Lo, Hi: q.Hi},
			CountOnly: true,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// ServeLatency is one measured pass over a query set through the handler.
type ServeLatency struct {
	P50, P95, P99 time.Duration
	QPS           float64
}

func serveSequential(s *server.Server, bodies [][]byte) ServeLatency {
	var hist telemetry.Histogram
	start := time.Now()
	for _, body := range bodies {
		t0 := time.Now()
		serveOne(s, body)
		hist.Observe(time.Since(t0).Nanoseconds())
	}
	return summarize(&hist, len(bodies), time.Since(start))
}

func serveConcurrent(s *server.Server, bodies [][]byte, workers int) ServeLatency {
	var hist telemetry.Histogram
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				serveOne(s, bodies[i])
				hist.Observe(time.Since(t0).Nanoseconds())
			}
		}()
	}
	wg.Wait()
	return summarize(&hist, len(bodies), time.Since(start))
}

func serveOne(s *server.Server, body []byte) {
	r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		panic(fmt.Sprintf("experiments: /search returned %d: %s", w.Code, w.Body.String()))
	}
}

func summarize(h *telemetry.Histogram, n int, elapsed time.Duration) ServeLatency {
	s := h.Summarize()
	return ServeLatency{
		P50: time.Duration(s.P50),
		P95: time.Duration(s.P95),
		P99: time.Duration(s.P99),
		QPS: float64(n) / elapsed.Seconds(),
	}
}

// ServeRow is one dataset × profile measurement pair.
type ServeRow struct {
	Dataset   string
	Profile   string
	Direct    ServeLatency
	Coalesced ServeLatency
}

// ServeResult holds the serving-path latency sweep.
type ServeResult struct {
	Workers int
	Rows    []ServeRow
}

// Table renders the sweep with latencies in microseconds.
func (r *ServeResult) Table() *Table {
	t := NewTable("Serving path: in-process handler latency (µs) and throughput",
		"dataset", "profile",
		"direct p50", "direct p99", "direct qps",
		"coal p50", "coal p99", "coal qps")
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Profile,
			us(row.Direct.P50), us(row.Direct.P99), row.Direct.QPS,
			us(row.Coalesced.P50), us(row.Coalesced.P99), row.Coalesced.QPS)
	}
	t.AddNote("direct: sequential requests, coalescing disabled; coal: %d concurrent clients, 200µs window", r.Workers)
	t.AddNote("in-process httptest handler — JSON decode/encode and admission included, TCP excluded")
	return t
}
