package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

// This experiment goes beyond the paper: it measures the cold-start query
// cost of a file-backed tree. A clipped RR*-tree is built once per dataset
// and saved as a snapshot; the snapshot is then reopened cold — nothing
// decoded, nothing cached — for every (buffer-pool capacity, clipping)
// configuration, and a medium-selectivity query batch runs directly against
// the on-disk pages. Buffer-pool misses are the simulated disk I/O, disk
// reads are the pages physically faulted in from the file, and clipping is
// expected to narrow both: the children it prunes are exactly the pages a
// cold tree never has to read.

// ColdStartRow is one (dataset, pool capacity, clipping) measurement.
type ColdStartRow struct {
	Dataset   string
	PoolPages int   // buffer-pool capacity in pages
	Clipped   bool  // clipped (CSTA) vs. plain search on the same file
	Results   int   // total query results (identical for both modes)
	LeafReads int64 // logical leaf accesses (the paper's metric)
	DirReads  int64 // logical directory accesses
	Hits      int64 // buffer-pool hits
	Misses    int64 // buffer-pool misses = simulated disk pages
	DiskReads int64 // pages physically read from the snapshot file
}

// ColdStartResult is the outcome of RunColdStart.
type ColdStartResult struct {
	Scale   int
	Queries int
	Rows    []ColdStartRow
}

// coldStartFractions are the buffer-pool capacities swept, as fractions of
// the tree's node count.
var coldStartFractions = []float64{0.02, 0.05, 0.10, 0.25, 1.0}

// RunColdStart builds and snapshots a clipped RR*-tree per dataset, then
// reopens the snapshot cold for each buffer-pool capacity and measures the
// file-backed query I/O of the clipped and unclipped search on the same
// pages.
func RunColdStart(cfg Config) (*ColdStartResult, error) {
	cfg = cfg.WithDefaults()
	dir, err := os.MkdirTemp("", "cbb-coldstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &ColdStartResult{Scale: cfg.Scale, Queries: cfg.Queries}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
		if err != nil {
			return nil, err
		}
		idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
		if err != nil {
			return nil, err
		}
		params := cfg.params(ds.Spec.Dims, core.MethodStairline)
		treeCfg := tree.Config()
		meta := snapshot.Meta{
			Dims:          treeCfg.Dims,
			Variant:       treeCfg.Variant,
			MaxEntries:    treeCfg.MaxEntries,
			MinEntries:    treeCfg.MinEntries,
			HilbertBits:   treeCfg.HilbertBits,
			Universe:      treeCfg.Universe,
			ClipMethod:    snapshot.ClipStairline,
			MaxClipPoints: params.K,
			ClipTau:       params.Tau,
		}
		path := filepath.Join(dir, name+".cbb")
		if err := snapshot.WriteFile(path, tree, idx.Table(), meta); err != nil {
			return nil, err
		}

		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		batch := queries[querygen.QR1]
		dirNodes, leafNodes := tree.NodeCount()
		total := dirNodes + leafNodes

		for _, frac := range coldStartFractions {
			capacity := int(frac * float64(total))
			if capacity < 1 {
				capacity = 1
			}
			for _, clipped := range []bool{false, true} {
				row, err := coldStartRun(path, batch, capacity, clipped)
				if err != nil {
					return nil, fmt.Errorf("cold start on %s (pool %d): %w", name, capacity, err)
				}
				row.Dataset = name
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// coldStartRun opens the snapshot cold and runs the query batch file-backed.
func coldStartRun(path string, batch []geom.Rect, capacity int, clipped bool) (ColdStartRow, error) {
	snap, fp, err := snapshot.OpenFile(path)
	if err != nil {
		return ColdStartRow{}, err
	}
	defer fp.Close()
	tree, err := snap.OpenTree(fp, true)
	if err != nil {
		return ColdStartRow{}, err
	}
	// The reported miss count IS this experiment's metric, so the pool
	// must be an exact LRU at every capacity: use the unsharded layout
	// (the run is strictly sequential; striping would buy nothing).
	tree.SetBufferPool(storage.NewUnshardedBufferPool(capacity))

	results := 0
	visit := func(rtree.ObjectID, geom.Rect) bool { results++; return true }
	if clipped {
		params, ok := snap.Meta.ClipParams()
		if !ok {
			return ColdStartRow{}, fmt.Errorf("snapshot %s has no clip table", path)
		}
		idx, err := clipindex.Restore(tree, params, snap.Table)
		if err != nil {
			return ColdStartRow{}, err
		}
		for _, q := range batch {
			idx.Search(q, visit)
		}
	} else {
		for _, q := range batch {
			tree.Search(q, visit)
		}
	}
	if err := tree.Err(); err != nil {
		return ColdStartRow{}, err
	}
	io := tree.Counter().Snapshot()
	hits, misses := tree.BufferPool().Stats()
	reads, _ := fp.DiskStats()
	return ColdStartRow{
		PoolPages: capacity,
		Clipped:   clipped,
		Results:   results,
		LeafReads: io.LeafReads,
		DirReads:  io.DirReads,
		Hits:      hits,
		Misses:    misses,
		DiskReads: reads,
	}, nil
}

// Table renders the cold-start sweep with plain and clipped runs side by
// side per pool capacity.
func (r *ColdStartResult) Table() *Table {
	t := NewTable(
		fmt.Sprintf("Cold-start file-backed query I/O (RR*-tree, CSTA vs. plain, %d objects, %d QR1 queries)", r.Scale, r.Queries),
		"dataset", "pool", "mode", "results", "leaf", "dir", "pool miss", "hit rate", "disk reads",
	)
	for _, row := range r.Rows {
		mode := "plain"
		if row.Clipped {
			mode = "CSTA"
		}
		total := row.Hits + row.Misses
		hitRate := 0.0
		if total > 0 {
			hitRate = float64(row.Hits) / float64(total)
		}
		t.AddRow(row.Dataset, row.PoolPages, mode, row.Results,
			row.LeafReads, row.DirReads, row.Misses, Pct(hitRate), row.DiskReads)
	}
	t.AddNote("each row reopens the snapshot file cold; pool misses are the simulated disk I/O, disk reads the pages actually faulted from the file")
	return t
}
