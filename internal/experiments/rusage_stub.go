//go:build !unix

package experiments

// minorFaults is unavailable without rusage; rows report -1.
func minorFaults() int64 { return -1 }
