package experiments

import (
	"time"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/join"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
)

// JoinRow is one cell of the spatial-join experiment: leaf I/O of one join
// strategy with and without clipping for one R-tree variant.
type JoinRow struct {
	Strategy        string // "INLJ" or "STT"
	Variant         string
	Pairs           int64
	UnclippedLeafIO int64
	ClippedLeafIO   int64
	Reduction       float64 // 1 − clipped/unclipped
}

// JoinResult reproduces the spatial-join evaluation (Section V-C, "Spatial
// Join Performance"): axo03 ⋈ den03 with INLJ and STT across the four
// variants.
type JoinResult struct {
	Rows []JoinRow
}

// RunJoin joins the axon and dendrite datasets (at the configured scale)
// with both strategies, for every configured variant, with and without
// stairline clipping.
func RunJoin(cfg Config) (*JoinResult, error) {
	cfg = cfg.WithDefaults()
	left, err := cfg.LoadDataset("axo03")
	if err != nil {
		return nil, err
	}
	rightScale := cfg.Scale / 2 // den03 is roughly half the size of axo03 in the paper
	if rightScale < 1 {
		rightScale = cfg.Scale
	}
	rightCfg := cfg
	rightCfg.Scale = rightScale
	right, err := rightCfg.LoadDataset("den03")
	if err != nil {
		return nil, err
	}
	out := &JoinResult{}
	for _, v := range cfg.Variants {
		leftTree, _, err := cfg.BuildTree(left, v)
		if err != nil {
			return nil, err
		}
		rightTree, _, err := cfg.BuildTree(right, v)
		if err != nil {
			return nil, err
		}
		leftIdx, _, err := cfg.ClipTree(leftTree, core.MethodStairline)
		if err != nil {
			return nil, err
		}
		rightIdx, _, err := cfg.ClipTree(rightTree, core.MethodStairline)
		if err != nil {
			return nil, err
		}

		// INLJ: index the larger dataset (axo03), probe with every den03
		// object.
		plainINLJ, err := join.INLJ(leftTree, nil, right.Items, nil)
		if err != nil {
			return nil, err
		}
		clipINLJ, err := join.INLJ(leftTree, leftIdx, right.Items, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, JoinRow{
			Strategy: "INLJ", Variant: v.String(), Pairs: plainINLJ.Pairs,
			UnclippedLeafIO: plainINLJ.IO.LeafReads, ClippedLeafIO: clipINLJ.IO.LeafReads,
			Reduction: reduction(clipINLJ.IO.LeafReads, plainINLJ.IO.LeafReads),
		})

		// STT: both datasets indexed.
		plainSTT, err := join.STT(leftTree, rightTree, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		clipSTT, err := join.STT(leftTree, rightTree, leftIdx, rightIdx, nil)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, JoinRow{
			Strategy: "STT", Variant: v.String(), Pairs: plainSTT.Pairs,
			UnclippedLeafIO: plainSTT.IO.LeafReads, ClippedLeafIO: clipSTT.IO.LeafReads,
			Reduction: reduction(clipSTT.IO.LeafReads, plainSTT.IO.LeafReads),
		})
	}
	return out, nil
}

func reduction(clipped, unclipped int64) float64 {
	if unclipped == 0 {
		return 0
	}
	return 1 - float64(clipped)/float64(unclipped)
}

// Table renders the join experiment.
func (r *JoinResult) Table() *Table {
	t := NewTable("Spatial join (axo03 ⋈ den03): leaf accesses with and without CSTA clipping",
		"strategy", "variant", "pairs", "unclipped", "clipped", "reduction")
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, row.Variant, row.Pairs, row.UnclippedLeafIO, row.ClippedLeafIO, Pct(row.Reduction))
	}
	return t
}

// Fig15Row is one bar of Figure 15: average query wall time on the large
// synthetic datasets for one (dataset, index, profile) combination.
type Fig15Row struct {
	Dataset  string
	Index    string // "HR", "CSKY-HR", "CSTA-HR", "RR*", "CSKY-RR*", "CSTA-RR*"
	Profile  string
	AvgQuery time.Duration
	LeafIO   int64
}

// Fig15Result reproduces Figure 15 (scalability) at a reduced scale.
type Fig15Result struct {
	Scale int
	Rows  []Fig15Row
}

// RunFig15 runs the scalability experiment on par02 and par03 at the
// configured scale (the paper uses 2^30 objects; the harness default is far
// smaller so the experiment completes on a laptop, and the trends — CSTA
// roughly twice as effective as CSKY, clipped HR-tree approaching the
// unclipped RR*-tree — are what carries over).
func RunFig15(cfg Config) (*Fig15Result, error) {
	cfg = cfg.WithDefaults()
	out := &Fig15Result{Scale: cfg.Scale}
	for _, name := range []string{"par02", "par03"} {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		for _, v := range []rtree.Variant{rtree.Hilbert, rtree.RRStar} {
			tree, _, err := cfg.BuildTree(ds, v)
			if err != nil {
				return nil, err
			}
			idxSky, _, err := cfg.ClipTree(tree, core.MethodSkyline)
			if err != nil {
				return nil, err
			}
			idxSta, _, err := cfg.ClipTree(tree, core.MethodStairline)
			if err != nil {
				return nil, err
			}
			short := "HR"
			if v == rtree.RRStar {
				short = "RR*"
			}
			runs := []struct {
				label  string
				search func(geom.Rect)
			}{
				{short, func(q geom.Rect) { tree.Search(q, discard) }},
				{"CSKY-" + short, func(q geom.Rect) { idxSky.Search(q, discard) }},
				{"CSTA-" + short, func(q geom.Rect) { idxSta.Search(q, discard) }},
			}
			for _, p := range querygen.AllProfiles() {
				qs := queries[p]
				for _, run := range runs {
					tree.Counter().Reset()
					start := time.Now()
					for _, q := range qs {
						run.search(q)
					}
					elapsed := time.Since(start)
					out.Rows = append(out.Rows, Fig15Row{
						Dataset:  name,
						Index:    run.label,
						Profile:  p.String(),
						AvgQuery: elapsed / time.Duration(len(qs)),
						LeafIO:   tree.Counter().Snapshot().LeafReads,
					})
				}
			}
		}
	}
	return out, nil
}

func discard(rtree.ObjectID, geom.Rect) bool { return true }

// Table renders Figure 15.
func (r *Fig15Result) Table() *Table {
	t := NewTable("Figure 15: query cost on the large synthetic datasets (scaled down)",
		"dataset", "index", "profile", "avg query", "leaf reads")
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, row.Index, row.Profile, row.AvgQuery.String(), row.LeafIO)
	}
	t.AddNote("scale: %d objects per dataset (the paper uses 2^30)", r.Scale)
	return t
}
