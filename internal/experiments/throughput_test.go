package experiments

import (
	"strings"
	"testing"
)

func TestRunThroughput(t *testing.T) {
	res, err := RunThroughput(tinyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two indexes (plain and CSTA) x worker counts 1, 2, 4.
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(res.Rows))
	}
	byIndex := make(map[string][]ThroughputRow)
	for _, row := range res.Rows {
		if row.Queries <= 0 || row.QPS <= 0 || row.Speedup <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
		byIndex[row.Index] = append(byIndex[row.Index], row)
	}
	for index, rows := range byIndex {
		for _, row := range rows[1:] {
			// The exactness guarantee: worker count changes wall-clock time
			// only, never results or the paper's I/O metric.
			if row.Results != rows[0].Results {
				t.Errorf("%s: %d workers found %d results, 1 worker found %d", index, row.Workers, row.Results, rows[0].Results)
			}
			if row.LeafIO != rows[0].LeafIO {
				t.Errorf("%s: %d workers charged %d leaf reads, 1 worker charged %d", index, row.Workers, row.LeafIO, rows[0].LeafIO)
			}
		}
	}
	clipped, plain := byIndex["CSTA-RR*"], byIndex["RR*"]
	if len(clipped) == 0 || len(plain) == 0 {
		t.Fatalf("missing index rows: %v", byIndex)
	}
	if clipped[0].LeafIO > plain[0].LeafIO {
		t.Errorf("clipping increased leaf I/O: %d > %d", clipped[0].LeafIO, plain[0].LeafIO)
	}

	table := res.Table().String()
	for _, want := range []string{"workers", "queries/sec", "speedup", "buffer hit"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing column %q:\n%s", want, table)
		}
	}
}

func TestRunThroughputDefaultWorkers(t *testing.T) {
	res, err := RunThroughput(tinyConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// maxWorkers <= 0 defaults to 8: worker counts 1, 2, 4, 8 per index.
	if len(res.Rows) != 8 {
		t.Fatalf("expected 8 rows, got %d", len(res.Rows))
	}
}
