package experiments

import (
	"strings"
	"testing"

	"cbb/internal/core"
	"cbb/internal/rtree"
)

// tinyConfig keeps experiment tests fast: small datasets, few queries,
// modest sampling.
func tinyConfig(ds ...string) Config {
	return Config{
		Scale:          2500,
		Queries:        30,
		Seed:           7,
		SamplesPerNode: 96,
		Datasets:       ds,
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale <= 0 || c.Queries <= 0 || c.Seed == 0 || c.SamplesPerNode <= 0 || c.Tau <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if len(c.Datasets) != 7 || len(c.Variants) != 4 {
		t.Fatalf("defaults should cover all datasets and variants: %+v", c)
	}
	p := c.params(2, core.MethodStairline)
	if p.K != 8 || p.Method != core.MethodStairline {
		t.Errorf("params wrong: %+v", p)
	}
	if c.params(3, core.MethodSkyline).K != 16 {
		t.Error("3d K should be 16")
	}
}

func TestLoadDatasetAndBuildTree(t *testing.T) {
	cfg := tinyConfig("par02").WithDefaults()
	ds, err := cfg.LoadDataset("par02")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Items) != cfg.Scale {
		t.Fatalf("loaded %d items, want %d", len(ds.Items), cfg.Scale)
	}
	for _, v := range rtree.AllVariants() {
		tree, buildTime, err := BuildTree(ds, v)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != cfg.Scale {
			t.Fatalf("%v: tree has %d objects", v, tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if buildTime <= 0 {
			t.Errorf("%v: build time not measured", v)
		}
	}
	if _, err := cfg.LoadDataset("bogus"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestBuildTreePartial(t *testing.T) {
	cfg := tinyConfig("rea02").WithDefaults()
	ds, err := cfg.LoadDataset("rea02")
	if err != nil {
		t.Fatal(err)
	}
	tree, rest, err := BuildTreePartial(ds, rtree.Quadratic, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len()+len(rest) != len(ds.Items) {
		t.Fatalf("partial build lost items: %d + %d != %d", tree.Len(), len(rest), len(ds.Items))
	}
	if len(rest) == 0 {
		t.Error("expected a residue of items to insert")
	}
	if _, _, err := BuildTreePartial(ds, rtree.Quadratic, 1.5); err == nil {
		t.Error("fraction outside (0,1) must be rejected")
	}
}

func TestQuerySet(t *testing.T) {
	cfg := tinyConfig("axo03").WithDefaults()
	ds, err := cfg.LoadDataset("axo03")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := cfg.QuerySet(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("expected 3 profiles, got %d", len(qs))
	}
	for p, queries := range qs {
		if len(queries) != cfg.Queries {
			t.Errorf("%v: %d queries, want %d", p, len(queries), cfg.Queries)
		}
	}
}

func TestRunFig01(t *testing.T) {
	res, err := RunFig01(Config{Scale: 2000, Queries: 20, Seed: 7, SamplesPerNode: 64,
		Datasets: []string{"rea02"}, Variants: []rtree.Variant{rtree.Quadratic, rtree.RRStar}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AvgDeadSpace <= 0 || row.AvgDeadSpace > 1 {
			t.Errorf("dead space out of range: %+v", row)
		}
		if row.AvgOverlap < 0 || row.AvgOverlap > 1 {
			t.Errorf("overlap out of range: %+v", row)
		}
	}
	if len(res.Optimality) != 3 {
		t.Fatalf("expected 3 optimality cells (RR*-tree × 3 profiles), got %d", len(res.Optimality))
	}
	for _, o := range res.Optimality {
		if o.Ratio <= 0 || o.Ratio > 1 {
			t.Errorf("optimality out of range: %+v", o)
		}
	}
	tables := res.Tables()
	if len(tables) != 2 || !strings.Contains(tables[0].String(), "rea02") {
		t.Error("tables should render the dataset")
	}
}

func TestRunFig08(t *testing.T) {
	res, err := RunFig08(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaves) != 2 {
		t.Fatalf("expected 2 leaves, got %d", len(res.Leaves))
	}
	bottom := res.Leaves[0]
	// Qualitative ordering of Figure 8 on the bottom node: MBC worst, CSTA
	// best among the measured set, CH no worse than MBB.
	if bottom["MBC"] < bottom["MBB"] {
		t.Errorf("MBC (%.2f) should have at least as much dead space as MBB (%.2f)", bottom["MBC"], bottom["MBB"])
	}
	if bottom["CH"] > bottom["MBB"]+0.03 {
		t.Errorf("CH (%.2f) should not exceed MBB (%.2f)", bottom["CH"], bottom["MBB"])
	}
	if bottom["CBBSTA"] > bottom["CBBSKY"]+0.03 {
		t.Errorf("CBBSTA (%.2f) should not exceed CBBSKY (%.2f)", bottom["CBBSTA"], bottom["CBBSKY"])
	}
	if !strings.Contains(res.Table().String(), "CBBSTA") {
		t.Error("table should include CBBSTA column")
	}
}

func TestRunFig09(t *testing.T) {
	res, err := RunFig09(Config{Scale: 2000, Seed: 7, SamplesPerNode: 64, Datasets: []string{"rea02", "axo03"}})
	if err != nil {
		t.Fatal(err)
	}
	// axo03 is 3d and must be skipped; rea02 contributes 8 methods.
	if len(res.Rows) != 8 {
		t.Fatalf("expected 8 rows for the single 2d dataset, got %d", len(res.Rows))
	}
	byMethod := make(map[string]Fig09Row)
	for _, r := range res.Rows {
		byMethod[r.Method] = r
	}
	if byMethod["CH"].Points <= byMethod["4-C"].Points {
		t.Error("the convex hull should need more points than a 4-corner polygon")
	}
	if byMethod["CBBSTA"].DeadSpace > byMethod["MBB"].DeadSpace {
		t.Error("stairline CBBs should have less dead space than plain MBBs")
	}
	if !strings.Contains(res.Table().String(), "rea02") {
		t.Error("table should mention the dataset")
	}
}

func TestRunFig10(t *testing.T) {
	res, err := RunFig10(Config{Scale: 2000, Seed: 7, SamplesPerNode: 64,
		Datasets: []string{"par02"}, Variants: []rtree.Variant{rtree.RStar}})
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset × 1 variant × 2 methods × 5 k values.
	if len(res.Rows) != 10 {
		t.Fatalf("expected 10 rows, got %d", len(res.Rows))
	}
	// Clipped volume must be monotone (within noise) in k for a fixed
	// method, and CSTA at max k must clip at least as much as CSKY.
	var skyMax, staMax float64
	prev := make(map[string]float64)
	for _, row := range res.Rows {
		if row.AvgClipped < prev[row.Method]-0.05 {
			t.Errorf("clipped volume should not collapse as k grows: %+v", row)
		}
		prev[row.Method] = row.AvgClipped
		if row.Method == "CSKY" && row.AvgClipped > skyMax {
			skyMax = row.AvgClipped
		}
		if row.Method == "CSTA" && row.AvgClipped > staMax {
			staMax = row.AvgClipped
		}
	}
	if staMax < skyMax-0.03 {
		t.Errorf("CSTA max clipped (%.3f) should be at least CSKY max (%.3f)", staMax, skyMax)
	}
	if KValues(2)[4] != 8 || KValues(3)[4] != 16 {
		t.Error("k sweeps should end at 2^(d+1)")
	}
	if !strings.Contains(res.Table().String(), "CSTA") {
		t.Error("table should include CSTA rows")
	}
}

func TestRunFig11AndTable1(t *testing.T) {
	res, err := RunFig11(Config{Scale: 3000, Queries: 40, Seed: 7, SamplesPerNode: 64,
		Datasets: []string{"axo03"}, Variants: []rtree.Variant{rtree.Quadratic, rtree.RRStar}})
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset × 2 variants × 3 profiles × 2 methods.
	if len(res.Rows) != 12 {
		t.Fatalf("expected 12 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Relative < 0 || row.Relative > 1.001 {
			t.Errorf("clipped search must never use more leaf I/O: %+v", row)
		}
		if row.UnclippedLeafIO <= 0 {
			t.Errorf("queries should read leaves: %+v", row)
		}
	}
	t1 := AggregateTable1(res)
	if len(t1.Cells) == 0 {
		t.Fatal("Table 1 aggregation produced nothing")
	}
	var total Table1Cell
	found := false
	for _, c := range t1.Cells {
		if c.Variant == "Total" && c.Profile == "Total" {
			total, found = c, true
		}
		if c.StaReduction < -0.001 || c.StaReduction > 1 {
			t.Errorf("implausible reduction: %+v", c)
		}
	}
	if !found {
		t.Fatal("Table 1 should contain a Total/Total cell")
	}
	if total.StaReduction < total.SkyReduction-0.02 {
		t.Errorf("stairline reduction (%.3f) should be at least skyline reduction (%.3f)",
			total.StaReduction, total.SkyReduction)
	}
	if !strings.Contains(t1.Table().String(), "RR*-tree") {
		t.Error("Table 1 should include the RR*-tree row")
	}
	if !strings.Contains(res.Table().String(), "QR1") {
		t.Error("Figure 11 table should include profiles")
	}
}

func TestRunFig12(t *testing.T) {
	res, err := RunFig12(Config{Scale: 3000, Seed: 7, SamplesPerNode: 64,
		Datasets: []string{"par02"}, Variants: []rtree.Variant{rtree.Quadratic, rtree.RStar}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Inserts <= 0 {
			t.Errorf("no inserts recorded: %+v", row)
		}
		sum := row.SplitsPerInsert + row.MBBPerInsert + row.CBBOnlyPerInsert
		if diff := row.ReclipsPerInsert - sum; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("cause decomposition does not sum up: %+v", row)
		}
		// The Section IV-D strategies must avoid the worst case of one extra
		// re-clip per insert on top of every MBB change.
		if row.CBBOnlyPerInsert > 1.0 {
			t.Errorf("CBB-only re-clips per insert too high: %+v", row)
		}
	}
	if !strings.Contains(res.Table().String(), "reclips/insert") {
		t.Error("table header missing")
	}
}

func TestRunFig13(t *testing.T) {
	res, err := RunFig13(Config{Scale: 2500, Seed: 7, Datasets: []string{"rea02", "axo03"}})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2 methods.
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LeafBytes <= 0 || row.DirBytes < 0 {
			t.Errorf("implausible storage breakdown: %+v", row)
		}
		if row.ClipShare < 0 || row.ClipShare > 0.25 {
			t.Errorf("clip-point share should stay in single-digit percent territory: %+v", row)
		}
		if row.LeafBytes < row.DirBytes {
			t.Errorf("leaf nodes should dominate storage: %+v", row)
		}
	}
	if !strings.Contains(res.Table().String(), "clip share") {
		t.Error("table header missing")
	}
}

func TestRunFig14(t *testing.T) {
	res, err := RunFig14(Config{Scale: 2000, Seed: 7, Datasets: []string{"par02"}})
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows per dataset: HR, R*, CSKY-RR*, CSTA-RR*.
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RelativeToRR <= 0 {
			t.Errorf("relative build time must be positive: %+v", row)
		}
		if row.ClipShareOfIt < 0 || row.ClipShareOfIt > 1 {
			t.Errorf("clip share out of range: %+v", row)
		}
	}
	if !strings.Contains(res.Table().String(), "CSTA-RR*-tree") {
		t.Error("table should include the clipped RR*-tree rows")
	}
}

func TestRunJoin(t *testing.T) {
	res, err := RunJoin(Config{Scale: 2000, Seed: 7, Variants: []rtree.Variant{rtree.RStar}})
	if err != nil {
		t.Fatal(err)
	}
	// 1 variant × 2 strategies.
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	var inlj, stt JoinRow
	for _, row := range res.Rows {
		if row.Strategy == "INLJ" {
			inlj = row
		} else {
			stt = row
		}
		if row.Reduction < -0.001 || row.Reduction > 1 {
			t.Errorf("implausible reduction: %+v", row)
		}
		if row.ClippedLeafIO > row.UnclippedLeafIO {
			t.Errorf("clipping increased join I/O: %+v", row)
		}
	}
	if inlj.Pairs != stt.Pairs {
		t.Errorf("strategies disagree on result size: %d vs %d", inlj.Pairs, stt.Pairs)
	}
	if stt.UnclippedLeafIO >= inlj.UnclippedLeafIO {
		t.Errorf("STT (%d) should access fewer leaves than INLJ (%d)", stt.UnclippedLeafIO, inlj.UnclippedLeafIO)
	}
	if !strings.Contains(res.Table().String(), "INLJ") {
		t.Error("table should include the INLJ row")
	}
}

func TestRunFig15(t *testing.T) {
	res, err := RunFig15(Config{Scale: 2500, Queries: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2 variants × 3 indexes × 3 profiles.
	if len(res.Rows) != 36 {
		t.Fatalf("expected 36 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AvgQuery <= 0 {
			t.Errorf("query time not measured: %+v", row)
		}
	}
	if !strings.Contains(res.Table().String(), "par03") {
		t.Error("table should include par03")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "a", "bb")
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer", "v")
	tbl.AddNote("n=%d", 2)
	s := tbl.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "1.50") || !strings.Contains(s, "note: n=2") {
		t.Errorf("table rendering incomplete:\n%s", s)
	}
	if Pct(0.125) != "12.5%" {
		t.Errorf("Pct wrong: %s", Pct(0.125))
	}
}
