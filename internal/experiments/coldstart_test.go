package experiments

import (
	"testing"

	"cbb/internal/rtree"
)

func TestRunColdStart(t *testing.T) {
	cfg := Config{Scale: 1500, Queries: 25, Seed: 42, Datasets: []string{"rea02"}}
	res, err := RunColdStart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(coldStartFractions) * 2
	if len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	for i := 0; i+1 < len(res.Rows); i += 2 {
		plain, clipped := res.Rows[i], res.Rows[i+1]
		if plain.Clipped || !clipped.Clipped {
			t.Fatalf("row order wrong at %d", i)
		}
		if plain.PoolPages != clipped.PoolPages {
			t.Fatalf("pool capacities differ at %d", i)
		}
		// Clipping never changes results, only skips I/O.
		if plain.Results != clipped.Results {
			t.Fatalf("pool %d: plain %d results, clipped %d", plain.PoolPages, plain.Results, clipped.Results)
		}
		if clipped.LeafReads > plain.LeafReads {
			t.Errorf("pool %d: clipped leaf reads %d exceed plain %d", plain.PoolPages, clipped.LeafReads, plain.LeafReads)
		}
		if plain.LeafReads == 0 || plain.DiskReads == 0 {
			t.Errorf("pool %d: cold-start run charged no I/O", plain.PoolPages)
		}
	}
	// Growing the pool can only reduce misses for the same workload.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-2]
	if last.Misses > first.Misses {
		t.Errorf("misses grew with pool size: %d (pool %d) -> %d (pool %d)",
			first.Misses, first.PoolPages, last.Misses, last.PoolPages)
	}
	if res.Table().String() == "" {
		t.Error("empty table rendering")
	}
}

func TestBuildTreeSnapshotCache(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Scale: 1200, Seed: 42, SaveDir: dir}.WithDefaults()
	ds, err := cfg.LoadDataset("rea02")
	if err != nil {
		t.Fatal(err)
	}
	built, _, err := cfg.BuildTree(ds, rtree.RRStar)
	if err != nil {
		t.Fatal(err)
	}

	cfg.SaveDir, cfg.LoadDir = "", dir
	reloaded, _, err := cfg.BuildTree(ds, rtree.RRStar)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != built.Len() || reloaded.Height() != built.Height() {
		t.Fatalf("cache round trip changed the tree: %d/%d vs %d/%d",
			reloaded.Len(), reloaded.Height(), built.Len(), built.Height())
	}
	if err := reloaded.Validate(); err != nil {
		t.Fatal(err)
	}
	// The reloaded tree is fully in memory and mutable.
	if _, err := reloaded.Insert(ds.Items[0].Rect, 999999); err != nil {
		t.Fatalf("cached tree must stay mutable: %v", err)
	}

	// A different variant misses the cache and rebuilds.
	other, _, err := cfg.BuildTree(ds, rtree.Quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if other.Variant() != rtree.Quadratic {
		t.Fatal("variant mismatch must bypass the cache")
	}
}
