package experiments

import (
	"fmt"
	"sort"
	"time"

	"cbb"
	"cbb/internal/hilbert"
)

// ShardedIngestRow is one point of the multi-writer ingest sweep: the
// wall-clock throughput of loading the whole dataset through the given
// number of concurrent writers into the given number of shards.
type ShardedIngestRow struct {
	Dataset  string
	Shards   int
	Writers  int
	Items    int
	Elapsed  time.Duration
	ItemsSec float64
	Speedup  float64 // over the shards=1/writers=1 single-tree baseline
}

// ShardedSkewRow summarises the skew-driven rebalancing run: the shard
// population imbalance with and without automatic splits enabled.
type ShardedSkewRow struct {
	Dataset     string
	SplitAbove  int
	StartShards int
	FinalShards int
	Splits      int64
	Merges      int64
	MaxLen      int
	MeanLen     float64
}

// ShardedResult is the sharded-engine experiment: an extension beyond the
// paper's single-threaded evaluation that measures (a) multi-writer batch
// ingest throughput against the Hilbert-sharded engine versus the
// single-tree single-writer-mutex baseline, and (b) how skew-driven shard
// splits rebalance a zipf hot-region workload. Correctness is asserted after
// every run: the engine must hold exactly the ingested object count.
type ShardedResult struct {
	Scale      int
	IngestRows []ShardedIngestRow
	SkewRows   []ShardedSkewRow
}

// RunSharded sweeps ingest configurations (shards × writers, bounded by
// maxShards and maxWriters, both defaulting to 4) over the skewed hot02
// dataset, then reruns the heaviest configuration with automatic splits
// enabled to report the rebalancing behaviour. Writers receive
// Hilbert-contiguous partitions of the input — the layout a partitioned
// loader produces, under which writers tend to hit disjoint shards and
// therefore disjoint writer mutexes.
func RunSharded(cfg Config, maxShards, maxWriters int) (*ShardedResult, error) {
	cfg = cfg.WithDefaults()
	if maxShards <= 0 {
		maxShards = 4
	}
	if maxWriters <= 0 {
		maxWriters = 4
	}
	ds, err := cfg.LoadDataset("hot02")
	if err != nil {
		return nil, err
	}
	base := cbb.Options{
		Dims:       ds.Spec.Dims,
		Universe:   ds.Universe,
		MaxEntries: 16,
		MinEntries: 6,
	}

	// Hilbert-sort once; every writer partition is a contiguous slice.
	curve, err := hilbert.New(ds.Universe, 16)
	if err != nil {
		return nil, err
	}
	items := append([]cbb.Item(nil), ds.Items...)
	sort.Slice(items, func(i, j int) bool {
		return curve.IndexRect(items[i].Rect) < curve.IndexRect(items[j].Rect)
	})

	out := &ShardedResult{Scale: cfg.Scale}
	configs := [][2]int{{1, 1}, {1, maxWriters}, {maxShards, 1}, {maxShards, maxWriters}}
	var baseline time.Duration
	for _, c := range configs {
		shards, writers := c[0], c[1]
		st, err := cbb.NewSharded(cbb.ShardedOptions{Options: base, Shards: shards})
		if err != nil {
			return nil, err
		}
		elapsed, err := ingestConcurrently(st, items, writers)
		if err != nil {
			return nil, err
		}
		if st.Len() != len(items) {
			return nil, fmt.Errorf("experiments: sharded engine holds %d objects after ingest, want %d", st.Len(), len(items))
		}
		if got := st.Count(ds.Universe); got != len(items) {
			return nil, fmt.Errorf("experiments: universe query found %d objects, want %d", got, len(items))
		}
		if baseline == 0 {
			baseline = elapsed
		}
		out.IngestRows = append(out.IngestRows, ShardedIngestRow{
			Dataset:  ds.Spec.Name,
			Shards:   shards,
			Writers:  writers,
			Items:    len(items),
			Elapsed:  elapsed,
			ItemsSec: float64(len(items)) / elapsed.Seconds(),
			Speedup:  float64(baseline) / float64(elapsed),
		})
	}

	// Skew run: same data, automatic splits on. The threshold is set so a
	// perfectly balanced layout would never split — only skew triggers it.
	splitAbove := 2 * len(items) / maxShards
	if splitAbove < 8 {
		splitAbove = 8
	}
	for _, auto := range []bool{false, true} {
		opts := cbb.ShardedOptions{Options: base, Shards: maxShards}
		if auto {
			opts.SplitAbove = splitAbove
		}
		st, err := cbb.NewSharded(opts)
		if err != nil {
			return nil, err
		}
		if _, err := ingestConcurrently(st, items, maxWriters); err != nil {
			return nil, err
		}
		splits, merges := st.RebalanceStats()
		lens := st.ShardLens()
		max, sum := 0, 0
		for _, n := range lens {
			if n > max {
				max = n
			}
			sum += n
		}
		row := ShardedSkewRow{
			Dataset:     ds.Spec.Name,
			StartShards: maxShards,
			FinalShards: st.NumShards(),
			Splits:      splits,
			Merges:      merges,
			MaxLen:      max,
			MeanLen:     float64(sum) / float64(len(lens)),
		}
		if auto {
			row.SplitAbove = splitAbove
		}
		out.SkewRows = append(out.SkewRows, row)
	}
	return out, nil
}

// ingestConcurrently splits the Hilbert-sorted items into one contiguous
// chunk per writer and times the concurrent InsertItems calls.
func ingestConcurrently(st *cbb.ShardedTree, items []cbb.Item, writers int) (time.Duration, error) {
	chunks := make([][]cbb.Item, 0, writers)
	per := (len(items) + writers - 1) / writers
	for lo := 0; lo < len(items); lo += per {
		hi := lo + per
		if hi > len(items) {
			hi = len(items)
		}
		chunks = append(chunks, items[lo:hi])
	}
	errs := make(chan error, len(chunks))
	start := time.Now()
	for _, chunk := range chunks {
		go func(chunk []cbb.Item) { errs <- st.InsertItems(chunk) }(chunk)
	}
	for range chunks {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// Tables renders the ingest sweep and the rebalancing summary.
func (r *ShardedResult) Tables() []*Table {
	ingest := NewTable("Sharded multi-writer ingest (hot02): items/sec by shards x writers",
		"shards", "writers", "items", "elapsed", "items/sec", "speedup")
	for _, row := range r.IngestRows {
		ingest.AddRow(row.Shards, row.Writers, row.Items, row.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", row.ItemsSec), fmt.Sprintf("%.2fx", row.Speedup))
	}
	ingest.AddNote("scale: %d objects; writers ingest Hilbert-contiguous partitions, so with shards >= writers they hold disjoint shard writer mutexes", r.Scale)
	ingest.AddNote("wall-clock speedup of concurrent writers tracks the number of physical cores (cf. the throughput experiment)")

	skew := NewTable("Skew-driven shard rebalancing (hot02, zipf hot regions)",
		"split above", "start shards", "final shards", "splits", "merges", "max shard", "mean shard")
	for _, row := range r.SkewRows {
		splitLabel := "off"
		if row.SplitAbove > 0 {
			splitLabel = fmt.Sprintf("%d", row.SplitAbove)
		}
		skew.AddRow(splitLabel, row.StartShards, row.FinalShards, row.Splits, row.Merges,
			row.MaxLen, fmt.Sprintf("%.0f", row.MeanLen))
	}
	skew.AddNote("a hot region maps to few Hilbert ranges; with splits off it swamps one shard (max >> mean), with splits on the engine bisects hot ranges until no shard exceeds the threshold")
	return []*Table{ingest, skew}
}
