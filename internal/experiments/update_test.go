package experiments

import "testing"

// TestRunUpdateWorkloadSmall runs the mixed insert/search workload at toy
// scale and checks its core invariants: identical op counts and query
// results between the plain and clipped run, clip maintenance happening
// only in the clipped run, clipping never increasing search I/O, and every
// flush actually writing pages back.
func TestRunUpdateWorkloadSmall(t *testing.T) {
	cfg := Config{Scale: 1500, Queries: 12, Seed: 7, Datasets: []string{"rea02"}}
	res, err := RunUpdateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (plain + clipped)", len(res.Rows))
	}
	plain, clipped := res.Rows[0], res.Rows[1]
	if plain.Clipped || !clipped.Clipped {
		t.Fatalf("row order: %+v / %+v", plain.Clipped, clipped.Clipped)
	}
	if plain.Inserts == 0 || plain.Deletes == 0 {
		t.Fatalf("no mutations ran: %+v", plain)
	}
	if plain.Inserts != clipped.Inserts || plain.Deletes != clipped.Deletes {
		t.Fatalf("op counts differ: %d/%d vs %d/%d", plain.Inserts, plain.Deletes, clipped.Inserts, clipped.Deletes)
	}
	if plain.Results != clipped.Results {
		t.Fatalf("query results differ: %d vs %d (clipping must never change results)", plain.Results, clipped.Results)
	}
	if plain.Reclips != 0 || plain.ValidityChecks != 0 {
		t.Fatalf("plain run performed clip maintenance: %+v", plain)
	}
	if clipped.Reclips == 0 {
		t.Fatal("clipped run never re-clipped under inserts")
	}
	if clipped.SearchLeaf > plain.SearchLeaf {
		t.Fatalf("clipped search read more leaves (%d) than plain (%d)", clipped.SearchLeaf, plain.SearchLeaf)
	}
	for _, row := range res.Rows {
		if row.Flushes != res.Rounds {
			t.Fatalf("expected %d flushes, got %d", res.Rounds, row.Flushes)
		}
		if row.DiskWrites == 0 {
			t.Fatalf("flushes wrote no pages back: %+v", row)
		}
		if row.SearchLeaf == 0 {
			t.Fatalf("query batches charged no leaf reads: %+v", row)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("table should render")
	}
}
