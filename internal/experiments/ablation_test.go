package experiments

import (
	"strings"
	"testing"

	"cbb/internal/rtree"
)

func TestRunTauSweep(t *testing.T) {
	cfg := Config{Scale: 2500, Queries: 30, Seed: 7, SamplesPerNode: 64, Datasets: []string{"axo03"}}
	res, err := RunTauSweep(cfg, []float64{0, 0.025, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 rows, got %d", len(res.Rows))
	}
	// Larger τ keeps fewer clip points and therefore at most as many bytes;
	// query I/O can only get worse (relative value can only rise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].ClipTableBytes > res.Rows[i-1].ClipTableBytes {
			t.Errorf("clip table should shrink as tau grows: %+v -> %+v", res.Rows[i-1], res.Rows[i])
		}
		if res.Rows[i].AvgClipPoints > res.Rows[i-1].AvgClipPoints+1e-9 {
			t.Errorf("clip points per node should not grow with tau")
		}
		if res.Rows[i].RelativeLeafIO+1e-9 < res.Rows[i-1].RelativeLeafIO-0.05 {
			t.Errorf("query I/O should not improve when clip points are dropped: %+v -> %+v",
				res.Rows[i-1], res.Rows[i])
		}
	}
	for _, row := range res.Rows {
		if row.RelativeLeafIO < 0 || row.RelativeLeafIO > 1.001 {
			t.Errorf("relative leaf IO out of range: %+v", row)
		}
	}
	if !strings.Contains(res.Table().String(), "tau") {
		t.Error("table header missing")
	}
}

func TestRunScoreApprox(t *testing.T) {
	cfg := Config{Scale: 2000, Seed: 7, Datasets: []string{"par02"}, Variants: []rtree.Variant{rtree.RStar}}
	res, err := RunScoreApprox(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Nodes == 0 {
		t.Fatal("no clipped nodes measured")
	}
	if row.MeanRelativeError < 0 || row.MeanRelativeError > 1.5 {
		t.Errorf("implausible approximation error: %+v", row)
	}
	// The paper argues the approximation error is small; on box data it
	// should stay well under 50 %.
	if row.MeanRelativeError > 0.5 {
		t.Errorf("approximation error unexpectedly large: %.2f", row.MeanRelativeError)
	}
	if !strings.Contains(res.Table().String(), "relative error") {
		t.Error("table header missing")
	}
}

func TestRunOrderingAblation(t *testing.T) {
	cfg := Config{Scale: 2500, Queries: 40, Seed: 7, Datasets: []string{"axo03"}}
	res, err := RunOrderingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("expected 1 row, got %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.OrderedChecks <= 0 || row.ReversedChecks <= 0 {
		t.Fatalf("no dominance tests counted: %+v", row)
	}
	// Score-first ordering should never need more checks than worst-first
	// (allowing a little noise because most nodes have few clip points).
	if float64(row.OrderedChecks) > 1.05*float64(row.ReversedChecks) {
		t.Errorf("score ordering used more checks (%d) than reversed (%d)", row.OrderedChecks, row.ReversedChecks)
	}
	if !strings.Contains(res.Table().String(), "score-ordered") {
		t.Error("table header missing")
	}
}
