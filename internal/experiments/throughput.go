package experiments

import (
	"fmt"
	"time"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/parallel"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// ThroughputRow is one point of the worker sweep: the batch throughput and
// I/O of one worker count on one (dataset, index) combination.
type ThroughputRow struct {
	Dataset   string
	Index     string // "RR*" or "CSTA-RR*"
	Workers   int
	Queries   int
	Elapsed   time.Duration
	QPS       float64
	Speedup   float64 // wall-clock speedup over the 1-worker run
	LeafIO    int64   // must be identical across worker counts
	Results   int64   // total matches; must be identical across worker counts
	BufferHit float64 // buffer-pool hit rate of the batch (cold start)
}

// ThroughputResult is the parallel batch-query throughput experiment: an
// extension beyond the paper's single-threaded evaluation that sweeps the
// worker count of the parallel.RunBatch executor and reports queries/sec
// alongside the paper's leaf-access metric. Result counts and leaf accesses
// are asserted to be identical across worker counts, demonstrating that
// parallelism changes wall-clock time only, never the measured I/O.
type ThroughputResult struct {
	Scale int
	Rows  []ThroughputRow
}

// RunThroughput builds the uniform 2d dataset (par02) with the RR*-tree,
// with and without stairline clipping, and runs the same range-query batch
// at worker counts 1, 2, 4, ... up to maxWorkers (8 when maxWorkers <= 0).
// Each worker count is timed without a buffer pool (the pool's lock would
// serialise the workers) and then re-run untimed against a cold bounded
// pool to report the buffer hit rate. Wall-clock speedup tracks the number
// of physical cores; on a single-core machine it stays near 1x while result
// counts and leaf accesses remain exact.
func RunThroughput(cfg Config, maxWorkers int) (*ThroughputResult, error) {
	cfg = cfg.WithDefaults()
	if maxWorkers <= 0 {
		maxWorkers = 8
	}
	ds, err := cfg.LoadDataset("par02")
	if err != nil {
		return nil, err
	}
	queries, err := cfg.QuerySet(ds)
	if err != nil {
		return nil, err
	}
	// One flat batch across all three selectivity profiles, large enough to
	// keep every worker busy.
	var batch []geom.Rect
	for _, p := range querygen.AllProfiles() {
		batch = append(batch, queries[p]...)
	}

	tree, _, err := cfg.BuildTree(ds, rtree.RRStar)
	if err != nil {
		return nil, err
	}
	idx, _, err := cfg.ClipTree(tree, core.MethodStairline)
	if err != nil {
		return nil, err
	}
	dir, leaf := tree.NodeCount()
	// At least one page: a capacity of zero would mean "unbounded" to
	// NewBufferPool and misreport tiny trees as fully cached.
	poolCapacity := (dir + leaf) / 4
	if poolCapacity < 1 {
		poolCapacity = 1
	}

	out := &ThroughputResult{Scale: cfg.Scale}
	runs := []struct {
		label    string
		searcher parallel.Searcher
	}{
		{"RR*", tree},
		{"CSTA-RR*", idx},
	}
	for _, run := range runs {
		var base time.Duration
		for workers := 1; workers <= maxWorkers; workers *= 2 {
			// Timed pass: no buffer pool attached, so the read path shares
			// only immutable tree state and the workers' private counters
			// and scales without lock contention.
			start := time.Now()
			res := parallel.RunBatch(run.searcher, batch, parallel.Options{Workers: workers})
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			if workers == 1 {
				base = elapsed
			}
			// Untimed pass: re-run the batch against a bounded buffer pool
			// (emulating an OS cache holding a quarter of the nodes) to
			// report the hit rate; attaching a fresh pool per pass is the
			// cold start.
			tree.SetBufferPool(storage.NewBufferPool(poolCapacity))
			parallel.RunBatch(run.searcher, batch, parallel.Options{Workers: workers})
			hits, misses := tree.BufferPool().Stats()
			tree.SetBufferPool(nil)
			hitRate := 0.0
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
			out.Rows = append(out.Rows, ThroughputRow{
				Dataset:   "par02",
				Index:     run.label,
				Workers:   res.Workers,
				Queries:   len(batch),
				Elapsed:   elapsed,
				QPS:       float64(len(batch)) / elapsed.Seconds(),
				Speedup:   float64(base) / float64(elapsed),
				LeafIO:    res.IO.LeafReads,
				Results:   res.TotalResults(),
				BufferHit: hitRate,
			})
		}
	}

	// Exactness assertion: every worker count of one index must report the
	// same result count and the same leaf accesses.
	byIndex := make(map[string]ThroughputRow)
	for _, row := range out.Rows {
		first, ok := byIndex[row.Index]
		if !ok {
			byIndex[row.Index] = row
			continue
		}
		if row.Results != first.Results || row.LeafIO != first.LeafIO {
			return nil, fmt.Errorf(
				"experiments: %s with %d workers reported results=%d leafIO=%d, but %d workers reported results=%d leafIO=%d",
				row.Index, row.Workers, row.Results, row.LeafIO, first.Workers, first.Results, first.LeafIO)
		}
	}
	return out, nil
}

// Table renders the throughput sweep.
func (r *ThroughputResult) Table() *Table {
	t := NewTable("Parallel batch throughput (par02, RR*-tree): queries/sec by worker count",
		"index", "workers", "queries", "elapsed", "queries/sec", "speedup", "leaf reads", "results", "buffer hit")
	for _, row := range r.Rows {
		t.AddRow(row.Index, row.Workers, row.Queries, row.Elapsed.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", row.QPS), fmt.Sprintf("%.2fx", row.Speedup),
			row.LeafIO, row.Results, Pct(row.BufferHit))
	}
	t.AddNote("scale: %d objects; identical leaf reads and result counts across worker counts certify exact parallel I/O accounting", r.Scale)
	return t
}
