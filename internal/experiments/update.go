package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/querygen"
	"cbb/internal/rtree"
	"cbb/internal/snapshot"
	"cbb/internal/storage"
)

// This experiment goes beyond the paper's Figure 12 (which measures re-clip
// frequency on an in-memory tree): it drives a *writable file-backed* tree
// through mixed insert/delete/search traffic — the serving scenario the
// clipped index is designed for — and measures, side by side for the plain
// and the clipped (CSTA) configuration, the query I/O during the mix, the
// clip-maintenance cost (re-clips and validity checks per Section IV-D), and
// the physical cost of durability: pages written back per flush through the
// write-ahead log.
//
// The tree is bulk-built over 90 % of the dataset, snapshotted, and reopened
// file-backed and writable. The remaining 10 % arrives in rounds; each round
// inserts its batch, deletes a fifth of it again (churn), runs the QR1 query
// batch, and flushes. Clipping is expected to cut the search I/O at the
// price of clip-table maintenance on every structural change — exactly the
// trade-off the paper argues is worth it.

// UpdateWorkloadRow is one (dataset, clipping) measurement.
type UpdateWorkloadRow struct {
	Dataset string
	Clipped bool // CSTA vs. plain on the same data and op sequence

	Inserts int
	Deletes int
	Results int // total query results across all rounds (identical per mode)

	SearchLeaf int64 // logical leaf accesses of the interleaved query batches
	SearchDir  int64 // logical directory accesses
	Writes     int64 // simulated node writes of the update stream

	Reclips        int // clip-table recomputations (0 when not clipped)
	ValidityChecks int // Algorithm 2 insert-selector checks
	AvoidedReclips int // checks that passed, saving a recomputation

	DiskReads  int64 // pages physically read from the snapshot file
	DiskWrites int64 // pages physically written back (WAL-committed)
	Flushes    int
	FlushTime  time.Duration // total wall-clock time of all flushes
}

// UpdateWorkloadResult is the outcome of RunUpdateWorkload.
type UpdateWorkloadResult struct {
	Scale   int
	Queries int
	Rounds  int
	Rows    []UpdateWorkloadRow
}

// updateRounds is the number of insert/search/flush rounds the pending 10 %
// of the data is spread over.
const updateRounds = 5

// RunUpdateWorkload measures query I/O and clip-maintenance cost under
// mixed insert/search traffic against writable file-backed trees, clipped
// vs. plain, per dataset.
func RunUpdateWorkload(cfg Config) (*UpdateWorkloadResult, error) {
	cfg = cfg.WithDefaults()
	dir, err := os.MkdirTemp("", "cbb-update-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	res := &UpdateWorkloadResult{Scale: cfg.Scale, Queries: cfg.Queries, Rounds: updateRounds}
	for _, name := range cfg.Datasets {
		ds, err := cfg.LoadDataset(name)
		if err != nil {
			return nil, err
		}
		queries, err := cfg.QuerySet(ds)
		if err != nil {
			return nil, err
		}
		batch := queries[querygen.QR1]
		for _, clipped := range []bool{false, true} {
			row, err := updateWorkloadRun(cfg, ds, batch, clipped, dir)
			if err != nil {
				return nil, fmt.Errorf("update workload on %s (clipped=%v): %w", name, clipped, err)
			}
			row.Dataset = name
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// updateWorkloadRun builds, snapshots, and reopens one tree writable, then
// drives the mixed workload against it.
func updateWorkloadRun(cfg Config, ds *Dataset, batch []geom.Rect, clipped bool, dir string) (UpdateWorkloadRow, error) {
	row := UpdateWorkloadRow{Clipped: clipped}
	tree, pending, err := BuildTreePartial(ds, rtree.RRStar, 0.9)
	if err != nil {
		return row, err
	}
	params := cfg.params(ds.Spec.Dims, core.MethodStairline)
	treeCfg := tree.Config()
	meta := snapshot.Meta{
		Dims:        treeCfg.Dims,
		Variant:     treeCfg.Variant,
		MaxEntries:  treeCfg.MaxEntries,
		MinEntries:  treeCfg.MinEntries,
		HilbertBits: treeCfg.HilbertBits,
		Universe:    treeCfg.Universe,
		ClipMethod:  snapshot.ClipNone,
	}
	var table clipindex.Table
	if clipped {
		built, err := clipindex.New(tree, params)
		if err != nil {
			return row, err
		}
		table = built.Table()
		meta.ClipMethod = snapshot.ClipStairline
		meta.MaxClipPoints = params.K
		meta.ClipTau = params.Tau
	}
	mode := "plain"
	if clipped {
		mode = "csta"
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.cbb", ds.Spec.Name, mode))
	if err := snapshot.WriteFile(path, tree, table, meta); err != nil {
		return row, err
	}

	// Reopen writable and file-backed: updates and queries now run against
	// the on-disk pages, with flushes committing through the WAL.
	snap, fp, err := snapshot.OpenFile(path)
	if err != nil {
		return row, err
	}
	defer fp.Close()
	if err := fp.EnableJournal(); err != nil {
		return row, err
	}
	ft, err := snap.OpenTree(fp, false)
	if err != nil {
		return row, err
	}
	var idx *clipindex.Index
	if clipped {
		if idx, err = clipindex.Restore(ft, params, snap.Table); err != nil {
			return row, err
		}
	}

	flush := func() error {
		start := time.Now()
		m := meta
		var tbl clipindex.Table
		if idx != nil {
			tbl = idx.Table()
		}
		if err := snapshot.Rewrite(fp, ft, tbl, m); err != nil {
			return err
		}
		if err := fp.CommitJournal(); err != nil {
			return err
		}
		row.Flushes++
		row.FlushTime += time.Since(start)
		return nil
	}

	insert := func(it rtree.Item) error {
		if idx != nil {
			_, err := idx.Insert(it.Rect, it.Object)
			return err
		}
		_, err := ft.Insert(it.Rect, it.Object)
		return err
	}
	remove := func(it rtree.Item) error {
		if idx != nil {
			_, err := idx.Delete(it.Rect, it.Object)
			return err
		}
		_, err := ft.Delete(it.Rect, it.Object)
		return err
	}
	search := func(q geom.Rect, visit func(rtree.ObjectID, geom.Rect) bool) {
		if idx != nil {
			idx.Search(q, visit)
			return
		}
		ft.Search(q, visit)
	}

	per := (len(pending) + updateRounds - 1) / updateRounds
	for r := 0; r < updateRounds; r++ {
		lo, hi := r*per, (r+1)*per
		if hi > len(pending) {
			hi = len(pending)
		}
		for i, it := range pending[lo:hi] {
			if err := insert(it); err != nil {
				return row, err
			}
			row.Inserts++
			// Delete every fifth freshly inserted object again: churn that
			// exercises condensation, free pages, and lazy clip handling.
			if i%5 == 4 {
				if err := remove(it); err != nil {
					return row, err
				}
				row.Deletes++
			}
		}
		before := ft.Counter().Snapshot()
		for _, q := range batch {
			search(q, func(rtree.ObjectID, geom.Rect) bool { row.Results++; return true })
		}
		d := storage.Diff(before, ft.Counter().Snapshot())
		row.SearchLeaf += d.LeafReads
		row.SearchDir += d.DirReads
		if err := flush(); err != nil {
			return row, err
		}
	}
	if err := ft.Err(); err != nil {
		return row, err
	}
	row.Writes = ft.Counter().Snapshot().Writes
	if idx != nil {
		s := idx.Stats()
		row.Reclips = s.TotalReclips()
		row.ValidityChecks = s.ValidityChecks
		row.AvoidedReclips = s.AvoidedReclips
	}
	row.DiskReads, row.DiskWrites = fp.DiskStats()
	return row, nil
}

// Table renders the update workload with plain and clipped runs side by
// side per dataset.
func (r *UpdateWorkloadResult) Table() *Table {
	t := NewTable(
		fmt.Sprintf("Update workload on writable file-backed trees (RR*-tree, %d objects, %d rounds, %d QR1 queries per round)",
			r.Scale, r.Rounds, r.Queries),
		"dataset", "mode", "inserts", "deletes", "search leaf", "search dir",
		"reclips", "checks", "avoided", "disk W", "flush ms",
	)
	for _, row := range r.Rows {
		mode := "plain"
		if row.Clipped {
			mode = "CSTA"
		}
		t.AddRow(row.Dataset, mode, row.Inserts, row.Deletes,
			row.SearchLeaf, row.SearchDir,
			row.Reclips, row.ValidityChecks, row.AvoidedReclips,
			row.DiskWrites, fmt.Sprintf("%.1f", float64(row.FlushTime.Microseconds())/1e3))
	}
	t.AddNote("90%% bulk-built and snapshotted; the rest arrives in rounds of insert+delete churn, a QR1 query batch, and a WAL-committed flush")
	t.AddNote("search leaf/dir are the logical accesses of the query batches only; disk W counts pages physically written back by flushes")
	return t
}
