package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple text table used to render experiment results in the
// same row/column structure as the paper's figures and tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v unless they are strings
// or float64 (rendered with two decimals).
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case float32:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text footnote rendered after the table body.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(cell, widths[i]))
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Pct renders a fraction in [0,1] as a percentage string with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
