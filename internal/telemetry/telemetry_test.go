package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value
	// and within the documented relative error.
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000, 1e6, 1e9, 1e12, math.MaxInt64}
	for _, v := range values {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("bucketUpper(%d)=%d < value %d", idx, up, v)
		}
		if v >= subCount {
			rel := float64(up-v) / float64(v)
			if rel > 1.0/subCount {
				t.Errorf("value %d: upper %d, relative error %.4f > %.4f", v, up, rel, 1.0/subCount)
			}
		}
	}
	// Bucket indices must be monotone in the value.
	prev := -1
	for v := int64(0); v < 4096; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000: p50 ~ 500, p95 ~ 950, p99 ~ 990 within log-linear error.
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	want := []float64{500, 950, 990}
	for i, q := range qs {
		rel := math.Abs(float64(q)-want[i]) / want[i]
		if rel > 0.10 {
			t.Errorf("quantile %d: got %d, want ~%.0f (rel err %.3f)", i, q, want[i], rel)
		}
	}
	if got := h.Quantile(1.0); got < 1000 || got > 1100 {
		t.Errorf("p100 = %d, want ~1000", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
	s := h.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1e7))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	_, cum, count, _ := h.Snapshot()
	if count != workers*per {
		t.Fatalf("snapshot count = %d, want %d", count, workers*per)
	}
	if len(cum) > 0 && cum[len(cum)-1] != count {
		t.Fatalf("last cumulative = %d, want %d", cum[len(cum)-1], count)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(`requests_total{endpoint="/search"}`, "requests by endpoint")
	c2 := r.Counter(`requests_total{endpoint="/knn"}`, "requests by endpoint")
	g := r.Gauge("inflight", "in-flight requests")
	r.GaugeFunc("objects", "indexed objects", func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "request latency", 1e9)

	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(1_000_000) // 1 ms

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP requests_total requests by endpoint",
		"# TYPE requests_total counter",
		`requests_total{endpoint="/search"} 3`,
		`requests_total{endpoint="/knn"} 1`,
		"# TYPE inflight gauge",
		"inflight 7",
		"objects 42",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="+Inf"} 1`,
		"latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The shared base name must get exactly one header.
	if n := strings.Count(out, "# TYPE requests_total counter"); n != 1 {
		t.Errorf("requests_total TYPE header emitted %d times, want 1", n)
	}
}

func TestSummarize(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) * 1000)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 >= s.P99 || s.P99 > s.Max {
		t.Errorf("quantile ordering violated: %+v", s)
	}
	if s.Mean <= 0 {
		t.Errorf("mean = %f", s.Mean)
	}
}
