// Package telemetry provides the runtime observability primitives of the
// serving layer: lock-cheap atomic counters and gauges, log-linear latency
// histograms with quantile (p50/p95/p99) extraction, and a registry that
// renders everything in the Prometheus text exposition format for the
// server's /metrics endpoint.
//
// telemetry is deliberately distinct from internal/metrics: metrics computes
// the *paper-evaluation* node statistics (dead space, overlap, I/O
// optimality — offline, Monte-Carlo, per experiment run), while telemetry is
// the *runtime* instrumentation of a live serving process (request counts,
// in-flight gauges, latency distributions — always on, nanoseconds per
// observation). The two never share state; a serving binary exports engine
// counters (IOStats, BufferStats) through telemetry gauges, and the
// evaluation harness keeps using metrics untouched.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must not be negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFunc is a gauge whose value is computed at scrape time, used to
// export engine state (object counts, I/O counters, buffer hit rates)
// without the engine pushing updates.
type GaugeFunc func() float64

// Histogram bucket layout: values below 2^subBits fall into one exact
// bucket each; above that, every power-of-two octave is divided into
// 2^subBits linear sub-buckets, bounding the relative quantile error by
// 2^-subBits (6.25 % at subBits = 4). With 64-bit nanosecond observations
// the layout needs (64-subBits+1)·2^subBits buckets; the histogram is a
// fixed array of atomic counters, so Observe is one atomic add with no
// locking or allocation.
const (
	subBits    = 4
	subCount   = 1 << subBits
	numBuckets = (64-subBits+1)*subCount + 1
)

// Histogram is a lock-free log-linear histogram of non-negative int64
// observations (by convention: latency in nanoseconds). The zero value is
// ready to use and safe for concurrent Observe/snapshot.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := uint(bits.Len64(u)) - 1 - subBits
	sub := (u >> exp) - subCount
	return int(exp)*subCount + subCount + int(sub)
}

// bucketUpper returns the inclusive upper bound of a bucket.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := uint((idx - subCount) / subCount)
	sub := uint64((idx-subCount)%subCount) + subCount
	lower := sub << exp
	width := uint64(1) << exp
	upper := lower + width - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// observations: the upper bound of the bucket containing the q·count-th
// observation. It returns 0 on an empty histogram. The estimate's relative
// error is bounded by the bucket width (2^-subBits of the value).
func (h *Histogram) Quantile(q float64) int64 {
	qs := h.Quantiles(q)
	return qs[0]
}

// Quantiles returns estimates for several quantiles from one consistent
// pass over the buckets (cheaper and mutually consistent versus repeated
// Quantile calls while observations keep arriving). The input must be
// ascending.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	// A consistent snapshot matters more than exactness here: sum bucket
	// counts once and use that as the total, so a concurrent Observe cannot
	// push a rank past the end.
	var counts [numBuckets]int64
	total := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return out
	}
	ranks := make([]int64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		r := int64(math.Ceil(q * float64(total)))
		if r < 1 {
			r = 1
		}
		ranks[i] = r
	}
	seen := int64(0)
	next := 0
	for idx := 0; idx < numBuckets && next < len(qs); idx++ {
		seen += counts[idx]
		for next < len(qs) && seen >= ranks[next] {
			out[next] = bucketUpper(idx)
			next++
		}
	}
	return out
}

// Snapshot returns the non-empty buckets as (upperBound, cumulativeCount)
// pairs plus total count and sum — the shape of a Prometheus histogram.
func (h *Histogram) Snapshot() (bounds []int64, cumulative []int64, count, sum int64) {
	running := int64(0)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		running += c
		bounds = append(bounds, bucketUpper(i))
		cumulative = append(cumulative, running)
	}
	return bounds, cumulative, running, h.sum.Load()
}

// --- registry -----------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered instrument. Name may carry Prometheus labels
// (`requests_total{endpoint="/search"}`); metrics sharing a base name are
// grouped under one HELP/TYPE header at exposition time.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	fn      GaugeFunc
	hist    *Histogram
	// histUnit divides histogram values at exposition time (1e9 renders
	// nanosecond observations as Prometheus-conventional seconds).
	histUnit float64
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Registration is synchronised; the metrics themselves are
// lock-free. Metrics are exported in registration order.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn GaugeFunc) {
	r.add(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers and returns a new histogram. unit divides the raw
// int64 observations at exposition time; pass 1e9 for nanosecond
// observations rendered as seconds (the Prometheus convention), or 1 to
// export raw values.
func (r *Registry) Histogram(name, help string, unit float64) *Histogram {
	if unit <= 0 {
		unit = 1
	}
	h := &Histogram{}
	r.add(&metric{name: name, help: help, kind: kindHistogram, hist: h, histUnit: unit})
	return h
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// baseName strips a label set from a metric name.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	headerDone := map[string]bool{}
	header := func(m *metric, typ string) {
		base := baseName(m.name)
		if headerDone[base] {
			return
		}
		headerDone[base] = true
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, m.help, base, typ)
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			header(m, "counter")
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case kindGauge:
			header(m, "gauge")
			fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Value())
		case kindGaugeFunc:
			header(m, "gauge")
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.fn()))
		case kindHistogram:
			header(m, "histogram")
			if err := writeHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits the cumulative `le` series of the non-empty buckets
// (a valid Prometheus histogram is any sorted cumulative subset plus +Inf).
func writeHistogram(w io.Writer, m *metric) error {
	bounds, cumulative, count, sum := m.hist.Snapshot()
	base, labels := splitLabels(m.name)
	for i, b := range bounds {
		le := formatFloat(float64(b) / m.histUnit)
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, le, cumulative[i]); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, count)
	suffix := ""
	if plain := trimComma(labels); plain != "" {
		suffix = "{" + plain + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(float64(sum)/m.histUnit))
	fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, count)
	return nil
}

// splitLabels splits `name{a="b"}` into base name and `a="b",` (trailing
// comma ready for appending the le label); labels is empty without braces.
func splitLabels(name string) (base, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			inner := name[i+1 : len(name)-1]
			if inner != "" {
				inner += ","
			}
			return name[:i], inner
		}
	}
	return name, ""
}

func trimComma(labels string) string {
	if n := len(labels); n > 0 && labels[n-1] == ',' {
		return labels[:n-1]
	}
	return labels
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// --- client-side summaries ----------------------------------------------------

// LatencySummary condenses a histogram of nanosecond latencies into the
// numbers a load report prints.
type LatencySummary struct {
	Count int64
	P50   int64 // nanoseconds
	P95   int64
	P99   int64
	Max   int64
	Mean  float64
}

// Summarize extracts a LatencySummary from a histogram of nanosecond
// observations.
func (h *Histogram) Summarize() LatencySummary {
	qs := h.Quantiles(0.50, 0.95, 0.99, 1.0)
	count := h.Count()
	out := LatencySummary{Count: count, P50: qs[0], P95: qs[1], P99: qs[2], Max: qs[3]}
	if count > 0 {
		out.Mean = float64(h.Sum()) / float64(count)
	}
	return out
}
