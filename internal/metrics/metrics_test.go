package metrics

import (
	"math/rand"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

func buildTree(t testing.TB, variant rtree.Variant, skinny bool, n int, seed int64) *rtree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree := rtree.MustNew(rtree.Config{Dims: 2, MaxEntries: 10, MinEntries: 4, Variant: variant})
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		var r geom.Rect
		if skinny {
			if i%2 == 0 {
				r = geom.R(x, y, x+rng.Float64()*50, y+rng.Float64()*1.5)
			} else {
				r = geom.R(x, y, x+rng.Float64()*1.5, y+rng.Float64()*50)
			}
		} else {
			r = geom.R(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
		}
		if _, err := tree.Insert(r, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

func TestTreeNodeStatsRanges(t *testing.T) {
	tree := buildTree(t, rtree.RStar, true, 1500, 1)
	s := TreeNodeStats(tree, 256, 7)
	if s.Nodes == 0 || s.LeafNodes == 0 {
		t.Fatal("no nodes measured")
	}
	if s.AvgOverlap < 0 || s.AvgOverlap > 1 {
		t.Errorf("AvgOverlap out of range: %g", s.AvgOverlap)
	}
	if s.AvgDeadSpace < 0 || s.AvgDeadSpace > 1 {
		t.Errorf("AvgDeadSpace out of range: %g", s.AvgDeadSpace)
	}
	if s.AvgLeafDeadSpace <= 0 {
		t.Error("skinny objects must produce leaf dead space")
	}
	// Skinny slivers leave most of each leaf empty, mirroring the paper's
	// observation of >= 60 % dead space.
	if s.AvgLeafDeadSpace < 0.4 {
		t.Errorf("expected substantial dead space on sliver data, got %.2f", s.AvgLeafDeadSpace)
	}
}

func TestDeadSpaceLowerForFatObjects(t *testing.T) {
	skinny := TreeNodeStats(buildTree(t, rtree.RStar, true, 1000, 2), 256, 7)
	fat := TreeNodeStats(buildTree(t, rtree.RStar, false, 1000, 2), 256, 7)
	if fat.AvgLeafDeadSpace >= skinny.AvgLeafDeadSpace {
		t.Errorf("fat objects (%.2f) should have less dead space than skinny ones (%.2f)",
			fat.AvgLeafDeadSpace, skinny.AvgLeafDeadSpace)
	}
}

func TestTreeNodeStatsDefaults(t *testing.T) {
	tree := buildTree(t, rtree.Quadratic, true, 200, 3)
	s := TreeNodeStats(tree, 0, 7) // default sample budget
	if s.Nodes == 0 {
		t.Fatal("default sample budget should still measure nodes")
	}
	empty := rtree.MustNew(rtree.DefaultConfig(2, rtree.Quadratic))
	if got := TreeNodeStats(empty, 100, 7); got.Nodes != 0 {
		t.Error("empty tree should measure zero nodes")
	}
}

func TestClippedDeadSpace(t *testing.T) {
	tree := buildTree(t, rtree.RStar, true, 1500, 4)
	idx, err := clipindex.New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	cs := ClippedDeadSpace(idx, 256, 11)
	if cs.Nodes == 0 {
		t.Fatal("no nodes measured")
	}
	if cs.AvgClipped <= 0 {
		t.Error("clipping should remove some volume on sliver data")
	}
	if cs.AvgClipped > cs.AvgDeadSpace+0.05 {
		t.Errorf("clipped volume (%.3f) cannot exceed dead space (%.3f) by more than sampling noise",
			cs.AvgClipped, cs.AvgDeadSpace)
	}
	if cs.ClippedShareOfDead <= 0 || cs.ClippedShareOfDead > 1 {
		t.Errorf("ClippedShareOfDead out of range: %g", cs.ClippedShareOfDead)
	}
	if cs.AvgRemaining < 0 {
		t.Error("AvgRemaining must not be negative")
	}
	if cs.AvgClipPoints <= 0 {
		t.Error("AvgClipPoints should be positive")
	}
}

func TestStairlineClipsMoreThanSkyline(t *testing.T) {
	tree := buildTree(t, rtree.Quadratic, true, 1200, 5)
	sky, err := clipindex.New(tree, core.Params{K: 8, Tau: 0.025, Method: core.MethodSkyline})
	if err != nil {
		t.Fatal(err)
	}
	sta, err := clipindex.New(tree, core.Params{K: 8, Tau: 0.025, Method: core.MethodStairline})
	if err != nil {
		t.Fatal(err)
	}
	skyStats := ClippedDeadSpace(sky, 256, 13)
	staStats := ClippedDeadSpace(sta, 256, 13)
	if staStats.AvgClipped < skyStats.AvgClipped-0.02 {
		t.Errorf("stairline clipping (%.3f) should be at least skyline clipping (%.3f)",
			staStats.AvgClipped, skyStats.AvgClipped)
	}
}

func TestMeasureIOOptimality(t *testing.T) {
	tree := buildTree(t, rtree.RRStar, true, 1500, 6)
	rng := rand.New(rand.NewSource(17))
	queries := make([]geom.Rect, 50)
	for i := range queries {
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		queries[i] = geom.MustRect(c, c.Add(geom.Pt(5, 5)))
	}
	opt := MeasureIOOptimality(tree, queries)
	if opt.Queries != 50 {
		t.Error("query count wrong")
	}
	if opt.LeafAccesses == 0 {
		t.Fatal("queries should access leaves")
	}
	if opt.UsefulAccesses > opt.LeafAccesses {
		t.Fatalf("useful accesses (%d) cannot exceed total accesses (%d)", opt.UsefulAccesses, opt.LeafAccesses)
	}
	r := opt.Ratio()
	if r <= 0 || r > 1 {
		t.Errorf("optimality ratio out of range: %g", r)
	}
	if (IOOptimality{}).Ratio() != 1 {
		t.Error("empty measurement should report ratio 1")
	}
}

func TestQueryIO(t *testing.T) {
	tree := buildTree(t, rtree.Quadratic, false, 500, 8)
	queries := []geom.Rect{geom.R(0, 0, 100, 100), geom.R(500, 500, 600, 600)}
	io := QueryIO(tree.Counter(), queries, func(q geom.Rect) {
		tree.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
	})
	if io.LeafReads <= 0 || io.DirReads < 0 {
		t.Errorf("implausible IO snapshot: %+v", io)
	}
}
