// Package metrics computes the node-quality statistics used throughout the
// paper's evaluation: average overlap within a node (Figure 1a), average
// dead space per node (Figures 1b and 10), the fraction of dead space
// removed by clipping (Figure 10), and query I/O optimality (Figure 1c).
//
// Dead space and overlap are estimated per node with seeded Monte-Carlo
// sampling against the node's direct children (object rectangles for leaves,
// child MBBs for directory nodes), which is exactly the space a clipped
// bounding box of that node can address. The sample budget is configurable;
// the defaults keep whole-tree statistics under a second for the harness
// scales.
//
// This package is offline paper-evaluation instrumentation, not runtime
// observability: it walks a tree on demand and is priced accordingly
// (Monte-Carlo sampling per node). Serving-time metrics — request counters,
// in-flight gauges, latency histograms, the /metrics endpoint of cbbserve —
// live in cbb/internal/telemetry, which is always-on and lock-cheap.
package metrics

import (
	"math/rand"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// DefaultSamplesPerNode is the Monte-Carlo budget per node used when the
// caller passes a non-positive sample count.
const DefaultSamplesPerNode = 512

// NodeStats aggregates per-node geometry statistics over a whole tree.
type NodeStats struct {
	// Nodes is the number of nodes measured.
	Nodes int
	// LeafNodes is how many of them are leaves.
	LeafNodes int
	// AvgOverlap is the average fraction of a node's volume covered by two
	// or more of its children (Figure 1a).
	AvgOverlap float64
	// AvgDeadSpace is the average fraction of a node's volume not covered by
	// any child (Figure 1b).
	AvgDeadSpace float64
	// AvgLeafDeadSpace restricts AvgDeadSpace to leaf nodes.
	AvgLeafDeadSpace float64
}

// TreeNodeStats measures overlap and dead space for every node of the tree.
func TreeNodeStats(t *rtree.Tree, samplesPerNode int, seed int64) NodeStats {
	if samplesPerNode <= 0 {
		samplesPerNode = DefaultSamplesPerNode
	}
	rng := rand.New(rand.NewSource(seed))
	var out NodeStats
	var sumOverlap, sumDead, sumLeafDead float64
	t.Walk(func(info rtree.NodeInfo) {
		if len(info.Children) == 0 || info.MBB.Volume() <= 0 {
			return
		}
		overlap, dead := nodeOverlapAndDeadSpace(info, samplesPerNode, rng)
		out.Nodes++
		sumOverlap += overlap
		sumDead += dead
		if info.Leaf {
			out.LeafNodes++
			sumLeafDead += dead
		}
	})
	if out.Nodes > 0 {
		out.AvgOverlap = sumOverlap / float64(out.Nodes)
		out.AvgDeadSpace = sumDead / float64(out.Nodes)
	}
	if out.LeafNodes > 0 {
		out.AvgLeafDeadSpace = sumLeafDead / float64(out.LeafNodes)
	}
	return out
}

// nodeOverlapAndDeadSpace estimates, for one node, the fraction of its
// volume covered by at least two children (overlap) and by no child (dead
// space).
func nodeOverlapAndDeadSpace(info rtree.NodeInfo, samples int, rng *rand.Rand) (overlap, dead float64) {
	dims := info.MBB.Dims()
	p := make(geom.Point, dims)
	overlapHits, deadHits := 0, 0
	for s := 0; s < samples; s++ {
		for d := 0; d < dims; d++ {
			p[d] = info.MBB.Lo[d] + rng.Float64()*(info.MBB.Hi[d]-info.MBB.Lo[d])
		}
		covering := 0
		for i := range info.Children {
			if info.Children[i].Rect.ContainsPoint(p) {
				covering++
				if covering >= 2 {
					break
				}
			}
		}
		switch {
		case covering == 0:
			deadHits++
		case covering >= 2:
			overlapHits++
		}
	}
	return float64(overlapHits) / float64(samples), float64(deadHits) / float64(samples)
}

// ClipStats aggregates how much of the dead space a clip table removes
// (Figure 10): total dead space, the clipped share, and the remaining share,
// all as fractions of node volume averaged over nodes.
type ClipStats struct {
	Nodes int
	// AvgDeadSpace is the average dead-space fraction per node.
	AvgDeadSpace float64
	// AvgClipped is the average fraction of node volume removed by clip
	// points.
	AvgClipped float64
	// AvgRemaining is AvgDeadSpace − AvgClipped (never negative).
	AvgRemaining float64
	// ClippedShareOfDead is AvgClipped / AvgDeadSpace (0 when there is no
	// dead space).
	ClippedShareOfDead float64
	// AvgClipPoints is the average number of stored clip points per node
	// (over nodes that have any).
	AvgClipPoints float64
}

// ClippedDeadSpace measures how much dead space the index's clip table
// removes, per node, averaged over all nodes.
func ClippedDeadSpace(idx *clipindex.Index, samplesPerNode int, seed int64) ClipStats {
	if samplesPerNode <= 0 {
		samplesPerNode = DefaultSamplesPerNode
	}
	rng := rand.New(rand.NewSource(seed))
	tree := idx.Tree()
	table := idx.Table()
	var out ClipStats
	var sumDead, sumClipped float64
	tree.Walk(func(info rtree.NodeInfo) {
		vol := info.MBB.Volume()
		if len(info.Children) == 0 || vol <= 0 {
			return
		}
		_, dead := nodeOverlapAndDeadSpace(info, samplesPerNode, rng)
		clipped := core.ClippedVolume(info.MBB, table[info.ID]) / vol
		out.Nodes++
		sumDead += dead
		sumClipped += clipped
	})
	if out.Nodes > 0 {
		out.AvgDeadSpace = sumDead / float64(out.Nodes)
		out.AvgClipped = sumClipped / float64(out.Nodes)
		out.AvgRemaining = out.AvgDeadSpace - out.AvgClipped
		if out.AvgRemaining < 0 {
			out.AvgRemaining = 0
		}
		if out.AvgDeadSpace > 0 {
			out.ClippedShareOfDead = out.AvgClipped / out.AvgDeadSpace
			if out.ClippedShareOfDead > 1 {
				out.ClippedShareOfDead = 1
			}
		}
	}
	out.AvgClipPoints = table.AvgClipPointsPerNode()
	return out
}

// IOOptimality reports, for a batch of queries, which fraction of the
// accessed leaf nodes actually contributed at least one result (Figure 1c:
// optimal / actual leaf accesses).
type IOOptimality struct {
	Queries        int
	LeafAccesses   int64
	UsefulAccesses int64
}

// Ratio returns useful / total leaf accesses (1 when nothing was accessed).
func (o IOOptimality) Ratio() float64 {
	if o.LeafAccesses == 0 {
		return 1
	}
	return float64(o.UsefulAccesses) / float64(o.LeafAccesses)
}

// MeasureIOOptimality runs the queries against the tree and compares actual
// leaf accesses with the minimal number of leaf accesses needed (the number
// of leaves that contain at least one object intersecting the query).
func MeasureIOOptimality(t *rtree.Tree, queries []geom.Rect) IOOptimality {
	out := IOOptimality{Queries: len(queries)}
	counter := t.Counter()
	for _, q := range queries {
		before := counter.Snapshot()
		t.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
		out.LeafAccesses += storage.Diff(before, counter.Snapshot()).LeafReads
		// Count the leaves that actually contain a result (the optimal
		// number of leaf accesses for this query).
		useful := int64(0)
		t.Walk(func(info rtree.NodeInfo) {
			if !info.Leaf {
				return
			}
			for i := range info.Children {
				if info.Children[i].Rect.Intersects(q) {
					useful++
					return
				}
			}
		})
		out.UsefulAccesses += useful
	}
	return out
}

// QueryIO runs a query batch against an arbitrary search function and
// reports the leaf and directory accesses charged to the counter.
func QueryIO(counter *storage.Counter, queries []geom.Rect, search func(geom.Rect)) storage.Snapshot {
	before := counter.Snapshot()
	for _, q := range queries {
		search(q)
	}
	return storage.Diff(before, counter.Snapshot())
}
