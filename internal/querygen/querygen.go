// Package querygen generates the range-query workloads of the paper's
// benchmark: hypercubic query windows centred at dithered object centres (so
// dense regions are queried most), sized to hit a target result cardinality.
// Three standard profiles are provided — QR0, QR1 and QR2 — retrieving
// approximately 1, 10 and 100 objects per query respectively.
package querygen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cbb/internal/geom"
)

// Profile identifies a query-selectivity profile.
type Profile int

// The three selectivity profiles of the benchmark.
const (
	// QR0 retrieves roughly one object per query (high selectivity).
	QR0 Profile = iota
	// QR1 retrieves roughly ten objects per query (medium selectivity).
	QR1
	// QR2 retrieves roughly one hundred objects per query (low selectivity).
	QR2
)

// String names the profile as in the paper.
func (p Profile) String() string {
	switch p {
	case QR0:
		return "QR0"
	case QR1:
		return "QR1"
	case QR2:
		return "QR2"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Target returns the approximate number of objects a query of this profile
// should retrieve.
func (p Profile) Target() int {
	switch p {
	case QR0:
		return 1
	case QR1:
		return 10
	case QR2:
		return 100
	default:
		return 1
	}
}

// AllProfiles lists QR0, QR1, QR2 in order.
func AllProfiles() []Profile { return []Profile{QR0, QR1, QR2} }

// Generator produces query rectangles over a fixed object set. It builds a
// coarse grid histogram of object centres once, then calibrates each query
// window's side length so the estimated number of intersected objects is
// close to the profile's target.
type Generator struct {
	objects  []geom.Rect
	universe geom.Rect
	dims     int
	grid     *gridHistogram
	rng      *rand.Rand
}

// New creates a generator over the given objects. The universe must contain
// all objects; the seed makes the workload reproducible.
func New(objects []geom.Rect, universe geom.Rect, seed int64) (*Generator, error) {
	if len(objects) == 0 {
		return nil, errors.New("querygen: need at least one object")
	}
	if !universe.Valid() || universe.Dims() != objects[0].Dims() {
		return nil, errors.New("querygen: invalid universe")
	}
	dims := objects[0].Dims()
	g := &Generator{
		objects:  objects,
		universe: universe.Clone(),
		dims:     dims,
		grid:     newGridHistogram(objects, universe),
		rng:      rand.New(rand.NewSource(seed)),
	}
	return g, nil
}

// Queries produces count query windows of the given profile.
func (g *Generator) Queries(p Profile, count int) []geom.Rect {
	out := make([]geom.Rect, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, g.Query(p))
	}
	return out
}

// Query produces a single query window of the given profile: a hypercube
// centred at a dithered object centre with a side length calibrated against
// the local object density.
func (g *Generator) Query(p Profile) geom.Rect {
	target := p.Target()
	// Pick a random object and dither its centre by a fraction of its size.
	obj := g.objects[g.rng.Intn(len(g.objects))]
	centre := obj.Center()
	for d := 0; d < g.dims; d++ {
		span := obj.Side(d) + 1
		centre[d] += (g.rng.Float64() - 0.5) * span
		centre[d] = clamp(centre[d], g.universe.Lo[d], g.universe.Hi[d])
	}
	side := g.calibrateSide(centre, target)
	return g.window(centre, side)
}

// calibrateSide binary-searches the window side length so that the grid
// estimate of intersected objects is close to the target.
func (g *Generator) calibrateSide(centre geom.Point, target int) float64 {
	maxSide := g.universe.Side(0)
	for d := 1; d < g.dims; d++ {
		if s := g.universe.Side(d); s > maxSide {
			maxSide = s
		}
	}
	lo, hi := maxSide*1e-6, maxSide
	for iter := 0; iter < 24; iter++ {
		mid := math.Sqrt(lo * hi) // geometric midpoint: sides span decades
		est := g.grid.estimate(g.window(centre, mid))
		if est < float64(target) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// window builds a hypercubic window of the given side centred at centre,
// clamped to the universe.
func (g *Generator) window(centre geom.Point, side float64) geom.Rect {
	lo := make(geom.Point, g.dims)
	hi := make(geom.Point, g.dims)
	for d := 0; d < g.dims; d++ {
		lo[d] = clamp(centre[d]-side/2, g.universe.Lo[d], g.universe.Hi[d])
		hi[d] = clamp(centre[d]+side/2, g.universe.Lo[d], g.universe.Hi[d])
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- density estimation --------------------------------------------------------

// gridHistogram is a coarse uniform grid over object centres used to
// estimate how many objects a window intersects without scanning the whole
// dataset for every calibration step.
type gridHistogram struct {
	universe geom.Rect
	dims     int
	cells    int // cells per dimension
	counts   []int
	total    int
}

func newGridHistogram(objects []geom.Rect, universe geom.Rect) *gridHistogram {
	dims := universe.Dims()
	// Aim for ~8 objects per occupied cell on average.
	cells := int(math.Ceil(math.Pow(float64(len(objects))/8.0, 1.0/float64(dims))))
	if cells < 4 {
		cells = 4
	}
	if cells > 256 {
		cells = 256
	}
	size := 1
	for d := 0; d < dims; d++ {
		size *= cells
	}
	h := &gridHistogram{universe: universe, dims: dims, cells: cells, counts: make([]int, size), total: len(objects)}
	for _, o := range objects {
		h.counts[h.cellIndex(o.Center())]++
	}
	return h
}

func (h *gridHistogram) cellCoord(v float64, d int) int {
	span := h.universe.Side(d)
	if span <= 0 {
		return 0
	}
	c := int((v - h.universe.Lo[d]) / span * float64(h.cells))
	if c < 0 {
		c = 0
	}
	if c >= h.cells {
		c = h.cells - 1
	}
	return c
}

func (h *gridHistogram) cellIndex(p geom.Point) int {
	idx := 0
	for d := 0; d < h.dims; d++ {
		idx = idx*h.cells + h.cellCoord(p[d], d)
	}
	return idx
}

// estimate returns the approximate number of object centres inside the
// window: full counts of fully covered cells plus fractional counts of
// partially covered boundary cells.
func (h *gridHistogram) estimate(q geom.Rect) float64 {
	loCell := make([]int, h.dims)
	hiCell := make([]int, h.dims)
	for d := 0; d < h.dims; d++ {
		loCell[d] = h.cellCoord(q.Lo[d], d)
		hiCell[d] = h.cellCoord(q.Hi[d], d)
	}
	var total float64
	idx := make([]int, h.dims)
	var walk func(d int, frac float64)
	walk = func(d int, frac float64) {
		if d == h.dims {
			flat := 0
			for i := 0; i < h.dims; i++ {
				flat = flat*h.cells + idx[i]
			}
			total += frac * float64(h.counts[flat])
			return
		}
		for c := loCell[d]; c <= hiCell[d]; c++ {
			idx[d] = c
			cellLo := h.universe.Lo[d] + float64(c)/float64(h.cells)*h.universe.Side(d)
			cellHi := h.universe.Lo[d] + float64(c+1)/float64(h.cells)*h.universe.Side(d)
			overlap := math.Min(q.Hi[d], cellHi) - math.Max(q.Lo[d], cellLo)
			width := cellHi - cellLo
			f := 1.0
			if width > 0 {
				f = overlap / width
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
			}
			walk(d+1, frac*f)
		}
	}
	walk(0, 1)
	return total
}
