package querygen

import (
	"bytes"
	"math"
	"testing"

	"cbb/internal/datasets"
	"cbb/internal/geom"
)

func TestProfileBasics(t *testing.T) {
	if QR0.String() != "QR0" || QR1.String() != "QR1" || QR2.String() != "QR2" {
		t.Error("profile names wrong")
	}
	if Profile(9).String() == "" {
		t.Error("unknown profile should render")
	}
	if QR0.Target() != 1 || QR1.Target() != 10 || QR2.Target() != 100 {
		t.Error("profile targets wrong")
	}
	if Profile(9).Target() != 1 {
		t.Error("unknown profile should default to 1")
	}
	if len(AllProfiles()) != 3 {
		t.Error("AllProfiles should list QR0..QR2")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, geom.R(0, 0, 1, 1), 1); err == nil {
		t.Error("no objects should error")
	}
	objs := []geom.Rect{geom.R(0, 0, 1, 1)}
	if _, err := New(objs, geom.Rect{}, 1); err == nil {
		t.Error("invalid universe should error")
	}
	if _, err := New(objs, geom.R(0, 0, 0, 1, 1, 1), 1); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestQueriesStayInUniverse(t *testing.T) {
	objs, _ := datasets.Generate("par02", 5000, 1)
	uni, _ := datasets.Universe("par02")
	g, err := New(objs, uni, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range AllProfiles() {
		for _, q := range g.Queries(p, 100) {
			if !q.Valid() || !uni.ContainsRect(q) {
				t.Fatalf("query %v escapes universe", q)
			}
		}
	}
}

func TestQueriesDeterministic(t *testing.T) {
	objs, _ := datasets.Generate("rea02", 3000, 2)
	uni, _ := datasets.Universe("rea02")
	a, _ := New(objs, uni, 11)
	b, _ := New(objs, uni, 11)
	qa := a.Queries(QR1, 50)
	qb := b.Queries(QR1, 50)
	for i := range qa {
		if !qa[i].Equal(qb[i]) {
			t.Fatalf("same seed produced different query %d", i)
		}
	}
}

// TestReplayByteIdentical is the load-replay contract cmd/cbbload depends
// on: two fully independent passes — dataset regeneration from the seed,
// generator construction, and an interleaved multi-profile query stream —
// must produce byte-for-byte identical float64 coordinates, not merely
// approximately equal ones. A replayed workload is then exactly the
// recorded workload.
func TestReplayByteIdentical(t *testing.T) {
	replay := func() []byte {
		objs, err := datasets.Generate("par02", 4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := datasets.Universe("par02")
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(objs, uni, 17)
		if err != nil {
			t.Fatal(err)
		}
		var buf []byte
		// Interleave profiles the way a mixed workload would.
		for i := 0; i < 300; i++ {
			q := g.Query(AllProfiles()[i%3])
			for _, p := range [...]geom.Point{q.Lo, q.Hi} {
				for _, v := range p {
					bits := math.Float64bits(v)
					for s := 0; s < 64; s += 8 {
						buf = append(buf, byte(bits>>s))
					}
				}
			}
		}
		return buf
	}
	if !bytes.Equal(replay(), replay()) {
		t.Fatal("same seed and config produced a different byte sequence on replay")
	}
}

// The central property: the three profiles actually produce increasing
// result cardinalities in the right ballparks when evaluated exactly.
func TestSelectivityCalibration(t *testing.T) {
	for _, name := range []string{"par02", "rea02", "axo03"} {
		t.Run(name, func(t *testing.T) {
			objs, _ := datasets.Generate(name, 20000, 3)
			uni, _ := datasets.Universe(name)
			g, err := New(objs, uni, 13)
			if err != nil {
				t.Fatal(err)
			}
			avg := func(p Profile) float64 {
				queries := g.Queries(p, 60)
				total := 0
				for _, q := range queries {
					for _, o := range objs {
						if o.Intersects(q) {
							total++
						}
					}
				}
				return float64(total) / float64(len(queries))
			}
			a0, a1, a2 := avg(QR0), avg(QR1), avg(QR2)
			t.Logf("%s: QR0=%.1f QR1=%.1f QR2=%.1f", name, a0, a1, a2)
			if !(a0 < a1 && a1 < a2) {
				t.Fatalf("selectivities not ordered: %.1f %.1f %.1f", a0, a1, a2)
			}
			// Calibration is approximate (grid-estimated, objects larger
			// than points); accept a generous band around the targets.
			if a1 < 2 || a1 > 80 {
				t.Errorf("QR1 average %.1f too far from target 10", a1)
			}
			if a2 < 25 || a2 > 800 {
				t.Errorf("QR2 average %.1f too far from target 100", a2)
			}
		})
	}
}

func TestGridHistogramEstimate(t *testing.T) {
	// A uniform grid of points: the estimate for a window covering a quarter
	// of the universe should be ~25 % of the objects.
	var objs []geom.Rect
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			objs = append(objs, geom.PointRect(geom.Pt(float64(x)*25+12, float64(y)*25+12)))
		}
	}
	uni := geom.R(0, 0, 1000, 1000)
	h := newGridHistogram(objs, uni)
	est := h.estimate(geom.R(0, 0, 500, 500))
	if math.Abs(est-400) > 60 {
		t.Errorf("quarter-window estimate %.0f, want ~400", est)
	}
	full := h.estimate(uni)
	if math.Abs(full-1600) > 1 {
		t.Errorf("full-window estimate %.0f, want 1600", full)
	}
}

func BenchmarkQueryGeneration(b *testing.B) {
	objs, _ := datasets.Generate("par02", 20000, 1)
	uni, _ := datasets.Universe("par02")
	g, _ := New(objs, uni, 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Query(QR1)
	}
}
