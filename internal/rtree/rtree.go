// Package rtree implements a disk-style R-tree framework and the four
// variants evaluated in the paper: the quadratic R-tree of Guttman
// (QR-tree), the Hilbert R-tree (HR-tree, bulk loaded along the Hilbert
// curve), the R*-tree of Beckmann et al., and the revised R*-tree
// (RR*-tree). All variants share the same node layout and query algorithm
// and differ only in how they distribute entries into nodes, exactly as the
// paper assumes when it plugs clipped bounding boxes into each of them.
//
// Nodes live in an in-memory arena; every node access during a query is
// routed through a storage.Counter so the evaluation can measure leaf and
// directory accesses, the paper's I/O metric. Trees can additionally be
// serialised page-by-page onto a storage.Pager for storage-breakdown
// experiments and persistence tests.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cbb/internal/geom"
	"cbb/internal/hilbert"
	"cbb/internal/storage"
)

// ErrReadOnly is returned by mutating operations on a tree that was
// explicitly opened read-only (OpenPaged with readonly set, e.g. from a
// snapshot on read-only media). Writable file-backed trees accept mutations
// and write dirty nodes back through FlushDirty.
var ErrReadOnly = errors.New("rtree: tree is read-only")

// Variant selects the node-organisation strategy.
type Variant int

// The four R-tree variants of the paper's evaluation.
const (
	// Quadratic is Guttman's original R-tree with quadratic-cost split
	// (the paper's QR-tree).
	Quadratic Variant = iota
	// Hilbert is the Hilbert R-tree: bulk loaded by Hilbert order of object
	// centres, with order-preserving dynamic inserts (the paper's HR-tree).
	Hilbert
	// RStar is the R*-tree: margin/overlap-driven splits and forced
	// reinsertion on first overflow per level.
	RStar
	// RRStar is the revised R*-tree: overlap-minimising subtree choice and
	// perimeter-weighted splits, without forced reinsertion.
	RRStar
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Quadratic:
		return "QR-tree"
	case Hilbert:
		return "HR-tree"
	case RStar:
		return "R*-tree"
	case RRStar:
		return "RR*-tree"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// AllVariants lists the four variants in the order the paper's figures use.
func AllVariants() []Variant { return []Variant{Quadratic, Hilbert, RStar, RRStar} }

// ObjectID identifies a data object stored in a leaf entry.
type ObjectID int64

// NodeID identifies a node in the tree arena. InvalidNode (-1) is the null
// reference.
type NodeID int32

// InvalidNode is the null node reference.
const InvalidNode NodeID = -1

// Entry is one slot of a node: a rectangle plus either a child node
// reference (directory nodes) or an object id (leaf nodes).
type Entry struct {
	Rect   geom.Rect
	Child  NodeID
	Object ObjectID
}

type node struct {
	id      NodeID
	parent  NodeID
	leaf    bool
	level   int // 0 = leaf level
	entries []Entry
	// boxes is the flat coordinate mirror of the entry rectangles: 2·dims
	// contiguous float64 per entry (Lo extents then Hi extents), in entry
	// order. The query hot path scans it instead of chasing the per-entry
	// Rect slices, so one node's coordinates occupy one contiguous block.
	// Every mutation of entries refreshes it through Tree.touch (and the
	// decode path builds it directly); Tree.Validate checks the mirror.
	boxes []float64
	// hilbertLHV is the largest Hilbert value of the subtree, maintained
	// only by the Hilbert variant.
	hilbertLHV uint64
}

// syncBoxes rebuilds the flat coordinate mirror from the entry rectangles.
func (n *node) syncBoxes(dims int) {
	need := len(n.entries) * 2 * dims
	if cap(n.boxes) < need {
		n.boxes = make([]float64, need)
	} else {
		n.boxes = n.boxes[:need]
	}
	off := 0
	for i := range n.entries {
		r := &n.entries[i].Rect
		copy(n.boxes[off:off+dims], r.Lo)
		copy(n.boxes[off+dims:off+2*dims], r.Hi)
		off += 2 * dims
	}
}

// mbbIntersects reports whether q intersects the MBB of the node's entries,
// scanning the flat mirror instead of materialising the MBB (n.mbb()
// allocates). An entry-less node keeps the legacy vacuous-truth semantics of
// the zero Rect: everything intersects it.
func (n *node) mbbIntersects(q geom.Rect, dims int) bool {
	if len(n.entries) == 0 {
		return true
	}
	for d := 0; d < dims; d++ {
		minLo := math.Inf(1)
		maxHi := math.Inf(-1)
		for off := 0; off < len(n.boxes); off += 2 * dims {
			if v := n.boxes[off+d]; v < minLo {
				minLo = v
			}
			if v := n.boxes[off+dims+d]; v > maxHi {
				maxHi = v
			}
		}
		if maxHi < q.Lo[d] || q.Hi[d] < minLo {
			return false
		}
	}
	return true
}

// mbbMinDistSq returns the squared minimum distance from p to the node's MBB
// without materialising the MBB, mirroring geom.Rect.MinDistSq.
func (n *node) mbbMinDistSq(p geom.Point, dims int) float64 {
	var s float64
	for d := 0; d < dims; d++ {
		minLo := math.Inf(1)
		maxHi := math.Inf(-1)
		for off := 0; off < len(n.boxes); off += 2 * dims {
			if v := n.boxes[off+d]; v < minLo {
				minLo = v
			}
			if v := n.boxes[off+dims+d]; v > maxHi {
				maxHi = v
			}
		}
		switch {
		case p[d] < minLo:
			dv := minLo - p[d]
			s += dv * dv
		case p[d] > maxHi:
			dv := p[d] - maxHi
			s += dv * dv
		}
	}
	return s
}

func (n *node) mbb() geom.Rect {
	var out geom.Rect
	for i := range n.entries {
		out = out.Union(n.entries[i].Rect)
	}
	return out
}

// Config describes an R-tree's shape-independent parameters.
type Config struct {
	// Dims is the dimensionality of all indexed rectangles (2 or 3 in the
	// paper's evaluation).
	Dims int
	// MaxEntries is the node capacity M.
	MaxEntries int
	// MinEntries is the minimum fill m (must satisfy 1 <= m <= M/2).
	MinEntries int
	// Variant selects the split / subtree-choice strategy.
	Variant Variant
	// Universe bounds the data space; it is required by the Hilbert variant
	// and harmless otherwise. When zero it defaults to a large symmetric box.
	Universe geom.Rect
	// HilbertBits is the Hilbert curve order (bits per dimension) used by
	// the Hilbert variant; defaults to 16.
	HilbertBits int
	// ReinsertFraction is the share of entries force-reinserted by the
	// R*-tree on the first overflow of a level (defaults to 0.3).
	ReinsertFraction float64
}

// DefaultConfig returns the configuration used by the evaluation harness:
// M = 50, m = 20 (40 % of M, as recommended for the R*-tree family),
// the requested variant, and a generous default universe.
func DefaultConfig(dims int, v Variant) Config {
	return Config{
		Dims:             dims,
		MaxEntries:       50,
		MinEntries:       20,
		Variant:          v,
		HilbertBits:      16,
		ReinsertFraction: 0.3,
	}
}

// Validate checks the configuration and fills in defaults for optional
// fields. It returns a usable copy.
func (c Config) withDefaults() (Config, error) {
	if c.Dims < 1 || c.Dims > geom.MaxDims {
		return c, fmt.Errorf("rtree: dims must be in [1, %d], got %d", geom.MaxDims, c.Dims)
	}
	if c.MaxEntries < 4 {
		return c, fmt.Errorf("rtree: MaxEntries must be at least 4, got %d", c.MaxEntries)
	}
	if c.MinEntries < 1 || c.MinEntries > c.MaxEntries/2 {
		return c, fmt.Errorf("rtree: MinEntries must be in [1, MaxEntries/2], got %d", c.MinEntries)
	}
	switch c.Variant {
	case Quadratic, Hilbert, RStar, RRStar:
	default:
		return c, fmt.Errorf("rtree: unknown variant %d", int(c.Variant))
	}
	if c.HilbertBits <= 0 {
		c.HilbertBits = 16
	}
	if c.Dims*c.HilbertBits > hilbert.MaxTotalBits {
		c.HilbertBits = hilbert.MaxTotalBits / c.Dims
	}
	if c.ReinsertFraction <= 0 || c.ReinsertFraction >= 0.5 {
		c.ReinsertFraction = 0.3
	}
	if c.Universe.IsZero() {
		lo := make(geom.Point, c.Dims)
		hi := make(geom.Point, c.Dims)
		for i := 0; i < c.Dims; i++ {
			lo[i], hi[i] = -1e6, 1e6
		}
		c.Universe = geom.Rect{Lo: lo, Hi: hi}
	}
	if !c.Universe.Valid() || c.Universe.Dims() != c.Dims {
		return c, errors.New("rtree: universe rectangle is invalid or has wrong dimensionality")
	}
	return c, nil
}

// Tree is an R-tree of one of the four variants.
//
// Concurrency: a Tree is not safe for concurrent mutation, but once
// construction and updates have finished any number of goroutines may run
// Search, SearchFiltered, Count, NearestNeighbors, Walk, Node, and the join
// algorithms concurrently. The read path touches only immutable node state,
// the atomic I/O counter, and the (lock-striped) optional buffer pool.
// SetCounter and SetBufferPool must not race with readers; attach them
// before the concurrent phase starts.
type Tree struct {
	cfg     Config
	nodes   []*node
	free    []NodeID
	root    NodeID
	size    int
	height  int // number of levels; 1 = root is a leaf
	counter *storage.Counter
	pool    *storage.BufferPool // optional, attached via SetBufferPool
	curve   *hilbert.Curve

	// File-backed mode, set up by OpenPaged or AttachStore: nodes are
	// faulted into the arena on first access from src, under arenaMu, and
	// mutated nodes are tracked in src.dirty until FlushDirty writes them
	// back to the page store. src is nil for ordinary in-memory trees, whose
	// arena is accessed without locking.
	src      *pageSource
	arenaMu  sync.RWMutex
	faultErr error // first page fault failure, sticky; guarded by arenaMu
}

// pageSource is the storage binding of a file-backed tree: where each node
// lives in the page store, which nodes have been mutated since the last
// flush (the dirty set), and which pages await release because their node
// was dissolved.
type pageSource struct {
	store    storage.PageStore
	pages    map[NodeID]storage.PageID
	readonly bool
	hydrated bool // whole tree materialised; parents and LHVs are valid
	dirty    map[NodeID]struct{}
	freed    []storage.PageID
}

// New creates an empty tree. The tree uses its own private I/O counter; use
// SetCounter to share one across trees.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, root: InvalidNode, counter: &storage.Counter{}}
	if cfg.Variant == Hilbert {
		c, err := hilbert.New(cfg.Universe, cfg.HilbertBits)
		if err != nil {
			return nil, fmt.Errorf("rtree: building hilbert curve: %w", err)
		}
		t.curve = c
	}
	return t, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Variant returns the tree's variant.
func (t *Tree) Variant() Variant { return t.cfg.Variant }

// Dims returns the dimensionality of indexed rectangles.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree, 1 when the root
// is a leaf).
func (t *Tree) Height() int { return t.height }

// Counter returns the I/O counter node accesses are charged to.
func (t *Tree) Counter() *storage.Counter { return t.counter }

// SetCounter replaces the I/O counter (for sharing across trees in joins).
func (t *Tree) SetCounter(c *storage.Counter) {
	if c != nil {
		t.counter = c
	}
}

// SetBufferPool attaches an LRU buffer pool that every node access is routed
// through, emulating a bounded main-memory buffer in front of the simulated
// disk. Pass nil to detach. A pool tracks the node ids of one tree; do not
// share one pool across trees. Attach before any concurrent reads start.
func (t *Tree) SetBufferPool(p *storage.BufferPool) { t.pool = p }

// BufferPool returns the attached buffer pool, or nil.
func (t *Tree) BufferPool() *storage.BufferPool { return t.pool }

// ResetIO zeroes the I/O counter and, when a buffer pool is attached, empties
// the pool and zeroes its hit/miss statistics as well (a cold start). Batch
// measurements must use this instead of Counter().Reset() so pool state
// cannot leak from one measured run into the next.
func (t *Tree) ResetIO() {
	t.counter.Reset()
	if t.pool != nil {
		t.pool.Reset()
	}
}

// ChargeRead records one access to the node with the given id: a leaf or
// directory read on c (the tree's own counter when c is nil) plus a touch of
// the attached buffer pool, if any. The search and join paths funnel every
// node access through here so counter and pool accounting cannot diverge.
func (t *Tree) ChargeRead(id NodeID, leaf bool, c *storage.Counter) {
	if c == nil {
		c = t.counter
	}
	if leaf {
		c.LeafRead(1)
	} else {
		c.DirRead(1)
	}
	if t.pool != nil {
		// PageID zero is invalid, node ids start at zero: offset by one.
		t.pool.Touch(storage.PageID(uint64(id) + 1))
	}
}

// RootID returns the id of the root node, or InvalidNode for an empty tree.
func (t *Tree) RootID() NodeID { return t.root }

// ReadOnly reports whether the tree rejects mutations with ErrReadOnly: it
// was opened read-only, or its page store cannot be written.
func (t *Tree) ReadOnly() bool { return t.src != nil && t.src.readonly }

// FileBacked reports whether the tree is bound to a page store (opened with
// OpenPaged or attached with AttachStore).
func (t *Tree) FileBacked() bool { return t.src != nil }

// Dirty reports whether a file-backed tree has node mutations that
// FlushDirty has not yet written back to the page store. In-memory trees
// are never dirty.
func (t *Tree) Dirty() bool {
	if t.src == nil {
		return false
	}
	return len(t.src.dirty) > 0 || len(t.src.freed) > 0
}

// Err returns the first page-fault failure of a file-backed tree (a page
// that could not be read or decoded on demand), or nil. Queries treat a
// faulted node as empty rather than panicking; callers that need certainty
// should check Err after a batch, or call Materialize up front.
func (t *Tree) Err() error {
	if t.src == nil {
		return nil
	}
	t.arenaMu.RLock()
	defer t.arenaMu.RUnlock()
	return t.faultErr
}

// RootMBBIntersects reports whether q intersects the MBB of the root node,
// scanning the root's flat coordinate mirror without charging I/O or
// allocating. It returns false for an empty tree and true when the root
// cannot be read (so callers fall through to the regular search path, which
// records the fault). The clipped search layer uses it for its root pruning
// test; q must have the tree's dimensionality.
func (t *Tree) RootMBBIntersects(q geom.Rect) bool {
	if t.root == InvalidNode {
		return false
	}
	n := t.node(t.root)
	if n == nil {
		return true
	}
	return n.mbbIntersects(q, t.cfg.Dims)
}

// Bounds returns the MBB of all indexed objects (zero Rect when empty).
func (t *Tree) Bounds() geom.Rect {
	if t.root == InvalidNode {
		return geom.Rect{}
	}
	n := t.node(t.root)
	if n == nil {
		return geom.Rect{}
	}
	return n.mbb()
}

// --- node arena management -------------------------------------------------

func (t *Tree) newNode(leaf bool, level int) *node {
	var id NodeID
	var nd *node
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		nd = t.nodes[id]
		*nd = node{id: id, parent: InvalidNode, leaf: leaf, level: level}
	} else {
		id = NodeID(len(t.nodes))
		nd = &node{id: id, parent: InvalidNode, leaf: leaf, level: level}
		t.nodes = append(t.nodes, nd)
	}
	t.touch(nd)
	return nd
}

func (t *Tree) freeNode(id NodeID) {
	t.nodes[id].entries = nil
	t.nodes[id].boxes = nil
	t.free = append(t.free, id)
	if t.src != nil {
		// The node's page (if it has one) is released on the next flush; a
		// later newNode reusing this arena id allocates a fresh page with
		// the right kind.
		delete(t.src.dirty, id)
		if pid, ok := t.src.pages[id]; ok {
			t.src.freed = append(t.src.freed, pid)
			delete(t.src.pages, id)
		}
	}
}

// touch records that a node's persistent state (entries, leaf flag, level)
// changed: the next FlushDirty writes it back (file-backed trees), and the
// flat coordinate mirror is refreshed (all trees). Every entry mutation site
// calls it — the single node-access layer shared by both modes.
func (t *Tree) touch(n *node) {
	if t.src != nil {
		t.src.dirty[n.id] = struct{}{}
	}
	n.syncBoxes(t.cfg.Dims)
}

// faultFailure carries a node-access failure out of the deep mutation
// recursion; Insert, Delete, and BulkLoad recover it into an error.
type faultFailure struct{ err error }

// mustNode is the node accessor of the mutation paths: unlike node (which
// lets queries degrade gracefully), a missing or unreadable node aborts the
// mutation via a recoverable panic. After ensureMutable has hydrated a
// file-backed tree this can only trip on genuine corruption.
func (t *Tree) mustNode(id NodeID) *node {
	n := t.node(id)
	if n == nil {
		err := t.Err()
		if err == nil {
			err = fmt.Errorf("rtree: node %d does not exist", id)
		}
		panic(faultFailure{err})
	}
	return n
}

// recoverFault converts a faultFailure panic into *errp; other panics
// propagate.
func recoverFault(errp *error) {
	if r := recover(); r != nil {
		ff, ok := r.(faultFailure)
		if !ok {
			panic(r)
		}
		*errp = ff.err
	}
}

// ensureMutable gates every mutation. In-memory trees are always mutable.
// A read-only file-backed tree fails with ErrReadOnly. A writable
// file-backed tree is hydrated on its first mutation: every node is faulted
// in and parent pointers (and Hilbert LHVs) — which the page layout does not
// store — are reconstructed, after which the mutation algorithms run exactly
// as in memory and mark what they change in the dirty set.
func (t *Tree) ensureMutable() error {
	if t.src == nil {
		return nil
	}
	if t.src.readonly {
		return ErrReadOnly
	}
	if t.src.hydrated {
		return nil
	}
	if err := t.Materialize(); err != nil {
		return fmt.Errorf("rtree: hydrating file-backed tree for mutation: %w", err)
	}
	if t.cfg.Variant == Hilbert {
		t.recomputeHilbertLHVs()
	}
	t.src.hydrated = true
	return nil
}

// recomputeHilbertLHVs rebuilds every node's cached largest-Hilbert-value
// bottom-up (levels ascending), as Load does after decoding pages.
func (t *Tree) recomputeHilbertLHVs() {
	if t.curve == nil {
		return
	}
	for level := 0; level < t.height; level++ {
		for _, n := range t.nodes {
			if n != nil && n.level == level {
				t.updateHilbertLHV(n)
			}
		}
	}
}

// node returns the node with the given id. For an ordinary in-memory tree
// this is a plain arena lookup; for a file-backed tree the node is faulted
// in from the page store on first access, under arenaMu, so any number of
// concurrent readers can share one lazily loaded tree. It returns nil when
// the id is out of range, freed, or its page cannot be read (the failure is
// recorded and exposed via Err).
func (t *Tree) node(id NodeID) *node {
	if t.src == nil {
		return t.nodes[id]
	}
	if id < 0 || int(id) >= len(t.nodes) {
		t.setFaultErr(fmt.Errorf("rtree: node id %d out of range", id))
		return nil
	}
	t.arenaMu.RLock()
	n := t.nodes[id]
	t.arenaMu.RUnlock()
	if n != nil {
		return n
	}
	return t.fault(id)
}

// fault loads one node page from the page store into the arena. The disk
// read and decode run outside the lock so concurrent cold readers fault
// different pages in parallel; only the install re-checks under the write
// lock (two goroutines racing on the same node decode it twice, harmlessly
// — the loser's copy is discarded).
func (t *Tree) fault(id NodeID) *node {
	pid, ok := t.src.pages[id]
	if !ok {
		t.setFaultErr(fmt.Errorf("rtree: node %d has no page in the snapshot", id))
		return nil
	}
	buf, _, err := t.src.store.Read(pid)
	if err != nil {
		t.setFaultErr(fmt.Errorf("rtree: reading page %d for node %d: %w", pid, id, err))
		return nil
	}
	n, err := decodeNode(buf, t.cfg.Dims)
	if err != nil {
		t.setFaultErr(fmt.Errorf("rtree: decoding page %d for node %d: %w", pid, id, err))
		return nil
	}
	if n.id != id {
		t.setFaultErr(fmt.Errorf("rtree: page %d claims node id %d, expected %d", pid, n.id, id))
		return nil
	}
	t.arenaMu.Lock()
	defer t.arenaMu.Unlock()
	if cached := t.nodes[id]; cached != nil {
		return cached
	}
	t.nodes[id] = n
	return n
}

func (t *Tree) setFaultErr(err error) {
	t.arenaMu.Lock()
	t.faultErrLocked(err)
	t.arenaMu.Unlock()
}

// faultErrLocked records the first fault failure; arenaMu must be held.
func (t *Tree) faultErrLocked(err error) {
	if t.faultErr == nil {
		t.faultErr = err
	}
}

// NodeInfo is a read-only description of one node, exposed for the clip
// layer, statistics, and tests.
type NodeInfo struct {
	ID       NodeID
	Parent   NodeID
	Leaf     bool
	Level    int
	MBB      geom.Rect
	Children []Entry
}

// Node returns a snapshot of the node with the given id. The returned
// Children slice aliases internal storage and must not be modified. On a
// file-backed tree the node is faulted in on demand, and Parent is
// InvalidNode until Materialize has run (parents are not stored in the
// Figure 4a page layout).
func (t *Tree) Node(id NodeID) (NodeInfo, error) {
	if id < 0 || int(id) >= len(t.nodes) {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	n := t.node(id)
	if n == nil {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	return NodeInfo{
		ID: n.id, Parent: n.parent, Leaf: n.leaf, Level: n.level,
		MBB: n.mbb(), Children: n.entries,
	}, nil
}

// Walk visits every live node of the tree top-down, calling fn with a
// snapshot of each. It does not charge I/O; it is intended for construction
// of clip tables, statistics, and validation.
func (t *Tree) Walk(fn func(NodeInfo)) {
	if t.root == InvalidNode {
		return
	}
	stack := []NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.node(id)
		if n == nil {
			continue
		}
		fn(NodeInfo{ID: n.id, Parent: n.parent, Leaf: n.leaf, Level: n.level, MBB: n.mbb(), Children: n.entries})
		if !n.leaf {
			for i := range n.entries {
				stack = append(stack, n.entries[i].Child)
			}
		}
	}
}

// NodeCount returns the number of live nodes (directory + leaf).
func (t *Tree) NodeCount() (dir, leaf int) {
	t.Walk(func(info NodeInfo) {
		if info.Leaf {
			leaf++
		} else {
			dir++
		}
	})
	return dir, leaf
}

// --- search ------------------------------------------------------------------

// Search finds every object whose rectangle intersects q and passes it to
// visit; traversal stops early if visit returns false. Node accesses are
// charged to the tree's counter (directory and leaf reads separately).
//
// An invalid query, or one whose dimensionality differs from the tree's,
// matches nothing. (Previously a query with extra dimensions had them
// silently ignored on the unclipped path and panicked on the clipped path;
// both now uniformly return no results.)
func (t *Tree) Search(q geom.Rect, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFiltered(q, nil, visit)
}

// SearchCounted is Search with the node accesses charged to an explicit
// counter instead of the tree's own (the tree's counter when c is nil).
// Parallel executors give every worker goroutine a private counter so that
// per-worker I/O can be reported exactly and merged deterministically.
func (t *Tree) SearchCounted(q geom.Rect, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFilteredCounted(q, nil, c, visit)
}

// SearchFiltered is Search with an optional per-node admission filter: when
// filter is non-nil it is consulted before a child node is visited, with
// that child's id and MBB (the rectangle stored in the parent entry);
// returning false skips the child (and saves its I/O). The clipped R-tree
// layer uses the filter to apply Algorithm 2 with each child's clip points.
// The root is always visited.
func (t *Tree) SearchFiltered(q geom.Rect, filter func(NodeID, geom.Rect) bool, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFilteredCounted(q, filter, nil, visit)
}

// SearchFilteredCounted is SearchFiltered with the node accesses charged to
// an explicit counter (the tree's own when c is nil).
func (t *Tree) SearchFilteredCounted(q geom.Rect, filter func(NodeID, geom.Rect) bool, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t.searchIter(q, filter, nil, c, visit)
}

// Admitter is the allocation-free variant of the SearchFiltered admission
// hook: it is consulted with a candidate child's id, the child's MBB (the
// rectangle stored in the parent entry), and the query before the child is
// visited; returning false skips the child and saves its I/O. The clipped
// R-tree layer implements it to run Algorithm 2 with the child's clip points.
// Unlike a filter closure, an Admitter can be a long-lived value, so a
// steady-state search performs no heap allocations.
type Admitter interface {
	AdmitChild(child NodeID, childMBB geom.Rect, q geom.Rect) bool
}

// SearchAdmitted is SearchFiltered with the admission test supplied as an
// Admitter instead of a closure. The root is always visited.
func (t *Tree) SearchAdmitted(q geom.Rect, adm Admitter, visit func(ObjectID, geom.Rect) bool) {
	t.searchIter(q, nil, adm, nil, visit)
}

// SearchAdmittedCounted is SearchAdmitted with the node accesses charged to
// an explicit counter (the tree's own when c is nil).
func (t *Tree) SearchAdmittedCounted(q geom.Rect, adm Admitter, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t.searchIter(q, nil, adm, c, visit)
}

// searchScratch is the pooled per-search working state: the explicit DFS
// stack and the query extents copied into fixed flat arrays so the hot loop
// compares contiguous memory against contiguous memory.
type searchScratch struct {
	stack []NodeID
	qlo   [geom.MaxDims]float64
	qhi   [geom.MaxDims]float64
}

var searchScratchPool = sync.Pool{
	New: func() interface{} { return &searchScratch{stack: make([]NodeID, 0, 64)} },
}

// searchIter is the query hot path shared by Search, SearchFiltered,
// SearchAdmitted, and the batch executor: an iterative depth-first descent
// over an explicit pooled stack. Children are pushed in reverse entry order,
// so nodes are processed — and I/O is charged — in exactly the order the
// previous recursive implementation used; results, visit order, and leaf/
// directory access counts are bit-identical. In steady state it performs no
// heap allocations.
//
// At most one of filter and adm is non-nil.
func (t *Tree) searchIter(q geom.Rect, filter func(NodeID, geom.Rect) bool, adm Admitter, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	if t.root == InvalidNode || !q.Valid() || q.Dims() != t.cfg.Dims {
		return
	}
	if c == nil {
		c = t.counter
	}
	dims := t.cfg.Dims
	sc := searchScratchPool.Get().(*searchScratch)
	copy(sc.qlo[:dims], q.Lo)
	copy(sc.qhi[:dims], q.Hi)
	stack := append(sc.stack[:0], t.root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.node(id)
		if n == nil {
			continue // unreadable page on a file-backed tree; recorded in Err
		}
		boxes := n.boxes
		if n.leaf {
			t.ChargeRead(n.id, true, c)
			off := 0
			for i := range n.entries {
				if boxHits(boxes, off, dims, &sc.qlo, &sc.qhi) {
					if !visit(n.entries[i].Object, n.entries[i].Rect) {
						sc.stack = stack[:0]
						searchScratchPool.Put(sc)
						return
					}
				}
				off += 2 * dims
			}
			continue
		}
		t.ChargeRead(n.id, false, c)
		base := len(stack)
		off := 0
		for i := range n.entries {
			if boxHits(boxes, off, dims, &sc.qlo, &sc.qhi) {
				e := &n.entries[i]
				switch {
				case filter != nil && !filter(e.Child, e.Rect):
				case adm != nil && !adm.AdmitChild(e.Child, e.Rect, q):
				default:
					stack = append(stack, e.Child)
				}
			}
			off += 2 * dims
		}
		// Reverse the admitted children so the first entry is popped first,
		// preserving the recursive depth-first visit order.
		for i, j := base, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	sc.stack = stack[:0]
	searchScratchPool.Put(sc)
}

// boxHits reports whether the entry box starting at boxes[off] (dims Lo
// extents followed by dims Hi extents) intersects the query extents.
func boxHits(boxes []float64, off, dims int, qlo, qhi *[geom.MaxDims]float64) bool {
	for d := 0; d < dims; d++ {
		if boxes[off+dims+d] < qlo[d] || qhi[d] < boxes[off+d] {
			return false
		}
	}
	return true
}

// Count returns the number of objects intersecting q (convenience wrapper
// over Search).
func (t *Tree) Count(q geom.Rect) int {
	n := 0
	t.Search(q, func(ObjectID, geom.Rect) bool { n++; return true })
	return n
}

// All returns every object in the tree (id and rectangle), in no particular
// order, without charging I/O.
func (t *Tree) All() []Entry {
	var out []Entry
	t.Walk(func(info NodeInfo) {
		if info.Leaf {
			out = append(out, info.Children...)
		}
	})
	return out
}
