// Package rtree implements a disk-style R-tree framework and the four
// variants evaluated in the paper: the quadratic R-tree of Guttman
// (QR-tree), the Hilbert R-tree (HR-tree, bulk loaded along the Hilbert
// curve), the R*-tree of Beckmann et al., and the revised R*-tree
// (RR*-tree). All variants share the same node layout and query algorithm
// and differ only in how they distribute entries into nodes, exactly as the
// paper assumes when it plugs clipped bounding boxes into each of them.
//
// Nodes live in an in-memory arena; every node access during a query is
// routed through a storage.Counter so the evaluation can measure leaf and
// directory accesses, the paper's I/O metric. Trees can additionally be
// serialised page-by-page onto a storage.Pager for storage-breakdown
// experiments and persistence tests.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"cbb/internal/geom"
	"cbb/internal/hilbert"
	"cbb/internal/storage"
)

// ErrReadOnly is returned by mutating operations on a tree that was
// explicitly opened read-only (OpenPaged with readonly set, e.g. from a
// snapshot on read-only media). Writable file-backed trees accept mutations
// and write dirty nodes back through FlushDirty.
var ErrReadOnly = errors.New("rtree: tree is read-only")

// Variant selects the node-organisation strategy.
type Variant int

// The four R-tree variants of the paper's evaluation.
const (
	// Quadratic is Guttman's original R-tree with quadratic-cost split
	// (the paper's QR-tree).
	Quadratic Variant = iota
	// Hilbert is the Hilbert R-tree: bulk loaded by Hilbert order of object
	// centres, with order-preserving dynamic inserts (the paper's HR-tree).
	Hilbert
	// RStar is the R*-tree: margin/overlap-driven splits and forced
	// reinsertion on first overflow per level.
	RStar
	// RRStar is the revised R*-tree: overlap-minimising subtree choice and
	// perimeter-weighted splits, without forced reinsertion.
	RRStar
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case Quadratic:
		return "QR-tree"
	case Hilbert:
		return "HR-tree"
	case RStar:
		return "R*-tree"
	case RRStar:
		return "RR*-tree"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// AllVariants lists the four variants in the order the paper's figures use.
func AllVariants() []Variant { return []Variant{Quadratic, Hilbert, RStar, RRStar} }

// ObjectID identifies a data object stored in a leaf entry.
type ObjectID int64

// NodeID identifies a node in the tree arena. InvalidNode (-1) is the null
// reference.
type NodeID int32

// InvalidNode is the null node reference.
const InvalidNode NodeID = -1

// Entry is one slot of a node: a rectangle plus either a child node
// reference (directory nodes) or an object id (leaf nodes).
type Entry struct {
	Rect   geom.Rect
	Child  NodeID
	Object ObjectID
}

type node struct {
	id     NodeID
	parent NodeID
	leaf   bool
	level  int // 0 = leaf level
	// born is the writer epoch that created this node object (creation,
	// clone, or decode). A node whose born epoch predates the writer's
	// current batch belongs to a published version and is immutable: the
	// writer must clone it (Tree.mutable) before changing entries, boxes,
	// leaf, or level. The parent pointer and the cached Hilbert LHV are
	// writer-private metadata the read paths never consult, so they may be
	// refreshed in place on shared node objects.
	born    uint64
	entries []Entry
	// boxes is the flat coordinate mirror of the entry rectangles: 2·dims
	// contiguous float64 per entry (Lo extents then Hi extents), in entry
	// order. The query hot path scans it instead of chasing the per-entry
	// Rect slices, so one node's coordinates occupy one contiguous block.
	// Every mutation of entries refreshes it through Tree.touch (and the
	// decode path builds it directly); Tree.Validate checks the mirror.
	boxes []float64
	// qmbb and qplanes are the quantised SoA filter layer (see quant.go):
	// qmbb holds the node MBB the planes are quantised against (dims Lo
	// extents then dims Hi extents, like one boxes record), and qplanes holds
	// the 16-bit grid coordinates of the entry bounds in dimension-major SoA
	// order (lo plane then hi plane per dimension), packed four lanes per
	// uint64 word. The scan kernels test entries against these planes first
	// and touch boxes only for survivors. Maintained by syncBoxes wherever
	// boxes is; the v2 fault-in path installs the page's stored grid
	// coordinates instead (bit-identical pruning across stores — see
	// decodeNodeV2).
	qmbb    []float64
	qplanes []uint64
	// hilbertLHV is the largest Hilbert value of the subtree, maintained
	// only by the Hilbert variant.
	hilbertLHV uint64
	// encSize is the node's encoded page size in bytes: the exact stored
	// size for nodes decoded from a snapshot, or the v1 layout size for
	// in-memory nodes (refreshed by syncBoxes on every mutation). Byte-budget
	// buffer pools charge residency by it, so compressed and raw pages share
	// one budget honestly.
	encSize int32
}

// syncBoxes rebuilds the flat coordinate mirror — and the quantised SoA
// planes derived from it — from the entry rectangles.
func (n *node) syncBoxes(dims int) {
	n.syncMirror(dims)
	n.syncPlanes(dims)
	n.encSize = int32(nodeHeaderBytes + len(n.entries)*EntryBytes(dims))
}

// syncMirror rebuilds only the flat float64 mirror from the entry
// rectangles. decodeNodeV2's directory branch uses it directly because it
// installs the page's stored grid coordinates as the planes rather than
// requantising (see quant.go).
func (n *node) syncMirror(dims int) {
	need := len(n.entries) * 2 * dims
	if cap(n.boxes) < need {
		n.boxes = make([]float64, need)
	} else {
		n.boxes = n.boxes[:need]
	}
	off := 0
	for i := range n.entries {
		r := &n.entries[i].Rect
		copy(n.boxes[off:off+dims], r.Lo)
		copy(n.boxes[off+dims:off+2*dims], r.Hi)
		off += 2 * dims
	}
}

// mbbIntersects reports whether q intersects the MBB of the node's entries,
// scanning the flat mirror instead of materialising the MBB (n.mbb()
// allocates). An entry-less node keeps the legacy vacuous-truth semantics of
// the zero Rect: everything intersects it.
func (n *node) mbbIntersects(q geom.Rect, dims int) bool {
	if len(n.entries) == 0 {
		return true
	}
	for d := 0; d < dims; d++ {
		minLo := math.Inf(1)
		maxHi := math.Inf(-1)
		for off := 0; off < len(n.boxes); off += 2 * dims {
			if v := n.boxes[off+d]; v < minLo {
				minLo = v
			}
			if v := n.boxes[off+dims+d]; v > maxHi {
				maxHi = v
			}
		}
		if maxHi < q.Lo[d] || q.Hi[d] < minLo {
			return false
		}
	}
	return true
}

// mbbMinDistSq returns the squared minimum distance from p to the node's MBB
// without materialising the MBB, mirroring geom.Rect.MinDistSq.
func (n *node) mbbMinDistSq(p geom.Point, dims int) float64 {
	var s float64
	for d := 0; d < dims; d++ {
		minLo := math.Inf(1)
		maxHi := math.Inf(-1)
		for off := 0; off < len(n.boxes); off += 2 * dims {
			if v := n.boxes[off+d]; v < minLo {
				minLo = v
			}
			if v := n.boxes[off+dims+d]; v > maxHi {
				maxHi = v
			}
		}
		switch {
		case p[d] < minLo:
			dv := minLo - p[d]
			s += dv * dv
		case p[d] > maxHi:
			dv := p[d] - maxHi
			s += dv * dv
		}
	}
	return s
}

func (n *node) mbb() geom.Rect {
	if len(n.entries) == 0 {
		return geom.Rect{}
	}
	// One fresh rectangle extended in place, instead of one Union allocation
	// per entry: mbb is called for every node a mutation or walk touches.
	out := n.entries[0].Rect.Clone()
	for i := 1; i < len(n.entries); i++ {
		out = out.Extend(n.entries[i].Rect)
	}
	return out
}

// Config describes an R-tree's shape-independent parameters.
type Config struct {
	// Dims is the dimensionality of all indexed rectangles (2 or 3 in the
	// paper's evaluation).
	Dims int
	// MaxEntries is the node capacity M.
	MaxEntries int
	// MinEntries is the minimum fill m (must satisfy 1 <= m <= M/2).
	MinEntries int
	// Variant selects the split / subtree-choice strategy.
	Variant Variant
	// Universe bounds the data space; it is required by the Hilbert variant
	// and harmless otherwise. When zero it defaults to a large symmetric box.
	Universe geom.Rect
	// HilbertBits is the Hilbert curve order (bits per dimension) used by
	// the Hilbert variant; defaults to 16.
	HilbertBits int
	// ReinsertFraction is the share of entries force-reinserted by the
	// R*-tree on the first overflow of a level (defaults to 0.3).
	ReinsertFraction float64
}

// DefaultConfig returns the configuration used by the evaluation harness:
// M = 50, m = 20 (40 % of M, as recommended for the R*-tree family),
// the requested variant, and a generous default universe.
func DefaultConfig(dims int, v Variant) Config {
	return Config{
		Dims:             dims,
		MaxEntries:       50,
		MinEntries:       20,
		Variant:          v,
		HilbertBits:      16,
		ReinsertFraction: 0.3,
	}
}

// Validate checks the configuration and fills in defaults for optional
// fields. It returns a usable copy.
func (c Config) withDefaults() (Config, error) {
	if c.Dims < 1 || c.Dims > geom.MaxDims {
		return c, fmt.Errorf("rtree: dims must be in [1, %d], got %d", geom.MaxDims, c.Dims)
	}
	if c.MaxEntries < 4 {
		return c, fmt.Errorf("rtree: MaxEntries must be at least 4, got %d", c.MaxEntries)
	}
	if c.MinEntries < 1 || c.MinEntries > c.MaxEntries/2 {
		return c, fmt.Errorf("rtree: MinEntries must be in [1, MaxEntries/2], got %d", c.MinEntries)
	}
	switch c.Variant {
	case Quadratic, Hilbert, RStar, RRStar:
	default:
		return c, fmt.Errorf("rtree: unknown variant %d", int(c.Variant))
	}
	if c.HilbertBits <= 0 {
		c.HilbertBits = 16
	}
	if c.Dims*c.HilbertBits > hilbert.MaxTotalBits {
		c.HilbertBits = hilbert.MaxTotalBits / c.Dims
	}
	if c.HilbertBits > hilbert.MaxBitsPerDim {
		c.HilbertBits = hilbert.MaxBitsPerDim
	}
	if c.ReinsertFraction <= 0 || c.ReinsertFraction >= 0.5 {
		c.ReinsertFraction = 0.3
	}
	if c.Universe.IsZero() {
		lo := make(geom.Point, c.Dims)
		hi := make(geom.Point, c.Dims)
		for i := 0; i < c.Dims; i++ {
			lo[i], hi[i] = -1e6, 1e6
		}
		c.Universe = geom.Rect{Lo: lo, Hi: hi}
	}
	if !c.Universe.Valid() || c.Universe.Dims() != c.Dims {
		return c, errors.New("rtree: universe rectangle is invalid or has wrong dimensionality")
	}
	return c, nil
}

// Tree is an R-tree of one of the four variants.
//
// Concurrency: the tree is single-writer/multi-reader with copy-on-write
// epoch versioning. Any number of goroutines may run Search,
// SearchFiltered, Count, NearestNeighbors, and the join algorithms at any
// time — including concurrently with a mutation — because every read
// traverses an immutable published Version (one atomic load per query; see
// version.go). Mutations (Insert, Delete, BulkLoad, BeginBatch/CommitBatch,
// FlushDirty) must come from one goroutine at a time; the public cbb layer
// enforces this with a writer mutex. Walk, Node, Save, Stats, and Validate
// read the writer's working state and are likewise writer-side operations.
// SetCounter and SetBufferPool must not race with readers; attach them
// before the concurrent phase starts.
type Tree struct {
	cfg     Config
	nodes   []*node
	free    []NodeID
	root    NodeID
	size    int
	height  int // number of levels; 1 = root is a leaf
	counter *storage.Counter
	pool    *storage.BufferPool // optional, attached via SetBufferPool
	curve   *hilbert.Curve

	// Copy-on-write versioning (see version.go): cur is the last published
	// Version, loaded once per query by every read path. The fields above
	// (nodes, root, size, height, free) are the single writer's working
	// state; epoch is the batch currently being built (published epoch + 1),
	// published marks that t.nodes still aliases cur's node array and must
	// be copied before the next mutation (detach), and inBatch suppresses
	// the per-operation auto-commit between BeginBatch and CommitBatch.
	// live tracks recently published versions so FlushDirty can compute the
	// minimum pinned epoch for deferred free-page release.
	cur       atomic.Pointer[Version]
	epoch     uint64
	published bool
	inBatch   bool
	undo      *batchUndo // writer bookkeeping snapshot for RollbackBatch
	verMu     sync.Mutex
	live      []*Version
	lazyV     *Version // initial lazy version of a file-backed tree

	// Writer-side scratch, reused across mutations (the writer is single-
	// threaded, see above): ovMarks replaces the per-insertion
	// map[int]bool that tracked the once-per-level R* overflow treatment,
	// ingestKeys is the sort buffer of InsertItems, and lastIngest records
	// how the most recent InsertItems call routed its items.
	ovMarks    levelMarks
	ingestKeys []ingestKey
	ingest     IngestTuning
	lastIngest IngestStats

	// File-backed mode, set up by OpenPaged or AttachStore: nodes are
	// faulted into the arena on first access from src, under arenaMu, and
	// mutated nodes are tracked in src.dirty until FlushDirty writes them
	// back to the page store. src is nil for ordinary in-memory trees, whose
	// arena is accessed without locking.
	src      *pageSource
	arenaMu  sync.RWMutex
	faultErr error // first page fault failure, sticky; guarded by arenaMu

	// conservative marks a tree decoded from compressed (v2) pages: its
	// directory entry rects are supersets of the exact child MBBs (the
	// quantisation decode rounds outward), so Validate checks containment
	// instead of equality. Queries are unaffected — supersets are admissible.
	conservative bool
}

// pageSource is the storage binding of a file-backed tree: where each node
// lives in the page store, which nodes have been mutated since the last
// flush (the dirty set), and which pages await release because their node
// was dissolved.
type pageSource struct {
	store    storage.PageStore
	pages    map[NodeID]storage.PageID
	readonly bool
	hydrated bool      // whole tree materialised; parents and LHVs are valid
	codec    PageCodec // page layout nodes fault in through (CodecV1 default)
	dirty    map[NodeID]struct{}
	freed    []freedPage
}

// freedPage is a page awaiting release, stamped with the epoch of the batch
// that dissolved its node: FlushDirty returns it to the pager's free list
// only once no pinned version is older than that epoch, so a long-lived read
// view can never observe its page slot being recycled.
type freedPage struct {
	page  storage.PageID
	epoch uint64
}

// New creates an empty tree. The tree uses its own private I/O counter; use
// SetCounter to share one across trees.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, root: InvalidNode, counter: &storage.Counter{}, epoch: 1}
	if cfg.Variant == Hilbert {
		c, err := hilbert.New(cfg.Universe, cfg.HilbertBits)
		if err != nil {
			return nil, fmt.Errorf("rtree: building hilbert curve: %w", err)
		}
		t.curve = c
	}
	t.publish()
	return t, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Variant returns the tree's variant.
func (t *Tree) Variant() Variant { return t.cfg.Variant }

// Dims returns the dimensionality of indexed rectangles.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Len returns the number of indexed objects at the last committed version
// (mutations inside an open batch are not counted until CommitBatch).
func (t *Tree) Len() int { return t.cur.Load().size }

// Height returns the number of levels (0 for an empty tree, 1 when the root
// is a leaf) at the last committed version.
func (t *Tree) Height() int { return t.cur.Load().height }

// Counter returns the I/O counter node accesses are charged to.
func (t *Tree) Counter() *storage.Counter { return t.counter }

// SetCounter replaces the I/O counter (for sharing across trees in joins).
func (t *Tree) SetCounter(c *storage.Counter) {
	if c != nil {
		t.counter = c
	}
}

// SetBufferPool attaches an LRU buffer pool that every node access is routed
// through, emulating a bounded main-memory buffer in front of the simulated
// disk. Pass nil to detach. A pool tracks the node ids of one tree; do not
// share one pool across trees. Attach before any concurrent reads start.
func (t *Tree) SetBufferPool(p *storage.BufferPool) { t.pool = p }

// BufferPool returns the attached buffer pool, or nil.
func (t *Tree) BufferPool() *storage.BufferPool { return t.pool }

// ResetIO zeroes the I/O counter and, when a buffer pool is attached, empties
// the pool and zeroes its hit/miss statistics as well (a cold start). Batch
// measurements must use this instead of Counter().Reset() so pool state
// cannot leak from one measured run into the next.
func (t *Tree) ResetIO() {
	t.counter.Reset()
	if t.pool != nil {
		t.pool.Reset()
	}
}

// --- copy-on-write versioning (writer side; reader side in version.go) ------

// CurrentVersion returns the last published version of the tree: one atomic
// load, no pinning. It is never nil. Use it for a single query; use
// PinSnapshot for a long-lived read view.
func (t *Tree) CurrentVersion() *Version { return t.cur.Load() }

// PinSnapshot returns the current version pinned: file pages freed by later
// batches are not recycled until the matching Unpin. The retry loop ensures
// the pin lands on a version that was current at some instant during the
// call.
func (t *Tree) PinSnapshot() *Version {
	for {
		v := t.cur.Load()
		v.pins.Add(1)
		if t.cur.Load() == v {
			return v
		}
		v.pins.Add(-1)
	}
}

// publish commits the writer's working state as a new immutable Version and
// makes it the current one. The writer's node array is handed to the version
// as-is; the next mutation copies it first (detach), so the published array
// never changes again.
func (t *Tree) publish() *Version {
	v := &Version{
		tree: t, epoch: t.epoch,
		root: t.root, size: t.size, height: t.height,
		nodes: t.nodes,
	}
	if t.src != nil && !t.src.hydrated {
		// A file-backed tree that has never been mutated publishes a lazy
		// version: nodes are still faulted in on demand from this epoch's
		// page map. Only the initial version of such a tree can be lazy —
		// the first mutation hydrates everything before publishing again.
		v.lazy = true
		v.pages = t.src.pages
		t.lazyV = v
	}
	t.verMu.Lock()
	t.cur.Store(v)
	live := t.live[:0]
	for _, lv := range t.live {
		if lv.pins.Load() > 0 {
			live = append(live, lv)
		}
	}
	t.live = append(live, v)
	t.verMu.Unlock()
	t.published = true
	t.epoch++
	return v
}

// minPinnedEpoch returns the smallest epoch among pinned versions, or
// MaxUint64 when nothing is pinned. FlushDirty uses it to decide which freed
// pages may be recycled.
func (t *Tree) minPinnedEpoch() uint64 {
	t.verMu.Lock()
	defer t.verMu.Unlock()
	min := ^uint64(0)
	for _, v := range t.live {
		if v.pins.Load() > 0 && v.epoch < min {
			min = v.epoch
		}
	}
	return min
}

// beginMutation prepares the writer's working state for in-place work: if
// the node array is still the one handed to the last published version, it
// is copied first, so concurrent readers of that version keep an untouched
// array. Called at the start of every mutating operation (and by
// BeginBatch); cheap when already detached.
func (t *Tree) beginMutation() {
	if t.published {
		t.nodes = append([]*node(nil), t.nodes...)
		t.published = false
	}
}

// batchUndo records what RollbackBatch needs to restore the writer
// bookkeeping an explicit batch touched. Node content needs no undo log —
// the published version's node array is immutable, so discarding the
// writer's private array is the rollback. The dirty-set and page-map undo
// is built incrementally, first touch wins (recording each id's pre-batch
// state the first time the batch modifies it), so BeginBatch stays O(free
// list) instead of copying maps proportional to the whole tree.
type batchUndo struct {
	free []NodeID
	// dirtyPrev maps each node id whose dirty-set membership the batch
	// changed to its pre-batch membership.
	dirtyPrev map[NodeID]bool
	// pagesRemoved holds the page-map entries freeNode deleted during the
	// batch (pages are never added mid-batch; FlushDirty refuses to run
	// inside one).
	pagesRemoved map[NodeID]storage.PageID
	freedLen     int
}

// noteDirty records the pre-batch dirty membership of id, first touch wins.
// Safe on a nil receiver (no batch open).
func (u *batchUndo) noteDirty(id NodeID, present bool) {
	if u == nil {
		return
	}
	if u.dirtyPrev == nil {
		u.dirtyPrev = make(map[NodeID]bool)
	}
	if _, seen := u.dirtyPrev[id]; !seen {
		u.dirtyPrev[id] = present
	}
}

// notePageRemoved records a page-map entry deleted by freeNode, first
// removal wins. Safe on a nil receiver.
func (u *batchUndo) notePageRemoved(id NodeID, pid storage.PageID) {
	if u == nil {
		return
	}
	if u.pagesRemoved == nil {
		u.pagesRemoved = make(map[NodeID]storage.PageID)
	}
	if _, seen := u.pagesRemoved[id]; !seen {
		u.pagesRemoved[id] = pid
	}
}

// BeginBatch starts an explicit writer batch: mutations accumulate in the
// writer's private overlay and become visible to readers only at
// CommitBatch, as one atomic version switch. Mutating operations outside a
// batch auto-commit individually. Batches do not nest, and the tree's
// single-writer rule applies: BeginBatch/CommitBatch and all mutations must
// come from one goroutine at a time (the public cbb layer enforces this with
// a writer mutex).
func (t *Tree) BeginBatch() error {
	if err := t.ensureMutable(); err != nil {
		return err
	}
	if t.inBatch {
		return errors.New("rtree: batch already in progress")
	}
	t.beginMutation()
	u := &batchUndo{free: append([]NodeID(nil), t.free...)}
	if t.src != nil {
		u.freedLen = len(t.src.freed)
	}
	t.undo = u
	t.inBatch = true
	return nil
}

// CommitBatch publishes every mutation since BeginBatch as one new version
// and returns it. Readers switch from the previous version to the new one
// atomically; no reader ever observes a partially applied batch.
func (t *Tree) CommitBatch() *Version {
	t.inBatch = false
	t.undo = nil
	return t.publish()
}

// RollbackBatch discards every mutation since BeginBatch: the writer's
// private node array is dropped in favour of the published version's
// (copy-on-write means the published nodes were never touched), the batch's
// bookkeeping (free list, page map, dirty set, freed pages) is restored
// from the begin-time snapshot, and the writer-private node metadata the
// batch may have refreshed in place on shared objects — parent pointers and
// Hilbert LHVs — is recomputed. Readers are unaffected: nothing was
// published.
func (t *Tree) RollbackBatch() {
	if !t.inBatch {
		return
	}
	u := t.undo
	t.inBatch = false
	t.undo = nil
	v := t.cur.Load()
	t.nodes = v.nodes
	t.published = true // next mutation detaches from the published array again
	t.root, t.size, t.height = v.root, v.size, v.height
	t.free = u.free
	if t.src != nil {
		for id, was := range u.dirtyPrev {
			if was {
				t.src.dirty[id] = struct{}{}
			} else {
				delete(t.src.dirty, id)
			}
		}
		for id, pid := range u.pagesRemoved {
			t.src.pages[id] = pid
		}
		t.src.freed = t.src.freed[:u.freedLen]
	}
	t.arenaMu.Lock()
	t.fixParentsLocked()
	t.arenaMu.Unlock()
	if t.cfg.Variant == Hilbert {
		t.recomputeHilbertLHVs()
	}
}

// fixParentsLocked recomputes every node's parent pointer from the
// directory entries (the inverse information is not kept anywhere else) —
// shared by Materialize (hydration) and RollbackBatch. arenaMu must be
// held; the arena is accessed directly, so every node must already be
// resident.
func (t *Tree) fixParentsLocked() {
	if t.root != InvalidNode && int(t.root) < len(t.nodes) && t.nodes[t.root] != nil {
		t.nodes[t.root].parent = InvalidNode
	}
	for _, n := range t.nodes {
		if n == nil || n.leaf {
			continue
		}
		for i := range n.entries {
			c := n.entries[i].Child
			if c >= 0 && int(c) < len(t.nodes) && t.nodes[c] != nil {
				t.nodes[c].parent = n.id
			}
		}
	}
}

// InBatch reports whether an explicit writer batch is open.
func (t *Tree) InBatch() bool { return t.inBatch }

// autoCommit publishes after a successful non-batched mutation.
func (t *Tree) autoCommit(err error) {
	if err == nil && !t.inBatch {
		t.publish()
	}
}

// cloneForWrite deep-copies a shared node object so the writer can mutate it
// without disturbing published versions: entries and the flat coordinate
// mirror get fresh backing arrays; parent, leaf, level, and the Hilbert LHV
// carry over.
func (t *Tree) cloneForWrite(n *node) *node {
	c := &node{
		id: n.id, parent: n.parent, leaf: n.leaf, level: n.level,
		born:       t.epoch,
		hilbertLHV: n.hilbertLHV,
	}
	c.entries = append(make([]Entry, 0, cap(n.entries)), n.entries...)
	c.boxes = append(make([]float64, 0, cap(n.boxes)), n.boxes...)
	c.qmbb = append(make([]float64, 0, cap(n.qmbb)), n.qmbb...)
	c.qplanes = append(make([]uint64, 0, cap(n.qplanes)), n.qplanes...)
	return c
}

// mutable returns a node object the writer may mutate in place: n itself
// when it was created or already cloned in the current batch, otherwise a
// clone installed in the writer's arena in its stead. Every mutation of a
// node's entries (and the derived boxes mirror) must go through here before
// writing; reads may keep using the shared object.
func (t *Tree) mutable(n *node) *node {
	if n.born == t.epoch {
		return n
	}
	// The arena may already hold a clone from earlier in this batch even if
	// the caller still has a stale shared pointer.
	if c := t.nodes[n.id]; c.born == t.epoch {
		return c
	}
	c := t.cloneForWrite(n)
	t.nodes[n.id] = c
	return c
}

// ChargeRead records one access to the node with the given id: a leaf or
// directory read on c (the tree's own counter when c is nil) plus a touch of
// the attached buffer pool, if any. The search and join paths funnel every
// node access through here so counter and pool accounting cannot diverge.
func (t *Tree) ChargeRead(id NodeID, leaf bool, c *storage.Counter) {
	t.ChargeReadSized(id, leaf, 0, c)
}

// ChargeReadSized is ChargeRead with the node's encoded page size attached:
// byte-budget buffer pools charge residency by it (page-count pools ignore
// it, so accounting is unchanged for every existing configuration). Paths
// that hold the node pass its exact size via chargeReadNode; callers that
// only have an id may pass 0, which byte pools treat as membership-only.
func (t *Tree) ChargeReadSized(id NodeID, leaf bool, bytes int, c *storage.Counter) {
	if c == nil {
		c = t.counter
	}
	if leaf {
		c.LeafRead(1)
	} else {
		c.DirRead(1)
	}
	if t.pool != nil {
		// PageID zero is invalid, node ids start at zero: offset by one.
		t.pool.TouchSized(storage.PageID(uint64(id)+1), bytes)
	}
}

// chargeReadNode is the hot-path form of ChargeRead: the caller already holds
// the node, so the byte charge is exact and free to compute. The charge is
// the node's encoded page size plus the resident quantised filter layer
// (planes + quantisation MBB), so byte-budget pools account for everything a
// resident node actually occupies.
func (t *Tree) chargeReadNode(n *node, leaf bool, c *storage.Counter) {
	t.ChargeReadSized(n.id, leaf, int(n.encSize)+n.planeBytes(), c)
}

// RootID returns the id of the root node, or InvalidNode for an empty tree.
func (t *Tree) RootID() NodeID { return t.root }

// ReadOnly reports whether the tree rejects mutations with ErrReadOnly: it
// was opened read-only, or its page store cannot be written.
func (t *Tree) ReadOnly() bool { return t.src != nil && t.src.readonly }

// FileBacked reports whether the tree is bound to a page store (opened with
// OpenPaged or attached with AttachStore).
func (t *Tree) FileBacked() bool { return t.src != nil }

// Dirty reports whether a file-backed tree has node mutations that
// FlushDirty has not yet written back to the page store. In-memory trees
// are never dirty.
func (t *Tree) Dirty() bool {
	if t.src == nil {
		return false
	}
	return len(t.src.dirty) > 0 || len(t.src.freed) > 0
}

// Err returns the first page-fault failure of a file-backed tree (a page
// that could not be read or decoded on demand), or nil. Queries treat a
// faulted node as empty rather than panicking; callers that need certainty
// should check Err after a batch, or call Materialize up front.
func (t *Tree) Err() error {
	if t.src == nil {
		return nil
	}
	t.arenaMu.RLock()
	defer t.arenaMu.RUnlock()
	return t.faultErr
}

// Bounds returns the MBB of all indexed objects (zero Rect when empty) at
// the last committed version.
func (t *Tree) Bounds() geom.Rect {
	return t.cur.Load().Bounds()
}

// --- node arena management -------------------------------------------------

func (t *Tree) newNode(leaf bool, level int) *node {
	var id NodeID
	var nd *node
	if n := len(t.free); n > 0 {
		id = t.free[n-1]
		t.free = t.free[:n-1]
		// The arena slot may still be referenced by a published version
		// (the node object of the freed generation), so a fresh object is
		// always allocated; node ids are reused, node objects never are.
		nd = &node{id: id, parent: InvalidNode, leaf: leaf, level: level, born: t.epoch}
		t.nodes[id] = nd
	} else {
		id = NodeID(len(t.nodes))
		nd = &node{id: id, parent: InvalidNode, leaf: leaf, level: level, born: t.epoch}
		t.nodes = append(t.nodes, nd)
	}
	t.touch(nd)
	return nd
}

func (t *Tree) freeNode(id NodeID) {
	// Published versions may still traverse the freed node's object, so it
	// is left untouched; the writer's arena slot gets an empty placeholder
	// of the same shape (matching the pre-versioning behaviour of a freed
	// slot: present, no entries).
	old := t.nodes[id]
	t.nodes[id] = &node{id: id, parent: old.parent, leaf: old.leaf, level: old.level, born: t.epoch}
	t.free = append(t.free, id)
	if t.src != nil {
		// The node's page (if it has one) is released on a later flush, once
		// no pinned version predates this batch; a later newNode reusing
		// this arena id allocates a fresh page with the right kind.
		if _, ok := t.src.dirty[id]; ok {
			t.undo.noteDirty(id, true)
			delete(t.src.dirty, id)
		}
		if pid, ok := t.src.pages[id]; ok {
			t.undo.notePageRemoved(id, pid)
			t.src.freed = append(t.src.freed, freedPage{page: pid, epoch: t.epoch})
			delete(t.src.pages, id)
		}
	}
}

// touch records that a node's persistent state (entries, leaf flag, level)
// changed: the next FlushDirty writes it back (file-backed trees), and the
// flat coordinate mirror is refreshed (all trees). Every entry mutation site
// calls it — the single node-access layer shared by both modes. The node
// must be writer-owned (created or cloned in the current batch); touching a
// shared node object would mutate a published version under its readers.
func (t *Tree) touch(n *node) {
	if n.born != t.epoch {
		panic(fmt.Sprintf("rtree: touch of node %d shared with a published version (born %d, batch %d)", n.id, n.born, t.epoch))
	}
	if t.src != nil {
		if _, ok := t.src.dirty[n.id]; !ok {
			t.undo.noteDirty(n.id, false)
			t.src.dirty[n.id] = struct{}{}
		}
	}
	n.syncBoxes(t.cfg.Dims)
}

// faultFailure carries a node-access failure out of the deep mutation
// recursion; Insert, Delete, and BulkLoad recover it into an error.
type faultFailure struct{ err error }

// mustNode is the node accessor of the mutation paths: unlike node (which
// lets queries degrade gracefully), a missing or unreadable node aborts the
// mutation via a recoverable panic. After ensureMutable has hydrated a
// file-backed tree this can only trip on genuine corruption.
func (t *Tree) mustNode(id NodeID) *node {
	n := t.node(id)
	if n == nil {
		err := t.Err()
		if err == nil {
			err = fmt.Errorf("rtree: node %d does not exist", id)
		}
		panic(faultFailure{err})
	}
	return n
}

// recoverFault converts a faultFailure panic into *errp; other panics
// propagate.
func recoverFault(errp *error) {
	if r := recover(); r != nil {
		ff, ok := r.(faultFailure)
		if !ok {
			panic(r)
		}
		*errp = ff.err
	}
}

// ensureMutable gates every mutation. In-memory trees are always mutable.
// A read-only file-backed tree fails with ErrReadOnly. A writable
// file-backed tree is hydrated on its first mutation: every node is faulted
// in and parent pointers (and Hilbert LHVs) — which the page layout does not
// store — are reconstructed, after which the mutation algorithms run exactly
// as in memory and mark what they change in the dirty set.
func (t *Tree) ensureMutable() error {
	if t.src == nil {
		return nil
	}
	if t.src.readonly {
		return ErrReadOnly
	}
	if t.src.hydrated {
		return nil
	}
	if err := t.Materialize(); err != nil {
		return fmt.Errorf("rtree: hydrating file-backed tree for mutation: %w", err)
	}
	if t.cfg.Variant == Hilbert {
		t.recomputeHilbertLHVs()
	}
	// The lazy version published at open keeps the original page map; the
	// writer takes a private copy so freeNode and FlushDirty never mutate a
	// map a concurrent lazy reader might still consult while faulting.
	pages := make(map[NodeID]storage.PageID, len(t.src.pages))
	for id, pid := range t.src.pages {
		pages[id] = pid
	}
	t.src.pages = pages
	t.src.hydrated = true
	return nil
}

// recomputeHilbertLHVs rebuilds every node's cached largest-Hilbert-value
// bottom-up (levels ascending), as Load does after decoding pages.
func (t *Tree) recomputeHilbertLHVs() {
	if t.curve == nil {
		return
	}
	for level := 0; level < t.height; level++ {
		for _, n := range t.nodes {
			if n != nil && n.level == level {
				t.updateHilbertLHV(n)
			}
		}
	}
}

// node is the writer-side node accessor: the arena lookup used by the
// mutation algorithms, Walk, Save, and friends. For an ordinary in-memory
// tree (and for a file-backed tree once its first mutation has hydrated it)
// this is a plain arena lookup; before hydration it falls through to the
// lazy version's fault path, so the arena fills in exactly as reads always
// did. It returns nil when the id is out of range or its page cannot be
// read (the failure is recorded and exposed via Err).
func (t *Tree) node(id NodeID) *node {
	if t.src == nil {
		return t.nodes[id]
	}
	if id < 0 || int(id) >= len(t.nodes) {
		t.setFaultErr(fmt.Errorf("rtree: node id %d out of range", id))
		return nil
	}
	if t.src.hydrated {
		return t.nodes[id]
	}
	return t.lazyNode(t.lazyV, id)
}

// lazyNode serves a node access on a lazy (file-backed, never mutated)
// version: the version's array is checked under the arena lock, and a miss
// faults the page in. Before the tree's first mutation the lazy version's
// array and the writer arena are the same array, so faults triggered by
// either side are shared.
func (t *Tree) lazyNode(v *Version, id NodeID) *node {
	if id < 0 || int(id) >= len(v.nodes) {
		t.setFaultErr(fmt.Errorf("rtree: node id %d out of range", id))
		return nil
	}
	t.arenaMu.RLock()
	n := v.nodes[id]
	t.arenaMu.RUnlock()
	if n != nil {
		return n
	}
	return t.fault(v, id)
}

// fault loads one node page from the page store into a lazy version's node
// array. The disk read and decode run outside the lock so concurrent cold
// readers fault different pages in parallel; the outcome — success OR
// failure — is then reconciled under the write lock against what may have
// been installed meanwhile, and the already-installed node always wins.
// That rule is what makes unpinned in-flight reads safe against a
// concurrent first mutation + flush: the writer's hydration populates the
// whole array before any page can be freed, rewritten, or recycled on
// disk, so a stale fault that loses the race and reads a freed, reused, or
// mid-commit page discards its result and returns the hydrated epoch-0
// node instead of recording a spurious fault — or, worse, serving a newer
// node generation to an older version. The page lookup uses the version's
// own page map, which is never mutated after publication.
func (t *Tree) fault(v *Version, id NodeID) *node {
	var n *node
	var ferr error
	if pid, ok := v.pages[id]; !ok {
		ferr = fmt.Errorf("rtree: node %d has no page in the snapshot", id)
	} else if buf, _, err := t.src.store.Read(pid); err != nil {
		ferr = fmt.Errorf("rtree: reading page %d for node %d: %w", pid, id, err)
	} else if n, err = decodeNodeCodec(buf, t.cfg.Dims, t.src.codec); err != nil {
		n = nil
		ferr = fmt.Errorf("rtree: decoding page %d for node %d: %w", pid, id, err)
	} else if n.id != id {
		ferr = fmt.Errorf("rtree: page %d claims node id %d, expected %d", pid, n.id, id)
		n = nil
	}
	t.arenaMu.Lock()
	defer t.arenaMu.Unlock()
	if cached := v.nodes[id]; cached != nil {
		return cached
	}
	if ferr != nil {
		t.faultErrLocked(ferr)
		return nil
	}
	v.nodes[id] = n
	return n
}

func (t *Tree) setFaultErr(err error) {
	t.arenaMu.Lock()
	t.faultErrLocked(err)
	t.arenaMu.Unlock()
}

// faultErrLocked records the first fault failure; arenaMu must be held.
func (t *Tree) faultErrLocked(err error) {
	if t.faultErr == nil {
		t.faultErr = err
	}
}

// NodeInfo is a read-only description of one node, exposed for the clip
// layer, statistics, and tests.
type NodeInfo struct {
	ID       NodeID
	Parent   NodeID
	Leaf     bool
	Level    int
	MBB      geom.Rect
	Children []Entry
	// Bytes is the node's encoded page size (see node.encSize).
	Bytes int
	// PlaneBytes is the resident size of the node's quantised SoA filter
	// layer (see quant.go); it rides on top of Bytes in pool accounting.
	PlaneBytes int
}

// Node returns a snapshot of the node with the given id. The returned
// Children slice aliases internal storage and must not be modified. On a
// file-backed tree the node is faulted in on demand, and Parent is
// InvalidNode until Materialize has run (parents are not stored in the
// Figure 4a page layout).
func (t *Tree) Node(id NodeID) (NodeInfo, error) {
	if id < 0 || int(id) >= len(t.nodes) {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	n := t.node(id)
	if n == nil {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	return NodeInfo{
		ID: n.id, Parent: n.parent, Leaf: n.leaf, Level: n.level,
		MBB: n.mbb(), Children: n.entries, Bytes: int(n.encSize), PlaneBytes: n.planeBytes(),
	}, nil
}

// Walk visits every live node of the tree top-down, calling fn with a
// snapshot of each. It does not charge I/O; it is intended for construction
// of clip tables, statistics, and validation.
func (t *Tree) Walk(fn func(NodeInfo)) {
	if t.root == InvalidNode {
		return
	}
	stack := []NodeID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.node(id)
		if n == nil {
			continue
		}
		fn(NodeInfo{ID: n.id, Parent: n.parent, Leaf: n.leaf, Level: n.level, MBB: n.mbb(), Children: n.entries, Bytes: int(n.encSize), PlaneBytes: n.planeBytes()})
		if !n.leaf {
			for i := range n.entries {
				stack = append(stack, n.entries[i].Child)
			}
		}
	}
}

// NodeCount returns the number of live nodes (directory + leaf).
func (t *Tree) NodeCount() (dir, leaf int) {
	t.Walk(func(info NodeInfo) {
		if info.Leaf {
			leaf++
		} else {
			dir++
		}
	})
	return dir, leaf
}

// --- search ------------------------------------------------------------------

// Search finds every object whose rectangle intersects q and passes it to
// visit; traversal stops early if visit returns false. Node accesses are
// charged to the tree's counter (directory and leaf reads separately).
//
// An invalid query, or one whose dimensionality differs from the tree's,
// matches nothing. (Previously a query with extra dimensions had them
// silently ignored on the unclipped path and panicked on the clipped path;
// both now uniformly return no results.)
func (t *Tree) Search(q geom.Rect, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFiltered(q, nil, visit)
}

// SearchCounted is Search with the node accesses charged to an explicit
// counter instead of the tree's own (the tree's counter when c is nil).
// Parallel executors give every worker goroutine a private counter so that
// per-worker I/O can be reported exactly and merged deterministically.
func (t *Tree) SearchCounted(q geom.Rect, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFilteredCounted(q, nil, c, visit)
}

// SearchFiltered is Search with an optional per-node admission filter: when
// filter is non-nil it is consulted before a child node is visited, with
// that child's id and MBB (the rectangle stored in the parent entry);
// returning false skips the child (and saves its I/O). The clipped R-tree
// layer uses the filter to apply Algorithm 2 with each child's clip points.
// The root is always visited.
func (t *Tree) SearchFiltered(q geom.Rect, filter func(NodeID, geom.Rect) bool, visit func(ObjectID, geom.Rect) bool) {
	t.SearchFilteredCounted(q, filter, nil, visit)
}

// SearchFilteredCounted is SearchFiltered with the node accesses charged to
// an explicit counter (the tree's own when c is nil).
func (t *Tree) SearchFilteredCounted(q geom.Rect, filter func(NodeID, geom.Rect) bool, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t.cur.Load().searchIter(q, filter, nil, c, visit)
}

// Admitter is the allocation-free variant of the SearchFiltered admission
// hook: it is consulted with a candidate child's id, the child's MBB (the
// rectangle stored in the parent entry), and the query before the child is
// visited; returning false skips the child and saves its I/O. The clipped
// R-tree layer implements it to run Algorithm 2 with the child's clip points.
// Unlike a filter closure, an Admitter can be a long-lived value, so a
// steady-state search performs no heap allocations.
type Admitter interface {
	AdmitChild(child NodeID, childMBB geom.Rect, q geom.Rect) bool
}

// Count returns the number of objects intersecting q (convenience wrapper
// over Search).
func (t *Tree) Count(q geom.Rect) int {
	n := 0
	t.Search(q, func(ObjectID, geom.Rect) bool { n++; return true })
	return n
}

// All returns every object in the tree (id and rectangle), in no particular
// order, without charging I/O.
func (t *Tree) All() []Entry {
	out := make([]Entry, 0, t.size)
	t.Walk(func(info NodeInfo) {
		if info.Leaf {
			out = append(out, info.Children...)
		}
	})
	return out
}

// AllItems returns every object as bulk-load items, in no particular order,
// without charging I/O. It is the export hook for shard rebuilds: the
// sharded engine enumerates a shard with AllItems, partitions the items by
// Hilbert key, and BulkLoads each half into a fresh tree.
func (t *Tree) AllItems() []Item {
	entries := t.All()
	out := make([]Item, len(entries))
	for i, e := range entries {
		out[i] = Item{Object: e.Object, Rect: e.Rect}
	}
	return out
}
