package rtree

import (
	"sort"

	"cbb/internal/geom"
)

// splitEntries distributes an over-full entry set (M+1 entries) into two
// groups according to the variant's split algorithm. Both groups respect the
// minimum fill m.
func (t *Tree) splitEntries(entries []Entry) (groupA, groupB []Entry) {
	switch t.cfg.Variant {
	case RStar:
		return t.splitRStar(entries, false)
	case RRStar:
		return t.splitRStar(entries, true)
	case Hilbert:
		if t.curve != nil {
			return t.splitHilbert(entries)
		}
		return t.splitQuadratic(entries)
	default:
		return t.splitQuadratic(entries)
	}
}

// --- Guttman quadratic split ------------------------------------------------

// splitQuadratic implements Guttman's quadratic-cost split: pick the two
// entries that would waste the most area if grouped together as seeds, then
// repeatedly assign the entry with the greatest preference difference to the
// group whose MBB it enlarges least, while honouring the minimum fill.
func (t *Tree) splitQuadratic(entries []Entry) ([]Entry, []Entry) {
	m := t.cfg.MinEntries
	seedA, seedB := pickQuadraticSeeds(entries)
	groupA := []Entry{entries[seedA]}
	groupB := []Entry{entries[seedB]}
	mbbA := entries[seedA].Rect.Clone()
	mbbB := entries[seedB].Rect.Clone()
	remaining := make([]Entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, entries[i])
		}
	}
	for len(remaining) > 0 {
		// If one group needs every remaining entry to reach the minimum
		// fill, assign them all to it.
		if len(groupA)+len(remaining) == m {
			groupA = append(groupA, remaining...)
			return groupA, groupB
		}
		if len(groupB)+len(remaining) == m {
			groupB = append(groupB, remaining...)
			return groupA, groupB
		}
		// Pick the entry with the maximum difference of enlargement costs.
		bestIdx, bestDiff := -1, -1.0
		var bestToA bool
		for i, e := range remaining {
			dA := mbbA.Enlargement(e.Rect)
			dB := mbbB.Enlargement(e.Rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
				switch {
				case dA < dB:
					bestToA = true
				case dB < dA:
					bestToA = false
				case mbbA.Volume() != mbbB.Volume():
					bestToA = mbbA.Volume() < mbbB.Volume()
				default:
					bestToA = len(groupA) <= len(groupB)
				}
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		// mbbA/mbbB are clones owned by this split, so in-place extension is
		// safe and keeps the O(M) assignment rounds allocation-free.
		if bestToA {
			groupA = append(groupA, e)
			mbbA = mbbA.Extend(e.Rect)
		} else {
			groupB = append(groupB, e)
			mbbB = mbbB.Extend(e.Rect)
		}
	}
	return groupA, groupB
}

// pickQuadraticSeeds returns the indexes of the pair of entries whose
// combined MBB wastes the most area.
func pickQuadraticSeeds(entries []Entry) (int, int) {
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		volI := entries[i].Rect.Volume()
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].Rect.UnionVolume(entries[j].Rect) - volI - entries[j].Rect.Volume()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	return seedA, seedB
}

// --- R* / RR* topological split ----------------------------------------------

// splitRStar implements the R*-tree split: choose the split axis by the
// minimum total margin over all candidate distributions, then the
// distribution with the least overlap (volume), breaking ties by total
// volume. With revised=true (the RR*-tree), overlap is measured by perimeter
// when every candidate has zero volume overlap, which discriminates
// distributions of degenerate rectangles — the perimeter-based goal function
// of the revised R*-tree.
func (t *Tree) splitRStar(entries []Entry, revised bool) ([]Entry, []Entry) {
	m := t.cfg.MinEntries
	dims := t.cfg.Dims
	n := len(entries)

	// Axis choice: total margin over all candidate distributions. The left
	// and right MBBs of the distributions are prefix/suffix unions of the
	// sorted order, so one O(n) scan per order replaces the O(n²) rebuild
	// of each group's MBB from scratch.
	suffix := make([]geom.Rect, n) // suffix[i] = MBB of sorted[i:]
	suffixScan := func(sorted []Entry) {
		run := sorted[n-1].Rect.Clone()
		suffix[n-1] = run
		for i := n - 2; i >= m-1; i-- {
			run = run.Clone().Extend(sorted[i].Rect)
			suffix[i] = run
		}
	}
	bestAxis, bestAxisMargin := -1, 0.0
	for d := 0; d < dims; d++ {
		margin := 0.0
		for _, byUpper := range []bool{false, true} {
			sorted := sortEntriesByAxis(entries, d, byUpper)
			suffixScan(sorted)
			pre := sorted[0].Rect.Clone()
			for i := 1; i < m; i++ {
				pre = pre.Extend(sorted[i].Rect)
			}
			for k := m; k <= n-m; k++ {
				margin += pre.Margin() + suffix[k].Margin()
				if k < n-m {
					pre = pre.Extend(sorted[k].Rect)
				}
			}
		}
		if bestAxis < 0 || margin < bestAxisMargin {
			bestAxis, bestAxisMargin = d, margin
		}
	}

	// Distribution choice along the best axis: minimum overlap (volume, or
	// margin for the revised tree when every candidate's volume overlap is
	// zero), ties broken by total volume. Candidates are scored in place —
	// only the winning distribution's groups are materialised.
	type candidate struct {
		byUpper       bool
		k             int
		overlapVol    float64
		overlapMargin float64
		totalVol      float64
	}
	cands := make([]candidate, 0, 2*(n-2*m+1))
	for _, byUpper := range []bool{false, true} {
		sorted := sortEntriesByAxis(entries, bestAxis, byUpper)
		suffixScan(sorted)
		pre := sorted[0].Rect.Clone()
		for i := 1; i < m; i++ {
			pre = pre.Extend(sorted[i].Rect)
		}
		for k := m; k <= n-m; k++ {
			ovVol, ovMargin, _ := pre.IntersectionMeasures(suffix[k])
			cands = append(cands, candidate{
				byUpper: byUpper, k: k,
				overlapVol: ovVol, overlapMargin: ovMargin,
				totalVol: pre.Volume() + suffix[k].Volume(),
			})
			if k < n-m {
				pre = pre.Extend(sorted[k].Rect)
			}
		}
	}

	useMargin := false
	if revised {
		useMargin = true
		for _, c := range cands {
			if c.overlapVol > 0 {
				useMargin = false
				break
			}
		}
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		a, b := cands[i], cands[best]
		var aKey, bKey float64
		if useMargin {
			aKey, bKey = a.overlapMargin, b.overlapMargin
		} else {
			aKey, bKey = a.overlapVol, b.overlapVol
		}
		if aKey < bKey || (aKey == bKey && a.totalVol < b.totalVol) {
			best = i
		}
	}
	sorted := sortEntriesByAxis(entries, bestAxis, cands[best].byUpper)
	left := append([]Entry(nil), sorted[:cands[best].k]...)
	right := append([]Entry(nil), sorted[cands[best].k:]...)
	return left, right
}

func sortEntriesByAxis(entries []Entry, axis int, byUpper bool) []Entry {
	out := append([]Entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if byUpper {
			if out[i].Rect.Hi[axis] != out[j].Rect.Hi[axis] {
				return out[i].Rect.Hi[axis] < out[j].Rect.Hi[axis]
			}
			return out[i].Rect.Lo[axis] < out[j].Rect.Lo[axis]
		}
		if out[i].Rect.Lo[axis] != out[j].Rect.Lo[axis] {
			return out[i].Rect.Lo[axis] < out[j].Rect.Lo[axis]
		}
		return out[i].Rect.Hi[axis] < out[j].Rect.Hi[axis]
	})
	return out
}

func entryRects(entries []Entry) []geom.Rect {
	out := make([]geom.Rect, len(entries))
	for i := range entries {
		out[i] = entries[i].Rect
	}
	return out
}

// --- Hilbert split -------------------------------------------------------------

// splitHilbert splits an over-full node by Hilbert order of the entry
// centres, keeping the curve-order invariant of the Hilbert R-tree. (The
// original HR-tree defers splits with 2-to-3 redistribution; plain halving
// is the standard simplification and only affects occupancy, not
// correctness.)
func (t *Tree) splitHilbert(entries []Entry) ([]Entry, []Entry) {
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return t.curve.IndexRect(sorted[i].Rect) < t.curve.IndexRect(sorted[j].Rect)
	})
	half := len(sorted) / 2
	if half < t.cfg.MinEntries {
		half = t.cfg.MinEntries
	}
	if len(sorted)-half < t.cfg.MinEntries {
		half = len(sorted) - t.cfg.MinEntries
	}
	left := append([]Entry(nil), sorted[:half]...)
	right := append([]Entry(nil), sorted[half:]...)
	return left, right
}
