package rtree

import (
	"sort"

	"cbb/internal/geom"
)

// splitEntries distributes an over-full entry set (M+1 entries) into two
// groups according to the variant's split algorithm. Both groups respect the
// minimum fill m.
func (t *Tree) splitEntries(entries []Entry) (groupA, groupB []Entry) {
	switch t.cfg.Variant {
	case RStar:
		return t.splitRStar(entries, false)
	case RRStar:
		return t.splitRStar(entries, true)
	case Hilbert:
		if t.curve != nil {
			return t.splitHilbert(entries)
		}
		return t.splitQuadratic(entries)
	default:
		return t.splitQuadratic(entries)
	}
}

// --- Guttman quadratic split ------------------------------------------------

// splitQuadratic implements Guttman's quadratic-cost split: pick the two
// entries that would waste the most area if grouped together as seeds, then
// repeatedly assign the entry with the greatest preference difference to the
// group whose MBB it enlarges least, while honouring the minimum fill.
func (t *Tree) splitQuadratic(entries []Entry) ([]Entry, []Entry) {
	m := t.cfg.MinEntries
	seedA, seedB := pickQuadraticSeeds(entries)
	groupA := []Entry{entries[seedA]}
	groupB := []Entry{entries[seedB]}
	mbbA := entries[seedA].Rect.Clone()
	mbbB := entries[seedB].Rect.Clone()
	remaining := make([]Entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, entries[i])
		}
	}
	for len(remaining) > 0 {
		// If one group needs every remaining entry to reach the minimum
		// fill, assign them all to it.
		if len(groupA)+len(remaining) == m {
			groupA = append(groupA, remaining...)
			return groupA, groupB
		}
		if len(groupB)+len(remaining) == m {
			groupB = append(groupB, remaining...)
			return groupA, groupB
		}
		// Pick the entry with the maximum difference of enlargement costs.
		bestIdx, bestDiff := -1, -1.0
		var bestToA bool
		for i, e := range remaining {
			dA := mbbA.Enlargement(e.Rect)
			dB := mbbB.Enlargement(e.Rect)
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
				switch {
				case dA < dB:
					bestToA = true
				case dB < dA:
					bestToA = false
				case mbbA.Volume() != mbbB.Volume():
					bestToA = mbbA.Volume() < mbbB.Volume()
				default:
					bestToA = len(groupA) <= len(groupB)
				}
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		if bestToA {
			groupA = append(groupA, e)
			mbbA = mbbA.Union(e.Rect)
		} else {
			groupB = append(groupB, e)
			mbbB = mbbB.Union(e.Rect)
		}
	}
	return groupA, groupB
}

// pickQuadraticSeeds returns the indexes of the pair of entries whose
// combined MBB wastes the most area.
func pickQuadraticSeeds(entries []Entry) (int, int) {
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			union := entries[i].Rect.Union(entries[j].Rect)
			waste := union.Volume() - entries[i].Rect.Volume() - entries[j].Rect.Volume()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	return seedA, seedB
}

// --- R* / RR* topological split ----------------------------------------------

// splitRStar implements the R*-tree split: choose the split axis by the
// minimum total margin over all candidate distributions, then the
// distribution with the least overlap (volume), breaking ties by total
// volume. With revised=true (the RR*-tree), overlap is measured by perimeter
// when every candidate has zero volume overlap, which discriminates
// distributions of degenerate rectangles — the perimeter-based goal function
// of the revised R*-tree.
func (t *Tree) splitRStar(entries []Entry, revised bool) ([]Entry, []Entry) {
	m := t.cfg.MinEntries
	dims := t.cfg.Dims
	n := len(entries)

	bestAxis, bestAxisMargin := -1, 0.0
	for d := 0; d < dims; d++ {
		margin := 0.0
		for _, byUpper := range []bool{false, true} {
			sorted := sortEntriesByAxis(entries, d, byUpper)
			for k := m; k <= n-m; k++ {
				left := geom.MBROf(entryRects(sorted[:k]))
				right := geom.MBROf(entryRects(sorted[k:]))
				margin += left.Margin() + right.Margin()
			}
		}
		if bestAxis < 0 || margin < bestAxisMargin {
			bestAxis, bestAxisMargin = d, margin
		}
	}

	type candidate struct {
		left, right   []Entry
		overlapVol    float64
		overlapMargin float64
		totalVol      float64
	}
	var cands []candidate
	for _, byUpper := range []bool{false, true} {
		sorted := sortEntriesByAxis(entries, bestAxis, byUpper)
		for k := m; k <= n-m; k++ {
			left := append([]Entry(nil), sorted[:k]...)
			right := append([]Entry(nil), sorted[k:]...)
			lm := geom.MBROf(entryRects(left))
			rm := geom.MBROf(entryRects(right))
			inter, ok := lm.Intersection(rm)
			ovVol, ovMargin := 0.0, 0.0
			if ok {
				ovVol = inter.Volume()
				ovMargin = inter.Margin()
			}
			cands = append(cands, candidate{
				left: left, right: right,
				overlapVol: ovVol, overlapMargin: ovMargin,
				totalVol: lm.Volume() + rm.Volume(),
			})
		}
	}

	useMargin := false
	if revised {
		useMargin = true
		for _, c := range cands {
			if c.overlapVol > 0 {
				useMargin = false
				break
			}
		}
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		a, b := cands[i], cands[best]
		var aKey, bKey float64
		if useMargin {
			aKey, bKey = a.overlapMargin, b.overlapMargin
		} else {
			aKey, bKey = a.overlapVol, b.overlapVol
		}
		if aKey < bKey || (aKey == bKey && a.totalVol < b.totalVol) {
			best = i
		}
	}
	return cands[best].left, cands[best].right
}

func sortEntriesByAxis(entries []Entry, axis int, byUpper bool) []Entry {
	out := append([]Entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if byUpper {
			if out[i].Rect.Hi[axis] != out[j].Rect.Hi[axis] {
				return out[i].Rect.Hi[axis] < out[j].Rect.Hi[axis]
			}
			return out[i].Rect.Lo[axis] < out[j].Rect.Lo[axis]
		}
		if out[i].Rect.Lo[axis] != out[j].Rect.Lo[axis] {
			return out[i].Rect.Lo[axis] < out[j].Rect.Lo[axis]
		}
		return out[i].Rect.Hi[axis] < out[j].Rect.Hi[axis]
	})
	return out
}

func entryRects(entries []Entry) []geom.Rect {
	out := make([]geom.Rect, len(entries))
	for i := range entries {
		out[i] = entries[i].Rect
	}
	return out
}

// --- Hilbert split -------------------------------------------------------------

// splitHilbert splits an over-full node by Hilbert order of the entry
// centres, keeping the curve-order invariant of the Hilbert R-tree. (The
// original HR-tree defers splits with 2-to-3 redistribution; plain halving
// is the standard simplification and only affects occupancy, not
// correctness.)
func (t *Tree) splitHilbert(entries []Entry) ([]Entry, []Entry) {
	sorted := append([]Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return t.curve.IndexRect(sorted[i].Rect) < t.curve.IndexRect(sorted[j].Rect)
	})
	half := len(sorted) / 2
	if half < t.cfg.MinEntries {
		half = t.cfg.MinEntries
	}
	if len(sorted)-half < t.cfg.MinEntries {
		half = len(sorted) - t.cfg.MinEntries
	}
	left := append([]Entry(nil), sorted[:half]...)
	right := append([]Entry(nil), sorted[half:]...)
	return left, right
}
