package rtree

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/geom"
)

// leafFromRects builds a detached leaf node over the given rects and syncs
// its mirror and quantised planes, without going through a tree.
func leafFromRects(rects []geom.Rect, dims int) *node {
	n := &node{leaf: true}
	for i, r := range rects {
		n.entries = append(n.entries, Entry{Rect: r, Object: ObjectID(i), Child: InvalidNode})
	}
	n.syncBoxes(dims)
	return n
}

// quantVerdicts runs the quantised kernel for one query against a node and
// returns the admitted-entry bitset as a bool slice.
func quantVerdicts(n *node, dims int, q geom.Rect) []bool {
	var qlo, qhi [geom.MaxDims]float64
	var qg [2 * geom.MaxDims]uint16
	copy(qlo[:dims], q.Lo)
	copy(qhi[:dims], q.Hi)
	quantiseQuery(n.qmbb, dims, &qlo, &qhi, &qg)
	mask := make([]uint64, (len(n.entries)+63)>>6)
	quantScan(n.qplanes, len(n.entries), dims, &qg, mask)
	out := make([]bool, len(n.entries))
	for i := range out {
		out[i] = mask[i>>6]&(1<<uint(i&63)) != 0
	}
	return out
}

// checkNeverMisses asserts the defining property of the conservative kernel:
// every entry that exactly intersects the query must be admitted by the
// quantised verdict. (The reverse — an admitted entry that does not
// intersect — is an allowed false positive.)
func checkNeverMisses(t *testing.T, n *node, dims int, q geom.Rect) {
	t.Helper()
	got := quantVerdicts(n, dims, q)
	for i := range n.entries {
		if n.entries[i].Rect.Intersects(q) && !got[i] {
			t.Fatalf("quantised kernel missed entry %d (%v) for query %v (node MBB %v)",
				i, n.entries[i].Rect, q, n.qmbb)
		}
	}
}

// TestQuantPlanesDegenerateMBB pins the zero-extent corner case: when every
// entry shares the same coordinate in a dimension, the node MBB collapses
// there, every bound quantises to grid 0, and the dimension must pass
// vacuously — no query overlapping the point may lose the entries.
func TestQuantPlanesDegenerateMBB(t *testing.T) {
	for dims := 1; dims <= 3; dims++ {
		// All entries are the identical point rect: MBB degenerate in every
		// dimension.
		pt := make(geom.Point, dims)
		for d := range pt {
			pt[d] = 3.25
		}
		rects := make([]geom.Rect, 9)
		for i := range rects {
			rects[i] = geom.Rect{Lo: pt.Clone(), Hi: pt.Clone()}
		}
		n := leafFromRects(rects, dims)
		for d := 0; d < dims; d++ {
			if n.qmbb[d] != 3.25 || n.qmbb[dims+d] != 3.25 {
				t.Fatalf("dims=%d: degenerate qmbb = %v", dims, n.qmbb)
			}
		}
		q := geom.Rect{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
		for d := 0; d < dims; d++ {
			q.Lo[d] = 3.0
			q.Hi[d] = 4.0
		}
		checkNeverMisses(t, n, dims, q)
		// A query through the degenerate point itself.
		checkNeverMisses(t, n, dims, geom.Rect{Lo: pt.Clone(), Hi: pt.Clone()})

		// Mixed: dimension 0 degenerate, the rest extended.
		if dims > 1 {
			rng := rand.New(rand.NewSource(7))
			for i := range rects {
				lo := make(geom.Point, dims)
				hi := make(geom.Point, dims)
				lo[0], hi[0] = 1.5, 1.5
				for d := 1; d < dims; d++ {
					lo[d] = rng.Float64()
					hi[d] = lo[d] + rng.Float64()
				}
				rects[i] = geom.Rect{Lo: lo, Hi: hi}
			}
			n = leafFromRects(rects, dims)
			for trial := 0; trial < 64; trial++ {
				checkNeverMisses(t, n, dims, randRect(rng, dims, 2, 1))
			}
		}
	}
}

// TestQuantPlanesBoundaryEntries pins the grid-endpoint exactness the
// conservative argument relies on: qdecode(0) == lo and qdecode(qMax) == hi
// exactly, so entries sitting on the node MBB faces survive queries that
// merely touch those faces.
func TestQuantPlanesBoundaryEntries(t *testing.T) {
	for dims := 1; dims <= 3; dims++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = -1.75
			hi[d] = 2.5
		}
		// One entry spanning the whole MBB, one at each extreme face.
		rects := []geom.Rect{
			{Lo: lo.Clone(), Hi: hi.Clone()},
			{Lo: lo.Clone(), Hi: lo.Clone()},
			{Lo: hi.Clone(), Hi: hi.Clone()},
		}
		n := leafFromRects(rects, dims)
		for d := 0; d < dims; d++ {
			if g := n.planeAt(dims, d, 1, true); qdecode(n.qmbb[d], n.qmbb[dims+d], uint32(g)) < lo[d] {
				t.Fatalf("dims=%d: boundary upper bound decodes below the face", dims)
			}
		}
		// Queries touching exactly one face must keep the face entry.
		touchLo := geom.Rect{Lo: lo.Clone(), Hi: lo.Clone()}
		touchHi := geom.Rect{Lo: hi.Clone(), Hi: hi.Clone()}
		for _, q := range []geom.Rect{touchLo, touchHi} {
			checkNeverMisses(t, n, dims, q)
		}
		got := quantVerdicts(n, dims, touchLo)
		if !got[0] || !got[1] {
			t.Fatalf("dims=%d: face-touching query lost boundary entries: %v", dims, got)
		}
	}
}

// TestQuantPlanesNeverMissRandom is the property test behind the fuzz
// target, run over dims 1..3 with adversarial coordinate spreads (tiny
// extents, huge magnitudes, negative ranges).
func TestQuantPlanesNeverMissRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spans := []float64{1e-9, 1, 1e12}
	for dims := 1; dims <= 3; dims++ {
		for _, span := range spans {
			rects := make([]geom.Rect, 37)
			for i := range rects {
				r := randRect(rng, dims, span, span/4)
				for d := 0; d < dims; d++ {
					r.Lo[d] -= span / 2
					r.Hi[d] -= span / 2
				}
				rects[i] = r
			}
			n := leafFromRects(rects, dims)
			for trial := 0; trial < 128; trial++ {
				q := randRect(rng, dims, span, span/2)
				for d := 0; d < dims; d++ {
					q.Lo[d] -= span / 2
					q.Hi[d] -= span / 2
				}
				checkNeverMisses(t, n, dims, q)
			}
		}
	}
}

// TestInsertRejectsNonFinite pins that non-finite coordinates are rejected
// at every ingest entry point, so the quantiser never sees NaN or ±Inf and
// node MBBs stay finite (the grid math depends on it).
func TestInsertRejectsNonFinite(t *testing.T) {
	bad := []geom.Rect{
		{Lo: geom.Point{math.NaN(), 0}, Hi: geom.Point{1, 1}},
		{Lo: geom.Point{0, 0}, Hi: geom.Point{math.Inf(1), 1}},
		{Lo: geom.Point{math.Inf(-1), 0}, Hi: geom.Point{1, 1}},
	}
	for i, r := range bad {
		tr, err := New(smallConfig(2, RStar))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Insert(r, 1); err == nil {
			t.Errorf("case %d: Insert accepted non-finite rect %v", i, r)
		}
		if err := tr.BulkLoad([]Item{{Rect: r, Object: 1}}); err == nil {
			t.Errorf("case %d: BulkLoad accepted non-finite rect %v", i, r)
		}
		if _, err := tr.InsertItems([]Item{{Rect: r, Object: 1}}); err == nil {
			t.Errorf("case %d: InsertItems accepted non-finite rect %v", i, r)
		}
	}
}

// TestValidateDetectsPlaneCorruption checks that Validate cross-checks the
// filter layer: a plane bound rewritten to be non-conservative, a truncated
// plane slice, and a drifted plane MBB must all be reported.
func TestValidateDetectsPlaneCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, err := New(smallConfig(2, RStar))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 64)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 2, 10, 1), Object: ObjectID(i)}
	}
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("pristine tree fails validation: %v", err)
	}
	n := tr.mustNode(tr.root)
	// Non-conservative lower bound: force entry 0's dim-0 lower plane to the
	// top of the grid (its decode lands on the MBB hi, above the true lo
	// unless the MBB is degenerate — it is not, by construction).
	saved := n.qplanes[0]
	n.qplanes[0] |= uint64(dirQMax)
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed a non-conservative plane bound")
	}
	n.qplanes[0] = saved
	// Truncated planes.
	savedPlanes := n.qplanes
	n.qplanes = n.qplanes[:len(n.qplanes)-1]
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed a truncated plane slice")
	}
	n.qplanes = savedPlanes
	// Drifted plane MBB.
	savedLo := n.qmbb[0]
	n.qmbb[0] = savedLo - 1
	if err := tr.Validate(); err == nil {
		t.Error("Validate missed a drifted plane MBB")
	}
	n.qmbb[0] = savedLo
	if err := tr.Validate(); err != nil {
		t.Fatalf("restored tree fails validation: %v", err)
	}
}

// TestV2DirPlanesAdoptedVerbatim pins the cross-store identity at its root:
// a directory node round-tripped through the compressed v2 page layout comes
// back with bit-identical packed planes and plane MBB (the decoder installs
// the page's stored grid coordinates; it never requantises decoded rects).
func TestV2DirPlanesAdoptedVerbatim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, err := New(smallConfig(2, RStar))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 400)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 2, 100, 2), Object: ObjectID(i)}
	}
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	dirs, leaves := 0, 0
	for _, n := range tr.nodes {
		if n == nil || len(n.entries) == 0 {
			continue
		}
		buf, err := encodeNodeV2(n, 2)
		if err != nil {
			t.Fatalf("node %d: encode: %v", n.id, err)
		}
		dec, err := decodeNodeV2(buf, 2)
		if err != nil {
			t.Fatalf("node %d: decode: %v", n.id, err)
		}
		if !dec.hasPlanes(2) {
			t.Fatalf("node %d: decoded without planes", n.id)
		}
		if n.leaf {
			leaves++
		} else {
			dirs++
		}
		// Leaf pages are lossless, so requantising the decoded rects lands on
		// the same planes; directory pages must adopt the stored grid coords.
		// Either way the planes and their MBB must match bit for bit.
		for i, w := range n.qplanes {
			if dec.qplanes[i] != w {
				t.Fatalf("node %d (leaf=%v): plane word %d differs after round-trip: %#x != %#x",
					n.id, n.leaf, i, dec.qplanes[i], w)
			}
		}
		for d, v := range n.qmbb {
			if dec.qmbb[d] != v {
				t.Fatalf("node %d (leaf=%v): plane MBB extent %d differs: %v != %v",
					n.id, n.leaf, d, dec.qmbb[d], v)
			}
		}
	}
	if dirs == 0 || leaves == 0 {
		t.Fatalf("tree too small to cover both node kinds (dirs=%d leaves=%d)", dirs, leaves)
	}
}

// TestSearchAndKNNMatchPlaneFreeScan strips the filter layer off every node
// (triggering the defensive exact-scan fallback) and checks that range and
// nearest-neighbour queries return identical results in identical order —
// the kernel is a pure accelerator, never a semantic change.
func TestSearchAndKNNMatchPlaneFreeScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr, err := New(smallConfig(2, RStar))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 2, 50, 2), Object: ObjectID(i)}
	}
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	queries := make([]geom.Rect, 40)
	for i := range queries {
		queries[i] = randRect(rng, 2, 50, 8)
	}
	points := make([]geom.Point, 16)
	for i := range points {
		points[i] = geom.Point{rng.Float64() * 50, rng.Float64() * 50}
	}
	type hit struct {
		obj ObjectID
	}
	run := func() ([][]hit, [][]Neighbor) {
		var hits [][]hit
		for _, q := range queries {
			var hs []hit
			tr.Search(q, func(o ObjectID, _ geom.Rect) bool { hs = append(hs, hit{o}); return true })
			hits = append(hits, hs)
		}
		var nns [][]Neighbor
		for _, p := range points {
			nns = append(nns, tr.NearestNeighbors(7, p))
		}
		return hits, nns
	}
	wantHits, wantNNs := run()
	for _, n := range tr.nodes {
		if n != nil {
			n.qplanes = nil
			n.qmbb = nil
		}
	}
	gotHits, gotNNs := run()
	for i := range wantHits {
		if len(gotHits[i]) != len(wantHits[i]) {
			t.Fatalf("query %d: %d hits with planes, %d without", i, len(wantHits[i]), len(gotHits[i]))
		}
		for j := range wantHits[i] {
			if gotHits[i][j] != wantHits[i][j] {
				t.Fatalf("query %d hit %d: %v with planes, %v without", i, j, wantHits[i][j], gotHits[i][j])
			}
		}
	}
	for i := range wantNNs {
		if len(gotNNs[i]) != len(wantNNs[i]) {
			t.Fatalf("knn %d: %d results with planes, %d without", i, len(wantNNs[i]), len(gotNNs[i]))
		}
		for j := range wantNNs[i] {
			w, g := wantNNs[i][j], gotNNs[i][j]
			if w.Object != g.Object || w.DistSq != g.DistSq || !w.Rect.Equal(g.Rect) {
				t.Fatalf("knn %d result %d: %+v with planes, %+v without", i, j, w, g)
			}
		}
	}
}

// FuzzQuantScanVerdict fuzzes the conservative kernel against the exact
// scan: for arbitrary finite node contents and query windows, the quantised
// verdict may over-approximate but must never miss an exact intersection.
func FuzzQuantScanVerdict(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(5), 0.0, 1.0)
	f.Add(int64(2), uint8(1), uint8(64), -3.5, 3.5)
	f.Add(int64(3), uint8(3), uint8(65), 1e-12, 2e-12)
	f.Add(int64(4), uint8(2), uint8(1), -1e15, 1e15)
	f.Add(int64(5), uint8(2), uint8(9), 7.0, 7.0) // degenerate query
	f.Fuzz(func(t *testing.T, seed int64, dimsRaw, countRaw uint8, qa, qb float64) {
		if math.IsNaN(qa) || math.IsInf(qa, 0) || math.IsNaN(qb) || math.IsInf(qb, 0) {
			t.Skip("query coordinates must be finite, like Search's Valid() gate")
		}
		dims := 1 + int(dimsRaw)%3
		count := 1 + int(countRaw)%70
		rng := rand.New(rand.NewSource(seed))
		rects := make([]geom.Rect, count)
		for i := range rects {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				a := (rng.Float64() - 0.5) * 100
				b := a + rng.Float64()*10
				if rng.Intn(4) == 0 {
					b = a // degenerate entry
				}
				lo[d], hi[d] = a, b
			}
			rects[i] = geom.Rect{Lo: lo, Hi: hi}
		}
		n := leafFromRects(rects, dims)
		qlo := math.Min(qa, qb)
		qhi := math.Max(qa, qb)
		q := geom.Rect{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
		for d := 0; d < dims; d++ {
			jitter := (rng.Float64() - 0.5) * 10
			q.Lo[d] = qlo + jitter
			q.Hi[d] = qhi + jitter
		}
		got := quantVerdicts(n, dims, q)
		for i := range rects {
			if rects[i].Intersects(q) && !got[i] {
				t.Fatalf("missed entry %d (%v) for query %v (node MBB %v)", i, rects[i], q, n.qmbb)
			}
		}
	})
}
