package rtree

import (
	"fmt"
	"sort"

	"cbb/internal/geom"
)

// InsertTrace reports which nodes were touched by a single insertion. The
// clipped R-tree layer uses it to decide which clip tables must be
// recomputed and to attribute the recomputation to one of the three causes
// measured in the paper's Figure 12 (node split, MBB change, CBB-only
// change).
type InsertTrace struct {
	// Leaf is the leaf node that received the object.
	Leaf NodeID
	// Split lists pre-existing nodes that were split.
	Split []NodeID
	// Created lists nodes created during the insertion (split partners and,
	// possibly, a new root).
	Created []NodeID
	// MBBChanged lists pre-existing nodes whose MBB changed and that were
	// not split.
	MBBChanged []NodeID
	// Placements lists every (node, rectangle) pair that received an entry
	// during the insertion, including entries moved by forced reinsertion.
	// The clipped layer validity-checks each placement against the target
	// node's clip points.
	Placements []Placement
	// Reinserted counts entries force-reinserted by the R*-tree overflow
	// treatment.
	Reinserted int
	// Rebuilt reports that a batch insert rebuilt the whole tree from
	// scratch (InsertItems' wholesale-rebuild path). Node ids may have been
	// freed and reused, so consumers must discard per-node bookkeeping and
	// recompute from a fresh walk; Created still lists every live node.
	Rebuilt bool

	// seen indexes membership of the three change sets above so the mark*
	// dedupe checks stay O(1). It is nil for single-insert traces, where the
	// sets stay tiny and the linear scans win; InsertItems allocates it so a
	// 64k-item batch does not pay O(n²) dedupe scans.
	seen map[NodeID]uint8
}

// Membership bits of InsertTrace.seen, mirroring the three change sets.
const (
	traceSplitBit uint8 = 1 << iota
	traceCreatedBit
	traceMBBBit
)

// Placement records that a rectangle was placed into a node.
type Placement struct {
	Node NodeID
	Rect geom.Rect
}

func (tr *InsertTrace) markSplit(id NodeID) {
	if tr.seen != nil {
		if tr.seen[id]&traceSplitBit != 0 {
			return
		}
		tr.seen[id] |= traceSplitBit
		tr.Split = append(tr.Split, id)
		return
	}
	for _, v := range tr.Split {
		if v == id {
			return
		}
	}
	tr.Split = append(tr.Split, id)
}

func (tr *InsertTrace) markCreated(id NodeID) {
	if tr.seen != nil {
		if tr.seen[id]&traceCreatedBit != 0 {
			return
		}
		tr.seen[id] |= traceCreatedBit
		tr.Created = append(tr.Created, id)
		return
	}
	for _, v := range tr.Created {
		if v == id {
			return
		}
	}
	tr.Created = append(tr.Created, id)
}

func (tr *InsertTrace) markMBBChanged(id NodeID) {
	if tr.seen != nil {
		if tr.seen[id] != 0 {
			return
		}
		tr.seen[id] = traceMBBBit
		tr.MBBChanged = append(tr.MBBChanged, id)
		return
	}
	for _, v := range tr.MBBChanged {
		if v == id {
			return
		}
	}
	for _, v := range tr.Split {
		if v == id {
			return
		}
	}
	for _, v := range tr.Created {
		if v == id {
			return
		}
	}
	tr.MBBChanged = append(tr.MBBChanged, id)
}

// Changed reports whether the node appears in any of the trace's change
// sets.
func (tr *InsertTrace) Changed(id NodeID) bool {
	if tr.seen != nil {
		return tr.seen[id] != 0
	}
	for _, v := range tr.Split {
		if v == id {
			return true
		}
	}
	for _, v := range tr.Created {
		if v == id {
			return true
		}
	}
	for _, v := range tr.MBBChanged {
		if v == id {
			return true
		}
	}
	return false
}

// levelMarks is the pooled replacement for the per-insertion
// `map[int]bool` that used to track which levels already ran the R*-tree
// forced-reinsert treatment. One instance lives on the Tree (the writer is
// single-threaded); begin() opens a fresh insertion without clearing — the
// slice is generation-stamped, so reuse costs one counter bump and zero
// allocations.
type levelMarks struct {
	gen []uint64
	cur uint64
}

// begin starts a fresh insertion scope: all previous marks become stale.
func (m *levelMarks) begin() { m.cur++ }

// done reports whether the level was already marked in this scope.
func (m *levelMarks) done(level int) bool {
	return level >= 0 && level < len(m.gen) && m.gen[level] == m.cur
}

// mark records the level in the current scope.
func (m *levelMarks) mark(level int) {
	for len(m.gen) <= level {
		m.gen = append(m.gen, 0)
	}
	m.gen[level] = m.cur
}

// Insert adds an object with the given rectangle to the tree and returns a
// trace of the structural changes. The rectangle's dimensionality must match
// the tree's. On a writable file-backed tree the mutation happens in the
// node arena and is written back by the next FlushDirty; a read-only tree
// returns ErrReadOnly.
//
// Every node the insertion touches is cloned into the writer's private
// arena first (copy-on-write), so concurrent readers keep traversing the
// previously published version; outside an explicit batch the new state is
// published to readers atomically when Insert returns.
func (t *Tree) Insert(r geom.Rect, obj ObjectID) (trace *InsertTrace, err error) {
	if err := t.ensureMutable(); err != nil {
		return nil, err
	}
	if !r.Valid() || r.Dims() != t.cfg.Dims {
		return nil, fmt.Errorf("rtree: invalid rectangle %v for a %d-dimensional tree", r, t.cfg.Dims)
	}
	t.beginMutation()
	defer func() { t.autoCommit(err) }()
	defer recoverFault(&err)
	trace = &InsertTrace{Leaf: InvalidNode}
	if t.root == InvalidNode {
		root := t.newNode(true, 0)
		t.root = root.id
		t.height = 1
		root.entries = append(root.entries, Entry{Rect: r.Clone(), Object: obj, Child: InvalidNode})
		t.touch(root)
		t.updateHilbertLHV(root)
		t.size++
		trace.Leaf = root.id
		trace.markCreated(root.id)
		trace.Placements = append(trace.Placements, Placement{Node: root.id, Rect: r.Clone()})
		t.counter.Write(1)
		return trace, nil
	}
	rootBefore := t.mustNode(t.root).mbb()
	t.ovMarks.begin()
	t.insertAtLevel(Entry{Rect: r.Clone(), Object: obj, Child: InvalidNode}, 0, trace, &t.ovMarks, true)
	t.size++
	if rootAfter := t.mustNode(t.root).mbb(); !rootAfter.Equal(rootBefore) {
		trace.markMBBChanged(t.root)
	}
	return trace, nil
}

// insertAtLevel places the entry into a node at the given level, handling
// overflow. recordLeaf marks whether the chosen node should be recorded as
// the receiving leaf in the trace (true only for the original object
// insertion, not for re-insertions).
func (t *Tree) insertAtLevel(e Entry, level int, trace *InsertTrace, marks *levelMarks, recordLeaf bool) {
	target := t.chooseSubtree(e.Rect, level)
	n := t.mutable(t.mustNode(target))
	if e.Child != InvalidNode {
		t.mustNode(e.Child).parent = n.id
	}
	before := n.mbb()
	n.entries = append(n.entries, e)
	t.touch(n)
	if recordLeaf && n.leaf {
		trace.Leaf = n.id
	}
	trace.Placements = append(trace.Placements, Placement{Node: n.id, Rect: e.Rect})
	t.counter.Write(1)
	if len(n.entries) > t.cfg.MaxEntries {
		t.handleOverflow(n, trace, marks)
		return
	}
	if !n.mbb().Equal(before) {
		trace.markMBBChanged(n.id)
	}
	t.updateHilbertLHV(n)
	t.adjustUpward(n, trace)
}

// chooseSubtree descends from the root to a node at the requested level,
// using the variant-specific selection policy, and returns its id.
func (t *Tree) chooseSubtree(r geom.Rect, level int) NodeID {
	cur := t.mustNode(t.root)
	for cur.level > level {
		idx := t.chooseChild(cur, r)
		cur = t.mustNode(cur.entries[idx].Child)
	}
	return cur.id
}

// chooseChild picks the index of the child entry of n that should receive a
// rectangle r, per the variant's policy.
func (t *Tree) chooseChild(n *node, r geom.Rect) int {
	switch t.cfg.Variant {
	case RStar, RRStar:
		// When the children are leaves (or, more generally, one level above
		// the target in the R* formulation), minimise overlap enlargement;
		// higher up minimise volume enlargement. The RR*-tree additionally
		// breaks ties by margin (perimeter) enlargement, which matters for
		// degenerate rectangles.
		if n.level == 1 {
			return t.chooseMinOverlapChild(n, r)
		}
		return t.chooseMinEnlargementChild(n, r)
	case Hilbert:
		if t.curve != nil {
			return t.chooseHilbertChild(n, r)
		}
		return t.chooseMinEnlargementChild(n, r)
	default:
		return t.chooseMinEnlargementChild(n, r)
	}
}

func (t *Tree) chooseMinEnlargementChild(n *node, r geom.Rect) int {
	best := 0
	var bestEnl, bestVol float64
	for i := range n.entries {
		enl := n.entries[i].Rect.Enlargement(r)
		vol := n.entries[i].Rect.Volume()
		if i == 0 || enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

func (t *Tree) chooseMinOverlapChild(n *node, r geom.Rect) int {
	type cand struct {
		idx        int
		overlapInc float64
		volInc     float64
		marginInc  float64
		vol        float64
	}
	best := cand{idx: -1}
	for i := range n.entries {
		grown := n.entries[i].Rect.Union(r)
		var ovBefore, ovAfter float64
		for j := range n.entries {
			if j == i {
				continue
			}
			ovBefore += n.entries[i].Rect.OverlapVolume(n.entries[j].Rect)
			ovAfter += grown.OverlapVolume(n.entries[j].Rect)
		}
		c := cand{
			idx:        i,
			overlapInc: ovAfter - ovBefore,
			volInc:     n.entries[i].Rect.Enlargement(r),
			marginInc:  n.entries[i].Rect.MarginEnlargement(r),
			vol:        n.entries[i].Rect.Volume(),
		}
		if best.idx < 0 || less(c, best, t.cfg.Variant) {
			best = c
		}
	}
	return best.idx
}

// less orders two subtree candidates. The R*-tree compares overlap
// enlargement, then volume enlargement, then volume; the RR*-tree inserts a
// margin-enlargement comparison before volume so that zero-volume
// rectangles (points, axis-parallel segments) are still discriminated.
func less(a, b struct {
	idx        int
	overlapInc float64
	volInc     float64
	marginInc  float64
	vol        float64
}, v Variant) bool {
	if a.overlapInc != b.overlapInc {
		return a.overlapInc < b.overlapInc
	}
	if a.volInc != b.volInc {
		return a.volInc < b.volInc
	}
	if v == RRStar && a.marginInc != b.marginInc {
		return a.marginInc < b.marginInc
	}
	return a.vol < b.vol
}

func (t *Tree) chooseHilbertChild(n *node, r geom.Rect) int {
	h := t.curve.IndexRect(r)
	best := -1
	for i := range n.entries {
		child := t.mustNode(n.entries[i].Child)
		if child.hilbertLHV >= h {
			if best < 0 || t.mustNode(n.entries[best].Child).hilbertLHV > child.hilbertLHV {
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	// All children have smaller LHV: take the one with the largest.
	best = 0
	for i := range n.entries {
		if t.mustNode(n.entries[i].Child).hilbertLHV > t.mustNode(n.entries[best].Child).hilbertLHV {
			best = i
		}
	}
	return best
}

// handleOverflow resolves an over-full node either by forced reinsertion
// (R*-tree, once per level per insertion) or by splitting.
func (t *Tree) handleOverflow(n *node, trace *InsertTrace, marks *levelMarks) {
	if t.cfg.Variant == RStar && n.id != t.root && !marks.done(n.level) {
		marks.mark(n.level)
		t.forcedReinsert(n, trace, marks)
		return
	}
	t.splitNode(n, trace, marks)
}

// forcedReinsert removes the configured fraction of entries whose centres
// are farthest from the node's centre and re-inserts them at the same level
// (the R*-tree overflow treatment).
func (t *Tree) forcedReinsert(n *node, trace *InsertTrace, marks *levelMarks) {
	centre := n.mbb().Center()
	type distEntry struct {
		e Entry
		d float64
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		ds[i] = distEntry{e: e, d: e.Rect.Center().DistSq(centre)}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d > ds[j].d })
	p := int(float64(t.cfg.MaxEntries) * t.cfg.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	if p >= len(ds) {
		p = len(ds) - 1
	}
	removed := make([]Entry, p)
	for i := 0; i < p; i++ {
		removed[i] = ds[i].e
	}
	kept := make([]Entry, 0, len(ds)-p)
	for i := p; i < len(ds); i++ {
		kept = append(kept, ds[i].e)
	}
	n.entries = kept
	t.touch(n)
	trace.markMBBChanged(n.id)
	t.updateHilbertLHV(n)
	t.adjustUpward(n, trace)
	trace.Reinserted += len(removed)
	// Reinsert far entries first (the R*-tree's "reinsert" ordering).
	for _, e := range removed {
		t.insertAtLevel(e, n.level, trace, marks, false)
	}
}

// splitNode splits an over-full node with the variant's split algorithm and
// pushes the new sibling into the parent (growing the tree if the root was
// split).
func (t *Tree) splitNode(n *node, trace *InsertTrace, marks *levelMarks) {
	groupA, groupB := t.splitEntries(n.entries)
	sibling := t.newNode(n.leaf, n.level)
	n.entries = groupA
	sibling.entries = groupB
	t.touch(n)
	t.touch(sibling)
	if !n.leaf {
		for i := range sibling.entries {
			t.mustNode(sibling.entries[i].Child).parent = sibling.id
		}
		for i := range n.entries {
			t.mustNode(n.entries[i].Child).parent = n.id
		}
	}
	t.updateHilbertLHV(n)
	t.updateHilbertLHV(sibling)
	trace.markSplit(n.id)
	trace.markCreated(sibling.id)
	t.counter.Write(2)

	if n.id == t.root {
		newRoot := t.newNode(false, n.level+1)
		newRoot.entries = []Entry{
			{Rect: n.mbb(), Child: n.id},
			{Rect: sibling.mbb(), Child: sibling.id},
		}
		t.touch(newRoot)
		n.parent = newRoot.id
		sibling.parent = newRoot.id
		t.root = newRoot.id
		t.height = newRoot.level + 1
		t.updateHilbertLHV(newRoot)
		trace.markCreated(newRoot.id)
		t.counter.Write(1)
		return
	}

	parent := t.mutable(t.mustNode(n.parent))
	idx := t.childIndex(parent, n.id)
	before := parent.mbb()
	parent.entries[idx].Rect = n.mbb()
	sibling.parent = parent.id
	parent.entries = append(parent.entries, Entry{Rect: sibling.mbb(), Child: sibling.id})
	t.touch(parent)
	t.counter.Write(1)
	if len(parent.entries) > t.cfg.MaxEntries {
		t.handleOverflow(parent, trace, marks)
		return
	}
	if !parent.mbb().Equal(before) {
		trace.markMBBChanged(parent.id)
	}
	t.updateHilbertLHV(parent)
	t.adjustUpward(parent, trace)
}

// adjustUpward propagates MBB (and Hilbert LHV) changes from n towards the
// root, recording every node whose MBB actually changed.
func (t *Tree) adjustUpward(n *node, trace *InsertTrace) {
	cur := n
	for cur.parent != InvalidNode {
		parent := t.mustNode(cur.parent)
		idx := t.childIndex(parent, cur.id)
		newMBB := cur.mbb()
		changed := !parent.entries[idx].Rect.Equal(newMBB)
		if changed {
			parent = t.mutable(parent)
			parent.entries[idx].Rect = newMBB
			t.touch(parent)
			trace.markMBBChanged(cur.id)
			t.counter.Write(1)
		}
		t.updateHilbertLHV(parent)
		if !changed && t.cfg.Variant != Hilbert {
			return
		}
		cur = parent
	}
}

// childIndex finds the entry slot of child within parent. It panics if the
// child is not present, which would indicate a corrupted tree.
func (t *Tree) childIndex(parent *node, child NodeID) int {
	for i := range parent.entries {
		if parent.entries[i].Child == child {
			return i
		}
	}
	panic(fmt.Sprintf("rtree: node %d not found in parent %d", child, parent.id))
}

// updateHilbertLHV refreshes the cached largest-Hilbert-value of a node
// (Hilbert variant only; a no-op otherwise).
func (t *Tree) updateHilbertLHV(n *node) {
	if t.cfg.Variant != Hilbert || t.curve == nil {
		return
	}
	var max uint64
	if n.leaf {
		for i := range n.entries {
			if h := t.curve.IndexRect(n.entries[i].Rect); h > max {
				max = h
			}
		}
	} else {
		for i := range n.entries {
			if h := t.mustNode(n.entries[i].Child).hilbertLHV; h > max {
				max = h
			}
		}
	}
	n.hilbertLHV = max
}
