package rtree

import (
	"fmt"
	"math"
	"slices"

	"cbb/internal/geom"
	"cbb/internal/hilbert"
)

// Item is an (object id, rectangle) pair for bulk loading.
type Item struct {
	Object ObjectID
	Rect   geom.Rect
}

// BulkLoad builds the tree from scratch out of the given items using the
// loading strategy natural to the variant: Hilbert-order packing for the
// HR-tree (its defining construction) and Sort-Tile-Recursive packing for
// the other variants when bulk loading is explicitly requested. The tree
// must be empty.
func (t *Tree) BulkLoad(items []Item) (err error) {
	if err := t.ensureMutable(); err != nil {
		return err
	}
	t.beginMutation()
	defer func() { t.autoCommit(err) }()
	defer recoverFault(&err)
	if t.size != 0 || t.root != InvalidNode {
		return fmt.Errorf("rtree: BulkLoad requires an empty tree")
	}
	for i := range items {
		if !items[i].Rect.Valid() || items[i].Rect.Dims() != t.cfg.Dims {
			return fmt.Errorf("rtree: item %d has invalid rectangle %v", i, items[i].Rect)
		}
	}
	if len(items) == 0 {
		return nil
	}
	var leafEntries [][]Entry
	switch t.cfg.Variant {
	case Hilbert:
		leafEntries = t.packHilbert(items)
	default:
		leafEntries = t.packSTR(items)
	}
	t.buildFromLeaves(leafEntries)
	t.size = len(items)
	return nil
}

// packHilbert sorts items by the Hilbert value of their centres and packs
// them into leaves of capacity M in curve order (Kamel & Faloutsos). Keys
// are computed once per item, not once per comparison.
func (t *Tree) packHilbert(items []Item) [][]Entry {
	sorted := append([]Item(nil), items...)
	// Rebuild the curve over the actual data bounds: a curve spanning a much
	// larger configured universe would quantise the data into a handful of
	// cells and destroy the ordering.
	bounds := geom.MBROf(itemRects(sorted))
	if c, err := newCurveFor(bounds, t.cfg.HilbertBits); err == nil {
		t.curve = c
	}
	// Sort small (key, index) pairs — pointer-free, so swaps are cheap and
	// barrier-free — and apply the permutation once. Ordering by (key,
	// original index) is a total order, so any sort produces exactly the
	// permutation a stable sort by key would.
	ord := make([]hilbertOrd, len(sorted))
	for i := range sorted {
		ord[i] = hilbertOrd{key: t.curve.IndexRect(sorted[i].Rect), idx: int32(i)}
	}
	slices.SortFunc(ord, compareHilbertOrd)
	perm := make([]Item, len(sorted))
	for i, o := range ord {
		perm[i] = sorted[o.idx]
	}
	return packRuns(perm, t.cfg.MaxEntries)
}

// hilbertOrd pairs a Hilbert key with the item's original position; the
// position breaks ties so the order is total (and therefore deterministic).
type hilbertOrd struct {
	key uint64
	idx int32
}

func compareHilbertOrd(a, b hilbertOrd) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	return int(a.idx - b.idx)
}

// packSTR implements Sort-Tile-Recursive packing (Leutenegger et al.): sort
// by the first dimension, cut into vertical slabs of S·M items, sort each
// slab by the next dimension, and recurse. Centre coordinates are computed
// once up front (row-major, dims per item) rather than allocating a centre
// point on every comparison.
func (t *Tree) packSTR(items []Item) [][]Entry {
	sorted := append([]Item(nil), items...)
	dims := t.cfg.Dims
	centers := make([]float64, len(sorted)*dims)
	for i := range sorted {
		for d := 0; d < dims; d++ {
			centers[i*dims+d] = (sorted[i].Rect.Lo[d] + sorted[i].Rect.Hi[d]) / 2
		}
	}
	scratch := &strScratch{
		ord:     make([]centerOrd, len(sorted)),
		items:   make([]Item, len(sorted)),
		centers: make([]float64, len(sorted)*dims),
	}
	t.strSort(sorted, centers, scratch, 0)
	return packRuns(sorted, t.cfg.MaxEntries)
}

// centerOrd pairs one centre coordinate with the item's current position;
// the position breaks ties, making the order total — any sort then yields
// the permutation a stable sort by coordinate would.
type centerOrd struct {
	key float64
	idx int32
}

// strScratch holds the reusable buffers of one packSTR invocation: the
// (key, index) pairs being sorted and the permutation targets. Slabs are
// sorted one at a time, so one set of buffers serves the whole recursion.
type strScratch struct {
	ord     []centerOrd
	items   []Item
	centers []float64
}

// strStageSort sorts a slab by one centre dimension: pointer-free (key,
// index) pairs are sorted and the resulting permutation is applied to the
// items and their centre rows in one pass.
func strStageSort(items []Item, centers []float64, dims, dim int, s *strScratch) {
	n := len(items)
	ord := s.ord[:n]
	for i := 0; i < n; i++ {
		ord[i] = centerOrd{key: centers[i*dims+dim], idx: int32(i)}
	}
	slices.SortFunc(ord, func(a, b centerOrd) int {
		if a.key != b.key {
			if a.key < b.key {
				return -1
			}
			return 1
		}
		return int(a.idx - b.idx)
	})
	tmpI := s.items[:n]
	tmpC := s.centers[:n*dims]
	for i, o := range ord {
		tmpI[i] = items[o.idx]
		copy(tmpC[i*dims:(i+1)*dims], centers[int(o.idx)*dims:(int(o.idx)+1)*dims])
	}
	copy(items, tmpI)
	copy(centers, tmpC)
}

func (t *Tree) strSort(items []Item, centers []float64, scratch *strScratch, dim int) {
	if dim >= t.cfg.Dims {
		return
	}
	strStageSort(items, centers, t.cfg.Dims, dim, scratch)
	if dim == t.cfg.Dims-1 {
		return
	}
	// Number of leaves and slabs for the remaining dimensions.
	leaves := int(math.Ceil(float64(len(items)) / float64(t.cfg.MaxEntries)))
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(t.cfg.Dims-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(items)) / float64(slabs)))
	if slabSize < 1 {
		slabSize = 1
	}
	for start := 0; start < len(items); start += slabSize {
		end := start + slabSize
		if end > len(items) {
			end = len(items)
		}
		t.strSort(items[start:end], centers[start*t.cfg.Dims:end*t.cfg.Dims], scratch, dim+1)
	}
}

// packRuns chops a sorted item list into runs of at most capacity entries,
// distributing the items evenly across the runs so that every run also
// respects the minimum fill (the root-only exception is handled by the
// caller). Each run's entry rectangles are deep copies of the items' (the
// tree owns its entries), carved out of one flat per-run backing array —
// entry rectangles are never mutated in place, so sharing the backing is
// safe and costs two allocations per leaf instead of two per item.
func packRuns(items []Item, capacity int) [][]Entry {
	if len(items) == 0 {
		return nil
	}
	dims := items[0].Rect.Dims()
	sizes := groupSizes(len(items), capacity)
	out := make([][]Entry, 0, len(sizes))
	pos := 0
	for _, sz := range sizes {
		run := make([]Entry, 0, sz)
		buf := make([]float64, 2*dims*sz)
		for k, it := range items[pos : pos+sz] {
			lo := buf[k*2*dims : k*2*dims+dims : k*2*dims+dims]
			hi := buf[k*2*dims+dims : (k+1)*2*dims : (k+1)*2*dims]
			copy(lo, it.Rect.Lo)
			copy(hi, it.Rect.Hi)
			run = append(run, Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Object: it.Object, Child: InvalidNode})
		}
		out = append(out, run)
		pos += sz
	}
	return out
}

// groupSizes splits n items into ceil(n/capacity) groups of as-even-as-
// possible sizes. For at least two groups each size is at least capacity/2,
// which satisfies any legal minimum fill.
func groupSizes(n, capacity int) []int {
	if n == 0 {
		return nil
	}
	groups := (n + capacity - 1) / capacity
	base := n / groups
	extra := n % groups
	sizes := make([]int, groups)
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}

// buildFromLeaves materialises leaf nodes from entry runs and then packs
// parent levels bottom-up until a single root remains.
func (t *Tree) buildFromLeaves(leafEntries [][]Entry) {
	level := 0
	var current []NodeID
	for _, run := range leafEntries {
		n := t.newNode(true, 0)
		n.entries = run
		t.touch(n)
		t.updateHilbertLHV(n)
		t.counter.Write(1)
		current = append(current, n.id)
	}
	for len(current) > 1 {
		level++
		var next []NodeID
		pos := 0
		for _, sz := range groupSizes(len(current), t.cfg.MaxEntries) {
			parent := t.newNode(false, level)
			for _, childID := range current[pos : pos+sz] {
				child := t.mustNode(childID)
				child.parent = parent.id
				parent.entries = append(parent.entries, Entry{Rect: child.mbb(), Child: childID})
			}
			pos += sz
			t.touch(parent)
			t.updateHilbertLHV(parent)
			t.counter.Write(1)
			next = append(next, parent.id)
		}
		current = next
	}
	t.root = current[0]
	t.height = t.mustNode(t.root).level + 1
}

func itemRects(items []Item) []geom.Rect {
	out := make([]geom.Rect, len(items))
	for i := range items {
		out[i] = items[i].Rect
	}
	return out
}

func newCurveFor(bounds geom.Rect, bits int) (*hilbert.Curve, error) {
	return hilbert.New(bounds.Expand(bounds.Margin()*0.01+1), bits)
}
