package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"cbb/internal/geom"
	"cbb/internal/storage"
)

// This file implements the physical node layout of Figure 4a and tree
// persistence onto a storage.Pager: a directory node page holds its own id,
// level and a list of <child MBB, child page> slots; a leaf page holds
// <object MBB, object id> slots. The encoding is little-endian and
// fixed-width per entry so the entry capacity per page is predictable, which
// is what determines M for a given page size in the paper's benchmark
// configuration.

const nodeHeaderBytes = 1 + 1 + 4 + 4 // leaf flag, level, id, entry count

// EntryBytes returns the encoded size of one entry for the given
// dimensionality: 2·dims float64 extents plus an 8-byte child/object
// reference.
func EntryBytes(dims int) int { return dims*16 + 8 }

// MaxEntriesForPage returns the largest node capacity M that fits a page of
// the given size for the given dimensionality — how the paper derives M from
// the 4 KiB page size.
func MaxEntriesForPage(pageSize, dims int) int {
	usable := pageSize - nodeHeaderBytes
	if usable <= 0 {
		return 0
	}
	return usable / EntryBytes(dims)
}

// PageBytesFor returns the encoded size of a full node page (the inverse of
// MaxEntriesForPage): the smallest page that holds a node with maxEntries
// entries in the given dimensionality. The snapshot writer uses it to pick a
// page size for trees whose configured capacity exceeds what a 4 KiB page
// holds.
func PageBytesFor(maxEntries, dims int) int {
	return nodeHeaderBytes + maxEntries*EntryBytes(dims)
}

// encodeNode serialises a node into the Figure 4a layout.
func encodeNode(n *node, dims int) []byte {
	buf := make([]byte, 0, nodeHeaderBytes+len(n.entries)*EntryBytes(dims))
	if n.leaf {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, byte(n.level))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.entries)))
	for i := range n.entries {
		e := &n.entries[i]
		for d := 0; d < dims; d++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.Lo[d]))
		}
		for d := 0; d < dims; d++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.Hi[d]))
		}
		if n.leaf {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Object))
		} else {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(e.Child)))
		}
	}
	return buf
}

// decodeNode parses a node page. It returns an error for malformed input.
func decodeNode(buf []byte, dims int) (*node, error) {
	if len(buf) < nodeHeaderBytes {
		return nil, errors.New("rtree: node page too short")
	}
	n := &node{parent: InvalidNode}
	n.leaf = buf[0] == 1
	n.level = int(buf[1])
	n.id = NodeID(binary.LittleEndian.Uint32(buf[2:6]))
	count := int(binary.LittleEndian.Uint32(buf[6:10]))
	want := nodeHeaderBytes + count*EntryBytes(dims)
	if len(buf) < want {
		return nil, fmt.Errorf("rtree: node page truncated: have %d bytes, want %d", len(buf), want)
	}
	off := nodeHeaderBytes
	n.entries = make([]Entry, count)
	for i := 0; i < count; i++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for d := 0; d < dims; d++ {
			hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		ref := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		e := Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: InvalidNode}
		if n.leaf {
			e.Object = ObjectID(ref)
		} else {
			e.Child = NodeID(int64(ref))
		}
		n.entries[i] = e
	}
	n.syncBoxes(dims)
	return n, nil
}

// Save writes every node of the tree onto the page store, one page per node,
// and returns the page id of the root together with a map from node id to
// page id. It is used by the storage-overhead experiment, the snapshot
// subsystem, and persistence round-trip tests. Saving a file-backed tree
// faults every node in first.
func (t *Tree) Save(p storage.PageStore) (root storage.PageID, pages map[NodeID]storage.PageID, err error) {
	return t.SaveWith(p, CodecV1)
}

// Load reconstructs a tree previously written with Save. The configuration
// must match the one used when building the original tree.
func Load(cfg Config, p storage.PageStore, root storage.PageID, pages map[NodeID]storage.PageID) (*Tree, error) {
	return loadWith(cfg, p, root, pages, CodecV1)
}

func loadWith(cfg Config, p storage.PageStore, root storage.PageID, pages map[NodeID]storage.PageID, codec PageCodec) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// Invert the node→page mapping so children can be resolved.
	byPage := make(map[storage.PageID]NodeID, len(pages))
	for nid, pid := range pages {
		byPage[pid] = nid
	}
	rootNode, ok := byPage[root]
	if !ok {
		return nil, errors.New("rtree: root page not present in page map")
	}
	maxID, err := maxNodeID(pages)
	if err != nil {
		return nil, err
	}
	t.nodes = make([]*node, maxID+1)
	objects := 0
	height := 0
	for nid, pid := range pages {
		buf, _, err := p.Read(pid)
		if err != nil {
			return nil, fmt.Errorf("rtree: reading page %d: %w", pid, err)
		}
		n, err := decodeNodeCodec(buf, cfg.Dims, codec)
		if err != nil {
			return nil, err
		}
		if n.id != nid {
			return nil, fmt.Errorf("rtree: page %d claims node id %d, expected %d", pid, n.id, nid)
		}
		t.nodes[nid] = n
		if n.leaf {
			objects += len(n.entries)
		}
		if n.level+1 > height {
			height = n.level + 1
		}
	}
	// Fix parent pointers and Hilbert values.
	for _, n := range t.nodes {
		if n == nil || n.leaf {
			continue
		}
		for i := range n.entries {
			child := n.entries[i].Child
			if int(child) >= len(t.nodes) || t.nodes[child] == nil {
				return nil, fmt.Errorf("rtree: node %d references missing child %d", n.id, child)
			}
			t.nodes[child].parent = n.id
		}
	}
	t.root = rootNode
	t.size = objects
	t.height = height
	if cfg.Variant == Hilbert && t.curve != nil {
		// Recompute LHVs bottom-up (levels ascending).
		for level := 0; level < height; level++ {
			for _, n := range t.nodes {
				if n != nil && n.level == level {
					t.updateHilbertLHV(n)
				}
			}
		}
	}
	t.publish()
	return t, nil
}

// maxNodeID returns the largest node id in the page map, rejecting maps so
// sparse that sizing the arena by the maximum id would be an allocation
// hazard (a defence against corrupt or adversarial snapshots).
func maxNodeID(pages map[NodeID]storage.PageID) (NodeID, error) {
	maxID := NodeID(-1)
	for nid := range pages {
		if nid < 0 {
			return 0, fmt.Errorf("rtree: negative node id %d in page map", nid)
		}
		if nid > maxID {
			maxID = nid
		}
	}
	// Deletions can legitimately leave the arena sparse (freed ids are only
	// reused by later inserts), so the relative bound gets a generous
	// absolute floor: a 2^20-entry arena of nil pointers costs 8 MiB, cheap
	// enough to always allow, while still rejecting snapshots whose ids
	// would force a multi-gigabyte allocation.
	limit := 32*len(pages) + 1024
	if limit < 1<<20 {
		limit = 1 << 20
	}
	if int(maxID) >= limit {
		return 0, fmt.Errorf("rtree: implausibly sparse node ids (max %d for %d nodes)", maxID, len(pages))
	}
	return maxID, nil
}

// OpenPaged constructs a file-backed tree over pages previously written with
// Save: nodes are decoded from the page store on first access (through the
// tree's buffer pool and I/O counters, if attached) instead of being
// materialised up front, so a snapshot of any size opens in constant time.
// size and height come from the snapshot header because they cannot be known
// without reading every page. Concurrent readers are safe, exactly as for an
// in-memory tree.
//
// With readonly false the tree accepts Insert, Delete, and BulkLoad: the
// first mutation hydrates the tree (parent pointers are not stored in the
// page layout), mutated nodes accumulate in the dirty set, and FlushDirty
// writes them back to the store. With readonly true mutations return
// ErrReadOnly.
func OpenPaged(cfg Config, store storage.PageStore, pages map[NodeID]storage.PageID, root NodeID, size, height int, readonly bool) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("rtree: OpenPaged requires a page store")
	}
	t.src = &pageSource{store: store, pages: pages, readonly: readonly, codec: CodecV1, dirty: make(map[NodeID]struct{})}
	if root == InvalidNode {
		if len(pages) != 0 || size != 0 || height != 0 {
			return nil, errors.New("rtree: snapshot has pages but no root")
		}
		// An empty tree has nothing to hydrate; it is born mutable.
		t.src.hydrated = true
		t.publish()
		return t, nil
	}
	if _, ok := pages[root]; !ok {
		return nil, fmt.Errorf("rtree: root node %d has no page in the snapshot", root)
	}
	if size < 0 || height < 1 {
		return nil, fmt.Errorf("rtree: implausible snapshot size %d / height %d", size, height)
	}
	maxID, err := maxNodeID(pages)
	if err != nil {
		return nil, err
	}
	t.nodes = make([]*node, maxID+1)
	t.root = root
	t.size = size
	t.height = height
	// Publish the initial (lazy) version: readers fault nodes in on demand
	// from this epoch's page map until the first mutation hydrates the tree.
	t.publish()
	return t, nil
}

// AttachStore binds a freshly built (or still empty) in-memory tree to a
// page store as its write-back target: the tree becomes file-backed and
// writable, every current node is considered dirty, and the next FlushDirty
// writes the whole tree. pages maps nodes that already live on the store
// (nil when none do, e.g. for a tree created over an empty store).
func (t *Tree) AttachStore(store storage.PageStore, pages map[NodeID]storage.PageID) error {
	if store == nil {
		return errors.New("rtree: AttachStore requires a page store")
	}
	if t.src != nil {
		return errors.New("rtree: tree is already file-backed")
	}
	if pages == nil {
		pages = make(map[NodeID]storage.PageID)
	}
	src := &pageSource{store: store, pages: pages, hydrated: true, codec: CodecV1, dirty: make(map[NodeID]struct{})}
	t.src = src
	t.Walk(func(info NodeInfo) {
		if _, ok := pages[info.ID]; !ok {
			src.dirty[info.ID] = struct{}{}
		}
	})
	return nil
}

// FlushDirty writes every node mutated since the last flush back to the
// tree's page store: dirty nodes are re-encoded onto their existing pages,
// new nodes get pages allocated (reusing the store's free-page list), and
// pages of dissolved nodes are released. It returns the root's page id, the
// updated node→page map, and a commit callback.
//
// FlushDirty is transactional on the tree side: the dirty set, the freed
// list, and the live page map are not touched until the caller invokes
// commit — which it must do only once every dependent write (node index,
// clip table, superblock) has also succeeded. If anything fails before
// that, the tree's bookkeeping still describes the pre-flush state, and the
// page-store side effects are rolled back by discarding the store's journal
// — so a failed flush can simply be retried. The store itself decides
// durability: a journaled FilePager makes the whole batch atomic on its
// next commit.
func (t *Tree) FlushDirty() (storage.PageID, map[NodeID]storage.PageID, func(), error) {
	if t.src == nil {
		return storage.InvalidPage, nil, nil, errors.New("rtree: FlushDirty requires a file-backed tree")
	}
	if t.src.readonly {
		return storage.InvalidPage, nil, nil, ErrReadOnly
	}
	if t.inBatch {
		// A mid-batch flush would persist (and make undo of) uncommitted
		// state; the batch must Commit or Rollback first.
		return storage.InvalidPage, nil, nil, errors.New("rtree: FlushDirty inside an open batch")
	}
	src := t.src
	// Release pages of dissolved nodes first so their slots are available
	// for reuse by the allocations below — but only pages no pinned read
	// view can still reference: a page freed by the batch that committed
	// epoch E stays on the deferred list while any pinned version is older
	// than E (epoch-based reclamation; see version.go). Retained pages are
	// retried on the next flush.
	minPinned := t.minPinnedEpoch()
	var deferred []freedPage
	for _, fp := range src.freed {
		if fp.epoch > minPinned {
			deferred = append(deferred, fp)
			continue
		}
		if err := src.store.Free(fp.page); err != nil {
			return storage.InvalidPage, nil, nil, fmt.Errorf("rtree: releasing page %d: %w", fp.page, err)
		}
	}
	ids := make([]NodeID, 0, len(src.dirty))
	for id := range src.dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Work on a copy of the page map so a failure leaves src.pages intact.
	pages := make(map[NodeID]storage.PageID, len(src.pages)+len(ids))
	for id, pid := range src.pages {
		pages[id] = pid
	}
	for _, id := range ids {
		n := t.node(id)
		if n == nil {
			return storage.InvalidPage, nil, nil, fmt.Errorf("rtree: dirty node %d does not exist", id)
		}
		pid, ok := pages[id]
		if !ok {
			kind := storage.KindDirectory
			if n.leaf {
				kind = storage.KindLeaf
			}
			var err error
			pid, err = src.store.Allocate(kind)
			if err != nil {
				return storage.InvalidPage, nil, nil, fmt.Errorf("rtree: allocating page for node %d: %w", id, err)
			}
			pages[id] = pid
		}
		if err := src.store.Write(pid, encodeNode(n, t.cfg.Dims)); err != nil {
			return storage.InvalidPage, nil, nil, fmt.Errorf("rtree: writing node %d to page %d: %w", id, pid, err)
		}
	}
	root := storage.InvalidPage
	if t.root != InvalidNode {
		root = pages[t.root]
	}
	commit := func() {
		src.pages = pages
		src.dirty = make(map[NodeID]struct{})
		src.freed = deferred
	}
	return root, pages, commit, nil
}

// ReleaseFreedPages unconditionally releases every deferred freed page to
// the page store, returning how many it released. It is the close-time
// companion of FlushDirty's epoch-gated release: any pinned view that still
// exists is necessarily hydrated (a page can only be freed after the first
// mutation hydrated the whole tree), so it will never read the file again
// and the pages are safe to recycle. Without this, pages whose release was
// deferred past the final flush would stay marked in-use on disk forever —
// referenced by nothing, and flagged by the page-accounting audit.
func (t *Tree) ReleaseFreedPages() (int, error) {
	if t.src == nil || t.src.readonly {
		return 0, nil
	}
	released := 0
	for _, fp := range t.src.freed {
		if err := t.src.store.Free(fp.page); err != nil {
			t.src.freed = t.src.freed[released:]
			return released, err
		}
		released++
	}
	t.src.freed = nil
	return released, nil
}

// Materialize faults every node of a file-backed tree into memory and fixes
// up parent pointers (which are not stored in the page layout). It is a
// no-op for in-memory trees. Validate calls it implicitly; callers can also
// use it to warm a freshly opened tree. It must not run concurrently with
// queries, because it rewrites parent pointers the moment they are known.
func (t *Tree) Materialize() error {
	if t.src == nil {
		return nil
	}
	for id := range t.src.pages {
		if t.node(id) == nil {
			break
		}
	}
	if err := t.Err(); err != nil {
		return err
	}
	t.arenaMu.Lock()
	defer t.arenaMu.Unlock()
	t.fixParentsLocked()
	return nil
}
