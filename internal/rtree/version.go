package rtree

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"cbb/internal/geom"
	"cbb/internal/storage"
)

// This file implements the reader half of the tree's copy-on-write epoch
// versioning. A Version is an immutable snapshot of the tree published by a
// writer commit: the root id, object count, height, and the node array of
// that epoch. Readers obtain the current version with one atomic pointer
// load per query and traverse it without any further synchronisation —
// writers clone every node they touch into a fresh arena before mutating it,
// so the node objects referenced by a published version never change again.
//
// Two kinds of versions exist:
//
//   - ordinary versions (in-memory trees, and every version committed after
//     a file-backed tree's first mutation) hold a fully populated node array
//     and are traversed lock-free;
//   - the initial version of a lazily opened file-backed tree is "lazy":
//     nodes are still faulted in from the page file on first access, under
//     the tree's arena lock, exactly as file-backed reads always worked.
//     Because a writer's first mutation hydrates the whole tree (it needs
//     parent pointers), the lazy version is fully populated before any node
//     is ever mutated or any page rewritten, so lazy readers and the writer
//     can never observe each other's pages.
//
// Old versions are reclaimed by epoch-based garbage collection: in memory,
// dropping the last reference to a Version lets the Go runtime collect the
// node generations only it referenced; on disk, pages freed by a batch are
// released to the file pager's free list only once no pinned version is old
// enough to still reference them (see FlushDirty).

// Version is an immutable snapshot of a Tree at one committed epoch.
// Obtain one with Tree.PinSnapshot (pinned, for long-lived read views) or
// Tree.CurrentVersion (unpinned, for a single query); every read-only
// operation on it — Search, SearchAdmitted, NearestNeighbors, Node, Bounds —
// sees exactly the state of that commit, regardless of concurrent writer
// activity, and charges I/O to the owning tree's counters as usual.
type Version struct {
	tree   *Tree
	epoch  uint64
	root   NodeID
	size   int
	height int
	nodes  []*node
	// lazy marks the initial version of a file-backed tree whose nodes are
	// still faulted in on demand (under the tree's arena lock) from pages.
	lazy  bool
	pages map[NodeID]storage.PageID // page map of this epoch (lazy versions)
	pins  atomic.Int64
}

// Epoch returns the commit epoch of the version. Epochs increase by one per
// committed batch; two versions of the same tree with the same epoch are the
// same version.
func (v *Version) Epoch() uint64 { return v.epoch }

// Tree returns the tree this version was published by.
func (v *Version) Tree() *Tree { return v.tree }

// Len returns the number of objects indexed at this version's epoch.
func (v *Version) Len() int { return v.size }

// Height returns the number of tree levels at this version's epoch.
func (v *Version) Height() int { return v.height }

// RootID returns the root node id at this version's epoch.
func (v *Version) RootID() NodeID { return v.root }

// Dims returns the dimensionality of the indexed rectangles.
func (v *Version) Dims() int { return v.tree.cfg.Dims }

// Pin marks the version as referenced by a long-lived read view, deferring
// the release of file pages freed by later batches until Unpin. Pins are
// counted; every Pin must be matched by exactly one Unpin.
func (v *Version) Pin() { v.pins.Add(1) }

// Unpin releases a pin taken with Pin (or Tree.PinSnapshot).
func (v *Version) Unpin() { v.pins.Add(-1) }

// node returns the node with the given id at this version. Ordinary
// versions index the immutable node array directly; lazy versions fall back
// to the tree's fault path (arena-locked, reading the version's own page
// map), matching the pre-versioning behaviour of file-backed reads.
func (v *Version) node(id NodeID) *node {
	if !v.lazy {
		return v.nodes[id]
	}
	return v.tree.lazyNode(v, id)
}

// Bounds returns the MBB of all objects at this version (zero Rect when
// empty).
func (v *Version) Bounds() geom.Rect {
	if v.root == InvalidNode {
		return geom.Rect{}
	}
	n := v.node(v.root)
	if n == nil {
		return geom.Rect{}
	}
	return n.mbb()
}

// RootMBBIntersects reports whether q intersects the MBB of the root node at
// this version, without charging I/O or allocating. It returns false for an
// empty tree and true when the root cannot be read (so callers fall through
// to the regular search path, which records the fault).
func (v *Version) RootMBBIntersects(q geom.Rect) bool {
	if v.root == InvalidNode {
		return false
	}
	n := v.node(v.root)
	if n == nil {
		return true
	}
	return n.mbbIntersects(q, v.tree.cfg.Dims)
}

// Node returns a read-only snapshot of the node with the given id at this
// version. The returned Children slice aliases the version's immutable
// storage and must not be modified. Parent is always InvalidNode: parent
// pointers are writer-private metadata that the single writer refreshes in
// place on shared node objects, so a version must not read them (the join
// and search paths never need them).
func (v *Version) Node(id NodeID) (NodeInfo, error) {
	if id < 0 || int(id) >= len(v.nodes) {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	n := v.node(id)
	if n == nil {
		return NodeInfo{}, fmt.Errorf("rtree: node %d does not exist", id)
	}
	return NodeInfo{
		ID: n.id, Parent: InvalidNode, Leaf: n.leaf, Level: n.level,
		MBB: n.mbb(), Children: n.entries, Bytes: int(n.encSize), PlaneBytes: n.planeBytes(),
	}, nil
}

// Search finds every object intersecting q at this version; traversal stops
// early when visit returns false. Node accesses are charged to the owning
// tree's counter.
func (v *Version) Search(q geom.Rect, visit func(ObjectID, geom.Rect) bool) {
	v.searchIter(q, nil, nil, nil, visit)
}

// SearchCounted is Search with the node accesses charged to an explicit
// counter instead of the tree's own (the tree's counter when c is nil). It
// implements the batch executor's Searcher contract, so a pinned version can
// be fanned out over a worker pool directly.
func (v *Version) SearchCounted(q geom.Rect, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	v.searchIter(q, nil, nil, c, visit)
}

// SearchAdmittedCounted is Search with a per-child admission test (the
// clipped layer's Algorithm 2) and an explicit counter; either may be nil.
func (v *Version) SearchAdmittedCounted(q geom.Rect, adm Admitter, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	v.searchIter(q, nil, adm, c, visit)
}

// searchScratch is the pooled per-search working state: the explicit DFS
// stack, the query extents copied into fixed flat arrays so the hot loop
// compares contiguous memory against contiguous memory, and the grid-domain
// query window plus survivor bitmask of the quantised scan kernel.
type searchScratch struct {
	stack []NodeID
	qlo   [geom.MaxDims]float64
	qhi   [geom.MaxDims]float64
	qg    [2 * geom.MaxDims]uint16
	// maskBuf serves nodes of up to 256 entries (every page-derived fanout)
	// without a separate allocation, so a freshly constructed scratch costs
	// exactly as many mallocs as before the filter layer existed; mask is the
	// spill buffer for configurations with a larger fanout.
	maskBuf [4]uint64
	mask    []uint64
}

// maskFor returns the scratch's survivor-bitmask buffer sized for count
// entries: the inline buffer when it fits, otherwise the growable backing
// slice (amortised to zero by the pool in steady state).
func (sc *searchScratch) maskFor(count int) []uint64 {
	words := (count + 63) >> 6
	if words <= len(sc.maskBuf) {
		return sc.maskBuf[:words]
	}
	if cap(sc.mask) < words {
		sc.mask = make([]uint64, words)
	}
	return sc.mask[:words]
}

var searchScratchPool = sync.Pool{
	New: func() interface{} { return &searchScratch{stack: make([]NodeID, 0, 64)} },
}

// searchIter is the query hot path shared by Search, SearchFiltered,
// SearchAdmitted, and the batch executor: an iterative depth-first descent
// over an explicit pooled stack, against one immutable version. Per node the
// quantised SoA planes are scanned first (quantScan, branch-free, ANDing a
// survivor bitmask across dimensions); only survivors touch the exact
// float64 mirror — leaf survivors get one exact verification before visit,
// directory survivors are recursed into directly off the conservative grid
// verdict (admissible by the same containment argument as the v2 on-disk
// format; see quant.go). Survivors are walked in ascending entry order
// (trailing-zero iteration over the mask words) and admitted children are
// reversed on the stack, so nodes are processed — and I/O is charged — in
// exactly the order the recursive implementation used. Every store faults
// nodes in with identical planes (quant.go), so results, visit order, and
// leaf/directory access counts are bit-identical across mem/file/v2/mmap.
// In steady state it performs no heap allocations, takes no locks, and
// touches no shared mutable state beyond the atomic I/O counters: the one
// version load its caller performed pins the entire traversal.
//
// At most one of filter and adm is non-nil.
func (v *Version) searchIter(q geom.Rect, filter func(NodeID, geom.Rect) bool, adm Admitter, c *storage.Counter, visit func(ObjectID, geom.Rect) bool) {
	t := v.tree
	if v.root == InvalidNode || !q.Valid() || q.Dims() != t.cfg.Dims {
		return
	}
	if c == nil {
		c = t.counter
	}
	dims := t.cfg.Dims
	sc := searchScratchPool.Get().(*searchScratch)
	copy(sc.qlo[:dims], q.Lo)
	copy(sc.qhi[:dims], q.Hi)
	stack := append(sc.stack[:0], v.root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := v.node(id)
		if n == nil {
			continue // unreadable page on a file-backed tree; recorded in Err
		}
		if !n.hasPlanes(dims) {
			// Defensive exact path for nodes without a filter layer (freed-slot
			// placeholders; unreachable from a live root in practice).
			if !v.scanExact(n, q, filter, adm, c, visit, sc, &stack) {
				searchScratchPool.Put(sc)
				return
			}
			continue
		}
		count := len(n.entries)
		quantiseQuery(n.qmbb, dims, &sc.qlo, &sc.qhi, &sc.qg)
		mask := sc.maskFor(count)
		quantScan(n.qplanes, count, dims, &sc.qg, mask)
		if n.leaf {
			t.chargeReadNode(n, true, c)
			boxes := n.boxes
			for w := range mask {
				m := mask[w]
				for m != 0 {
					i := w<<6 + bits.TrailingZeros64(m)
					m &= m - 1
					if boxHits(boxes, i*2*dims, dims, &sc.qlo, &sc.qhi) {
						if !visit(n.entries[i].Object, n.entries[i].Rect) {
							sc.stack = stack[:0]
							searchScratchPool.Put(sc)
							return
						}
					}
				}
			}
			continue
		}
		t.chargeReadNode(n, false, c)
		base := len(stack)
		for w := range mask {
			m := mask[w]
			for m != 0 {
				i := w<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				e := &n.entries[i]
				switch {
				case filter != nil && !filter(e.Child, e.Rect):
				case adm != nil && !adm.AdmitChild(e.Child, e.Rect, q):
				default:
					stack = append(stack, e.Child)
				}
			}
		}
		// Reverse the admitted children so the first entry is popped first,
		// preserving the recursive depth-first visit order.
		for i, j := base, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	sc.stack = stack[:0]
	searchScratchPool.Put(sc)
}

// scanExact is the pre-quantisation scan over one node's float64 mirror,
// kept as the fallback for nodes without planes. Returns false when visit
// aborted the search (the caller returns immediately; sc.stack has been
// reset for the pool).
func (v *Version) scanExact(n *node, q geom.Rect, filter func(NodeID, geom.Rect) bool, adm Admitter, c *storage.Counter, visit func(ObjectID, geom.Rect) bool, sc *searchScratch, stack *[]NodeID) bool {
	t := v.tree
	dims := t.cfg.Dims
	boxes := n.boxes
	if n.leaf {
		t.chargeReadNode(n, true, c)
		off := 0
		for i := range n.entries {
			if boxHits(boxes, off, dims, &sc.qlo, &sc.qhi) {
				if !visit(n.entries[i].Object, n.entries[i].Rect) {
					sc.stack = (*stack)[:0]
					return false
				}
			}
			off += 2 * dims
		}
		return true
	}
	t.chargeReadNode(n, false, c)
	base := len(*stack)
	off := 0
	for i := range n.entries {
		if boxHits(boxes, off, dims, &sc.qlo, &sc.qhi) {
			e := &n.entries[i]
			switch {
			case filter != nil && !filter(e.Child, e.Rect):
			case adm != nil && !adm.AdmitChild(e.Child, e.Rect, q):
			default:
				*stack = append(*stack, e.Child)
			}
		}
		off += 2 * dims
	}
	for i, j := base, len(*stack)-1; i < j; i, j = i+1, j-1 {
		(*stack)[i], (*stack)[j] = (*stack)[j], (*stack)[i]
	}
	return true
}

// boxHits reports whether the entry box starting at boxes[off] (dims Lo
// extents followed by dims Hi extents) intersects the query extents.
func boxHits(boxes []float64, off, dims int, qlo, qhi *[geom.MaxDims]float64) bool {
	for d := 0; d < dims; d++ {
		if boxes[off+dims+d] < qlo[d] || qhi[d] < boxes[off+d] {
			return false
		}
	}
	return true
}
