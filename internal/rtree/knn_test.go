package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"cbb/internal/geom"
)

func bruteForceKNN(items []Item, p geom.Point, k int) []Neighbor {
	out := make([]Neighbor, 0, len(items))
	for _, it := range items {
		out = append(out, Neighbor{Object: it.Object, Rect: it.Rect, DistSq: it.Rect.MinDistSq(p)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DistSq < out[j].DistSq })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(61))
			tr := MustNew(smallConfig(2, v))
			var items []Item
			for i := 0; i < 600; i++ {
				r := randRect(rng, 2, 1000, 10)
				items = append(items, Item{Object: ObjectID(i), Rect: r})
				_, _ = tr.Insert(r, ObjectID(i))
			}
			for trial := 0; trial < 30; trial++ {
				p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
				k := 1 + rng.Intn(10)
				got := tr.NearestNeighbors(k, p)
				want := bruteForceKNN(items, p, k)
				if len(got) != len(want) {
					t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
				}
				for i := range got {
					// Distances must match exactly (ties may reorder ids).
					if got[i].DistSq != want[i].DistSq {
						t.Fatalf("k=%d rank %d: dist %g, want %g", k, i, got[i].DistSq, want[i].DistSq)
					}
				}
				// Results are sorted ascending.
				for i := 1; i < len(got); i++ {
					if got[i].DistSq < got[i-1].DistSq {
						t.Fatal("results not sorted by distance")
					}
				}
			}
		})
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr := MustNew(smallConfig(2, RStar))
	if tr.NearestNeighbors(3, geom.Pt(0, 0)) != nil {
		t.Error("empty tree should return nil")
	}
	_, _ = tr.Insert(geom.R(0, 0, 1, 1), 1)
	if tr.NearestNeighbors(0, geom.Pt(0, 0)) != nil {
		t.Error("k=0 should return nil")
	}
	if tr.NearestNeighbors(3, geom.Pt(0, 0, 0)) != nil {
		t.Error("dimension mismatch should return nil")
	}
	got := tr.NearestNeighbors(5, geom.Pt(10, 10))
	if len(got) != 1 || got[0].Object != 1 {
		t.Fatalf("k larger than tree size should return all objects: %v", got)
	}
	// A point inside an object has distance zero.
	if d := tr.NearestNeighbors(1, geom.Pt(0.5, 0.5))[0].DistSq; d != 0 {
		t.Errorf("containing object should have distance 0, got %g", d)
	}
}

func TestNearestNeighborsPrunesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	tr := MustNew(smallConfig(2, RStar))
	for i := 0; i < 2000; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 5000, 5), ObjectID(i))
	}
	_, leaves := tr.NodeCount()
	tr.Counter().Reset()
	tr.NearestNeighbors(5, geom.Pt(2500, 2500))
	read := tr.Counter().Snapshot().LeafReads
	if read == 0 {
		t.Fatal("kNN should read at least one leaf")
	}
	if read > int64(leaves)/4 {
		t.Errorf("best-first kNN read %d of %d leaves; pruning looks broken", read, leaves)
	}
}

func BenchmarkNearestNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := MustNew(DefaultConfig(2, RStar))
	for i := 0; i < 20000; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 10000, 10), ObjectID(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.NearestNeighbors(10, geom.Pt(rng.Float64()*10000, rng.Float64()*10000))
	}
}
