package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cbb/internal/geom"
)

// smallConfig returns a configuration with a small fan-out so that tests
// exercise splits and multiple levels with few objects.
func smallConfig(dims int, v Variant) Config {
	return Config{Dims: dims, MaxEntries: 8, MinEntries: 3, Variant: v, HilbertBits: 12}
}

func randRect(rng *rand.Rand, dims int, span, maxSide float64) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64() * span
		lo[d] = a
		hi[d] = a + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

func bruteForceSearch(items []Item, q geom.Rect) map[ObjectID]bool {
	out := make(map[ObjectID]bool)
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out[it.Object] = true
		}
	}
	return out
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Quadratic: "QR-tree", Hilbert: "HR-tree", RStar: "R*-tree", RRStar: "RR*-tree",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Variant %d String = %q, want %q", v, v.String(), want)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should render")
	}
	if len(AllVariants()) != 4 {
		t.Error("AllVariants should list the four paper variants")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg  Config
		ok   bool
		name string
	}{
		{DefaultConfig(2, Quadratic), true, "default 2d"},
		{DefaultConfig(3, RRStar), true, "default 3d"},
		{Config{Dims: 0, MaxEntries: 10, MinEntries: 4, Variant: RStar}, false, "zero dims"},
		{Config{Dims: 2, MaxEntries: 3, MinEntries: 1, Variant: RStar}, false, "tiny max"},
		{Config{Dims: 2, MaxEntries: 10, MinEntries: 6, Variant: RStar}, false, "min > max/2"},
		{Config{Dims: 2, MaxEntries: 10, MinEntries: 4, Variant: Variant(9)}, false, "bad variant"},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	if tr.Len() != 0 || tr.Height() != 0 || tr.RootID() != InvalidNode {
		t.Error("fresh tree should be empty")
	}
	if !tr.Bounds().IsZero() {
		t.Error("empty tree bounds should be zero")
	}
	found := 0
	tr.Search(geom.R(0, 0, 1, 1), func(ObjectID, geom.Rect) bool { found++; return true })
	if found != 0 {
		t.Error("searching an empty tree should find nothing")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty tree should validate: %v", err)
	}
	if _, err := tr.Node(0); err == nil {
		t.Error("Node on empty arena should fail")
	}
}

func TestInsertRejectsBadRect(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	if _, err := tr.Insert(geom.Rect{}, 1); err == nil {
		t.Error("zero rect must be rejected")
	}
	if _, err := tr.Insert(geom.R(0, 0, 0, 1, 1, 1), 1); err == nil {
		t.Error("wrong dimensionality must be rejected")
	}
}

func TestInsertAndSearchAllVariants(t *testing.T) {
	for _, v := range AllVariants() {
		for _, dims := range []int{2, 3} {
			name := fmt.Sprintf("%v-%dd", v, dims)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				tr := MustNew(smallConfig(dims, v))
				var items []Item
				for i := 0; i < 500; i++ {
					r := randRect(rng, dims, 1000, 20)
					items = append(items, Item{Object: ObjectID(i), Rect: r})
					if _, err := tr.Insert(r, ObjectID(i)); err != nil {
						t.Fatalf("insert %d: %v", i, err)
					}
				}
				if tr.Len() != 500 {
					t.Fatalf("Len = %d, want 500", tr.Len())
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("invariants violated: %v", err)
				}
				if tr.Height() < 2 {
					t.Fatalf("500 objects with fan-out 8 should give height >= 2, got %d", tr.Height())
				}
				// Random range queries agree with brute force.
				for q := 0; q < 50; q++ {
					query := randRect(rng, dims, 1000, 80)
					want := bruteForceSearch(items, query)
					got := make(map[ObjectID]bool)
					tr.Search(query, func(id ObjectID, _ geom.Rect) bool {
						got[id] = true
						return true
					})
					if len(got) != len(want) {
						t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
					}
					for id := range want {
						if !got[id] {
							t.Fatalf("query %v missing object %d", query, id)
						}
					}
				}
			})
		}
	}
}

func TestSearchEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := MustNew(smallConfig(2, Quadratic))
	for i := 0; i < 200; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 100, 10), ObjectID(i))
	}
	visited := 0
	tr.Search(geom.R(0, 0, 100, 100), func(ObjectID, geom.Rect) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("early termination failed, visited %d", visited)
	}
}

func TestSearchCountsIO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := MustNew(smallConfig(2, RStar))
	for i := 0; i < 400; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 1000, 10), ObjectID(i))
	}
	tr.Counter().Reset()
	tr.Search(geom.R(0, 0, 1000, 1000), func(ObjectID, geom.Rect) bool { return true })
	snap := tr.Counter().Snapshot()
	_, leaves := tr.NodeCount()
	if snap.LeafReads != int64(leaves) {
		t.Errorf("full-space query should read every leaf: read %d of %d", snap.LeafReads, leaves)
	}
	if snap.DirReads == 0 {
		t.Error("directory reads should be counted")
	}
	// A tiny query should read far fewer leaves.
	tr.Counter().Reset()
	tr.Search(geom.R(1, 1, 2, 2), func(ObjectID, geom.Rect) bool { return true })
	if small := tr.Counter().Snapshot().LeafReads; small >= int64(leaves) {
		t.Errorf("small query read %d leaves of %d", small, leaves)
	}
}

func TestSearchFiltered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := MustNew(smallConfig(2, Quadratic))
	for i := 0; i < 300; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 500, 5), ObjectID(i))
	}
	// A filter that rejects everything prunes all children of the root.
	tr.Counter().Reset()
	count := 0
	tr.SearchFiltered(geom.R(0, 0, 500, 500), func(NodeID, geom.Rect) bool { return false },
		func(ObjectID, geom.Rect) bool { count++; return true })
	if count != 0 {
		t.Errorf("filter rejecting all children should yield no results, got %d", count)
	}
	if tr.Counter().Snapshot().LeafReads != 0 {
		t.Error("rejected children must not be read")
	}
	// A pass-through filter behaves like Search.
	got := 0
	tr.SearchFiltered(geom.R(0, 0, 500, 500), func(NodeID, geom.Rect) bool { return true },
		func(ObjectID, geom.Rect) bool { got++; return true })
	if got != tr.Count(geom.R(0, 0, 500, 500)) {
		t.Error("pass-through filter should match unfiltered search")
	}
}

func TestInsertTraceReportsSplitsAndMBBChanges(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	var sawSplit, sawMBBChange bool
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		trace, err := tr.Insert(randRect(rng, 2, 100, 10), ObjectID(i))
		if err != nil {
			t.Fatal(err)
		}
		if trace.Leaf == InvalidNode {
			t.Fatal("trace should record the receiving leaf")
		}
		if len(trace.Split) > 0 {
			sawSplit = true
			if len(trace.Created) == 0 {
				t.Error("a split must create at least one node")
			}
		}
		if len(trace.MBBChanged) > 0 {
			sawMBBChange = true
		}
		for _, id := range trace.Split {
			if !trace.Changed(id) {
				t.Error("Changed should report split nodes")
			}
		}
	}
	if !sawSplit || !sawMBBChange {
		t.Errorf("expected both splits (%v) and MBB changes (%v) over 200 inserts", sawSplit, sawMBBChange)
	}
}

func TestDelete(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			tr := MustNew(smallConfig(2, v))
			var items []Item
			for i := 0; i < 300; i++ {
				r := randRect(rng, 2, 500, 10)
				items = append(items, Item{Object: ObjectID(i), Rect: r})
				_, _ = tr.Insert(r, ObjectID(i))
			}
			// Delete half the objects.
			for i := 0; i < 150; i++ {
				trace, err := tr.Delete(items[i].Rect, items[i].Object)
				if err != nil {
					t.Fatal(err)
				}
				if !trace.Found {
					t.Fatalf("object %d not found for deletion", i)
				}
			}
			if tr.Len() != 150 {
				t.Fatalf("Len after deletions = %d, want 150", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invariants violated after deletions: %v", err)
			}
			// Deleted objects are gone; remaining ones are still found.
			remaining := items[150:]
			got := make(map[ObjectID]bool)
			tr.Search(geom.R(-10, -10, 600, 600), func(id ObjectID, _ geom.Rect) bool {
				got[id] = true
				return true
			})
			if len(got) != len(remaining) {
				t.Fatalf("full search found %d, want %d", len(got), len(remaining))
			}
			for _, it := range remaining {
				if !got[it.Object] {
					t.Fatalf("remaining object %d missing", it.Object)
				}
			}
			// Deleting a non-existent object reports not found.
			trace, err := tr.Delete(geom.R(1, 1, 2, 2), 99999)
			if err != nil || trace.Found {
				t.Error("deleting a missing object should report Found=false")
			}
		})
	}
}

func TestDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := MustNew(smallConfig(2, RStar))
	var items []Item
	for i := 0; i < 100; i++ {
		r := randRect(rng, 2, 100, 5)
		items = append(items, Item{Object: ObjectID(i), Rect: r})
		_, _ = tr.Insert(r, ObjectID(i))
	}
	for _, it := range items {
		trace, err := tr.Delete(it.Rect, it.Object)
		if err != nil || !trace.Found {
			t.Fatalf("delete %d failed: %v %v", it.Object, err, trace)
		}
	}
	if tr.Len() != 0 || tr.RootID() != InvalidNode || tr.Height() != 0 {
		t.Fatalf("tree should be empty: len=%d root=%d height=%d", tr.Len(), tr.RootID(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree remains usable after total deletion.
	if _, err := tr.Insert(geom.R(0, 0, 1, 1), 7); err != nil {
		t.Fatal(err)
	}
	if tr.Count(geom.R(0, 0, 2, 2)) != 1 {
		t.Error("re-inserted object not found")
	}
}

func TestDeleteRejectsBadRect(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	if _, err := tr.Delete(geom.Rect{}, 1); err == nil {
		t.Error("invalid rect must be rejected")
	}
}

func TestBulkLoadAllVariants(t *testing.T) {
	for _, v := range AllVariants() {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			t.Run(fmt.Sprintf("%v-%d", v, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n) + 7))
				items := make([]Item, n)
				for i := range items {
					items[i] = Item{Object: ObjectID(i), Rect: randRect(rng, 2, 1000, 15)}
				}
				tr := MustNew(smallConfig(2, v))
				if err := tr.BulkLoad(items); err != nil {
					t.Fatal(err)
				}
				if tr.Len() != n {
					t.Fatalf("Len = %d, want %d", tr.Len(), n)
				}
				if n > 0 {
					if err := tr.Validate(); err != nil {
						t.Fatalf("invariants violated: %v", err)
					}
				}
				// Query agreement with brute force.
				for q := 0; q < 20; q++ {
					query := randRect(rng, 2, 1000, 100)
					want := bruteForceSearch(items, query)
					got := 0
					tr.Search(query, func(ObjectID, geom.Rect) bool { got++; return true })
					if got != len(want) {
						t.Fatalf("query %d: got %d, want %d", q, got, len(want))
					}
				}
			})
		}
	}
}

func TestBulkLoadRequiresEmptyTree(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	_, _ = tr.Insert(geom.R(0, 0, 1, 1), 1)
	if err := tr.BulkLoad([]Item{{Object: 2, Rect: geom.R(1, 1, 2, 2)}}); err == nil {
		t.Error("BulkLoad on a non-empty tree must fail")
	}
	tr2 := MustNew(smallConfig(2, Quadratic))
	if err := tr2.BulkLoad([]Item{{Object: 1, Rect: geom.R(0, 0, 0, 1, 1, 1)}}); err == nil {
		t.Error("BulkLoad with wrong-dimensional item must fail")
	}
}

func TestBulkLoadThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Object: ObjectID(i), Rect: randRect(rng, 2, 1000, 10)}
	}
	for _, v := range AllVariants() {
		tr := MustNew(smallConfig(2, v))
		if err := tr.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		for i := 500; i < 600; i++ {
			if _, err := tr.Insert(randRect(rng, 2, 1000, 10), ObjectID(i)); err != nil {
				t.Fatalf("%v: insert after bulk load: %v", v, err)
			}
		}
		if tr.Len() != 600 {
			t.Fatalf("%v: Len = %d", v, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}

func TestHilbertPackingProducesTighterLeaves(t *testing.T) {
	// Hilbert-ordered packing should produce leaves with much smaller total
	// volume than packing in insertion (random) order would; as a proxy we
	// check that the sum of leaf MBB volumes is far below the universe
	// volume times the leaf count.
	rng := rand.New(rand.NewSource(10))
	items := make([]Item, 2000)
	for i := range items {
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		items[i] = Item{Object: ObjectID(i), Rect: geom.MustRect(c, c.Add(geom.Pt(1, 1)))}
	}
	tr := MustNew(smallConfig(2, Hilbert))
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	var totalVol float64
	var leaves int
	tr.Walk(func(info NodeInfo) {
		if info.Leaf {
			totalVol += info.MBB.Volume()
			leaves++
		}
	})
	avg := totalVol / float64(leaves)
	if avg > 0.05*1000*1000 {
		t.Errorf("average Hilbert leaf volume %.0f is suspiciously large", avg)
	}
}

func TestNodeAndWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := MustNew(smallConfig(2, Quadratic))
	for i := 0; i < 100; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 100, 10), ObjectID(i))
	}
	seen := 0
	leafObjects := 0
	tr.Walk(func(info NodeInfo) {
		seen++
		if info.Leaf {
			leafObjects += len(info.Children)
			if info.Level != 0 {
				t.Error("leaves must be level 0")
			}
		}
		got, err := tr.Node(info.ID)
		if err != nil {
			t.Fatalf("Node(%d): %v", info.ID, err)
		}
		if !got.MBB.Equal(info.MBB) {
			t.Error("Node and Walk disagree on MBB")
		}
	})
	if leafObjects != 100 {
		t.Errorf("walk reached %d objects, want 100", leafObjects)
	}
	dir, leaf := tr.NodeCount()
	if dir+leaf != seen {
		t.Errorf("NodeCount %d+%d != walked %d", dir, leaf, seen)
	}
	if len(tr.All()) != 100 {
		t.Errorf("All returned %d entries", len(tr.All()))
	}
	if _, err := tr.Node(NodeID(9999)); err == nil {
		t.Error("Node with bogus id should fail")
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := MustNew(smallConfig(2, RRStar))
	for i := 0; i < 300; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 100, 5), ObjectID(i))
	}
	s := tr.Stats()
	if s.Objects != 300 || s.Height != tr.Height() {
		t.Errorf("Stats basic fields wrong: %+v", s)
	}
	if s.LeafNodes == 0 || s.DirNodes == 0 {
		t.Error("expected both leaf and directory nodes")
	}
	if s.AvgLeafOcc <= 0 || s.AvgLeafOcc > 1 {
		t.Errorf("AvgLeafOcc out of range: %g", s.AvgLeafOcc)
	}
	if s.Bounds.IsZero() {
		t.Error("Bounds should not be zero")
	}
}

func TestOccupancyInvariant(t *testing.T) {
	// After a long random insert/delete workload, every variant still
	// respects the occupancy bounds (checked by Validate) and answers
	// queries correctly.
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			tr := MustNew(smallConfig(2, v))
			live := make(map[ObjectID]geom.Rect)
			next := ObjectID(0)
			for step := 0; step < 1500; step++ {
				if len(live) == 0 || rng.Float64() < 0.65 {
					r := randRect(rng, 2, 300, 8)
					if _, err := tr.Insert(r, next); err != nil {
						t.Fatal(err)
					}
					live[next] = r
					next++
				} else {
					// Delete a random live object.
					var victim ObjectID
					k := rng.Intn(len(live))
					for id := range live {
						if k == 0 {
							victim = id
							break
						}
						k--
					}
					trace, err := tr.Delete(live[victim], victim)
					if err != nil || !trace.Found {
						t.Fatalf("delete of %d failed: %v", victim, err)
					}
					delete(live, victim)
				}
			}
			if tr.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			got := 0
			tr.Search(geom.R(-10, -10, 400, 400), func(ObjectID, geom.Rect) bool { got++; return true })
			if got != len(live) {
				t.Fatalf("full query found %d of %d", got, len(live))
			}
		})
	}
}

func TestRStarProducesLessOverlapThanQuadratic(t *testing.T) {
	// Statistical sanity check of the split policies: on clustered data, the
	// R*-tree's leaf-level overlap should not exceed the quadratic tree's by
	// any meaningful margin (usually it is clearly lower).
	rng := rand.New(rand.NewSource(14))
	var items []Item
	for c := 0; c < 20; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 100; i++ {
			x, y := cx+rng.NormFloat64()*20, cy+rng.NormFloat64()*20
			items = append(items, Item{
				Object: ObjectID(c*100 + i),
				Rect:   geom.R(x, y, x+rng.Float64()*5, y+rng.Float64()*5),
			})
		}
	}
	overlapOf := func(v Variant) float64 {
		tr := MustNew(smallConfig(2, v))
		for _, it := range items {
			_, _ = tr.Insert(it.Rect, it.Object)
		}
		var overlap float64
		tr.Walk(func(info NodeInfo) {
			if info.Leaf {
				return
			}
			for i := 0; i < len(info.Children); i++ {
				for j := i + 1; j < len(info.Children); j++ {
					overlap += info.Children[i].Rect.OverlapVolume(info.Children[j].Rect)
				}
			}
		})
		return overlap
	}
	q := overlapOf(Quadratic)
	r := overlapOf(RStar)
	if r > q*1.5 {
		t.Errorf("R*-tree overlap (%.0f) much worse than quadratic (%.0f)", r, q)
	}
}

func TestMaxEntriesForPage(t *testing.T) {
	m2 := MaxEntriesForPage(4096, 2)
	m3 := MaxEntriesForPage(4096, 3)
	if m2 <= m3 {
		t.Errorf("2d capacity (%d) should exceed 3d capacity (%d)", m2, m3)
	}
	if m2 < 50 || m2 > 200 {
		t.Errorf("2d capacity for 4KiB pages looks wrong: %d", m2)
	}
	if MaxEntriesForPage(10, 2) != 0 {
		t.Error("tiny pages hold no entries")
	}
	if EntryBytes(2) != 40 || EntryBytes(3) != 56 {
		t.Error("EntryBytes wrong")
	}
}

func TestSortEntriesByAxis(t *testing.T) {
	entries := []Entry{
		{Rect: geom.R(5, 0, 6, 1)},
		{Rect: geom.R(1, 0, 9, 1)},
		{Rect: geom.R(1, 0, 2, 1)},
	}
	byLo := sortEntriesByAxis(entries, 0, false)
	if byLo[0].Rect.Lo[0] != 1 || byLo[2].Rect.Lo[0] != 5 {
		t.Error("sort by lower bound wrong")
	}
	// Ties on Lo are broken by Hi.
	if byLo[0].Rect.Hi[0] != 2 {
		t.Error("tie-break by upper bound wrong")
	}
	byHi := sortEntriesByAxis(entries, 0, true)
	if byHi[0].Rect.Hi[0] != 1 && byHi[0].Rect.Hi[0] != 2 {
		t.Error("sort by upper bound wrong")
	}
}

func TestGroupSizes(t *testing.T) {
	cases := []struct {
		n, cap int
		groups int
	}{
		{0, 10, 0}, {5, 10, 1}, {10, 10, 1}, {11, 10, 2}, {101, 50, 3},
	}
	for _, c := range cases {
		sizes := groupSizes(c.n, c.cap)
		if len(sizes) != c.groups {
			t.Errorf("groupSizes(%d,%d) gave %d groups, want %d", c.n, c.cap, len(sizes), c.groups)
		}
		sum := 0
		for _, s := range sizes {
			sum += s
			if s > c.cap {
				t.Errorf("group size %d exceeds capacity %d", s, c.cap)
			}
		}
		if sum != c.n {
			t.Errorf("groupSizes(%d,%d) sums to %d", c.n, c.cap, sum)
		}
		if len(sizes) > 1 {
			min := sizes[0]
			for _, s := range sizes {
				if s < min {
					min = s
				}
			}
			if min < c.cap/2 {
				t.Errorf("smallest group %d below capacity/2", min)
			}
		}
	}
}

// Property-style test: for every variant, the set of (object, rect) pairs
// returned by All() is exactly what was inserted.
func TestAllReturnsEveryObject(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, v := range AllVariants() {
		tr := MustNew(smallConfig(3, v))
		want := make(map[ObjectID]geom.Rect)
		for i := 0; i < 400; i++ {
			r := randRect(rng, 3, 200, 10)
			want[ObjectID(i)] = r
			_, _ = tr.Insert(r, ObjectID(i))
		}
		got := tr.All()
		if len(got) != len(want) {
			t.Fatalf("%v: All returned %d, want %d", v, len(got), len(want))
		}
		ids := make([]int, 0, len(got))
		for _, e := range got {
			if !e.Rect.Equal(want[e.Object]) {
				t.Fatalf("%v: object %d has rect %v, want %v", v, e.Object, e.Rect, want[e.Object])
			}
			ids = append(ids, int(e.Object))
		}
		sort.Ints(ids)
		for i, id := range ids {
			if id != i {
				t.Fatalf("%v: missing or duplicated object ids", v)
			}
		}
	}
}

func BenchmarkInsertQuadratic(b *testing.B) {
	benchmarkInsert(b, Quadratic)
}

func BenchmarkInsertRStar(b *testing.B) {
	benchmarkInsert(b, RStar)
}

func BenchmarkInsertRRStar(b *testing.B) {
	benchmarkInsert(b, RRStar)
}

func benchmarkInsert(b *testing.B, v Variant) {
	rng := rand.New(rand.NewSource(1))
	tr := MustNew(DefaultConfig(2, v))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 10000, 10), ObjectID(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := MustNew(DefaultConfig(2, RStar))
	for i := 0; i < 20000; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 10000, 10), ObjectID(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := randRect(rng, 2, 10000, 100)
		tr.Search(q, func(ObjectID, geom.Rect) bool { return true })
	}
}
