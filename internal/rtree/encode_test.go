package rtree

import (
	"math/rand"
	"testing"

	"cbb/internal/geom"
	"cbb/internal/storage"
)

func TestEncodeDecodeNode(t *testing.T) {
	n := &node{id: 7, leaf: true, level: 0, parent: InvalidNode}
	n.entries = []Entry{
		{Rect: geom.R(1, 2, 3, 4), Object: 42, Child: InvalidNode},
		{Rect: geom.R(-5, 0, 5, 10), Object: 43, Child: InvalidNode},
	}
	buf := encodeNode(n, 2)
	back, err := decodeNode(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.id != 7 || !back.leaf || back.level != 0 || len(back.entries) != 2 {
		t.Fatalf("decoded node header wrong: %+v", back)
	}
	for i := range n.entries {
		if !back.entries[i].Rect.Equal(n.entries[i].Rect) || back.entries[i].Object != n.entries[i].Object {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, back.entries[i], n.entries[i])
		}
	}
}

func TestEncodeDecodeDirectoryNode(t *testing.T) {
	n := &node{id: 3, leaf: false, level: 2, parent: InvalidNode}
	n.entries = []Entry{
		{Rect: geom.R(0, 0, 0, 1, 1, 1), Child: 11},
		{Rect: geom.R(2, 2, 2, 3, 3, 3), Child: 12},
	}
	buf := encodeNode(n, 3)
	back, err := decodeNode(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.leaf || back.level != 2 {
		t.Fatal("directory header wrong")
	}
	if back.entries[0].Child != 11 || back.entries[1].Child != 12 {
		t.Fatal("child references lost")
	}
}

func TestDecodeNodeErrors(t *testing.T) {
	if _, err := decodeNode(nil, 2); err == nil {
		t.Error("empty buffer must fail")
	}
	n := &node{id: 1, leaf: true}
	n.entries = []Entry{{Rect: geom.R(0, 0, 1, 1), Object: 1, Child: InvalidNode}}
	buf := encodeNode(n, 2)
	if _, err := decodeNode(buf[:len(buf)-4], 2); err == nil {
		t.Error("truncated buffer must fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			cfg := smallConfig(2, v)
			tr := MustNew(cfg)
			var items []Item
			for i := 0; i < 400; i++ {
				r := randRect(rng, 2, 500, 10)
				items = append(items, Item{Object: ObjectID(i), Rect: r})
				_, _ = tr.Insert(r, ObjectID(i))
			}
			pager := storage.NewPager(storage.DefaultPageSize)
			root, pages, err := tr.Save(pager)
			if err != nil {
				t.Fatal(err)
			}
			if len(pages) == 0 || root == storage.InvalidPage {
				t.Fatal("Save produced no pages")
			}
			back, err := Load(cfg, pager, root, pages)
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != tr.Len() || back.Height() != tr.Height() {
				t.Fatalf("loaded tree shape differs: len %d vs %d, height %d vs %d",
					back.Len(), tr.Len(), back.Height(), tr.Height())
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("loaded tree invalid: %v", err)
			}
			// Queries agree between original and loaded trees.
			for q := 0; q < 25; q++ {
				query := randRect(rng, 2, 500, 60)
				if tr.Count(query) != back.Count(query) {
					t.Fatalf("query results differ after round trip")
				}
			}
		})
	}
}

func TestSaveEmptyTreeFails(t *testing.T) {
	tr := MustNew(smallConfig(2, Quadratic))
	if _, _, err := tr.Save(storage.NewPager(0)); err == nil {
		t.Error("saving an empty tree should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	cfg := smallConfig(2, Quadratic)
	tr := MustNew(cfg)
	for i := 0; i < 50; i++ {
		_, _ = tr.Insert(geom.R(float64(i), 0, float64(i)+1, 1), ObjectID(i))
	}
	pager := storage.NewPager(0)
	root, pages, err := tr.Save(pager)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown root page.
	if _, err := Load(cfg, pager, storage.PageID(99999), pages); err == nil {
		t.Error("bogus root page must fail")
	}
	// Page map referencing a missing page.
	broken := map[NodeID]storage.PageID{NodeID(0): storage.PageID(99999)}
	if _, err := Load(cfg, pager, storage.PageID(99999), broken); err == nil {
		t.Error("missing pages must fail")
	}
	_ = root
}

func TestSavePageKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tr := MustNew(smallConfig(2, RStar))
	for i := 0; i < 300; i++ {
		_, _ = tr.Insert(randRect(rng, 2, 500, 10), ObjectID(i))
	}
	pager := storage.NewPager(0)
	if _, _, err := tr.Save(pager); err != nil {
		t.Fatal(err)
	}
	usage := pager.Usage()
	dir, leaf := tr.NodeCount()
	if usage.Pages[storage.KindLeaf] != leaf || usage.Pages[storage.KindDirectory] != dir {
		t.Fatalf("page kinds wrong: %+v, want %d dir %d leaf", usage.Pages, dir, leaf)
	}
}
