package rtree

import (
	"fmt"
	"slices"

	"cbb/internal/geom"
)

// This file implements the fast batch-insert pipeline: InsertItems sorts a
// batch into Hilbert order, partitions it into contiguous runs that share a
// target leaf, and services each run with bulk machinery — direct placement
// into the chosen leaf, or a bottom-up-packed mini-subtree grafted as a
// sibling — instead of driving every item through the per-item
// choose/overflow/split path. The whole batch runs in one mutation epoch,
// so copy-on-write clones each touched node at most once per batch and
// publishes once.
//
// Equivalence contract: InsertItems is defined as equivalent to inserting
// the Hilbert-sorted batch item by item — the same objects become
// searchable with identical result sets, and the structure always satisfies
// Validate. With the fast path disabled (IngestTuning.DisableFastPath) the
// structure, traces, and write I/O are bit-identical to that per-item
// sequence; the fast path may build a different (bulk-packed) shape for
// large runs, which is what makes it fast. File-backed and in-memory trees
// route a given batch identically, so their structures and I/O counts stay
// bit-identical to each other either way.

// IngestTuning controls when InsertItems leaves the classic per-item insert
// path. The zero value selects the defaults; SetIngestTuning is writer-side
// like every mutation.
type IngestTuning struct {
	// MinGraftRun is the smallest Hilbert-contiguous run that is packed
	// into a pre-built subtree and grafted instead of being placed item by
	// item. 0 selects the default (the node capacity M); values below the
	// minimum fill are clamped to it, because a packed leaf must satisfy
	// MinEntries.
	MinGraftRun int
	// RebuildFactor selects the wholesale-rebuild threshold: a batch of at
	// least RebuildFactor × the current tree size is merged with the
	// existing items and bulk packed from scratch, exactly like a bulk load
	// of the union. Grafting run by run cannot beat that when the batch
	// dwarfs the tree — most runs end at a foreign leaf boundary after a
	// handful of items. 0 selects the default factor 2.
	RebuildFactor float64
	// DisableFastPath forces every item of a batch through the classic
	// per-item insert (still inside one batch epoch). Equivalence tests use
	// it to pin the bit-identical fallback.
	DisableFastPath bool
	// DisableRebuild keeps run-based routing even for batches large enough
	// to trigger the wholesale rebuild. Graft-path tests use it.
	DisableRebuild bool
}

// IngestStats reports how the most recent InsertItems call routed its
// items.
type IngestStats struct {
	// Items is the batch size.
	Items int
	// Runs is the number of Hilbert-contiguous runs the batch split into.
	Runs int
	// RunPlaced counts items placed directly into a run's target leaf
	// without per-item subtree choice.
	RunPlaced int
	// Grafted counts items that entered via a pre-packed subtree graft.
	Grafted int
	// GraftSubtrees and GraftNodes count the grafted subtrees and the nodes
	// built for them.
	GraftSubtrees int
	GraftNodes    int
	// PerItem counts items that fell back to the classic insert path (run
	// heads on full leaves, items after a leaf filled up, or the whole
	// batch when the fast path is disabled).
	PerItem int
	// BulkLoaded reports that the batch hit an empty tree and was bulk
	// packed wholesale.
	BulkLoaded bool
	// Rebuilt reports that the batch was at least RebuildFactor × the tree
	// size, so the union of old and new items was bulk packed from scratch.
	Rebuilt bool
}

// ingestKey pairs an item with its Hilbert sort key.
type ingestKey struct {
	item Item
	key  uint64
}

// SetIngestTuning adjusts the batch-insert thresholds. Writer-side: do not
// race it with mutations.
func (t *Tree) SetIngestTuning(tu IngestTuning) { t.ingest = tu }

// LastIngest returns the routing statistics of the most recent InsertItems
// call. Writer-side.
func (t *Tree) LastIngest() IngestStats { return t.lastIngest }

// minGraftRun resolves the effective graft threshold.
func (t *Tree) minGraftRun() int {
	g := t.ingest.MinGraftRun
	if g <= 0 {
		g = t.cfg.MaxEntries
	}
	if g < t.cfg.MinEntries {
		g = t.cfg.MinEntries
	}
	return g
}

// InsertItems adds a batch of objects in one mutation epoch and returns one
// aggregated trace of every structural change (the clipped layer consumes
// it exactly like a single-insert trace). Outside an explicit batch the new
// state is published to readers atomically when InsertItems returns — the
// batch is never observable partially.
//
// On an empty tree the batch is bulk packed (Hilbert packing for the
// Hilbert variant, STR otherwise), like BulkLoad. Otherwise items are
// sorted into Hilbert order and contiguous runs that fall inside one leaf's
// MBB are serviced together: subtree choice runs once per run, runs are
// placed directly while the leaf has room, and runs of at least
// IngestTuning.MinGraftRun items are bottom-up packed into mini-subtrees
// grafted as siblings at the appropriate level. Items that fit none of
// those take the classic per-item insert path.
func (t *Tree) InsertItems(items []Item) (trace *InsertTrace, err error) {
	if err := t.ensureMutable(); err != nil {
		return nil, err
	}
	for i := range items {
		if !items[i].Rect.Valid() || items[i].Rect.Dims() != t.cfg.Dims {
			return nil, fmt.Errorf("rtree: item %d has invalid rectangle %v for a %d-dimensional tree", i, items[i].Rect, t.cfg.Dims)
		}
	}
	t.beginMutation()
	defer func() { t.autoCommit(err) }()
	defer recoverFault(&err)
	trace = &InsertTrace{Leaf: InvalidNode}
	stats := IngestStats{Items: len(items)}
	defer func() { t.lastIngest = stats }()
	if len(items) == 0 {
		return trace, nil
	}
	if len(items) > 1 {
		trace.seen = make(map[NodeID]uint8, 1+len(items)/t.cfg.MaxEntries)
	}

	if t.root == InvalidNode && !t.ingest.DisableFastPath {
		// Empty tree: the whole batch is a bulk load. Every node is new, so
		// the trace marks them all created (the clipped layer then clips
		// each once, as it would after BulkLoad).
		var leafEntries [][]Entry
		switch t.cfg.Variant {
		case Hilbert:
			leafEntries = t.packHilbert(items)
		default:
			leafEntries = t.packSTR(items)
		}
		t.buildFromLeaves(leafEntries)
		t.size = len(items)
		t.Walk(func(info NodeInfo) { trace.markCreated(info.ID) })
		stats.BulkLoaded = true
		stats.Grafted = len(items)
		return trace, nil
	}

	if !t.ingest.DisableFastPath && !t.ingest.DisableRebuild && t.rebuildWorthwhile(len(items)) {
		t.rebuildWith(items, trace)
		stats.Rebuilt = true
		stats.Grafted = len(items)
		return trace, nil
	}

	ks := t.sortedIngestKeys(items)
	var rootBefore geom.Rect
	if t.root != InvalidNode {
		rootBefore = t.mustNode(t.root).mbb()
	}
	if t.ingest.DisableFastPath {
		for i := range ks {
			t.insertOne(ks[i].item, trace)
		}
		stats.PerItem = len(ks)
	} else {
		t.ingestRuns(ks, trace, &stats)
	}
	if t.root != InvalidNode {
		if rootAfter := t.mustNode(t.root).mbb(); !rootAfter.Equal(rootBefore) {
			trace.markMBBChanged(t.root)
		}
	}
	return trace, nil
}

// rebuildWorthwhile reports whether a batch of n items is large enough,
// relative to the current tree, that rebuilding the whole tree beats
// incremental routing.
func (t *Tree) rebuildWorthwhile(n int) bool {
	factor := t.ingest.RebuildFactor
	if factor <= 0 {
		factor = 2
	}
	return float64(n) >= factor*float64(t.size)
}

// rebuildWith merges the batch with the tree's existing items and bulk packs
// the union from scratch, freeing every old node first (their ids return to
// the free list; file-backed pages are released at the next safe flush, like
// any freed node). The trace is marked Rebuilt: node ids may have been
// reused, so consumers must drop per-node bookkeeping and recompute from a
// fresh walk rather than interpret the change sets incrementally.
func (t *Tree) rebuildWith(items []Item, trace *InsertTrace) {
	all := make([]Item, 0, t.size+len(items))
	ids := make([]NodeID, 0, 2*t.size/t.cfg.MaxEntries+2)
	t.Walk(func(info NodeInfo) {
		ids = append(ids, info.ID)
		if info.Leaf {
			for _, e := range info.Children {
				all = append(all, Item{Object: e.Object, Rect: e.Rect})
			}
		}
	})
	all = append(all, items...)
	for _, id := range ids {
		t.freeNode(id)
	}
	t.root = InvalidNode
	t.height = 0
	var leafEntries [][]Entry
	switch t.cfg.Variant {
	case Hilbert:
		leafEntries = t.packHilbert(all)
	default:
		leafEntries = t.packSTR(all)
	}
	t.buildFromLeaves(leafEntries)
	t.size = len(all)
	trace.Rebuilt = true
	t.Walk(func(info NodeInfo) { trace.markCreated(info.ID) })
}

// sortedIngestKeys keys every item with its Hilbert index and sorts the
// batch, reusing the tree's scratch buffer. The Hilbert variant keys with
// the tree's own curve (so run order agrees with the LHV ordering the
// variant maintains); the other variants key with a deterministic curve
// built over the batch bounds, which only has to provide locality.
func (t *Tree) sortedIngestKeys(items []Item) []ingestKey {
	ks := t.ingestKeys[:0]
	if cap(ks) < len(items) {
		ks = make([]ingestKey, 0, len(items))
	}
	curve := t.curve
	if t.cfg.Variant != Hilbert || curve == nil {
		if c, err := newCurveFor(geom.MBROf(itemRects(items)), t.cfg.HilbertBits); err == nil {
			curve = c
		} else {
			curve = nil // degenerate bounds: keep input order
		}
	}
	// Sort pointer-free (key, index) pairs and emit the keyed items already
	// in order; (key, original index) is a total order, so the result is
	// exactly the stable sort by key.
	ord := make([]hilbertOrd, len(items))
	for i := range items {
		var k uint64
		if curve != nil {
			k = curve.IndexRect(items[i].Rect)
		}
		ord[i] = hilbertOrd{key: k, idx: int32(i)}
	}
	slices.SortFunc(ord, compareHilbertOrd)
	for _, o := range ord {
		ks = append(ks, ingestKey{item: items[o.idx], key: o.key})
	}
	t.ingestKeys = ks
	return ks
}

// insertOne is the classic per-item insert without the per-call epoch
// bookkeeping (InsertItems owns the epoch), structurally identical to
// Insert.
func (t *Tree) insertOne(it Item, trace *InsertTrace) {
	if t.root == InvalidNode {
		root := t.newNode(true, 0)
		t.root = root.id
		t.height = 1
		root.entries = append(root.entries, Entry{Rect: it.Rect.Clone(), Object: it.Object, Child: InvalidNode})
		t.touch(root)
		t.updateHilbertLHV(root)
		t.size++
		trace.markCreated(root.id)
		trace.Placements = append(trace.Placements, Placement{Node: root.id, Rect: it.Rect.Clone()})
		t.counter.Write(1)
		return
	}
	t.ovMarks.begin()
	t.insertAtLevel(Entry{Rect: it.Rect.Clone(), Object: it.Object, Child: InvalidNode}, 0, trace, &t.ovMarks, false)
	t.size++
}

// ingestRuns partitions the sorted batch into runs sharing a target leaf
// and services each run with the cheapest applicable strategy.
func (t *Tree) ingestRuns(ks []ingestKey, trace *InsertTrace, stats *IngestStats) {
	minGraft := t.minGraftRun()
	i := 0
	for i < len(ks) {
		stats.Runs++
		// One subtree choice for the whole run: descend once for the run
		// head, then extend the run while the next sorted item lies inside
		// the chosen leaf's MBB (zero enlargement, so the leaf stays a
		// natural target for the entire run).
		target := t.chooseSubtree(ks[i].item.Rect, 0)
		leaf := t.mustNode(target)
		leafMBB := leaf.mbb()
		j := i + 1
		for j < len(ks) && leafMBB.ContainsRect(ks[j].item.Rect) {
			j++
		}
		run := ks[i:j]

		// Large runs skip per-item insertion entirely: pack bottom-up and
		// graft. Needs a directory level to graft into (height >= 2).
		if len(run) >= minGraft && t.height >= 2 {
			t.graftRun(run, trace, stats)
			i = j
			continue
		}

		// Direct placement: append into the chosen leaf while it has room,
		// with one touch/adjust pass for the whole stretch.
		placed := 0
		if len(leaf.entries) < t.cfg.MaxEntries {
			n := t.mutable(leaf)
			before := n.mbb()
			for placed < len(run) && len(n.entries) < t.cfg.MaxEntries {
				e := Entry{Rect: run[placed].item.Rect.Clone(), Object: run[placed].item.Object, Child: InvalidNode}
				n.entries = append(n.entries, e)
				trace.Placements = append(trace.Placements, Placement{Node: n.id, Rect: e.Rect})
				t.counter.Write(1)
				placed++
			}
			t.touch(n)
			if !n.mbb().Equal(before) {
				trace.markMBBChanged(n.id)
			}
			t.updateHilbertLHV(n)
			t.adjustUpward(n, trace)
			t.size += placed
			stats.RunPlaced += placed
		}
		if placed < len(run) {
			// The leaf is full: push one item through the classic path (it
			// overflows and splits/reinserts as usual), then re-choose a
			// target for whatever remains of the run.
			t.insertOne(run[placed].item, trace)
			stats.PerItem++
			placed++
		}
		i += placed
	}
}

// graftRun packs a run into leaves (the run is already in Hilbert order)
// and builds parent levels bottom-up while the level still satisfies the
// minimum fill and stays strictly below the root, then grafts each packed
// subtree as a sibling via one directory-level insertion.
func (t *Tree) graftRun(run []ingestKey, trace *InsertTrace, stats *IngestStats) {
	items := make([]Item, len(run))
	for idx := range run {
		items[idx] = run[idx].item
	}
	leafEntries := packRuns(items, t.cfg.MaxEntries)

	// maxLevel caps the packed subtree's root so its graft target (one
	// level above) exists below or at the current root.
	maxLevel := t.height - 2
	current := make([]NodeID, 0, len(leafEntries))
	for _, runE := range leafEntries {
		n := t.newNode(true, 0)
		n.entries = runE
		t.touch(n)
		t.updateHilbertLHV(n)
		t.counter.Write(1)
		trace.markCreated(n.id)
		current = append(current, n.id)
	}
	stats.GraftNodes += len(current)
	level := 0
	for len(current) >= t.cfg.MinEntries && level+1 <= maxLevel {
		level++
		var next []NodeID
		pos := 0
		for _, sz := range groupSizes(len(current), t.cfg.MaxEntries) {
			parent := t.newNode(false, level)
			for _, childID := range current[pos : pos+sz] {
				child := t.mustNode(childID)
				child.parent = parent.id
				parent.entries = append(parent.entries, Entry{Rect: child.mbb(), Child: childID})
			}
			pos += sz
			t.touch(parent)
			t.updateHilbertLHV(parent)
			t.counter.Write(1)
			trace.markCreated(parent.id)
			next = append(next, parent.id)
		}
		stats.GraftNodes += len(next)
		current = next
	}
	for _, id := range current {
		sub := t.mustNode(id)
		t.ovMarks.begin()
		t.insertAtLevel(Entry{Rect: sub.mbb(), Child: id}, sub.level+1, trace, &t.ovMarks, false)
		stats.GraftSubtrees++
	}
	t.size += len(items)
	stats.Grafted += len(items)
}
