package rtree

import (
	"math"
	"math/rand"
	"testing"

	"cbb/internal/geom"
	"cbb/internal/storage"
)

// f32 rounds a coordinate to float32 precision, the precision class the leaf
// delta shift is designed for.
func f32(v float64) float64 { return float64(float32(v)) }

func randLeafV2(rng *rand.Rand, dims, count int, reduced bool) *node {
	n := &node{id: 9, leaf: true, level: 0, parent: InvalidNode}
	for i := 0; i < count; i++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			a := rng.Float64() * 1000
			b := a + rng.Float64()*10
			if reduced {
				a, b = f32(a), f32(b)
			}
			lo[d], hi[d] = a, b
		}
		n.entries = append(n.entries, Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Object: ObjectID(rng.Int63n(1 << 40)), Child: InvalidNode})
	}
	return n
}

func TestEncodeDecodeNodeV2LeafExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dims := range []int{1, 2, 3} {
		for _, reduced := range []bool{false, true} {
			n := randLeafV2(rng, dims, 50, reduced)
			buf, err := encodeNodeV2(n, dims)
			if err != nil {
				t.Fatal(err)
			}
			back, err := decodeNodeV2(buf, dims)
			if err != nil {
				t.Fatal(err)
			}
			if back.id != n.id || !back.leaf || len(back.entries) != len(n.entries) {
				t.Fatalf("dims=%d header mismatch: %+v", dims, back)
			}
			for i := range n.entries {
				for d := 0; d < dims; d++ {
					if math.Float64bits(back.entries[i].Rect.Lo[d]) != math.Float64bits(n.entries[i].Rect.Lo[d]) ||
						math.Float64bits(back.entries[i].Rect.Hi[d]) != math.Float64bits(n.entries[i].Rect.Hi[d]) {
						t.Fatalf("dims=%d entry %d not bit-identical", dims, i)
					}
				}
				if back.entries[i].Object != n.entries[i].Object {
					t.Fatalf("dims=%d entry %d object mismatch", dims, i)
				}
			}
		}
	}
}

func TestLeafDeltaShiftReducedPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := randLeafV2(rng, 2, 60, true)
	buf, err := encodeNodeV2(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0]&flagV2RawLeaf != 0 {
		t.Fatal("reduced-precision leaf fell back to raw")
	}
	// float32-representable doubles carry >= 29 trailing zero mantissa bits,
	// so every bit-pattern delta shares them and the shift strips them.
	if shift := int(buf[2]); shift < 29 {
		t.Fatalf("delta shift %d, want >= 29 for float32-precision data", shift)
	}
	full := randLeafV2(rng, 2, 60, false)
	fullBuf, err := encodeNodeV2(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(buf) < len(fullBuf)) {
		t.Fatalf("reduced-precision leaf (%d B) not smaller than full-entropy (%d B)", len(buf), len(fullBuf))
	}
}

func TestEncodeNodeV2RawFallbackBound(t *testing.T) {
	// Adversarial leaf: coordinate bit patterns drawn uniformly from the
	// whole range make every delta ~9-10 varint bytes, past the raw layout.
	rng := rand.New(rand.NewSource(33))
	n := &node{id: 4, leaf: true, level: 0, parent: InvalidNode}
	for i := 0; i < 40; i++ {
		lo := geom.Pt(math.Float64frombits(rng.Uint64()>>12), math.Float64frombits(rng.Uint64()>>12))
		n.entries = append(n.entries, Entry{
			Rect:   geom.Rect{Lo: lo, Hi: lo},
			Object: ObjectID(rng.Uint64() >> 1), Child: InvalidNode,
		})
	}
	buf, err := encodeNodeV2(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if max := nodeHeaderV2Bytes + 16*2 + len(n.entries)*EntryBytes(2); len(buf) > max {
		t.Fatalf("v2 page %d B exceeds the raw bound %d B", len(buf), max)
	}
	back, err := decodeNodeV2(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.entries {
		if !back.entries[i].Rect.Equal(n.entries[i].Rect) || back.entries[i].Object != n.entries[i].Object {
			t.Fatalf("raw fallback not lossless at entry %d", i)
		}
	}
}

func TestEncodeDecodeNodeV2DirConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, dims := range []int{1, 2, 3} {
		n := &node{id: 2, leaf: false, level: 1, parent: InvalidNode}
		for i := 0; i < 30; i++ {
			n.entries = append(n.entries, Entry{Rect: randRect(rng, dims, 900, 40), Child: NodeID(i + 10)})
		}
		mbb := n.mbb()
		buf, err := encodeNodeV2(n, dims)
		if err != nil {
			t.Fatal(err)
		}
		back, err := decodeNodeV2(buf, dims)
		if err != nil {
			t.Fatal(err)
		}
		union := back.entries[0].Rect
		for i := range n.entries {
			got := back.entries[i].Rect
			if !got.ContainsRect(n.entries[i].Rect) {
				t.Fatalf("dims=%d entry %d decoded rect %v does not contain original %v", dims, i, got, n.entries[i].Rect)
			}
			if !mbb.ContainsRect(got) {
				t.Fatalf("dims=%d entry %d decoded rect escapes the node MBB", dims, i)
			}
			if back.entries[i].Child != n.entries[i].Child {
				t.Fatalf("dims=%d entry %d child lost", dims, i)
			}
			union = union.Union(got)
		}
		// Extreme entries touch the MBB boundary, which quantises exactly:
		// the union of decoded rects must still be the exact MBB.
		if !union.Equal(mbb) {
			t.Fatalf("dims=%d decoded union %v != exact MBB %v", dims, union, mbb)
		}
	}
}

func TestDecodeNodeV2Errors(t *testing.T) {
	if _, err := decodeNodeV2(nil, 2); err == nil {
		t.Error("empty buffer must fail")
	}
	n := randLeafV2(rand.New(rand.NewSource(35)), 2, 20, true)
	buf, err := encodeNodeV2(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeNodeV2(buf[:len(buf)-3], 2); err == nil {
		t.Error("truncated leaf stream must fail")
	}
	bad := append([]byte(nil), buf...)
	bad[2] = 77 // implausible delta shift
	if _, err := decodeNodeV2(bad, 2); err == nil {
		t.Error("leaf delta shift > 63 must fail")
	}
	dir := &node{id: 1, leaf: false, level: 1, parent: InvalidNode,
		entries: []Entry{{Rect: geom.R(0, 0, 1, 1), Child: 5}}}
	dbuf, err := encodeNodeV2(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	dbad := append([]byte(nil), dbuf...)
	dbad[2] = 8 // unsupported quantisation width
	if _, err := decodeNodeV2(dbad, 2); err == nil {
		t.Error("unsupported directory quantisation must fail")
	}
	if _, err := decodeNodeV2(dbuf[:len(dbuf)-2], 2); err == nil {
		t.Error("truncated directory page must fail")
	}
}

func TestNodePageMBB(t *testing.T) {
	n := randLeafV2(rand.New(rand.NewSource(36)), 3, 25, false)
	buf, err := encodeNodeV2(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, mbb, err := NodePageMBB(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if id != n.id || !mbb.Equal(n.mbb()) {
		t.Fatalf("NodePageMBB = (%d, %v), want (%d, %v)", id, mbb, n.id, n.mbb())
	}
	if _, _, err := NodePageMBB(buf[:10], 3); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestTranscodeNodePageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	dims := 2
	leaf := randLeafV2(rng, dims, 40, true)
	v1buf := encodeNode(leaf, dims)
	v2buf, err := TranscodeNodePage(v1buf, dims, CodecV1, CodecV2, nil)
	if err != nil {
		t.Fatal(err)
	}
	backBuf, err := TranscodeNodePage(v2buf, dims, CodecV2, CodecV1, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeNode(backBuf, dims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range leaf.entries {
		if !back.entries[i].Rect.Equal(leaf.entries[i].Rect) || back.entries[i].Object != leaf.entries[i].Object {
			t.Fatalf("leaf entry %d changed across v1->v2->v1", i)
		}
	}

	// Directory round trip needs the child-MBB fixup to restore exactness.
	dir := &node{id: 3, leaf: false, level: 1, parent: InvalidNode}
	children := map[NodeID]geom.Rect{}
	for i := 0; i < 20; i++ {
		r := randRect(rng, dims, 500, 25)
		dir.entries = append(dir.entries, Entry{Rect: r, Child: NodeID(100 + i)})
		children[NodeID(100+i)] = r
	}
	dv1 := encodeNode(dir, dims)
	dv2, err := TranscodeNodePage(dv1, dims, CodecV1, CodecV2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(id NodeID) (geom.Rect, bool) { r, ok := children[id]; return r, ok }
	dback, err := TranscodeNodePage(dv2, dims, CodecV2, CodecV1, lookup)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := decodeNode(dback, dims)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dir.entries {
		if !dn.entries[i].Rect.Equal(dir.entries[i].Rect) {
			t.Fatalf("dir entry %d not restored exactly: %v vs %v", i, dn.entries[i].Rect, dir.entries[i].Rect)
		}
	}
}

func TestSaveWithLoadCodecV2(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	cfg := smallConfig(2, RStar)
	tr := MustNew(cfg)
	for i := 0; i < 500; i++ {
		r := randRect(rng, 2, 500, 10)
		r.Lo[0], r.Lo[1] = f32(r.Lo[0]), f32(r.Lo[1])
		r.Hi[0], r.Hi[1] = f32(r.Hi[0]), f32(r.Hi[1])
		if _, err := tr.Insert(r, ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	need, err := tr.MaxEncodedNodeBytes(CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	pager := storage.NewPager(need)
	root, pages, err := tr.SaveWith(pager, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadCodec(cfg, pager, root, pages, CodecV2)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("v2-loaded tree invalid: %v", err)
	}
	if back.Len() != tr.Len() || back.Height() != tr.Height() {
		t.Fatal("v2 round trip changed tree shape")
	}
	for q := 0; q < 50; q++ {
		query := randRect(rng, 2, 500, 60)
		if tr.Count(query) != back.Count(query) {
			t.Fatalf("query %d differs on v2-loaded tree", q)
		}
	}
}
