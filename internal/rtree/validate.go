package rtree

import (
	"fmt"
	"math"

	"cbb/internal/geom"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It is used by tests and by the cbbinspect
// tool; it never charges I/O.
//
// Invariants checked:
//   - every node's entry count is within [MinEntries, MaxEntries], except
//     the root (which may hold fewer) and single-leaf trees;
//   - directory entries' rectangles equal the MBB of the referenced child;
//   - parent pointers are consistent with directory entries;
//   - all leaves are at level 0 and all levels are consistent
//     (child level = parent level − 1);
//   - the number of reachable objects equals Len().
func (t *Tree) Validate() error {
	if t.root == InvalidNode {
		if t.size != 0 {
			return fmt.Errorf("rtree: empty tree with size %d", t.size)
		}
		return nil
	}
	// A file-backed tree must be fully loaded first: validation needs parent
	// pointers, which the page layout does not store.
	if err := t.Materialize(); err != nil {
		return err
	}
	root := t.nodes[t.root]
	if root.parent != InvalidNode {
		return fmt.Errorf("rtree: root %d has parent %d", root.id, root.parent)
	}
	if root.level != t.height-1 {
		return fmt.Errorf("rtree: root level %d does not match height %d", root.level, t.height)
	}
	objects := 0
	var check func(id NodeID) error
	check = func(id NodeID) error {
		n := t.nodes[id]
		if n == nil {
			return fmt.Errorf("rtree: node %d is nil", id)
		}
		if len(n.entries) > t.cfg.MaxEntries {
			return fmt.Errorf("rtree: node %d has %d entries (max %d)", id, len(n.entries), t.cfg.MaxEntries)
		}
		if err := t.checkBoxes(n); err != nil {
			return err
		}
		if err := t.checkPlanes(n); err != nil {
			return err
		}
		if id != t.root && len(n.entries) < t.cfg.MinEntries {
			return fmt.Errorf("rtree: node %d has %d entries (min %d)", id, len(n.entries), t.cfg.MinEntries)
		}
		if n.leaf {
			if n.level != 0 {
				return fmt.Errorf("rtree: leaf %d at level %d", id, n.level)
			}
			objects += len(n.entries)
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			child := t.nodes[e.Child]
			if child == nil {
				return fmt.Errorf("rtree: node %d references missing child %d", id, e.Child)
			}
			if child.parent != id {
				return fmt.Errorf("rtree: child %d has parent %d, expected %d", child.id, child.parent, id)
			}
			if child.level != n.level-1 {
				return fmt.Errorf("rtree: child %d at level %d under parent at level %d", child.id, child.level, n.level)
			}
			childMBB := child.mbb()
			if t.conservative {
				// Trees decoded from compressed (v2) pages carry directory
				// rects rounded outward by quantisation: a rect must contain
				// its child's MBB, but need not equal it.
				if !e.Rect.ContainsRect(childMBB) {
					return fmt.Errorf("rtree: entry rect %v for child %d does not contain child MBB %v", e.Rect, child.id, childMBB)
				}
			} else if !e.Rect.Equal(childMBB) {
				return fmt.Errorf("rtree: entry rect %v for child %d does not equal child MBB %v", e.Rect, child.id, childMBB)
			}
			if err := check(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root); err != nil {
		return err
	}
	if objects != t.size {
		return fmt.Errorf("rtree: reachable objects %d != size %d", objects, t.size)
	}
	return nil
}

// checkBoxes verifies that the node's flat coordinate mirror matches its
// entry rectangles exactly — the invariant the query hot path relies on.
func (t *Tree) checkBoxes(n *node) error {
	dims := t.cfg.Dims
	if len(n.boxes) != len(n.entries)*2*dims {
		return fmt.Errorf("rtree: node %d has %d mirror coordinates for %d entries (want %d)",
			n.id, len(n.boxes), len(n.entries), len(n.entries)*2*dims)
	}
	off := 0
	for i := range n.entries {
		r := &n.entries[i].Rect
		for d := 0; d < dims; d++ {
			if n.boxes[off+d] != r.Lo[d] || n.boxes[off+dims+d] != r.Hi[d] {
				return fmt.Errorf("rtree: node %d entry %d mirror out of sync with rect %v", n.id, i, *r)
			}
		}
		off += 2 * dims
	}
	return nil
}

// checkPlanes verifies the node's quantised SoA filter layer against the
// exact mirror: the planes must be conservative (each grid bound decodes to
// at most the exact lower / at least the exact upper bound — the property
// the scan kernels rely on to never miss a hit), and, wherever the planes
// were computed from exact rects (every node except directories adopted
// verbatim from a compressed v2 page), they must be exactly the
// qlower/qupper quantisation of the mirror against a qmbb that is the
// mirror's true MBB.
func (t *Tree) checkPlanes(n *node) error {
	dims := t.cfg.Dims
	count := len(n.entries)
	if !n.hasPlanes(dims) {
		return fmt.Errorf("rtree: node %d has %d plane words and %d MBB extents for %d entries (want %d and %d)",
			n.id, len(n.qplanes), len(n.qmbb), count, 2*dims*planeWords(count), 2*dims)
	}
	if count == 0 {
		return nil
	}
	// Directory nodes of a v2-loaded tree carry the page's stored grid
	// coordinates and MBB; their decoded-rect mirror sits outward of both, so
	// only the conservativeness half applies to them.
	adopted := t.conservative && !n.leaf
	for d := 0; d < dims; d++ {
		lo, hi := n.qmbb[d], n.qmbb[dims+d]
		if !adopted {
			minLo := math.Inf(1)
			maxHi := math.Inf(-1)
			for off := 0; off < len(n.boxes); off += 2 * dims {
				if v := n.boxes[off+d]; v < minLo {
					minLo = v
				}
				if v := n.boxes[off+dims+d]; v > maxHi {
					maxHi = v
				}
			}
			if lo != minLo || hi != maxHi {
				return fmt.Errorf("rtree: node %d plane MBB [%v, %v] in dim %d does not match mirror MBB [%v, %v]",
					n.id, lo, hi, d, minLo, maxHi)
			}
		}
		off := 0
		for i := 0; i < count; i++ {
			elo, ehi := n.boxes[off+d], n.boxes[off+dims+d]
			plo, phi := n.planeAt(dims, d, i, false), n.planeAt(dims, d, i, true)
			if qdecode(lo, hi, uint32(plo)) > elo || qdecode(lo, hi, uint32(phi)) < ehi {
				return fmt.Errorf("rtree: node %d entry %d plane [%d, %d] in dim %d is not conservative for [%v, %v]",
					n.id, i, plo, phi, d, elo, ehi)
			}
			if !adopted && (plo != qlower(elo, lo, hi) || phi != qupper(ehi, lo, hi)) {
				return fmt.Errorf("rtree: node %d entry %d plane [%d, %d] in dim %d is not the tight quantisation of [%v, %v] (want [%d, %d])",
					n.id, i, plo, phi, d, elo, ehi, qlower(elo, lo, hi), qupper(ehi, lo, hi))
			}
			off += 2 * dims
		}
	}
	return nil
}

// Stats summarises structural statistics used by the evaluation figures.
type Stats struct {
	Objects    int
	Height     int
	LeafNodes  int
	DirNodes   int
	AvgLeafOcc float64 // average leaf occupancy as a fraction of MaxEntries
	AvgDirOcc  float64 // average directory occupancy as a fraction of MaxEntries
	Bounds     geom.Rect
	// PlaneBytes is the total resident size of the quantised SoA filter
	// layer across all nodes (see quant.go).
	PlaneBytes int
}

// Stats computes the tree's structural statistics without charging I/O.
func (t *Tree) Stats() Stats {
	s := Stats{Objects: t.size, Height: t.height, Bounds: t.Bounds()}
	var leafEntries, dirEntries int
	t.Walk(func(info NodeInfo) {
		s.PlaneBytes += info.PlaneBytes
		if info.Leaf {
			s.LeafNodes++
			leafEntries += len(info.Children)
		} else {
			s.DirNodes++
			dirEntries += len(info.Children)
		}
	})
	if s.LeafNodes > 0 {
		s.AvgLeafOcc = float64(leafEntries) / float64(s.LeafNodes*t.cfg.MaxEntries)
	}
	if s.DirNodes > 0 {
		s.AvgDirOcc = float64(dirEntries) / float64(s.DirNodes*t.cfg.MaxEntries)
	}
	return s
}
