package rtree

import (
	"fmt"

	"cbb/internal/geom"
)

// DeleteTrace reports the structural changes of a deletion: nodes whose MBB
// shrank, nodes that were dissolved (condensed away), and how many entries
// had to be re-inserted. The clipped layer handles deletions lazily (clip
// points stay valid when space only becomes emptier), so it consults the
// trace only for dissolved nodes and MBB changes.
type DeleteTrace struct {
	// Found reports whether the object was present.
	Found bool
	// Leaf is the leaf the object was removed from (InvalidNode when not
	// found).
	Leaf NodeID
	// MBBChanged lists surviving nodes whose MBB changed.
	MBBChanged []NodeID
	// Removed lists node ids dissolved by the condense step.
	Removed []NodeID
	// Placements lists (node, rectangle) pairs that received entries
	// re-inserted after condensing; the clipped layer validity-checks them.
	Placements []Placement
	// Reinserted counts entries re-inserted after condensing.
	Reinserted int
}

func (tr *DeleteTrace) markMBBChanged(id NodeID) {
	for _, v := range tr.MBBChanged {
		if v == id {
			return
		}
	}
	tr.MBBChanged = append(tr.MBBChanged, id)
}

// Delete removes the object with the given id and rectangle. Both must match
// an indexed entry exactly (the usual R-tree contract). It returns a trace
// and whether the object was found. On a writable file-backed tree the
// mutation happens in the node arena and is written back by the next
// FlushDirty; a read-only tree returns ErrReadOnly.
func (t *Tree) Delete(r geom.Rect, obj ObjectID) (trace *DeleteTrace, err error) {
	if err := t.ensureMutable(); err != nil {
		return nil, err
	}
	if !r.Valid() || r.Dims() != t.cfg.Dims {
		return nil, fmt.Errorf("rtree: invalid rectangle %v for a %d-dimensional tree", r, t.cfg.Dims)
	}
	t.beginMutation()
	defer func() { t.autoCommit(err) }()
	defer recoverFault(&err)
	trace = &DeleteTrace{Leaf: InvalidNode}
	if t.root == InvalidNode {
		return trace, nil
	}
	rootBefore := t.mustNode(t.root).mbb()
	leaf, idx := t.findLeaf(t.mustNode(t.root), r, obj)
	if leaf == nil {
		return trace, nil
	}
	trace.Found = true
	trace.Leaf = leaf.id
	leaf = t.mutable(leaf)
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.touch(leaf)
	t.size--
	t.counter.Write(1)
	t.condense(leaf, trace)
	// The root has no parent entry, so a shrink of its MBB is not caught by
	// the condense pass; record it explicitly (the clipped layer must
	// recompute clip points whenever a node's MBB changes).
	if t.root != InvalidNode {
		if !t.mustNode(t.root).mbb().Equal(rootBefore) {
			trace.markMBBChanged(t.root)
		}
	}

	// Shrink the tree if the root became a lone directory entry or empty.
	root := t.mustNode(t.root)
	for !root.leaf && len(root.entries) == 1 {
		child := t.mustNode(root.entries[0].Child)
		child.parent = InvalidNode
		trace.Removed = append(trace.Removed, root.id)
		t.freeNode(root.id)
		t.root = child.id
		t.height = child.level + 1
		root = child
	}
	if root.leaf && len(root.entries) == 0 && t.size == 0 {
		trace.Removed = append(trace.Removed, root.id)
		t.freeNode(root.id)
		t.root = InvalidNode
		t.height = 0
	}
	return trace, nil
}

// findLeaf locates the leaf containing an exact (rect, object) entry.
func (t *Tree) findLeaf(n *node, r geom.Rect, obj ObjectID) (*node, int) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].Object == obj && n.entries[i].Rect.Equal(r) {
				return n, i
			}
		}
		return nil, -1
	}
	for i := range n.entries {
		if n.entries[i].Rect.ContainsRect(r) || n.entries[i].Rect.Intersects(r) {
			if leaf, idx := t.findLeaf(t.mustNode(n.entries[i].Child), r, obj); leaf != nil {
				return leaf, idx
			}
		}
	}
	return nil, -1
}

// condense walks from a shrunken leaf to the root, dissolving under-full
// nodes and collecting their entries for re-insertion, then re-inserts them
// at their original level (Guttman's CondenseTree).
func (t *Tree) condense(n *node, trace *DeleteTrace) {
	type orphan struct {
		entry Entry
		level int
	}
	var orphans []orphan
	cur := n
	for cur.id != t.root {
		parent := t.mustNode(cur.parent)
		idx := t.childIndex(parent, cur.id)
		if len(cur.entries) < t.cfg.MinEntries {
			// Dissolve the node: remove it from the parent and queue its
			// entries for re-insertion.
			parent = t.mutable(parent)
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			t.touch(parent)
			for _, e := range cur.entries {
				orphans = append(orphans, orphan{entry: e, level: cur.level})
			}
			trace.Removed = append(trace.Removed, cur.id)
			t.freeNode(cur.id)
		} else {
			newMBB := cur.mbb()
			if !parent.entries[idx].Rect.Equal(newMBB) {
				parent = t.mutable(parent)
				parent.entries[idx].Rect = newMBB
				t.touch(parent)
				trace.markMBBChanged(cur.id)
				t.counter.Write(1)
			}
			t.updateHilbertLHV(cur)
		}
		cur = parent
	}
	t.updateHilbertLHV(cur)

	// Re-insert orphaned entries at their original levels. Each orphan is a
	// fresh insertion for the purposes of the once-per-level R* overflow
	// treatment, so the pooled marks open a new scope per orphan.
	for _, o := range orphans {
		itrace := &InsertTrace{Leaf: InvalidNode}
		t.ovMarks.begin()
		t.insertAtLevel(o.entry, o.level, itrace, &t.ovMarks, false)
		trace.Reinserted++
		mergeTraces(trace, itrace)
	}
}

// mergeTraces folds the node-change information of an insertion performed
// during condensing into the deletion trace.
func mergeTraces(dt *DeleteTrace, it *InsertTrace) {
	for _, id := range it.MBBChanged {
		dt.markMBBChanged(id)
	}
	for _, id := range it.Split {
		dt.markMBBChanged(id)
	}
	for _, id := range it.Created {
		dt.markMBBChanged(id)
	}
	dt.Placements = append(dt.Placements, it.Placements...)
}
