package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"cbb/internal/geom"
	"cbb/internal/storage"
)

// This file implements the compressed v2 node page layout. The paper's whole
// bet is spending negligible CPU (clipping, dominance tests) to save I/O; the
// v2 codec extends that trade to the storage layer:
//
//   - Directory entries store their child MBBs as fixed-bit integers
//     quantised against the node's own MBB (DirQuantBits per coordinate,
//     lower bounds rounded down, upper bounds rounded up), so a decoded
//     directory rect is a conservative superset of the exact one. Traversal
//     stays admissible — a superset can only add node visits, never skip a
//     qualifying subtree — and the final filtering happens on leaf rects,
//     which stay exact.
//   - Leaf entries are compressed losslessly: the IEEE-754 bit patterns of
//     consecutive coordinates are delta-encoded as zigzag varints (entry
//     lows against the previous entry's lows, highs against the same entry's
//     lows, object ids against the previous id). Coordinate deltas are first
//     right-shifted by the node's common trailing-zero count — data with
//     limited precision (e.g. float32-representable survey coordinates)
//     leaves 29+ zero bits at the bottom of every delta, which the shift
//     removes before the varint; full-entropy data degrades to shift 0.
//     Query results over a v2 snapshot are therefore bit-identical to v1. A
//     per-node raw fallback bounds the worst case for adversarial leaves
//     that would expand.
//
// A node page is:
//
//	[0]    flags (bit 0: leaf, bit 1: raw leaf entries)
//	[1]    level
//	[2]    directory: quantisation bits per coordinate (DirQuantBits)
//	       leaf:      right-shift applied to coordinate deltas (0..63)
//	[3:7]  node id (uint32)
//	[7:11] entry count (uint32)
//	[11:]  node MBB: dims lo float64, dims hi float64 (exact)
//	then, directory: per entry dims uint16 qlo, dims uint16 qhi, uint32 child
//	then, leaf:      the delta/varint stream, or raw v1 entries (bit 1)

// PageCodec selects a physical node page layout.
type PageCodec uint8

// Page codecs.
const (
	// CodecV1 is the original fixed-width layout of Figure 4a: every
	// coordinate a raw float64, every child/object reference 8 bytes.
	CodecV1 PageCodec = 1
	// CodecV2 is the compressed layout: quantised directory rects (lossy but
	// conservative) and delta/varint leaf rects (lossless).
	CodecV2 PageCodec = 2
)

// String names the codec like the snapshot format version that selects it.
func (c PageCodec) String() string {
	switch c {
	case CodecV1:
		return "v1"
	case CodecV2:
		return "v2"
	default:
		return fmt.Sprintf("PageCodec(%d)", uint8(c))
	}
}

// DirQuantBits is the number of bits per quantised directory coordinate.
const DirQuantBits = 16

const (
	dirQMax = 1<<DirQuantBits - 1

	nodeHeaderV2Bytes = 1 + 1 + 1 + 4 + 4 // flags, level, qbits, id, count

	flagV2Leaf    = 1 << 0
	flagV2RawLeaf = 1 << 1

	dirEntryV2Bytes = 2*2 + 4 // per dim: qlo+qhi uint16 — plus child uint32
)

// dirEntryBytesV2 returns the fixed encoded size of one directory entry.
func dirEntryBytesV2(dims int) int { return dims*4 + 4 }

// qdecode reconstructs the coordinate of grid value q on the [lo, hi] range.
// The endpoints decode exactly: q=0 is lo, q=dirQMax is hi, so a degenerate
// range (hi == lo) and true MBB edges survive the round trip bit-identically.
func qdecode(lo, hi float64, q uint32) float64 {
	switch q {
	case 0:
		return lo
	case dirQMax:
		return hi
	}
	return lo + (hi-lo)*(float64(q)/dirQMax)
}

// qlower quantises a lower bound: the largest grid value that decodes to at
// most x. Float rounding can push the first estimate either way, so the
// result is verified against qdecode and nudged — the loops are bounded by
// the grid size and collapse to zero iterations for sane inputs. NaN or an x
// below lo (impossible for a true MBB, defensive otherwise) yield 0, which
// decodes to lo: for a lower bound that is the only safe floor available.
func qlower(x, lo, hi float64) uint16 {
	w := hi - lo
	if !(w > 0) {
		return 0
	}
	f := (x - lo) / w * dirQMax
	var q uint32
	switch {
	case !(f > 0):
		q = 0
	case f >= dirQMax:
		q = dirQMax
	default:
		q = uint32(f)
	}
	for q > 0 && qdecode(lo, hi, q) > x {
		q--
	}
	for q < dirQMax && qdecode(lo, hi, q+1) <= x {
		q++
	}
	return uint16(q)
}

// qupper quantises an upper bound: the smallest grid value that decodes to at
// least x (dirQMax when even hi falls short, which cannot happen for a true
// MBB).
func qupper(x, lo, hi float64) uint16 {
	w := hi - lo
	if !(w > 0) {
		return 0
	}
	f := (x - lo) / w * dirQMax
	var q uint32
	switch {
	case !(f > 0):
		q = 0
	case f >= dirQMax:
		q = dirQMax
	default:
		q = uint32(f) + 1
	}
	for q < dirQMax && qdecode(lo, hi, q) < x {
		q++
	}
	for q > 0 && qdecode(lo, hi, q-1) >= x {
		q--
	}
	return uint16(q)
}

// leafDeltaShift computes the common trailing-zero count of a leaf's
// coordinate bit-pattern deltas — the exact number of bottom bits the varint
// stream can drop. Zero deltas are ignored (they stay zero under any shift);
// a leaf with only zero deltas reports 0.
func leafDeltaShift(n *node, dims int, mbb geom.Rect) int {
	shift := 64
	prev := make([]uint64, dims)
	for d := 0; d < dims; d++ {
		prev[d] = math.Float64bits(mbb.Lo[d])
	}
	for i := range n.entries {
		e := &n.entries[i]
		for d := 0; d < dims; d++ {
			lo := math.Float64bits(e.Rect.Lo[d])
			if delta := lo - prev[d]; delta != 0 {
				if tz := bits.TrailingZeros64(delta); tz < shift {
					shift = tz
				}
			}
			prev[d] = lo
			if delta := math.Float64bits(e.Rect.Hi[d]) - lo; delta != 0 {
				if tz := bits.TrailingZeros64(delta); tz < shift {
					shift = tz
				}
			}
		}
	}
	if shift == 64 {
		return 0
	}
	return shift
}

// zigzag maps a signed delta onto the unsigned varint domain.
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeNodeV2 serialises a node into the compressed v2 layout. It fails only
// on references the layout cannot carry (a child id beyond uint32), which the
// arena's plausibility bounds make unreachable for trees this package built.
func encodeNodeV2(n *node, dims int) ([]byte, error) {
	// A directory node with an in-memory filter layer is encoded from it
	// verbatim: the planes ARE qlower/qupper of the exact entry bounds
	// against the node MBB (syncPlanes), so the output is identical to
	// recomputing — and for a node faulted in from a v2 page (whose decoded
	// rects are conservative supersets), reusing the adopted coordinates
	// keeps a v2→v2 transcode byte-stable instead of re-quantising the
	// already-expanded rects one grid cell wider.
	usePlanes := !n.leaf && n.hasPlanes(dims)
	var mbb geom.Rect
	switch {
	case usePlanes:
		mbb = geom.Rect{Lo: n.qmbb[:dims], Hi: n.qmbb[dims:]}
	case len(n.entries) == 0:
		mbb = geom.Rect{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
	default:
		mbb = n.mbb()
	}
	buf := make([]byte, 0, nodeHeaderV2Bytes+16*dims+len(n.entries)*(dims*4+8))
	flags := byte(0)
	if n.leaf {
		flags |= flagV2Leaf
	}
	// Byte [2] carries the directory quantisation width, or — on leaves — the
	// common right-shift of the coordinate deltas (their minimum trailing-zero
	// count): limited-precision data leaves a run of zero bits at the bottom
	// of every bit-pattern delta, worth ~shift/7 varint bytes per coordinate.
	shift := 0
	qbits := byte(DirQuantBits)
	if n.leaf {
		shift = leafDeltaShift(n, dims, mbb)
		qbits = byte(shift)
	}
	buf = append(buf, flags, byte(n.level), qbits)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.id))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.entries)))
	for d := 0; d < dims; d++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbb.Lo[d]))
	}
	for d := 0; d < dims; d++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbb.Hi[d]))
	}

	if !n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.Child < 0 || int64(e.Child) > math.MaxUint32 {
				return nil, fmt.Errorf("rtree: node %d child id %d does not fit the v2 layout", n.id, e.Child)
			}
			if usePlanes {
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint16(buf, n.planeAt(dims, d, i, false))
				}
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint16(buf, n.planeAt(dims, d, i, true))
				}
			} else {
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint16(buf, qlower(e.Rect.Lo[d], mbb.Lo[d], mbb.Hi[d]))
				}
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint16(buf, qupper(e.Rect.Hi[d], mbb.Lo[d], mbb.Hi[d]))
				}
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Child))
		}
		return buf, nil
	}

	// Leaf: lossless delta/varint stream. Entry order is preserved — it is
	// part of the bit-identical-results contract — so deltas ride on the
	// spatial locality the build already produced rather than a re-sort.
	payloadStart := len(buf)
	var scratch [binary.MaxVarintLen64]byte
	prevLo := make([]uint64, dims)
	for d := 0; d < dims; d++ {
		prevLo[d] = math.Float64bits(mbb.Lo[d])
	}
	prevObj := int64(0)
	for i := range n.entries {
		e := &n.entries[i]
		for d := 0; d < dims; d++ {
			lo := math.Float64bits(e.Rect.Lo[d])
			m := binary.PutUvarint(scratch[:], zigzag(int64(lo-prevLo[d])>>shift))
			buf = append(buf, scratch[:m]...)
			prevLo[d] = lo
		}
		for d := 0; d < dims; d++ {
			hi := math.Float64bits(e.Rect.Hi[d])
			m := binary.PutUvarint(scratch[:], zigzag(int64(hi-prevLo[d])>>shift))
			buf = append(buf, scratch[:m]...)
		}
		m := binary.PutUvarint(scratch[:], zigzag(int64(e.Object)-prevObj))
		buf = append(buf, scratch[:m]...)
		prevObj = int64(e.Object)
	}
	if len(buf)-payloadStart >= len(n.entries)*EntryBytes(dims) {
		// The stream expanded past the raw layout — rewrite the payload raw so
		// a v2 page is never larger than nodeHeaderV2Bytes + MBB + v1 entries.
		buf = buf[:payloadStart]
		buf[0] |= flagV2RawLeaf
		buf[2] = 0 // no delta shift in the raw layout
		for i := range n.entries {
			e := &n.entries[i]
			for d := 0; d < dims; d++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.Lo[d]))
			}
			for d := 0; d < dims; d++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rect.Hi[d]))
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Object))
		}
	}
	return buf, nil
}

// decodeNodeV2 parses a compressed node page. Directory entry rects come back
// conservatively expanded (supersets of what was encoded); leaf entry rects
// and object ids come back bit-identical. It returns an error for malformed
// input and never allocates proportionally to untrusted length fields.
func decodeNodeV2(buf []byte, dims int) (*node, error) {
	if len(buf) < nodeHeaderV2Bytes+16*dims {
		return nil, errors.New("rtree: v2 node page too short")
	}
	flags := buf[0]
	n := &node{parent: InvalidNode}
	n.leaf = flags&flagV2Leaf != 0
	n.level = int(buf[1])
	qbits := buf[2]
	shift := 0
	if n.leaf {
		if qbits > 63 {
			return nil, fmt.Errorf("rtree: implausible leaf delta shift %d", qbits)
		}
		shift = int(qbits)
	} else if qbits != DirQuantBits {
		return nil, fmt.Errorf("rtree: unsupported directory quantisation %d bits", qbits)
	}
	n.id = NodeID(binary.LittleEndian.Uint32(buf[3:7]))
	count := int(binary.LittleEndian.Uint32(buf[7:11]))
	if count < 0 || count > math.MaxInt32 {
		return nil, fmt.Errorf("rtree: implausible v2 entry count %d", count)
	}
	off := nodeHeaderV2Bytes
	mbbLo := make(geom.Point, dims)
	mbbHi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		mbbLo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	for d := 0; d < dims; d++ {
		mbbHi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}

	switch {
	case !n.leaf:
		want := off + count*dirEntryBytesV2(dims)
		if count > (len(buf)-off)/dirEntryBytesV2(dims) {
			return nil, fmt.Errorf("rtree: v2 directory page truncated: have %d bytes, want %d", len(buf), want)
		}
		n.entries = make([]Entry, count)
		// The page's grid coordinates become the node's SoA filter planes
		// verbatim (and the exactly-stored MBB its quantisation base): the
		// encoder computed them from the exact child MBBs, so they equal
		// what an in-memory tree's syncPlanes produces — requantising the
		// conservatively decoded rects instead would drift by up to one grid
		// cell and make pruning (and I/O counts) diverge between stores.
		pw := planeWords(count)
		n.qplanes = make([]uint64, 2*dims*pw)
		n.qmbb = make([]float64, 2*dims)
		copy(n.qmbb[:dims], mbbLo)
		copy(n.qmbb[dims:], mbbHi)
		for i := 0; i < count; i++ {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				g := binary.LittleEndian.Uint16(buf[off:])
				setPlane(n.qplanes, pw, d, i, false, g)
				lo[d] = qdecode(mbbLo[d], mbbHi[d], uint32(g))
				off += 2
			}
			for d := 0; d < dims; d++ {
				g := binary.LittleEndian.Uint16(buf[off:])
				setPlane(n.qplanes, pw, d, i, true, g)
				hi[d] = qdecode(mbbLo[d], mbbHi[d], uint32(g))
				off += 2
			}
			child := binary.LittleEndian.Uint32(buf[off:])
			off += 4
			n.entries[i] = Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: NodeID(child)}
		}
	case flags&flagV2RawLeaf != 0:
		want := off + count*EntryBytes(dims)
		if count > (len(buf)-off)/EntryBytes(dims) {
			return nil, fmt.Errorf("rtree: v2 raw leaf page truncated: have %d bytes, want %d", len(buf), want)
		}
		n.entries = make([]Entry, count)
		for i := 0; i < count; i++ {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			for d := 0; d < dims; d++ {
				hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			obj := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			n.entries[i] = Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: InvalidNode, Object: ObjectID(obj)}
		}
	default:
		// Delta/varint leaf stream: every entry needs at least one byte per
		// varint, bounding count before any allocation.
		if count > len(buf)-off {
			return nil, fmt.Errorf("rtree: v2 leaf page truncated: %d entries in %d bytes", count, len(buf)-off)
		}
		n.entries = make([]Entry, count)
		prevLo := make([]uint64, dims)
		for d := 0; d < dims; d++ {
			prevLo[d] = math.Float64bits(mbbLo[d])
		}
		prevObj := int64(0)
		for i := 0; i < count; i++ {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				u, m := binary.Uvarint(buf[off:])
				if m <= 0 {
					return nil, errors.New("rtree: v2 leaf stream truncated")
				}
				off += m
				prevLo[d] += uint64(unzigzag(u) << shift)
				lo[d] = math.Float64frombits(prevLo[d])
			}
			for d := 0; d < dims; d++ {
				u, m := binary.Uvarint(buf[off:])
				if m <= 0 {
					return nil, errors.New("rtree: v2 leaf stream truncated")
				}
				off += m
				hi[d] = math.Float64frombits(prevLo[d] + uint64(unzigzag(u)<<shift))
			}
			u, m := binary.Uvarint(buf[off:])
			if m <= 0 {
				return nil, errors.New("rtree: v2 leaf stream truncated")
			}
			off += m
			prevObj += unzigzag(u)
			n.entries[i] = Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: InvalidNode, Object: ObjectID(prevObj)}
		}
	}
	if n.leaf {
		// Leaf coordinates are lossless, so requantising reproduces exactly
		// the planes an in-memory tree computes for the same entries.
		n.syncBoxes(dims)
	} else {
		// Directory planes were adopted from the page above; only the float
		// mirror needs rebuilding from the decoded rects.
		n.syncMirror(dims)
	}
	n.encSize = int32(off)
	return n, nil
}

// encodeNodeCodec serialises a node with the given codec.
func encodeNodeCodec(n *node, dims int, codec PageCodec) ([]byte, error) {
	switch codec {
	case CodecV1:
		return encodeNode(n, dims), nil
	case CodecV2:
		return encodeNodeV2(n, dims)
	default:
		return nil, fmt.Errorf("rtree: unknown page codec %d", codec)
	}
}

// decodeNodeCodec parses a node page written with the given codec.
func decodeNodeCodec(buf []byte, dims int, codec PageCodec) (*node, error) {
	switch codec {
	case CodecV1:
		return decodeNode(buf, dims)
	case CodecV2:
		return decodeNodeV2(buf, dims)
	default:
		return nil, fmt.Errorf("rtree: unknown page codec %d", codec)
	}
}

// TranscodeNodePage re-encodes a single node page from one codec to another.
// The v1→v2 direction is exact for leaves and conservative for directories.
// The v2→v1 direction must undo the conservative expansion — v1 trees require
// every directory entry rect to equal its child's MBB exactly — so the caller
// passes childMBB resolving a child id to its exactly-stored MBB (every v2
// page header carries one; see NodePageMBB). A nil childMBB leaves decoded
// rects untouched, which is correct for every other direction. It is the
// per-page work unit of snapshot.Transcode, which streams a file through it
// without materialising the tree.
func TranscodeNodePage(buf []byte, dims int, from, to PageCodec, childMBB func(NodeID) (geom.Rect, bool)) ([]byte, error) {
	n, err := decodeNodeCodec(buf, dims, from)
	if err != nil {
		return nil, err
	}
	if childMBB != nil && !n.leaf {
		for i := range n.entries {
			if r, ok := childMBB(n.entries[i].Child); ok {
				n.entries[i].Rect = r
			}
		}
	}
	return encodeNodeCodec(n, dims, to)
}

// NodePageMBB reads a v2 node page's id and exactly-stored MBB from its
// header, without decoding entries. snapshot.Transcode uses it to rebuild the
// child-MBB table a v2→v1 conversion needs to restore exact directory rects.
func NodePageMBB(buf []byte, dims int) (NodeID, geom.Rect, error) {
	if len(buf) < nodeHeaderV2Bytes+16*dims {
		return InvalidNode, geom.Rect{}, errors.New("rtree: v2 node page too short")
	}
	id := NodeID(binary.LittleEndian.Uint32(buf[3:7]))
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	off := nodeHeaderV2Bytes
	for d := 0; d < dims; d++ {
		lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	for d := 0; d < dims; d++ {
		hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return id, geom.Rect{Lo: lo, Hi: hi}, nil
}

// NodePageStats describes one decoded node page for inspection tools.
type NodePageStats struct {
	Leaf       bool
	RawLeaf    bool // leaf stored with the v2 raw fallback
	Level      int
	ID         NodeID
	Entries    int
	Bytes      int // exact encoded size
	QuantBits  int // bits per quantised directory coordinate (0 on leaves/v1)
	DeltaShift int // right-shift of the leaf coordinate deltas (v2 leaves)
}

// InspectNodePage decodes just enough of a node page to report its layout
// statistics (cbbinspect's per-level compression report).
func InspectNodePage(buf []byte, dims int, codec PageCodec) (NodePageStats, error) {
	n, err := decodeNodeCodec(buf, dims, codec)
	if err != nil {
		return NodePageStats{}, err
	}
	st := NodePageStats{
		Leaf:    n.leaf,
		Level:   n.level,
		ID:      n.id,
		Entries: len(n.entries),
		Bytes:   int(n.encSize),
	}
	if codec == CodecV2 {
		if n.leaf {
			st.RawLeaf = len(buf) > 0 && buf[0]&flagV2RawLeaf != 0
			if !st.RawLeaf && len(buf) > 2 {
				st.DeltaShift = int(buf[2])
			}
		} else {
			st.QuantBits = DirQuantBits
		}
	}
	return st, nil
}

// MaxEncodedNodeBytes returns the size of the largest node page the tree
// would produce under the given codec — the page-size discovery pass of the
// two-pass v2 snapshot write (v2 pages are variable-length, so the page size
// cannot be derived from MaxEntries alone, unlike PageBytesFor for v1).
func (t *Tree) MaxEncodedNodeBytes(codec PageCodec) (int, error) {
	if codec == CodecV1 {
		return PageBytesFor(t.cfg.MaxEntries, t.cfg.Dims), nil
	}
	max := 0
	var firstErr error
	t.Walk(func(info NodeInfo) {
		if firstErr != nil {
			return
		}
		buf, err := encodeNodeCodec(t.node(info.ID), t.cfg.Dims, codec)
		if err != nil {
			firstErr = err
			return
		}
		if len(buf) > max {
			max = len(buf)
		}
	})
	if firstErr != nil {
		return 0, firstErr
	}
	if err := t.Err(); err != nil {
		return 0, err
	}
	return max, nil
}

// SaveWith is Save with an explicit page codec: every node is encoded with
// codec and written to its own page. Save is SaveWith(p, CodecV1).
func (t *Tree) SaveWith(p storage.PageStore, codec PageCodec) (root storage.PageID, pages map[NodeID]storage.PageID, err error) {
	if t.root == InvalidNode {
		return storage.InvalidPage, nil, errors.New("rtree: cannot save an empty tree")
	}
	pages = make(map[NodeID]storage.PageID)
	var firstErr error
	t.Walk(func(info NodeInfo) {
		if firstErr != nil {
			return
		}
		kind := storage.KindDirectory
		if info.Leaf {
			kind = storage.KindLeaf
		}
		id, err := p.Allocate(kind)
		if err != nil {
			firstErr = err
			return
		}
		pages[info.ID] = id
		buf, err := encodeNodeCodec(t.node(info.ID), t.cfg.Dims, codec)
		if err != nil {
			firstErr = err
			return
		}
		if err := p.Write(id, buf); err != nil {
			firstErr = fmt.Errorf("rtree: saving node %d: %w", info.ID, err)
		}
	})
	if firstErr != nil {
		return storage.InvalidPage, nil, firstErr
	}
	if err := t.Err(); err != nil {
		return storage.InvalidPage, nil, err
	}
	return pages[t.root], pages, nil
}

// LoadCodec is Load with an explicit page codec. A tree loaded from v2 pages
// carries conservatively expanded directory rects; it is marked so Validate
// checks containment instead of equality, and remains fully usable (queries
// are admissible, mutations re-tighten rects as they touch them).
func LoadCodec(cfg Config, p storage.PageStore, root storage.PageID, pages map[NodeID]storage.PageID, codec PageCodec) (*Tree, error) {
	t, err := loadWith(cfg, p, root, pages, codec)
	if err != nil {
		return nil, err
	}
	if codec == CodecV2 {
		t.conservative = true
	}
	return t, nil
}

// OpenPagedCodec is OpenPaged with an explicit page codec: node pages fault
// in through the codec's decoder. Compressed (v2) snapshots open read-only —
// their pages are sized to the encoded bytes at write time, so a re-encoded
// dirty node has no guarantee of fitting its slot; writable trees use v1.
func OpenPagedCodec(cfg Config, store storage.PageStore, pages map[NodeID]storage.PageID, root NodeID, size, height int, readonly bool, codec PageCodec) (*Tree, error) {
	switch codec {
	case CodecV1:
	case CodecV2:
		if !readonly {
			return nil, errors.New("rtree: v2 (compressed) snapshots are read-only; transcode to v1 for a writable open")
		}
	default:
		return nil, fmt.Errorf("rtree: unknown page codec %d", codec)
	}
	t, err := OpenPaged(cfg, store, pages, root, size, height, readonly)
	if err != nil {
		return nil, err
	}
	t.src.codec = codec
	if codec == CodecV2 {
		t.conservative = true
	}
	return t, nil
}
