package rtree

import (
	"container/heap"

	"cbb/internal/geom"
)

// Neighbor is one result of a nearest-neighbour query: an object, its
// rectangle, and its squared distance to the query point.
type Neighbor struct {
	Object ObjectID
	Rect   geom.Rect
	DistSq float64
}

// NearestNeighbors returns the k objects whose rectangles are closest to the
// query point (by minimum Euclidean distance; objects containing the point
// have distance zero), ordered by ascending distance. It uses the classic
// best-first traversal with a priority queue over node MinDist and therefore
// visits only the nodes whose MinDist is below the current k-th best
// distance. Node accesses are charged to the tree's counter like any search.
//
// Nearest-neighbour search is not part of the paper's evaluation; it is
// provided because most downstream users of an R-tree library expect it, and
// it exercises the same node layout and I/O accounting as range queries.
func (t *Tree) NearestNeighbors(k int, p geom.Point) []Neighbor {
	if k <= 0 || t.root == InvalidNode || len(p) != t.cfg.Dims {
		return nil
	}
	root := t.node(t.root)
	if root == nil {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnEntry{node: t.root, distSq: root.mbb().MinDistSq(p)})

	var results []Neighbor
	worst := func() float64 {
		if len(results) < k {
			return -1 // no bound yet
		}
		return results[len(results)-1].DistSq
	}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(knnEntry)
		if w := worst(); w >= 0 && e.distSq > w {
			break // nothing in the queue can improve the result set
		}
		if e.node != InvalidNode {
			n := t.node(e.node)
			if n == nil {
				continue
			}
			if n.leaf {
				t.ChargeRead(n.id, true, nil)
				for i := range n.entries {
					d := n.entries[i].Rect.MinDistSq(p)
					if w := worst(); w >= 0 && d > w {
						continue
					}
					heap.Push(pq, knnEntry{
						node: InvalidNode, object: n.entries[i].Object,
						rect: n.entries[i].Rect, distSq: d, isObject: true,
					})
				}
			} else {
				t.ChargeRead(n.id, false, nil)
				for i := range n.entries {
					d := n.entries[i].Rect.MinDistSq(p)
					if w := worst(); w >= 0 && d > w {
						continue
					}
					heap.Push(pq, knnEntry{node: n.entries[i].Child, distSq: d})
				}
			}
			continue
		}
		// An object entry surfaced: it is at least as close as everything
		// still queued, so it is final.
		results = insertNeighbor(results, Neighbor{Object: e.object, Rect: e.rect, DistSq: e.distSq}, k)
	}
	return results
}

// insertNeighbor inserts n into the sorted result list, keeping at most k
// entries.
func insertNeighbor(results []Neighbor, n Neighbor, k int) []Neighbor {
	pos := len(results)
	for pos > 0 && results[pos-1].DistSq > n.DistSq {
		pos--
	}
	results = append(results, Neighbor{})
	copy(results[pos+1:], results[pos:])
	results[pos] = n
	if len(results) > k {
		results = results[:k]
	}
	return results
}

type knnEntry struct {
	node     NodeID
	object   ObjectID
	rect     geom.Rect
	distSq   float64
	isObject bool
}

type knnQueue []knnEntry

func (q knnQueue) Len() int { return len(q) }
func (q knnQueue) Less(i, j int) bool {
	if q[i].distSq != q[j].distSq {
		return q[i].distSq < q[j].distSq
	}
	// Prefer surfacing objects before nodes at equal distance so results
	// finalise as early as possible.
	return q[i].isObject && !q[j].isObject
}
func (q knnQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) {
	*q = append(*q, x.(knnEntry))
}
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
