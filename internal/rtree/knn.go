package rtree

import (
	"sync"

	"cbb/internal/geom"
)

// Neighbor is one result of a nearest-neighbour query: an object, its
// rectangle, and its squared distance to the query point.
type Neighbor struct {
	Object ObjectID
	Rect   geom.Rect
	DistSq float64
}

// knnScratch is the pooled working state of a nearest-neighbour query: the
// best-first priority queue. Pooling it (plus the concrete-typed heap below,
// which avoids the interface boxing of container/heap) keeps the per-query
// allocations down to the returned result slice.
type knnScratch struct {
	pq []knnEntry
}

var knnScratchPool = sync.Pool{
	New: func() interface{} { return &knnScratch{pq: make([]knnEntry, 0, 128)} },
}

// NearestNeighbors returns the k objects whose rectangles are closest to the
// query point (by minimum Euclidean distance; objects containing the point
// have distance zero), ordered by ascending distance. It uses the classic
// best-first traversal with a priority queue over node MinDist and therefore
// visits only the nodes whose MinDist is below the current k-th best
// distance. Node accesses are charged to the tree's counter like any search.
//
// Nearest-neighbour search is not part of the paper's evaluation; it is
// provided because most downstream users of an R-tree library expect it, and
// it exercises the same node layout and I/O accounting as range queries.
// It runs against the last committed version; see Version.NearestNeighbors
// for querying a pinned snapshot.
func (t *Tree) NearestNeighbors(k int, p geom.Point) []Neighbor {
	return t.cur.Load().NearestNeighbors(k, p)
}

// NearestNeighbors is the best-first k-nearest-neighbour search run against
// one immutable version: the traversal, pop order, and I/O accounting are
// identical to Tree.NearestNeighbors, but the result reflects exactly this
// version's epoch regardless of concurrent writer activity.
func (v *Version) NearestNeighbors(k int, p geom.Point) []Neighbor {
	t := v.tree
	if k <= 0 || v.root == InvalidNode || len(p) != t.cfg.Dims {
		return nil
	}
	root := v.node(v.root)
	if root == nil {
		return nil
	}
	dims := t.cfg.Dims
	sc := knnScratchPool.Get().(*knnScratch)
	pq := knnPush(sc.pq[:0], knnEntry{node: v.root, distSq: root.mbbMinDistSq(p, dims)})

	// At most min(k, size) results can exist; +1 slot absorbs the transient
	// append inside insertNeighbor. Sizing by k alone would let a huge k
	// (e.g. "all neighbours" spelled as MaxInt) attempt an absurd allocation.
	capHint := k
	if v.size < capHint {
		capHint = v.size
	}
	results := make([]Neighbor, 0, capHint+1)
	for len(pq) > 0 {
		var e knnEntry
		pq, e = knnPop(pq)
		// worst is the current k-th best distance, the pruning bound; -1
		// means the result set is not full yet, so nothing can be pruned.
		worst := -1.0
		if len(results) >= k {
			worst = results[len(results)-1].DistSq
		}
		if worst >= 0 && e.distSq > worst {
			break // nothing in the queue can improve the result set
		}
		if e.node != InvalidNode {
			n := v.node(e.node)
			if n == nil {
				continue
			}
			t.chargeReadNode(n, n.leaf, nil)
			boxes := n.boxes
			off := 0
			for i := range n.entries {
				var d float64
				for dim := 0; dim < dims; dim++ {
					switch v := p[dim]; {
					case v < boxes[off+dim]:
						dv := boxes[off+dim] - v
						d += dv * dv
					case v > boxes[off+dims+dim]:
						dv := v - boxes[off+dims+dim]
						d += dv * dv
					}
				}
				off += 2 * dims
				if worst >= 0 && d > worst {
					continue
				}
				if n.leaf {
					pq = knnPush(pq, knnEntry{
						node: InvalidNode, object: n.entries[i].Object,
						rect: n.entries[i].Rect, distSq: d, isObject: true,
					})
				} else {
					pq = knnPush(pq, knnEntry{node: n.entries[i].Child, distSq: d})
				}
			}
			continue
		}
		// An object entry surfaced: it is at least as close as everything
		// still queued, so it is final.
		results = insertNeighbor(results, Neighbor{Object: e.object, Rect: e.rect, DistSq: e.distSq}, k)
	}
	// Drop rectangle references before pooling so the scratch does not pin
	// entry rectangles of this tree until its next use.
	for i := range pq {
		pq[i] = knnEntry{}
	}
	sc.pq = pq[:0]
	knnScratchPool.Put(sc)
	return results
}

// insertNeighbor inserts n into the sorted result list, keeping at most k
// entries.
func insertNeighbor(results []Neighbor, n Neighbor, k int) []Neighbor {
	pos := len(results)
	for pos > 0 && results[pos-1].DistSq > n.DistSq {
		pos--
	}
	results = append(results, Neighbor{})
	copy(results[pos+1:], results[pos:])
	results[pos] = n
	if len(results) > k {
		results = results[:k]
	}
	return results
}

type knnEntry struct {
	node     NodeID
	object   ObjectID
	rect     geom.Rect
	distSq   float64
	isObject bool
}

// knnLess orders queue entries by ascending distance, surfacing objects
// before nodes at equal distance so results finalise as early as possible.
func knnLess(q []knnEntry, i, j int) bool {
	if q[i].distSq != q[j].distSq {
		return q[i].distSq < q[j].distSq
	}
	return q[i].isObject && !q[j].isObject
}

// knnPush and knnPop are container/heap's Push and Pop specialised to
// []knnEntry: the sift procedures mirror heap.up/heap.down exactly, so the
// pop order — and with it visit order and I/O accounting — is bit-identical
// to the previous container/heap implementation, without boxing every entry
// in an interface value.
func knnPush(q []knnEntry, e knnEntry) []knnEntry {
	q = append(q, e)
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !knnLess(q, j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

func knnPop(q []knnEntry) ([]knnEntry, knnEntry) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	// Sift the swapped element down within q[:n] (heap.down(0, n)).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && knnLess(q, j2, j1) {
			j = j2
		}
		if !knnLess(q, j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	e := q[n]
	q[n] = knnEntry{}
	return q[:n], e
}
