package rtree

import (
	"math"
	"sync"

	"cbb/internal/geom"
)

// Neighbor is one result of a nearest-neighbour query: an object, its
// rectangle, and its squared distance to the query point.
type Neighbor struct {
	Object ObjectID
	Rect   geom.Rect
	DistSq float64
}

// knnScratch is the pooled working state of a nearest-neighbour query: the
// best-first priority queue of 16-byte items over an append-only payload
// arena, plus the ball-box window and survivor bitmask of the quantised
// prefilter. Keeping the heap items two words wide (the payload never moves
// once appended) makes every sift swap a register copy instead of a
// bulk-memory one; pooling the buffers (plus the concrete-typed heap below,
// which avoids the interface boxing of container/heap) keeps the per-query
// allocations down to the returned result slice.
type knnScratch struct {
	pq   []knnItem
	refs []knnRef
	blo  [geom.MaxDims]float64
	bhi  [geom.MaxDims]float64
	qg   [2 * geom.MaxDims]uint16
	// maskBuf/mask mirror searchScratch: inline buffer for fanouts up to 256
	// entries, growable spill slice beyond.
	maskBuf [4]uint64
	mask    []uint64
}

// maskFor returns the scratch's survivor-bitmask buffer sized for count
// entries: the inline buffer when it fits, otherwise the growable backing
// slice.
func (sc *knnScratch) maskFor(count int) []uint64 {
	words := (count + 63) >> 6
	if words <= len(sc.maskBuf) {
		return sc.maskBuf[:words]
	}
	if cap(sc.mask) < words {
		sc.mask = make([]uint64, words)
	}
	return sc.mask[:words]
}

var knnScratchPool = sync.Pool{
	New: func() interface{} {
		return &knnScratch{pq: make([]knnItem, 0, 128), refs: make([]knnRef, 0, 128)}
	},
}

// NearestNeighbors returns the k objects whose rectangles are closest to the
// query point (by minimum Euclidean distance; objects containing the point
// have distance zero), ordered by ascending distance. It uses the classic
// best-first traversal with a priority queue over node MinDist and therefore
// visits only the nodes whose MinDist is below the current k-th best
// distance. Node accesses are charged to the tree's counter like any search.
//
// Nearest-neighbour search is not part of the paper's evaluation; it is
// provided because most downstream users of an R-tree library expect it, and
// it exercises the same node layout and I/O accounting as range queries.
// It runs against the last committed version; see Version.NearestNeighbors
// for querying a pinned snapshot.
func (t *Tree) NearestNeighbors(k int, p geom.Point) []Neighbor {
	return t.cur.Load().NearestNeighbors(k, p)
}

// NearestNeighbors is the best-first k-nearest-neighbour search run against
// one immutable version: the traversal, pop order, and I/O accounting are
// identical to Tree.NearestNeighbors, but the result reflects exactly this
// version's epoch regardless of concurrent writer activity.
func (v *Version) NearestNeighbors(k int, p geom.Point) []Neighbor {
	t := v.tree
	if k <= 0 || v.root == InvalidNode || len(p) != t.cfg.Dims {
		return nil
	}
	root := v.node(v.root)
	if root == nil {
		return nil
	}
	dims := t.cfg.Dims
	sc := knnScratchPool.Get().(*knnScratch)
	refs := sc.refs[:0]
	pq := knnPush(sc.pq[:0], knnItem{distSq: root.mbbMinDistSq(p, dims), ref: int64(v.root) << 1})

	// At most min(k, size) results can exist; +1 slot absorbs the transient
	// append inside insertNeighbor. Sizing by k alone would let a huge k
	// (e.g. "all neighbours" spelled as MaxInt) attempt an absurd allocation.
	capHint := k
	if v.size < capHint {
		capHint = v.size
	}
	results := make([]Neighbor, 0, capHint+1)
	for len(pq) > 0 {
		var e knnItem
		pq, e = knnPop(pq)
		// worst is the current k-th best distance, the pruning bound; -1
		// means the result set is not full yet, so nothing can be pruned.
		worst := -1.0
		if len(results) >= k {
			worst = results[len(results)-1].DistSq
		}
		if worst >= 0 && e.distSq > worst {
			break // nothing in the queue can improve the result set
		}
		if e.ref&1 == 0 {
			n := v.node(NodeID(e.ref >> 1))
			if n == nil {
				continue
			}
			t.chargeReadNode(n, n.leaf, nil)
			boxes := n.boxes
			// Quantised prefilter: once the result set is full, every entry
			// that can still matter (exact minDist d <= worst) intersects the
			// Euclidean ball of radius r = sqrt(worst) around p, and hence its
			// bounding box [p-r, p+r]. Grid-testing that box against the SoA
			// planes (conservative, see quant.go) skips the per-dimension
			// float64 distance arithmetic for entries whose grid verdict
			// already proves d > worst; survivors recompute the exact distance
			// and apply the identical d > worst check, so pushes — and with
			// them heap order, visit order, I/O counts, and results — stay
			// bit-identical. The box is padded outward by one ulp per rounding
			// step (sqrt and each endpoint sum) so float rounding can never
			// shrink it below the true ball.
			var mask []uint64
			if worst >= 0 && n.hasPlanes(dims) {
				r := math.Nextafter(math.Sqrt(worst), math.Inf(1))
				for dim := 0; dim < dims; dim++ {
					sc.blo[dim] = math.Nextafter(p[dim]-r, math.Inf(-1))
					sc.bhi[dim] = math.Nextafter(p[dim]+r, math.Inf(1))
				}
				quantiseQuery(n.qmbb, dims, &sc.blo, &sc.bhi, &sc.qg)
				mask = sc.maskFor(len(n.entries))
				quantScan(n.qplanes, len(n.entries), dims, &sc.qg, mask)
			}
			off := 0
			for i := range n.entries {
				if mask != nil && mask[i>>6]&(1<<uint(i&63)) == 0 {
					off += 2 * dims
					continue
				}
				var d float64
				for dim := 0; dim < dims; dim++ {
					switch v := p[dim]; {
					case v < boxes[off+dim]:
						dv := boxes[off+dim] - v
						d += dv * dv
					case v > boxes[off+dims+dim]:
						dv := v - boxes[off+dims+dim]
						d += dv * dv
					}
				}
				off += 2 * dims
				if worst >= 0 && d > worst {
					continue
				}
				if n.leaf {
					refs = append(refs, knnRef{object: n.entries[i].Object, rect: n.entries[i].Rect})
					pq = knnPush(pq, knnItem{distSq: d, ref: int64(len(refs)-1)<<1 | 1})
				} else {
					pq = knnPush(pq, knnItem{distSq: d, ref: int64(n.entries[i].Child) << 1})
				}
			}
			continue
		}
		// An object entry surfaced: it is at least as close as everything
		// still queued, so it is final.
		r := &refs[e.ref>>1]
		results = insertNeighbor(results, Neighbor{Object: r.object, Rect: r.rect, DistSq: e.distSq}, k)
	}
	// Drop rectangle references before pooling so the scratch does not pin
	// entry rectangles of this tree until its next use.
	for i := range refs {
		refs[i] = knnRef{}
	}
	sc.refs = refs[:0]
	sc.pq = pq[:0]
	knnScratchPool.Put(sc)
	return results
}

// insertNeighbor inserts n into the sorted result list, keeping at most k
// entries.
func insertNeighbor(results []Neighbor, n Neighbor, k int) []Neighbor {
	pos := len(results)
	for pos > 0 && results[pos-1].DistSq > n.DistSq {
		pos--
	}
	results = append(results, Neighbor{})
	copy(results[pos+1:], results[pos:])
	results[pos] = n
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// knnItem is one priority-queue element: the distance key plus a tagged
// reference — a node id shifted left one bit, or (tag bit set) an index into
// the scratch's append-only knnRef arena for a surfaced object. Keeping the
// item two words wide makes every heap sift swap a pair of register moves;
// the earlier layout carried the object's geom.Rect inline and spent more
// time bulk-copying 80-byte entries (runtime.duffcopy) than comparing them.
type knnItem struct {
	distSq float64
	ref    int64
}

// knnRef is the out-of-band payload of an object item. Arena entries are
// append-only and never move, so the rectangle slices are written once and
// only read back if the object surfaces into the result set.
type knnRef struct {
	object ObjectID
	rect   geom.Rect
}

// knnLess orders queue items by ascending distance, surfacing objects
// before nodes at equal distance so results finalise as early as possible
// (the tag bit in ref is exactly the old isObject flag).
func knnLess(q []knnItem, i, j int) bool {
	if q[i].distSq != q[j].distSq {
		return q[i].distSq < q[j].distSq
	}
	return q[i].ref&1 == 1 && q[j].ref&1 == 0
}

// knnPush and knnPop are container/heap's Push and Pop specialised to
// []knnItem: the sift procedures mirror heap.up/heap.down exactly, so the
// pop order — and with it visit order and I/O accounting — is bit-identical
// to the previous container/heap implementation, without boxing every entry
// in an interface value.
func knnPush(q []knnItem, e knnItem) []knnItem {
	q = append(q, e)
	j := len(q) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !knnLess(q, j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
	return q
}

func knnPop(q []knnItem) ([]knnItem, knnItem) {
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	// Sift the swapped element down within q[:n] (heap.down(0, n)).
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && knnLess(q, j2, j1) {
			j = j2
		}
		if !knnLess(q, j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	e := q[n]
	q[n] = knnItem{}
	return q[:n], e
}
