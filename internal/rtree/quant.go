package rtree

// This file implements the quantised structure-of-arrays (SoA) filter layer
// of the in-memory node representation: alongside the exact flat float64
// mirror (node.boxes), every node keeps per-dimension planes of 16-bit grid
// coordinates relative to its own MBB, quantised conservatively outward with
// exactly the v2 directory codec's qlower/qupper (lower bounds round down,
// upper bounds round up on the same grid). The query hot path scans these
// planes instead of the float mirror: per node, the intersection test becomes
// one branch-free pass per dimension ANDing a survivor bitmask — and because
// the planes are packed four 16-bit lanes to a uint64 word, each comparison
// instruction processes four entries at once (SWAR), an 8x cut in memory
// traffic and loop iterations against the float64 mirror. Only surviving
// entries ever touch the exact rectangles: leaf survivors get one exact
// verification, directory survivors are recursed into directly (the decoded
// plane rect is a superset of the stored rect, so recursing off the
// conservative verdict is admissible by the same containment argument as the
// v2 on-disk format — a false positive costs one extra node visit, never a
// missed result).
//
// Correctness of the grid-domain test rests on monotonicity rather than on
// comparing decoded values: the query window is projected onto the node's
// grid with the SAME rounding functions the entry bounds got on the side of
// each comparison — the query's upper bound with qlower (the entry lower
// bounds' rounding) and the query's lower bound with qupper (the entry upper
// bounds' rounding). qlower and qupper are monotone in their argument, so
//
//	entry.lo <= query.hi  =>  qlower(entry.lo) <= qlower(query.hi)
//	query.lo <= entry.hi  =>  qupper(query.lo) <= qupper(entry.hi)
//
// and any exact intersection survives in grid domain. (Comparing a
// qlower-rounded value against a qupper-rounded one would NOT be safe: on a
// grid region where the decode function is flat, the two roundings can land
// on opposite ends of the plateau.) The same holds for a node whose boxes
// are themselves conservatively decoded grid rects (v2 directories): a grid
// value g with qdecode(g) <= x satisfies g <= qlower(x) by qlower's
// maximality, and symmetrically for qupper. A node whose MBB is degenerate
// in some dimension quantises every bound there to 0, which both roundings
// also assign to every query value — the dimension passes vacuously and the
// exact verify (leaves) or the child's own planes (directories) take over.
//
// Plane provenance matters for cross-store equivalence: an in-memory node
// quantises its exact entry rects, and a node faulted in from a compressed
// (v2) snapshot page adopts the grid coordinates stored in the page verbatim
// (see decodeNodeV2) — the same pure function of the same exact inputs,
// evaluated at encode time. Requantising the conservatively decoded rects
// instead would drift by up to one grid cell (double quantisation), making
// pruning decisions — and with them node visit counts — diverge between
// stores. With verbatim adoption, every store scans identical planes and the
// equivalence matrices stay bit-identical across mem/file/v2/mmap.

import (
	"math"

	"cbb/internal/geom"
)

// PlaneBits is the width of one in-memory quantised plane coordinate. It is
// fixed to the v2 directory grid (DirQuantBits) so that compressed snapshot
// pages can populate the planes verbatim from their stored grid coordinates,
// with no requantisation on the fault-in path and bit-identical pruning
// across stores. The measured slack of the 16-bit grid (see cbbinspect's
// quant-slack report) is far below one part in 10^3 of a node's extent,
// which a conservative filter absorbs as the occasional extra exact check.
const PlaneBits = DirQuantBits

// planeLanes is how many plane coordinates one uint64 word packs.
const planeLanes = 64 / PlaneBits

const (
	// laneH has the top bit of each 16-bit lane set — the SWAR sign mask.
	laneH = 0x8000800080008000
	// lane1 broadcasts a 16-bit value to all four lanes by multiplication.
	lane1 = 0x0001000100010001
	// nibMul gathers the four lane-top bits (at positions 0/16/32/48 after
	// the >>15) into bits 48..51: lane k's bit travels 48-15k places, and no
	// two partial products collide, so one multiply replaces four
	// shift-mask-or steps.
	nibMul = 1<<48 | 1<<33 | 1<<18 | 1<<3
)

// planeWords is the length of one plane (one dimension, one bound) in packed
// uint64 words.
func planeWords(count int) int { return (count + planeLanes - 1) / planeLanes }

// planeBytes is the resident size of the node's quantised filter layer: the
// packed SoA planes plus the MBB they are quantised against. It is charged
// to byte-budget buffer pools on every access alongside the encoded page
// size, and reported by Stats/NodeInfo.
func (n *node) planeBytes() int { return len(n.qplanes)*8 + len(n.qmbb)*8 }

// hasPlanes reports whether the node carries a filter layer consistent with
// its entry count — true for every node this package builds or decodes; the
// scan kernels fall back to the exact mirror otherwise (defence in depth).
func (n *node) hasPlanes(dims int) bool {
	return len(n.qplanes) == 2*dims*planeWords(len(n.entries)) && len(n.qmbb) == 2*dims
}

// planeAt reads one quantised coordinate back out of the packed planes:
// entry i's lower (hi=false) or upper (hi=true) bound in dimension d.
// Validation and the v2 encoder use it; the scan kernels never unpack.
func (n *node) planeAt(dims, d, i int, hi bool) uint16 {
	count := len(n.entries)
	w := planeWords(count)
	base := 2 * d * w
	if hi {
		base += w
	}
	return uint16(n.qplanes[base+i/planeLanes] >> ((i % planeLanes) * PlaneBits))
}

// setPlane writes one quantised coordinate into the packed planes; the word
// must have been zeroed first.
func setPlane(planes []uint64, w, d, i int, hi bool, g uint16) {
	base := 2 * d * w
	if hi {
		base += w
	}
	planes[base+i/planeLanes] |= uint64(g) << ((i % planeLanes) * PlaneBits)
}

// syncPlanes rebuilds the quantised SoA planes from the flat float mirror:
// qmbb gets the node MBB (Lo extents then Hi extents, like boxes), and each
// dimension's lo/hi plane gets the entry bounds quantised conservatively
// outward onto that MBB's 16-bit grid. The plane layout is dimension-major
// and packed four lanes per word: with W = planeWords(count), words
// [2dW, (2d+1)W) are dimension d's lower-bound plane and [(2d+1)W, (2d+2)W)
// its upper-bound plane, entry i in lane i%4 of word i/4 — so the kernel
// streams contiguous words per dimension. Padding lanes are zero; their mask
// bits are cleared by quantScan. Must be called after syncMirror; the v2
// fault-in path skips it for directory nodes and installs the page's stored
// grid coordinates instead.
func (n *node) syncPlanes(dims int) {
	count := len(n.entries)
	if cap(n.qmbb) < 2*dims {
		n.qmbb = make([]float64, 2*dims)
	} else {
		n.qmbb = n.qmbb[:2*dims]
	}
	w := planeWords(count)
	need := 2 * dims * w
	if cap(n.qplanes) < need {
		n.qplanes = make([]uint64, need)
	} else {
		n.qplanes = n.qplanes[:need]
		for i := range n.qplanes {
			n.qplanes[i] = 0
		}
	}
	if count == 0 {
		for d := 0; d < 2*dims; d++ {
			n.qmbb[d] = 0
		}
		return
	}
	for d := 0; d < dims; d++ {
		minLo := math.Inf(1)
		maxHi := math.Inf(-1)
		for off := 0; off < len(n.boxes); off += 2 * dims {
			if v := n.boxes[off+d]; v < minLo {
				minLo = v
			}
			if v := n.boxes[off+dims+d]; v > maxHi {
				maxHi = v
			}
		}
		n.qmbb[d] = minLo
		n.qmbb[dims+d] = maxHi
	}
	for d := 0; d < dims; d++ {
		lo, hi := n.qmbb[d], n.qmbb[dims+d]
		off := 0
		for i := 0; i < count; i++ {
			setPlane(n.qplanes, w, d, i, false, qlower(n.boxes[off+d], lo, hi))
			setPlane(n.qplanes, w, d, i, true, qupper(n.boxes[off+dims+d], lo, hi))
			off += 2 * dims
		}
	}
}

// quantiseQuery projects the query window onto the node's grid with the
// conservative rounding pairing described above: qg[2d] is the query's lower
// bound rounded UP with qupper (compared against entry upper bounds, which
// qupper rounded up) and qg[2d+1] the upper bound rounded DOWN with qlower
// (compared against entry lower bounds). Query coordinates outside the node
// MBB clamp to the grid ends, which only widens the admitted set.
func quantiseQuery(qmbb []float64, dims int, qlo, qhi *[geom.MaxDims]float64, qg *[2 * geom.MaxDims]uint16) {
	for d := 0; d < dims; d++ {
		lo, hi := qmbb[d], qmbb[dims+d]
		qg[2*d] = qupper(qlo[d], lo, hi)
		qg[2*d+1] = qlower(qhi[d], lo, hi)
	}
}

// swarGE compares the four unsigned 16-bit lanes of x and y at once,
// returning a word whose lane-top bit is set exactly where x's lane >= y's.
// Forcing x's lane tops on and y's off before the subtraction confines each
// lane's borrow to itself; the lane-top of the difference then decides the
// low 15 bits, and the original lane tops decide the rest (classic SWAR
// unsigned compare).
func swarGE(x, y uint64) uint64 {
	t := (x | laneH) - (y &^ laneH)
	xh := x & laneH
	yh := y & laneH
	return (xh &^ yh) | (^(xh ^ yh) & t & laneH)
}

// quantScan fills mask with the survivor bitmask of the node's entries
// against the quantised query window: bit i of mask[i/64] is set iff the
// grid-domain test admits entry i. One pass over the packed planes, four
// entries per comparison: per word and dimension, two SWAR compares AND into
// a lane-top accumulator, and one multiply gathers the four verdict bits
// into the mask nibble. The admitted set is a superset of the exact
// intersection set (see the file comment); it never misses a true hit.
// Padding-lane bits beyond count are cleared before returning.
//
// The common dimensionalities are unrolled: the per-dimension sub-slices are
// hoisted out of the word loop (one bounds check each instead of index
// arithmetic plus a check per access), which is worth ~30% of the kernel at
// dims=2. All branches compute the identical function.
func quantScan(planes []uint64, count, dims int, qg *[2 * geom.MaxDims]uint16, mask []uint64) {
	w := planeWords(count)
	for i := range mask {
		mask[i] = 0
	}
	if w == 0 {
		return
	}
	switch dims {
	case 1:
		lo0, hi0 := planes[0:w:w], planes[w:2*w:2*w]
		ql0, qh0 := uint64(qg[0])*lane1, uint64(qg[1])*lane1
		for wi := 0; wi < w; wi++ {
			m := swarGE(qh0, lo0[wi]) & swarGE(hi0[wi], ql0)
			mask[wi>>4] |= (((m >> 15) * nibMul) >> 48 & 0xF) << ((wi & 15) << 2)
		}
	case 2:
		lo0, hi0 := planes[0:w:w], planes[w:2*w:2*w]
		lo1, hi1 := planes[2*w:3*w:3*w], planes[3*w:4*w:4*w]
		ql0, qh0 := uint64(qg[0])*lane1, uint64(qg[1])*lane1
		ql1, qh1 := uint64(qg[2])*lane1, uint64(qg[3])*lane1
		for wi := 0; wi < w; wi++ {
			m := swarGE(qh0, lo0[wi]) & swarGE(hi0[wi], ql0)
			m &= swarGE(qh1, lo1[wi]) & swarGE(hi1[wi], ql1)
			mask[wi>>4] |= (((m >> 15) * nibMul) >> 48 & 0xF) << ((wi & 15) << 2)
		}
	case 3:
		lo0, hi0 := planes[0:w:w], planes[w:2*w:2*w]
		lo1, hi1 := planes[2*w:3*w:3*w], planes[3*w:4*w:4*w]
		lo2, hi2 := planes[4*w:5*w:5*w], planes[5*w:6*w:6*w]
		ql0, qh0 := uint64(qg[0])*lane1, uint64(qg[1])*lane1
		ql1, qh1 := uint64(qg[2])*lane1, uint64(qg[3])*lane1
		ql2, qh2 := uint64(qg[4])*lane1, uint64(qg[5])*lane1
		for wi := 0; wi < w; wi++ {
			m := swarGE(qh0, lo0[wi]) & swarGE(hi0[wi], ql0)
			m &= swarGE(qh1, lo1[wi]) & swarGE(hi1[wi], ql1)
			m &= swarGE(qh2, lo2[wi]) & swarGE(hi2[wi], ql2)
			mask[wi>>4] |= (((m >> 15) * nibMul) >> 48 & 0xF) << ((wi & 15) << 2)
		}
	default:
		var cql, cqh [geom.MaxDims]uint64
		for d := 0; d < dims; d++ {
			cql[d] = uint64(qg[2*d]) * lane1
			cqh[d] = uint64(qg[2*d+1]) * lane1
		}
		for wi := 0; wi < w; wi++ {
			m := ^uint64(0)
			for d := 0; d < dims; d++ {
				lo := planes[2*d*w+wi]
				hi := planes[(2*d+1)*w+wi]
				m &= swarGE(cqh[d], lo) & swarGE(hi, cql[d])
			}
			mask[wi>>4] |= (((m >> 15) * nibMul) >> 48 & 0xF) << ((wi & 15) << 2)
		}
	}
	if r := count & 63; r != 0 {
		mask[len(mask)-1] &= 1<<uint(r) - 1
	}
}
