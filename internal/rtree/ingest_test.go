package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cbb/internal/geom"
)

func ingestItems(rng *rand.Rand, dims, n int, clustered bool) []Item {
	items := make([]Item, n)
	for i := range items {
		r := randRect(rng, dims, 1000, 5)
		if clustered {
			// Squeeze most items into a hot corner so Hilbert runs get long.
			if i%4 != 0 {
				r = randRect(rng, dims, 60, 2)
			}
		}
		items[i] = Item{Object: ObjectID(i + 1), Rect: r}
	}
	return items
}

func sortedAll(t *Tree, q geom.Rect) []string {
	var out []string
	t.Search(q, func(id ObjectID, r geom.Rect) bool {
		out = append(out, fmt.Sprintf("%d:%v", id, r))
		return true
	})
	sort.Strings(out)
	return out
}

func universeRect(dims int) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = -1e7, 1e7
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// TestInsertItemsEquivalence checks that InsertItems indexes exactly the
// same objects as per-item Insert, for every variant, dims 1-3, into both
// empty and pre-populated trees, and that the tree stays valid.
func TestInsertItemsEquivalence(t *testing.T) {
	for _, v := range AllVariants() {
		for dims := 1; dims <= 3; dims++ {
			for _, seedSize := range []int{0, 300} {
				name := fmt.Sprintf("%s/dims=%d/seed=%d", v, dims, seedSize)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					seed := ingestItems(rng, dims, seedSize, false)
					batch := ingestItems(rng, dims, 900, true)
					for i := range batch {
						batch[i].Object = ObjectID(10000 + i)
					}

					batched := MustNew(smallConfig(dims, v))
					perItem := MustNew(smallConfig(dims, v))
					for _, tree := range []*Tree{batched, perItem} {
						for _, it := range seed {
							if _, err := tree.Insert(it.Rect, it.Object); err != nil {
								t.Fatalf("seed insert: %v", err)
							}
						}
					}
					if _, err := batched.InsertItems(batch); err != nil {
						t.Fatalf("InsertItems: %v", err)
					}
					for _, it := range batch {
						if _, err := perItem.Insert(it.Rect, it.Object); err != nil {
							t.Fatalf("per-item insert: %v", err)
						}
					}
					if batched.Len() != perItem.Len() {
						t.Fatalf("Len = %d, per-item %d", batched.Len(), perItem.Len())
					}
					if err := batched.Validate(); err != nil {
						t.Fatalf("Validate after InsertItems: %v", err)
					}
					q := universeRect(dims)
					if got, want := sortedAll(batched, q), sortedAll(perItem, q); len(got) != len(want) {
						t.Fatalf("result count %d, per-item %d", len(got), len(want))
					} else {
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("result %d: %s vs %s", i, got[i], want[i])
							}
						}
					}
					// Spot queries.
					for k := 0; k < 50; k++ {
						sq := randRect(rng, dims, 900, 80)
						got, want := sortedAll(batched, sq), sortedAll(perItem, sq)
						if len(got) != len(want) {
							t.Fatalf("query %v: %d results, per-item %d", sq, len(got), len(want))
						}
					}
				})
			}
		}
	}
}

// TestInsertItemsFallbackBitIdentical pins the fallback contract: with the
// fast path disabled, InsertItems is structurally bit-identical to
// inserting the Hilbert-sorted sequence per item inside one batch —
// identical stats, identical traversal order, identical write I/O.
func TestInsertItemsFallbackBitIdentical(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			dims := 2
			seed := ingestItems(rng, dims, 200, false)
			batch := ingestItems(rng, dims, 500, true)
			for i := range batch {
				batch[i].Object = ObjectID(10000 + i)
			}

			a := MustNew(smallConfig(dims, v))
			b := MustNew(smallConfig(dims, v))
			for _, tree := range []*Tree{a, b} {
				for _, it := range seed {
					if _, err := tree.Insert(it.Rect, it.Object); err != nil {
						t.Fatal(err)
					}
				}
			}
			a.SetIngestTuning(IngestTuning{DisableFastPath: true})
			wa := a.Counter().Snapshot().Writes
			wb := b.Counter().Snapshot().Writes
			if _, err := a.InsertItems(batch); err != nil {
				t.Fatal(err)
			}
			// Replay the identical (sorted) sequence per item in one batch.
			sorted := b.sortedIngestKeys(batch)
			seq := make([]Item, len(sorted))
			for i := range sorted {
				seq[i] = sorted[i].item
			}
			if err := b.BeginBatch(); err != nil {
				t.Fatal(err)
			}
			for _, it := range seq {
				if _, err := b.Insert(it.Rect, it.Object); err != nil {
					t.Fatal(err)
				}
			}
			b.CommitBatch()

			sa, sb := a.Stats(), b.Stats()
			if fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
				t.Fatalf("stats diverge:\n fallback: %+v\n per-item: %+v", sa, sb)
			}
			da := a.Counter().Snapshot().Writes - wa
			db := b.Counter().Snapshot().Writes - wb
			if da != db {
				t.Fatalf("write I/O diverges: fallback %d, per-item %d", da, db)
			}
			// Traversal order (not just membership) must match.
			q := universeRect(dims)
			var va, vb []ObjectID
			a.Search(q, func(id ObjectID, _ geom.Rect) bool { va = append(va, id); return true })
			b.Search(q, func(id ObjectID, _ geom.Rect) bool { vb = append(vb, id); return true })
			if len(va) != len(vb) {
				t.Fatalf("visit counts diverge: %d vs %d", len(va), len(vb))
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("visit order diverges at %d: %d vs %d", i, va[i], vb[i])
				}
			}
			if st := a.LastIngest(); st.PerItem != len(batch) || st.Grafted != 0 {
				t.Fatalf("fallback stats wrong: %+v", st)
			}
		})
	}
}

// TestInsertItemsGraftEngages checks that a clustered batch actually uses
// the graft path and that grafting keeps the structure valid.
func TestInsertItemsGraftEngages(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			dims := 2
			tree := MustNew(smallConfig(dims, v))
			// The batch dwarfs the seed, which would trip the wholesale
			// rebuild; disable it so the graft path itself is exercised.
			tree.SetIngestTuning(IngestTuning{DisableRebuild: true})
			// Seed densely so one leaf's MBB covers the hot region.
			for i := 0; i < 400; i++ {
				r := randRect(rng, dims, 100, 4)
				if _, err := tree.Insert(r, ObjectID(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			batch := make([]Item, 4000)
			for i := range batch {
				batch[i] = Item{Object: ObjectID(10000 + i), Rect: randRect(rng, dims, 100, 2)}
			}
			if _, err := tree.InsertItems(batch); err != nil {
				t.Fatal(err)
			}
			st := tree.LastIngest()
			if st.Grafted == 0 {
				t.Fatalf("graft path never engaged: %+v", st)
			}
			if st.Grafted+st.RunPlaced+st.PerItem != len(batch) {
				t.Fatalf("items unaccounted: %+v", st)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate after graft: %v", err)
			}
			if tree.Len() != 400+len(batch) {
				t.Fatalf("Len = %d, want %d", tree.Len(), 400+len(batch))
			}
		})
	}
}

// TestInsertItemsRebuildEngages checks that a batch dwarfing the tree takes
// the wholesale-rebuild path, keeps every old and new object searchable, and
// reports every live node as created so downstream maintenance can rebuild
// its per-node state.
func TestInsertItemsRebuildEngages(t *testing.T) {
	for _, v := range AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			dims := 2
			tree := MustNew(smallConfig(dims, v))
			seed := ingestItems(rng, dims, 200, false)
			for i, it := range seed {
				if _, err := tree.Insert(it.Rect, ObjectID(i+1)); err != nil {
					t.Fatal(err)
				}
			}
			batch := make([]Item, 1000)
			for i := range batch {
				batch[i] = Item{Object: ObjectID(10000 + i), Rect: randRect(rng, dims, 100, 2)}
			}
			trace, err := tree.InsertItems(batch)
			if err != nil {
				t.Fatal(err)
			}
			st := tree.LastIngest()
			if !st.Rebuilt || !trace.Rebuilt {
				t.Fatalf("rebuild path did not engage: stats %+v, trace.Rebuilt %v", st, trace.Rebuilt)
			}
			dir, leaf := tree.NodeCount()
			if len(trace.Created) != dir+leaf {
				t.Fatalf("trace.Created %d, live nodes %d", len(trace.Created), dir+leaf)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("Validate after rebuild: %v", err)
			}
			if tree.Len() != len(seed)+len(batch) {
				t.Fatalf("Len = %d, want %d", tree.Len(), len(seed)+len(batch))
			}
			// Every pre-existing and batch object must still be found.
			found := 0
			tree.Search(geom.Rect{Lo: geom.Point{-1000, -1000}, Hi: geom.Point{1000, 1000}}, func(ObjectID, geom.Rect) bool {
				found++
				return true
			})
			if found != len(seed)+len(batch) {
				t.Fatalf("search found %d, want %d", found, len(seed)+len(batch))
			}
			// A small follow-up batch must not rebuild again.
			small := []Item{{Object: 99999, Rect: randRect(rng, dims, 100, 2)}}
			if _, err := tree.InsertItems(small); err != nil {
				t.Fatal(err)
			}
			if tree.LastIngest().Rebuilt {
				t.Fatalf("small follow-up batch rebuilt: %+v", tree.LastIngest())
			}
		})
	}
}

// TestInsertItemsEmptyTreeBulk checks the empty-tree path bulk packs and
// reports every node as created.
func TestInsertItemsEmptyTreeBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, v := range AllVariants() {
		tree := MustNew(smallConfig(2, v))
		batch := ingestItems(rng, 2, 1000, false)
		trace, err := tree.InsertItems(batch)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.LastIngest().BulkLoaded {
			t.Fatalf("%s: empty-tree batch did not bulk load", v)
		}
		dir, leaf := tree.NodeCount()
		if len(trace.Created) != dir+leaf {
			t.Fatalf("%s: trace.Created %d, nodes %d", v, len(trace.Created), dir+leaf)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if tree.Len() != len(batch) {
			t.Fatalf("%s: Len %d", v, tree.Len())
		}
	}
}

// TestInsertItemsInExplicitBatch checks InsertItems composes with
// BeginBatch/CommitBatch (no publish until commit) and RollbackBatch
// discards it.
func TestInsertItemsInExplicitBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := MustNew(smallConfig(2, RStar))
	seedItems := ingestItems(rng, 2, 200, false)
	for _, it := range seedItems {
		if _, err := tree.Insert(it.Rect, it.Object); err != nil {
			t.Fatal(err)
		}
	}
	batch := ingestItems(rng, 2, 1000, true)
	for i := range batch {
		batch[i].Object = ObjectID(5000 + i)
	}

	if err := tree.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.InsertItems(batch); err != nil {
		t.Fatal(err)
	}
	if got := tree.CurrentVersion().Len(); got != 200 {
		t.Fatalf("readers saw uncommitted batch: Len %d", got)
	}
	tree.RollbackBatch()
	if tree.Len() != 200 {
		t.Fatalf("rollback failed: Len %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("after rollback: %v", err)
	}

	if err := tree.BeginBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.InsertItems(batch); err != nil {
		t.Fatal(err)
	}
	tree.CommitBatch()
	if tree.Len() != 200+len(batch) {
		t.Fatalf("after commit: Len %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestInsertItemsRejectsInvalid checks dimension/validity screening before
// any mutation happens.
func TestInsertItemsRejectsInvalid(t *testing.T) {
	tree := MustNew(smallConfig(2, Quadratic))
	bad := []Item{
		{Object: 1, Rect: geom.Rect{Lo: geom.Point{0, 0}, Hi: geom.Point{1, 1}}},
		{Object: 2, Rect: geom.Rect{Lo: geom.Point{0}, Hi: geom.Point{1}}}, // wrong dims
	}
	if _, err := tree.InsertItems(bad); err == nil {
		t.Fatal("expected dimensionality error")
	}
	if tree.Len() != 0 {
		t.Fatalf("failed batch mutated the tree: Len %d", tree.Len())
	}
}
