package clipindex

import (
	"fmt"
	"math/rand"
	"testing"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

func smallConfig(dims int, v rtree.Variant) rtree.Config {
	return rtree.Config{Dims: dims, MaxEntries: 8, MinEntries: 3, Variant: v, HilbertBits: 12}
}

func randRect(rng *rand.Rand, dims int, span, maxSide float64) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64() * span
		lo[d] = a
		hi[d] = a + rng.Float64()*maxSide
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// buildClusteredTree builds a tree over clustered skinny objects, which
// produce plenty of dead space for clipping to remove.
func buildClusteredTree(t testing.TB, rng *rand.Rand, v rtree.Variant, n int) (*rtree.Tree, []rtree.Item) {
	t.Helper()
	tree := rtree.MustNew(smallConfig(2, v))
	var items []rtree.Item
	for i := 0; i < n; i++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		var r geom.Rect
		if i%2 == 0 {
			r = geom.R(cx, cy, cx+rng.Float64()*40, cy+rng.Float64()*2) // horizontal sliver
		} else {
			r = geom.R(cx, cy, cx+rng.Float64()*2, cy+rng.Float64()*40) // vertical sliver
		}
		items = append(items, rtree.Item{Object: rtree.ObjectID(i), Rect: r})
		if _, err := tree.Insert(r, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree, items
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, core.DefaultParams(2)); err == nil {
		t.Error("nil tree must be rejected")
	}
	tree := rtree.MustNew(smallConfig(2, rtree.Quadratic))
	if _, err := New(tree, core.Params{K: -1}); err == nil {
		t.Error("invalid params must be rejected")
	}
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Error("empty index should have length 0")
	}
	// Searching an empty index is a no-op.
	idx.Search(geom.R(0, 0, 1, 1), func(rtree.ObjectID, geom.Rect) bool { return true })
}

func TestReclipCauseString(t *testing.T) {
	if CauseSplit.String() != "node split" || CauseMBBChange.String() != "MBB change" || CauseCBBOnly.String() != "CBB change" {
		t.Error("cause names should match Figure 12's legend")
	}
	if ReclipCause(9).String() == "" {
		t.Error("unknown cause should render")
	}
}

func TestClippedSearchMatchesUnclipped(t *testing.T) {
	for _, v := range rtree.AllVariants() {
		for _, method := range []core.Method{core.MethodSkyline, core.MethodStairline} {
			t.Run(fmt.Sprintf("%v-%v", v, method), func(t *testing.T) {
				rng := rand.New(rand.NewSource(7))
				tree, _ := buildClusteredTree(t, rng, v, 800)
				params := core.DefaultParams(2)
				params.Method = method
				idx, err := New(tree, params)
				if err != nil {
					t.Fatal(err)
				}
				if err := idx.Validate(); err != nil {
					t.Fatal(err)
				}
				for q := 0; q < 200; q++ {
					query := randRect(rng, 2, 1000, 60)
					unclipped := tree.Count(query)
					clipped := idx.Count(query)
					if unclipped != clipped {
						t.Fatalf("query %v: clipped %d != unclipped %d", query, clipped, unclipped)
					}
				}
			})
		}
	}
}

func TestClippedSearchSavesLeafIO(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree, _ := buildClusteredTree(t, rng, rtree.RStar, 3000)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]geom.Rect, 300)
	for i := range queries {
		// Small queries centred anywhere: many fall into dead space.
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		queries[i] = geom.MustRect(c, c.Add(geom.Pt(4, 4)))
	}
	tree.Counter().Reset()
	for _, q := range queries {
		tree.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
	}
	unclipped := tree.Counter().Snapshot().LeafReads

	tree.Counter().Reset()
	for _, q := range queries {
		idx.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
	}
	clipped := tree.Counter().Snapshot().LeafReads

	if clipped > unclipped {
		t.Fatalf("clipped search used more leaf I/O (%d) than unclipped (%d)", clipped, unclipped)
	}
	if clipped == unclipped {
		t.Logf("warning: clipping saved no I/O on this workload (%d leaf reads)", clipped)
	}
	t.Logf("leaf reads: unclipped %d, clipped %d (%.1f%%)", unclipped, clipped,
		100*float64(clipped)/float64(unclipped))
}

func TestStairlineSavesAtLeastAsMuchAsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tree, _ := buildClusteredTree(t, rng, rtree.Quadratic, 2000)
	queries := make([]geom.Rect, 400)
	for i := range queries {
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		queries[i] = geom.MustRect(c, c.Add(geom.Pt(3, 3)))
	}
	measure := func(m core.Method) int64 {
		params := core.DefaultParams(2)
		params.Method = m
		idx, err := New(tree, params)
		if err != nil {
			t.Fatal(err)
		}
		tree.Counter().Reset()
		for _, q := range queries {
			idx.Search(q, func(rtree.ObjectID, geom.Rect) bool { return true })
		}
		return tree.Counter().Snapshot().LeafReads
	}
	sky := measure(core.MethodSkyline)
	sta := measure(core.MethodStairline)
	if sta > sky {
		t.Errorf("CSTA (%d leaf reads) should not be worse than CSKY (%d)", sta, sky)
	}
}

func TestInsertMaintainsCorrectness(t *testing.T) {
	for _, v := range rtree.AllVariants() {
		t.Run(v.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(37))
			tree, items := buildClusteredTree(t, rng, v, 400)
			idx, err := New(tree, core.DefaultParams(2))
			if err != nil {
				t.Fatal(err)
			}
			// Insert more objects through the clipped index.
			for i := 400; i < 700; i++ {
				r := randRect(rng, 2, 1000, 30)
				items = append(items, rtree.Item{Object: rtree.ObjectID(i), Rect: r})
				if _, err := idx.Insert(r, rtree.ObjectID(i)); err != nil {
					t.Fatal(err)
				}
			}
			if idx.Len() != 700 {
				t.Fatalf("Len = %d, want 700", idx.Len())
			}
			if err := idx.Validate(); err != nil {
				t.Fatalf("clip table invalid after inserts: %v", err)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("tree invalid after inserts: %v", err)
			}
			// Clipped queries still agree with brute force.
			for q := 0; q < 100; q++ {
				query := randRect(rng, 2, 1000, 50)
				want := 0
				for _, it := range items {
					if it.Rect.Intersects(query) {
						want++
					}
				}
				if got := idx.Count(query); got != want {
					t.Fatalf("query %v: got %d, want %d", query, got, want)
				}
			}
			stats := idx.Stats()
			if stats.Inserts != 300 {
				t.Errorf("Inserts = %d, want 300", stats.Inserts)
			}
			if stats.TotalReclips() == 0 {
				t.Error("300 inserts into a small-fanout tree should trigger some re-clips")
			}
			if stats.ReclipsPerInsert() <= 0 {
				t.Error("ReclipsPerInsert should be positive")
			}
		})
	}
}

func TestInsertAvoidsUnnecessaryReclips(t *testing.T) {
	// Inserting an object strictly inside an existing object's rectangle
	// cannot invalidate any clip point and must not force a CBB-only reclip.
	objs := []geom.Rect{
		geom.R(0, 0, 40, 40), geom.R(60, 0, 100, 40), geom.R(0, 60, 40, 100),
	}
	tree := rtree.MustNew(smallConfig(2, rtree.Quadratic))
	for i, r := range objs {
		_, _ = tree.Insert(r, rtree.ObjectID(i))
	}
	idx, err := New(tree, core.Params{K: 8, Tau: 0, Method: core.MethodStairline})
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	// Strictly inside the first object: no MBB change, no dead-space
	// intrusion.
	if _, err := idx.Insert(geom.R(10, 10, 20, 20), 100); err != nil {
		t.Fatal(err)
	}
	s := idx.Stats()
	if s.ReclipsByCBB != 0 {
		t.Errorf("nested insert should not cause a CBB-only reclip: %+v", s)
	}
	if s.AvoidedReclips == 0 {
		t.Errorf("validity check should have been recorded as avoided: %+v", s)
	}
	// Now insert into the empty centre (dead space of the root): the root's
	// clip points must be recomputed or the new object would be hidden.
	if _, err := idx.Insert(geom.R(45, 45, 55, 55), 101); err != nil {
		t.Fatal(err)
	}
	if got := idx.Count(geom.R(44, 44, 56, 56)); got != 1 {
		t.Fatalf("object inserted into former dead space not found: got %d", got)
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteLazyMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tree, items := buildClusteredTree(t, rng, rtree.RStar, 600)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	idx.ResetStats()
	for i := 0; i < 300; i++ {
		found, err := idx.Delete(items[i].Rect, items[i].Object)
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if found, _ := idx.Delete(geom.R(0, 0, 1, 1), 999999); found {
		t.Error("deleting a missing object should report false")
	}
	if idx.Len() != 300 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("clip table invalid after deletes: %v", err)
	}
	s := idx.Stats()
	if s.Deletes != 300 {
		t.Errorf("Deletes = %d", s.Deletes)
	}
	if s.DeletesNoReclip == 0 {
		t.Error("some deletions should be absorbed without reclipping")
	}
	// Queries remain correct (remaining objects only).
	for q := 0; q < 50; q++ {
		query := randRect(rng, 2, 1000, 80)
		want := 0
		for _, it := range items[300:] {
			if it.Rect.Intersects(query) {
				want++
			}
		}
		if got := idx.Count(query); got != want {
			t.Fatalf("query %v after deletes: got %d want %d", query, got, want)
		}
	}
}

func TestTableStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tree, _ := buildClusteredTree(t, rng, rtree.Quadratic, 500)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	table := idx.Table()
	if table.ClipPointCount() == 0 {
		t.Fatal("expected clip points on clustered sliver data")
	}
	avg := table.AvgClipPointsPerNode()
	if avg <= 0 || avg > float64(idx.Params().K) {
		t.Errorf("AvgClipPointsPerNode = %g out of range", avg)
	}
	var empty Table
	if empty.AvgClipPointsPerNode() != 0 {
		t.Error("empty table average should be 0")
	}
}

func TestEncodeDecodeTable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tree, _ := buildClusteredTree(t, rng, rtree.RRStar, 400)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	buf := EncodeTable(idx.Table(), 2)
	if len(buf) != idx.AuxBytes() {
		t.Error("AuxBytes should equal encoded size")
	}
	back, dims, err := DecodeTable(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 2 {
		t.Errorf("decoded dims = %d", dims)
	}
	if len(back) != len(idx.Table()) {
		t.Fatalf("decoded %d entries, want %d", len(back), len(idx.Table()))
	}
	for id, clips := range idx.Table() {
		got := back[id]
		if len(got) != len(clips) {
			t.Fatalf("node %d: %d clips decoded, want %d", id, len(got), len(clips))
		}
		for i := range clips {
			if !got[i].Coord.Equal(clips[i].Coord) || got[i].Mask != clips[i].Mask {
				t.Fatalf("node %d clip %d mismatch", id, i)
			}
		}
	}
}

func TestDecodeTableErrors(t *testing.T) {
	if _, _, err := DecodeTable(nil); err == nil {
		t.Error("nil buffer must fail")
	}
	if _, _, err := DecodeTable([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer must fail")
	}
	// Corrupt dims.
	bad := make([]byte, 8)
	bad[0] = 200
	if _, _, err := DecodeTable(bad); err == nil {
		t.Error("implausible dims must fail")
	}
	// Truncated clip point.
	tree := rtree.MustNew(smallConfig(2, rtree.Quadratic))
	for i := 0; i < 30; i++ {
		_, _ = tree.Insert(geom.R(float64(i), 0, float64(i)+5, 1), rtree.ObjectID(i))
	}
	idx, _ := New(tree, core.Params{K: 8, Tau: 0, Method: core.MethodStairline})
	buf := EncodeTable(idx.Table(), 2)
	if len(buf) > 16 {
		if _, _, err := DecodeTable(buf[:len(buf)-3]); err == nil {
			t.Error("truncated table must fail")
		}
	}
}

func TestSaveAux(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tree, _ := buildClusteredTree(t, rng, rtree.RStar, 600)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		t.Fatal(err)
	}
	pager := storage.NewPager(512)
	pages, err := idx.SaveAux(pager)
	if err != nil {
		t.Fatal(err)
	}
	if pages == 0 {
		t.Fatal("expected at least one auxiliary page")
	}
	usage := pager.Usage()
	if usage.Pages[storage.KindAux] != pages {
		t.Errorf("pager reports %d aux pages, SaveAux returned %d", usage.Pages[storage.KindAux], pages)
	}
	if usage.Bytes[storage.KindAux] != idx.AuxBytes() {
		t.Errorf("aux bytes %d != AuxBytes %d", usage.Bytes[storage.KindAux], idx.AuxBytes())
	}
}

func TestClipPointBytes(t *testing.T) {
	if ClipPointBytes(2) != 20 || ClipPointBytes(3) != 28 {
		t.Error("ClipPointBytes wrong")
	}
}

// Property: after any sequence of clipped-index inserts, a full-space query
// through the clipped path returns every object exactly once.
func TestInsertNeverLosesObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tree := rtree.MustNew(smallConfig(3, rtree.RRStar))
	idx, err := New(tree, core.DefaultParams(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 500
	for i := 0; i < n; i++ {
		r := randRect(rng, 3, 200, 15)
		if _, err := idx.Insert(r, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[rtree.ObjectID]int)
	idx.Search(geom.R(-10, -10, -10, 250, 250, 250), func(id rtree.ObjectID, _ geom.Rect) bool {
		seen[id]++
		return true
	})
	if len(seen) != n {
		t.Fatalf("full query found %d of %d objects", len(seen), n)
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("object %d returned %d times", id, count)
		}
	}
	if err := idx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClippedSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree, _ := buildClusteredTree(b, rng, rtree.RStar, 5000)
	idx, err := New(tree, core.DefaultParams(2))
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]geom.Rect, 256)
	for i := range queries {
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		queries[i] = geom.MustRect(c, c.Add(geom.Pt(5, 5)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx.Search(queries[i%len(queries)], func(rtree.ObjectID, geom.Rect) bool { return true })
	}
}

func BenchmarkUnclippedSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tree, _ := buildClusteredTree(b, rng, rtree.RStar, 5000)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		c := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		queries[i] = geom.MustRect(c, c.Add(geom.Pt(5, 5)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Search(queries[i%len(queries)], func(rtree.ObjectID, geom.Rect) bool { return true })
	}
}
