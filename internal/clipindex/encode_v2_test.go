package clipindex

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

func randClipTableV2(rng *rand.Rand, dims, nodes, perNode int, universe geom.Rect) Table {
	t := make(Table, nodes)
	for i := 0; i < nodes; i++ {
		clips := make([]core.ClipPoint, perNode)
		for j := range clips {
			coord := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				w := universe.Hi[d] - universe.Lo[d]
				coord[d] = universe.Lo[d] + rng.Float64()*w
			}
			clips[j] = core.ClipPoint{Coord: coord, Mask: geom.Corner(rng.Intn(1 << dims))}
		}
		t[rtree.NodeID(i+1)] = clips
	}
	return t
}

func TestClipTableV2RoundTripConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dims := range []int{1, 2, 3} {
		universe := geom.Rect{Lo: make(geom.Point, dims), Hi: make(geom.Point, dims)}
		for d := 0; d < dims; d++ {
			universe.Lo[d], universe.Hi[d] = 0, 10000
		}
		table := randClipTableV2(rng, dims, 20, 6, universe)
		buf := EncodeTableV2(table, dims, universe)
		if got := TableBytesV2(table, dims, universe); got != len(buf) {
			t.Fatalf("dims=%d TableBytesV2 = %d, encoded %d", dims, got, len(buf))
		}
		if !bytes.Equal(buf, EncodeTableV2(table, dims, universe)) {
			t.Fatalf("dims=%d encoding is not deterministic", dims)
		}
		back, gotDims, err := DecodeTableV2(buf, universe)
		if err != nil {
			t.Fatal(err)
		}
		if gotDims != dims || len(back) != len(table) {
			t.Fatalf("dims=%d decoded shape mismatch", dims)
		}
		// A clip point certifies the region toward its corner as dead. The
		// grid rounds each coordinate toward that corner, so the decoded
		// point must sit corner-ward of the original in every dimension —
		// the certified-dead region can only shrink.
		step := 10000.0 / float64(math.MaxUint32)
		for id, clips := range table {
			dec := back[id]
			if len(dec) != len(clips) {
				t.Fatalf("node %d clip count changed", id)
			}
			for j := range clips {
				if dec[j].Mask != clips[j].Mask {
					t.Fatalf("node %d point %d mask changed", id, j)
				}
				for d := 0; d < dims; d++ {
					orig, got := clips[j].Coord[d], dec[j].Coord[d]
					if clips[j].Mask.Bit(d) {
						if got < orig {
							t.Fatalf("node %d point %d dim %d rounded away from its Hi corner: %v < %v", id, j, d, got, orig)
						}
					} else if got > orig {
						t.Fatalf("node %d point %d dim %d rounded away from its Lo corner: %v > %v", id, j, d, got, orig)
					}
					if math.Abs(got-orig) > 2*step {
						t.Fatalf("node %d point %d dim %d moved %v, beyond the grid step", id, j, d, math.Abs(got-orig))
					}
					if got < universe.Lo[d] || got > universe.Hi[d] {
						t.Fatalf("node %d point %d dim %d decoded outside the universe", id, j, d)
					}
				}
			}
		}
	}
}

func TestClipTableV2GridStability(t *testing.T) {
	// Decoded coordinates lie on the grid, so encode(decode(x)) must be the
	// identity — the property that makes v2->v2 compaction byte-stable.
	rng := rand.New(rand.NewSource(52))
	universe := geom.R(0, 0, 10000, 10000)
	table := randClipTableV2(rng, 2, 15, 5, universe)
	buf := EncodeTableV2(table, 2, universe)
	once, _, err := DecodeTableV2(buf, universe)
	if err != nil {
		t.Fatal(err)
	}
	buf2 := EncodeTableV2(once, 2, universe)
	if !bytes.Equal(buf, buf2) {
		t.Fatal("re-encoding a decoded table changed the bytes")
	}
}

func TestClipTableV2RawFallback(t *testing.T) {
	universe := geom.R(0, 0, 100, 100)
	table := Table{
		5: []core.ClipPoint{
			{Coord: geom.Pt(-3, 50), Mask: 0},               // below the universe on d0
			{Coord: geom.Pt(50, 120), Mask: geom.Corner(2)}, // above it on d1
			{Coord: geom.Pt(25, 75), Mask: geom.Corner(1)},  // in range: quantised
		},
	}
	buf := EncodeTableV2(table, 2, universe)
	wantLen := 8 + 8 + 2*ClipPointBytes(2) + ClipPointBytesV2(2)
	if len(buf) != wantLen {
		t.Fatalf("encoded %d bytes, want %d (two raw + one quantised)", len(buf), wantLen)
	}
	back, _, err := DecodeTableV2(buf, universe)
	if err != nil {
		t.Fatal(err)
	}
	// Raw-fallback points survive bit-identically even though they are
	// outside the grid's reach.
	for j := 0; j < 2; j++ {
		for d := 0; d < 2; d++ {
			if back[5][j].Coord[d] != table[5][j].Coord[d] {
				t.Fatalf("raw point %d dim %d changed: %v vs %v", j, d, back[5][j].Coord[d], table[5][j].Coord[d])
			}
		}
		if back[5][j].Mask != table[5][j].Mask {
			t.Fatalf("raw point %d mask changed", j)
		}
	}
	// Non-finite coordinates must also take the raw path, not panic.
	nan := Table{1: []core.ClipPoint{{Coord: geom.Pt(math.NaN(), 1), Mask: 0}}}
	nbuf := EncodeTableV2(nan, 2, universe)
	nback, _, err := DecodeTableV2(nbuf, universe)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(nback[1][0].Coord[0]) {
		t.Error("NaN coordinate not preserved through the raw path")
	}
}

func TestClipTableV2UniverseEndpointsExact(t *testing.T) {
	universe := geom.R(0, 0, 100, 100)
	table := Table{
		2: []core.ClipPoint{
			{Coord: geom.Pt(0, 100), Mask: geom.Corner(2)},
			{Coord: geom.Pt(100, 0), Mask: geom.Corner(1)},
		},
	}
	back, _, err := DecodeTableV2(EncodeTableV2(table, 2, universe), universe)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range table[2] {
		for d := 0; d < 2; d++ {
			if back[2][j].Coord[d] != c.Coord[d] {
				t.Errorf("universe endpoint point %d dim %d not exact: %v vs %v", j, d, back[2][j].Coord[d], c.Coord[d])
			}
		}
	}
}

func TestDecodeTableV2Errors(t *testing.T) {
	universe := geom.R(0, 0, 100, 100)
	if _, _, err := DecodeTableV2([]byte{1, 2, 3}, universe); err == nil {
		t.Error("short buffer must fail")
	}
	table := Table{3: []core.ClipPoint{{Coord: geom.Pt(10, 20), Mask: 1}}}
	buf := EncodeTableV2(table, 2, universe)
	for _, cut := range []int{9, 13, len(buf) - 1} {
		if _, _, err := DecodeTableV2(buf[:cut], universe); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
	flipped := geom.Rect{Lo: geom.Pt(0, 100), Hi: geom.Pt(100, 0)}
	if _, _, err := DecodeTableV2(buf, flipped); err == nil {
		t.Error("invalid universe must fail")
	}
	if _, _, err := DecodeTableV2(buf, geom.Rect{Lo: geom.Pt(0), Hi: geom.Pt(100)}); err == nil {
		t.Error("universe dimensionality mismatch must fail")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 77 // implausible dims
	if _, _, err := DecodeTableV2(bad, universe); err == nil {
		t.Error("implausible dimensionality must fail")
	}
}
