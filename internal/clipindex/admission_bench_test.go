package clipindex

import (
	"math/rand"
	"testing"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

// BenchmarkClipAdmission isolates the Algorithm-2 admission test that the
// clipped search path runs once per candidate child: look up the child's clip
// points and decide whether the query's overlap with the child MBB is
// entirely certified dead space. One iteration admits every (child, query)
// pair of a fixed candidate set, so ns/op tracks the per-batch admission cost.
func BenchmarkClipAdmission(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	tree, _ := buildClusteredTree(b, rng, rtree.RRStar, 6000)
	idx, err := New(tree, core.Params{K: 8, Tau: 0.01, Method: core.MethodStairline})
	if err != nil {
		b.Fatal(err)
	}
	type cand struct {
		id  rtree.NodeID
		mbb geom.Rect
	}
	var cands []cand
	tree.Walk(func(info rtree.NodeInfo) {
		if !info.Leaf {
			for i := range info.Children {
				cands = append(cands, cand{id: info.Children[i].Child, mbb: info.Children[i].Rect})
			}
		}
	})
	queries := make([]geom.Rect, 64)
	for i := range queries {
		queries[i] = randRect(rng, 2, 950, 50)
	}
	admitted := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		for _, c := range cands {
			if idx.AdmitChild(c.id, c.mbb, q) {
				admitted++
			}
		}
	}
	b.StopTimer()
	if admitted == 0 {
		b.Fatal("no candidate admitted; benchmark is vacuous")
	}
	b.ReportMetric(float64(len(cands)), "children/op")
}
