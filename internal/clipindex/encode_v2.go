package clipindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

// This file implements the compressed v2 clip-table layout used by format-2
// snapshots: clip-point coordinates are quantised onto a 32-bit grid over the
// index universe, halving the dominant cost of a clip point (4 + 4·dims bytes
// against the v1 4 + 8·dims).
//
// The rounding is conservative toward the clip point's own corner. A clip
// point <c, mask> certifies the region toward its corner as dead: in a
// dimension whose mask bit is set the dead half-space is x > c[d] (the Hi
// corner side), otherwise x < c[d]. Rounding c[d] up on set bits and down on
// unset bits therefore shrinks the certified-dead region, so decoded tables
// can only prune less than the exact ones — never a query result change, at
// worst a few extra node visits. Both the query and the insert dominance
// selectors read the same decoded table, so the quantised table stays
// self-consistent under later mutations.
//
// A coordinate the grid cannot bound conservatively (outside the universe, or
// a non-finite value) falls back to raw float64 storage for that whole clip
// point, flagged by the top bit of the serialised mask — geom.MaxDims is 30,
// so corner masks never use it.

const (
	clipQMax    = math.MaxUint32
	clipRawFlag = uint32(1) << 31

	clipPointV2HeaderBytes = 4 // serialised mask + flags
)

// ClipPointBytesV2 returns the serialised size of one quantised v2 clip point
// in d dimensions (raw-fallback points cost ClipPointBytes instead).
func ClipPointBytesV2(dims int) int { return clipPointV2HeaderBytes + dims*4 }

// clipQDecode reconstructs the coordinate of grid value q on [lo, hi]; the
// endpoints decode exactly.
func clipQDecode(lo, hi float64, q uint32) float64 {
	switch q {
	case 0:
		return lo
	case clipQMax:
		return hi
	}
	return lo + (hi-lo)*(float64(q)/clipQMax)
}

// clipQDown returns the largest grid value decoding to at most x; ok is false
// when no grid value can (x below the universe, or not finite).
func clipQDown(x, lo, hi float64) (uint32, bool) {
	w := hi - lo
	if !(w > 0) || math.IsNaN(x) {
		return 0, false
	}
	f := (x - lo) / w * clipQMax
	var q uint32
	switch {
	case !(f > 0):
		q = 0
	case f >= clipQMax:
		q = clipQMax
	default:
		q = uint32(f)
	}
	for q > 0 && clipQDecode(lo, hi, q) > x {
		q--
	}
	if clipQDecode(lo, hi, q) > x {
		return 0, false
	}
	for q < clipQMax && clipQDecode(lo, hi, q+1) <= x {
		q++
	}
	return q, true
}

// clipQUp returns the smallest grid value decoding to at least x; ok is false
// when no grid value can (x above the universe, or not finite).
func clipQUp(x, lo, hi float64) (uint32, bool) {
	w := hi - lo
	if !(w > 0) || math.IsNaN(x) {
		return 0, false
	}
	f := (x - lo) / w * clipQMax
	var q uint32
	switch {
	case !(f > 0):
		q = 0
	case f >= clipQMax:
		q = clipQMax
	default:
		q = uint32(f) + 1
	}
	for q < clipQMax && clipQDecode(lo, hi, q) < x {
		q++
	}
	if clipQDecode(lo, hi, q) < x {
		return 0, false
	}
	for q > 0 && clipQDecode(lo, hi, q-1) >= x {
		q--
	}
	return q, true
}

// quantisePoint encodes one clip point's coordinates onto the universe grid,
// rounding toward its corner. ok is false when any dimension cannot be
// bounded conservatively, in which case the caller stores the point raw.
func quantisePoint(c *core.ClipPoint, universe geom.Rect, out []uint32) bool {
	for d := range c.Coord {
		lo, hi := universe.Lo[d], universe.Hi[d]
		var q uint32
		var ok bool
		if c.Mask.Bit(d) {
			q, ok = clipQUp(c.Coord[d], lo, hi)
		} else {
			q, ok = clipQDown(c.Coord[d], lo, hi)
		}
		if !ok {
			return false
		}
		out[d] = q
	}
	return true
}

// TableBytesV2 returns the exact serialised size of a clip table in the v2
// layout against the given universe — the v2 counterpart of TableBytes.
func TableBytesV2(t Table, dims int, universe geom.Rect) int {
	n := 8
	scratch := make([]uint32, dims)
	for _, clips := range t {
		n += 8
		for i := range clips {
			if quantisePoint(&clips[i], universe, scratch) {
				n += ClipPointBytesV2(dims)
			} else {
				n += ClipPointBytes(dims)
			}
		}
	}
	return n
}

// EncodeTableV2 serialises a clip table in the quantised v2 layout. Entries
// are written in ascending node-id order so the encoding is deterministic.
func EncodeTableV2(t Table, dims int, universe geom.Rect) []byte {
	ids := make([]rtree.NodeID, 0, len(t))
	for id := range t {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 8+len(ids)*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	scratch := make([]uint32, dims)
	for _, id := range ids {
		clips := t[id]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(clips)))
		for i := range clips {
			c := &clips[i]
			if quantisePoint(c, universe, scratch) {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Mask))
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint32(buf, scratch[d])
				}
			} else {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Mask)|clipRawFlag)
				for d := 0; d < dims; d++ {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Coord[d]))
				}
			}
		}
	}
	return buf
}

// DecodeTableV2 parses a clip table previously produced by EncodeTableV2,
// reconstructing coordinates on the universe grid.
func DecodeTableV2(buf []byte, universe geom.Rect) (Table, int, error) {
	if len(buf) < 8 {
		return nil, 0, errors.New("clipindex: v2 clip table buffer too short")
	}
	dims := int(binary.LittleEndian.Uint32(buf[0:4]))
	if dims < 1 || dims > geom.MaxDims {
		return nil, 0, fmt.Errorf("clipindex: implausible dimensionality %d", dims)
	}
	if universe.Dims() != dims || !universe.Valid() {
		return nil, 0, fmt.Errorf("clipindex: v2 clip table needs a valid %d-dimensional universe", dims)
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	off := 8
	table := make(Table, count)
	for i := 0; i < count; i++ {
		if off+8 > len(buf) {
			return nil, 0, errors.New("clipindex: truncated v2 clip table entry header")
		}
		id := rtree.NodeID(binary.LittleEndian.Uint32(buf[off:]))
		n := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		if n > (len(buf)-off)/clipPointV2HeaderBytes {
			return nil, 0, errors.New("clipindex: truncated v2 clip table")
		}
		clips := make([]core.ClipPoint, 0, n)
		for j := 0; j < n; j++ {
			if off+clipPointV2HeaderBytes > len(buf) {
				return nil, 0, errors.New("clipindex: truncated v2 clip point")
			}
			raw := binary.LittleEndian.Uint32(buf[off:])
			off += 4
			mask := geom.Corner(raw &^ clipRawFlag)
			coord := make(geom.Point, dims)
			if raw&clipRawFlag != 0 {
				if off+dims*8 > len(buf) {
					return nil, 0, errors.New("clipindex: truncated v2 clip point")
				}
				for d := 0; d < dims; d++ {
					coord[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
					off += 8
				}
			} else {
				if off+dims*4 > len(buf) {
					return nil, 0, errors.New("clipindex: truncated v2 clip point")
				}
				for d := 0; d < dims; d++ {
					q := binary.LittleEndian.Uint32(buf[off:])
					coord[d] = clipQDecode(universe.Lo[d], universe.Hi[d], q)
					off += 4
				}
			}
			clips = append(clips, core.ClipPoint{Coord: coord, Mask: mask})
		}
		table[id] = clips
	}
	return table, dims, nil
}
