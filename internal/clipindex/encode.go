package clipindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
)

// This file implements the physical layout of the auxiliary clip structure
// of Figure 4b: a directory keyed by node id giving the number of clip
// points, followed per clip point by its corner bitmask and the d coordinate
// values. The format is little-endian and self-describing enough for a
// round trip; it exists to quantify the storage overhead of clipping
// (Figure 13) and to persist clipped indexes.

// ClipPointBytes returns the serialised size of one clip point in d
// dimensions: a 4-byte corner bitmask plus d float64 coordinates. (The
// conceptual cost in the paper is a d-bit flag plus d coordinates; the
// 4-byte mask is the aligned practical encoding.)
func ClipPointBytes(dims int) int { return 4 + dims*8 }

// TableBytes returns the exact serialised size of a clip table without
// encoding it: the 8-byte table header plus, per node, an 8-byte entry
// header and its clip points. It is the single source of truth for the
// clip-table storage footprint, shared by Index.AuxBytes, the encoder's
// buffer sizing, and the storage-breakdown reports.
func TableBytes(t Table, dims int) int {
	n := 8
	for _, clips := range t {
		n += 8 + len(clips)*ClipPointBytes(dims)
	}
	return n
}

// EncodeTable serialises a clip table. Entries are written in ascending
// node-id order so the encoding is deterministic.
func EncodeTable(t Table, dims int) []byte {
	ids := make([]rtree.NodeID, 0, len(t))
	for id := range t {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, TableBytes(t, dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		clips := t[id]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(clips)))
		for _, c := range clips {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Mask))
			for d := 0; d < dims; d++ {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Coord[d]))
			}
		}
	}
	return buf
}

// DecodeTable parses a clip table previously produced by EncodeTable.
// Scores are not persisted (they are only used to order clip points at
// construction time); decoded clip points keep their stored order.
func DecodeTable(buf []byte) (Table, int, error) {
	if len(buf) < 8 {
		return nil, 0, errors.New("clipindex: clip table buffer too short")
	}
	dims := int(binary.LittleEndian.Uint32(buf[0:4]))
	if dims < 1 || dims > geom.MaxDims {
		return nil, 0, fmt.Errorf("clipindex: implausible dimensionality %d", dims)
	}
	count := int(binary.LittleEndian.Uint32(buf[4:8]))
	off := 8
	table := make(Table, count)
	for i := 0; i < count; i++ {
		if off+8 > len(buf) {
			return nil, 0, errors.New("clipindex: truncated clip table entry header")
		}
		id := rtree.NodeID(binary.LittleEndian.Uint32(buf[off:]))
		n := int(binary.LittleEndian.Uint32(buf[off+4:]))
		off += 8
		clips := make([]core.ClipPoint, 0, n)
		for j := 0; j < n; j++ {
			if off+ClipPointBytes(dims) > len(buf) {
				return nil, 0, errors.New("clipindex: truncated clip point")
			}
			mask := geom.Corner(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			coord := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				coord[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			clips = append(clips, core.ClipPoint{Coord: coord, Mask: mask})
		}
		table[id] = clips
	}
	return table, dims, nil
}
