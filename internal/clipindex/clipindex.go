// Package clipindex plugs clipped bounding boxes (internal/core) into any
// R-tree variant (internal/rtree), following Section IV of the paper:
//
//   - the clip points of every node live in a small auxiliary table keyed by
//     node id (Figure 4b), fully separate from the node pages;
//   - queries run the unmodified R-tree descent but consult Algorithm 2
//     before visiting a child node, skipping children whose overlap with the
//     query is entirely clipped dead space;
//   - insertions keep the table consistent with the eager validity check of
//     Section IV-D (re-clip only when a clip point would clip the new
//     object, the node split, or the node's MBB changed);
//   - deletions are handled lazily (clip points only become more
//     conservative when data disappears) unless the MBB changes.
package clipindex

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Table is the auxiliary clip-point table of Figure 4b: node id → ordered
// clip points. A node with no entry simply has no clip points.
type Table map[rtree.NodeID][]core.ClipPoint

// ClipPointCount returns the total number of stored clip points.
func (t Table) ClipPointCount() int {
	n := 0
	for _, clips := range t {
		n += len(clips)
	}
	return n
}

// AvgClipPointsPerNode returns the average number of clip points per node
// that has at least one (the statistic reported atop the bars of Figure 13).
func (t Table) AvgClipPointsPerNode() float64 {
	if len(t) == 0 {
		return 0
	}
	return float64(t.ClipPointCount()) / float64(len(t))
}

// ReclipCause attributes a clip-table recomputation to one of the three
// causes decomposed in Figure 12.
type ReclipCause int

// Re-clip causes, from structurally forced to purely clip-induced.
const (
	// CauseSplit marks a node that was split (or newly created by a split);
	// its contents changed wholesale, so its clip points must be rebuilt.
	CauseSplit ReclipCause = iota
	// CauseMBBChange marks a node whose MBB changed without a split.
	CauseMBBChange
	// CauseCBBOnly marks a node whose MBB did not change but whose clip
	// points were invalidated by the inserted rectangle (Algorithm 2 with
	// the insert selector returned false).
	CauseCBBOnly
)

// String names the cause as in Figure 12's legend.
func (c ReclipCause) String() string {
	switch c {
	case CauseSplit:
		return "node split"
	case CauseMBBChange:
		return "MBB change"
	case CauseCBBOnly:
		return "CBB change"
	default:
		return fmt.Sprintf("ReclipCause(%d)", int(c))
	}
}

// UpdateStats accumulates the re-clip accounting of the update experiment.
type UpdateStats struct {
	Inserts         int
	Deletes         int
	ReclipsBySplit  int
	ReclipsByMBB    int
	ReclipsByCBB    int
	ValidityChecks  int
	AvoidedReclips  int // validity check passed, clip table kept as-is
	DeletesNoReclip int // deletions absorbed lazily
}

// TotalReclips returns all clip-table recomputations.
func (u UpdateStats) TotalReclips() int {
	return u.ReclipsBySplit + u.ReclipsByMBB + u.ReclipsByCBB
}

// ReclipsPerInsert returns the expected number of re-clips per insertion
// (the y-axis of Figure 12).
func (u UpdateStats) ReclipsPerInsert() float64 {
	if u.Inserts == 0 {
		return 0
	}
	return float64(u.TotalReclips()) / float64(u.Inserts)
}

// clipStore is the dense admission-path mirror of the clip table: clip
// points indexed by node id with a single slice load instead of a map
// lookup. Node ids are arena indices and therefore compact, so the dense
// slice covers essentially every real tree; ids beyond maxDenseClipID (only
// reachable through pathological or adversarial snapshots) fall back to a
// spill map so memory stays bounded by the number of clipped nodes.
type clipStore struct {
	dense [][]core.ClipPoint
	spill map[rtree.NodeID][]core.ClipPoint
}

// maxDenseClipID bounds the dense slice: 2^21 slice headers are 48 MiB, far
// beyond any arena the snapshot decoder accepts, and cheap next to the nodes.
const maxDenseClipID = 1 << 21

// get returns the clip points of the node (nil when none).
func (s *clipStore) get(id rtree.NodeID) []core.ClipPoint {
	if uint64(id) < uint64(len(s.dense)) {
		return s.dense[id]
	}
	return s.spill[id]
}

func (s *clipStore) set(id rtree.NodeID, clips []core.ClipPoint) {
	if id < 0 {
		return
	}
	if int64(id) < maxDenseClipID {
		for int(id) >= len(s.dense) {
			s.dense = append(s.dense, nil)
		}
		s.dense[id] = clips
		return
	}
	if s.spill == nil {
		s.spill = make(map[rtree.NodeID][]core.ClipPoint)
	}
	s.spill[id] = clips
}

func (s *clipStore) del(id rtree.NodeID) {
	if uint64(id) < uint64(len(s.dense)) {
		s.dense[id] = nil
		return
	}
	delete(s.spill, id)
}

// Index is a clipped R-tree: an rtree.Tree of any variant plus a clip table
// and the parameters used to maintain it. The authoritative table (the
// serialised Figure 4b form) and the dense admission mirror are kept in sync
// through setClips/delClips.
//
// Like the underlying tree, the Index is copy-on-write versioned: the
// writer maintains the table and the dense mirror privately and publishes
// them together with the tree's committed version as one Snap, loaded
// atomically (once per query) by every read path. Readers therefore always
// see clip points and nodes of the same epoch — a clip point computed for a
// newer node generation can never prune a query running against an older
// one.
type Index struct {
	tree   *rtree.Tree
	params core.Params
	table  Table
	store  clipStore
	// storeShared marks that the dense mirror's backing arrays are
	// referenced by the published Snap and must be copied before the next
	// mutation (the clip-side analogue of the tree's detach step).
	storeShared bool
	cur         atomic.Pointer[Snap]
	stats       UpdateStats
}

// Snap is an epoch-consistent read snapshot of a clipped tree: the tree
// version and the clip mirrors published by the same commit. It implements
// the same read surface the Index offers (Search, SearchCounted, Clips,
// AdmitChild) against exactly that epoch, and is safe for any number of
// concurrent readers regardless of writer activity.
type Snap struct {
	v     *rtree.Version
	dense [][]core.ClipPoint
	spill map[rtree.NodeID][]core.ClipPoint
}

// Version returns the tree version the snapshot is bound to.
func (s *Snap) Version() *rtree.Version { return s.v }

// Clips returns the clip points of the node at the snapshot's epoch (nil
// when it has none, or when s itself is nil, so join code can hold an
// optional *Snap without guarding every lookup).
func (s *Snap) Clips(id rtree.NodeID) []core.ClipPoint {
	if s == nil {
		return nil
	}
	if uint64(id) < uint64(len(s.dense)) {
		return s.dense[id]
	}
	return s.spill[id]
}

// AdmitChild is the Algorithm-2 admission test bound to the snapshot's
// epoch; it implements rtree.Admitter for the clipped search below.
func (s *Snap) AdmitChild(child rtree.NodeID, childMBB geom.Rect, q geom.Rect) bool {
	clips := s.Clips(child)
	if len(clips) == 0 {
		return true
	}
	return core.Intersects(childMBB, clips, q, core.SelectorQuery)
}

// Search finds every object intersecting q at the snapshot's epoch, using
// its clip points to skip child nodes whose overlap with q is entirely dead
// space.
func (s *Snap) Search(q geom.Rect, visit func(rtree.ObjectID, geom.Rect) bool) {
	s.SearchCounted(q, nil, visit)
}

// SearchCounted is Search with the node accesses charged to an explicit
// counter instead of the tree's own (the tree's counter when c is nil). It
// satisfies the batch executor's Searcher contract.
func (s *Snap) SearchCounted(q geom.Rect, c *storage.Counter, visit func(rtree.ObjectID, geom.Rect) bool) {
	v := s.v
	if v.RootID() == rtree.InvalidNode || !q.Valid() || q.Dims() != v.Dims() {
		return
	}
	// The root's own MBB and clip points can prune the query outright,
	// before any I/O is charged.
	if !v.RootMBBIntersects(q) {
		return
	}
	if core.QueryDead(s.Clips(v.RootID()), q) {
		return
	}
	v.SearchAdmittedCounted(q, s, c, visit)
}

// ensurePrivateStore detaches the dense mirror from the published snapshot:
// the outer slice and the spill map are copied so the snapshot's readers
// keep an untouched view while the writer mutates its own. The inner
// []core.ClipPoint slices are immutable once installed (every reclip builds
// a fresh slice), so they are shared freely across snapshots.
func (x *Index) ensurePrivateStore() {
	if !x.storeShared {
		return
	}
	x.store.dense = append([][]core.ClipPoint(nil), x.store.dense...)
	if x.store.spill != nil {
		spill := make(map[rtree.NodeID][]core.ClipPoint, len(x.store.spill))
		for id, clips := range x.store.spill {
			spill[id] = clips
		}
		x.store.spill = spill
	}
	x.storeShared = false
}

// publish stores a new combined snapshot pairing the tree's current
// committed version with the writer's clip mirrors, and marks the mirrors
// shared (copy-on-write for the next batch).
func (x *Index) publish() {
	x.cur.Store(&Snap{v: x.tree.CurrentVersion(), dense: x.store.dense, spill: x.store.spill})
	x.storeShared = true
}

// publishIfAuto publishes unless an explicit batch is open (Commit will
// publish then).
func (x *Index) publishIfAuto() {
	if !x.tree.InBatch() {
		x.publish()
	}
}

// Snap returns the current combined snapshot (one atomic load, unpinned).
func (x *Index) Snap() *Snap { return x.cur.Load() }

// PinSnap returns the current combined snapshot with its tree version
// pinned, for long-lived read views; release it with Snap.Version().Unpin().
func (x *Index) PinSnap() *Snap {
	for {
		s := x.cur.Load()
		s.v.Pin()
		if x.cur.Load() == s {
			return s
		}
		s.v.Unpin()
	}
}

// Begin opens an explicit writer batch on the underlying tree: mutations
// accumulate privately and reach readers only at Commit, as one atomic
// snapshot switch.
func (x *Index) Begin() error { return x.tree.BeginBatch() }

// Commit publishes every mutation since Begin — node and clip state together
// — as one new epoch.
func (x *Index) Commit() {
	x.tree.CommitBatch()
	x.publish()
}

// Rollback discards every mutation since Begin: the tree batch is rolled
// back, and the writer's clip table and mirrors are restored from the last
// published snapshot. Readers never saw any of it. The advisory update
// statistics (Stats) are not unwound.
func (x *Index) Rollback() {
	x.tree.RollbackBatch()
	s := x.cur.Load()
	x.store.dense = s.dense
	x.store.spill = s.spill
	x.storeShared = true // next mutation copies before touching the mirrors
	table := make(Table, len(s.spill)+len(s.dense)/8)
	for id, clips := range s.dense {
		if len(clips) > 0 {
			table[rtree.NodeID(id)] = clips
		}
	}
	for id, clips := range s.spill {
		table[id] = clips
	}
	x.table = table
}

// setClips installs a node's clip points in both the table and the dense
// admission mirror.
func (x *Index) setClips(id rtree.NodeID, clips []core.ClipPoint) {
	x.ensurePrivateStore()
	x.table[id] = clips
	x.store.set(id, clips)
}

// delClips removes a node's clip points from both representations.
func (x *Index) delClips(id rtree.NodeID) {
	x.ensurePrivateStore()
	delete(x.table, id)
	x.store.del(id)
}

// Clips returns the clip points of the node (nil when it has none) at the
// last published snapshot. A nil Index returns nil, so join code can hold
// an optional *Index without guarding every lookup.
func (x *Index) Clips(id rtree.NodeID) []core.ClipPoint {
	if x == nil {
		return nil
	}
	return x.cur.Load().Clips(id)
}

// New wraps an existing tree (already built, possibly empty) and computes
// clip points for all of its nodes.
func New(tree *rtree.Tree, params core.Params) (*Index, error) {
	if tree == nil {
		return nil, errors.New("clipindex: tree must not be nil")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	idx := &Index{tree: tree, params: params, table: make(Table)}
	idx.RebuildAll()
	return idx, nil
}

// Restore wraps a tree with a previously computed clip table without
// recomputing anything — the decode path of the persistence subsystem. The
// table is adopted as-is (it must belong to this tree, which snapshot
// integrity checks guarantee); a nil table means no node has clip points.
// Unlike New, Restore never walks the tree, so a lazily opened file-backed
// tree stays unmaterialised.
func Restore(tree *rtree.Tree, params core.Params, table Table) (*Index, error) {
	if tree == nil {
		return nil, errors.New("clipindex: tree must not be nil")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if table == nil {
		table = make(Table)
	}
	x := &Index{tree: tree, params: params, table: table}
	for id, clips := range table {
		x.store.set(id, clips)
	}
	x.publish()
	return x, nil
}

// Tree returns the underlying R-tree.
func (x *Index) Tree() *rtree.Tree { return x.tree }

// Params returns the clipping parameters.
func (x *Index) Params() core.Params { return x.params }

// Table returns the auxiliary clip table. The caller must not modify it.
func (x *Index) Table() Table { return x.table }

// Stats returns the accumulated update statistics.
func (x *Index) Stats() UpdateStats { return x.stats }

// ResetStats zeroes the update statistics.
func (x *Index) ResetStats() { x.stats = UpdateStats{} }

// Len returns the number of indexed objects.
func (x *Index) Len() int { return x.tree.Len() }

// RebuildAll recomputes the clip points of every node from scratch
// (Algorithm 1 applied to each node, as done when a freshly built R-tree is
// clipped before its nodes are flushed to disk), and publishes the result
// (unless an explicit batch is open, whose Commit publishes instead).
func (x *Index) RebuildAll() {
	x.table = make(Table)
	// Published snapshots keep referencing the old mirrors; the rebuild
	// starts from a fresh private store rather than wiping them in place.
	x.store = clipStore{}
	x.storeShared = false
	var scratch []geom.Rect
	x.tree.Walk(func(info rtree.NodeInfo) {
		scratch = x.reclipNodeInto(info, scratch)
	})
	x.publishIfAuto()
}

// reclipNode recomputes one node's clip points from a node snapshot.
func (x *Index) reclipNode(info rtree.NodeInfo) {
	x.reclipNodeInto(info, nil)
}

// reclipNodeInto is reclipNode with a caller-owned scratch buffer for the
// child rectangles; core.Clip only reads them, so whole-table rebuild walks
// reuse one buffer across every node instead of allocating per node. It
// returns the (possibly grown) buffer for the next call.
func (x *Index) reclipNodeInto(info rtree.NodeInfo, scratch []geom.Rect) []geom.Rect {
	children := scratch[:0]
	for i := range info.Children {
		children = append(children, info.Children[i].Rect)
	}
	clips := core.Clip(info.MBB, children, x.params)
	if len(clips) == 0 {
		x.delClips(info.ID)
		return children
	}
	x.setClips(info.ID, clips)
	return children
}

// reclipByID recomputes one node's clip points, looking the node up first;
// missing nodes (freed during condensation) are simply dropped.
func (x *Index) reclipByID(id rtree.NodeID) {
	info, err := x.tree.Node(id)
	if err != nil {
		x.delClips(id)
		return
	}
	x.reclipNode(info)
	x.tree.Counter().Reclip(1)
}

// Search finds every object intersecting q, using clip points to skip child
// nodes whose overlap with q is entirely dead space. Results are identical
// to an unclipped search; only the I/O differs.
//
// It is safe for any number of concurrent readers at any time, including
// while the single writer mutates: the query runs against one atomically
// loaded Snap (immutable tree version + clip mirrors of the same epoch).
func (x *Index) Search(q geom.Rect, visit func(rtree.ObjectID, geom.Rect) bool) {
	x.SearchCounted(q, nil, visit)
}

// SearchCounted is Search with the node accesses charged to an explicit
// counter instead of the tree's own (the tree's counter when c is nil), the
// hook parallel executors use to give each worker goroutine private I/O
// accounting. One combined snapshot — tree version plus clip mirrors of the
// same epoch — is loaded atomically at entry and pins the whole traversal.
func (x *Index) SearchCounted(q geom.Rect, c *storage.Counter, visit func(rtree.ObjectID, geom.Rect) bool) {
	x.cur.Load().SearchCounted(q, c, visit)
}

// AdmitChild is the Algorithm-2 admission test the clipped search runs before
// visiting a child node (it implements rtree.Admitter): it reports whether
// the query's overlap with the child's MBB may contain live space. A child
// with no clip points is always admitted. The clip lookup is a dense slice
// load and the dominance tests allocate nothing, so admission costs an index
// load plus a handful of float comparisons per clip point. It consults the
// last published snapshot; query paths use the Snap's own AdmitChild so one
// query never mixes epochs.
func (x *Index) AdmitChild(child rtree.NodeID, childMBB geom.Rect, q geom.Rect) bool {
	return x.cur.Load().AdmitChild(child, childMBB, q)
}

// Count returns the number of objects intersecting q using the clipped
// search path.
func (x *Index) Count(q geom.Rect) int {
	n := 0
	x.Search(q, func(rtree.ObjectID, geom.Rect) bool { n++; return true })
	return n
}

// Insert adds an object and maintains the clip table per Section IV-D. It
// returns the causes of any clip recomputations performed (for the update
// experiment).
func (x *Index) Insert(r geom.Rect, obj rtree.ObjectID) ([]ReclipCause, error) {
	trace, err := x.tree.Insert(r, obj)
	if err != nil {
		return nil, err
	}
	x.stats.Inserts++
	causes := x.applyInsertTrace(trace)
	x.publishIfAuto()
	return causes, nil
}

// InsertItems adds a batch of objects through the tree's fast batch-insert
// pipeline and maintains the clip table from the one aggregated trace: each
// structurally changed node is re-clipped once for the whole batch and each
// placement is validity-checked once, instead of paying the per-insert
// maintenance (including the copy-on-write detach of the dense clip mirror)
// per item. Outside an explicit batch the combined snapshot is published
// once, atomically.
func (x *Index) InsertItems(items []rtree.Item) error {
	trace, err := x.tree.InsertItems(items)
	if err != nil {
		return err
	}
	x.stats.Inserts += len(items)
	x.applyInsertTrace(trace)
	x.publishIfAuto()
	return nil
}

// applyInsertTrace runs the Section IV-D maintenance for one insertion
// trace — single-insert or batch-aggregated: re-clip split/created/
// MBB-changed nodes, validity-check every placement, and check ancestors of
// grown children. It returns the causes of the reclips performed.
func (x *Index) applyInsertTrace(trace *rtree.InsertTrace) []ReclipCause {
	if trace.Rebuilt {
		// The batch rebuilt the tree wholesale: old ids were freed and may
		// have been reused, so stale table entries cannot be patched out
		// incrementally. Recompute the table from scratch off a fresh
		// private store (published snapshots keep the old mirrors), exactly
		// like RebuildAll but publishing through the caller.
		x.table = make(Table)
		x.store = clipStore{}
		x.storeShared = false
		var scratch []geom.Rect
		x.tree.Walk(func(info rtree.NodeInfo) {
			scratch = x.reclipNodeInto(info, scratch)
		})
		return nil
	}

	var causes []ReclipCause

	reclipped := make(map[rtree.NodeID]bool, len(trace.Split)+len(trace.Created)+len(trace.MBBChanged))
	reclip := func(id rtree.NodeID, cause ReclipCause) {
		if reclipped[id] {
			return
		}
		reclipped[id] = true
		x.reclipByID(id)
		causes = append(causes, cause)
		switch cause {
		case CauseSplit:
			x.stats.ReclipsBySplit++
		case CauseMBBChange:
			x.stats.ReclipsByMBB++
		case CauseCBBOnly:
			x.stats.ReclipsByCBB++
		}
	}

	// 1. Nodes that were split or created: their content changed wholesale.
	for _, id := range trace.Split {
		reclip(id, CauseSplit)
	}
	for _, id := range trace.Created {
		reclip(id, CauseSplit)
	}
	// 2. Nodes whose MBB changed: thresholds and orderings are distorted, so
	// the paper recomputes them.
	for _, id := range trace.MBBChanged {
		reclip(id, CauseMBBChange)
	}
	// 3. Every node that received an entry (the target leaf and any node
	// touched by forced reinsertion) but was not structurally changed: run
	// the eager validity check of Algorithm 2 with the insert selector and
	// re-clip only when the placed rectangle reaches into clipped dead
	// space.
	for _, pl := range trace.Placements {
		if reclipped[pl.Node] {
			continue
		}
		clips := x.store.get(pl.Node)
		if len(clips) == 0 {
			// No clip points can be invalidated, but new dead space might
			// now be clippable; the paper leaves such nodes alone until the
			// next forced recomputation, and so do we.
			x.stats.AvoidedReclips++
			continue
		}
		info, err := x.tree.Node(pl.Node)
		if err != nil {
			continue
		}
		x.stats.ValidityChecks++
		if !core.Intersects(info.MBB, clips, pl.Rect, core.SelectorInsert) {
			reclip(pl.Node, CauseCBBOnly)
		} else {
			x.stats.AvoidedReclips++
		}
	}
	// 4. Ancestors whose own MBB did not change but one of whose children
	// grew (child MBB change could intrude into the parent's clipped
	// corners): validity-check them against the grown child rectangles.
	x.checkAncestors(trace, reclip)
	return causes
}

// checkAncestors runs the insert-validity test on parents of changed nodes
// that were not themselves re-clipped.
func (x *Index) checkAncestors(trace *rtree.InsertTrace, reclip func(rtree.NodeID, ReclipCause)) {
	changed := append(append([]rtree.NodeID{}, trace.MBBChanged...), trace.Split...)
	changed = append(changed, trace.Created...)
	for _, id := range changed {
		info, err := x.tree.Node(id)
		if err != nil || info.Parent == rtree.InvalidNode {
			continue
		}
		parent := info.Parent
		if trace.Changed(parent) {
			continue // already re-clipped via its own cause
		}
		clips := x.store.get(parent)
		if len(clips) == 0 {
			continue
		}
		pinfo, err := x.tree.Node(parent)
		if err != nil {
			continue
		}
		x.stats.ValidityChecks++
		if !core.Intersects(pinfo.MBB, clips, info.MBB, core.SelectorInsert) {
			reclip(parent, CauseCBBOnly)
		} else {
			x.stats.AvoidedReclips++
		}
	}
}

// Delete removes an object. Deletions are handled lazily: clip points stay
// valid when space only becomes emptier, so the table is touched only for
// nodes whose MBB changed or that were dissolved.
func (x *Index) Delete(r geom.Rect, obj rtree.ObjectID) (bool, error) {
	trace, err := x.tree.Delete(r, obj)
	if err != nil {
		return false, err
	}
	if !trace.Found {
		x.publishIfAuto()
		return false, nil
	}
	x.stats.Deletes++
	for _, id := range trace.Removed {
		x.delClips(id)
	}
	reclipped := make(map[rtree.NodeID]bool)
	for _, id := range trace.MBBChanged {
		if !reclipped[id] {
			reclipped[id] = true
			x.reclipByID(id)
		}
	}
	// Entries re-inserted by the condense step may land in clipped dead
	// space of nodes whose MBB did not change; validity-check each placement
	// just like an insertion.
	for _, pl := range trace.Placements {
		if reclipped[pl.Node] {
			continue
		}
		clips := x.store.get(pl.Node)
		if len(clips) == 0 {
			continue
		}
		info, err := x.tree.Node(pl.Node)
		if err != nil {
			continue
		}
		if !core.Intersects(info.MBB, clips, pl.Rect, core.SelectorInsert) {
			reclipped[pl.Node] = true
			x.reclipByID(pl.Node)
		}
	}
	// A node whose MBB grew during re-insertion may now intrude into its
	// parent's clipped corners even though the parent's own MBB is
	// unchanged; validity-check those parents as well.
	for _, id := range trace.MBBChanged {
		info, err := x.tree.Node(id)
		if err != nil || info.Parent == rtree.InvalidNode || reclipped[info.Parent] {
			continue
		}
		clips := x.store.get(info.Parent)
		if len(clips) == 0 {
			continue
		}
		pinfo, err := x.tree.Node(info.Parent)
		if err != nil {
			continue
		}
		if !core.Intersects(pinfo.MBB, clips, info.MBB, core.SelectorInsert) {
			reclipped[info.Parent] = true
			x.reclipByID(info.Parent)
		}
	}
	if len(reclipped) == 0 {
		x.stats.DeletesNoReclip++
	}
	x.publishIfAuto()
	return true, nil
}

// Validate checks that the clip table is sound: every clip point belongs to
// a live node, lies inside that node's MBB, and clips only dead space (no
// child rectangle overlaps a clipped region's interior). It returns the
// first violation found.
func (x *Index) Validate() error {
	live := make(map[rtree.NodeID]rtree.NodeInfo)
	x.tree.Walk(func(info rtree.NodeInfo) { live[info.ID] = info })
	for id, clips := range x.table {
		info, ok := live[id]
		if !ok {
			return fmt.Errorf("clipindex: clip table references dead node %d", id)
		}
		for _, c := range clips {
			if !info.MBB.ContainsPoint(c.Coord) {
				return fmt.Errorf("clipindex: node %d clip point %v outside MBB %v", id, c, info.MBB)
			}
			region := c.Region(info.MBB)
			for _, child := range info.Children {
				if region.OverlapVolume(child.Rect) > 1e-9 {
					return fmt.Errorf("clipindex: node %d clip point %v clips child %v", id, c, child.Rect)
				}
			}
		}
	}
	return nil
}

// SaveAux serialises the clip table onto a page store as auxiliary pages
// (Figure 4b) and returns the number of pages written. Used by the
// storage-overhead experiment.
func (x *Index) SaveAux(p storage.PageStore) (pages int, err error) {
	buf := EncodeTable(x.table, x.tree.Dims())
	pageSize := p.PageSize()
	for off := 0; off < len(buf); off += pageSize {
		end := off + pageSize
		if end > len(buf) {
			end = len(buf)
		}
		id, err := p.Allocate(storage.KindAux)
		if err != nil {
			return pages, err
		}
		if err := p.Write(id, buf[off:end]); err != nil {
			return pages, err
		}
		pages++
	}
	return pages, nil
}

// AuxBytes returns the exact serialised size of the clip table in bytes —
// the same number Stats.ClipTableBytes and the cbbinspect storage breakdown
// report, all through TableBytes.
func (x *Index) AuxBytes() int {
	return TableBytes(x.table, x.tree.Dims())
}
