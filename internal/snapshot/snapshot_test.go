package snapshot

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

func buildTree(t *testing.T, n int) (*rtree.Tree, *clipindex.Index, Meta) {
	t.Helper()
	cfg := rtree.DefaultConfig(2, rtree.RRStar)
	tree := rtree.MustNew(cfg)
	rng := rand.New(rand.NewSource(7))
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		items[i] = rtree.Item{Object: rtree.ObjectID(i), Rect: geom.R(x, y, x+rng.Float64()*10, y+rng.Float64()*10)}
	}
	if err := tree.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 8, Tau: 0.025, Method: core.MethodStairline}
	idx, err := clipindex.New(tree, params)
	if err != nil {
		t.Fatal(err)
	}
	eff := tree.Config()
	meta := Meta{
		Dims: eff.Dims, Variant: eff.Variant,
		MaxEntries: eff.MaxEntries, MinEntries: eff.MinEntries,
		HilbertBits: eff.HilbertBits, Universe: eff.Universe,
		ClipMethod: ClipStairline, MaxClipPoints: params.K, ClipTau: params.Tau,
	}
	return tree, idx, meta
}

func TestWriteReadRoundTrip(t *testing.T) {
	tree, idx, meta := buildTree(t, 500)
	store := storage.NewPager(PageSizeFor(meta.MaxEntries, meta.Dims))
	if err := Write(store, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(store)
	if err != nil {
		t.Fatal(err)
	}
	m := snap.Meta
	if m.Dims != 2 || m.Variant != rtree.RRStar || m.Objects != 500 ||
		m.Height != tree.Height() || m.Root != tree.RootID() {
		t.Fatalf("meta mismatch: %+v", m)
	}
	if m.MaxClipPoints != 8 || m.ClipTau != 0.025 || m.ClipMethod != ClipStairline {
		t.Fatalf("clip params lost: %+v", m)
	}
	if !m.Universe.Equal(tree.Config().Universe) {
		t.Fatal("universe not preserved")
	}
	// Scores are construction-time ordering hints and not persisted; the
	// persisted coordinates, masks, and their order must match exactly.
	if len(snap.Table) != len(idx.Table()) {
		t.Fatalf("clip table has %d nodes, want %d", len(snap.Table), len(idx.Table()))
	}
	for id, want := range idx.Table() {
		got := snap.Table[id]
		if len(got) != len(want) {
			t.Fatalf("node %d has %d clip points, want %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i].Mask != want[i].Mask || !reflect.DeepEqual(got[i].Coord, want[i].Coord) {
				t.Fatalf("node %d clip point %d differs: %v vs %v", id, i, got[i], want[i])
			}
		}
	}
	dir, leaf := tree.NodeCount()
	if len(snap.Pages) != dir+leaf {
		t.Fatalf("page index has %d entries, want %d", len(snap.Pages), dir+leaf)
	}

	loaded, err := snap.LoadTree(store)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != tree.Len() || loaded.Height() != tree.Height() {
		t.Fatalf("loaded %d/%d, want %d/%d", loaded.Len(), loaded.Height(), tree.Len(), tree.Height())
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}

	lazy, err := snap.OpenTree(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.ReadOnly() {
		t.Fatal("lazy tree must be read-only")
	}
	q := geom.R(100, 100, 400, 400)
	var a, b []rtree.ObjectID
	tree.Search(q, func(id rtree.ObjectID, _ geom.Rect) bool { a = append(a, id); return true })
	lazy.Search(q, func(id rtree.ObjectID, _ geom.Rect) bool { b = append(b, id); return true })
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("lazy search differs: %d vs %d results", len(a), len(b))
	}
	if err := lazy.Err(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndStreamRoundTrip(t *testing.T) {
	cfg := rtree.DefaultConfig(3, rtree.Hilbert)
	tree := rtree.MustNew(cfg)
	eff := tree.Config()
	meta := Meta{
		Dims: 3, Variant: rtree.Hilbert,
		MaxEntries: eff.MaxEntries, MinEntries: eff.MinEntries,
		HilbertBits: eff.HilbertBits, Universe: eff.Universe,
		ClipMethod: ClipNone,
	}
	var buf bytes.Buffer
	if err := SaveTo(&buf, tree, nil, meta); err != nil {
		t.Fatal(err)
	}
	snap, store, err := LoadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Root != rtree.InvalidNode || snap.Meta.Objects != 0 || len(snap.Pages) != 0 {
		t.Fatalf("empty snapshot decoded wrong: %+v", snap.Meta)
	}
	loaded, err := snap.LoadTree(store)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 || loaded.Height() != 0 {
		t.Fatal("loaded empty tree not empty")
	}
	lazy, err := snap.OpenTree(store, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.Insert(geom.R(0, 0, 0, 1, 1, 1), 1); err != rtree.ErrReadOnly {
		t.Fatalf("insert into lazily opened tree: %v, want ErrReadOnly", err)
	}
	if lazy.Count(geom.R(0, 0, 0, 1, 1, 1)) != 0 {
		t.Fatal("empty lazy tree found objects")
	}
}

func TestFileRoundTrip(t *testing.T) {
	tree, idx, meta := buildTree(t, 300)
	path := filepath.Join(t.TempDir(), "snap.cbb")
	if err := WriteFile(path, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	snap, fp, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	lazy, err := snap.OpenTree(fp, true)
	if err != nil {
		t.Fatal(err)
	}
	reads0, _ := fp.DiskStats()
	q := geom.R(0, 0, 300, 300)
	want := tree.Count(q)
	got := lazy.Count(q)
	if got != want {
		t.Fatalf("file-backed count %d, want %d", got, want)
	}
	reads1, _ := fp.DiskStats()
	if reads1 <= reads0 {
		t.Fatal("query did not read pages from the file")
	}
	if err := lazy.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tree, idx, meta := buildTree(t, 200)
	var buf bytes.Buffer
	if err := SaveTo(&buf, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Any single corrupted byte in the superblock page must be caught by a
	// page or superblock checksum.
	for _, off := range []int{32 + 16, 32 + 16 + 4, 32 + 16 + 30, 32 + 16 + 100} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xff
		if _, _, err := LoadFrom(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at byte %d not detected", off)
		}
	}
	// Truncations anywhere must error, never panic.
	for _, n := range []int{0, 10, 31, 32, 100, len(raw) / 2, len(raw) - 1} {
		if _, _, err := LoadFrom(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	// Garbage input.
	if _, _, err := LoadFrom(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriteRejectsMismatchedMeta(t *testing.T) {
	tree, idx, meta := buildTree(t, 50)
	bad := meta
	bad.Dims = 3
	store := storage.NewPager(PageSizeFor(meta.MaxEntries, meta.Dims))
	if err := Write(store, tree, idx.Table(), bad); err == nil {
		t.Error("dims mismatch accepted")
	}
	store2 := storage.NewPager(PageSizeFor(meta.MaxEntries, meta.Dims))
	if _, err := store2.Allocate(storage.KindLeaf); err != nil {
		t.Fatal(err)
	}
	if err := Write(store2, tree, idx.Table(), meta); err == nil {
		t.Error("non-empty store accepted")
	}
}
