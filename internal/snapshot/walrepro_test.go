package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Repro: in-place Transcode (src == dst) leaves the pre-compaction WAL next
// to the freshly written file; a later writable open replays it over the new
// pages.
func TestTranscodeInPlaceStaleWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.cbb")
	tree, idx, meta := buildTree(t, 400)
	if err := WriteFile(path, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}

	fp, err := storage.OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(fp)
	if err != nil {
		t.Fatal(err)
	}
	wtree, err := snap.OpenTree(fp, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if _, err := wtree.Insert(geom.R(x, y, x+5, y+5), rtree.ObjectID(400+i)); err != nil {
			t.Fatal(err)
		}
	}
	params, _ := snap.Meta.ClipParams()
	widx, err := clipindex.New(wtree, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := Rewrite(fp, wtree, widx.Table(), snap.Meta); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash after WAL sync")
	fp.SetCommitFailpoints(func() error { return boom }, nil)
	if err := fp.CommitJournal(); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want injected crash", err)
	}
	if _, err := os.Stat(storage.WALPathFor(path)); err != nil {
		t.Fatalf("no WAL left on disk: %v", err)
	}

	// In-place compaction, same format: advertised as "srcPath == dstPath
	// compacts a snapshot in place ... any WAL is absorbed".
	if err := Transcode(path, path, FormatV1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(storage.WALPathFor(path)); err == nil {
		t.Logf("stale WAL still present next to the compacted file")
	}

	// A later writable open replays the stale WAL over the compacted file.
	fp2, err := storage.OpenFilePager(path)
	if err != nil {
		t.Fatalf("writable reopen after in-place compaction: %v", err)
	}
	defer fp2.Close()
	snap2, err := Read(fp2)
	if err != nil {
		t.Fatalf("reading snapshot after reopen: %v", err)
	}
	t2, err := snap2.OpenTree(fp2, true)
	if err != nil {
		t.Fatalf("opening tree after reopen: %v", err)
	}
	if err := t2.Materialize(); err != nil {
		t.Fatalf("materializing tree after reopen: %v", err)
	}
	if err := t2.Validate(); err != nil {
		t.Fatalf("tree invalid after reopen: %v", err)
	}
	if got := snap2.Meta.Objects; got != 500 {
		t.Fatalf("snapshot holds %d objects after reopen, want 500", got)
	}
}
