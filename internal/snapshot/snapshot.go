// Package snapshot defines the versioned, checksummed single-file snapshot
// format of the persistence subsystem. A snapshot is a page file (the byte
// format of internal/storage's FilePager) whose first page is a superblock
// describing the indexed structure — dimensionality, R-tree variant and
// capacity, clipping parameters, root node — followed by the tree's node
// pages in the Figure 4a layout, a node-id→page-id index, and the Figure 4b
// clip table, all written with the existing encoders.
//
// The same snapshot can be consumed two ways: fully decoded into an
// in-memory tree (LoadTree), or opened lazily so that queries run directly
// against the on-disk pages through a FilePager, the buffer pool, and the
// usual I/O counters (OpenTree). Every layer validates on decode: the page
// container checks magic, version, and per-page CRC-32C; the superblock
// carries its own checksum and plausibility limits; and the node decoder
// rejects malformed pages.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"cbb/internal/clipindex"
	"cbb/internal/core"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Superblock constants.
const (
	superMagic = "CBBSNAP1"
	// Version is the default snapshot format version written by this
	// package (the uncompressed v1 layout).
	Version = FormatV1
	// FormatV1 is the original snapshot format: fixed-size node pages in
	// the Figure 4a layout and a raw float64 clip table. v1 snapshots can
	// be reopened writable and rewritten in place.
	FormatV1 = 1
	// FormatV2 is the compressed snapshot format: node pages hold the
	// quantised/delta-coded v2 layout (rtree.CodecV2), the page size is
	// chosen from the largest encoded node rather than the node capacity,
	// and the clip table is quantised against the universe
	// (clipindex.EncodeTableV2). v2 snapshots open read-only.
	FormatV2 = 2
	// SuperPage is the page id of the superblock: always the first page of
	// the file, so readers can find it without any other metadata.
	SuperPage storage.PageID = 1

	// maxNodes bounds the node count accepted from a snapshot, guarding
	// decoders against allocation bombs in corrupt files.
	maxNodes = 1 << 26
	// maxHeight bounds the tree height (the node layout stores one byte).
	maxHeight = 255

	indexEntryBytes = 12 // node id (uint32) + page id (uint64)
)

// Common snapshot errors.
var (
	ErrBadMagic   = errors.New("snapshot: not a cbb snapshot (bad magic)")
	ErrBadVersion = errors.New("snapshot: unsupported snapshot version")
	ErrCorrupt    = errors.New("snapshot: corrupt snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ClipMethod records in the superblock how the snapshot's clip table was
// built (or that clipping is disabled).
type ClipMethod uint32

// Clip methods, in the order the public API uses.
const (
	ClipStairline ClipMethod = iota // the paper's CSTA
	ClipSkyline                     // the paper's CSKY
	ClipNone                        // plain R-tree, no clip table
)

// CoreMethod maps the snapshot code to the clip-construction method; ok is
// false for ClipNone.
func (m ClipMethod) CoreMethod() (core.Method, bool) {
	switch m {
	case ClipStairline:
		return core.MethodStairline, true
	case ClipSkyline:
		return core.MethodSkyline, true
	default:
		return 0, false
	}
}

// Meta is the snapshot header: everything needed to reconstruct the index
// configuration, plus the structural facts (object count, height, root) that
// a lazy open cannot derive without reading every page.
type Meta struct {
	// PageSize is the page size of the snapshot's page file; 0 lets Write
	// pick one (for v1: DefaultPageSize, grown if the node capacity needs
	// more; for v2: the largest encoded node, rounded up).
	PageSize int

	// Format selects the snapshot layout (FormatV1 or FormatV2); 0 means
	// FormatV1, so existing callers are unaffected.
	Format int

	// Index configuration.
	Dims        int
	Variant     rtree.Variant
	MaxEntries  int
	MinEntries  int
	HilbertBits int
	Universe    geom.Rect

	// Clipping parameters.
	ClipMethod    ClipMethod
	MaxClipPoints int
	ClipTau       float64

	// Structural facts, filled in by Write from the tree.
	Objects int
	Height  int
	Root    rtree.NodeID
}

// Config reconstructs the R-tree configuration stored in the header.
func (m Meta) Config() rtree.Config {
	return rtree.Config{
		Dims:        m.Dims,
		MaxEntries:  m.MaxEntries,
		MinEntries:  m.MinEntries,
		Variant:     m.Variant,
		Universe:    m.Universe,
		HilbertBits: m.HilbertBits,
	}
}

// ClipParams reconstructs the clipping parameters; ok is false when the
// snapshot was written without clipping.
func (m Meta) ClipParams() (core.Params, bool) {
	method, ok := m.ClipMethod.CoreMethod()
	if !ok {
		return core.Params{}, false
	}
	return core.Params{K: m.MaxClipPoints, Tau: m.ClipTau, Method: method}, true
}

// Codec returns the node-page codec matching the header's format.
func (m Meta) Codec() rtree.PageCodec {
	if m.Format >= FormatV2 {
		return rtree.CodecV2
	}
	return rtree.CodecV1
}

// PageSizeFor returns the page size Write uses for the given configuration:
// the default 4 KiB page unless a node of MaxEntries entries needs more, in
// which case the size is rounded up to the next 4 KiB multiple.
func PageSizeFor(maxEntries, dims int) int {
	need := rtree.PageBytesFor(maxEntries, dims)
	if need <= storage.DefaultPageSize {
		return storage.DefaultPageSize
	}
	pages := (need + storage.DefaultPageSize - 1) / storage.DefaultPageSize
	return pages * storage.DefaultPageSize
}

// superBytesFor is the encoded superblock size for a given dimensionality
// (the fixed header fields plus the 2·dims universe extents); the page size
// of a v2 snapshot must be at least this, since the superblock shares the
// page file with the compressed node pages.
func superBytesFor(dims int) int { return 120 + 16*dims }

// v2PageSizeFor picks the page size of a compressed snapshot: the largest
// v2-encoded node of the tree (the format has no fixed per-node size), but
// never smaller than the superblock, rounded up to a 64-byte multiple so
// slots stay cache-line aligned.
func v2PageSizeFor(tree *rtree.Tree, dims int) (int, error) {
	need, err := tree.MaxEncodedNodeBytes(rtree.CodecV2)
	if err != nil {
		return 0, err
	}
	if s := superBytesFor(dims); s > need {
		need = s
	}
	return (need + 63) &^ 63, nil
}

// fillPageSize resolves a zero meta.PageSize to the format's natural size.
func fillPageSize(meta Meta, tree *rtree.Tree) (Meta, error) {
	if meta.PageSize != 0 {
		return meta, nil
	}
	if meta.Format >= FormatV2 {
		if tree == nil {
			return meta, errors.New("snapshot: v2 page size needs the tree")
		}
		ps, err := v2PageSizeFor(tree, meta.Dims)
		if err != nil {
			return meta, err
		}
		meta.PageSize = ps
		return meta, nil
	}
	meta.PageSize = PageSizeFor(meta.MaxEntries, meta.Dims)
	return meta, nil
}

// encodeClip serialises the clip table in the header's format.
func encodeClip(meta Meta, table clipindex.Table) []byte {
	if len(table) == 0 {
		return nil
	}
	if meta.Format >= FormatV2 {
		return clipindex.EncodeTableV2(table, meta.Dims, meta.Universe)
	}
	return clipindex.EncodeTable(table, meta.Dims)
}

// Layout locates the snapshot's page regions inside the page file; it is
// exposed so integrity checkers (cbbinspect -verify) can account for every
// page the snapshot claims to own.
type Layout struct {
	RootPage   storage.PageID
	IndexFirst storage.PageID
	IndexPages int
	ClipFirst  storage.PageID
	ClipPages  int
	ClipBytes  int
}

// Snapshot is a decoded snapshot: its header, the location of every node
// page, and the clip table. The node pages themselves stay in the page store
// until LoadTree or OpenTree asks for them.
type Snapshot struct {
	Meta     Meta
	RootPage storage.PageID
	Pages    map[rtree.NodeID]storage.PageID
	Table    clipindex.Table
	Layout   Layout
}

// LoadTree fully materialises the snapshot's tree from the page store into
// memory (the Load half of the Save/Load pair).
func (s *Snapshot) LoadTree(store storage.PageStore) (*rtree.Tree, error) {
	if s.Meta.Root == rtree.InvalidNode {
		return rtree.New(s.Meta.Config())
	}
	t, err := rtree.LoadCodec(s.Meta.Config(), store, s.RootPage, s.Pages, s.Meta.Codec())
	if err != nil {
		return nil, err
	}
	if t.Len() != s.Meta.Objects {
		return nil, fmt.Errorf("%w: header claims %d objects, pages hold %d", ErrCorrupt, s.Meta.Objects, t.Len())
	}
	if t.Height() != s.Meta.Height {
		return nil, fmt.Errorf("%w: header claims height %d, pages give %d", ErrCorrupt, s.Meta.Height, t.Height())
	}
	return t, nil
}

// OpenTree returns a tree that faults node pages in from the store on
// demand, so queries run directly against the backing file. With readonly
// false the tree is writable: mutations accumulate in its dirty set and
// Rewrite commits them back into the snapshot in place. Compressed (v2)
// snapshots only open read-only: their pages are sized to the encoded node,
// so a mutated node might not fit back in its slot.
func (s *Snapshot) OpenTree(store storage.PageStore, readonly bool) (*rtree.Tree, error) {
	return rtree.OpenPagedCodec(s.Meta.Config(), store, s.Pages, s.Meta.Root, s.Meta.Objects, s.Meta.Height, readonly, s.Meta.Codec())
}

// Write serialises the tree and its clip table into a freshly created page
// store: superblock first, then the node pages (Figure 4a), the node index,
// and the clip table (Figure 4b). meta's configuration fields must describe
// the tree; its structural fields are filled in here.
func Write(store storage.PageStore, tree *rtree.Tree, table clipindex.Table, meta Meta) error {
	meta, err := checkMeta(store, tree, table, meta)
	if err != nil {
		return err
	}
	meta.Objects = tree.Len()
	meta.Height = tree.Height()
	meta.Root = tree.RootID()

	super, err := store.Allocate(storage.KindAux)
	if err != nil {
		return err
	}
	if super != SuperPage {
		return errors.New("snapshot: page store must be empty (superblock did not land on page 1)")
	}

	var rootPage storage.PageID
	pages := map[rtree.NodeID]storage.PageID{}
	if meta.Root != rtree.InvalidNode {
		rootPage, pages, err = tree.SaveWith(store, meta.Codec())
		if err != nil {
			return err
		}
	}

	indexFirst, indexPages, err := writeChunked(store, encodeIndex(pages))
	if err != nil {
		return fmt.Errorf("snapshot: writing node index: %w", err)
	}

	clipBuf := encodeClip(meta, table)
	clipFirst, clipPages, err := writeChunked(store, clipBuf)
	if err != nil {
		return fmt.Errorf("snapshot: writing clip table: %w", err)
	}

	layout := layout{
		rootPage:   rootPage,
		nodeCount:  len(pages),
		indexFirst: indexFirst,
		indexPages: indexPages,
		clipFirst:  clipFirst,
		clipPages:  clipPages,
		clipBytes:  len(clipBuf),
	}
	return store.Write(super, encodeSuper(meta, layout))
}

// checkMeta validates that a snapshot header describes the tree and the
// store, filling in the page size; any divergence would checksum fine yet
// reopen as a differently configured index.
func checkMeta(store storage.PageStore, tree *rtree.Tree, table clipindex.Table, meta Meta) (Meta, error) {
	if tree == nil {
		return meta, errors.New("snapshot: tree must not be nil")
	}
	cfg := tree.Config()
	if meta.Dims != cfg.Dims || meta.Variant != cfg.Variant ||
		meta.MaxEntries != cfg.MaxEntries || meta.MinEntries != cfg.MinEntries ||
		meta.HilbertBits != cfg.HilbertBits || !meta.Universe.Equal(cfg.Universe) {
		return meta, fmt.Errorf("snapshot: header (%dd %v M=%d m=%d bits=%d) does not describe the tree (%dd %v M=%d m=%d bits=%d)",
			meta.Dims, meta.Variant, meta.MaxEntries, meta.MinEntries, meta.HilbertBits,
			cfg.Dims, cfg.Variant, cfg.MaxEntries, cfg.MinEntries, cfg.HilbertBits)
	}
	if meta.Format == 0 {
		meta.Format = FormatV1
	}
	if meta.Format != FormatV1 && meta.Format != FormatV2 {
		return meta, fmt.Errorf("snapshot: unknown format %d", meta.Format)
	}
	meta, err := fillPageSize(meta, tree)
	if err != nil {
		return meta, err
	}
	if store.PageSize() != meta.PageSize {
		return meta, fmt.Errorf("snapshot: page store has page size %d, header says %d", store.PageSize(), meta.PageSize)
	}
	if meta.ClipMethod == ClipNone && len(table) > 0 {
		return meta, errors.New("snapshot: clip table present but clip method is none")
	}
	return meta, nil
}

// Rewrite commits the current state of a writable file-backed tree back into
// its snapshot in place — the incremental counterpart of Write. Dirty node
// pages are written back through the tree's FlushDirty (new nodes get pages,
// pages of dissolved nodes return to the free list), the node index and the
// Figure 4b clip table are re-written in freshly allocated aux pages (their
// previous pages freed first, so the space is reused), and the superblock is
// rewritten last. Rewrite itself does not force durability: on a journaled
// FilePager the caller's CommitJournal makes the whole batch atomic, which
// is how Flush gives crash consistency.
func Rewrite(store storage.PageStore, tree *rtree.Tree, table clipindex.Table, meta Meta) error {
	if meta.Format >= FormatV2 {
		return errors.New("snapshot: v2 (compressed) snapshots are read-only and cannot be rewritten in place")
	}
	meta, err := checkMeta(store, tree, table, meta)
	if err != nil {
		return err
	}
	// The old layout locates the aux regions this rewrite replaces.
	buf, _, err := store.Read(SuperPage)
	if err != nil {
		return fmt.Errorf("snapshot: reading superblock: %w", err)
	}
	_, oldLay, err := decodeSuper(buf, store.PageSize())
	if err != nil {
		return err
	}
	for i := 0; i < oldLay.indexPages; i++ {
		if err := store.Free(oldLay.indexFirst + storage.PageID(i)); err != nil {
			return fmt.Errorf("snapshot: freeing node-index page: %w", err)
		}
	}
	for i := 0; i < oldLay.clipPages; i++ {
		if err := store.Free(oldLay.clipFirst + storage.PageID(i)); err != nil {
			return fmt.Errorf("snapshot: freeing clip-table page: %w", err)
		}
	}

	meta.Objects = tree.Len()
	meta.Height = tree.Height()
	meta.Root = tree.RootID()
	rootPage, pages, commit, err := tree.FlushDirty()
	if err != nil {
		return err
	}

	indexFirst, indexPages, err := writeChunked(store, encodeIndex(pages))
	if err != nil {
		return fmt.Errorf("snapshot: writing node index: %w", err)
	}
	clipBuf := encodeClip(meta, table)
	clipFirst, clipPages, err := writeChunked(store, clipBuf)
	if err != nil {
		return fmt.Errorf("snapshot: writing clip table: %w", err)
	}
	lay := layout{
		rootPage:   rootPage,
		nodeCount:  len(pages),
		indexFirst: indexFirst,
		indexPages: indexPages,
		clipFirst:  clipFirst,
		clipPages:  clipPages,
		clipBytes:  len(clipBuf),
	}
	if err := store.Write(SuperPage, encodeSuper(meta, lay)); err != nil {
		return err
	}
	// Every page of the rewrite is staged; only now may the tree retire its
	// dirty-set bookkeeping. A failure anywhere above leaves the tree still
	// dirty, so discarding the store's journal and retrying is safe.
	commit()
	return nil
}

// Read decodes a snapshot's superblock, node index, and clip table from a
// page store, validating magic, version, checksums, and plausibility limits.
// Node pages are left on the store for LoadTree / OpenTree.
func Read(store storage.PageStore) (*Snapshot, error) {
	buf, _, err := store.Read(SuperPage)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading superblock: %w", err)
	}
	meta, lay, err := decodeSuper(buf, store.PageSize())
	if err != nil {
		return nil, err
	}

	indexBuf, err := readChunked(store, lay.indexFirst, lay.indexPages, lay.nodeCount*indexEntryBytes)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading node index: %w", err)
	}
	pages, err := decodeIndex(indexBuf, lay.nodeCount)
	if err != nil {
		return nil, err
	}
	rootPage := lay.rootPage
	if meta.Root != rtree.InvalidNode {
		if got, ok := pages[meta.Root]; !ok || got != rootPage {
			return nil, fmt.Errorf("%w: root node %d not indexed at root page %d", ErrCorrupt, meta.Root, rootPage)
		}
	}

	var table clipindex.Table
	if lay.clipBytes > 0 {
		clipBuf, err := readChunked(store, lay.clipFirst, lay.clipPages, lay.clipBytes)
		if err != nil {
			return nil, fmt.Errorf("snapshot: reading clip table: %w", err)
		}
		var tbl clipindex.Table
		var dims int
		if meta.Format >= FormatV2 {
			tbl, dims, err = clipindex.DecodeTableV2(clipBuf, meta.Universe)
		} else {
			tbl, dims, err = clipindex.DecodeTable(clipBuf)
		}
		if err != nil {
			return nil, err
		}
		if dims != meta.Dims {
			return nil, fmt.Errorf("%w: clip table is %d-dimensional, header says %d", ErrCorrupt, dims, meta.Dims)
		}
		table = tbl
	}
	return &Snapshot{
		Meta: meta, RootPage: rootPage, Pages: pages, Table: table,
		Layout: Layout{
			RootPage:   lay.rootPage,
			IndexFirst: lay.indexFirst,
			IndexPages: lay.indexPages,
			ClipFirst:  lay.clipFirst,
			ClipPages:  lay.clipPages,
			ClipBytes:  lay.clipBytes,
		},
	}, nil
}

// --- streaming and file conveniences ----------------------------------------

// SaveTo writes a snapshot of the tree as a byte stream (the page file
// format) to w.
func SaveTo(w io.Writer, tree *rtree.Tree, table clipindex.Table, meta Meta) error {
	meta, err := fillPageSize(meta, tree)
	if err != nil {
		return err
	}
	pager := storage.NewPager(meta.PageSize)
	if err := Write(pager, tree, table, meta); err != nil {
		return err
	}
	_, err = pager.WriteTo(w)
	return err
}

// LoadFrom reads a snapshot stream into an in-memory pager and decodes it.
// The returned pager holds the node pages for Snapshot.LoadTree.
func LoadFrom(r io.Reader) (*Snapshot, *storage.Pager, error) {
	pager, err := storage.ReadPagerFrom(r)
	if err != nil {
		return nil, nil, err
	}
	snap, err := Read(pager)
	if err != nil {
		return nil, nil, err
	}
	return snap, pager, nil
}

// WriteFile writes a snapshot to path atomically: the pages go to a
// temporary file in the same directory, which is fsynced and renamed over
// path only after every page is on disk.
func WriteFile(path string, tree *rtree.Tree, table clipindex.Table, meta Meta) error {
	meta, err := fillPageSize(meta, tree)
	if err != nil {
		return err
	}
	return atomicWritePageFile(path, meta.PageSize, func(fp *storage.FilePager) error {
		return Write(fp, tree, table, meta)
	})
}

// atomicWritePageFile creates a page file at path atomically: fill populates
// a FilePager over a temporary file in the same directory, which is fsynced
// and renamed over path only after every page is on disk.
func atomicWritePageFile(path string, pageSize int, fill func(*storage.FilePager) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	tmp.Close()
	fail := func(err error) error {
		os.Remove(tmpPath)
		return err
	}
	// CreateTemp makes the file 0600; shipped snapshots should be readable
	// like any file CreateFilePager makes directly.
	if err := os.Chmod(tmpPath, 0o644); err != nil {
		return fail(err)
	}
	fp, err := storage.CreateFilePager(tmpPath, pageSize)
	if err != nil {
		return fail(err)
	}
	if err := fill(fp); err != nil {
		fp.Close()
		return fail(err)
	}
	if err := fp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fail(err)
	}
	// Flush the directory entry too, so the rename itself survives a crash.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// OpenFile opens a snapshot file for lazy, file-backed access. The caller
// owns the returned FilePager and must Close it when done with the tree.
func OpenFile(path string) (*Snapshot, *storage.FilePager, error) {
	fp, err := storage.OpenFilePager(path)
	if err != nil {
		return nil, nil, err
	}
	snap, err := Read(fp)
	if err != nil {
		fp.Close()
		return nil, nil, err
	}
	return snap, fp, nil
}

// OpenFileReadOnly is OpenFile with a strictly read-only page file: the
// snapshot (and any pending write-ahead log next to it) is never modified —
// a committed WAL is replayed into an in-memory overlay and left on disk.
// Inspection tools use this so that examining a file has no side effects.
func OpenFileReadOnly(path string) (*Snapshot, *storage.FilePager, error) {
	fp, err := storage.OpenFilePagerReadOnly(path)
	if err != nil {
		return nil, nil, err
	}
	snap, err := Read(fp)
	if err != nil {
		fp.Close()
		return nil, nil, err
	}
	return snap, fp, nil
}

// --- chunked aux-page regions ------------------------------------------------

// runAllocator is the optional page-store capability of allocating n
// consecutively numbered pages; both storage.Pager and storage.FilePager
// provide it. The chunked aux regions (node index, clip table) are located
// by (first page, page count) in the superblock, so their pages must be
// contiguous even when the store's free list holds scattered pages.
type runAllocator interface {
	AllocateRun(kind storage.PageKind, n int) (storage.PageID, error)
}

// writeChunked spreads buf over consecutively allocated aux pages and
// returns the first page id and the page count (0, 0 for an empty buffer).
func writeChunked(store storage.PageStore, buf []byte) (first storage.PageID, pages int, err error) {
	pageSize := store.PageSize()
	if len(buf) == 0 {
		return 0, 0, nil
	}
	want := (len(buf) + pageSize - 1) / pageSize
	if ra, ok := store.(runAllocator); ok {
		first, err = ra.AllocateRun(storage.KindAux, want)
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < want; i++ {
			end := (i + 1) * pageSize
			if end > len(buf) {
				end = len(buf)
			}
			if err := store.Write(first+storage.PageID(i), buf[i*pageSize:end]); err != nil {
				return 0, 0, err
			}
		}
		return first, want, nil
	}
	for off := 0; off < len(buf); off += pageSize {
		end := off + pageSize
		if end > len(buf) {
			end = len(buf)
		}
		id, err := store.Allocate(storage.KindAux)
		if err != nil {
			return 0, 0, err
		}
		if pages == 0 {
			first = id
		} else if id != first+storage.PageID(pages) {
			return 0, 0, fmt.Errorf("snapshot: non-contiguous aux page allocation (%d after %d)", id, first)
		}
		if err := store.Write(id, buf[off:end]); err != nil {
			return 0, 0, err
		}
		pages++
	}
	return first, pages, nil
}

// readChunked reassembles a chunked region of exactly want bytes.
func readChunked(store storage.PageStore, first storage.PageID, pages, want int) ([]byte, error) {
	if want < 0 || pages < 0 || want > pages*store.PageSize() {
		return nil, fmt.Errorf("%w: implausible chunked region (%d bytes in %d pages)", ErrCorrupt, want, pages)
	}
	capHint := want
	if capHint > 1<<20 {
		capHint = 1 << 20 // grow as real pages arrive; don't trust the header
	}
	buf := make([]byte, 0, capHint)
	for i := 0; i < pages; i++ {
		payload, kind, err := store.Read(first + storage.PageID(i))
		if err != nil {
			return nil, err
		}
		if kind != storage.KindAux {
			return nil, fmt.Errorf("%w: page %d is %v, expected aux", ErrCorrupt, first+storage.PageID(i), kind)
		}
		buf = append(buf, payload...)
	}
	if len(buf) < want {
		return nil, fmt.Errorf("%w: chunked region holds %d bytes, expected %d", ErrCorrupt, len(buf), want)
	}
	return buf[:want], nil
}

// --- node index --------------------------------------------------------------

// encodeIndex serialises the node→page map in ascending node-id order so
// snapshots are deterministic.
func encodeIndex(pages map[rtree.NodeID]storage.PageID) []byte {
	ids := make([]rtree.NodeID, 0, len(pages))
	for id := range pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, len(ids)*indexEntryBytes)
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pages[id]))
	}
	return buf
}

func decodeIndex(buf []byte, count int) (map[rtree.NodeID]storage.PageID, error) {
	if len(buf) < count*indexEntryBytes {
		return nil, fmt.Errorf("%w: node index truncated", ErrCorrupt)
	}
	pages := make(map[rtree.NodeID]storage.PageID, count)
	for i := 0; i < count; i++ {
		off := i * indexEntryBytes
		id := binary.LittleEndian.Uint32(buf[off:])
		pid := binary.LittleEndian.Uint64(buf[off+4:])
		if id > math.MaxInt32 {
			return nil, fmt.Errorf("%w: node id %d out of range", ErrCorrupt, id)
		}
		if pid == uint64(storage.InvalidPage) || pid == uint64(SuperPage) {
			return nil, fmt.Errorf("%w: node %d indexed at reserved page %d", ErrCorrupt, id, pid)
		}
		nid := rtree.NodeID(id)
		if _, dup := pages[nid]; dup {
			return nil, fmt.Errorf("%w: node %d indexed twice", ErrCorrupt, id)
		}
		pages[nid] = storage.PageID(pid)
	}
	return pages, nil
}

// --- superblock --------------------------------------------------------------

// layout locates the snapshot's regions inside the page file.
type layout struct {
	rootPage   storage.PageID
	nodeCount  int
	indexFirst storage.PageID
	indexPages int
	clipFirst  storage.PageID
	clipPages  int
	clipBytes  int
}

func encodeSuper(meta Meta, lay layout) []byte {
	format := meta.Format
	if format == 0 {
		format = FormatV1
	}
	buf := make([]byte, 0, 160+16*meta.Dims)
	buf = append(buf, superMagic...)
	// The format doubles as the superblock version: a v1 reader rejects a
	// v2 file with ErrBadVersion instead of misreading its pages.
	buf = binary.LittleEndian.AppendUint32(buf, uint32(format))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.PageSize))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.Dims))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.Variant))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.MaxEntries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.MinEntries))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.HilbertBits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.ClipMethod))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.MaxClipPoints))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(meta.ClipTau))
	for d := 0; d < meta.Dims; d++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(meta.Universe.Lo[d]))
	}
	for d := 0; d < meta.Dims; d++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(meta.Universe.Hi[d]))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(meta.Objects))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.Height))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lay.nodeCount))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(meta.Root)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lay.rootPage))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lay.indexFirst))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lay.indexPages))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lay.clipFirst))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lay.clipPages))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lay.clipBytes))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

// cursor is a bounds-checked little-endian reader for superblock decoding.
type cursor struct {
	buf []byte
	off int
	ok  bool
}

func (c *cursor) bytes(n int) []byte {
	if !c.ok || c.off+n > len(c.buf) {
		c.ok = false
		return nil
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) u32() uint32 {
	b := c.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func decodeSuper(buf []byte, storePageSize int) (Meta, layout, error) {
	var meta Meta
	var lay layout
	if len(buf) < len(superMagic)+8 {
		return meta, lay, fmt.Errorf("%w: superblock truncated", ErrCorrupt)
	}
	if string(buf[:len(superMagic)]) != superMagic {
		return meta, lay, ErrBadMagic
	}
	c := &cursor{buf: buf, off: len(superMagic), ok: true}
	switch v := c.u32(); v {
	case FormatV1, FormatV2:
		meta.Format = int(v)
	default:
		return meta, lay, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	meta.PageSize = int(c.u32())
	meta.Dims = int(c.u32())
	meta.Variant = rtree.Variant(c.u32())
	meta.MaxEntries = int(c.u32())
	meta.MinEntries = int(c.u32())
	meta.HilbertBits = int(c.u32())
	meta.ClipMethod = ClipMethod(c.u32())
	meta.MaxClipPoints = int(c.u32())
	meta.ClipTau = c.f64()
	if !c.ok || meta.Dims < 1 || meta.Dims > geom.MaxDims {
		return meta, lay, fmt.Errorf("%w: implausible dimensionality", ErrCorrupt)
	}
	lo := make(geom.Point, meta.Dims)
	hi := make(geom.Point, meta.Dims)
	for d := 0; d < meta.Dims; d++ {
		lo[d] = c.f64()
	}
	for d := 0; d < meta.Dims; d++ {
		hi[d] = c.f64()
	}
	meta.Universe = geom.Rect{Lo: lo, Hi: hi}
	meta.Objects = int(c.u64())
	meta.Height = int(c.u32())
	lay.nodeCount = int(c.u32())
	meta.Root = rtree.NodeID(int64(c.u64()))
	lay.rootPage = storage.PageID(c.u64())
	lay.indexFirst = storage.PageID(c.u64())
	lay.indexPages = int(c.u32())
	lay.clipFirst = storage.PageID(c.u64())
	lay.clipPages = int(c.u32())
	lay.clipBytes = int(c.u64())
	body := c.off
	crc := c.u32()
	if !c.ok {
		return meta, lay, fmt.Errorf("%w: superblock truncated", ErrCorrupt)
	}
	if crc32.Checksum(buf[:body], castagnoli) != crc {
		return meta, lay, fmt.Errorf("%w: superblock checksum mismatch", ErrCorrupt)
	}
	if meta.PageSize != storePageSize {
		return meta, lay, fmt.Errorf("%w: header page size %d does not match file page size %d", ErrCorrupt, meta.PageSize, storePageSize)
	}
	switch meta.Variant {
	case rtree.Quadratic, rtree.Hilbert, rtree.RStar, rtree.RRStar:
	default:
		return meta, lay, fmt.Errorf("%w: unknown variant %d", ErrCorrupt, int(meta.Variant))
	}
	if meta.ClipMethod > ClipNone {
		return meta, lay, fmt.Errorf("%w: unknown clip method %d", ErrCorrupt, uint32(meta.ClipMethod))
	}
	if meta.MaxEntries < 4 {
		return meta, lay, fmt.Errorf("%w: implausible node capacity %d", ErrCorrupt, meta.MaxEntries)
	}
	if meta.Format < FormatV2 && rtree.PageBytesFor(meta.MaxEntries, meta.Dims) > meta.PageSize {
		// v2 pages are sized to the largest encoded node, not the node
		// capacity, so this bound only holds for the fixed v1 layout.
		return meta, lay, fmt.Errorf("%w: node capacity %d does not fit a %d-byte page", ErrCorrupt, meta.MaxEntries, meta.PageSize)
	}
	if meta.Format >= FormatV2 && meta.PageSize < superBytesFor(meta.Dims) {
		return meta, lay, fmt.Errorf("%w: %d-byte pages cannot hold the superblock", ErrCorrupt, meta.PageSize)
	}
	if lay.nodeCount < 0 || lay.nodeCount > maxNodes {
		return meta, lay, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, lay.nodeCount)
	}
	if meta.Objects < 0 || meta.Objects > lay.nodeCount*meta.MaxEntries {
		return meta, lay, fmt.Errorf("%w: implausible object count %d for %d nodes", ErrCorrupt, meta.Objects, lay.nodeCount)
	}
	if meta.Height < 0 || meta.Height > maxHeight {
		return meta, lay, fmt.Errorf("%w: implausible height %d", ErrCorrupt, meta.Height)
	}
	if meta.Root == rtree.InvalidNode {
		if lay.nodeCount != 0 || meta.Objects != 0 || meta.Height != 0 || lay.rootPage != storage.InvalidPage {
			return meta, lay, fmt.Errorf("%w: empty tree with nodes attached", ErrCorrupt)
		}
	} else if meta.Root < 0 || lay.rootPage == storage.InvalidPage || lay.nodeCount == 0 || meta.Height < 1 {
		return meta, lay, fmt.Errorf("%w: missing root", ErrCorrupt)
	}
	wantIndex := (lay.nodeCount*indexEntryBytes + meta.PageSize - 1) / meta.PageSize
	if lay.indexPages != wantIndex {
		return meta, lay, fmt.Errorf("%w: node index spans %d pages, expected %d", ErrCorrupt, lay.indexPages, wantIndex)
	}
	if lay.clipBytes < 0 || lay.clipPages < 0 || lay.clipBytes > lay.clipPages*meta.PageSize {
		return meta, lay, fmt.Errorf("%w: implausible clip region", ErrCorrupt)
	}
	if lay.clipBytes == 0 && lay.clipPages != 0 {
		return meta, lay, fmt.Errorf("%w: empty clip table spanning %d pages", ErrCorrupt, lay.clipPages)
	}
	if meta.ClipMethod == ClipNone && lay.clipBytes != 0 {
		return meta, lay, fmt.Errorf("%w: clip table present but clip method is none", ErrCorrupt)
	}
	return meta, lay, nil
}
