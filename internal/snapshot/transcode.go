package snapshot

import (
	"fmt"
	"sort"

	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// Transcode rewrites the snapshot at srcPath into dstPath in the requested
// format, streaming one node page at a time — the tree is never materialised,
// so a beyond-RAM snapshot can be converted on a small machine. The source is
// opened strictly read-only (a pending committed WAL is folded into the
// output, not the source), and the destination is written atomically via a
// temporary file, so srcPath == dstPath compacts a snapshot in place.
//
// Converting v1→v2 compresses: directory rects are quantised (conservatively,
// so queries stay exact) and leaves delta-coded. Converting v2→v1 produces a
// writable snapshot again: the conservative quantisation is undone by
// restoring each directory entry to its child's exactly-stored MBB (read from
// the v2 page headers, O(nodes·dims) memory — the only per-node state the
// streaming conversion keeps). Transcoding to the current format is a
// compaction: pages are laid out densely in node-id order and any WAL is
// absorbed.
func Transcode(srcPath, dstPath string, format int) error {
	if format != FormatV1 && format != FormatV2 {
		return fmt.Errorf("snapshot: unknown format %d", format)
	}
	snap, src, err := OpenFileReadOnly(srcPath)
	if err != nil {
		return err
	}
	defer src.Close()

	meta := snap.Meta
	fromCodec := meta.Codec()
	meta.Format = format
	toCodec := meta.Codec()
	dims := meta.Dims

	ids := make([]rtree.NodeID, 0, len(snap.Pages))
	for id := range snap.Pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Dropping from v2 to v1 must undo the conservative directory
	// quantisation — v1 requires entry rects to equal their child's MBB
	// exactly — so collect every node's exactly-stored MBB from the v2 page
	// headers first.
	var childMBB func(rtree.NodeID) (geom.Rect, bool)
	if fromCodec == rtree.CodecV2 && toCodec == rtree.CodecV1 {
		mbbs := make(map[rtree.NodeID]geom.Rect, len(ids))
		for _, id := range ids {
			buf, _, err := src.Read(snap.Pages[id])
			if err != nil {
				return fmt.Errorf("snapshot: reading node %d: %w", id, err)
			}
			hid, mbb, err := rtree.NodePageMBB(buf, dims)
			if err != nil {
				return fmt.Errorf("snapshot: node %d: %w", id, err)
			}
			if hid != id {
				return fmt.Errorf("%w: node index says page %d holds node %d, page header says node %d", ErrCorrupt, snap.Pages[id], id, hid)
			}
			mbbs[id] = mbb
		}
		childMBB = func(id rtree.NodeID) (geom.Rect, bool) {
			r, ok := mbbs[id]
			return r, ok
		}
	}

	// readNode fetches and re-encodes one node page. Transcoding is cheap
	// (decode + encode, no allocation beyond the node), so running it twice —
	// once to discover the page size, once to write — keeps memory flat
	// instead of buffering every re-encoded page.
	readNode := func(id rtree.NodeID) ([]byte, storage.PageKind, error) {
		buf, kind, err := src.Read(snap.Pages[id])
		if err != nil {
			return nil, kind, fmt.Errorf("snapshot: reading node %d: %w", id, err)
		}
		if kind != storage.KindDirectory && kind != storage.KindLeaf {
			return nil, kind, fmt.Errorf("%w: node %d stored on a %v page", ErrCorrupt, id, kind)
		}
		out, err := rtree.TranscodeNodePage(buf, dims, fromCodec, toCodec, childMBB)
		if err != nil {
			return nil, kind, fmt.Errorf("snapshot: transcoding node %d: %w", id, err)
		}
		return out, kind, nil
	}

	// Pass 1: discover the destination page size.
	var pageSize int
	if format == FormatV2 {
		need := superBytesFor(dims)
		for _, id := range ids {
			out, _, err := readNode(id)
			if err != nil {
				return err
			}
			if len(out) > need {
				need = len(out)
			}
		}
		pageSize = (need + 63) &^ 63
	} else {
		pageSize = PageSizeFor(meta.MaxEntries, dims)
	}
	meta.PageSize = pageSize

	// Pass 2: write the destination file.
	return atomicWritePageFile(dstPath, pageSize, func(fp *storage.FilePager) error {
		super, err := fp.Allocate(storage.KindAux)
		if err != nil {
			return err
		}
		if super != SuperPage {
			return fmt.Errorf("snapshot: superblock landed on page %d", super)
		}
		pages := make(map[rtree.NodeID]storage.PageID, len(ids))
		for _, id := range ids {
			out, kind, err := readNode(id)
			if err != nil {
				return err
			}
			pid, err := fp.Allocate(kind)
			if err != nil {
				return err
			}
			if err := fp.Write(pid, out); err != nil {
				return err
			}
			pages[id] = pid
		}
		var rootPage storage.PageID
		if meta.Root != rtree.InvalidNode {
			rootPage = pages[meta.Root]
		}
		indexFirst, indexPages, err := writeChunked(fp, encodeIndex(pages))
		if err != nil {
			return fmt.Errorf("snapshot: writing node index: %w", err)
		}
		clipBuf := encodeClip(meta, snap.Table)
		clipFirst, clipPages, err := writeChunked(fp, clipBuf)
		if err != nil {
			return fmt.Errorf("snapshot: writing clip table: %w", err)
		}
		return fp.Write(super, encodeSuper(meta, layout{
			rootPage:   rootPage,
			nodeCount:  len(pages),
			indexFirst: indexFirst,
			indexPages: indexPages,
			clipFirst:  clipFirst,
			clipPages:  clipPages,
			clipBytes:  len(clipBuf),
		}))
	})
}
