package snapshot

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cbb/internal/clipindex"
	"cbb/internal/geom"
	"cbb/internal/rtree"
	"cbb/internal/storage"
)

// transcodeQueries is a deterministic query batch over the buildTree universe.
func transcodeQueries(n int) []geom.Rect {
	rng := rand.New(rand.NewSource(99))
	qs := make([]geom.Rect, n)
	for i := range qs {
		x, y := rng.Float64()*900, rng.Float64()*900
		qs[i] = geom.R(x, y, x+rng.Float64()*80, y+rng.Float64()*80)
	}
	return qs
}

// queryFile opens a snapshot read-only (any format) and runs the batch
// through the clipped index, returning sorted result ids per query.
func queryFile(t *testing.T, path string, qs []geom.Rect) [][]rtree.ObjectID {
	t.Helper()
	snap, fp, err := OpenFileReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	tree, err := snap.OpenTree(fp, true)
	if err != nil {
		t.Fatal(err)
	}
	params, ok := snap.Meta.ClipParams()
	if !ok {
		t.Fatalf("%s: no clip table", path)
	}
	idx, err := clipindex.Restore(tree, params, snap.Table)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]rtree.ObjectID, len(qs))
	for i, q := range qs {
		idx.Search(q, func(id rtree.ObjectID, _ geom.Rect) bool {
			out[i] = append(out[i], id)
			return true
		})
		sort.Slice(out[i], func(a, b int) bool { return out[i][a] < out[i][b] })
	}
	if err := tree.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameResults(a, b [][]rtree.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestTranscodeV1V2V1RoundTrip(t *testing.T) {
	dir := t.TempDir()
	v1, v2, back := filepath.Join(dir, "a.cbb"), filepath.Join(dir, "b.cbb"), filepath.Join(dir, "c.cbb")
	tree, idx, meta := buildTree(t, 600)
	if err := WriteFile(v1, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	qs := transcodeQueries(40)
	want := queryFile(t, v1, qs)

	if err := Transcode(v1, v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	snap, fp, err := OpenFileReadOnly(v2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Format != FormatV2 {
		t.Fatalf("transcoded format = %d, want %d", snap.Meta.Format, FormatV2)
	}
	if snap.Meta.Objects != 600 {
		t.Fatalf("transcoded snapshot holds %d objects", snap.Meta.Objects)
	}
	fp.Close()
	if !sameResults(want, queryFile(t, v2, qs)) {
		t.Fatal("v2 snapshot returns different results than v1")
	}

	// Back to v1: dir entry rects must be restored to the exact child MBBs,
	// which is what a full materialised Validate checks.
	if err := Transcode(v2, back, FormatV1); err != nil {
		t.Fatal(err)
	}
	snap, fp, err = OpenFileReadOnly(back)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.Format != FormatV1 {
		t.Fatalf("back-transcoded format = %d, want %d", snap.Meta.Format, FormatV1)
	}
	full, err := snap.LoadTree(fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("v2->v1 output violates v1 invariants: %v", err)
	}
	fp.Close()
	if !sameResults(want, queryFile(t, back, qs)) {
		t.Fatal("v1->v2->v1 round trip changed query results")
	}
}

func TestTranscodeCompactInPlace(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "a.cbb"), filepath.Join(dir, "b.cbb")
	tree, idx, meta := buildTree(t, 400)
	if err := WriteFile(v1, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	if err := Transcode(v1, v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	qs := transcodeQueries(20)
	want := queryFile(t, v2, qs)
	before, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	// src == dst re-compacts in place; re-quantising an already-quantised
	// grid is stable, so the size must not drift.
	if err := Transcode(v2, v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("in-place compaction changed the size: %d -> %d", before.Size(), after.Size())
	}
	if !sameResults(want, queryFile(t, v2, qs)) {
		t.Fatal("in-place compaction changed query results")
	}
}

func TestTranscodeUnknownFormat(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "a.cbb")
	tree, idx, meta := buildTree(t, 50)
	if err := WriteFile(v1, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	if err := Transcode(v1, filepath.Join(dir, "b.cbb"), 9); err == nil {
		t.Error("unknown format must fail")
	}
}

func TestRewriteRejectsV2(t *testing.T) {
	tree, idx, meta := buildTree(t, 50)
	store := storage.NewPager(PageSizeFor(meta.MaxEntries, meta.Dims))
	if err := Write(store, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}
	meta.Format = FormatV2
	if err := Rewrite(store, tree, idx.Table(), meta); err == nil {
		t.Error("Rewrite must reject the read-only v2 format")
	}
}

// TestTranscodeFoldsPendingWAL crashes a journaled writer after its WAL is
// durable but before any page is applied, then transcodes the file: the
// read-only source open must fold the committed WAL in, so the output
// carries the post-commit state while the source file and WAL stay intact.
func TestTranscodeFoldsPendingWAL(t *testing.T) {
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "a.cbb"), filepath.Join(dir, "b.cbb")
	tree, idx, meta := buildTree(t, 400)
	if err := WriteFile(v1, tree, idx.Table(), meta); err != nil {
		t.Fatal(err)
	}

	fp, err := storage.OpenFilePager(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	snap, err := Read(fp)
	if err != nil {
		t.Fatal(err)
	}
	wtree, err := snap.OpenTree(fp, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if _, err := wtree.Insert(geom.R(x, y, x+5, y+5), rtree.ObjectID(400+i)); err != nil {
			t.Fatal(err)
		}
	}
	params, _ := snap.Meta.ClipParams()
	widx, err := clipindex.New(wtree, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := Rewrite(fp, wtree, widx.Table(), snap.Meta); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash after WAL sync")
	fp.SetCommitFailpoints(func() error { return boom }, nil)
	if err := fp.CommitJournal(); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want injected crash", err)
	}
	// Abandon the writer without closing: the base file is pre-commit, the
	// durable WAL next to it holds the whole rewrite.
	if _, err := os.Stat(storage.WALPathFor(v1)); err != nil {
		t.Fatalf("no WAL left on disk: %v", err)
	}

	if err := Transcode(v1, v2, FormatV2); err != nil {
		t.Fatal(err)
	}
	snap2, fp2, err := OpenFileReadOnly(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	if snap2.Meta.Objects != 500 {
		t.Fatalf("transcode output holds %d objects, want 500 (WAL not folded in)", snap2.Meta.Objects)
	}
	if _, err := os.Stat(storage.WALPathFor(v1)); err != nil {
		t.Errorf("transcode consumed the source WAL: %v", err)
	}
}
