package geom

import (
	"fmt"
	"math/bits"
	"strings"
)

// Corner is a bitmask identifying one corner of a d-dimensional rectangle.
// Bit i set means the corner takes the rectangle's maximum extent in
// dimension i; bit i clear means it takes the minimum extent. For a
// d-dimensional rectangle the valid corners are 0 .. (1<<d)-1.
//
// This is the paper's superscript notation: R^b.
type Corner uint32

// MaxDims is the largest dimensionality supported by Corner bitmasks.
const MaxDims = 30

// CornerCount returns the number of corners of a dims-dimensional rectangle.
func CornerCount(dims int) int { return 1 << uint(dims) }

// Bit reports whether dimension i of the corner selects the maximum extent.
func (c Corner) Bit(i int) bool { return c&(1<<uint(i)) != 0 }

// Opposite returns the diagonally opposite corner in dims dimensions
// (all bits flipped), i.e. the paper's ~b restricted to d bits.
func (c Corner) Opposite(dims int) Corner {
	return (^c) & Corner(1<<uint(dims)-1)
}

// Xor returns c XOR o restricted to dims dimensions. Algorithm 2 of the
// paper selects the query corner as selector ⊕ c.mask; Xor implements that
// selection.
func (c Corner) Xor(o Corner, dims int) Corner {
	return (c ^ o) & Corner(1<<uint(dims)-1)
}

// PopCount returns the number of set bits (dimensions maximised).
func (c Corner) PopCount() int { return bits.OnesCount32(uint32(c)) }

// String renders the corner as a bit string, lowest dimension first,
// e.g. Corner(0b01) in 2d renders as "10" meaning dimension 0 maximised.
func (c Corner) String() string {
	return c.StringDims(MaxDims)
}

// StringDims renders exactly dims bits, dimension 0 first.
func (c Corner) StringDims(dims int) string {
	if dims <= 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < dims; i++ {
		if c.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Corners iterates all corners of a dims-dimensional rectangle in ascending
// bitmask order, calling fn for each. It exists to make call sites read like
// the paper's "for each bitmask b in 0 .. 2^d - 1".
func Corners(dims int, fn func(Corner)) {
	n := CornerCount(dims)
	for b := 0; b < n; b++ {
		fn(Corner(b))
	}
}

// AllCorners returns the corners of a dims-dimensional rectangle as a slice.
func AllCorners(dims int) []Corner {
	n := CornerCount(dims)
	out := make([]Corner, n)
	for b := range out {
		out[b] = Corner(b)
	}
	return out
}

// ParseCorner parses a bit string such as "10" (dimension 0 maximised,
// dimension 1 minimised) into a Corner. It is the inverse of StringDims.
func ParseCorner(s string) (Corner, error) {
	if len(s) == 0 || len(s) > MaxDims {
		return 0, fmt.Errorf("geom: corner bit string %q must have 1..%d bits", s, MaxDims)
	}
	var c Corner
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			c |= 1 << uint(i)
		case '0':
		default:
			return 0, fmt.Errorf("geom: corner bit string %q contains invalid character %q", s, s[i])
		}
	}
	return c, nil
}
