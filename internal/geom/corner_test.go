package geom

import (
	"testing"
)

func TestCornerBits(t *testing.T) {
	c := Corner(0b101)
	if !c.Bit(0) || c.Bit(1) || !c.Bit(2) {
		t.Fatalf("unexpected bits for %b", c)
	}
	if c.PopCount() != 2 {
		t.Errorf("PopCount = %d, want 2", c.PopCount())
	}
}

func TestCornerOpposite(t *testing.T) {
	if got := Corner(0b01).Opposite(2); got != 0b10 {
		t.Errorf("Opposite = %b, want 10", got)
	}
	if got := Corner(0b000).Opposite(3); got != 0b111 {
		t.Errorf("Opposite = %b, want 111", got)
	}
	// Opposite is an involution.
	for d := 1; d <= 4; d++ {
		Corners(d, func(b Corner) {
			if b.Opposite(d).Opposite(d) != b {
				t.Fatalf("Opposite not involutive for %v dims=%d", b, d)
			}
		})
	}
}

func TestCornerXor(t *testing.T) {
	// With selector = 2^d - 1 (queries), Xor is equivalent to Opposite.
	d := 3
	sel := Corner(1<<uint(d) - 1)
	Corners(d, func(b Corner) {
		if sel.Xor(b, d) != b.Opposite(d) {
			t.Fatalf("selector xor mismatch for %v", b)
		}
	})
	// With selector = 0 (insert validity checks), Xor is the identity.
	Corners(d, func(b Corner) {
		if Corner(0).Xor(b, d) != b {
			t.Fatalf("zero selector should be identity for %v", b)
		}
	})
}

func TestCornerCountAndAll(t *testing.T) {
	if CornerCount(2) != 4 || CornerCount(3) != 8 {
		t.Error("CornerCount wrong")
	}
	all := AllCorners(2)
	if len(all) != 4 || all[0] != 0 || all[3] != 3 {
		t.Errorf("AllCorners = %v", all)
	}
	var visited []Corner
	Corners(2, func(b Corner) { visited = append(visited, b) })
	if len(visited) != 4 {
		t.Errorf("Corners visited %d corners", len(visited))
	}
}

func TestCornerStringParse(t *testing.T) {
	c := Corner(0b10) // dim 1 maximised
	s := c.StringDims(2)
	if s != "01" {
		t.Fatalf("StringDims = %q, want \"01\"", s)
	}
	back, err := ParseCorner(s)
	if err != nil || back != c {
		t.Fatalf("ParseCorner(%q) = %v, %v", s, back, err)
	}
	if _, err := ParseCorner(""); err == nil {
		t.Error("empty string should fail")
	}
	if _, err := ParseCorner("012"); err == nil {
		t.Error("invalid character should fail")
	}
	if _, err := ParseCorner("0000000000000000000000000000000000000"); err == nil {
		t.Error("over-long string should fail")
	}
}

func TestParseCornerRoundTrip(t *testing.T) {
	for d := 1; d <= 5; d++ {
		Corners(d, func(b Corner) {
			s := b.StringDims(d)
			got, err := ParseCorner(s)
			if err != nil {
				t.Fatalf("ParseCorner(%q): %v", s, err)
			}
			if got != b {
				t.Fatalf("round trip %q: got %v want %v", s, got, b)
			}
		})
	}
}
