package geom

import (
	"math/rand"
	"testing"
)

func TestDominates2D(t *testing.T) {
	// Figure 2 of the paper: with b = 00 (lower-left corner), a point closer
	// to the lower-left in both dimensions dominates.
	o4 := Pt(6, 2) // stand-ins for o4^00 and o5^00
	o5 := Pt(8, 3)
	if !Dominates(o4, o5, 0b00) {
		t.Error("o4 should dominate o5 w.r.t. corner 00")
	}
	if Dominates(o5, o4, 0b00) {
		t.Error("o5 should not dominate o4 w.r.t. corner 00")
	}
	// With respect to the opposite corner the relation flips.
	if !Dominates(o5, o4, 0b11) {
		t.Error("o5 should dominate o4 w.r.t. corner 11")
	}
	// Equal points never dominate each other.
	if Dominates(o4, o4, 0b00) || Dominates(o4, o4, 0b11) {
		t.Error("a point must not dominate itself")
	}
	// Incomparable points.
	a, b := Pt(1, 5), Pt(5, 1)
	if Dominates(a, b, 0b00) || Dominates(b, a, 0b00) {
		t.Error("incomparable points should not dominate each other")
	}
}

func TestDominatesEq(t *testing.T) {
	if !DominatesEq(Pt(1, 1), Pt(1, 1), 0b00) {
		t.Error("DominatesEq should allow equality")
	}
	if !DominatesEq(Pt(0, 1), Pt(1, 1), 0b00) {
		t.Error("closer-or-equal point should weakly dominate")
	}
	if DominatesEq(Pt(2, 0), Pt(1, 1), 0b00) {
		t.Error("farther point should not weakly dominate")
	}
}

func TestStrictlyDominates(t *testing.T) {
	if !StrictlyDominates(Pt(1, 1), Pt(2, 2), 0b00) {
		t.Error("strictly closer point should strictly dominate w.r.t. 00")
	}
	if StrictlyDominates(Pt(1, 2), Pt(2, 2), 0b00) {
		t.Error("tie in one dimension must not strictly dominate")
	}
	if !StrictlyDominates(Pt(9, 9), Pt(5, 5), 0b11) {
		t.Error("strictly closer point should strictly dominate w.r.t. 11")
	}
	if StrictlyDominates(Pt(5, 5), Pt(5, 5), 0b11) {
		t.Error("a point never strictly dominates itself")
	}
	// Strict dominance implies Definition-4 dominance.
	if StrictlyDominates(Pt(1, 1), Pt(2, 2), 0b00) && !Dominates(Pt(1, 1), Pt(2, 2), 0b00) {
		t.Error("strict dominance must imply dominance")
	}
}

func TestSplice(t *testing.T) {
	p, q := Pt(2, 7), Pt(5, 3)
	// Mask 00 takes the minimum in both dimensions.
	if got := Splice(p, q, 0b00); !got.Equal(Pt(2, 3)) {
		t.Errorf("Splice 00 = %v, want (2,3)", got)
	}
	// Mask 11 takes the maximum in both dimensions.
	if got := Splice(p, q, 0b11); !got.Equal(Pt(5, 7)) {
		t.Errorf("Splice 11 = %v, want (5,7)", got)
	}
	// Mixed mask.
	if got := Splice(p, q, 0b01); !got.Equal(Pt(5, 3)) {
		t.Errorf("Splice 01 = %v, want (5,3)", got)
	}
	// Splice is symmetric in its point arguments.
	if !Splice(p, q, 0b10).Equal(Splice(q, p, 0b10)) {
		t.Error("Splice should be symmetric")
	}
}

// The paper's key example: c = splice of o1^11 and o4^11 with mask 00 clips
// more area w.r.t. corner R^11 than either source point.
func TestSpliceFartherFromCorner(t *testing.T) {
	r := R(0, 0, 10, 10)
	o1 := Pt(3, 9) // top-right corner of object 1 (high y, low x)
	o4 := Pt(9, 4) // top-right corner of object 4 (high x, low y)
	c := Splice(o1, o4, Corner(0b11).Opposite(2))
	want := Pt(3, 4)
	if !c.Equal(want) {
		t.Fatalf("splice = %v, want %v", c, want)
	}
	vol1 := r.CornerRect(o1, 0b11).Volume()
	vol4 := r.CornerRect(o4, 0b11).Volume()
	volC := r.CornerRect(c, 0b11).Volume()
	if volC <= vol1 || volC <= vol4 {
		t.Fatalf("spliced point should clip more: %g vs %g, %g", volC, vol1, vol4)
	}
}

func TestDominanceMatchesMBBMembership(t *testing.T) {
	// Dominance w.r.t. b is equivalent to membership in the MBB of {q, R^b}
	// (for distinct points) — the paper states this equivalence just after
	// Definition 4. Verify on random data.
	rng := rand.New(rand.NewSource(99))
	r := R(0, 0, 0, 100, 100, 100)
	for iter := 0; iter < 2000; iter++ {
		dims := 3
		p := make(Point, dims)
		q := make(Point, dims)
		for i := 0; i < dims; i++ {
			p[i] = rng.Float64() * 100
			q[i] = rng.Float64() * 100
		}
		Corners(dims, func(b Corner) {
			mbb := r.CornerRect(q, b)
			inMBB := mbb.ContainsPoint(p) && !p.Equal(q)
			dom := Dominates(p, q, b)
			if dom != inMBB {
				t.Fatalf("dominance/MBB mismatch: p=%v q=%v b=%s dom=%v inMBB=%v",
					p, q, b.StringDims(dims), dom, inMBB)
			}
		})
	}
}

// Property: dominance is irreflexive, antisymmetric and transitive for every
// corner orientation.
func TestDominancePartialOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 1000; iter++ {
		dims := 2 + rng.Intn(2)
		pts := make([]Point, 3)
		for i := range pts {
			pts[i] = make(Point, dims)
			for d := 0; d < dims; d++ {
				pts[i][d] = float64(rng.Intn(10)) // small ints force ties
			}
		}
		Corners(dims, func(b Corner) {
			a, c, e := pts[0], pts[1], pts[2]
			if Dominates(a, a, b) {
				t.Fatal("dominance must be irreflexive")
			}
			if Dominates(a, c, b) && Dominates(c, a, b) {
				t.Fatal("dominance must be antisymmetric")
			}
			if Dominates(a, c, b) && Dominates(c, e, b) && !Dominates(a, e, b) {
				t.Fatalf("dominance must be transitive: %v %v %v corner %s", a, c, e, b.StringDims(dims))
			}
		})
	}
}

// Property: the splice of p and q with mask ~b dominates-or-equals both p
// and q w.r.t. b reversed — i.e. it is always at least as far from corner b
// as either source (the reason stairline points clip more).
func TestSpliceDominanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 1000; iter++ {
		dims := 2 + rng.Intn(2)
		p := make(Point, dims)
		q := make(Point, dims)
		for d := 0; d < dims; d++ {
			p[d] = rng.Float64() * 10
			q[d] = rng.Float64() * 10
		}
		Corners(dims, func(b Corner) {
			s := Splice(p, q, b.Opposite(dims))
			// s must be weakly dominated by p and q w.r.t. b: i.e. p and q are
			// each at least as close to corner b as s in every dimension.
			if !DominatesEq(p, s, b) || !DominatesEq(q, s, b) {
				t.Fatalf("splice %v not farther from corner %s than sources %v %v",
					s, b.StringDims(dims), p, q)
			}
		})
	}
}

func TestCornerDistance(t *testing.T) {
	r := R(0, 0, 10, 10)
	if d := CornerDistance(r, Pt(10, 10), 0b11); d != 0 {
		t.Errorf("corner itself should have distance 0, got %g", d)
	}
	if d := CornerDistance(r, Pt(7, 6), 0b11); d != 7 {
		t.Errorf("CornerDistance = %g, want 7", d)
	}
}

func TestCloserToCorner(t *testing.T) {
	if !CloserToCorner(Pt(5, 0), Pt(3, 0), 0b01, 0) {
		t.Error("5 is closer than 3 to a max corner in dim 0")
	}
	if !CloserToCorner(Pt(1, 0), Pt(3, 0), 0b00, 0) {
		t.Error("1 is closer than 3 to a min corner in dim 0")
	}
	if CloserToCorner(Pt(3, 0), Pt(3, 0), 0b00, 0) {
		t.Error("equal coordinates are not strictly closer")
	}
}
