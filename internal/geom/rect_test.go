package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectValidation(t *testing.T) {
	if _, err := NewRect(Pt(0, 0), Pt(1, 1)); err != nil {
		t.Fatalf("valid rect rejected: %v", err)
	}
	if _, err := NewRect(Pt(2, 0), Pt(1, 1)); err == nil {
		t.Error("lo > hi should be rejected")
	}
	if _, err := NewRect(Pt(0, 0), Pt(1, 1, 1)); err == nil {
		t.Error("dimension mismatch should be rejected")
	}
	if _, err := NewRect(Pt(math.NaN(), 0), Pt(1, 1)); err == nil {
		t.Error("NaN should be rejected")
	}
	if _, err := NewRect(Pt(), Pt()); err == nil {
		t.Error("empty points should be rejected")
	}
}

func TestRConstructor(t *testing.T) {
	r := R(0, 0, 2, 3)
	if r.Dims() != 2 || r.Side(0) != 2 || r.Side(1) != 3 {
		t.Fatalf("unexpected rect %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd coordinate count should panic")
		}
	}()
	R(1, 2, 3)
}

func TestRectCorner(t *testing.T) {
	r := R(1, 2, 5, 8)
	cases := []struct {
		b    Corner
		want Point
	}{
		{0b00, Pt(1, 2)},
		{0b01, Pt(5, 2)},
		{0b10, Pt(1, 8)},
		{0b11, Pt(5, 8)},
	}
	for _, c := range cases {
		if got := r.Corner(c.b); !got.Equal(c.want) {
			t.Errorf("Corner(%s) = %v, want %v", c.b.StringDims(2), got, c.want)
		}
	}
}

func TestRectVolumeMarginCenter(t *testing.T) {
	r := R(0, 0, 0, 2, 3, 4)
	if r.Volume() != 24 {
		t.Errorf("Volume = %g, want 24", r.Volume())
	}
	if r.Margin() != 9 {
		t.Errorf("Margin = %g, want 9", r.Margin())
	}
	if !r.Center().Equal(Pt(1, 1.5, 2)) {
		t.Errorf("Center = %v", r.Center())
	}
	if PointRect(Pt(1, 1)).Volume() != 0 {
		t.Error("point rect should have zero volume")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.ContainsPoint(Pt(0, 0)) || !r.ContainsPoint(Pt(10, 10)) || !r.ContainsPoint(Pt(5, 5)) {
		t.Error("boundary and interior points should be contained")
	}
	if r.ContainsPoint(Pt(10.001, 5)) {
		t.Error("outside point should not be contained")
	}
	if !r.ContainsRect(R(1, 1, 9, 9)) || !r.ContainsRect(r) {
		t.Error("inner rect and self should be contained")
	}
	if r.ContainsRect(R(1, 1, 11, 9)) {
		t.Error("overflowing rect should not be contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := R(0, 0, 5, 5)
	cases := []struct {
		b    Rect
		want bool
	}{
		{R(1, 1, 2, 2), true},
		{R(5, 5, 6, 6), true}, // touching corner counts
		{R(6, 6, 7, 7), false},
		{R(-1, -1, 0, 6), true}, // touching edge
		{R(2, 6, 3, 7), false},
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects(%v) = %v, want %v", i, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestRectIntersectionUnion(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(2, 2, 6, 6)
	got, ok := a.Intersection(b)
	if !ok || !got.Equal(R(2, 2, 4, 4)) {
		t.Errorf("Intersection = %v ok=%v", got, ok)
	}
	if _, ok := a.Intersection(R(5, 5, 6, 6)); ok {
		t.Error("disjoint rects should have no intersection")
	}
	if !a.Union(b).Equal(R(0, 0, 6, 6)) {
		t.Errorf("Union = %v", a.Union(b))
	}
	if ov := a.OverlapVolume(b); ov != 4 {
		t.Errorf("OverlapVolume = %g, want 4", ov)
	}
	if a.OverlapVolume(R(4, 0, 8, 4)) != 0 {
		t.Error("touching rects overlap volume should be 0")
	}
}

func TestRectUnionZero(t *testing.T) {
	var z Rect
	r := R(1, 1, 2, 2)
	if !z.Union(r).Equal(r) || !r.Union(z).Equal(r) {
		t.Error("union with zero rect should return the other rect")
	}
	if !z.UnionPoint(Pt(3, 4)).Equal(PointRect(Pt(3, 4))) {
		t.Error("UnionPoint on zero rect should give point rect")
	}
}

func TestRectEnlargement(t *testing.T) {
	a := R(0, 0, 2, 2)
	if e := a.Enlargement(R(1, 1, 3, 3)); math.Abs(e-5) > 1e-12 {
		t.Errorf("Enlargement = %g, want 5", e)
	}
	if e := a.Enlargement(R(0.5, 0.5, 1, 1)); e != 0 {
		t.Errorf("contained rect should not enlarge, got %g", e)
	}
}

func TestRectCornerRect(t *testing.T) {
	r := R(0, 0, 10, 10)
	cr := r.CornerRect(Pt(7, 8), 0b11)
	if !cr.Equal(R(7, 8, 10, 10)) {
		t.Errorf("CornerRect = %v", cr)
	}
	cr = r.CornerRect(Pt(3, 4), 0b00)
	if !cr.Equal(R(0, 0, 3, 4)) {
		t.Errorf("CornerRect = %v", cr)
	}
}

func TestMBROf(t *testing.T) {
	m := MBROf([]Rect{R(0, 0, 1, 1), R(5, -2, 6, 3)})
	if !m.Equal(R(0, -2, 6, 3)) {
		t.Errorf("MBROf = %v", m)
	}
	if !MBROf(nil).IsZero() {
		t.Error("MBROf(nil) should be zero rect")
	}
	mp := MBROfPoints([]Point{Pt(1, 1), Pt(-1, 4)})
	if !mp.Equal(R(-1, 1, 1, 4)) {
		t.Errorf("MBROfPoints = %v", mp)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(0, 0, 4, 4)
	if !r.Expand(1).Equal(R(-1, -1, 5, 5)) {
		t.Error("Expand(1) wrong")
	}
	shrunk := r.Expand(-3)
	if !shrunk.Equal(R(2, 2, 2, 2)) {
		t.Errorf("over-shrinking should collapse to centre, got %v", shrunk)
	}
}

func TestRectMinDistSq(t *testing.T) {
	r := R(0, 0, 2, 2)
	if r.MinDistSq(Pt(1, 1)) != 0 {
		t.Error("inside point should have 0 distance")
	}
	if d := r.MinDistSq(Pt(5, 2)); d != 9 {
		t.Errorf("MinDistSq = %g, want 9", d)
	}
	if d := r.MinDistSq(Pt(5, 6)); d != 25 {
		t.Errorf("MinDistSq = %g, want 25", d)
	}
}

func randomRect(rng *rand.Rand, dims int) Rect {
	lo := make(Point, dims)
	hi := make(Point, dims)
	for i := 0; i < dims; i++ {
		a := rng.Float64()*200 - 100
		b := a + rng.Float64()*50
		lo[i], hi[i] = a, b
	}
	return Rect{Lo: lo, Hi: hi}
}

// Property: union contains both operands; intersection (when it exists) is
// contained in both; overlap volume is symmetric and bounded by min volume.
func TestRectAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		dims := 2 + rng.Intn(2)
		a, b := randomRect(rng, dims), randomRect(rng, dims)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("union %v does not contain operands %v %v", u, a, b)
		}
		if inter, ok := a.Intersection(b); ok {
			if !a.ContainsRect(inter) || !b.ContainsRect(inter) {
				t.Fatalf("intersection %v escapes operands", inter)
			}
			if !a.Intersects(b) {
				t.Fatal("Intersection ok but Intersects false")
			}
		} else if a.Intersects(b) {
			t.Fatal("Intersects true but Intersection not ok")
		}
		ov1, ov2 := a.OverlapVolume(b), b.OverlapVolume(a)
		if math.Abs(ov1-ov2) > 1e-9 {
			t.Fatalf("overlap volume not symmetric: %g vs %g", ov1, ov2)
		}
		if ov1 > a.Volume()+1e-9 || ov1 > b.Volume()+1e-9 {
			t.Fatalf("overlap volume exceeds operand volume")
		}
	}
}

// Property: every corner returned by Corner is a vertex of the rectangle and
// CornerRect(p, b) always contains both p and the corner.
func TestRectCornerProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		dims := 2 + rng.Intn(2)
		r := randomRect(rng, dims)
		Corners(dims, func(b Corner) {
			c := r.Corner(b)
			if !r.ContainsPoint(c) {
				t.Fatalf("corner %v outside rect %v", c, r)
			}
			// random interior point
			p := make(Point, dims)
			for i := 0; i < dims; i++ {
				p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
			}
			cr := r.CornerRect(p, b)
			if !cr.ContainsPoint(p) || !cr.ContainsPoint(c) {
				t.Fatalf("CornerRect %v misses p=%v or corner=%v", cr, p, c)
			}
			if !r.ContainsRect(cr) {
				t.Fatalf("CornerRect %v escapes rect %v", cr, r)
			}
		})
	}
}

// Property (quick): volume of union >= max volume of operands.
func TestUnionVolumeProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(math.Abs(v), 100)
		}
		a := R(norm(ax), norm(ay), norm(ax)+norm(aw), norm(ay)+norm(ah))
		b := R(norm(bx), norm(by), norm(bx)+norm(bw), norm(by)+norm(bh))
		u := a.Union(b)
		return u.Volume() >= a.Volume()-1e-9 && u.Volume() >= b.Volume()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
