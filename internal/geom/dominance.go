package geom

// This file implements the oriented-dominance machinery of Section III of
// the paper (Definitions 4 and 6). Dominance is always relative to a corner
// bitmask b of an enclosing rectangle: p dominates q w.r.t. b when p is at
// least as close to the corner R^b as q in every dimension and strictly
// closer in at least one. Equivalently (and how it is used in Algorithm 2):
// p ≺_b q iff p lies inside the MBB of {q, R^b} and p != q.

// Dominates reports whether p dominates q with respect to corner b
// (Definition 4). Bit i of b set means the corner maximises dimension i, so
// "closer to the corner" in that dimension means "greater or equal".
func Dominates(p, q Point, b Corner) bool {
	allGE := true // p at least as close as q in every dimension
	strict := false
	for i := range p {
		if b.Bit(i) {
			// Corner maximises dimension i: closer means larger.
			if p[i] < q[i] {
				allGE = false
				break
			}
			if p[i] > q[i] {
				strict = true
			}
		} else {
			// Corner minimises dimension i: closer means smaller.
			if p[i] > q[i] {
				allGE = false
				break
			}
			if p[i] < q[i] {
				strict = true
			}
		}
	}
	return allGE && strict
}

// DominatesEq reports whether p dominates-or-equals q with respect to corner
// b, i.e. p is at least as close to the corner as q in every dimension
// (ties allowed everywhere). Algorithm 2's pruning test uses this weak form:
// if the query corner is at least as close to the MBB corner as the clip
// point in every dimension, the query lies entirely in clipped dead space.
func DominatesEq(p, q Point, b Corner) bool {
	for i := range p {
		if b.Bit(i) {
			if p[i] < q[i] {
				return false
			}
		} else {
			if p[i] > q[i] {
				return false
			}
		}
	}
	return true
}

// StrictlyDominates reports whether p is strictly closer to corner R^b than
// q in every dimension. This is the exact condition under which the open
// interior of the corner rectangle spanned by q (the region q would clip
// away) contains part of the axis-aligned object whose nearest corner to R^b
// is p. It is therefore the test used both to validate generated splice
// points and to decide whether a query/insert rectangle falls entirely into
// clipped dead space: boundary contact never counts.
func StrictlyDominates(p, q Point, b Corner) bool {
	for i := range p {
		if b.Bit(i) {
			if p[i] <= q[i] {
				return false
			}
		} else {
			if p[i] >= q[i] {
				return false
			}
		}
	}
	return true
}

// Splice returns the splice point b(p, q) of Definition 6: dimension i takes
// max(p[i], q[i]) when bit i of b is set and min(p[i], q[i]) otherwise.
// Splicing with mask ~b therefore produces the point between p and q that is
// farthest from corner R^b, which is how stairline candidates are generated.
func Splice(p, q Point, b Corner) Point {
	r := make(Point, len(p))
	SpliceInto(r, p, q, b)
	return r
}

// SpliceInto writes the splice point b(p, q) into dst, which must have the
// same dimensionality as p and q. It is the allocation-free form of Splice
// for callers that own a scratch point (the stairline generator computes
// every candidate pair but keeps only the valid ones).
func SpliceInto(dst, p, q Point, b Corner) {
	for i := range p {
		if b.Bit(i) {
			if p[i] >= q[i] {
				dst[i] = p[i]
			} else {
				dst[i] = q[i]
			}
		} else {
			if p[i] <= q[i] {
				dst[i] = p[i]
			} else {
				dst[i] = q[i]
			}
		}
	}
}

// CloserToCorner reports whether p is strictly closer to corner R^b than q
// in dimension i (used by skyline sorting).
func CloserToCorner(p, q Point, b Corner, i int) bool {
	if b.Bit(i) {
		return p[i] > q[i]
	}
	return p[i] < q[i]
}

// CornerDistance returns a monotone "distance from the corner" measure for
// sorting candidate clip points: the L1 distance from p to the corner R^b of
// rect. Larger values are farther from the corner and therefore clip more.
func CornerDistance(rect Rect, p Point, b Corner) float64 {
	c := rect.Corner(b)
	var s float64
	for i := range p {
		d := p[i] - c[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
