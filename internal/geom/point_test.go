package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPtAndDims(t *testing.T) {
	p := Pt(1, 2, 3)
	if p.Dims() != 3 {
		t.Fatalf("Dims() = %d, want 3", p.Dims())
	}
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatalf("unexpected coords: %v", p)
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := Pt(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone is not independent: %v", p)
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(1, 2), Pt(1, 2), true},
		{Pt(1, 2), Pt(1, 3), false},
		{Pt(1, 2), Pt(1, 2, 3), false},
		{Pt(), Pt(), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestPointApproxEqual(t *testing.T) {
	if !Pt(1, 2).ApproxEqual(Pt(1.0000001, 2), 1e-5) {
		t.Error("expected approx equal within eps")
	}
	if Pt(1, 2).ApproxEqual(Pt(1.1, 2), 1e-5) {
		t.Error("expected not approx equal outside eps")
	}
}

func TestPointDist(t *testing.T) {
	d := Pt(0, 0).Dist(Pt(3, 4))
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if Pt(1, 1).DistSq(Pt(1, 1)) != 0 {
		t.Fatal("DistSq of identical points should be 0")
	}
}

func TestPointArithmetic(t *testing.T) {
	a, b := Pt(1, 2), Pt(3, 5)
	if !a.Add(b).Equal(Pt(4, 7)) {
		t.Error("Add wrong")
	}
	if !b.Sub(a).Equal(Pt(2, 3)) {
		t.Error("Sub wrong")
	}
	if !a.Scale(2).Equal(Pt(2, 4)) {
		t.Error("Scale wrong")
	}
	if !a.Min(b).Equal(Pt(1, 2)) || !a.Max(b).Equal(Pt(3, 5)) {
		t.Error("Min/Max wrong")
	}
}

func TestPointValid(t *testing.T) {
	if !Pt(1, 2).Valid() {
		t.Error("finite point should be valid")
	}
	if Pt(math.NaN(), 0).Valid() {
		t.Error("NaN point should be invalid")
	}
	if Pt(math.Inf(1), 0).Valid() {
		t.Error("Inf point should be invalid")
	}
	if (Point{}).Valid() {
		t.Error("empty point should be invalid")
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1, 2.5).String(); s != "(1, 2.5)" {
		t.Fatalf("String = %q", s)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality for
// random 3d points.
func TestPointDistProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay), clamp(az))
		b := Pt(clamp(bx), clamp(by), clamp(bz))
		c := Pt(clamp(cx), clamp(cy), clamp(cz))
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
