package geom

import (
	"errors"
	"fmt"
	"math"
)

// Rect is an axis-aligned hyperrectangle <Lo, Hi> (the paper's <l, u>). Lo
// holds the minimum extent and Hi the maximum extent in every dimension. A
// degenerate rectangle with Lo == Hi represents a point object; rectangles
// may be flat in any subset of dimensions (line segments, planes).
type Rect struct {
	Lo, Hi Point
}

// ErrInvalidRect is returned by constructors when the given extents do not
// define a rectangle (mismatched dimensionality, Lo > Hi, or non-finite
// coordinates).
var ErrInvalidRect = errors.New("geom: invalid rectangle")

// NewRect builds a rectangle from its minimum and maximum corner, validating
// the input.
func NewRect(lo, hi Point) (Rect, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return Rect{}, fmt.Errorf("%w: dims %d vs %d", ErrInvalidRect, len(lo), len(hi))
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) || math.IsInf(lo[i], 0) || math.IsInf(hi[i], 0) {
			return Rect{}, fmt.Errorf("%w: non-finite coordinate in dimension %d", ErrInvalidRect, i)
		}
		if lo[i] > hi[i] {
			return Rect{}, fmt.Errorf("%w: lo[%d]=%g > hi[%d]=%g", ErrInvalidRect, i, lo[i], i, hi[i])
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// MustRect is NewRect that panics on invalid input; it is intended for
// literals in tests and examples.
func MustRect(lo, hi Point) Rect {
	r, err := NewRect(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// R is a compact constructor for tests: R(x1,y1, x2,y2) in 2d,
// R(x1,y1,z1, x2,y2,z2) in 3d. It panics on invalid input.
func R(coords ...float64) Rect {
	if len(coords)%2 != 0 || len(coords) == 0 {
		panic("geom: R requires an even, positive number of coordinates")
	}
	d := len(coords) / 2
	return MustRect(Pt(coords[:d]...), Pt(coords[d:]...))
}

// PointRect returns the degenerate rectangle covering exactly the point p.
func PointRect(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dims reports the dimensionality of r.
func (r Rect) Dims() int { return len(r.Lo) }

// IsZero reports whether r is the zero value (no extent set at all).
func (r Rect) IsZero() bool { return len(r.Lo) == 0 && len(r.Hi) == 0 }

// Valid reports whether r is a well-formed rectangle.
func (r Rect) Valid() bool {
	if len(r.Lo) == 0 || len(r.Lo) != len(r.Hi) {
		return false
	}
	for i := range r.Lo {
		if math.IsNaN(r.Lo[i]) || math.IsNaN(r.Hi[i]) ||
			math.IsInf(r.Lo[i], 0) || math.IsInf(r.Hi[i], 0) ||
			r.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Equal reports whether r and s describe the same rectangle.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// ApproxEqual reports whether r and s agree to within eps on every extent.
func (r Rect) ApproxEqual(s Rect, eps float64) bool {
	return r.Lo.ApproxEqual(s.Lo, eps) && r.Hi.ApproxEqual(s.Hi, eps)
}

// Corner returns the corner R^b of r identified by bitmask b: dimension i is
// Hi[i] when bit i of b is set and Lo[i] otherwise.
func (r Rect) Corner(b Corner) Point {
	p := make(Point, len(r.Lo))
	for i := range r.Lo {
		if b.Bit(i) {
			p[i] = r.Hi[i]
		} else {
			p[i] = r.Lo[i]
		}
	}
	return p
}

// Center returns the centroid of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Side returns the extent of r along dimension i.
func (r Rect) Side(i int) float64 { return r.Hi[i] - r.Lo[i] }

// Volume returns the d-dimensional volume (area in 2d) of r. Degenerate
// rectangles and the zero Rect have zero volume.
func (r Rect) Volume() float64 {
	if len(r.Lo) == 0 {
		return 0
	}
	v := 1.0
	for i := range r.Lo {
		v *= r.Hi[i] - r.Lo[i]
	}
	return v
}

// Margin returns the sum of the side lengths of r (half the perimeter in 2d,
// a quarter of the total edge length in 3d); this is the "margin" objective
// used by the R*-tree split algorithm.
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// ContainsPoint reports whether p lies inside r (boundaries inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r (boundaries
// inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point (touching
// boundaries count as intersecting, as is conventional for MBB filtering).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the overlap rectangle of r and s and whether it is
// non-empty. When the rectangles merely touch, the returned rectangle is
// degenerate but ok is still true.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// IntersectionMeasures returns the volume and margin of r ∩ s without
// materialising the intersection rectangle, and whether the two intersect
// at all (touching counts, with zero volume but positive margin, exactly
// like Intersection).
func (r Rect) IntersectionMeasures(s Rect) (vol, margin float64, ok bool) {
	vol = 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if lo > hi {
			return 0, 0, false
		}
		vol *= hi - lo
		margin += hi - lo
	}
	return vol, margin, true
}

// OverlapVolume returns the volume of the intersection of r and s (zero when
// they are disjoint or only touch).
func (r Rect) OverlapVolume(s Rect) float64 {
	v := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Union returns the MBB of r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsZero() {
		return s.Clone()
	}
	if s.IsZero() {
		return r.Clone()
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnionPoint returns the MBB of r and the point p.
func (r Rect) UnionPoint(p Point) Rect {
	if r.IsZero() {
		return PointRect(p)
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], p[i])
		hi[i] = math.Max(r.Hi[i], p[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Enlargement returns how much the volume of r grows when extended to also
// cover s: Volume(r ∪ s) - Volume(r). This is the classic Guttman insertion
// criterion. It is on the insertion hot path and therefore computes the
// union's volume without materialising the union rectangle.
func (r Rect) Enlargement(s Rect) float64 {
	if r.IsZero() || s.IsZero() {
		return r.Union(s).Volume() - r.Volume()
	}
	uv, rv := 1.0, 1.0
	for i := range r.Lo {
		lo, hi := r.Lo[i], r.Hi[i]
		rv *= hi - lo
		if s.Lo[i] < lo {
			lo = s.Lo[i]
		}
		if s.Hi[i] > hi {
			hi = s.Hi[i]
		}
		uv *= hi - lo
	}
	return uv - rv
}

// MarginEnlargement returns how much the margin of r grows when extended to
// also cover s; the RR*-tree uses perimeter-based goals for degenerate
// (zero-volume) rectangles. Like Enlargement it avoids materialising the
// union.
func (r Rect) MarginEnlargement(s Rect) float64 {
	if r.IsZero() || s.IsZero() {
		return r.Union(s).Margin() - r.Margin()
	}
	var um, rm float64
	for i := range r.Lo {
		lo, hi := r.Lo[i], r.Hi[i]
		rm += hi - lo
		if s.Lo[i] < lo {
			lo = s.Lo[i]
		}
		if s.Hi[i] > hi {
			hi = s.Hi[i]
		}
		um += hi - lo
	}
	return um - rm
}

// UnionVolume returns Volume(r ∪ s) without materialising the union.
func (r Rect) UnionVolume(s Rect) float64 {
	if r.IsZero() || s.IsZero() {
		return r.Union(s).Volume()
	}
	v := 1.0
	for i := range r.Lo {
		lo, hi := r.Lo[i], r.Hi[i]
		if s.Lo[i] < lo {
			lo = s.Lo[i]
		}
		if s.Hi[i] > hi {
			hi = s.Hi[i]
		}
		v *= hi - lo
	}
	return v
}

// Extend grows r in place to also cover s and returns it. The receiver must
// own its coordinate slices (e.g. a Clone); extending a zero r returns a
// clone of s instead.
func (r Rect) Extend(s Rect) Rect {
	if s.IsZero() {
		return r
	}
	if r.IsZero() {
		return s.Clone()
	}
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
	return r
}

// MinDistSq returns the squared minimum distance from point p to rectangle r
// (zero when p lies inside r). Used by nearest-neighbour style traversals.
func (r Rect) MinDistSq(p Point) float64 {
	var s float64
	for i := range r.Lo {
		switch {
		case p[i] < r.Lo[i]:
			d := r.Lo[i] - p[i]
			s += d * d
		case p[i] > r.Hi[i]:
			d := p[i] - r.Hi[i]
			s += d * d
		}
	}
	return s
}

// CornerRect returns the rectangle spanned between point p and the corner
// R^b of r, i.e. the MBB of {p, R^b}. Per Definition 2 of the paper this is
// exactly the region that the clip point <p, b> would clip away.
func (r Rect) CornerRect(p Point, b Corner) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		c := r.Lo[i]
		if b.Bit(i) {
			c = r.Hi[i]
		}
		lo[i] = math.Min(p[i], c)
		hi[i] = math.Max(p[i], c)
	}
	return Rect{Lo: lo, Hi: hi}
}

// MBROf computes the minimum bounding box of a set of rectangles. It returns
// the zero Rect for an empty input.
func MBROf(rects []Rect) Rect {
	var out Rect
	for _, r := range rects {
		if r.IsZero() {
			continue
		}
		if out.IsZero() {
			out = r.Clone()
			continue
		}
		out = out.Extend(r)
	}
	return out
}

// MBROfPoints computes the minimum bounding box of a set of points. It
// returns the zero Rect for an empty input.
func MBROfPoints(pts []Point) Rect {
	var out Rect
	for _, p := range pts {
		out = out.UnionPoint(p)
	}
	return out
}

// Expand returns r grown by delta on every side (shrunk when delta is
// negative; extents collapse to the centre rather than inverting).
func (r Rect) Expand(delta float64) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = r.Lo[i] - delta
		hi[i] = r.Hi[i] + delta
		if lo[i] > hi[i] {
			mid := (r.Lo[i] + r.Hi[i]) / 2
			lo[i], hi[i] = mid, mid
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// String renders r as "[lo -> hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s -> %s]", r.Lo, r.Hi)
}
