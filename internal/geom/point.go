// Package geom provides the d-dimensional geometric primitives that underlie
// the clipped-bounding-box (CBB) library: points, axis-aligned rectangles
// (MBBs), corner bitmasks, oriented dominance, and splice points.
//
// The notation follows Šidlauskas et al., "Improving Spatial Data Processing
// by Clipping Minimum Bounding Boxes" (ICDE 2018), Section III: a rectangle R
// is a pair of points <l, u>; a corner of R is addressed by a bitmask b whose
// i-th bit selects u[i] (set) or l[i] (clear); a point p dominates q with
// respect to corner b when p is at least as close to R^b as q in every
// dimension and differs in at least one.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in d-dimensional space. The dimensionality is the length
// of the slice; the library works for any d >= 1 and is exercised for d = 2
// and d = 3, like the paper.
type Point []float64

// NewPoint returns a zero point of the given dimensionality.
func NewPoint(dims int) Point {
	return make(Point, dims)
}

// Pt is a convenience constructor: Pt(1, 2, 3) is the 3-dimensional point
// (1, 2, 3).
func Pt(coords ...float64) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Dims reports the dimensionality of p.
func (p Point) Dims() int { return len(p) }

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether p and q agree to within eps in every dimension.
func (p Point) ApproxEqual(q Point, eps float64) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > eps {
			return false
		}
	}
	return true
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.DistSq(q))
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns p scaled by s component-wise.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Min returns the component-wise minimum of p and q.
func (p Point) Min(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Min(p[i], q[i])
	}
	return r
}

// Max returns the component-wise maximum of p and q.
func (p Point) Max(q Point) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = math.Max(p[i], q[i])
	}
	return r
}

// Valid reports whether every coordinate of p is a finite number.
func (p Point) Valid() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return len(p) > 0
}

// String renders p as "(x, y, ...)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
