// Package skyline computes oriented skylines and stairlines over point sets,
// the candidate-generation machinery behind both clipped-bounding-box
// variants of Šidlauskas et al. (ICDE 2018):
//
//   - The oriented skyline (Definition 5) of the child corner points with
//     respect to an MBB corner b is exactly the set of valid object-situated
//     clip points (CSKY).
//   - The oriented stairline (Definition 7) additionally splices pairs of
//     skyline points with mask ~b and keeps the splices that are themselves
//     valid clip points, producing strictly more aggressive clip points
//     (CSTA).
//
// The skyline is computed with a sort-and-scan algorithm that is O(n log n)
// for two dimensions and O(n²) worst case in higher dimensions, which is the
// standard approach for the tiny inputs involved (at most the node fan-out M).
package skyline

import (
	"math"
	"slices"

	"cbb/internal/geom"
)

// Oriented returns the skyline of pts with respect to corner orientation b:
// the subset of points not dominated by any other point (Definition 5).
// Duplicate points are collapsed to a single representative. The result is
// ordered by descending distance from the corner is NOT guaranteed; callers
// that need an order should sort the result themselves.
//
// The input slice is not modified. Returned points may alias the coordinate
// storage of the input points (this sits on the clip-construction hot path,
// where the caller owns per-corner scratch buffers); callers that retain the
// result beyond the lifetime of pts must clone the points they keep.
func Oriented(pts []geom.Point, b geom.Corner) []geom.Point {
	switch len(pts) {
	case 0:
		return nil
	case 1:
		return []geom.Point{pts[0]}
	}
	dims := pts[0].Dims()
	if dims == 2 {
		return oriented2D(pts, b)
	}
	return orientedGeneric(pts, b)
}

// oriented2D computes the skyline with a sort-and-scan pass: sort by
// closeness to the corner in dimension 0 (ties broken by dimension 1), then
// keep points whose dimension-1 coordinate improves on the best seen so far.
// The index slice lives on the stack for realistic fan-outs and the sort is
// a direct slices.SortFunc (no reflection-based swapper).
func oriented2D(pts []geom.Point, b geom.Corner) []geom.Point {
	var ibuf [64]int32
	idx := ibuf[:0]
	if len(pts) > len(ibuf) {
		idx = make([]int32, 0, len(pts))
	}
	for i := range pts {
		idx = append(idx, int32(i))
	}
	slices.SortFunc(idx, func(x, y int32) int {
		p, q := pts[x], pts[y]
		if p[0] != q[0] {
			if geom.CloserToCorner(p, q, b, 0) {
				return -1
			}
			return 1
		}
		if p[1] != q[1] {
			if geom.CloserToCorner(p, q, b, 1) {
				return -1
			}
			return 1
		}
		return 0
	})
	out := make([]geom.Point, 0, len(pts))
	haveBest := false
	var best float64
	better := func(v float64) bool {
		if !haveBest {
			return true
		}
		if b.Bit(1) {
			return v > best
		}
		return v < best
	}
	var prev geom.Point
	for _, i := range idx {
		p := pts[i]
		if prev != nil && p.Equal(prev) {
			continue
		}
		prev = p
		if better(p[1]) {
			out = append(out, p)
			best = p[1]
			haveBest = true
		}
	}
	return out
}

// orientedGeneric computes the skyline by pairwise dominance checks. With
// node fan-outs of a few dozen to a few hundred entries this is entirely
// adequate and is also what the paper assumes ("small input sets (< M)").
func orientedGeneric(pts []geom.Point, b geom.Corner) []geom.Point {
	out := make([]geom.Point, 0, len(pts))
	for i, p := range pts {
		dominated := false
		duplicate := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Equal(p) {
				// Keep only the first occurrence of duplicates.
				if j < i {
					duplicate = true
					break
				}
				continue
			}
			if geom.Dominates(q, p, b) {
				dominated = true
				break
			}
		}
		if !dominated && !duplicate {
			out = append(out, p)
		}
	}
	return out
}

// Stairline returns the union of the oriented skyline of pts w.r.t. b and
// all valid splice points generated from pairs of skyline points
// (Definition 7). A splice point s = splice(p, q, ~b) is valid when no
// skyline point dominates it w.r.t. b — i.e. when clipping with s would not
// clip away any child. Skyline points that are themselves dominated by a
// generated splice point are redundant for clipping purposes but are still
// returned; the CBB scoring stage in internal/core decides which candidates
// to keep.
//
// The cost is cubic in the skyline size (pairs × validation scan), matching
// the paper's "unfortunately-cubic algorithm that is still practically
// reasonable given the small input sets". Splices are computed into a stack
// scratch point and only the accepted ones are materialised, so rejected
// pairs cost no allocation. Like Oriented, returned skyline points may alias
// the input points; splice points are freshly allocated.
func Stairline(pts []geom.Point, b geom.Corner) []geom.Point {
	sky := Oriented(pts, b)
	if len(sky) < 2 {
		return sky
	}
	dims := sky[0].Dims()
	inv := b.Opposite(dims)
	out := make([]geom.Point, len(sky), len(sky)+8)
	copy(out, sky)
	var sbuf [8]float64
	s := geom.Point(sbuf[:])
	if dims > len(sbuf) {
		s = make(geom.Point, dims)
	} else {
		s = s[:dims]
	}
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			geom.SpliceInto(s, sky[i], sky[j], inv)
			if containsBits(out, s) {
				continue
			}
			if spliceValid(s, sky, b) {
				out = append(out, s.Clone())
			}
		}
	}
	return out
}

// SplicesOnly returns just the valid splice points (stairline minus the
// skyline). Useful for analysing how much the splicing step adds.
func SplicesOnly(pts []geom.Point, b geom.Corner) []geom.Point {
	sky := Oriented(pts, b)
	if len(sky) < 2 {
		return nil
	}
	dims := sky[0].Dims()
	inv := b.Opposite(dims)
	var out []geom.Point
	seen := append([]geom.Point(nil), sky...)
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			s := geom.Splice(sky[i], sky[j], inv)
			if containsBits(seen, s) {
				continue
			}
			if spliceValid(s, sky, b) {
				out = append(out, s)
				seen = append(seen, s)
			}
		}
	}
	return out
}

// spliceValid reports whether the splice point s is a valid clip point
// candidate w.r.t. corner b given the skyline points of the children
// (Line 6 of Algorithm 1): s is valid iff no child corner lies strictly
// inside the region s would clip away. A child's nearest corner q cuts into
// the open interior of that region exactly when q is strictly closer to the
// MBB corner than s in every dimension, so boundary contact (as with the
// spliced point c in the paper's Figure 2, which touches o1 and o4) does not
// invalidate a splice.
func spliceValid(s geom.Point, sky []geom.Point, b geom.Corner) bool {
	for _, q := range sky {
		if geom.StrictlyDominates(q, s, b) {
			return false
		}
	}
	return true
}

// IsDominated reports whether p is dominated w.r.t. b by any point in set.
func IsDominated(p geom.Point, set []geom.Point, b geom.Corner) bool {
	for _, q := range set {
		if geom.Dominates(q, p, b) {
			return true
		}
	}
	return false
}

// containsBits reports whether set holds a point with exactly the bit
// patterns of p. It replaces the string-keyed map the dedupe step used to
// build per corner, with identical semantics (±0 are distinct, NaNs are
// equal iff their payloads match); candidate sets are at most the node
// fan-out plus a handful of splices, so a linear scan beats hashing.
func containsBits(set []geom.Point, p geom.Point) bool {
	for _, q := range set {
		if bitsEqual(q, p) {
			return true
		}
	}
	return false
}

func bitsEqual(p, q geom.Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Float64bits(p[i]) != math.Float64bits(q[i]) {
			return false
		}
	}
	return true
}
