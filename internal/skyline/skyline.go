// Package skyline computes oriented skylines and stairlines over point sets,
// the candidate-generation machinery behind both clipped-bounding-box
// variants of Šidlauskas et al. (ICDE 2018):
//
//   - The oriented skyline (Definition 5) of the child corner points with
//     respect to an MBB corner b is exactly the set of valid object-situated
//     clip points (CSKY).
//   - The oriented stairline (Definition 7) additionally splices pairs of
//     skyline points with mask ~b and keeps the splices that are themselves
//     valid clip points, producing strictly more aggressive clip points
//     (CSTA).
//
// The skyline is computed with a sort-and-scan algorithm that is O(n log n)
// for two dimensions and O(n²) worst case in higher dimensions, which is the
// standard approach for the tiny inputs involved (at most the node fan-out M).
package skyline

import (
	"math"
	"sort"

	"cbb/internal/geom"
)

// Oriented returns the skyline of pts with respect to corner orientation b:
// the subset of points not dominated by any other point (Definition 5).
// Duplicate points are collapsed to a single representative. The result is
// ordered by descending distance from the corner is NOT guaranteed; callers
// that need an order should sort the result themselves.
//
// The input slice is not modified.
func Oriented(pts []geom.Point, b geom.Corner) []geom.Point {
	switch len(pts) {
	case 0:
		return nil
	case 1:
		return []geom.Point{pts[0].Clone()}
	}
	dims := pts[0].Dims()
	if dims == 2 {
		return oriented2D(pts, b)
	}
	return orientedGeneric(pts, b)
}

// oriented2D computes the skyline with a sort-and-scan pass: sort by
// closeness to the corner in dimension 0 (ties broken by dimension 1), then
// keep points whose dimension-1 coordinate improves on the best seen so far.
func oriented2D(pts []geom.Point, b geom.Corner) []geom.Point {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		p, q := pts[idx[x]], pts[idx[y]]
		if p[0] != q[0] {
			return geom.CloserToCorner(p, q, b, 0)
		}
		if p[1] != q[1] {
			return geom.CloserToCorner(p, q, b, 1)
		}
		return false
	})
	var out []geom.Point
	haveBest := false
	var best float64
	better := func(v float64) bool {
		if !haveBest {
			return true
		}
		if b.Bit(1) {
			return v > best
		}
		return v < best
	}
	var prev geom.Point
	for _, i := range idx {
		p := pts[i]
		if prev != nil && p.Equal(prev) {
			continue
		}
		prev = p
		if better(p[1]) {
			out = append(out, p.Clone())
			best = p[1]
			haveBest = true
		}
	}
	return out
}

// orientedGeneric computes the skyline by pairwise dominance checks. With
// node fan-outs of a few dozen to a few hundred entries this is entirely
// adequate and is also what the paper assumes ("small input sets (< M)").
func orientedGeneric(pts []geom.Point, b geom.Corner) []geom.Point {
	var out []geom.Point
	for i, p := range pts {
		dominated := false
		duplicate := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Equal(p) {
				// Keep only the first occurrence of duplicates.
				if j < i {
					duplicate = true
					break
				}
				continue
			}
			if geom.Dominates(q, p, b) {
				dominated = true
				break
			}
		}
		if !dominated && !duplicate {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Stairline returns the union of the oriented skyline of pts w.r.t. b and
// all valid splice points generated from pairs of skyline points
// (Definition 7). A splice point s = splice(p, q, ~b) is valid when no
// skyline point dominates it w.r.t. b — i.e. when clipping with s would not
// clip away any child. Skyline points that are themselves dominated by a
// generated splice point are redundant for clipping purposes but are still
// returned; the CBB scoring stage in internal/core decides which candidates
// to keep.
//
// The cost is cubic in the skyline size (pairs × validation scan), matching
// the paper's "unfortunately-cubic algorithm that is still practically
// reasonable given the small input sets".
func Stairline(pts []geom.Point, b geom.Corner) []geom.Point {
	sky := Oriented(pts, b)
	if len(sky) < 2 {
		return sky
	}
	dims := sky[0].Dims()
	inv := b.Opposite(dims)
	out := make([]geom.Point, len(sky))
	copy(out, sky)
	seen := make(map[string]struct{}, len(sky))
	for _, p := range sky {
		seen[key(p)] = struct{}{}
	}
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			s := geom.Splice(sky[i], sky[j], inv)
			k := key(s)
			if _, dup := seen[k]; dup {
				continue
			}
			if spliceValid(s, sky, b) {
				out = append(out, s)
				seen[k] = struct{}{}
			}
		}
	}
	return out
}

// SplicesOnly returns just the valid splice points (stairline minus the
// skyline). Useful for analysing how much the splicing step adds.
func SplicesOnly(pts []geom.Point, b geom.Corner) []geom.Point {
	sky := Oriented(pts, b)
	if len(sky) < 2 {
		return nil
	}
	dims := sky[0].Dims()
	inv := b.Opposite(dims)
	var out []geom.Point
	seen := make(map[string]struct{}, len(sky))
	for _, p := range sky {
		seen[key(p)] = struct{}{}
	}
	for i := 0; i < len(sky); i++ {
		for j := i + 1; j < len(sky); j++ {
			s := geom.Splice(sky[i], sky[j], inv)
			k := key(s)
			if _, dup := seen[k]; dup {
				continue
			}
			if spliceValid(s, sky, b) {
				out = append(out, s)
				seen[k] = struct{}{}
			}
		}
	}
	return out
}

// spliceValid reports whether the splice point s is a valid clip point
// candidate w.r.t. corner b given the skyline points of the children
// (Line 6 of Algorithm 1): s is valid iff no child corner lies strictly
// inside the region s would clip away. A child's nearest corner q cuts into
// the open interior of that region exactly when q is strictly closer to the
// MBB corner than s in every dimension, so boundary contact (as with the
// spliced point c in the paper's Figure 2, which touches o1 and o4) does not
// invalidate a splice.
func spliceValid(s geom.Point, sky []geom.Point, b geom.Corner) bool {
	for _, q := range sky {
		if geom.StrictlyDominates(q, s, b) {
			return false
		}
	}
	return true
}

// IsDominated reports whether p is dominated w.r.t. b by any point in set.
func IsDominated(p geom.Point, set []geom.Point, b geom.Corner) bool {
	for _, q := range set {
		if geom.Dominates(q, p, b) {
			return true
		}
	}
	return false
}

// key builds a map key from the exact bit patterns of the coordinates; it is
// only used for de-duplicating identical points.
func key(p geom.Point) string {
	buf := make([]byte, 0, len(p)*8)
	for _, v := range p {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(bits>>(8*uint(i))))
		}
	}
	return string(buf)
}
