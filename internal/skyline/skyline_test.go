package skyline

import (
	"math/rand"
	"testing"

	"cbb/internal/geom"
)

func TestOrientedSimple2D(t *testing.T) {
	// Points w.r.t. corner 00 (minimise both): (1,5), (2,2), (5,1) are the
	// skyline; (3,3) is dominated by (2,2); (6,6) is dominated by everything.
	pts := []geom.Point{
		geom.Pt(1, 5), geom.Pt(2, 2), geom.Pt(5, 1), geom.Pt(3, 3), geom.Pt(6, 6),
	}
	sky := Oriented(pts, 0b00)
	if len(sky) != 3 {
		t.Fatalf("skyline size = %d, want 3: %v", len(sky), sky)
	}
	want := map[string]bool{"(1, 5)": true, "(2, 2)": true, "(5, 1)": true}
	for _, p := range sky {
		if !want[p.String()] {
			t.Errorf("unexpected skyline point %v", p)
		}
	}
}

func TestOrientedOppositeCorner(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(9, 9), geom.Pt(5, 5)}
	sky := Oriented(pts, 0b11)
	if len(sky) != 1 || !sky[0].Equal(geom.Pt(9, 9)) {
		t.Fatalf("skyline w.r.t. 11 = %v, want only (9,9)", sky)
	}
}

func TestOrientedEdgeCases(t *testing.T) {
	if Oriented(nil, 0) != nil {
		t.Error("empty input should give nil")
	}
	one := Oriented([]geom.Point{geom.Pt(1, 2)}, 0b01)
	if len(one) != 1 || !one[0].Equal(geom.Pt(1, 2)) {
		t.Errorf("single point skyline = %v", one)
	}
	// Duplicates collapse to one point.
	dup := Oriented([]geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1)}, 0b00)
	if len(dup) != 1 {
		t.Errorf("duplicate points should collapse, got %v", dup)
	}
}

func TestOrientedTies(t *testing.T) {
	// Points sharing a coordinate: (1,3) and (1,5) w.r.t. 00 — (1,3)
	// dominates (1,5) because it ties on x and is closer on y.
	sky := Oriented([]geom.Point{geom.Pt(1, 3), geom.Pt(1, 5)}, 0b00)
	if len(sky) != 1 || !sky[0].Equal(geom.Pt(1, 3)) {
		t.Fatalf("tie handling wrong: %v", sky)
	}
}

func TestOriented3D(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(1, 1, 9), geom.Pt(9, 1, 1), geom.Pt(1, 9, 1),
		geom.Pt(5, 5, 5), geom.Pt(2, 2, 9),
	}
	sky := Oriented(pts, 0b000)
	// (2,2,9) is dominated by (1,1,9); (5,5,5) is not dominated by any.
	if len(sky) != 4 {
		t.Fatalf("3d skyline = %v, want 4 points", sky)
	}
	for _, p := range sky {
		if p.Equal(geom.Pt(2, 2, 9)) {
			t.Error("(2,2,9) should have been dominated")
		}
	}
}

func TestFigure2SkylineExample(t *testing.T) {
	// Reconstruction of the paper's Figure 2 discussion: the corners of the
	// five objects nearest corner R^00; the skyline excludes o5's corner
	// because o3 and o4 dominate it.
	o1 := geom.Pt(1, 6)
	o2 := geom.Pt(2, 4)
	o3 := geom.Pt(4, 3)
	o4 := geom.Pt(6, 1)
	o5 := geom.Pt(8, 2)
	sky := Oriented([]geom.Point{o1, o2, o3, o4, o5}, 0b00)
	if len(sky) != 4 {
		t.Fatalf("expected skyline {o1,o2,o3,o4}, got %v", sky)
	}
	for _, p := range sky {
		if p.Equal(o5) {
			t.Error("o5 must not be in the 00-skyline")
		}
	}
}

func TestStairlineAddsSplices(t *testing.T) {
	// Figure 2's key example at corner 11: skyline points o1^11=(3,9) and
	// o4^11=(9,4) splice (with mask 00) to c=(3,4), which is a valid clip
	// point and clips more area than either.
	pts := []geom.Point{geom.Pt(3, 9), geom.Pt(9, 4)}
	sta := Stairline(pts, 0b11)
	foundSplice := false
	for _, p := range sta {
		if p.Equal(geom.Pt(3, 4)) {
			foundSplice = true
		}
	}
	if !foundSplice {
		t.Fatalf("stairline %v should contain spliced point (3,4)", sta)
	}
	if len(sta) != 3 {
		t.Fatalf("stairline should be skyline (2) + 1 splice, got %v", sta)
	}
}

func TestStairlineRejectsInvalidSplices(t *testing.T) {
	// Three skyline points forming a staircase: splicing the two outermost
	// points produces a point dominated by the middle point, so that splice
	// must be rejected while the two adjacent splices are kept.
	pts := []geom.Point{geom.Pt(1, 9), geom.Pt(5, 5), geom.Pt(9, 1)}
	sta := Stairline(pts, 0b11)
	for _, p := range sta {
		if p.Equal(geom.Pt(1, 1)) {
			t.Fatalf("splice (1,1) clips away the middle child and must be rejected: %v", sta)
		}
	}
	// Valid splices: (1,5) and (5,1).
	wantSplices := []geom.Point{geom.Pt(1, 5), geom.Pt(5, 1)}
	for _, w := range wantSplices {
		found := false
		for _, p := range sta {
			if p.Equal(w) {
				found = true
			}
		}
		if !found {
			t.Errorf("expected valid splice %v in stairline %v", w, sta)
		}
	}
}

func TestSplicesOnly(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 9), geom.Pt(9, 4)}
	sp := SplicesOnly(pts, 0b11)
	if len(sp) != 1 || !sp[0].Equal(geom.Pt(3, 4)) {
		t.Fatalf("SplicesOnly = %v", sp)
	}
	if SplicesOnly([]geom.Point{geom.Pt(1, 1)}, 0b11) != nil {
		t.Error("single point cannot produce splices")
	}
}

func TestIsDominated(t *testing.T) {
	set := []geom.Point{geom.Pt(2, 2)}
	if !IsDominated(geom.Pt(3, 3), set, 0b00) {
		t.Error("(3,3) should be dominated by (2,2) w.r.t. 00")
	}
	if IsDominated(geom.Pt(1, 3), set, 0b00) {
		t.Error("(1,3) should not be dominated by (2,2) w.r.t. 00")
	}
}

func randomPoints(rng *rand.Rand, n, dims int, grid int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			if grid > 0 {
				p[d] = float64(rng.Intn(grid))
			} else {
				p[d] = rng.Float64() * 100
			}
		}
		pts[i] = p
	}
	return pts
}

// Property: the skyline is mutually non-dominated, every input point is
// either in the skyline or dominated by a skyline point, and the 2d
// sort-and-scan agrees with the generic algorithm.
func TestSkylineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		dims := 2 + rng.Intn(2)
		pts := randomPoints(rng, 1+rng.Intn(40), dims, 12) // small grid forces ties/duplicates
		geom.Corners(dims, func(b geom.Corner) {
			sky := Oriented(pts, b)
			// Mutually non-dominated.
			for i, p := range sky {
				for j, q := range sky {
					if i != j && geom.Dominates(p, q, b) {
						t.Fatalf("skyline contains dominated point %v (by %v)", q, p)
					}
				}
			}
			// Completeness.
			for _, p := range pts {
				inSky := false
				for _, s := range sky {
					if s.Equal(p) {
						inSky = true
						break
					}
				}
				if !inSky && !IsDominated(p, sky, b) {
					t.Fatalf("point %v neither in skyline nor dominated (corner %s)", p, b.StringDims(dims))
				}
			}
			// Cross-check the two algorithms in 2d.
			if dims == 2 {
				gen := orientedGeneric(pts, b)
				if len(gen) != len(sky) {
					t.Fatalf("2d scan and generic disagree: %d vs %d (%v vs %v)", len(sky), len(gen), sky, gen)
				}
			}
		})
	}
}

// Property: every stairline point is a valid clip candidate — no input
// point is strictly closer to the corner in every dimension (which would
// mean the clip region's interior cuts into a child), and the stairline is a
// superset of the skyline.
func TestStairlineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		dims := 2 + rng.Intn(2)
		pts := randomPoints(rng, 2+rng.Intn(20), dims, 10)
		geom.Corners(dims, func(b geom.Corner) {
			sky := Oriented(pts, b)
			sta := Stairline(pts, b)
			if len(sta) < len(sky) {
				t.Fatalf("stairline smaller than skyline")
			}
			for _, s := range sta {
				for _, p := range pts {
					if geom.StrictlyDominates(p, s, b) {
						t.Fatalf("stairline point %v clips into child corner %v (corner %s)",
							s, p, b.StringDims(dims))
					}
				}
			}
		})
	}
}

func BenchmarkOriented2D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 128, 2, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Oriented(pts, geom.Corner(i%4))
	}
}

func BenchmarkStairline3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 64, 3, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stairline(pts, geom.Corner(i%8))
	}
}
