package server

import (
	"errors"

	"cbb"
)

// Engine is the serving layer's view of the index: the subset of the public
// cbb surface the HTTP handlers need, implemented by both the single-tree
// and the Hilbert-sharded engine. Snapshot pins a read view (the serving
// layer pins one view per read request, or one per coalesced batch, so a
// response is always answered from a single committed epoch), and writes go
// through the engines' own single-writer/atomic-batch discipline.
type Engine interface {
	// Snapshot pins a read view of the last committed state.
	Snapshot() ReadView
	// Epochs reports the commit epochs of the last committed state (one
	// element per shard; a single tree has exactly one).
	Epochs() []uint64
	// Insert adds one object, published atomically.
	Insert(r cbb.Rect, id cbb.ObjectID) error
	// Apply applies a write batch atomically: readers observe all of it or
	// none of it. found is the number of delete ops that found their
	// object.
	Apply(ops []WriteOp) (found int, err error)
	// Len is the number of indexed objects at the last committed state.
	Len() int
	// Stats, IOStats and BufferStats surface engine-side statistics into
	// /stats and /metrics.
	Stats() cbb.Stats
	IOStats() cbb.IOStats
	BufferStats() (cbb.BufferStats, bool)
	// Persistent reports whether the engine is bound to snapshot file(s);
	// Shutdown only attempts a durable flush when it is.
	Persistent() bool
	// Flush commits the current state durably (file-backed engines only).
	Flush() error
	// Close flushes (when writable and file-backed) and releases the
	// engine.
	Close() error
}

// ReadView is one pinned snapshot: every operation answers at the view's
// epoch(s), regardless of concurrent writers. It must be released with
// Close.
type ReadView interface {
	Epochs() []uint64
	Search(q cbb.Rect, visit func(cbb.ObjectID, cbb.Rect) bool)
	Count(q cbb.Rect) int
	NearestNeighbors(k int, p cbb.Point) []cbb.Neighbor
	BatchSearch(queries []cbb.Rect, opts cbb.BatchOptions) (cbb.BatchResult, error)
	Join(probes []cbb.Item, opts cbb.JoinOptions, visit func(cbb.JoinPair)) (cbb.JoinResult, error)
	Close()
}

// WriteOp is one mutation of a /batch request.
type WriteOp struct {
	Delete bool
	Rect   cbb.Rect
	ID     cbb.ObjectID
}

// writeBatch is the common surface of *cbb.Batch and *cbb.ShardedBatch that
// applyOps needs.
type writeBatch interface {
	Insert(r cbb.Rect, id cbb.ObjectID) error
	InsertItems(items []cbb.Item) error
	Delete(r cbb.Rect, id cbb.ObjectID) (bool, error)
}

// applyOps replays a /batch request's ops into an open writer batch. Runs of
// consecutive inserts go through InsertItems so they ride the engines' fast
// batch-ingest path (Hilbert-sorted routing, bulk subtree grafts, one COW
// clone per touched node); deletes and singleton inserts keep the per-op
// path. Relative order of a delete and the inserts around it is preserved,
// which is what makes the grouping semantics-neutral: only insert/insert
// order within a run changes, and insert order is not observable (last state
// per object id is identical either way).
func applyOps(b writeBatch, ops []WriteOp) (int, error) {
	found := 0
	var run []cbb.Item
	flush := func() error {
		switch len(run) {
		case 0:
			return nil
		case 1:
			err := b.Insert(run[0].Rect, run[0].Object)
			run = run[:0]
			return err
		default:
			err := b.InsertItems(run)
			run = run[:0]
			return err
		}
	}
	for _, op := range ops {
		if op.Delete {
			if err := flush(); err != nil {
				return 0, err
			}
			ok, err := b.Delete(op.Rect, op.ID)
			if err != nil {
				return 0, err
			}
			if ok {
				found++
			}
			continue
		}
		run = append(run, cbb.Item{Object: op.ID, Rect: op.Rect})
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return found, nil
}

// --- single-tree engine -------------------------------------------------------

// treeEngine adapts a *cbb.Tree.
type treeEngine struct {
	t          *cbb.Tree
	persistent bool
}

// NewTreeEngine wraps a single tree for serving. persistent marks a tree
// bound to a snapshot file (Create/Open), enabling the durable flush on
// shutdown.
func NewTreeEngine(t *cbb.Tree, persistent bool) Engine {
	return &treeEngine{t: t, persistent: persistent}
}

func (e *treeEngine) Snapshot() ReadView { return treeView{e.t.Snapshot()} }

func (e *treeEngine) Epochs() []uint64 {
	v := e.t.Snapshot()
	defer v.Close()
	return []uint64{v.Epoch()}
}

func (e *treeEngine) Insert(r cbb.Rect, id cbb.ObjectID) error { return e.t.Insert(r, id) }

func (e *treeEngine) Apply(ops []WriteOp) (int, error) {
	b, err := e.t.Begin()
	if err != nil {
		return 0, err
	}
	defer b.Rollback()
	found, err := applyOps(b, ops)
	if err != nil {
		return 0, err
	}
	return found, b.Commit()
}

func (e *treeEngine) Len() int                             { return e.t.Len() }
func (e *treeEngine) Stats() cbb.Stats                     { return e.t.Stats() }
func (e *treeEngine) IOStats() cbb.IOStats                 { return e.t.IOStats() }
func (e *treeEngine) BufferStats() (cbb.BufferStats, bool) { return e.t.BufferStats() }
func (e *treeEngine) Persistent() bool                     { return e.persistent }
func (e *treeEngine) Flush() error {
	if !e.persistent {
		return nil
	}
	return e.t.Flush()
}
func (e *treeEngine) Close() error { return e.t.Close() }

// treeView adapts a *cbb.View.
type treeView struct{ v *cbb.View }

func (t treeView) Epochs() []uint64 { return []uint64{t.v.Epoch()} }
func (t treeView) Search(q cbb.Rect, visit func(cbb.ObjectID, cbb.Rect) bool) {
	t.v.Search(q, visit)
}
func (t treeView) Count(q cbb.Rect) int { return t.v.Count(q) }
func (t treeView) NearestNeighbors(k int, p cbb.Point) []cbb.Neighbor {
	return t.v.NearestNeighbors(k, p)
}
func (t treeView) BatchSearch(queries []cbb.Rect, opts cbb.BatchOptions) (cbb.BatchResult, error) {
	return t.v.BatchSearch(queries, opts)
}
func (t treeView) Join(probes []cbb.Item, opts cbb.JoinOptions, visit func(cbb.JoinPair)) (cbb.JoinResult, error) {
	return cbb.IndexNestedLoopJoinView(t.v, probes, opts, visit)
}
func (t treeView) Close() { t.v.Close() }

// --- sharded engine -----------------------------------------------------------

// shardedEngine adapts a *cbb.ShardedTree.
type shardedEngine struct {
	st         *cbb.ShardedTree
	persistent bool
}

// NewShardedEngine wraps a sharded tree for serving. persistent marks an
// engine bound to a shard directory (CreateSharded/OpenSharded).
func NewShardedEngine(st *cbb.ShardedTree, persistent bool) Engine {
	return &shardedEngine{st: st, persistent: persistent}
}

func (e *shardedEngine) Snapshot() ReadView { return shardedView{e.st.Snapshot()} }

func (e *shardedEngine) Epochs() []uint64 {
	v := e.st.Snapshot()
	defer v.Close()
	return v.Epochs()
}

func (e *shardedEngine) Insert(r cbb.Rect, id cbb.ObjectID) error { return e.st.Insert(r, id) }

func (e *shardedEngine) Apply(ops []WriteOp) (int, error) {
	b, err := e.st.Begin()
	if err != nil {
		return 0, err
	}
	defer b.Rollback()
	found, err := applyOps(b, ops)
	if err != nil {
		return 0, err
	}
	return found, b.Commit()
}

func (e *shardedEngine) Len() int                             { return e.st.Len() }
func (e *shardedEngine) Stats() cbb.Stats                     { return e.st.Stats() }
func (e *shardedEngine) IOStats() cbb.IOStats                 { return e.st.IOStats() }
func (e *shardedEngine) BufferStats() (cbb.BufferStats, bool) { return e.st.BufferStats() }
func (e *shardedEngine) Persistent() bool                     { return e.persistent }
func (e *shardedEngine) Flush() error {
	if !e.persistent {
		return nil
	}
	return e.st.Flush()
}
func (e *shardedEngine) Close() error { return e.st.Close() }

// shardedView adapts a *cbb.ShardedView.
type shardedView struct{ v *cbb.ShardedView }

func (s shardedView) Epochs() []uint64 { return s.v.Epochs() }
func (s shardedView) Search(q cbb.Rect, visit func(cbb.ObjectID, cbb.Rect) bool) {
	s.v.Search(q, visit)
}
func (s shardedView) Count(q cbb.Rect) int { return s.v.Count(q) }
func (s shardedView) NearestNeighbors(k int, p cbb.Point) []cbb.Neighbor {
	return s.v.NearestNeighbors(k, p)
}
func (s shardedView) BatchSearch(queries []cbb.Rect, opts cbb.BatchOptions) (cbb.BatchResult, error) {
	return s.v.BatchSearch(queries, opts)
}
func (s shardedView) Join(probes []cbb.Item, opts cbb.JoinOptions, visit func(cbb.JoinPair)) (cbb.JoinResult, error) {
	return cbb.IndexNestedLoopJoinShardedView(s.v, probes, opts, visit)
}
func (s shardedView) Close() { s.v.Close() }

var errNoEngine = errors.New("server: Config.Engine is required")
