package server

import (
	"context"
	"sync"
	"time"

	"cbb"
	"cbb/internal/telemetry"
)

// coalescer micro-batches concurrent point searches: requests arriving
// within one coalescing window (or until the batch cap) are answered by a
// single BatchSearch on a single pinned view. That amortises the snapshot
// pin and the per-query dispatch over the batch and keeps every member of
// the batch on one committed epoch — the batch can never mix epochs.
//
// The flush happens on whichever comes first: the window timer expiring or
// the pending queue reaching maxBatch. The view is pinned at flush time,
// i.e. after every member request has arrived, so a sequential client's
// observed epochs are monotonically non-decreasing even through the
// coalescing path.
type coalescer struct {
	eng     Engine
	window  time.Duration
	max     int
	workers int

	mu      sync.Mutex
	pending []*pendingSearch

	// telemetry
	batches   *telemetry.Counter
	coalesced *telemetry.Counter
	batchSize *telemetry.Histogram
}

// pendingSearch is one enqueued point query; done is buffered so a flush
// never blocks on a caller that gave up.
type pendingSearch struct {
	q    cbb.Rect
	done chan searchOutcome
}

// searchOutcome is what the flush hands back to each member request.
type searchOutcome struct {
	epochs  []uint64
	items   []cbb.Item
	batched int
	err     error
}

func newCoalescer(eng Engine, window time.Duration, max, workers int,
	batches, coalesced *telemetry.Counter, batchSize *telemetry.Histogram) *coalescer {
	if max < 1 {
		max = 1
	}
	return &coalescer{
		eng: eng, window: window, max: max, workers: workers,
		batches: batches, coalesced: coalesced, batchSize: batchSize,
	}
}

// submit enqueues one query and waits for its outcome or ctx cancellation.
// A canceled request's slot is still answered by the flush (into the
// buffered channel) and simply discarded.
func (c *coalescer) submit(ctx context.Context, q cbb.Rect) searchOutcome {
	p := &pendingSearch{q: q, done: make(chan searchOutcome, 1)}
	c.mu.Lock()
	c.pending = append(c.pending, p)
	n := len(c.pending)
	if n >= c.max {
		batch := c.pending
		c.pending = nil
		c.mu.Unlock()
		go c.flush(batch)
	} else {
		if n == 1 {
			// First member arms the window timer. A cap-triggered flush may
			// empty the queue before it fires; the timer then flushes
			// whatever has accumulated since (possibly nothing).
			time.AfterFunc(c.window, c.flushPending)
		}
		c.mu.Unlock()
	}
	select {
	case out := <-p.done:
		return out
	case <-ctx.Done():
		return searchOutcome{err: ctx.Err()}
	}
}

func (c *coalescer) flushPending() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.flush(batch)
}

// flush answers one batch from one pinned view.
func (c *coalescer) flush(batch []*pendingSearch) {
	if len(batch) == 0 {
		return
	}
	c.batches.Inc()
	c.coalesced.Add(int64(len(batch)))
	c.batchSize.Observe(int64(len(batch)))

	view := c.eng.Snapshot()
	defer view.Close()
	queries := make([]cbb.Rect, len(batch))
	for i, p := range batch {
		queries[i] = p.q
	}
	res, err := view.BatchSearch(queries, cbb.BatchOptions{Collect: true, Workers: c.workers})
	if err != nil {
		for _, p := range batch {
			p.done <- searchOutcome{err: err}
		}
		return
	}
	epochs := view.Epochs()
	for i, p := range batch {
		p.done <- searchOutcome{epochs: epochs, items: res.Items[i], batched: len(batch)}
	}
}
