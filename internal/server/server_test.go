package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbb"
)

// testRects returns n deterministic random rectangles in [0,100)^2.
func testRects(n int, seed int64) []cbb.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cbb.Rect, n)
	for i := range out {
		x, y := rng.Float64()*99, rng.Float64()*99
		w, h := rng.Float64(), rng.Float64()
		out[i] = cbb.R(x, y, x+w, y+h)
	}
	return out
}

func buildTree(t testing.TB, n int) *cbb.Tree {
	t.Helper()
	tree, err := cbb.New(cbb.Options{Dims: 2, Universe: cbb.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range testRects(n, 1) {
		if err := tree.Insert(r, cbb.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post drives a handler in-process and decodes the JSON response.
func post(t testing.TB, s *Server, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if resp != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), resp); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code
}

func get(t testing.TB, s *Server, path string, resp any) int {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if resp != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), resp); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestEndpointsEndToEnd(t *testing.T) {
	for _, mode := range []string{"tree", "sharded"} {
		t.Run(mode, func(t *testing.T) {
			var eng Engine
			if mode == "tree" {
				eng = NewTreeEngine(buildTree(t, 500), false)
			} else {
				st, err := cbb.NewSharded(cbb.ShardedOptions{
					Options: cbb.Options{Dims: 2, Universe: cbb.R(0, 0, 100, 100)},
					Shards:  3,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range testRects(500, 1) {
					if err := st.Insert(r, cbb.ObjectID(i)); err != nil {
						t.Fatal(err)
					}
				}
				eng = NewShardedEngine(st, false)
			}
			s := newTestServer(t, Config{Engine: eng, CoalesceWindow: -1})

			q := RectJSON{Lo: []float64{10, 10}, Hi: []float64{40, 40}}
			wantRect, _ := q.ToRect()
			want := 0
			v := eng.Snapshot()
			v.Search(wantRect, func(cbb.ObjectID, cbb.Rect) bool { want++; return true })
			v.Close()

			// /search
			var sr SearchResponse
			if code := post(t, s, "/search", SearchRequest{Query: q}, &sr); code != 200 {
				t.Fatalf("/search code = %d", code)
			}
			if sr.Count != want || len(sr.Items) != want {
				t.Errorf("/search count = %d (items %d), want %d", sr.Count, len(sr.Items), want)
			}
			if len(sr.Epochs) == 0 {
				t.Error("/search response has no epochs")
			}

			// /searchall
			var sar SearchAllResponse
			if code := post(t, s, "/searchall", SearchAllRequest{Queries: []RectJSON{q, q}, Collect: true}, &sar); code != 200 {
				t.Fatalf("/searchall code = %d", code)
			}
			if len(sar.Counts) != 2 || sar.Counts[0] != want || sar.Counts[1] != want {
				t.Errorf("/searchall counts = %v, want [%d %d]", sar.Counts, want, want)
			}
			if len(sar.Items) != 2 || len(sar.Items[0]) != want {
				t.Errorf("/searchall items misshaped")
			}

			// /knn
			var kr KNNResponse
			if code := post(t, s, "/knn", KNNRequest{Point: []float64{50, 50}, K: 5}, &kr); code != 200 {
				t.Fatalf("/knn code = %d", code)
			}
			if len(kr.Neighbors) != 5 {
				t.Errorf("/knn neighbors = %d, want 5", len(kr.Neighbors))
			}
			for i := 1; i < len(kr.Neighbors); i++ {
				if kr.Neighbors[i].DistSq < kr.Neighbors[i-1].DistSq {
					t.Errorf("/knn distances not ascending")
				}
			}

			// /insert then re-search
			ins := InsertRequest{ID: 100000, Rect: RectJSON{Lo: []float64{20, 20}, Hi: []float64{21, 21}}}
			var ir InsertResponse
			if code := post(t, s, "/insert", ins, &ir); code != 200 {
				t.Fatalf("/insert code = %d", code)
			}
			if len(ir.Epochs) == 0 {
				t.Error("/insert response has no epochs")
			}
			var sr2 SearchResponse
			post(t, s, "/search", SearchRequest{Query: q}, &sr2)
			if sr2.Count != want+1 {
				t.Errorf("post-insert count = %d, want %d", sr2.Count, want+1)
			}

			// /batch: delete the inserted object again, insert two more.
			br := BatchRequest{Ops: []BatchOpJSON{
				{Op: "delete", ID: 100000, Rect: ins.Rect},
				{Op: "insert", ID: 100001, Rect: ins.Rect},
				{Op: "insert", ID: 100002, Rect: ins.Rect},
			}}
			var bres BatchResponse
			if code := post(t, s, "/batch", br, &bres); code != 200 {
				t.Fatalf("/batch code = %d", code)
			}
			if bres.Applied != 3 || bres.Found != 1 {
				t.Errorf("/batch applied=%d found=%d, want 3/1", bres.Applied, bres.Found)
			}
			var sr3 SearchResponse
			post(t, s, "/search", SearchRequest{Query: q}, &sr3)
			if sr3.Count != want+2 {
				t.Errorf("post-batch count = %d, want %d", sr3.Count, want+2)
			}

			// /join: probe with the same query window must count the same
			// matches.
			var jr JoinResponse
			if code := post(t, s, "/join", JoinRequest{Probes: []ItemJSON{{ID: 1, Rect: q}}, Collect: true}, &jr); code != 200 {
				t.Fatalf("/join code = %d", code)
			}
			if jr.Pairs != int64(want+2) || len(jr.Results) != want+2 {
				t.Errorf("/join pairs = %d (results %d), want %d", jr.Pairs, len(jr.Results), want+2)
			}

			// control plane
			var hr HealthResponse
			if code := get(t, s, "/healthz", &hr); code != 200 || hr.Status != "ok" {
				t.Errorf("/healthz = %d %q", code, hr.Status)
			}
			if hr.Objects != 502 {
				t.Errorf("/healthz objects = %d, want 502", hr.Objects)
			}
			var st StatsResponse
			if code := get(t, s, "/stats", &st); code != 200 {
				t.Fatalf("/stats code = %d", code)
			}
			if st.Objects != 502 || st.Server.Requests == 0 {
				t.Errorf("/stats objects=%d requests=%d", st.Objects, st.Server.Requests)
			}

			r := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			metricsOut := w.Body.String()
			for _, wantLine := range []string{
				"cbbserve_requests_total", "cbbserve_request_seconds",
				"cbbserve_shed_total", "cbb_objects", "cbb_io_leaf_reads_total",
			} {
				if !strings.Contains(metricsOut, wantLine) {
					t.Errorf("/metrics missing %q", wantLine)
				}
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Engine: NewTreeEngine(buildTree(t, 10), false)})
	cases := []struct {
		path string
		body string
		want int
	}{
		{"/search", ``, http.StatusBadRequest},
		{"/search", `{"query":{"lo":[1],"hi":[2,3]}}`, http.StatusBadRequest},
		{"/search", `{"bogus":1}`, http.StatusBadRequest},
		{"/searchall", `{"queries":[]}`, http.StatusBadRequest},
		{"/knn", `{"point":[1,2],"k":0}`, http.StatusBadRequest},
		{"/insert", `{"id":1,"rect":{"lo":[5,5],"hi":[1,1]}}`, http.StatusBadRequest},
		{"/batch", `{"ops":[{"op":"upsert","id":1,"rect":{"lo":[1,1],"hi":[2,2]}}]}`, http.StatusBadRequest},
		{"/join", `{"probes":[]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, c.path, strings.NewReader(c.body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != c.want {
			t.Errorf("%s %q: code = %d, want %d (%s)", c.path, c.body, w.Code, c.want, w.Body.String())
		}
	}
	// Method filtering.
	r := httptest.NewRequest(http.MethodGet, "/search", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /search = %d, want 405", w.Code)
	}
}

// TestCoalescing drives concurrent point searches through the micro-batch
// queue and checks that (a) batches actually form, (b) every response is
// correct and answered at a single epoch set, and (c) the results are
// identical to the direct path.
func TestCoalescing(t *testing.T) {
	tree := buildTree(t, 2000)
	s := newTestServer(t, Config{
		Engine:           NewTreeEngine(tree, false),
		CoalesceWindow:   500 * time.Microsecond,
		CoalesceMaxBatch: 16,
	})
	queries := testRects(64, 99)
	want := make([]int, len(queries))
	for i, q := range queries {
		probe := cbb.R(q.Lo[0], q.Lo[1], q.Lo[0]+20, q.Lo[1]+20)
		queries[i] = probe
		want[i] = tree.Count(probe)
	}

	var wg sync.WaitGroup
	var maxBatched atomic.Int64
	errs := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q cbb.Rect) {
			defer wg.Done()
			var resp SearchResponse
			code := post(t, s, "/search", SearchRequest{Query: FromRect(q), CountOnly: true}, &resp)
			if code != 200 {
				errs <- fmt.Errorf("query %d: code %d", i, code)
				return
			}
			if resp.Count != want[i] {
				errs <- fmt.Errorf("query %d: count %d, want %d", i, resp.Count, want[i])
				return
			}
			if len(resp.Epochs) != 1 {
				errs <- fmt.Errorf("query %d: %d epochs", i, len(resp.Epochs))
				return
			}
			if b := int64(resp.Batched); b > maxBatched.Load() {
				maxBatched.Store(b)
			}
			errs <- nil
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if maxBatched.Load() < 2 {
		t.Errorf("no coalescing observed (max batch = %d); expected concurrent queries to share a batch", maxBatched.Load())
	}
	var st StatsResponse
	get(t, s, "/stats", &st)
	if st.Server.Coalesced != int64(len(queries)) {
		t.Errorf("coalesced queries = %d, want %d", st.Server.Coalesced, len(queries))
	}
	if st.Server.Batches == 0 || st.Server.Batches >= int64(len(queries)) {
		t.Errorf("batches = %d, want in (0, %d)", st.Server.Batches, len(queries))
	}
}

// TestAdmissionControl fills the in-flight limit and checks that the next
// request is shed with 429 + Retry-After and counted in telemetry.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{
		Engine:        NewTreeEngine(buildTree(t, 10), false),
		InFlightLimit: 1,
		QueueTimeout:  5 * time.Millisecond,
	})
	// Occupy the only slot directly.
	release, ok := s.admit(context.Background())
	if !ok {
		t.Fatal("could not admit the first request")
	}
	var resp SearchResponse
	req := SearchRequest{Query: RectJSON{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}
	body, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("code = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	release()
	// With the slot free the same request succeeds.
	if code := post(t, s, "/search", req, &resp); code != 200 {
		t.Errorf("post-release code = %d, want 200", code)
	}
}

// TestContextCancellation checks that a canceled request unblocks and is
// not served.
func TestContextCancellation(t *testing.T) {
	s := newTestServer(t, Config{
		Engine:         NewTreeEngine(buildTree(t, 10), false),
		CoalesceWindow: time.Hour, // a flush that will never fire on its own
	})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(SearchRequest{Query: RectJSON{Lo: []float64{0, 0}, Hi: []float64{1, 1}}})
	r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(w, r)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("canceled request did not unblock")
	}
	if w.Code != statusClientClosed {
		t.Errorf("code = %d, want %d", w.Code, statusClientClosed)
	}
	if s.canceled.Value() != 1 {
		t.Errorf("canceled counter = %d, want 1", s.canceled.Value())
	}
}

// TestEpochConsistencyUnderIngest is the serving-layer consistency
// guarantee: while a writer ingests concurrently, every read response
// reports exactly one pinned epoch set and a sequential client observes
// non-decreasing epochs — reads never straddle a commit.
func TestEpochConsistencyUnderIngest(t *testing.T) {
	tree := buildTree(t, 200)
	s := newTestServer(t, Config{
		Engine:           NewTreeEngine(tree, false),
		CoalesceWindow:   200 * time.Microsecond,
		CoalesceMaxBatch: 8,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	var writerErr atomic.Value
	go func() {
		rects := testRects(100000, 7)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := tree.Insert(rects[i%len(rects)], cbb.ObjectID(1000+i)); err != nil {
				writerErr.Store(err)
				return
			}
		}
	}()

	client := ts.Client()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; i < 100; i++ {
				q := RectJSON{Lo: []float64{5, 5}, Hi: []float64{50, 50}}
				body, _ := json.Marshal(SearchRequest{Query: q, CountOnly: true})
				resp, err := client.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("worker %d: code %d", wkr, resp.StatusCode)
					return
				}
				if len(sr.Epochs) != 1 {
					errs <- fmt.Errorf("worker %d: response with %d epochs", wkr, len(sr.Epochs))
					return
				}
				if sr.Epochs[0] < lastEpoch {
					errs <- fmt.Errorf("worker %d: epoch went backwards: %d then %d", wkr, lastEpoch, sr.Epochs[0])
					return
				}
				lastEpoch = sr.Epochs[0]
			}
		}(wkr)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("writer: %v", err)
	}
}

// TestGracefulShutdownDrains is the shutdown satellite: a file-backed
// server under concurrent load is shut down mid-traffic; every
// acknowledged write must survive into the snapshot file, no in-flight
// request may be dropped before the drain deadline, and the file must
// reopen and validate cleanly.
func TestGracefulShutdownDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.cbb")
	tree, err := cbb.Create(path, cbb.Options{Dims: 2, Universe: cbb.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Engine: NewTreeEngine(tree, true)})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	const writers = 4
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wkr := 0; wkr < writers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rects := testRects(10000, int64(wkr+10))
			stopping := func() bool {
				select {
				case <-stop:
					return true
				default:
					return false
				}
			}
			for i := 0; ; i++ {
				req := InsertRequest{
					ID:   int64(wkr*1000000 + i),
					Rect: FromRect(rects[i%len(rects)]),
				}
				body, _ := json.Marshal(req)
				resp, err := client.Post(base+"/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					// A transport error is legitimate only once the drain has
					// begun (close(stop) happens before Shutdown, so checking
					// at error time cannot misclassify): the listener closes
					// and idle keep-alive connections are reset. An acked
					// response can never be lost this way — acks are counted
					// only on a complete 200 body.
					if !stopping() {
						t.Errorf("writer %d: request failed before drain started: %v", wkr, err)
					}
					return
				}
				var ir InsertResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
					if decErr != nil || len(ir.Epochs) == 0 {
						t.Errorf("writer %d: 200 with bad body: %v", wkr, decErr)
						return
					}
					acked.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable, resp.StatusCode == http.StatusTooManyRequests:
					// Shed or draining: not acked, fine.
				default:
					t.Errorf("writer %d: unexpected status %d", wkr, resp.StatusCode)
					return
				}
				if stopping() {
					return
				}
			}
		}(wkr)
	}

	// Let traffic build — at least one acknowledged insert, or the test
	// proves nothing — then shut down mid-flight. A fixed sleep is not
	// enough: under -race on a loaded single-core machine 100ms can pass
	// before the first insert completes.
	deadline := time.Now().Add(10 * time.Second)
	for acked.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// The snapshot file must reopen, validate, and contain at least every
	// acknowledged insert (an unacked insert may have committed too).
	got := acked.Load()
	if got == 0 {
		t.Fatal("no insert was acknowledged; test gave no coverage")
	}
	reopened, err := cbb.Open(path)
	if err != nil {
		t.Fatalf("reopening snapshot after shutdown: %v", err)
	}
	defer reopened.Close()
	if int64(reopened.Len()) < got {
		t.Errorf("snapshot holds %d objects, but %d inserts were acknowledged", reopened.Len(), got)
	}
	if err := reopened.Validate(); err != nil {
		t.Errorf("snapshot failed validation after shutdown: %v", err)
	}
}

// TestShutdownRefusesNewRequests checks the drain gate.
func TestShutdownRefusesNewRequests(t *testing.T) {
	s := newTestServer(t, Config{Engine: NewTreeEngine(buildTree(t, 10), false)})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code := post(t, s, "/search", SearchRequest{Query: RectJSON{Lo: []float64{0, 0}, Hi: []float64{1, 1}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /search = %d, want 503", code)
	}
	if code := get(t, s, "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown /healthz = %d, want 503", code)
	}
}
