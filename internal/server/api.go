package server

import (
	"fmt"

	"cbb"
)

// This file defines the JSON wire types of the HTTP API. cmd/cbbload
// imports them so the load generator and the server can never drift apart.

// RectJSON is a rectangle on the wire: the lo and hi corner, d coordinates
// each.
type RectJSON struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// ToRect validates and converts the wire rectangle.
func (r RectJSON) ToRect() (cbb.Rect, error) {
	if len(r.Lo) == 0 || len(r.Lo) != len(r.Hi) {
		return cbb.Rect{}, fmt.Errorf("rect needs matching non-empty lo/hi (got %d/%d)", len(r.Lo), len(r.Hi))
	}
	rect, err := cbb.NewRect(r.Lo, r.Hi)
	if err != nil {
		return cbb.Rect{}, err
	}
	return rect, nil
}

// FromRect converts an engine rectangle to its wire form.
func FromRect(r cbb.Rect) RectJSON { return RectJSON{Lo: r.Lo, Hi: r.Hi} }

// ItemJSON is an indexed object on the wire.
type ItemJSON struct {
	ID   int64    `json:"id"`
	Rect RectJSON `json:"rect"`
}

func fromItems(items []cbb.Item) []ItemJSON {
	out := make([]ItemJSON, len(items))
	for i, it := range items {
		out[i] = ItemJSON{ID: int64(it.Object), Rect: FromRect(it.Rect)}
	}
	return out
}

// SearchRequest asks for every object intersecting one query window.
// Point searches are the coalescing path: concurrent /search requests are
// micro-batched into one BatchSearch on one pinned view.
type SearchRequest struct {
	Query RectJSON `json:"query"`
	// CountOnly suppresses the item list in the response.
	CountOnly bool `json:"count_only,omitempty"`
}

// SearchResponse answers a /search. Epochs is the pinned commit epoch(s)
// the result was computed at — exactly one element per shard, and the
// whole response comes from that single pinned snapshot.
type SearchResponse struct {
	Epochs []uint64   `json:"epochs"`
	Count  int        `json:"count"`
	Items  []ItemJSON `json:"items,omitempty"`
	// Batched is the size of the coalesced micro-batch this query was
	// answered in (1 when it ran alone).
	Batched int `json:"batched,omitempty"`
}

// SearchAllRequest runs a caller-provided batch of range queries on one
// pinned view (the explicit-batch counterpart of the coalesced /search).
type SearchAllRequest struct {
	Queries []RectJSON `json:"queries"`
	// Collect returns the matching items of every query, not only counts.
	Collect bool `json:"collect,omitempty"`
	// Workers bounds the engine-side fan-out (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// SearchAllResponse answers a /searchall; Counts and Items are
// index-aligned with the request's queries and all answered at Epochs.
type SearchAllResponse struct {
	Epochs []uint64     `json:"epochs"`
	Counts []int        `json:"counts"`
	Items  [][]ItemJSON `json:"items,omitempty"`
}

// KNNRequest asks for the k nearest objects to a point.
type KNNRequest struct {
	Point []float64 `json:"point"`
	K     int       `json:"k"`
}

// NeighborJSON is one nearest-neighbour result.
type NeighborJSON struct {
	ID     int64    `json:"id"`
	Rect   RectJSON `json:"rect"`
	DistSq float64  `json:"distsq"`
}

// KNNResponse answers a /knn at a single pinned epoch.
type KNNResponse struct {
	Epochs    []uint64       `json:"epochs"`
	Neighbors []NeighborJSON `json:"neighbors"`
}

// InsertRequest adds one object.
type InsertRequest struct {
	ID   int64    `json:"id"`
	Rect RectJSON `json:"rect"`
}

// InsertResponse acknowledges a committed insert; Epochs is the engine
// state after the commit was published (any later read view observes
// epochs >= these).
type InsertResponse struct {
	Epochs []uint64 `json:"epochs"`
}

// BatchOpJSON is one mutation of a /batch request.
type BatchOpJSON struct {
	// Op is "insert" or "delete".
	Op   string   `json:"op"`
	ID   int64    `json:"id"`
	Rect RectJSON `json:"rect"`
}

// BatchRequest applies a set of mutations atomically: readers (and every
// pinned view) observe all of them or none of them.
type BatchRequest struct {
	Ops []BatchOpJSON `json:"ops"`
}

// BatchResponse acknowledges a committed write batch.
type BatchResponse struct {
	Epochs []uint64 `json:"epochs"`
	// Applied is the number of ops applied; Found the number of deletes
	// that found their object.
	Applied int `json:"applied"`
	Found   int `json:"found"`
}

// JoinRequest joins a probe set against the index (index nested loop join)
// on one pinned view.
type JoinRequest struct {
	Probes []ItemJSON `json:"probes"`
	// Collect returns the matching (probe, indexed) id pairs, capped at
	// MaxJoinPairs.
	Collect bool `json:"collect,omitempty"`
	// Workers bounds the engine-side fan-out (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// MaxJoinPairs caps the pairs returned by a collecting /join; the total
// pair count is always exact.
const MaxJoinPairs = 65536

// PairJSON is one join result pair: the probe id and the indexed object id.
type PairJSON struct {
	Probe   int64 `json:"probe"`
	Indexed int64 `json:"indexed"`
}

// JoinResponse answers a /join at a single pinned epoch.
type JoinResponse struct {
	Epochs []uint64 `json:"epochs"`
	Pairs  int64    `json:"pairs"`
	// Results holds up to MaxJoinPairs pairs when Collect was set;
	// Truncated reports that the cap was hit.
	Results   []PairJSON `json:"results,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status  string   `json:"status"`
	Objects int      `json:"objects"`
	Epochs  []uint64 `json:"epochs"`
}

// StatsResponse answers /stats: engine structure, cumulative simulated
// I/O, buffer-pool behaviour, and the serving layer's own counters.
type StatsResponse struct {
	Objects        int     `json:"objects"`
	Height         int     `json:"height"`
	LeafNodes      int     `json:"leaf_nodes"`
	DirNodes       int     `json:"dir_nodes"`
	ClipPoints     int     `json:"clip_points"`
	AvgClipPoints  float64 `json:"avg_clip_points"`
	ClipTableBytes int     `json:"clip_table_bytes"`

	Epochs []uint64 `json:"epochs"`

	IO struct {
		LeafReads int64 `json:"leaf_reads"`
		DirReads  int64 `json:"dir_reads"`
		Writes    int64 `json:"writes"`
		Reclips   int64 `json:"reclips"`
	} `json:"io"`

	Buffer *struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"buffer,omitempty"`

	Server struct {
		Requests  int64 `json:"requests"`
		Errors    int64 `json:"errors"`
		Shed      int64 `json:"shed"`
		Coalesced int64 `json:"coalesced_queries"`
		Batches   int64 `json:"coalesced_batches"`
		InFlight  int64 `json:"in_flight"`
	} `json:"server"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
