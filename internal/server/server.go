// Package server is the network serving layer: an HTTP JSON API over a
// live cbb engine (a single Tree or a Hilbert-sharded ShardedTree), built
// for tail-latency discipline on top of the engine's snapshot isolation.
//
//   - Every read request is answered from one pinned snapshot view for its
//     whole lifetime: it never blocks writers, never sees a partial batch,
//     and reports the commit epoch(s) it was answered at.
//   - Concurrent point searches are coalesced into one engine BatchSearch
//     through a bounded micro-batching queue (one pinned view per batch).
//   - Admission control sheds load with 429 + Retry-After once the
//     in-flight limit is reached and a queued request cannot be admitted
//     within the queue timeout; handlers honor context cancellation.
//   - Runtime telemetry (request counts, latency histograms with
//     p50/p95/p99, shed counts, engine I/O and buffer statistics) is
//     exported in Prometheus text format at /metrics via
//     internal/telemetry.
//
// Endpoints: POST /search, /searchall, /knn, /insert, /batch, /join;
// GET /healthz, /metrics, /stats. cmd/cbbserve wires this package to a
// listener and signal-driven graceful shutdown; cmd/cbbload replays
// workloads against it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cbb"
	"cbb/internal/telemetry"
)

// Config tunes the serving layer.
type Config struct {
	// Engine is the index being served (required); wrap a tree with
	// NewTreeEngine or NewShardedEngine.
	Engine Engine

	// InFlightLimit bounds concurrently admitted data-plane requests;
	// beyond it requests queue up to QueueTimeout and are then shed with
	// 429. 0 defaults to 256; negative disables admission control.
	InFlightLimit int

	// QueueTimeout is how long an arriving request may wait for an
	// in-flight slot before being shed (0 defaults to 50ms).
	QueueTimeout time.Duration

	// CoalesceWindow is the micro-batching window of /search: concurrent
	// point queries arriving within it are answered by one BatchSearch on
	// one pinned view. 0 defaults to 200µs; negative disables coalescing
	// (every /search pins its own view).
	CoalesceWindow time.Duration

	// CoalesceMaxBatch caps a coalesced batch (flush fires early when the
	// cap is reached; 0 defaults to 64).
	CoalesceMaxBatch int

	// SearchWorkers bounds the engine-side worker fan-out of coalesced
	// batches, /searchall and /join (0 = GOMAXPROCS).
	SearchWorkers int

	// MaxBodyBytes caps request bodies (0 defaults to 8 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Engine == nil {
		return c, errNoEngine
	}
	if c.InFlightLimit == 0 {
		c.InFlightLimit = 256
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 50 * time.Millisecond
	}
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = 200 * time.Microsecond
	}
	if c.CoalesceMaxBatch <= 0 {
		c.CoalesceMaxBatch = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c, nil
}

// statusClientClosed is the non-standard (nginx-convention) status recorded
// when the client canceled the request before the response was ready.
const statusClientClosed = 499

// endpoints instrumented on the data plane, in exposition order.
var dataEndpoints = []string{"/search", "/searchall", "/knn", "/insert", "/batch", "/join"}

// Server is the HTTP serving layer. It implements http.Handler, so it can
// be driven in-process (tests, benchmarks, cbbench -exp serve) or through
// Serve/Shutdown on a real listener.
type Server struct {
	cfg  Config
	eng  Engine
	reg  *telemetry.Registry
	mux  *http.ServeMux
	hs   *http.Server
	coal *coalescer

	inflight    chan struct{} // nil when admission control is disabled
	inflightG   *telemetry.Gauge
	draining    atomic.Bool
	retryAfterS int

	requests  map[string]*telemetry.Counter // ok by endpoint
	failures  map[string]*telemetry.Counter // 4xx/5xx by endpoint
	latency   map[string]*telemetry.Histogram
	shed      *telemetry.Counter
	canceled  *telemetry.Counter
	coalBatch *telemetry.Counter
	coalQ     *telemetry.Counter
}

// New builds a server over the configured engine.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		reg:      telemetry.NewRegistry(),
		mux:      http.NewServeMux(),
		requests: map[string]*telemetry.Counter{},
		failures: map[string]*telemetry.Counter{},
		latency:  map[string]*telemetry.Histogram{},
	}
	s.retryAfterS = int(cfg.QueueTimeout / time.Second)
	if s.retryAfterS < 1 {
		s.retryAfterS = 1
	}
	if cfg.InFlightLimit > 0 {
		s.inflight = make(chan struct{}, cfg.InFlightLimit)
	}

	for _, ep := range dataEndpoints {
		s.requests[ep] = s.reg.Counter(
			fmt.Sprintf("cbbserve_requests_total{endpoint=%q,outcome=\"ok\"}", ep),
			"requests served by endpoint and outcome")
		s.failures[ep] = s.reg.Counter(
			fmt.Sprintf("cbbserve_requests_total{endpoint=%q,outcome=\"error\"}", ep),
			"requests served by endpoint and outcome")
		s.latency[ep] = s.reg.Histogram(
			fmt.Sprintf("cbbserve_request_seconds{endpoint=%q}", ep),
			"request latency by endpoint (admission wait included)", 1e9)
	}
	s.shed = s.reg.Counter("cbbserve_shed_total", "requests shed by admission control (429)")
	s.canceled = s.reg.Counter("cbbserve_canceled_total", "requests abandoned by the client before completion")
	s.inflightG = s.reg.Gauge("cbbserve_inflight", "admitted data-plane requests currently in flight")
	s.coalBatch = s.reg.Counter("cbbserve_coalesce_batches_total", "coalesced micro-batches flushed")
	s.coalQ = s.reg.Counter("cbbserve_coalesce_queries_total", "point queries answered through coalesced batches")
	coalSize := s.reg.Histogram("cbbserve_coalesce_batch_size", "queries per coalesced batch", 1)

	// Engine-side statistics, computed at scrape time.
	s.reg.GaugeFunc("cbb_objects", "indexed objects", func() float64 { return float64(s.eng.Len()) })
	s.reg.GaugeFunc("cbb_io_leaf_reads_total", "cumulative simulated leaf-node reads", func() float64 { return float64(s.eng.IOStats().LeafReads) })
	s.reg.GaugeFunc("cbb_io_dir_reads_total", "cumulative simulated directory-node reads", func() float64 { return float64(s.eng.IOStats().DirReads) })
	s.reg.GaugeFunc("cbb_io_writes_total", "cumulative simulated node writes", func() float64 { return float64(s.eng.IOStats().Writes) })
	s.reg.GaugeFunc("cbb_buffer_hit_rate", "buffer-pool hit rate (0 without a pool)", func() float64 {
		bs, ok := s.eng.BufferStats()
		if !ok {
			return 0
		}
		return bs.HitRate()
	})

	if cfg.CoalesceWindow > 0 {
		s.coal = newCoalescer(s.eng, cfg.CoalesceWindow, cfg.CoalesceMaxBatch, cfg.SearchWorkers,
			s.coalBatch, s.coalQ, coalSize)
	}

	s.mux.Handle("/search", s.handle("/search", true, s.handleSearch))
	s.mux.Handle("/searchall", s.handle("/searchall", true, s.handleSearchAll))
	s.mux.Handle("/knn", s.handle("/knn", true, s.handleKNN))
	s.mux.Handle("/insert", s.handle("/insert", true, s.handleInsert))
	s.mux.Handle("/batch", s.handle("/batch", true, s.handleBatch))
	s.mux.Handle("/join", s.handle("/join", true, s.handleJoin))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/stats", s.handleStats)

	s.hs = &http.Server{Handler: s}
	return s, nil
}

// Registry exposes the server's telemetry registry (tests and cbbench).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ServeHTTP dispatches to the API; Server is a plain http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server and retires the engine: new data-plane
// requests are refused with 503, in-flight requests are given until ctx's
// deadline to complete (none is dropped before then), and once drained the
// engine is flushed (when persistent) and closed — so a file-backed
// engine's snapshot is durable and valid after a clean shutdown. Safe to
// call without a preceding Serve (in-process servers).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var errs []error
	if err := s.hs.Shutdown(ctx); err != nil {
		errs = append(errs, fmt.Errorf("drain: %w", err))
	}
	// In-process callers bypass hs; wait for admitted requests ourselves.
	if err := s.awaitInflight(ctx); err != nil {
		errs = append(errs, err)
	}
	if err := s.eng.Close(); err != nil {
		errs = append(errs, fmt.Errorf("engine close: %w", err))
	}
	return errors.Join(errs...)
}

// awaitInflight waits until no admitted request is in flight (admission
// slots drain to zero) or ctx expires.
func (s *Server) awaitInflight(ctx context.Context) error {
	if s.inflight == nil {
		return nil
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if len(s.inflight) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d requests still in flight: %w", len(s.inflight), ctx.Err())
		case <-tick.C:
		}
	}
}

// --- request plumbing ---------------------------------------------------------

// apiError carries an HTTP status through a handler's error path.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handle wraps a data-plane handler with method filtering, admission
// control, cancellation mapping, telemetry, and JSON rendering.
func (s *Server) handle(endpoint string, post bool, fn func(r *http.Request) (any, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := http.StatusOK
		defer func() {
			s.latency[endpoint].Observe(time.Since(start).Nanoseconds())
			if status >= 200 && status < 300 {
				s.requests[endpoint].Inc()
			} else {
				s.failures[endpoint].Inc()
			}
		}()

		if post && r.Method != http.MethodPost {
			status = http.StatusMethodNotAllowed
			writeJSON(w, status, ErrorResponse{Error: "use POST"})
			return
		}
		if s.draining.Load() {
			status = http.StatusServiceUnavailable
			writeJSON(w, status, ErrorResponse{Error: "server is draining"})
			return
		}
		release, ok := s.admit(r.Context())
		if !ok {
			status = http.StatusTooManyRequests
			s.shed.Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterS))
			writeJSON(w, status, ErrorResponse{Error: "overloaded: in-flight limit reached"})
			return
		}
		defer release()

		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		resp, err := fn(r)
		if err != nil {
			var ae *apiError
			switch {
			case errors.As(err, &ae):
				status = ae.status
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				status = statusClientClosed
				s.canceled.Inc()
			default:
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, status, resp)
	})
}

// admit acquires an in-flight slot, waiting up to the queue timeout; the
// request is shed when neither a slot frees up in time nor the client is
// still interested.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		// Full: queue up to the deadline.
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		select {
		case s.inflight <- struct{}{}:
		case <-t.C:
			return nil, false
		case <-ctx.Done():
			return nil, false
		}
	}
	s.inflightG.Add(1)
	return func() {
		s.inflightG.Add(-1)
		<-s.inflight
	}, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return badRequest("empty request body")
		}
		return badRequest("invalid JSON: %v", err)
	}
	return nil
}

// --- handlers -----------------------------------------------------------------

// handleSearch answers one range query. With coalescing enabled the query
// joins the pending micro-batch and is answered by one BatchSearch on one
// pinned view shared with its batch peers; otherwise it pins its own view.
func (s *Server) handleSearch(r *http.Request) (any, error) {
	var req SearchRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	q, err := req.Query.ToRect()
	if err != nil {
		return nil, badRequest("query: %v", err)
	}
	var out searchOutcome
	if s.coal != nil {
		out = s.coal.submit(r.Context(), q)
	} else {
		view := s.eng.Snapshot()
		items := make([]cbb.Item, 0, 16)
		view.Search(q, func(id cbb.ObjectID, rect cbb.Rect) bool {
			items = append(items, cbb.Item{Object: id, Rect: rect})
			return true
		})
		out = searchOutcome{epochs: view.Epochs(), items: items, batched: 1}
		view.Close()
	}
	if out.err != nil {
		return nil, out.err
	}
	resp := SearchResponse{Epochs: out.epochs, Count: len(out.items), Batched: out.batched}
	if !req.CountOnly {
		resp.Items = fromItems(out.items)
	}
	return resp, nil
}

// handleSearchAll answers an explicit query batch on one pinned view.
func (s *Server) handleSearchAll(r *http.Request) (any, error) {
	var req SearchAllRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Queries) == 0 {
		return nil, badRequest("need at least one query")
	}
	queries := make([]cbb.Rect, len(req.Queries))
	for i, rj := range req.Queries {
		q, err := rj.ToRect()
		if err != nil {
			return nil, badRequest("query %d: %v", i, err)
		}
		queries[i] = q
	}
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.SearchWorkers
	}
	view := s.eng.Snapshot()
	defer view.Close()
	res, err := view.BatchSearch(queries, cbb.BatchOptions{Collect: req.Collect, Workers: workers})
	if err != nil {
		return nil, err
	}
	resp := SearchAllResponse{Epochs: view.Epochs(), Counts: res.Counts}
	if req.Collect {
		resp.Items = make([][]ItemJSON, len(res.Items))
		for i, items := range res.Items {
			resp.Items[i] = fromItems(items)
		}
	}
	return resp, nil
}

// handleKNN answers a nearest-neighbour query on one pinned view.
func (s *Server) handleKNN(r *http.Request) (any, error) {
	var req KNNRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.K < 1 {
		return nil, badRequest("k must be at least 1")
	}
	if len(req.Point) == 0 {
		return nil, badRequest("point must not be empty")
	}
	view := s.eng.Snapshot()
	defer view.Close()
	neighbors := view.NearestNeighbors(req.K, req.Point)
	resp := KNNResponse{Epochs: view.Epochs(), Neighbors: make([]NeighborJSON, len(neighbors))}
	for i, n := range neighbors {
		resp.Neighbors[i] = NeighborJSON{ID: int64(n.Object), Rect: FromRect(n.Rect), DistSq: n.DistSq}
	}
	return resp, nil
}

// handleInsert commits one insert and reports the published epochs.
func (s *Server) handleInsert(r *http.Request) (any, error) {
	var req InsertRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	rect, err := req.Rect.ToRect()
	if err != nil {
		return nil, badRequest("rect: %v", err)
	}
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	if err := s.eng.Insert(rect, cbb.ObjectID(req.ID)); err != nil {
		return nil, err
	}
	return InsertResponse{Epochs: s.eng.Epochs()}, nil
}

// handleBatch applies a write batch atomically.
func (s *Server) handleBatch(r *http.Request) (any, error) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Ops) == 0 {
		return nil, badRequest("need at least one op")
	}
	ops := make([]WriteOp, len(req.Ops))
	for i, op := range req.Ops {
		rect, err := op.Rect.ToRect()
		if err != nil {
			return nil, badRequest("op %d rect: %v", i, err)
		}
		switch op.Op {
		case "insert":
			ops[i] = WriteOp{Rect: rect, ID: cbb.ObjectID(op.ID)}
		case "delete":
			ops[i] = WriteOp{Delete: true, Rect: rect, ID: cbb.ObjectID(op.ID)}
		default:
			return nil, badRequest("op %d: unknown op %q (want insert or delete)", i, op.Op)
		}
	}
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	found, err := s.eng.Apply(ops)
	if err != nil {
		return nil, err
	}
	return BatchResponse{Epochs: s.eng.Epochs(), Applied: len(ops), Found: found}, nil
}

// handleJoin runs an index nested loop join of the request's probe set
// against the index on one pinned view.
func (s *Server) handleJoin(r *http.Request) (any, error) {
	var req JoinRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Probes) == 0 {
		return nil, badRequest("need at least one probe")
	}
	probes := make([]cbb.Item, len(req.Probes))
	for i, p := range req.Probes {
		rect, err := p.Rect.ToRect()
		if err != nil {
			return nil, badRequest("probe %d rect: %v", i, err)
		}
		probes[i] = cbb.Item{Object: cbb.ObjectID(p.ID), Rect: rect}
	}
	if err := r.Context().Err(); err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.SearchWorkers
	}
	view := s.eng.Snapshot()
	defer view.Close()
	var visit func(cbb.JoinPair)
	var results collectPairs
	if req.Collect {
		visit = results.add
	}
	res, err := view.Join(probes, cbb.JoinOptions{Workers: workers}, visit)
	if err != nil {
		return nil, err
	}
	return JoinResponse{
		Epochs:    view.Epochs(),
		Pairs:     res.Pairs,
		Results:   results.pairs,
		Truncated: results.truncated,
	}, nil
}

// collectPairs accumulates join pairs up to MaxJoinPairs; the join engine
// invokes the callback from multiple workers, so appends are locked.
type collectPairs struct {
	mu        sync.Mutex
	pairs     []PairJSON
	truncated bool
}

func (c *collectPairs) add(p cbb.JoinPair) {
	c.mu.Lock()
	if len(c.pairs) < MaxJoinPairs {
		c.pairs = append(c.pairs, PairJSON{Probe: int64(p.Left), Indexed: int64(p.Right)})
	} else {
		c.truncated = true
	}
	c.mu.Unlock()
}

// --- control plane ------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Objects: s.eng.Len(), Epochs: s.eng.Epochs()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	io := s.eng.IOStats()
	resp := StatsResponse{
		Objects:        st.Objects,
		Height:         st.Height,
		LeafNodes:      st.LeafNodes,
		DirNodes:       st.DirNodes,
		ClipPoints:     st.ClipPoints,
		AvgClipPoints:  st.AvgClipPoints,
		ClipTableBytes: st.ClipTableBytes,
		Epochs:         s.eng.Epochs(),
	}
	resp.IO.LeafReads = io.LeafReads
	resp.IO.DirReads = io.DirReads
	resp.IO.Writes = io.Writes
	resp.IO.Reclips = io.Reclips
	if bs, ok := s.eng.BufferStats(); ok {
		resp.Buffer = &struct {
			Hits    int64   `json:"hits"`
			Misses  int64   `json:"misses"`
			HitRate float64 `json:"hit_rate"`
		}{Hits: bs.Hits, Misses: bs.Misses, HitRate: bs.HitRate()}
	}
	var reqs, errsN int64
	for _, ep := range dataEndpoints {
		reqs += s.requests[ep].Value()
		errsN += s.failures[ep].Value()
	}
	resp.Server.Requests = reqs
	resp.Server.Errors = errsN
	resp.Server.Shed = s.shed.Value()
	resp.Server.Coalesced = s.coalQ.Value()
	resp.Server.Batches = s.coalBatch.Value()
	resp.Server.InFlight = s.inflightG.Value()
	writeJSON(w, http.StatusOK, resp)
}
