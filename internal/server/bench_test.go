package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The serving-path microbenchmarks drive the HTTP handler in-process (no
// network, no real listener) so BENCH_baseline.json can track serving-layer
// regressions — JSON decode, admission, snapshot pin, query, JSON encode —
// independently of kernel TCP behaviour.

func benchServer(b *testing.B, window time.Duration) *Server {
	b.Helper()
	tree := buildTree(b, 20000)
	s, err := New(Config{
		Engine:           NewTreeEngine(tree, false),
		CoalesceWindow:   window,
		CoalesceMaxBatch: 16,
		SearchWorkers:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkServeSearch measures one uncoalesced point search through the
// full handler stack.
func BenchmarkServeSearch(b *testing.B) {
	s := benchServer(b, -1)
	body, _ := json.Marshal(SearchRequest{
		Query:     RectJSON{Lo: []float64{40, 40}, Hi: []float64{45, 45}},
		CountOnly: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("code = %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServeSearchAll measures an explicit 64-query batch on one
// pinned view through the handler stack (per-op time is for the whole
// batch).
func BenchmarkServeSearchAll(b *testing.B) {
	s := benchServer(b, -1)
	queries := make([]RectJSON, 64)
	for i := range queries {
		lo := float64(i % 50)
		queries[i] = RectJSON{Lo: []float64{lo, lo}, Hi: []float64{lo + 5, lo + 5}}
	}
	body, _ := json.Marshal(SearchAllRequest{Queries: queries, Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/searchall", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("code = %d: %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServeSearchCoalesced measures the coalescing path under
// concurrent clients: parallel point searches share micro-batches and one
// pinned view per batch.
func BenchmarkServeSearchCoalesced(b *testing.B) {
	s := benchServer(b, 100*time.Microsecond)
	body, _ := json.Marshal(SearchRequest{
		Query:     RectJSON{Lo: []float64{40, 40}, Hi: []float64{45, 45}},
		CountOnly: true,
	})
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, r)
			if w.Code != http.StatusOK {
				b.Fatalf("code = %d: %s", w.Code, w.Body.String())
			}
		}
	})
}
