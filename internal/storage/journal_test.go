package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// journalFixture creates a committed page file with three pages (1, 2, 3)
// and returns its path. Page payloads are distinct and full of structure so
// silent corruption cannot masquerade as success.
func journalFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.cbb")
	p, err := CreateFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		id, err := p.Allocate(KindLeaf)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(id, fixturePayload(int(id), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixturePayload(seed, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(seed*31 + i)
	}
	return buf
}

// stageTransaction enables the journal and stages the reference transaction:
// rewrite page 2, free page 3, allocate and write page 4. It does not commit.
func stageTransaction(t *testing.T, p *FilePager) {
	t.Helper()
	if err := p.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(2, fixturePayload(20, 80)); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(3); err != nil {
		t.Fatal(err)
	}
	id, err := p.Allocate(KindDirectory)
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		// The freed slot is reused within the transaction.
		t.Fatalf("allocate returned %d, want reuse of slot 3", id)
	}
	id, err = p.Allocate(KindAux)
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("allocate returned %d, want appended slot 4", id)
	}
	if err := p.Write(3, fixturePayload(30, 48)); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(4, fixturePayload(40, 96)); err != nil {
		t.Fatal(err)
	}
}

// checkState reports whether the reopened file matches the pre-transaction
// ("old") or post-transaction ("new") state; anything else fails the test.
func checkState(t *testing.T, path, context string) string {
	t.Helper()
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatalf("%s: reopen: %v", context, err)
	}
	defer p.Close()
	read := func(id PageID) ([]byte, PageKind, bool) {
		buf, kind, err := p.Read(id)
		if err != nil {
			return nil, 0, false
		}
		return buf, kind, true
	}
	b1, k1, ok1 := read(1)
	b2, _, ok2 := read(2)
	b3, k3, ok3 := read(3)
	b4, _, ok4 := read(4)
	if !ok1 || k1 != KindLeaf || !bytes.Equal(b1, fixturePayload(1, 64)) {
		t.Fatalf("%s: page 1 corrupt (ok=%v)", context, ok1)
	}
	oldState := ok2 && bytes.Equal(b2, fixturePayload(2, 64)) &&
		ok3 && k3 == KindLeaf && bytes.Equal(b3, fixturePayload(3, 64)) && !ok4
	newState := ok2 && bytes.Equal(b2, fixturePayload(20, 80)) &&
		ok3 && k3 == KindDirectory && bytes.Equal(b3, fixturePayload(30, 48)) &&
		ok4 && bytes.Equal(b4, fixturePayload(40, 96))
	switch {
	case oldState:
		return "old"
	case newState:
		return "new"
	default:
		t.Fatalf("%s: neither old nor new state (p2 ok=%v, p3 ok=%v kind=%v, p4 ok=%v)", context, ok2, ok3, k3, ok4)
		return ""
	}
}

func TestJournalStagedStateVisibleBeforeCommit(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	if got := p.DirtyPages(); got != 3 {
		t.Fatalf("DirtyPages = %d, want 3", got)
	}
	// The pager itself sees the staged state.
	buf, kind, err := p.Read(3)
	if err != nil || kind != KindDirectory || !bytes.Equal(buf, fixturePayload(30, 48)) {
		t.Fatalf("staged read of page 3: kind=%v err=%v", kind, err)
	}
	if _, _, err := p.Read(4); err != nil {
		t.Fatalf("staged read of appended page 4: %v", err)
	}
	u := p.Usage()
	if u.TotalPages != 4 {
		t.Fatalf("staged usage: %d pages, want 4", u.TotalPages)
	}
	// Close without committing: everything staged is discarded.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := checkState(t, path, "close without commit"); got != "old" {
		t.Fatalf("state after uncommitted close = %s, want old", got)
	}
}

func TestJournalDiscard(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	stageTransaction(t, p)
	p.DiscardJournal()
	buf, _, err := p.Read(2)
	if err != nil || !bytes.Equal(buf, fixturePayload(2, 64)) {
		t.Fatalf("discard did not restore page 2: %v", err)
	}
	if _, _, err := p.Read(4); err == nil {
		t.Fatal("discard left staged page 4 readable")
	}
	if u := p.Usage(); u.TotalPages != 3 {
		t.Fatalf("usage after discard: %d pages, want 3", u.TotalPages)
	}
}

func TestJournalCommitAndReopen(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	if err := p.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyPages(); got != 0 {
		t.Fatalf("DirtyPages after commit = %d", got)
	}
	if _, err := os.Stat(p.WALPath()); !os.IsNotExist(err) {
		t.Fatalf("WAL not removed after commit: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := checkState(t, path, "committed"); got != "new" {
		t.Fatalf("state after commit = %s, want new", got)
	}
}

// TestJournalCrashAfterWALDurable simulates a crash right after the WAL
// reached stable storage but before a single page was applied: the commit
// point has passed, so reopening must replay to the new state.
func TestJournalCrashAfterWALDurable(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	boom := errors.New("simulated crash after WAL sync")
	p.failAfterWAL = func() error { return boom }
	if err := p.CommitJournal(); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want injected crash", err)
	}
	if _, err := os.Stat(p.WALPath()); err != nil {
		t.Fatalf("WAL must survive the crash: %v", err)
	}
	p.f.Close() // abandon the handle without any cleanup, like a dead process
	if got := checkState(t, path, "crash after WAL"); got != "new" {
		t.Fatalf("state after WAL-durable crash = %s, want new (replay)", got)
	}
	// The replay consumed the WAL.
	if _, err := os.Stat(WALPathFor(path)); !os.IsNotExist(err) {
		t.Fatalf("WAL not removed after replay: %v", err)
	}
}

// TestJournalCrashMidApply simulates a crash after each prefix of the apply
// phase: the WAL is intact, so every reopen must complete the replay.
func TestJournalCrashMidApply(t *testing.T) {
	for stop := 0; stop < 3; stop++ {
		t.Run(fmt.Sprintf("stop=%d", stop), func(t *testing.T) {
			path := journalFixture(t)
			p, err := OpenFilePager(path)
			if err != nil {
				t.Fatal(err)
			}
			stageTransaction(t, p)
			boom := errors.New("simulated crash mid-apply")
			p.failApply = func(i int) error {
				if i == stop {
					return boom
				}
				return nil
			}
			if err := p.CommitJournal(); !errors.Is(err, boom) {
				t.Fatalf("commit error = %v, want injected crash", err)
			}
			p.f.Close()
			if got := checkState(t, path, "crash mid-apply"); got != "new" {
				t.Fatalf("state after mid-apply crash = %s, want new (replay)", got)
			}
		})
	}
}

// TestJournalTornWAL truncates the WAL at every offset — the states a crash
// during the WAL write can leave behind — and verifies that reopening always
// yields a clean decision: the old state for a torn log, the new state only
// when the commit record survived intact. Never an error, never a mix.
func TestJournalTornWAL(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	boom := errors.New("crash")
	p.failAfterWAL = func() error { return boom }
	if err := p.CommitJournal(); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	p.f.Close()
	wal, err := os.ReadFile(WALPathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sawOld, sawNew := false, false
	for cut := 0; cut <= len(wal); cut++ {
		// Restore the pristine pre-commit data file and a truncated WAL.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPathFor(path), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		state := checkState(t, path, fmt.Sprintf("WAL cut at %d", cut))
		if cut < len(wal) && state == "new" {
			t.Fatalf("truncated WAL (%d of %d bytes) replayed as committed", cut, len(wal))
		}
		if cut == len(wal) && state != "new" {
			t.Fatalf("complete WAL not replayed")
		}
		if state == "old" {
			sawOld = true
		} else {
			sawNew = true
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("sweep saw old=%v new=%v; expected both outcomes", sawOld, sawNew)
	}
}

// TestJournalCorruptWAL flips one byte at a time across the WAL: reopening
// must yield the old state (corrupt log discarded), the new state (the flip
// landed in dead bytes), or — never — silent corruption or a failed open.
func TestJournalCorruptWAL(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	boom := errors.New("crash")
	p.failAfterWAL = func() error { return boom }
	if err := p.CommitJournal(); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	p.f.Close()
	wal, err := os.ReadFile(WALPathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(wal); off++ {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), wal...)
		bad[off] ^= 0x5a
		if err := os.WriteFile(WALPathFor(path), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		// checkState fails the test on anything but a clean old/new state.
		checkState(t, path, fmt.Sprintf("WAL byte %d flipped", off))
	}
}

func TestAllocateRunPrefersContiguousFreeRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.cbb")
	p, err := CreateFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 8; i++ {
		if _, err := p.Allocate(KindLeaf); err != nil {
			t.Fatal(err)
		}
	}
	// Free pages 3,4,5 (contiguous) and 7 (isolated).
	for _, id := range []PageID{7, 4, 3, 5} {
		if err := p.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	first, err := p.AllocateRun(KindAux, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("run allocated at %d, want reuse of 3..5", first)
	}
	// No 2-run remains (only 7 free): the next run must append.
	first, err = p.AllocateRun(KindAux, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first != 9 {
		t.Fatalf("run allocated at %d, want appended 9..10", first)
	}
	if _, err := p.Allocate(KindLeaf); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeWAL fuzzes the WAL decoder: arbitrary input must produce a
// decoded log, ErrWALTorn, or ErrCorrupt — never a panic or a runaway
// allocation.
func FuzzDecodeWAL(f *testing.F) {
	// Seed with a real committed WAL.
	recs := []WALRecord{
		{Page: 1, Kind: KindLeaf, InUse: true, Payload: fixturePayload(1, 64)},
		{Page: 2, Kind: KindAux, InUse: false},
	}
	path := filepath.Join(f.TempDir(), "seed.wal")
	if err := writeWALFile(path, 128, 2, recs); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-4])
	f.Add([]byte("CBBWAL1\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := DecodeWAL(data)
		if err != nil {
			if !errors.Is(err, ErrWALTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if info.PageSize < minPageSize || info.PageSize > maxPageSize {
			t.Fatalf("accepted implausible page size %d", info.PageSize)
		}
		for _, r := range info.Records {
			if len(r.Payload) > info.PageSize {
				t.Fatalf("record payload %d exceeds page size %d", len(r.Payload), info.PageSize)
			}
			if int(r.Page) > info.SlotCount {
				t.Fatalf("record page %d beyond slot count %d", r.Page, info.SlotCount)
			}
		}
	})
}
