package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// This file implements the on-disk page store and its byte format. The same
// layout is used three ways: by FilePager for random-access page files, by
// Pager.WriteTo to stream an in-memory pager's content to an io.Writer, and
// by ReadPagerFrom to load such a stream back. A file is a fixed header
// followed by equally sized page slots, so page id i lives at a computable
// offset and can be read without touching any other page.
//
// Layout (all little-endian):
//
//	file header (32 bytes):
//	  [0:8]   magic "CBBPGF1\x00"
//	  [8:12]  format version (currently 1)
//	  [12:16] page size in bytes
//	  [16:24] page count (advisory; the file size is authoritative)
//	  [24:28] reserved (zero)
//	  [28:32] CRC-32C of bytes [0:28]
//	slot i (page id i+1) at offset 32 + i*(16+pageSize):
//	  [0]     page kind
//	  [1]     flags (bit 0: slot in use)
//	  [2:4]   reserved (zero)
//	  [4:8]   payload length
//	  [8:12]  CRC-32C of the payload
//	  [12:16] reserved (zero)
//	  [16:]   payload region, pageSize bytes (zero-padded past the payload)

const (
	fileMagic       = "CBBPGF1\x00"
	fileVersion     = 1
	fileHeaderBytes = 32
	slotHeaderBytes = 16
	slotInUse       = 1

	// minPageSize and maxPageSize bound the page sizes accepted when reading
	// a page file, guarding decoders against absurd allocations.
	minPageSize = 64
	maxPageSize = 1 << 20
)

// Errors of the on-disk page format.
var (
	ErrBadMagic   = errors.New("storage: not a cbb page file (bad magic)")
	ErrBadVersion = errors.New("storage: unsupported page file version")
	ErrCorrupt    = errors.New("storage: page file corrupt")
	ErrReadOnlyFS = errors.New("storage: page file opened read-only")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

func encodeFileHeader(pageSize int, pageCount uint64) []byte {
	buf := make([]byte, fileHeaderBytes)
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[8:], fileVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(pageSize))
	binary.LittleEndian.PutUint64(buf[16:], pageCount)
	binary.LittleEndian.PutUint32(buf[28:], checksum(buf[:28]))
	return buf
}

func decodeFileHeader(buf []byte) (pageSize int, pageCount uint64, err error) {
	if len(buf) < fileHeaderBytes {
		return 0, 0, fmt.Errorf("%w: header truncated", ErrCorrupt)
	}
	if string(buf[:8]) != fileMagic {
		return 0, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != fileVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if got, want := binary.LittleEndian.Uint32(buf[28:]), checksum(buf[:28]); got != want {
		return 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	ps := int(binary.LittleEndian.Uint32(buf[12:]))
	if ps < minPageSize || ps > maxPageSize {
		return 0, 0, fmt.Errorf("%w: implausible page size %d", ErrCorrupt, ps)
	}
	return ps, binary.LittleEndian.Uint64(buf[16:]), nil
}

func encodeSlotHeader(kind PageKind, inUse bool, payload []byte) []byte {
	buf := make([]byte, slotHeaderBytes)
	buf[0] = byte(kind)
	if inUse {
		buf[1] = slotInUse
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], checksum(payload))
	return buf
}

type slotMeta struct {
	kind   PageKind
	inUse  bool
	length int
}

func decodeSlotHeader(buf []byte, pageSize int) (slotMeta, uint32, error) {
	if len(buf) < slotHeaderBytes {
		return slotMeta{}, 0, fmt.Errorf("%w: slot header truncated", ErrCorrupt)
	}
	m := slotMeta{
		kind:   PageKind(buf[0]),
		inUse:  buf[1]&slotInUse != 0,
		length: int(binary.LittleEndian.Uint32(buf[4:])),
	}
	if m.length > pageSize {
		return slotMeta{}, 0, fmt.Errorf("%w: slot payload length %d exceeds page size %d", ErrCorrupt, m.length, pageSize)
	}
	return m, binary.LittleEndian.Uint32(buf[8:]), nil
}

// FilePager is an on-disk implementation of the PageStore contract: a page
// file whose fixed-size slots are read and written in place, so a tree can
// run directly off disk through the same buffer pool and I/O counters as the
// in-memory simulation. Every payload is protected by a CRC-32C verified on
// read. It is safe for concurrent use; Read performs the disk access outside
// the lock so concurrent readers proceed in parallel.
//
// Opening is O(1) in the file size: the slot directory and free list are
// rebuilt lazily, on the first operation that needs them (Allocate, Write,
// Free, Usage); the pure read path never does. Files that cannot be opened
// for writing are opened read-only — reads work as usual, mutations return
// ErrReadOnlyFS, and Close leaves the file bytes and mtime untouched.
type FilePager struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	pageSize  int
	readonly  bool
	dirty     bool       // header must be rewritten on Sync/Close
	slotCount int        // number of slots in the file
	dir       []slotMeta // lazy slot directory; nil until ensureDirLocked
	free      []PageID   // valid only once dir is built
	closed    bool
	reads     int64 // atomic: pages read from disk
	writes    int64 // atomic: pages written to disk
}

var (
	_ PageStore = (*Pager)(nil)
	_ PageStore = (*FilePager)(nil)
)

// CreateFilePager creates (or truncates) a page file at path with the given
// page size (DefaultPageSize when pageSize <= 0).
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("storage: page size %d out of range [%d, %d]", pageSize, minPageSize, maxPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	p := &FilePager{f: f, path: path, pageSize: pageSize, dir: []slotMeta{}, dirty: true}
	if _, err := f.WriteAt(encodeFileHeader(pageSize, 0), 0); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// OpenFilePager opens an existing page file, validating its header. The
// file is opened read-write when possible, falling back to read-only (e.g.
// for a snapshot shipped with mode 0444 or on a read-only mount); in that
// case mutations return ErrReadOnlyFS. Opening costs O(1): slot metadata is
// read on demand, never scanned up front.
func OpenFilePager(path string) (*FilePager, error) {
	readonly := false
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		readonly = true
	}
	p, err := loadFilePager(f, path, readonly)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func loadFilePager(f *os.File, path string, readonly bool) (*FilePager, error) {
	hdr := make([]byte, fileHeaderBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pageSize, _, err := decodeFileHeader(hdr)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	slotSize := int64(slotHeaderBytes + pageSize)
	body := st.Size() - fileHeaderBytes
	if body < 0 || body%slotSize != 0 {
		return nil, fmt.Errorf("%w: file size %d does not match page size %d", ErrCorrupt, st.Size(), pageSize)
	}
	return &FilePager{
		f: f, path: path, pageSize: pageSize,
		readonly: readonly, slotCount: int(body / slotSize),
	}, nil
}

// ensureDirLocked builds the slot directory and free list by scanning the
// slot headers; p.mu must be held. It runs at most once per pager, and only
// for operations that genuinely need global state (Allocate, Write, Free,
// Usage) — never on the open or read path.
func (p *FilePager) ensureDirLocked() error {
	if p.dir != nil {
		return nil
	}
	dir := make([]slotMeta, p.slotCount)
	var free []PageID
	buf := make([]byte, slotHeaderBytes)
	slotSize := int64(slotHeaderBytes + p.pageSize)
	for i := 0; i < p.slotCount; i++ {
		if _, err := p.f.ReadAt(buf, fileHeaderBytes+int64(i)*slotSize); err != nil {
			return fmt.Errorf("%w: reading slot %d header: %v", ErrCorrupt, i, err)
		}
		m, _, err := decodeSlotHeader(buf, p.pageSize)
		if err != nil {
			return fmt.Errorf("slot %d: %w", i, err)
		}
		dir[i] = m
		if !m.inUse {
			free = append(free, PageID(i+1))
		}
	}
	p.dir, p.free = dir, free
	return nil
}

// Path returns the file path backing the pager.
func (p *FilePager) Path() string { return p.path }

// PageSize returns the configured page size in bytes.
func (p *FilePager) PageSize() int { return p.pageSize }

// DiskStats returns the number of pages physically read from and written to
// the file so far (as opposed to the simulated node-access counters, which
// count logical accesses whether or not they hit a buffer).
func (p *FilePager) DiskStats() (reads, writes int64) {
	return atomic.LoadInt64(&p.reads), atomic.LoadInt64(&p.writes)
}

func (p *FilePager) slotOffset(id PageID) int64 {
	return fileHeaderBytes + int64(id-1)*int64(slotHeaderBytes+p.pageSize)
}

// Allocate reserves a new page of the given kind and returns its id, reusing
// freed slots when available.
func (p *FilePager) Allocate(kind PageKind) (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrPagerClosed
	}
	if p.readonly {
		return InvalidPage, ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return InvalidPage, err
	}
	var id PageID
	appended := false
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		id = PageID(len(p.dir) + 1)
		p.dir = append(p.dir, slotMeta{})
		p.slotCount = len(p.dir)
		appended = true
	}
	p.dir[id-1] = slotMeta{kind: kind, inUse: true}
	// Only the 16-byte slot header is written here; the payload region is
	// materialised by extending the file (zeros), so the Allocate+Write
	// pattern of the snapshot writer pays one full-page write, not two.
	if _, err := p.f.WriteAt(encodeSlotHeader(kind, true, nil), p.slotOffset(id)); err != nil {
		return InvalidPage, fmt.Errorf("storage: allocating page %d: %w", id, err)
	}
	if appended {
		if err := p.f.Truncate(p.slotOffset(id) + int64(slotHeaderBytes+p.pageSize)); err != nil {
			return InvalidPage, fmt.Errorf("storage: extending file for page %d: %w", id, err)
		}
	}
	p.dirty = true
	return id, nil
}

// writeSlotLocked writes a slot header and payload; p.mu must be held.
func (p *FilePager) writeSlotLocked(id PageID, kind PageKind, payload []byte) error {
	buf := make([]byte, slotHeaderBytes+p.pageSize)
	copy(buf, encodeSlotHeader(kind, true, payload))
	copy(buf[slotHeaderBytes:], payload)
	if _, err := p.f.WriteAt(buf, p.slotOffset(id)); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", id, err)
	}
	atomic.AddInt64(&p.writes, 1)
	return nil
}

// Write stores the payload in the page. The payload must fit in one page.
func (p *FilePager) Write(id PageID, payload []byte) error {
	if len(payload) > p.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooLarge, len(payload), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if p.readonly {
		return ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return err
	}
	if id < 1 || int(id) > len(p.dir) || !p.dir[id-1].inUse {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	kind := p.dir[id-1].kind
	if err := p.writeSlotLocked(id, kind, payload); err != nil {
		return err
	}
	p.dir[id-1].length = len(payload)
	p.dirty = true
	return nil
}

// Read returns a copy of the page payload and its kind, verifying the slot
// header and payload checksum straight off disk — it needs no directory, so
// a freshly opened pager serves its first read with a single page access.
// The disk access happens outside the pager lock.
func (p *FilePager) Read(id PageID) ([]byte, PageKind, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, 0, ErrPagerClosed
	}
	count := p.slotCount
	p.mu.Unlock()
	if id < 1 || int(id) > count {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}

	buf := make([]byte, slotHeaderBytes+p.pageSize)
	if _, err := p.f.ReadAt(buf, p.slotOffset(id)); err != nil {
		return nil, 0, fmt.Errorf("storage: reading page %d: %w", id, err)
	}
	atomic.AddInt64(&p.reads, 1)
	m, crc, err := decodeSlotHeader(buf, p.pageSize)
	if err != nil {
		return nil, 0, fmt.Errorf("page %d: %w", id, err)
	}
	if !m.inUse {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	payload := buf[slotHeaderBytes : slotHeaderBytes+m.length]
	if checksum(payload) != crc {
		return nil, 0, fmt.Errorf("%w: page %d payload checksum mismatch", ErrCorrupt, id)
	}
	return payload, m.kind, nil
}

// Free releases a page for reuse.
func (p *FilePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if p.readonly {
		return ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return err
	}
	if id < 1 || int(id) > len(p.dir) || !p.dir[id-1].inUse {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	hdr := encodeSlotHeader(p.dir[id-1].kind, false, nil)
	if _, err := p.f.WriteAt(hdr, p.slotOffset(id)); err != nil {
		return fmt.Errorf("storage: freeing page %d: %w", id, err)
	}
	p.dir[id-1] = slotMeta{}
	p.free = append(p.free, id)
	p.dirty = true
	return nil
}

// Usage returns a storage breakdown by page kind. It scans the slot
// directory (building it on first use), so the first call on a freshly
// opened pager is O(page count).
func (p *FilePager) Usage() Usage {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := Usage{Pages: make(map[PageKind]int), Bytes: make(map[PageKind]int)}
	if err := p.ensureDirLocked(); err != nil {
		return u
	}
	for _, m := range p.dir {
		if !m.inUse {
			continue
		}
		u.Pages[m.kind]++
		u.Bytes[m.kind] += m.length
		u.TotalPages++
		u.TotalBytes += m.length
	}
	return u
}

// Sync flushes the file to stable storage, rewriting the file header first
// if pages were allocated or freed since the last sync. On a read-only
// pager it is a no-op.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	return p.syncLocked()
}

func (p *FilePager) syncLocked() error {
	if p.readonly {
		return nil
	}
	if p.dirty {
		if _, err := p.f.WriteAt(encodeFileHeader(p.pageSize, uint64(p.slotCount)), 0); err != nil {
			return err
		}
		p.dirty = false
	}
	return p.f.Sync()
}

// Close syncs (when the pager has unflushed writes) and closes the file; a
// read-only or untouched pager leaves the file bytes and mtime unchanged.
// Subsequent operations fail with ErrPagerClosed. Close is idempotent.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.syncLocked()
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTo streams the pager's content to w in the on-disk page file format,
// producing bytes that OpenFilePager and ReadPagerFrom accept. It implements
// io.WriterTo.
func (p *Pager) WriteTo(w io.Writer) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return 0, ErrPagerClosed
	}
	count := uint64(p.next - 1)
	var written int64
	n, err := w.Write(encodeFileHeader(p.pageSize, count))
	written += int64(n)
	if err != nil {
		return written, err
	}
	slot := make([]byte, slotHeaderBytes+p.pageSize)
	for id := PageID(1); id < p.next; id++ {
		for i := range slot {
			slot[i] = 0
		}
		if pg, ok := p.pages[id]; ok {
			copy(slot, encodeSlotHeader(pg.kind, true, pg.data))
			copy(slot[slotHeaderBytes:], pg.data)
		} else {
			copy(slot, encodeSlotHeader(0, false, nil))
		}
		n, err := w.Write(slot)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadPagerFrom parses a page file stream (as produced by Pager.WriteTo or
// by a FilePager) into a new in-memory Pager, verifying the header and every
// payload checksum. Page ids are preserved.
func ReadPagerFrom(r io.Reader) (*Pager, error) {
	hdr := make([]byte, fileHeaderBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pageSize, _, err := decodeFileHeader(hdr)
	if err != nil {
		return nil, err
	}
	p := NewPager(pageSize)
	slot := make([]byte, slotHeaderBytes+pageSize)
	for {
		_, err := io.ReadFull(r, slot)
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated page slot: %v", ErrCorrupt, err)
		}
		id := p.next
		p.next++
		m, crc, err := decodeSlotHeader(slot, pageSize)
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
		if !m.inUse {
			continue
		}
		payload := slot[slotHeaderBytes : slotHeaderBytes+m.length]
		if checksum(payload) != crc {
			return nil, fmt.Errorf("%w: page %d payload checksum mismatch", ErrCorrupt, id)
		}
		p.pages[id] = &page{kind: m.kind, data: append([]byte(nil), payload...)}
	}
}
