package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the on-disk page store and its byte format. The same
// layout is used three ways: by FilePager for random-access page files, by
// Pager.WriteTo to stream an in-memory pager's content to an io.Writer, and
// by ReadPagerFrom to load such a stream back. A file is a fixed header
// followed by equally sized page slots, so page id i lives at a computable
// offset and can be read without touching any other page.
//
// Layout (all little-endian):
//
//	file header (32 bytes):
//	  [0:8]   magic "CBBPGF1\x00"
//	  [8:12]  format version (currently 1)
//	  [12:16] page size in bytes
//	  [16:24] page count (advisory; the file size is authoritative)
//	  [24:28] reserved (zero)
//	  [28:32] CRC-32C of bytes [0:28]
//	slot i (page id i+1) at offset 32 + i*(16+pageSize):
//	  [0]     page kind
//	  [1]     flags (bit 0: slot in use)
//	  [2:4]   reserved (zero)
//	  [4:8]   payload length
//	  [8:12]  CRC-32C of the payload
//	  [12:16] reserved (zero)
//	  [16:]   payload region, pageSize bytes (zero-padded past the payload)

const (
	fileMagic       = "CBBPGF1\x00"
	fileVersion     = 1
	fileHeaderBytes = 32
	slotHeaderBytes = 16
	slotInUse       = 1

	// minPageSize and maxPageSize bound the page sizes accepted when reading
	// a page file, guarding decoders against absurd allocations.
	minPageSize = 64
	maxPageSize = 1 << 20
)

// Errors of the on-disk page format.
var (
	ErrBadMagic   = errors.New("storage: not a cbb page file (bad magic)")
	ErrBadVersion = errors.New("storage: unsupported page file version")
	ErrCorrupt    = errors.New("storage: page file corrupt")
	ErrReadOnlyFS = errors.New("storage: page file opened read-only")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

func encodeFileHeader(pageSize int, pageCount uint64) []byte {
	buf := make([]byte, fileHeaderBytes)
	copy(buf, fileMagic)
	binary.LittleEndian.PutUint32(buf[8:], fileVersion)
	binary.LittleEndian.PutUint32(buf[12:], uint32(pageSize))
	binary.LittleEndian.PutUint64(buf[16:], pageCount)
	binary.LittleEndian.PutUint32(buf[28:], checksum(buf[:28]))
	return buf
}

func decodeFileHeader(buf []byte) (pageSize int, pageCount uint64, err error) {
	if len(buf) < fileHeaderBytes {
		return 0, 0, fmt.Errorf("%w: header truncated", ErrCorrupt)
	}
	if string(buf[:8]) != fileMagic {
		return 0, 0, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != fileVersion {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if got, want := binary.LittleEndian.Uint32(buf[28:]), checksum(buf[:28]); got != want {
		return 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	ps := int(binary.LittleEndian.Uint32(buf[12:]))
	if ps < minPageSize || ps > maxPageSize {
		return 0, 0, fmt.Errorf("%w: implausible page size %d", ErrCorrupt, ps)
	}
	return ps, binary.LittleEndian.Uint64(buf[16:]), nil
}

func encodeSlotHeader(kind PageKind, inUse bool, payload []byte) []byte {
	buf := make([]byte, slotHeaderBytes)
	buf[0] = byte(kind)
	if inUse {
		buf[1] = slotInUse
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:], checksum(payload))
	return buf
}

type slotMeta struct {
	kind   PageKind
	inUse  bool
	length int
}

func decodeSlotHeader(buf []byte, pageSize int) (slotMeta, uint32, error) {
	if len(buf) < slotHeaderBytes {
		return slotMeta{}, 0, fmt.Errorf("%w: slot header truncated", ErrCorrupt)
	}
	m := slotMeta{
		kind:   PageKind(buf[0]),
		inUse:  buf[1]&slotInUse != 0,
		length: int(binary.LittleEndian.Uint32(buf[4:])),
	}
	if m.length > pageSize {
		return slotMeta{}, 0, fmt.Errorf("%w: slot payload length %d exceeds page size %d", ErrCorrupt, m.length, pageSize)
	}
	return m, binary.LittleEndian.Uint32(buf[8:]), nil
}

// FilePager is an on-disk implementation of the PageStore contract: a page
// file whose fixed-size slots are read and written in place, so a tree can
// run directly off disk through the same buffer pool and I/O counters as the
// in-memory simulation. Every payload is protected by a CRC-32C verified on
// read. It is safe for concurrent use; Read performs the disk access outside
// the lock so concurrent readers proceed in parallel.
//
// Opening is O(1) in the file size: the slot directory and free list are
// rebuilt lazily, on the first operation that needs them (Allocate, Write,
// Free, Usage); the pure read path never does. Files that cannot be opened
// for writing are opened read-only — reads work as usual, mutations return
// ErrReadOnlyFS, and Close leaves the file bytes and mtime untouched.
//
// A pager can additionally be put in journal mode (EnableJournal): page
// mutations are then staged in an in-memory overlay — the dirty-page set —
// and hit the file only on CommitJournal, which funnels the whole batch
// through a write-ahead log so the commit is atomic: after a crash at any
// point, reopening the file yields either the state before the commit or the
// state after it, never a mix. Opening a page file replays a committed WAL
// left behind by a crash and discards a torn one.
type FilePager struct {
	mu             sync.Mutex
	f              *os.File
	path           string
	pageSize       int
	readonly       bool
	dirty          bool       // header must be rewritten on Sync/Close
	slotCount      int        // number of slots, including staged appends
	committedSlots int        // number of slots physically in the file
	dir            []slotMeta // lazy slot directory; nil until ensureDirLocked
	free           []PageID   // valid only once dir is built
	journal        bool       // mutations are staged until CommitJournal
	overlay        map[PageID]*overlayPage
	closed         bool
	reads          int64 // atomic: pages read from disk
	writes         int64 // atomic: pages written to disk

	// Group-commit accounting (guarded by mu, see CommitStats).
	commits     int64 // successful CommitJournal calls that had staged pages
	commitPages int64 // page images carried by those commits, summed
	walFsyncs   int64 // WAL fsyncs issued — exactly one per group commit

	// Commit fail-points for crash-injection tests: called after the WAL is
	// durable (but before any page is applied) and before applying record i.
	failAfterWAL func() error
	failApply    func(i int) error
}

// overlayPage is one staged (dirty) page of a journaled pager: the image the
// next commit will write, or a tombstone (inUse false) for a freed page.
type overlayPage struct {
	kind  PageKind
	inUse bool
	data  []byte
}

var (
	_ PageStore = (*Pager)(nil)
	_ PageStore = (*FilePager)(nil)
)

// CreateFilePager creates (or truncates) a page file at path with the given
// page size (DefaultPageSize when pageSize <= 0). Any write-ahead log left
// next to the path by a previous incarnation of the file is discarded.
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("storage: page size %d out of range [%d, %d]", pageSize, minPageSize, maxPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	// A stale committed WAL from the file this one replaces must never be
	// replayed onto the fresh file.
	if err := removeWAL(WALPathFor(path)); err != nil {
		f.Close()
		return nil, err
	}
	p := &FilePager{f: f, path: path, pageSize: pageSize, dir: []slotMeta{}, dirty: true}
	if _, err := f.WriteAt(encodeFileHeader(pageSize, 0), 0); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// OpenFilePager opens an existing page file, validating its header. The
// file is opened read-write when possible, falling back to read-only (e.g.
// for a snapshot shipped with mode 0444 or on a read-only mount); in that
// case mutations return ErrReadOnlyFS. Opening costs O(1) in the file size:
// slot metadata is read on demand, never scanned up front.
//
// If a write-ahead log with a committed transaction sits next to the file —
// the trace of a commit interrupted after its atomicity point — the log is
// replayed: onto the file when it is writable, or into an in-memory overlay
// when it is not, so readers always observe the committed state. A torn log
// (crash before the commit point) is discarded; the file is already
// consistent at the pre-commit state.
func OpenFilePager(path string) (*FilePager, error) {
	readonly := false
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		readonly = true
	}
	p, err := loadFilePager(f, path, readonly)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := p.recoverWAL(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

// OpenFilePagerReadOnly opens an existing page file strictly read-only,
// regardless of file permissions: mutations return ErrReadOnlyFS, Close
// leaves the file bytes, mtime, and any write-ahead log untouched. A
// committed WAL next to the file is replayed into an in-memory overlay so
// reads observe the committed state — and is left on disk for a future
// writable open to apply. Inspection tools use this so that looking at a
// snapshot can never alter it.
func OpenFilePagerReadOnly(path string) (*FilePager, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := loadFilePager(f, path, true)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := p.recoverWAL(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func loadFilePager(f *os.File, path string, readonly bool) (*FilePager, error) {
	hdr := make([]byte, fileHeaderBytes)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pageSize, _, err := decodeFileHeader(hdr)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	slotSize := int64(slotHeaderBytes + pageSize)
	body := st.Size() - fileHeaderBytes
	if body < 0 || body%slotSize != 0 {
		return nil, fmt.Errorf("%w: file size %d does not match page size %d", ErrCorrupt, st.Size(), pageSize)
	}
	slots := int(body / slotSize)
	return &FilePager{
		f: f, path: path, pageSize: pageSize,
		readonly: readonly, slotCount: slots, committedSlots: slots,
	}, nil
}

// recoverWAL inspects the pager's write-ahead log, if any, right after open.
// A committed log is replayed (to the file, or into the overlay on read-only
// media); a torn or foreign log is discarded on writable media and ignored
// otherwise.
func (p *FilePager) recoverWAL() error {
	walPath := WALPathFor(p.path)
	info, err := ReadWALFile(walPath)
	switch {
	case err == nil && info.PageSize == p.pageSize:
		if p.readonly {
			// Replay into the overlay: reads see the committed state, the
			// medium stays untouched, and the WAL remains for a future
			// writable open to apply.
			p.overlay = make(map[PageID]*overlayPage, len(info.Records))
			for _, r := range info.Records {
				p.overlay[r.Page] = &overlayPage{kind: r.Kind, inUse: r.InUse, data: r.Payload}
			}
			if info.SlotCount > p.slotCount {
				p.slotCount = info.SlotCount
			}
			return nil
		}
		if err := p.applyRecordsLocked(info.Records, info.SlotCount); err != nil {
			return fmt.Errorf("storage: replaying WAL %s: %w", walPath, err)
		}
		return removeWAL(walPath)
	case err == nil:
		// A WAL for a different page size cannot belong to this file.
		fallthrough
	case errors.Is(err, ErrWALTorn), errors.Is(err, ErrCorrupt):
		if p.readonly {
			return nil
		}
		return removeWAL(walPath)
	case os.IsNotExist(err):
		return nil
	default:
		return err
	}
}

// ensureDirLocked builds the slot directory and free list by scanning the
// slot headers; p.mu must be held. It runs at most once per pager, and only
// for operations that genuinely need global state (Allocate, Write, Free,
// Usage) — never on the open or read path.
func (p *FilePager) ensureDirLocked() error {
	if p.dir != nil {
		return nil
	}
	dir := make([]slotMeta, p.slotCount)
	var free []PageID
	buf := make([]byte, slotHeaderBytes)
	slotSize := int64(slotHeaderBytes + p.pageSize)
	for i := 0; i < p.slotCount; i++ {
		// Slots beyond the physically committed region exist only in the
		// overlay (a read-only pager whose WAL extended the file); their
		// on-disk meta is all-zero.
		if i < p.committedSlots {
			if _, err := p.f.ReadAt(buf, fileHeaderBytes+int64(i)*slotSize); err != nil {
				return fmt.Errorf("%w: reading slot %d header: %v", ErrCorrupt, i, err)
			}
			m, _, err := decodeSlotHeader(buf, p.pageSize)
			if err != nil {
				return fmt.Errorf("slot %d: %w", i, err)
			}
			dir[i] = m
		} else {
			dir[i] = slotMeta{}
		}
		if ov, ok := p.overlay[PageID(i+1)]; ok {
			if ov.inUse {
				dir[i] = slotMeta{kind: ov.kind, inUse: true, length: len(ov.data)}
			} else {
				dir[i] = slotMeta{}
			}
		}
		if !dir[i].inUse {
			free = append(free, PageID(i+1))
		}
	}
	p.dir, p.free = dir, free
	return nil
}

// Path returns the file path backing the pager.
func (p *FilePager) Path() string { return p.path }

// PageSize returns the configured page size in bytes.
func (p *FilePager) PageSize() int { return p.pageSize }

// DiskStats returns the number of pages physically read from and written to
// the file so far (as opposed to the simulated node-access counters, which
// count logical accesses whether or not they hit a buffer).
func (p *FilePager) DiskStats() (reads, writes int64) {
	return atomic.LoadInt64(&p.reads), atomic.LoadInt64(&p.writes)
}

func (p *FilePager) slotOffset(id PageID) int64 {
	return fileHeaderBytes + int64(id-1)*int64(slotHeaderBytes+p.pageSize)
}

// Allocate reserves a new page of the given kind and returns its id, reusing
// freed slots when available.
func (p *FilePager) Allocate(kind PageKind) (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrPagerClosed
	}
	if p.readonly {
		return InvalidPage, ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return InvalidPage, err
	}
	var id PageID
	appended := false
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		id = p.appendSlotLocked()
		appended = true
	}
	if err := p.claimSlotLocked(id, kind, appended); err != nil {
		return InvalidPage, err
	}
	return id, nil
}

// AllocateRun reserves n consecutively numbered pages of the given kind and
// returns the first id. It prefers a contiguous run from the free list and
// falls back to appending fresh slots at the end of the file, so callers
// that store a region as (first page, page count) — the snapshot's node
// index and clip table — keep working after pages have been freed and
// reused in arbitrary order.
func (p *FilePager) AllocateRun(kind PageKind, n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, fmt.Errorf("storage: AllocateRun of %d pages", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrPagerClosed
	}
	if p.readonly {
		return InvalidPage, ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return InvalidPage, err
	}
	if first, ok := p.takeFreeRunLocked(n); ok {
		for i := 0; i < n; i++ {
			if err := p.claimSlotLocked(first+PageID(i), kind, false); err != nil {
				return InvalidPage, err
			}
		}
		return first, nil
	}
	first := PageID(len(p.dir) + 1)
	for i := 0; i < n; i++ {
		id := p.appendSlotLocked()
		if err := p.claimSlotLocked(id, kind, true); err != nil {
			return InvalidPage, err
		}
	}
	return first, nil
}

// takeFreeRunLocked removes a run of n consecutive page ids from the free
// list if one exists, returning its first id.
func (p *FilePager) takeFreeRunLocked(n int) (PageID, bool) {
	if len(p.free) < n {
		return InvalidPage, false
	}
	sorted := append([]PageID(nil), p.free...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	run := 1
	for i := 0; i < len(sorted); i++ {
		if i > 0 && sorted[i] == sorted[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run < n {
			continue
		}
		first := sorted[i] - PageID(n-1)
		kept := p.free[:0]
		for _, id := range p.free {
			if id < first || id >= first+PageID(n) {
				kept = append(kept, id)
			}
		}
		p.free = kept
		return first, true
	}
	return InvalidPage, false
}

// appendSlotLocked grows the slot directory by one and returns the new id.
func (p *FilePager) appendSlotLocked() PageID {
	p.dir = append(p.dir, slotMeta{})
	p.slotCount = len(p.dir)
	return PageID(len(p.dir))
}

// claimSlotLocked marks a slot in use with the given kind: staged in the
// overlay in journal mode, written straight to the file otherwise.
func (p *FilePager) claimSlotLocked(id PageID, kind PageKind, appended bool) error {
	p.dir[id-1] = slotMeta{kind: kind, inUse: true}
	p.dirty = true
	if p.journal {
		p.overlay[id] = &overlayPage{kind: kind, inUse: true}
		return nil
	}
	// Only the 16-byte slot header is written here; the payload region is
	// materialised by extending the file (zeros), so the Allocate+Write
	// pattern of the snapshot writer pays one full-page write, not two.
	if _, err := p.f.WriteAt(encodeSlotHeader(kind, true, nil), p.slotOffset(id)); err != nil {
		return fmt.Errorf("storage: allocating page %d: %w", id, err)
	}
	if appended {
		if err := p.f.Truncate(p.slotOffset(id) + int64(slotHeaderBytes+p.pageSize)); err != nil {
			return fmt.Errorf("storage: extending file for page %d: %w", id, err)
		}
		p.committedSlots = p.slotCount
	}
	return nil
}

// writeSlotLocked writes a slot header and payload; p.mu must be held.
func (p *FilePager) writeSlotLocked(id PageID, kind PageKind, payload []byte) error {
	buf := make([]byte, slotHeaderBytes+p.pageSize)
	copy(buf, encodeSlotHeader(kind, true, payload))
	copy(buf[slotHeaderBytes:], payload)
	if _, err := p.f.WriteAt(buf, p.slotOffset(id)); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", id, err)
	}
	atomic.AddInt64(&p.writes, 1)
	return nil
}

// Write stores the payload in the page. The payload must fit in one page.
func (p *FilePager) Write(id PageID, payload []byte) error {
	if len(payload) > p.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooLarge, len(payload), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if p.readonly {
		return ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return err
	}
	if id < 1 || int(id) > len(p.dir) || !p.dir[id-1].inUse {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	kind := p.dir[id-1].kind
	if p.journal {
		p.overlay[id] = &overlayPage{kind: kind, inUse: true, data: append([]byte(nil), payload...)}
	} else if err := p.writeSlotLocked(id, kind, payload); err != nil {
		return err
	}
	p.dir[id-1].length = len(payload)
	p.dirty = true
	return nil
}

// Read returns a copy of the page payload and its kind, verifying the slot
// header and payload checksum straight off disk — it needs no directory, so
// a freshly opened pager serves its first read with a single page access.
// The disk access happens outside the pager lock.
func (p *FilePager) Read(id PageID) ([]byte, PageKind, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, 0, ErrPagerClosed
	}
	count := p.slotCount
	if ov, ok := p.overlay[id]; ok {
		// The page is staged (journal mode) or recovered from a committed WAL
		// on read-only media: the overlay image is the current truth.
		if !ov.inUse {
			p.mu.Unlock()
			return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
		}
		out := append([]byte(nil), ov.data...)
		kind := ov.kind
		p.mu.Unlock()
		return out, kind, nil
	}
	p.mu.Unlock()
	if id < 1 || int(id) > count {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}

	buf := make([]byte, slotHeaderBytes+p.pageSize)
	if _, err := p.f.ReadAt(buf, p.slotOffset(id)); err != nil {
		return nil, 0, fmt.Errorf("storage: reading page %d: %w", id, err)
	}
	atomic.AddInt64(&p.reads, 1)
	m, crc, err := decodeSlotHeader(buf, p.pageSize)
	if err != nil {
		return nil, 0, fmt.Errorf("page %d: %w", id, err)
	}
	if !m.inUse {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	payload := buf[slotHeaderBytes : slotHeaderBytes+m.length]
	if checksum(payload) != crc {
		return nil, 0, fmt.Errorf("%w: page %d payload checksum mismatch", ErrCorrupt, id)
	}
	return payload, m.kind, nil
}

// Free releases a page for reuse.
func (p *FilePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if p.readonly {
		return ErrReadOnlyFS
	}
	if err := p.ensureDirLocked(); err != nil {
		return err
	}
	if id < 1 || int(id) > len(p.dir) || !p.dir[id-1].inUse {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	if p.journal {
		p.overlay[id] = &overlayPage{kind: p.dir[id-1].kind, inUse: false}
	} else {
		hdr := encodeSlotHeader(p.dir[id-1].kind, false, nil)
		if _, err := p.f.WriteAt(hdr, p.slotOffset(id)); err != nil {
			return fmt.Errorf("storage: freeing page %d: %w", id, err)
		}
	}
	p.dir[id-1] = slotMeta{}
	p.free = append(p.free, id)
	p.dirty = true
	return nil
}

// Usage returns a storage breakdown by page kind. It scans the slot
// directory (building it on first use), so the first call on a freshly
// opened pager is O(page count).
func (p *FilePager) Usage() Usage {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := Usage{Pages: make(map[PageKind]int), Bytes: make(map[PageKind]int)}
	if err := p.ensureDirLocked(); err != nil {
		return u
	}
	for _, m := range p.dir {
		if !m.inUse {
			continue
		}
		u.Pages[m.kind]++
		u.Bytes[m.kind] += m.length
		u.TotalPages++
		u.TotalBytes += m.length
	}
	return u
}

// Sync flushes the file to stable storage, rewriting the file header first
// if pages were allocated or freed since the last sync. On a read-only
// pager it is a no-op.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	return p.syncLocked()
}

func (p *FilePager) syncLocked() error {
	if p.readonly {
		return nil
	}
	if p.journal {
		// Staged pages become durable only through CommitJournal; the file
		// header on disk keeps describing the committed region.
		return p.f.Sync()
	}
	if p.dirty {
		if _, err := p.f.WriteAt(encodeFileHeader(p.pageSize, uint64(p.slotCount)), 0); err != nil {
			return err
		}
		p.dirty = false
	}
	return p.f.Sync()
}

// EnableJournal switches the pager into journal mode: every Allocate, Write,
// and Free from now on is staged in an in-memory overlay (the dirty-page
// set) and reaches the file only through CommitJournal, which makes the
// whole batch atomic via the write-ahead log. Reads see staged state
// immediately. EnableJournal fails on a read-only pager; enabling an already
// journaled pager is a no-op.
//
// Enabling the journal is O(1): the slot directory and free list are NOT
// scanned here — they are still built lazily, by the first operation that
// genuinely needs them (Allocate, Write, Free, Usage) — so a writable Open
// of an arbitrarily large snapshot stays constant-time.
func (p *FilePager) EnableJournal() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if p.readonly {
		return ErrReadOnlyFS
	}
	if p.journal {
		return nil
	}
	p.journal = true
	p.overlay = make(map[PageID]*overlayPage)
	return nil
}

// Journaled reports whether the pager stages mutations for atomic commit.
func (p *FilePager) Journaled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.journal
}

// DirtyPages returns the number of staged (uncommitted) pages.
func (p *FilePager) DirtyPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.overlay)
}

// CommitJournal atomically applies every staged page mutation to the file:
// the page images are written to the write-ahead log and fsynced first, then
// applied to the page file and fsynced, then the log is removed. If the
// process dies at any point, the next OpenFilePager either replays the
// committed log or discards a torn one — the file is never left half
// written. On a pager with nothing staged it degenerates to Sync.
func (p *FilePager) CommitJournal() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if !p.journal || len(p.overlay) == 0 {
		return p.syncLocked()
	}
	records := make([]WALRecord, 0, len(p.overlay))
	for id, ov := range p.overlay {
		records = append(records, WALRecord{Page: id, Kind: ov.kind, InUse: ov.inUse, Payload: ov.data})
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Page < records[j].Page })
	walPath := WALPathFor(p.path)
	if err := writeWALFile(walPath, p.pageSize, p.slotCount, records); err != nil {
		return err
	}
	p.walFsyncs++ // the whole batch just became durable with one WAL fsync
	// From here on the transaction is durable: a crash replays the WAL on
	// the next open, so every failure below leaves a recoverable file.
	if p.failAfterWAL != nil {
		if err := p.failAfterWAL(); err != nil {
			return err
		}
	}
	if err := p.applyRecordsLocked(records, p.slotCount); err != nil {
		return err
	}
	if err := removeWAL(walPath); err != nil {
		return err
	}
	p.overlay = make(map[PageID]*overlayPage)
	p.dirty = false
	p.commits++
	p.commitPages += int64(len(records))
	return nil
}

// CommitStats is the group-commit accounting of a journaled FilePager: how
// many CommitJournal calls carried staged pages, how many page images they
// wrote in total, and how many WAL fsyncs that cost. WALFsyncs equals
// Commits by construction — a whole batch, however many pages, becomes
// durable with exactly one WAL write + fsync — so Pages/WALFsyncs is the
// group-commit amortisation factor.
type CommitStats struct {
	Commits   int64
	Pages     int64
	WALFsyncs int64
}

// CommitStats returns the pager's group-commit counters.
func (p *FilePager) CommitStats() CommitStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return CommitStats{Commits: p.commits, Pages: p.commitPages, WALFsyncs: p.walFsyncs}
}

// SetCommitFailpoints installs crash-injection hooks for durability tests:
// afterWAL runs once the write-ahead log is durable but before any page is
// applied; apply runs before applying record i. Returning an error from
// either aborts the commit at that point, simulating a crash (the WAL is
// left on disk for recovery). Pass nil, nil to clear.
func (p *FilePager) SetCommitFailpoints(afterWAL func() error, apply func(i int) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failAfterWAL, p.failApply = afterWAL, apply
}

// DiscardJournal drops every staged page mutation, returning the pager to
// the last committed state. The slot directory and free list are rebuilt
// from the file on next use.
func (p *FilePager) DiscardJournal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.journal {
		return
	}
	p.overlay = make(map[PageID]*overlayPage)
	p.dir, p.free = nil, nil
	p.slotCount = p.committedSlots
	p.dirty = false
}

// applyRecordsLocked writes page images straight into the file — the apply
// phase of a commit and of WAL replay on open — then extends the file to the
// full slot region, rewrites the file header, and fsyncs. It is idempotent:
// replaying the same records again produces the same bytes.
func (p *FilePager) applyRecordsLocked(records []WALRecord, slotCount int) error {
	// Extend the file to its final size up front: every later write then
	// lands inside the file, so a crash mid-apply can never leave a
	// partial trailing slot that the next open would reject before it even
	// looks at the WAL.
	want := fileHeaderBytes + int64(slotCount)*int64(slotHeaderBytes+p.pageSize)
	if st, err := p.f.Stat(); err != nil {
		return err
	} else if st.Size() < want {
		if err := p.f.Truncate(want); err != nil {
			return err
		}
	}
	for i, r := range records {
		if p.failApply != nil {
			if err := p.failApply(i); err != nil {
				return err
			}
		}
		if r.InUse {
			if err := p.writeSlotLocked(r.Page, r.Kind, r.Payload); err != nil {
				return err
			}
		} else {
			hdr := encodeSlotHeader(r.Kind, false, nil)
			if _, err := p.f.WriteAt(hdr, p.slotOffset(r.Page)); err != nil {
				return fmt.Errorf("storage: freeing page %d: %w", r.Page, err)
			}
		}
	}
	if _, err := p.f.WriteAt(encodeFileHeader(p.pageSize, uint64(slotCount)), 0); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	if slotCount > p.committedSlots {
		p.committedSlots = slotCount
	}
	if slotCount > p.slotCount {
		p.slotCount = slotCount
	}
	return nil
}

// Close syncs (when the pager has unflushed writes) and closes the file; a
// read-only or untouched pager leaves the file bytes and mtime unchanged.
// On a journaled pager, staged pages that were never committed are
// discarded — call CommitJournal first to keep them. Subsequent operations
// fail with ErrPagerClosed. Close is idempotent.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.syncLocked()
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadOnlyFile reports whether the pager fell back to a read-only open and
// therefore rejects mutations with ErrReadOnlyFS.
func (p *FilePager) ReadOnlyFile() bool { return p.readonly }

// Slot describes one page slot of the file for integrity checks (cbbinspect
// -verify): its id, kind, whether it is in use, and its payload length.
type Slot struct {
	ID     PageID
	Kind   PageKind
	InUse  bool
	Length int
}

// Slots returns the state of every page slot, building the slot directory
// if needed (O(page count) on first call). Staged journal state is included.
func (p *FilePager) Slots() ([]Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPagerClosed
	}
	if err := p.ensureDirLocked(); err != nil {
		return nil, err
	}
	out := make([]Slot, len(p.dir))
	for i, m := range p.dir {
		out[i] = Slot{ID: PageID(i + 1), Kind: m.kind, InUse: m.inUse, Length: m.length}
	}
	return out, nil
}

// WALPath returns the path of the pager's write-ahead log file (which exists
// only while a commit is in flight or after a crash).
func (p *FilePager) WALPath() string { return WALPathFor(p.path) }

// WriteTo streams the pager's content to w in the on-disk page file format,
// producing bytes that OpenFilePager and ReadPagerFrom accept. It implements
// io.WriterTo.
func (p *Pager) WriteTo(w io.Writer) (int64, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return 0, ErrPagerClosed
	}
	count := uint64(p.next - 1)
	var written int64
	n, err := w.Write(encodeFileHeader(p.pageSize, count))
	written += int64(n)
	if err != nil {
		return written, err
	}
	slot := make([]byte, slotHeaderBytes+p.pageSize)
	for id := PageID(1); id < p.next; id++ {
		for i := range slot {
			slot[i] = 0
		}
		if pg, ok := p.pages[id]; ok {
			copy(slot, encodeSlotHeader(pg.kind, true, pg.data))
			copy(slot[slotHeaderBytes:], pg.data)
		} else {
			copy(slot, encodeSlotHeader(0, false, nil))
		}
		n, err := w.Write(slot)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadPagerFrom parses a page file stream (as produced by Pager.WriteTo or
// by a FilePager) into a new in-memory Pager, verifying the header and every
// payload checksum. Page ids are preserved.
func ReadPagerFrom(r io.Reader) (*Pager, error) {
	hdr := make([]byte, fileHeaderBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pageSize, _, err := decodeFileHeader(hdr)
	if err != nil {
		return nil, err
	}
	p := NewPager(pageSize)
	slot := make([]byte, slotHeaderBytes+pageSize)
	for {
		_, err := io.ReadFull(r, slot)
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated page slot: %v", ErrCorrupt, err)
		}
		id := p.next
		p.next++
		m, crc, err := decodeSlotHeader(slot, pageSize)
		if err != nil {
			return nil, fmt.Errorf("page %d: %w", id, err)
		}
		if !m.inUse {
			continue
		}
		payload := slot[slotHeaderBytes : slotHeaderBytes+m.length]
		if checksum(payload) != crc {
			return nil, fmt.Errorf("%w: page %d payload checksum mismatch", ErrCorrupt, id)
		}
		p.pages[id] = &page{kind: m.kind, data: append([]byte(nil), payload...)}
	}
}
