//go:build !unix

package storage

import "os"

// The non-unix fallback never maps anything: OpenMmapStore fails with
// ErrMmapUnsupported and callers degrade to the pread-based FilePager.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, ErrMmapUnsupported
}

func munmapFile(data []byte) error { return nil }
