package storage

import "sync"

// BufferPool is an LRU page cache used to emulate a bounded main-memory
// buffer in front of the simulated disk. The scalability experiment
// (Figure 15 of the paper) starts with a cold buffer and lets the "OS cache"
// retain recently touched nodes; BufferPool reproduces that behaviour and
// reports hit/miss counts so experiments can charge a cost to misses.
//
// The pool is lock-striped so parallel batch searches do not serialise on a
// single mutex: pages hash onto independent shards, each holding an
// intrusive array-based LRU list (bounded pools) or a plain membership set
// (unbounded pools, where recency is unobservable because nothing is ever
// evicted). Touch performs no per-access heap allocation in steady state.
//
// Sharding semantics: an unbounded pool behaves exactly like a single LRU
// for any shard count (a page hits iff it was touched before). A bounded
// pool partitions its capacity across shards, so eviction decisions are
// per-shard approximations of a global LRU — the standard trade-off of
// lock-striped caches. Small bounded pools (capacity < 2·64) use a single
// shard and therefore keep exact global-LRU behaviour, which also keeps the
// small-pool sweeps of the cold-start experiment exactly reproducible.
type BufferPool struct {
	shards []poolShard
	shift  uint // 64 - log2(len(shards)); used when len(shards) > 1
}

const (
	// poolMaxShards is the stripe count of unbounded and large bounded
	// pools; a power of two so page hashes map onto shards with a shift.
	poolMaxShards = 16
	// poolMinShardCap is the smallest per-shard capacity worth splitting
	// for: below it, eviction behaviour would be dominated by hash noise
	// rather than recency.
	poolMinShardCap = 64
)

// poolShardsFor picks the stripe count: unbounded pools always use the
// maximum, bounded pools double the stripe count only while every shard
// keeps at least poolMinShardCap pages.
func poolShardsFor(capacity int) int {
	if capacity <= 0 {
		return poolMaxShards
	}
	n := 1
	for n*2 <= poolMaxShards && capacity/(n*2) >= poolMinShardCap {
		n *= 2
	}
	return n
}

// poolShard is one stripe: a mutex, the page index, and (for bounded
// shards) an intrusive doubly linked LRU list threaded through a flat slot
// array — no container/list, no allocation per touch.
type poolShard struct {
	mu       sync.Mutex
	capacity int // 0 = unbounded (membership only, no LRU list)
	index    map[PageID]int32
	slots    []poolSlot
	head     int32 // most recently used, -1 when empty
	tail     int32 // least recently used, -1 when empty
	hits     int64
	misses   int64
	// Pad the 72 bytes of fields above to 128 — two 64-byte cache lines —
	// so the per-shard mutexes and counters of adjacent shards never share
	// a cache line under parallel batch search.
	_ [7]int64
}

type poolSlot struct {
	id         PageID
	prev, next int32
}

// NewBufferPool creates a pool holding at most capacity pages. A capacity of
// zero or less means "unbounded" (everything is a hit after first touch).
func NewBufferPool(capacity int) *BufferPool {
	return newBufferPool(capacity, poolShardsFor(capacity))
}

// NewUnshardedBufferPool creates a single-shard pool whose eviction is an
// exact global LRU at every capacity. Strictly sequential experiments whose
// reported metric is the miss count itself (the cold-start sweep) use it so
// the measurement stays an exact LRU simulation; concurrent workloads should
// prefer NewBufferPool's lock-striped layout.
func NewUnshardedBufferPool(capacity int) *BufferPool {
	return newBufferPool(capacity, 1)
}

func newBufferPool(capacity, shards int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	b := &BufferPool{shards: make([]poolShard, shards)}
	for s := shards; s > 1; s >>= 1 {
		b.shift++
	}
	b.shift = 64 - b.shift
	per, extra := capacity/shards, capacity%shards
	for i := range b.shards {
		sh := &b.shards[i]
		if capacity > 0 {
			sh.capacity = per
			if i < extra {
				sh.capacity++
			}
		}
		sh.index = make(map[PageID]int32)
		sh.head, sh.tail = -1, -1
	}
	return b
}

// shard maps a page id onto its stripe with a Fibonacci hash, so the
// sequential page ids of one tree spread evenly.
func (b *BufferPool) shard(id PageID) *poolShard {
	if len(b.shards) == 1 {
		return &b.shards[0]
	}
	return &b.shards[(uint64(id)*0x9E3779B97F4A7C15)>>b.shift]
}

// Touch records an access to the page and reports whether it was a buffer
// hit. On a miss the page is admitted, possibly evicting the shard's least
// recently used page.
func (b *BufferPool) Touch(id PageID) bool {
	s := b.shard(id)
	s.mu.Lock()
	hit := s.touch(id)
	s.mu.Unlock()
	return hit
}

func (s *poolShard) touch(id PageID) bool {
	if slot, ok := s.index[id]; ok {
		s.hits++
		if s.capacity > 0 && s.head != slot {
			s.unlink(slot)
			s.pushFront(slot)
		}
		return true
	}
	s.misses++
	if s.capacity == 0 {
		// Unbounded: membership is all that matters.
		s.index[id] = 0
		return false
	}
	var slot int32
	if len(s.slots) < s.capacity {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, poolSlot{id: id})
	} else {
		// Reuse the least recently used slot.
		slot = s.tail
		s.unlink(slot)
		delete(s.index, s.slots[slot].id)
		s.slots[slot].id = id
	}
	s.pushFront(slot)
	s.index[id] = slot
	return false
}

func (s *poolShard) unlink(slot int32) {
	sl := &s.slots[slot]
	if sl.prev >= 0 {
		s.slots[sl.prev].next = sl.next
	} else {
		s.head = sl.next
	}
	if sl.next >= 0 {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.tail = sl.prev
	}
}

func (s *poolShard) pushFront(slot int32) {
	sl := &s.slots[slot]
	sl.prev = -1
	sl.next = s.head
	if s.head >= 0 {
		s.slots[s.head].prev = slot
	}
	s.head = slot
	if s.tail < 0 {
		s.tail = slot
	}
}

// Contains reports whether the page is currently buffered, without updating
// recency or statistics.
func (b *BufferPool) Contains(id PageID) bool {
	s := b.shard(id)
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	return ok
}

// Len returns the number of buffered pages.
func (b *BufferPool) Len() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Reset empties the pool and zeroes the statistics (a "cold start").
func (b *BufferPool) Reset() {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.index = make(map[PageID]int32)
		s.slots = s.slots[:0]
		s.head, s.tail = -1, -1
		s.hits, s.misses = 0, 0
		s.mu.Unlock()
	}
}
