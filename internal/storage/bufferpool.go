package storage

import (
	"container/list"
	"sync"
)

// BufferPool is an LRU page cache used to emulate a bounded main-memory
// buffer in front of the simulated disk. The scalability experiment
// (Figure 15 of the paper) starts with a cold buffer and lets the "OS cache"
// retain recently touched nodes; BufferPool reproduces that behaviour and
// reports hit/miss counts so experiments can charge a cost to misses.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List               // front = most recently used
	index    map[PageID]*list.Element // page id -> lru element
	hits     int64
	misses   int64
}

// NewBufferPool creates a pool holding at most capacity pages. A capacity of
// zero or less means "unbounded" (everything is a hit after first touch).
func NewBufferPool(capacity int) *BufferPool {
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageID]*list.Element),
	}
}

// Touch records an access to the page and reports whether it was a buffer
// hit. On a miss the page is admitted, possibly evicting the least recently
// used page.
func (b *BufferPool) Touch(id PageID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.index[id]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	el := b.lru.PushFront(id)
	b.index[id] = el
	if b.capacity > 0 && b.lru.Len() > b.capacity {
		victim := b.lru.Back()
		if victim != nil {
			b.lru.Remove(victim)
			delete(b.index, victim.Value.(PageID))
		}
	}
	return false
}

// Contains reports whether the page is currently buffered, without updating
// recency or statistics.
func (b *BufferPool) Contains(id PageID) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.index[id]
	return ok
}

// Len returns the number of buffered pages.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lru.Len()
}

// Stats returns the cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses
}

// Reset empties the pool and zeroes the statistics (a "cold start").
func (b *BufferPool) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lru.Init()
	b.index = make(map[PageID]*list.Element)
	b.hits, b.misses = 0, 0
}
