package storage

import "sync"

// BufferPool is an LRU page cache used to emulate a bounded main-memory
// buffer in front of the simulated disk. The scalability experiment
// (Figure 15 of the paper) starts with a cold buffer and lets the "OS cache"
// retain recently touched nodes; BufferPool reproduces that behaviour and
// reports hit/miss counts so experiments can charge a cost to misses.
//
// The pool is lock-striped so parallel batch searches do not serialise on a
// single mutex: pages hash onto independent shards, each holding an
// intrusive array-based LRU list (bounded pools) or a plain membership set
// (unbounded pools, where recency is unobservable because nothing is ever
// evicted). Touch performs no per-access heap allocation in steady state.
//
// Sharding semantics: an unbounded pool behaves exactly like a single LRU
// for any shard count (a page hits iff it was touched before). A bounded
// pool partitions its capacity across shards, so eviction decisions are
// per-shard approximations of a global LRU — the standard trade-off of
// lock-striped caches. Small bounded pools (capacity < 2·64) use a single
// shard and therefore keep exact global-LRU behaviour, which also keeps the
// small-pool sweeps of the cold-start experiment exactly reproducible.
type BufferPool struct {
	shards []poolShard
	shift  uint // 64 - log2(len(shards)); used when len(shards) > 1
}

const (
	// poolMaxShards is the stripe count of unbounded and large bounded
	// pools; a power of two so page hashes map onto shards with a shift.
	poolMaxShards = 16
	// poolMinShardCap is the smallest per-shard capacity worth splitting
	// for: below it, eviction behaviour would be dominated by hash noise
	// rather than recency.
	poolMinShardCap = 64
)

// poolShardsFor picks the stripe count: unbounded pools always use the
// maximum, bounded pools double the stripe count only while every shard
// keeps at least poolMinShardCap pages.
func poolShardsFor(capacity int) int {
	if capacity <= 0 {
		return poolMaxShards
	}
	n := 1
	for n*2 <= poolMaxShards && capacity/(n*2) >= poolMinShardCap {
		n *= 2
	}
	return n
}

// poolShard is one stripe: a mutex, the page index, and (for bounded
// shards) an intrusive doubly linked LRU list threaded through a flat slot
// array — no container/list, no allocation per touch.
type poolShard struct {
	mu       sync.Mutex
	capacity int // 0 = unbounded (membership only, no LRU list)
	// Byte-budget mode (byteCap > 0): eviction is driven by the sum of the
	// resident pages' byte sizes instead of their count, so compressed and
	// raw pages share one budget honestly. capacity is 0 in this mode; freed
	// slots are recycled through freeSlots because evictions and admissions
	// no longer pair one-to-one.
	byteCap   int64
	byteUsed  int64
	freeSlots []int32
	index     map[PageID]int32
	slots     []poolSlot
	head      int32 // most recently used, -1 when empty
	tail      int32 // least recently used, -1 when empty
	hits      int64
	misses    int64
	// Pad the 112 bytes of fields above to 128 — two 64-byte cache lines —
	// so the per-shard mutexes and counters of adjacent shards never share
	// a cache line under parallel batch search.
	_ [2]int64
}

type poolSlot struct {
	id         PageID
	size       int64 // resident byte charge (byte-budget mode only)
	prev, next int32
}

// NewBufferPool creates a pool holding at most capacity pages. A capacity of
// zero or less means "unbounded" (everything is a hit after first touch).
func NewBufferPool(capacity int) *BufferPool {
	return newBufferPool(capacity, poolShardsFor(capacity))
}

// NewUnshardedBufferPool creates a single-shard pool whose eviction is an
// exact global LRU at every capacity. Strictly sequential experiments whose
// reported metric is the miss count itself (the cold-start sweep) use it so
// the measurement stays an exact LRU simulation; concurrent workloads should
// prefer NewBufferPool's lock-striped layout.
func NewUnshardedBufferPool(capacity int) *BufferPool {
	return newBufferPool(capacity, 1)
}

// NewBufferPoolBytes creates a pool bounded by resident bytes instead of page
// count: TouchSized charges each page's actual encoded size, and the LRU
// evicts until the shard is back under its byte budget. This is how
// compressed (v2) and raw (v1) snapshots share one honest memory budget — a
// page-count pool would let the compressed index appear to need the same
// buffer as the raw one. A byteCapacity of zero or less means unbounded.
func NewBufferPoolBytes(byteCapacity int64) *BufferPool {
	if byteCapacity <= 0 {
		return NewBufferPool(0)
	}
	return newBufferPoolBytes(byteCapacity, poolMaxShards)
}

// NewUnshardedBufferPoolBytes is NewBufferPoolBytes with a single shard: an
// exact global byte-LRU, for sequential experiments that report miss counts.
func NewUnshardedBufferPoolBytes(byteCapacity int64) *BufferPool {
	if byteCapacity <= 0 {
		return NewUnshardedBufferPool(0)
	}
	return newBufferPoolBytes(byteCapacity, 1)
}

func newBufferPoolBytes(byteCapacity int64, shards int) *BufferPool {
	b := newBufferPool(0, shards)
	per, extra := byteCapacity/int64(shards), byteCapacity%int64(shards)
	for i := range b.shards {
		sh := &b.shards[i]
		sh.byteCap = per
		if int64(i) < extra {
			sh.byteCap++
		}
		if sh.byteCap <= 0 {
			sh.byteCap = 1
		}
	}
	return b
}

func newBufferPool(capacity, shards int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	b := &BufferPool{shards: make([]poolShard, shards)}
	for s := shards; s > 1; s >>= 1 {
		b.shift++
	}
	b.shift = 64 - b.shift
	per, extra := capacity/shards, capacity%shards
	for i := range b.shards {
		sh := &b.shards[i]
		if capacity > 0 {
			sh.capacity = per
			if i < extra {
				sh.capacity++
			}
		}
		sh.index = make(map[PageID]int32)
		sh.head, sh.tail = -1, -1
	}
	return b
}

// shard maps a page id onto its stripe with a Fibonacci hash, so the
// sequential page ids of one tree spread evenly.
func (b *BufferPool) shard(id PageID) *poolShard {
	if len(b.shards) == 1 {
		return &b.shards[0]
	}
	return &b.shards[(uint64(id)*0x9E3779B97F4A7C15)>>b.shift]
}

// Touch records an access to the page and reports whether it was a buffer
// hit. On a miss the page is admitted, possibly evicting the shard's least
// recently used page. On a byte-budget pool Touch charges zero bytes; use
// TouchSized when the page's size is known.
func (b *BufferPool) Touch(id PageID) bool {
	return b.TouchSized(id, 0)
}

// TouchSized is Touch with the page's resident byte size attached. Page-count
// pools ignore the size, so it is always safe to pass; byte-budget pools
// charge it against the shard's budget and evict least-recently-used pages
// until the budget holds again (the page just touched is never evicted, so a
// single page larger than the whole budget still caches itself).
func (b *BufferPool) TouchSized(id PageID, bytes int) bool {
	s := b.shard(id)
	s.mu.Lock()
	var hit bool
	if s.byteCap > 0 {
		hit = s.touchBytes(id, int64(bytes))
	} else {
		hit = s.touch(id)
	}
	s.mu.Unlock()
	return hit
}

// touchBytes is the byte-budget counterpart of touch.
func (s *poolShard) touchBytes(id PageID, size int64) bool {
	if size < 0 {
		size = 0
	}
	if slot, ok := s.index[id]; ok {
		s.hits++
		sl := &s.slots[slot]
		if sl.size != size {
			// A page's size can legitimately change across epochs (a node
			// rewritten by a flush); keep the charge honest.
			s.byteUsed += size - sl.size
			sl.size = size
		}
		if s.head != slot {
			s.unlink(slot)
			s.pushFront(slot)
		}
		s.evictOverBytes(slot)
		return true
	}
	s.misses++
	var slot int32
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		s.slots[slot] = poolSlot{id: id, size: size}
	} else {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, poolSlot{id: id, size: size})
	}
	s.pushFront(slot)
	s.index[id] = slot
	s.byteUsed += size
	s.evictOverBytes(slot)
	return false
}

// evictOverBytes drops least-recently-used pages until the shard is within
// its byte budget, never evicting the page just touched.
func (s *poolShard) evictOverBytes(keep int32) {
	for s.byteUsed > s.byteCap && s.tail >= 0 && s.tail != keep {
		victim := s.tail
		s.unlink(victim)
		s.byteUsed -= s.slots[victim].size
		delete(s.index, s.slots[victim].id)
		s.slots[victim] = poolSlot{}
		s.freeSlots = append(s.freeSlots, victim)
	}
}

func (s *poolShard) touch(id PageID) bool {
	if slot, ok := s.index[id]; ok {
		s.hits++
		if s.capacity > 0 && s.head != slot {
			s.unlink(slot)
			s.pushFront(slot)
		}
		return true
	}
	s.misses++
	if s.capacity == 0 {
		// Unbounded: membership is all that matters.
		s.index[id] = 0
		return false
	}
	var slot int32
	if len(s.slots) < s.capacity {
		slot = int32(len(s.slots))
		s.slots = append(s.slots, poolSlot{id: id})
	} else {
		// Reuse the least recently used slot.
		slot = s.tail
		s.unlink(slot)
		delete(s.index, s.slots[slot].id)
		s.slots[slot].id = id
	}
	s.pushFront(slot)
	s.index[id] = slot
	return false
}

func (s *poolShard) unlink(slot int32) {
	sl := &s.slots[slot]
	if sl.prev >= 0 {
		s.slots[sl.prev].next = sl.next
	} else {
		s.head = sl.next
	}
	if sl.next >= 0 {
		s.slots[sl.next].prev = sl.prev
	} else {
		s.tail = sl.prev
	}
}

func (s *poolShard) pushFront(slot int32) {
	sl := &s.slots[slot]
	sl.prev = -1
	sl.next = s.head
	if s.head >= 0 {
		s.slots[s.head].prev = slot
	}
	s.head = slot
	if s.tail < 0 {
		s.tail = slot
	}
}

// Contains reports whether the page is currently buffered, without updating
// recency or statistics.
func (b *BufferPool) Contains(id PageID) bool {
	s := b.shard(id)
	s.mu.Lock()
	_, ok := s.index[id]
	s.mu.Unlock()
	return ok
}

// Len returns the number of buffered pages.
func (b *BufferPool) Len() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// BytesResident returns the total byte charge currently held by a
// byte-budget pool (always 0 for page-count pools, which do not track sizes).
func (b *BufferPool) BytesResident() int64 {
	var n int64
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += s.byteUsed
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit and miss counts.
func (b *BufferPool) Stats() (hits, misses int64) {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Reset empties the pool and zeroes the statistics (a "cold start").
func (b *BufferPool) Reset() {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.index = make(map[PageID]int32)
		s.slots = s.slots[:0]
		s.freeSlots = s.freeSlots[:0]
		s.byteUsed = 0
		s.head, s.tail = -1, -1
		s.hits, s.misses = 0, 0
		s.mu.Unlock()
	}
}
