package storage

import (
	"sync/atomic"
	"testing"
)

// BenchmarkBufferPoolParallel hammers one shared pool from GOMAXPROCS
// goroutines, each touching its own page working set plus a shared hot set —
// the access shape of a parallel batch search, where workers mostly revisit
// recently faulted nodes. ns/op is the cost of a single Touch under
// contention.
func BenchmarkBufferPoolParallel(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		capacity int
	}{
		{"unbounded", 0},
		{"bounded=4096", 4096},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			pool := NewBufferPool(cfg.capacity)
			var worker int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := atomic.AddInt64(&worker, 1)
				base := PageID(w * 1 << 20)
				i := PageID(0)
				for pb.Next() {
					// 3 of 4 touches hit a small per-worker set, 1 of 4
					// walks a long stride, forcing misses and evictions.
					if i%4 != 0 {
						pool.Touch(base + i%128)
					} else {
						pool.Touch(base + 1<<16 + i)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkBufferPoolTouch is the uncontended single-goroutine cost of Touch
// on a bounded pool in steady state (working set larger than capacity, so
// every miss evicts).
func BenchmarkBufferPoolTouch(b *testing.B) {
	pool := NewBufferPool(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Touch(PageID(i%2048 + 1))
	}
}
