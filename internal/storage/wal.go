package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file implements the write-ahead log that makes FilePager commits
// atomic. A journaled pager stages every page mutation in memory; on commit
// the staged page images are first written to a sidecar WAL file (the page
// file's path plus WALSuffix) and fsynced, then applied to the page file,
// then the WAL is removed. Opening a page file replays a committed WAL left
// behind by a crash and discards a torn one, so a reader always sees either
// the state before the commit or the state after it — never a mix.
//
// WAL layout (all little-endian):
//
//	header (16 bytes):
//	  [0:8]   magic "CBBWAL1\x00"
//	  [8:12]  page size of the target file
//	  [12:16] CRC-32C of bytes [0:12]
//	page record, one per staged page:
//	  [0]     record type 'P'
//	  [1]     page kind
//	  [2]     flags (bit 0: slot in use)
//	  [3]     reserved (zero)
//	  [4:8]   payload length
//	  [8:16]  page id
//	  [16:]   payload bytes
//	  [..+4]  CRC-32C of the record up to here
//	commit record (terminates a valid WAL):
//	  [0]     record type 'C'
//	  [1:4]   reserved (zero)
//	  [4:8]   page record count
//	  [8:16]  final slot count of the target file
//	  [16:20] CRC-32C of bytes [0:16]
//
// A WAL without a valid commit record is torn: the crash happened before the
// commit point, the page file was never touched, and the WAL is discarded.

const (
	// WALSuffix is appended to a page file's path to name its write-ahead
	// log.
	WALSuffix = ".wal"

	walMagic       = "CBBWAL1\x00"
	walHeaderBytes = 16
	walPageHeader  = 16 // fixed part of a page record before the payload
	walRecPage     = 'P'
	walRecCommit   = 'C'
	walCommitBytes = 20

	// maxWALRecords bounds the record count accepted from a WAL, guarding
	// the decoder against allocation bombs in corrupt files.
	maxWALRecords = 1 << 24
)

// ErrWALTorn marks a write-ahead log without a valid commit record: the
// commit never reached its atomicity point and the log must be discarded.
var ErrWALTorn = errors.New("storage: write-ahead log has no committed transaction")

// WALRecord is one staged page image of a committed transaction.
type WALRecord struct {
	Page    PageID
	Kind    PageKind
	InUse   bool // false: the page was freed by the transaction
	Payload []byte
}

// WALInfo is a decoded write-ahead log.
type WALInfo struct {
	PageSize  int
	SlotCount int // final slot count of the target file after replay
	Records   []WALRecord
}

// WALPathFor returns the write-ahead log path of a page file.
func WALPathFor(path string) string { return path + WALSuffix }

func encodeWALHeader(pageSize int) []byte {
	buf := make([]byte, walHeaderBytes)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(pageSize))
	binary.LittleEndian.PutUint32(buf[12:], checksum(buf[:12]))
	return buf
}

func encodeWALPage(id PageID, kind PageKind, inUse bool, payload []byte) []byte {
	buf := make([]byte, walPageHeader, walPageHeader+len(payload)+4)
	buf[0] = walRecPage
	buf[1] = byte(kind)
	if inUse {
		buf[2] = slotInUse
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(id))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, checksum(buf))
}

func encodeWALCommit(records int, slotCount int) []byte {
	buf := make([]byte, 16, walCommitBytes)
	buf[0] = walRecCommit
	binary.LittleEndian.PutUint32(buf[4:], uint32(records))
	binary.LittleEndian.PutUint64(buf[8:], uint64(slotCount))
	return binary.LittleEndian.AppendUint32(buf, checksum(buf))
}

// DecodeWAL parses a write-ahead log. It returns ErrWALTorn when the log has
// no valid commit record (an interrupted commit that must be discarded) and
// ErrCorrupt for structurally invalid input. Any prefix of a valid WAL — the
// shape a crash mid-write leaves behind — decodes as either torn or, when
// the commit record survived intact, as the full committed transaction.
func DecodeWAL(data []byte) (*WALInfo, error) {
	if len(data) < walHeaderBytes {
		return nil, ErrWALTorn
	}
	if string(data[:8]) != walMagic {
		return nil, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	if got, want := binary.LittleEndian.Uint32(data[12:]), checksum(data[:12]); got != want {
		return nil, fmt.Errorf("%w: WAL header checksum mismatch", ErrCorrupt)
	}
	pageSize := int(binary.LittleEndian.Uint32(data[8:]))
	if pageSize < minPageSize || pageSize > maxPageSize {
		return nil, fmt.Errorf("%w: implausible WAL page size %d", ErrCorrupt, pageSize)
	}
	info := &WALInfo{PageSize: pageSize}
	off := walHeaderBytes
	for {
		if off >= len(data) {
			return nil, ErrWALTorn // ran out of bytes before a commit record
		}
		switch data[off] {
		case walRecPage:
			if len(info.Records) >= maxWALRecords {
				return nil, fmt.Errorf("%w: too many WAL records", ErrCorrupt)
			}
			if off+walPageHeader > len(data) {
				return nil, ErrWALTorn
			}
			rec := data[off:]
			plen := int(binary.LittleEndian.Uint32(rec[4:]))
			if plen < 0 || plen > pageSize {
				return nil, fmt.Errorf("%w: WAL payload length %d exceeds page size %d", ErrCorrupt, plen, pageSize)
			}
			total := walPageHeader + plen + 4
			if off+total > len(data) {
				return nil, ErrWALTorn
			}
			body := rec[:walPageHeader+plen]
			if binary.LittleEndian.Uint32(rec[walPageHeader+plen:]) != checksum(body) {
				// A torn tail can end inside a record; a record that is fully
				// present but fails its checksum means the log never reached
				// its commit point with this record intact either way.
				return nil, ErrWALTorn
			}
			id := PageID(binary.LittleEndian.Uint64(rec[8:]))
			if id == InvalidPage {
				return nil, fmt.Errorf("%w: WAL record for invalid page id", ErrCorrupt)
			}
			info.Records = append(info.Records, WALRecord{
				Page:    id,
				Kind:    PageKind(rec[1]),
				InUse:   rec[2]&slotInUse != 0,
				Payload: append([]byte(nil), rec[walPageHeader:walPageHeader+plen]...),
			})
			off += total
		case walRecCommit:
			if off+walCommitBytes > len(data) {
				return nil, ErrWALTorn
			}
			rec := data[off : off+walCommitBytes]
			if binary.LittleEndian.Uint32(rec[16:]) != checksum(rec[:16]) {
				return nil, ErrWALTorn
			}
			if int(binary.LittleEndian.Uint32(rec[4:])) != len(info.Records) {
				return nil, ErrWALTorn
			}
			slots := binary.LittleEndian.Uint64(rec[8:])
			if slots > 1<<40 {
				return nil, fmt.Errorf("%w: implausible WAL slot count %d", ErrCorrupt, slots)
			}
			info.SlotCount = int(slots)
			for _, r := range info.Records {
				if int(r.Page) > info.SlotCount {
					return nil, fmt.Errorf("%w: WAL record for page %d beyond slot count %d", ErrCorrupt, r.Page, info.SlotCount)
				}
			}
			return info, nil
		default:
			return nil, ErrWALTorn
		}
	}
}

// ReadWALFile reads and decodes a write-ahead log file. A missing file
// returns (nil, os.ErrNotExist-wrapped error); callers usually treat that as
// "nothing to recover".
func ReadWALFile(path string) (*WALInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeWAL(data)
}

// writeWALFile writes a committed WAL for the given records and syncs it to
// stable storage. The file is created fresh (truncating any stale log). The
// whole log — header, every page record, and the commit record — is encoded
// into one buffer and handed to the kernel in a single Write followed by a
// single fsync, so a group commit of thousands of pages costs one syscall
// pair instead of one write per record.
func writeWALFile(path string, pageSize, slotCount int, records []WALRecord) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	size := walHeaderBytes + walCommitBytes
	for _, r := range records {
		size += walPageHeader + len(r.Payload) + 4
	}
	buf := make([]byte, 0, size)
	buf = append(buf, encodeWALHeader(pageSize)...)
	for _, r := range records {
		buf = append(buf, encodeWALPage(r.Page, r.Kind, r.InUse, r.Payload)...)
	}
	buf = append(buf, encodeWALCommit(len(records), slotCount)...)
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// The WAL's directory entry must be durable too: fsyncing only the
		// file does not persist its dirent, and the commit point is defined
		// by the WAL being findable after a crash. fsyncDir tolerates
		// platforms and filesystems that cannot fsync a directory (see
		// fsyncdir.go / fsyncdir_windows.go) rather than failing the commit.
		err = fsyncDir(filepath.Dir(path))
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("storage: writing WAL %s: %w", path, err)
	}
	return nil
}

// removeWAL deletes a consumed (or discarded) write-ahead log; a missing
// file is not an error.
func removeWAL(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
