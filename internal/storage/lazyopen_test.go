package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestEnableJournalIsLazy is the regression test for the O(1) writable open:
// enabling journal mode must not build the slot directory (which would scan
// every slot header of the file), and the pure read path must never build it
// either. Only the first operation that genuinely needs global state —
// Allocate, Write, Free, Usage — may pay the scan.
func TestEnableJournalIsLazy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lazy.pages")
	p, err := CreateFilePager(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 64; i++ {
		id, err := p.Allocate(KindLeaf)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p, err = OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.dir != nil {
		t.Fatal("open built the slot directory eagerly")
	}
	if err := p.EnableJournal(); err != nil {
		t.Fatal(err)
	}
	if p.dir != nil {
		t.Fatal("EnableJournal built the slot directory eagerly (breaks O(1) writable open)")
	}
	// Reads must work without the directory and must not build it.
	buf, kind, err := p.Read(ids[3])
	if err != nil || kind != KindLeaf || len(buf) != 1 || buf[0] != 3 {
		t.Fatalf("Read after lazy journaled open: buf=%v kind=%v err=%v", buf, kind, err)
	}
	if p.dir != nil {
		t.Fatal("Read built the slot directory")
	}
	// The first mutation builds the directory on demand and behaves as
	// before: the staged write commits atomically.
	if err := p.Write(ids[5], []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if p.dir == nil {
		t.Fatal("first Write should have built the slot directory")
	}
	if err := p.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	p, err = OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf, _, err = p.Read(ids[5])
	if err != nil || len(buf) != 1 || buf[0] != 0xAB {
		t.Fatalf("committed write not durable: buf=%v err=%v", buf, err)
	}
}

// TestOpenFilePagerReadOnlyPreservesWAL pins the inspection contract: a
// strictly read-only open of a file with a committed-but-unapplied WAL must
// serve the committed (post-transaction) state from an in-memory overlay
// while leaving both the file bytes and the WAL untouched, so a later
// writable open can still apply it.
func TestOpenFilePagerReadOnlyPreservesWAL(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	boom := errors.New("simulated crash after WAL sync")
	p.failAfterWAL = func() error { return boom }
	if err := p.CommitJournal(); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want injected crash", err)
	}
	p.f.Close() // abandon the handle, like a dead process

	fileBefore, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	walBefore, err := os.ReadFile(WALPathFor(path))
	if err != nil {
		t.Fatalf("WAL must exist before the read-only open: %v", err)
	}

	ro, err := OpenFilePagerReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnlyFile() {
		t.Fatal("read-only open must report ReadOnlyFile")
	}
	// Reads observe the committed transaction (via the overlay).
	b2, _, err := ro.Read(2)
	if err != nil || !bytes.Equal(b2, fixturePayload(20, 80)) {
		t.Fatalf("read-only open does not see committed state of page 2: %v", err)
	}
	b4, _, err := ro.Read(4)
	if err != nil || !bytes.Equal(b4, fixturePayload(40, 96)) {
		t.Fatalf("read-only open does not see committed page 4: %v", err)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Neither the file nor the WAL changed.
	fileAfter, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	walAfter, err := os.ReadFile(WALPathFor(path))
	if err != nil {
		t.Fatalf("read-only open consumed the WAL: %v", err)
	}
	if !bytes.Equal(fileBefore, fileAfter) {
		t.Fatal("read-only open modified the page file")
	}
	if !bytes.Equal(walBefore, walAfter) {
		t.Fatal("read-only open modified the WAL")
	}

	// A subsequent writable open still applies the transaction.
	if got := checkState(t, path, "writable open after read-only inspection"); got != "new" {
		t.Fatalf("state = %s, want new (WAL replayed)", got)
	}
}
