//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared, so the kernel's page
// cache backs the mapping directly.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("storage: cannot map %d-byte file on this platform", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
