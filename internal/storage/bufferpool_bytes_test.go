package storage

import "testing"

func TestBufferPoolBytesEviction(t *testing.T) {
	p := NewUnshardedBufferPoolBytes(1000)
	for id := PageID(1); id <= 3; id++ {
		if p.TouchSized(id, 300) {
			t.Fatalf("first touch of page %d was a hit", id)
		}
	}
	if got := p.BytesResident(); got != 900 {
		t.Fatalf("BytesResident = %d, want 900", got)
	}
	// Admitting a fourth 300 B page busts the budget: the LRU (page 1) goes.
	if p.TouchSized(4, 300) {
		t.Fatal("first touch of page 4 was a hit")
	}
	if p.Contains(1) {
		t.Error("page 1 should have been evicted as the LRU")
	}
	for id := PageID(2); id <= 4; id++ {
		if !p.TouchSized(id, 300) {
			t.Errorf("page %d should still be resident", id)
		}
	}
	if got := p.BytesResident(); got > 1000 {
		t.Errorf("BytesResident = %d exceeds the 1000 B budget", got)
	}
}

func TestBufferPoolBytesLRUOrder(t *testing.T) {
	p := NewUnshardedBufferPoolBytes(600)
	p.TouchSized(1, 200)
	p.TouchSized(2, 200)
	p.TouchSized(3, 200)
	p.TouchSized(1, 200) // refresh 1: now 2 is the LRU
	p.TouchSized(4, 200)
	if p.Contains(2) {
		t.Error("page 2 (the LRU) should have been evicted")
	}
	if !p.Contains(1) || !p.Contains(3) || !p.Contains(4) {
		t.Error("recently touched pages were evicted")
	}
}

func TestBufferPoolBytesOversizedPage(t *testing.T) {
	// A single page larger than the whole budget still caches itself: the
	// page just touched is never its own eviction victim.
	p := NewUnshardedBufferPoolBytes(100)
	if p.TouchSized(7, 5000) {
		t.Fatal("first touch was a hit")
	}
	if !p.TouchSized(7, 5000) {
		t.Error("oversized page must stay resident until another touch")
	}
	// The next admission evicts it straight away.
	p.TouchSized(8, 10)
	if p.Contains(7) {
		t.Error("oversized page must be evicted once something else arrives")
	}
	if !p.Contains(8) {
		t.Error("small page must be resident")
	}
}

func TestBufferPoolBytesSizeChange(t *testing.T) {
	p := NewUnshardedBufferPoolBytes(1000)
	p.TouchSized(1, 300)
	if !p.TouchSized(1, 500) { // the page was rewritten larger
		t.Fatal("re-touch was a miss")
	}
	if got := p.BytesResident(); got != 500 {
		t.Errorf("BytesResident = %d after size change, want 500", got)
	}
}

func TestBufferPoolBytesReset(t *testing.T) {
	p := NewBufferPoolBytes(1 << 20)
	for id := PageID(1); id <= 64; id++ {
		p.TouchSized(id, 1000)
	}
	if p.Len() != 64 || p.BytesResident() != 64000 {
		t.Fatalf("pre-reset Len=%d BytesResident=%d", p.Len(), p.BytesResident())
	}
	p.Reset()
	if p.Len() != 0 || p.BytesResident() != 0 {
		t.Errorf("post-reset Len=%d BytesResident=%d, want 0/0", p.Len(), p.BytesResident())
	}
	if h, m := p.Stats(); h != 0 || m != 0 {
		t.Errorf("post-reset stats (%d, %d), want zeroed", h, m)
	}
	if p.TouchSized(1, 1000) {
		t.Error("post-reset touch was a hit")
	}
}

func TestTouchSizedOnPageCountPool(t *testing.T) {
	// Page-count pools ignore the byte argument entirely: two huge pages fit
	// in a 2-page pool, and BytesResident stays zero.
	p := NewUnshardedBufferPool(2)
	p.TouchSized(1, 1<<30)
	p.TouchSized(2, 1<<30)
	if !p.Touch(1) || !p.Touch(2) {
		t.Error("both pages must be resident in a 2-page pool")
	}
	if got := p.BytesResident(); got != 0 {
		t.Errorf("BytesResident = %d on a page-count pool, want 0", got)
	}
	p.Touch(3)
	if p.Contains(1) {
		t.Error("page 1 should have been evicted by count")
	}
}
