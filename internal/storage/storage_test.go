package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.LeafRead(3)
	c.DirRead(2)
	c.Write(5)
	c.Reclip(1)
	s := c.Snapshot()
	if s.LeafReads != 3 || s.DirReads != 2 || s.Writes != 5 || s.Reclips != 1 {
		t.Fatalf("unexpected snapshot %+v", s)
	}
	if s.Total() != 5 {
		t.Errorf("Total = %d, want 5", s.Total())
	}
	if s.String() == "" {
		t.Error("String should render")
	}
	c.Reset()
	if c.Snapshot() != (Snapshot{}) {
		t.Error("Reset should zero all counters")
	}
}

func TestCounterDiff(t *testing.T) {
	var c Counter
	c.LeafRead(10)
	before := c.Snapshot()
	c.LeafRead(7)
	c.DirRead(2)
	d := Diff(before, c.Snapshot())
	if d.LeafReads != 7 || d.DirReads != 2 {
		t.Fatalf("Diff = %+v", d)
	}
}

func TestCounterConcurrency(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.LeafRead(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().LeafReads; got != 8000 {
		t.Fatalf("concurrent LeafRead lost updates: %d", got)
	}
}

func TestPagerAllocateWriteRead(t *testing.T) {
	p := NewPager(128)
	if p.PageSize() != 128 {
		t.Fatalf("PageSize = %d", p.PageSize())
	}
	id, err := p.Allocate(KindLeaf)
	if err != nil || id == InvalidPage {
		t.Fatalf("Allocate: %v %v", id, err)
	}
	payload := []byte("hello pages")
	if err := p.Write(id, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, kind, err := p.Read(id)
	if err != nil || kind != KindLeaf || !bytes.Equal(got, payload) {
		t.Fatalf("Read = %q kind=%v err=%v", got, kind, err)
	}
	// Read returns a copy: mutating it must not affect the stored page.
	got[0] = 'X'
	again, _, _ := p.Read(id)
	if !bytes.Equal(again, payload) {
		t.Error("Read must return an independent copy")
	}
}

func TestPagerErrors(t *testing.T) {
	p := NewPager(16)
	if err := p.Write(999, []byte("x")); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("expected ErrPageNotFound, got %v", err)
	}
	if _, _, err := p.Read(999); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("expected ErrPageNotFound, got %v", err)
	}
	id, _ := p.Allocate(KindDirectory)
	if err := p.Write(id, make([]byte, 17)); !errors.Is(err, ErrPageTooLarge) {
		t.Errorf("expected ErrPageTooLarge, got %v", err)
	}
	if err := p.Free(id); err != nil {
		t.Errorf("Free: %v", err)
	}
	if err := p.Free(id); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("double free should report ErrPageNotFound, got %v", err)
	}
	p.Close()
	if _, err := p.Allocate(KindLeaf); !errors.Is(err, ErrPagerClosed) {
		t.Errorf("expected ErrPagerClosed, got %v", err)
	}
	if _, _, err := p.Read(1); !errors.Is(err, ErrPagerClosed) {
		t.Errorf("expected ErrPagerClosed on read, got %v", err)
	}
}

func TestPagerDefaultSize(t *testing.T) {
	if NewPager(0).PageSize() != DefaultPageSize {
		t.Error("zero page size should default")
	}
}

func TestPagerUsage(t *testing.T) {
	p := NewPager(1024)
	leaf, _ := p.Allocate(KindLeaf)
	dir, _ := p.Allocate(KindDirectory)
	aux, _ := p.Allocate(KindAux)
	_ = p.Write(leaf, make([]byte, 100))
	_ = p.Write(dir, make([]byte, 50))
	_ = p.Write(aux, make([]byte, 10))
	u := p.Usage()
	if u.TotalPages != 3 || u.TotalBytes != 160 {
		t.Fatalf("Usage totals wrong: %+v", u)
	}
	if u.Pages[KindLeaf] != 1 || u.Bytes[KindLeaf] != 100 {
		t.Errorf("leaf usage wrong: %+v", u)
	}
	if u.Bytes[KindAux] != 10 {
		t.Errorf("aux usage wrong: %+v", u)
	}
}

func TestPageKindString(t *testing.T) {
	if KindLeaf.String() != "leaf" || KindDirectory.String() != "directory" || KindAux.String() != "aux" {
		t.Error("kind names wrong")
	}
	if PageKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestBufferPoolLRU(t *testing.T) {
	b := NewBufferPool(2)
	if b.Touch(1) {
		t.Error("first touch must be a miss")
	}
	if !b.Touch(1) {
		t.Error("second touch must be a hit")
	}
	b.Touch(2)
	b.Touch(3) // evicts 1 (least recently used)
	if b.Contains(1) {
		t.Error("page 1 should have been evicted")
	}
	if !b.Contains(2) || !b.Contains(3) {
		t.Error("pages 2 and 3 should be resident")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	hits, misses := b.Stats()
	if hits != 1 || misses != 3 {
		t.Errorf("Stats = %d hits %d misses", hits, misses)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset should empty the pool")
	}
	if h, m := b.Stats(); h != 0 || m != 0 {
		t.Error("Reset should zero statistics")
	}
}

func TestBufferPoolRecencyOrder(t *testing.T) {
	b := NewBufferPool(2)
	b.Touch(1)
	b.Touch(2)
	b.Touch(1) // 1 becomes most recent
	b.Touch(3) // should evict 2, not 1
	if !b.Contains(1) || b.Contains(2) {
		t.Error("LRU recency not respected")
	}
}

func TestBufferPoolUnbounded(t *testing.T) {
	b := NewBufferPool(0)
	for i := PageID(1); i <= 1000; i++ {
		b.Touch(i)
	}
	if b.Len() != 1000 {
		t.Errorf("unbounded pool should keep everything, has %d", b.Len())
	}
}

func TestBufferPoolConcurrency(t *testing.T) {
	b := NewBufferPool(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.Touch(PageID(i%100 + g))
			}
		}(g)
	}
	wg.Wait()
	hits, misses := b.Stats()
	if hits+misses != 2000 {
		t.Fatalf("lost touches: hits+misses = %d", hits+misses)
	}
}

func TestUnshardedBufferPoolExactLRU(t *testing.T) {
	// At capacity 256 NewBufferPool stripes the pool; the unsharded
	// constructor must keep exact global-LRU eviction at any capacity.
	b := NewUnshardedBufferPool(256)
	for i := 1; i <= 256; i++ {
		b.Touch(PageID(i))
	}
	b.Touch(1)           // page 1 becomes most recent
	b.Touch(PageID(300)) // must evict page 2, the global LRU victim
	if !b.Contains(1) || b.Contains(2) || !b.Contains(300) {
		t.Fatalf("unsharded pool is not an exact LRU: contains(1)=%v contains(2)=%v contains(300)=%v",
			b.Contains(1), b.Contains(2), b.Contains(300))
	}
	if b.Len() != 256 {
		t.Fatalf("Len %d, want 256", b.Len())
	}
}
