package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// openMmapOrSkip opens path as an MmapStore, skipping on platforms without
// mmap support (the stubbed !unix build).
func openMmapOrSkip(t *testing.T, path string) *MmapStore {
	t.Helper()
	ms, err := OpenMmapStore(path)
	if errors.Is(err, ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestMmapStoreMatchesFilePager(t *testing.T) {
	path := journalFixture(t)
	fp, err := OpenFilePagerReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	ms := openMmapOrSkip(t, path)
	defer ms.Close()

	if ms.PageSize() != fp.PageSize() {
		t.Fatalf("page size %d vs pager %d", ms.PageSize(), fp.PageSize())
	}
	if !ms.ReadOnlyFile() {
		t.Error("mmap store must report a read-only file")
	}
	for id := PageID(1); id <= 3; id++ {
		want, wantKind, err := fp.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		got, gotKind, err := ms.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if gotKind != wantKind || !bytes.Equal(got, want) {
			t.Fatalf("page %d differs between stores", id)
		}
	}
	if reads, writes := ms.DiskStats(); reads != 3 || writes != 0 {
		t.Fatalf("DiskStats = (%d, %d), want (3, 0)", reads, writes)
	}
	mu, fu := ms.Usage(), fp.Usage()
	if mu.TotalPages != fu.TotalPages || mu.TotalBytes != fu.TotalBytes {
		t.Fatalf("usage differs: %+v vs %+v", mu, fu)
	}
	msl, err := ms.Slots()
	if err != nil {
		t.Fatal(err)
	}
	fsl, err := fp.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(msl) != len(fsl) {
		t.Fatalf("slot count %d vs %d", len(msl), len(fsl))
	}
	for i := range msl {
		if msl[i] != fsl[i] {
			t.Fatalf("slot %d differs: %+v vs %+v", i, msl[i], fsl[i])
		}
	}

	if _, err := ms.Allocate(KindLeaf); !errors.Is(err, ErrReadOnlyFS) {
		t.Errorf("Allocate = %v, want ErrReadOnlyFS", err)
	}
	if err := ms.Write(1, []byte{1}); !errors.Is(err, ErrReadOnlyFS) {
		t.Errorf("Write = %v, want ErrReadOnlyFS", err)
	}
	if err := ms.Free(1); !errors.Is(err, ErrReadOnlyFS) {
		t.Errorf("Free = %v, want ErrReadOnlyFS", err)
	}
	if _, _, err := ms.Read(99); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("out-of-range Read = %v, want ErrPageNotFound", err)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ms.Read(1); !errors.Is(err, ErrPagerClosed) {
		t.Errorf("Read after Close = %v, want ErrPagerClosed", err)
	}
}

func TestMmapStoreDetectsCorruption(t *testing.T) {
	path := journalFixture(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of page 2 (slot 1): past the file header, the
	// slot header, and a few bytes into the payload.
	off := fileHeaderBytes + (16+128)*1 + 16 + 5
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ms := openMmapOrSkip(t, path)
	defer ms.Close()
	if _, _, err := ms.Read(1); err != nil {
		t.Fatalf("untouched page must read cleanly: %v", err)
	}
	if _, _, err := ms.Read(2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted page Read = %v, want ErrCorrupt", err)
	}
}

// TestMmapStoreWALOverlay crashes a pager right after its WAL became durable
// and then opens the file through mmap: the committed-but-unapplied WAL must
// be visible as an overlay (same contract as OpenFilePagerReadOnly), without
// modifying the source file.
func TestMmapStoreWALOverlay(t *testing.T) {
	path := journalFixture(t)
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	stageTransaction(t, p)
	boom := errors.New("simulated crash after WAL sync")
	p.failAfterWAL = func() error { return boom }
	if err := p.CommitJournal(); !errors.Is(err, boom) {
		t.Fatalf("commit error = %v, want injected crash", err)
	}
	p.f.Close()

	ms := openMmapOrSkip(t, path)
	defer ms.Close()
	b2, _, err := ms.Read(2)
	if err != nil || !bytes.Equal(b2, fixturePayload(20, 80)) {
		t.Fatalf("page 2 must show the WAL state (err=%v)", err)
	}
	b3, k3, err := ms.Read(3)
	if err != nil || k3 != KindDirectory || !bytes.Equal(b3, fixturePayload(30, 48)) {
		t.Fatalf("page 3 must show the WAL state (err=%v, kind=%v)", err, k3)
	}
	b4, _, err := ms.Read(4)
	if err != nil || !bytes.Equal(b4, fixturePayload(40, 96)) {
		t.Fatalf("WAL-appended page 4 must be readable (err=%v)", err)
	}
	if _, err := os.Stat(WALPathFor(path)); err != nil {
		t.Fatalf("mmap open must leave the WAL in place: %v", err)
	}

	// A torn WAL is ignored: the store falls back to the base file.
	wal, err := os.ReadFile(WALPathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(WALPathFor(path), wal[:len(wal)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := OpenMmapStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer torn.Close()
	b2, _, err = torn.Read(2)
	if err != nil || !bytes.Equal(b2, fixturePayload(2, 64)) {
		t.Fatalf("torn WAL must leave the old page 2 (err=%v)", err)
	}
	if _, _, err := torn.Read(4); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("torn WAL page 4 = %v, want ErrPageNotFound", err)
	}
}
