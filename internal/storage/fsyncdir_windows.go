//go:build windows

package storage

// fsyncDir is a no-op on Windows: directories cannot be opened for
// FlushFileBuffers the way POSIX fsyncs a dirent, and NTFS metadata
// journaling covers the directory-entry durability the WAL commit point
// relies on elsewhere. Losing the dirent sync only narrows the
// crash-durability window (a missing WAL reads as "nothing to recover");
// failing the commit over it would make every flush error out.
func fsyncDir(dir string) error { return nil }
