// Package storage provides the disk-simulation substrate of the library:
// I/O accounting (the paper's primary metric is the number of leaf-node
// accesses), a fixed-size pager with a binary page format, and an LRU buffer
// pool used to emulate cold-cache behaviour in the scalability experiment.
//
// The R-tree variants route every node access through a Counter so that the
// evaluation harness can measure exactly what the paper measures: "we assume
// that internal (non-leaf) nodes are memory-resident and measure the number
// of leaf-level nodes accessed as our default I/O metric".
package storage

import (
	"fmt"
	"sync/atomic"
)

// Counter accumulates node-access statistics. All methods are safe for
// concurrent use; experiments typically Reset it, run a query batch, and
// read a Snapshot.
type Counter struct {
	leafReads int64
	dirReads  int64
	writes    int64
	reclips   int64
}

// Snapshot is an immutable copy of a Counter's totals.
type Snapshot struct {
	LeafReads int64 // leaf-node accesses (the paper's I/O metric)
	DirReads  int64 // directory-node accesses
	Writes    int64 // node writes (construction and updates)
	Reclips   int64 // CBB recomputations (update experiment)
}

// Total returns all node reads (leaf + directory).
func (s Snapshot) Total() int64 { return s.LeafReads + s.DirReads }

// Add returns the element-wise sum of two snapshots, used to merge the
// per-worker I/O of a parallel query batch into one exact total.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		LeafReads: s.LeafReads + o.LeafReads,
		DirReads:  s.DirReads + o.DirReads,
		Writes:    s.Writes + o.Writes,
		Reclips:   s.Reclips + o.Reclips,
	}
}

// String renders the snapshot compactly for logs and experiment output.
func (s Snapshot) String() string {
	return fmt.Sprintf("leaf=%d dir=%d writes=%d reclips=%d", s.LeafReads, s.DirReads, s.Writes, s.Reclips)
}

// LeafRead records n leaf-node accesses.
func (c *Counter) LeafRead(n int64) { atomic.AddInt64(&c.leafReads, n) }

// DirRead records n directory-node accesses.
func (c *Counter) DirRead(n int64) { atomic.AddInt64(&c.dirReads, n) }

// Write records n node writes.
func (c *Counter) Write(n int64) { atomic.AddInt64(&c.writes, n) }

// Reclip records n clip-table recomputations.
func (c *Counter) Reclip(n int64) { atomic.AddInt64(&c.reclips, n) }

// Snapshot returns the current totals.
func (c *Counter) Snapshot() Snapshot {
	return Snapshot{
		LeafReads: atomic.LoadInt64(&c.leafReads),
		DirReads:  atomic.LoadInt64(&c.dirReads),
		Writes:    atomic.LoadInt64(&c.writes),
		Reclips:   atomic.LoadInt64(&c.reclips),
	}
}

// Add accumulates a snapshot's totals into the counter. Parallel executors
// run each worker against a private Counter and fold the per-worker
// snapshots back into the shared counter with Add, so the shared totals are
// exactly what a sequential run would have produced.
func (c *Counter) Add(s Snapshot) {
	atomic.AddInt64(&c.leafReads, s.LeafReads)
	atomic.AddInt64(&c.dirReads, s.DirReads)
	atomic.AddInt64(&c.writes, s.Writes)
	atomic.AddInt64(&c.reclips, s.Reclips)
}

// Reset zeroes all totals.
func (c *Counter) Reset() {
	atomic.StoreInt64(&c.leafReads, 0)
	atomic.StoreInt64(&c.dirReads, 0)
	atomic.StoreInt64(&c.writes, 0)
	atomic.StoreInt64(&c.reclips, 0)
}

// Diff returns the difference new − old of two snapshots, useful for
// measuring a single query batch.
func Diff(old, new Snapshot) Snapshot {
	return Snapshot{
		LeafReads: new.LeafReads - old.LeafReads,
		DirReads:  new.DirReads - old.DirReads,
		Writes:    new.Writes - old.Writes,
		Reclips:   new.Reclips - old.Reclips,
	}
}
