//go:build !windows

package storage

import (
	"errors"
	"os"
	"syscall"
)

// fsyncDir fsyncs a directory so recent entry creations survive a crash —
// the durability anchor of the write-ahead-log commit point. Directory
// fsync is a POSIX nicety that not every platform or filesystem supports:
// some return EINVAL (e.g. certain FUSE and network filesystems) or
// ENOTSUP/EACCES for the open or the sync itself. Losing the dirent sync
// only narrows the crash-durability window, it does not corrupt anything
// (a missing WAL reads as "nothing to recover"), so unsupported-operation
// errors are tolerated instead of failing the commit.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		if errorsIsUnsupportedSync(err) {
			return nil
		}
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && errorsIsUnsupportedSync(err) {
		return nil
	}
	return err
}

// errorsIsUnsupportedSync classifies errors that mean "this platform or
// filesystem cannot fsync a directory" rather than "the sync failed".
func errorsIsUnsupportedSync(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EPERM) ||
		errors.Is(err, syscall.EACCES)
}
