package storage

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// ErrMmapUnsupported is returned by OpenMmapStore on platforms without
// memory-mapped file support (the build's fallback stub); callers degrade to
// OpenFilePagerReadOnly.
var ErrMmapUnsupported = errors.New("storage: mmap is not supported on this platform")

// MmapStore is a strictly read-only PageStore serving pages straight out of
// a memory-mapped page file. Where FilePager.Read issues a pread and copies
// the payload into a fresh buffer, MmapStore.Read returns a subslice of the
// mapping: no read syscall, no copy, and cold pages are faulted in by the
// kernel on first touch — the zero-copy path that lets a beyond-RAM snapshot
// be queried with the OS page cache as the only buffer. Payload checksums are
// still verified on every read, so integrity matches the pread path.
//
// Slices returned by Read alias the mapping. They are valid until Close and
// must be treated as immutable — writing through one faults (the mapping is
// PROT_READ). All mutating PageStore operations return ErrReadOnlyFS.
//
// Like OpenFilePagerReadOnly, opening replays a committed write-ahead log
// next to the file into an in-memory overlay (and leaves it on disk for a
// future writable open); overlay pages are served from heap copies, file
// pages from the mapping.
type MmapStore struct {
	path      string
	data      []byte // the mapping; nil only after Close
	pageSize  int
	fileSlots int // slots physically present in the file
	slotCount int // including WAL-appended slots visible via the overlay
	overlay   map[PageID]*overlayPage
	reads     atomic.Int64
	closed    atomic.Bool
}

var _ PageStore = (*MmapStore)(nil)

// OpenMmapStore maps the page file at path read-only. It fails with
// ErrMmapUnsupported on platforms without mmap and with the usual corruption
// errors on a malformed file.
func OpenMmapStore(path string) (*MmapStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < fileHeaderBytes {
		return nil, fmt.Errorf("%w: page file smaller than its header", ErrCorrupt)
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*MmapStore, error) {
		munmapFile(data)
		return nil, err
	}
	pageSize, _, err := decodeFileHeader(data[:fileHeaderBytes])
	if err != nil {
		return fail(err)
	}
	slotSize := slotHeaderBytes + pageSize
	m := &MmapStore{
		path:      path,
		data:      data,
		pageSize:  pageSize,
		fileSlots: int((st.Size() - fileHeaderBytes) / int64(slotSize)),
	}
	m.slotCount = m.fileSlots

	// Fold a committed WAL into an in-memory overlay, exactly as the
	// read-only FilePager open does; a torn or corrupt log means the file
	// itself is already the committed state.
	switch info, werr := ReadWALFile(WALPathFor(path)); {
	case werr == nil:
		if info.PageSize != pageSize {
			return fail(fmt.Errorf("%w: WAL page size %d does not match file page size %d", ErrCorrupt, info.PageSize, pageSize))
		}
		m.overlay = make(map[PageID]*overlayPage, len(info.Records))
		for _, r := range info.Records {
			data := make([]byte, len(r.Payload))
			copy(data, r.Payload)
			m.overlay[r.Page] = &overlayPage{kind: r.Kind, inUse: r.InUse, data: data}
		}
		if info.SlotCount > m.slotCount {
			m.slotCount = info.SlotCount
		}
	case os.IsNotExist(werr), errors.Is(werr, ErrWALTorn), errors.Is(werr, ErrCorrupt):
		// Nothing to recover.
	default:
		return fail(werr)
	}
	return m, nil
}

// Path returns the file path the store was opened from.
func (m *MmapStore) Path() string { return m.path }

// PageSize returns the page size recorded in the file header.
func (m *MmapStore) PageSize() int { return m.pageSize }

// ReadOnlyFile reports that the store never mutates its file (always true).
func (m *MmapStore) ReadOnlyFile() bool { return true }

// DiskStats returns the number of pages served and written (always 0 writes);
// the reads counter mirrors FilePager.DiskStats so experiments can report
// page-access counts uniformly across backends.
func (m *MmapStore) DiskStats() (reads, writes int64) { return m.reads.Load(), 0 }

// Read returns the page payload and kind. The returned slice aliases the
// mapping (or the WAL overlay) and must not be modified; it stays valid until
// Close.
func (m *MmapStore) Read(id PageID) ([]byte, PageKind, error) {
	if m.closed.Load() {
		return nil, 0, ErrPagerClosed
	}
	if op, ok := m.overlay[id]; ok {
		if !op.inUse {
			return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
		}
		m.reads.Add(1)
		return op.data, op.kind, nil
	}
	if id < 1 || int(id) > m.fileSlots {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	off := fileHeaderBytes + int(id-1)*(slotHeaderBytes+m.pageSize)
	slot := m.data[off:]
	meta, crc, err := decodeSlotHeader(slot[:slotHeaderBytes], m.pageSize)
	if err != nil {
		return nil, 0, err
	}
	if !meta.inUse {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	payload := slot[slotHeaderBytes : slotHeaderBytes+meta.length]
	if checksum(payload) != crc {
		return nil, 0, fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, id)
	}
	m.reads.Add(1)
	return payload, meta.kind, nil
}

// Allocate always fails: the mapping is read-only.
func (m *MmapStore) Allocate(kind PageKind) (PageID, error) { return InvalidPage, ErrReadOnlyFS }

// Write always fails: the mapping is read-only.
func (m *MmapStore) Write(id PageID, payload []byte) error { return ErrReadOnlyFS }

// Free always fails: the mapping is read-only.
func (m *MmapStore) Free(id PageID) error { return ErrReadOnlyFS }

// Usage scans the slot headers (not the payloads, so it does not fault the
// whole file in) and returns the storage breakdown by page kind.
func (m *MmapStore) Usage() Usage {
	u := Usage{Pages: make(map[PageKind]int), Bytes: make(map[PageKind]int)}
	if m.closed.Load() {
		return u
	}
	for i := 0; i < m.fileSlots; i++ {
		id := PageID(i + 1)
		if op, ok := m.overlay[id]; ok {
			if op.inUse {
				u.Pages[op.kind]++
				u.Bytes[op.kind] += len(op.data)
				u.TotalPages++
				u.TotalBytes += len(op.data)
			}
			continue
		}
		off := fileHeaderBytes + i*(slotHeaderBytes+m.pageSize)
		meta, _, err := decodeSlotHeader(m.data[off:off+slotHeaderBytes], m.pageSize)
		if err != nil || !meta.inUse {
			continue
		}
		u.Pages[meta.kind]++
		u.Bytes[meta.kind] += meta.length
		u.TotalPages++
		u.TotalBytes += meta.length
	}
	for i := m.fileSlots; i < m.slotCount; i++ {
		if op, ok := m.overlay[PageID(i+1)]; ok && op.inUse {
			u.Pages[op.kind]++
			u.Bytes[op.kind] += len(op.data)
			u.TotalPages++
			u.TotalBytes += len(op.data)
		}
	}
	return u
}

// Slots lists every page slot for integrity checks, mirroring
// FilePager.Slots.
func (m *MmapStore) Slots() ([]Slot, error) {
	if m.closed.Load() {
		return nil, ErrPagerClosed
	}
	slots := make([]Slot, 0, m.slotCount)
	for i := 0; i < m.slotCount; i++ {
		id := PageID(i + 1)
		if op, ok := m.overlay[id]; ok {
			slots = append(slots, Slot{ID: id, Kind: op.kind, InUse: op.inUse, Length: len(op.data)})
			continue
		}
		if i >= m.fileSlots {
			slots = append(slots, Slot{ID: id})
			continue
		}
		off := fileHeaderBytes + i*(slotHeaderBytes+m.pageSize)
		meta, _, err := decodeSlotHeader(m.data[off:off+slotHeaderBytes], m.pageSize)
		if err != nil {
			return nil, err
		}
		slots = append(slots, Slot{ID: id, Kind: meta.kind, InUse: meta.inUse, Length: meta.length})
	}
	return slots, nil
}

// Close unmaps the file. Slices previously returned by Read become invalid;
// the caller must ensure no reads are in flight.
func (m *MmapStore) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	data := m.data
	m.data = nil
	return munmapFile(data)
}
