package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageID identifies a fixed-size page in a Pager. Zero is never a valid id.
type PageID uint64

// InvalidPage is the zero PageID, never returned by Allocate.
const InvalidPage PageID = 0

// DefaultPageSize is the page size used by the benchmark configuration of
// the paper's R-tree implementations (4 KiB disk pages).
const DefaultPageSize = 4096

// Common pager errors.
var (
	ErrPageNotFound = errors.New("storage: page not found")
	ErrPageTooLarge = errors.New("storage: payload exceeds page size")
	ErrPagerClosed  = errors.New("storage: pager is closed")
)

// PageKind distinguishes directory pages, leaf pages, and auxiliary pages
// (the clip table of Figure 4b) for storage-breakdown accounting.
type PageKind uint8

// Page kinds.
const (
	KindDirectory PageKind = iota
	KindLeaf
	KindAux
)

// String names the page kind.
func (k PageKind) String() string {
	switch k {
	case KindDirectory:
		return "directory"
	case KindLeaf:
		return "leaf"
	case KindAux:
		return "aux"
	default:
		return fmt.Sprintf("PageKind(%d)", uint8(k))
	}
}

// PageStore is the pager contract shared by the in-memory Pager and the
// on-disk FilePager: fixed-size pages identified by PageID, each tagged with
// a PageKind for storage-breakdown accounting. Implementations must be safe
// for concurrent use.
type PageStore interface {
	// PageSize returns the page size in bytes; payloads may not exceed it.
	PageSize() int
	// Allocate reserves a new page of the given kind and returns its id.
	Allocate(kind PageKind) (PageID, error)
	// Write stores the payload in the page (payload must fit in one page).
	Write(id PageID, payload []byte) error
	// Read returns a copy of the page payload and its kind.
	Read(id PageID) ([]byte, PageKind, error)
	// Free releases a page for reuse.
	Free(id PageID) error
	// Usage returns a storage breakdown by page kind.
	Usage() Usage
}

type page struct {
	kind PageKind
	data []byte
}

// Pager is an in-memory simulation of a paged disk file: it hands out
// fixed-size pages, tracks how many bytes of each kind are in use, and
// rejects payloads that do not fit a page. It is safe for concurrent use.
type Pager struct {
	mu       sync.RWMutex
	pageSize int
	next     PageID
	pages    map[PageID]*page
	closed   bool
}

// NewPager creates a pager with the given page size (DefaultPageSize when
// pageSize <= 0).
func NewPager(pageSize int) *Pager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Pager{pageSize: pageSize, next: 1, pages: make(map[PageID]*page)}
}

// PageSize returns the configured page size in bytes.
func (p *Pager) PageSize() int { return p.pageSize }

// Allocate reserves a new page of the given kind and returns its id.
func (p *Pager) Allocate(kind PageKind) (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrPagerClosed
	}
	id := p.next
	p.next++
	p.pages[id] = &page{kind: kind}
	return id, nil
}

// AllocateRun reserves n consecutively numbered pages of the given kind and
// returns the first id. The in-memory pager never reuses ids, so the run is
// always the next n ids.
func (p *Pager) AllocateRun(kind PageKind, n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, fmt.Errorf("storage: AllocateRun of %d pages", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return InvalidPage, ErrPagerClosed
	}
	first := p.next
	for i := 0; i < n; i++ {
		p.pages[p.next] = &page{kind: kind}
		p.next++
	}
	return first, nil
}

// Write stores the payload in the page. The payload must fit in one page.
func (p *Pager) Write(id PageID, payload []byte) error {
	if len(payload) > p.pageSize {
		return fmt.Errorf("%w: %d > %d", ErrPageTooLarge, len(payload), p.pageSize)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	pg, ok := p.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	pg.data = append(pg.data[:0], payload...)
	return nil
}

// Read returns a copy of the page payload and its kind.
func (p *Pager) Read(id PageID) ([]byte, PageKind, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, 0, ErrPagerClosed
	}
	pg, ok := p.pages[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	out := make([]byte, len(pg.data))
	copy(out, pg.data)
	return out, pg.kind, nil
}

// Free releases a page.
func (p *Pager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPagerClosed
	}
	if _, ok := p.pages[id]; !ok {
		return fmt.Errorf("%w: %d", ErrPageNotFound, id)
	}
	delete(p.pages, id)
	return nil
}

// Close releases all pages; subsequent operations fail with ErrPagerClosed.
func (p *Pager) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.pages = nil
}

// Usage describes how many pages and payload bytes of each kind are in use.
type Usage struct {
	Pages      map[PageKind]int
	Bytes      map[PageKind]int
	TotalPages int
	TotalBytes int
}

// Usage returns a storage breakdown by page kind (used by the Figure 13
// experiment). Bytes counts actual payload bytes; PageBytes (pages × page
// size) can be derived by the caller.
func (p *Pager) Usage() Usage {
	p.mu.RLock()
	defer p.mu.RUnlock()
	u := Usage{Pages: make(map[PageKind]int), Bytes: make(map[PageKind]int)}
	for _, pg := range p.pages {
		u.Pages[pg.kind]++
		u.Bytes[pg.kind] += len(pg.data)
		u.TotalPages++
		u.TotalBytes += len(pg.data)
	}
	return u
}
